package thresholdlb

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestPublicObservabilitySurface drives the whole exported
// observability API in one run: a shared broker feeding a masked
// subscription, a JSONL sink, and a Prometheus/expvar exporter, with
// per-domain windows from a synthetic topology — and pins that none of
// it perturbs the Result.
func TestPublicObservabilitySurface(t *testing.T) {
	const n = 128
	build := func() DynamicScenario {
		return DynamicScenario{
			Graph:    CompleteGraph(n),
			Protocol: UserBased,
			Epsilon:  0.5,
			Rounds:   150,
			Window:   50,
			Arrivals: PoissonArrivals(0.8*n/1.95, ParetoDist(2, 20)),
			Service:  WeightProportionalService(1),
			Seed:     9,
			Workers:  4,
		}
	}
	plain := build()
	ref, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	topo, err := SynthTopology(n, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc := build()
	sc.Domains = ObsDomains(topo)
	sub := sc.Subscribe(ObsSubOptions{Capacity: 1 << 14,
		Kinds: ObsMask(KindWindow, KindShardWindow, KindDomainWindow)})
	exp := NewObsExporter(sc.Obs, 1<<14)
	if exp == nil {
		t.Fatal("NewObsExporter returned nil on an open broker")
	}
	var jsonl bytes.Buffer
	sink := NewObsSink(&jsonl, sc.Obs, ObsSubOptions{Capacity: 1 << 14})
	if sink == nil {
		t.Fatal("NewObsSink returned nil on an open broker")
	}

	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sc.Obs.Close()
	if err := sink.Close(); err != nil {
		t.Fatalf("sink.Close: %v", err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("observability attachments changed the Result:\ngot  %+v\nwant %+v", res, ref)
	}

	// The masked subscription saw exactly the window kinds.
	events := 0
	buf := make([]ObsEvent, 0, 256)
	for evs := sub.Poll(buf); len(evs) > 0; evs = sub.Poll(buf) {
		for _, ev := range evs {
			switch ev.Kind {
			case KindWindow, KindShardWindow, KindDomainWindow:
				events++
			default:
				t.Fatalf("mask leak: %v event on a window-only subscription", ev.Kind)
			}
		}
	}
	if events == 0 {
		t.Fatal("subscription saw no window events")
	}

	// The sink's JSONL reads back losslessly and includes domain
	// windows for both topology levels.
	evs, err := ReadObsEvents(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("ReadObsEvents: %v", err)
	}
	levels := map[string]bool{}
	for _, ev := range evs {
		if ev.Kind == KindDomainWindow {
			levels[ev.DomainWindow.Level] = true
		}
	}
	if !levels["rack"] || !levels["zone"] {
		t.Fatalf("sink stream missing domain levels: %v", levels)
	}
	var rt bytes.Buffer
	if err := WriteObsEvents(&rt, evs); err != nil {
		t.Fatal(err)
	}
	again, err := ReadObsEvents(&rt)
	if err != nil || !reflect.DeepEqual(again, evs) {
		t.Fatalf("event stream does not roundtrip (err %v)", err)
	}

	// The exporter scrapes as Prometheus text with per-shard and
	// per-domain series.
	rec := httptest.NewRecorder()
	exp.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"lbdyn_overload_frac ",
		`lbdyn_shard_overload_frac{shard="0"}`,
		`lbdyn_domain_up_resources{level="zone",domain="zone0"}`,
		`lbdyn_phase_nanos_total{shard="seq",phase="arrivals"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
