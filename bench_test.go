// Benchmarks regenerating every table and figure of the paper's
// evaluation (deliverable d). Each BenchmarkTable*/BenchmarkFigure*/
// Benchmark<Theorem> target runs the corresponding experiment driver
// end to end on a reduced (Quick) parameter sweep so that one bench
// iteration is a full, self-contained reproduction pass; cmd/lbbench
// runs the full-scale versions and prints the tables.
//
// The trailing micro-benchmarks measure protocol-round throughput,
// which is the quantity that decides how large a full reproduction can
// be on a given machine.
package thresholdlb

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/recovery"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/task"
	"repro/internal/walk"
)

// benchCfg keeps one bench iteration small but real.
func benchCfg() experiments.Config {
	return experiments.Config{Trials: 2, Workers: 2, Seed: 0xbe7c4, Quick: true}
}

func runDriver(b *testing.B, id string) {
	b.Helper()
	d := experiments.Lookup(id)
	if d == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := d(benchCfg())
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1 regenerates Table 1/2 (mixing and hitting times of
// the five graph families).
func BenchmarkTable1(b *testing.B) { runDriver(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (user-controlled balancing
// time vs total weight W for k heavy tasks).
func BenchmarkFigure1(b *testing.B) { runDriver(b, "figure1") }

// BenchmarkFigure2 regenerates Figure 2 (normalised balancing time vs
// m for growing wmax).
func BenchmarkFigure2(b *testing.B) { runDriver(b, "figure2") }

// BenchmarkTheorem3 regenerates the Theorem 3 shape check
// (resource-controlled, above-average thresholds, rounds vs τ·ln m).
func BenchmarkTheorem3(b *testing.B) { runDriver(b, "theorem3") }

// BenchmarkTheorem7 regenerates the Theorem 7 shape check
// (resource-controlled, tight thresholds, rounds vs H·ln W).
func BenchmarkTheorem7(b *testing.B) { runDriver(b, "theorem7") }

// BenchmarkObservation8 regenerates the Observation 8 lower-bound
// experiment on the clique+pendant family.
func BenchmarkObservation8(b *testing.B) { runDriver(b, "obs8") }

// BenchmarkAlphaSweep regenerates the Theorem 11/12 α sweep.
func BenchmarkAlphaSweep(b *testing.B) { runDriver(b, "alpha") }

// BenchmarkPotentialDrop regenerates the Lemma 1 / Observation 4 /
// Lemma 5 / Lemma 10 validation.
func BenchmarkPotentialDrop(b *testing.B) { runDriver(b, "potential") }

// BenchmarkDiffusion regenerates the footnote-1 diffusion-threshold
// end-to-end experiment.
func BenchmarkDiffusion(b *testing.B) { runDriver(b, "diffusion") }

// BenchmarkAblation regenerates the design-choice ablations.
func BenchmarkAblation(b *testing.B) { runDriver(b, "ablation") }

// BenchmarkBaselines regenerates the related-work baseline comparison
// (diffusion, Greedy[2], (1+β), least-loaded oracle).
func BenchmarkBaselines(b *testing.B) { runDriver(b, "baselines") }

// BenchmarkResourceControlledRound measures single-round cost of
// Algorithm 5.1 on a 32×32 torus with 4096 weighted tasks.
func BenchmarkResourceControlledRound(b *testing.B) {
	g := graph.Grid2D(32, 32, true)
	ts := task.NewSet(task.UniformRange{Lo: 1, Hi: 4}.Weights(4*g.N(), newBenchRand()))
	placement := make([]int, ts.M())
	kernel := walk.NewLazy(walk.NewMaxDegree(g))
	p := core.ResourceControlled{Kernel: kernel}
	s := core.NewState(g, ts, placement, core.AboveAverage{Eps: 0.5}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Balanced() {
			// Re-arm with a fresh state so rounds keep doing work.
			b.StopTimer()
			s = core.NewState(g, ts, placement, core.AboveAverage{Eps: 0.5}, uint64(i))
			b.StartTimer()
		}
		p.Step(s)
	}
}

// BenchmarkUserControlledRound measures single-round cost of
// Algorithm 6.1 on the complete graph with n=1000, m=10000.
func BenchmarkUserControlledRound(b *testing.B) {
	g := graph.Complete(1000)
	ts := task.NewSet(task.TwoPoint{Heavy: 50, K: 20}.Weights(10000, newBenchRand()))
	placement := make([]int, ts.M())
	p := core.UserControlled{Alpha: 1}
	s := core.NewState(g, ts, placement, core.AboveAverage{Eps: 0.2}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Balanced() {
			b.StopTimer()
			s = core.NewState(g, ts, placement, core.AboveAverage{Eps: 0.2}, uint64(i))
			b.StartTimer()
		}
		p.Step(s)
	}
}

// BenchmarkFullUserRun measures a complete Figure-1-style run
// (n=1000, W=10000, k=1) from single-source placement to balance.
func BenchmarkFullUserRun(b *testing.B) {
	g := graph.Complete(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := task.NewSet(task.TwoPoint{Heavy: 50, K: 1}.Weights(9951, newBenchRand()))
		s := core.NewState(g, ts, make([]int, ts.M()), core.AboveAverage{Eps: 0.2}, uint64(i))
		res := core.Run(s, core.UserControlled{Alpha: 1}, core.RunOptions{MaxRounds: 1_000_000})
		if !res.Balanced {
			b.Fatal("run did not balance")
		}
	}
}

// BenchmarkDynamicRho regenerates the open-system utilisation sweep
// (arrival rate ρ → 1, self-tuned thresholds).
func BenchmarkDynamicRho(b *testing.B) { runDriver(b, "dynrho") }

// BenchmarkDynamicChurn regenerates the open-system churn sweep
// (weight conservation across resource join/leave).
func BenchmarkDynamicChurn(b *testing.B) { runDriver(b, "dynchurn") }

// benchDynamicRound measures the dynamic engine's steady-state
// per-round cost — churnless Poisson arrivals at ρ = 0.8 with
// heavy-tailed weights, self-tuned thresholds, one protocol round per
// iteration. Each op is one simulated round (the first ~100 warm the
// system up; at bench-scale iteration counts they are noise). workers
// ≤ 0 selects GOMAXPROCS; any worker count produces bit-identical
// results, so the variants differ only in wall clock.
func benchDynamicRound(b *testing.B, g *graph.Graph, proto core.Protocol, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	cfg := dynamic.Config{
		Graph:    g,
		Protocol: proto,
		Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service: dynamic.WeightProportional{Rate: 1},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Rounds:  b.N,
		Window:  1 << 30, // one giant window: no per-window work measured
		Seed:    0x9e3779b97f4a7c15,
		Workers: workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := dynamic.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDynamicRound1k: user-controlled rounds on K_1000 under
// steady ρ = 0.8 Poisson traffic, sharded across GOMAXPROCS workers.
func BenchmarkDynamicRound1k(b *testing.B) {
	benchDynamicRound(b, graph.Complete(1000), core.UserControlled{Alpha: 1}, 0)
}

// BenchmarkDynamicRound10k: resource-controlled rounds on a 16-regular
// expander with 10000 resources under steady ρ = 0.8 Poisson traffic,
// sharded across GOMAXPROCS workers.
func BenchmarkDynamicRound10k(b *testing.B) {
	g := graph.RandomRegular(10000, 16, newBenchRand())
	benchDynamicRound(b, g, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))}, 0)
}

// BenchmarkDynamicRound10kSeq is the Workers=1 control for the same
// workload: the single-core-normalised figure the perf trajectory in
// BENCH_dynamic.json tracks against BENCH_baseline.json.
func BenchmarkDynamicRound10kSeq(b *testing.B) {
	g := graph.RandomRegular(10000, 16, newBenchRand())
	benchDynamicRound(b, g, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))}, 1)
}

// BenchmarkDynamicRoundHetero: steady-state rounds on a heterogeneous
// 10000-resource fleet with a 10:1 speed spread (classes 1/2/4/10
// interleaved): speed-scaled weight-proportional service, the
// speed-mass self-tuner converging to the proportional
// (W/S_up)·s_r targets, and speed-weighted ingress, under ρ = 0.8 of
// the fleet's TOTAL capacity — 4.25× the homogeneous arrival volume on
// the same machine count. One op is one simulated round.
func BenchmarkDynamicRoundHetero(b *testing.B) {
	const n = 10_000
	g := graph.RandomRegular(n, 16, newBenchRand())
	speeds := make([]float64, n)
	totalSpeed := 0.0
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
		totalSpeed += speeds[r]
	}
	cfg := dynamic.Config{
		Graph:    g,
		Speeds:   speeds,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * totalSpeed / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  dynamic.WeightProportional{Rate: 1},
		Dispatch: &dynamic.SpeedWeighted{},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Rounds:  b.N,
		Window:  1 << 30,
		Seed:    0x9e3779b97f4a7c15,
		Workers: runtime.GOMAXPROCS(0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := dynamic.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDynamicRoundObserved: the BenchmarkDynamicRound10k workload
// with the full observability stack attached — an event broker
// publishing per-window, per-shard, lane and phase-timing events, one
// actively-draining subscription, and a registered (unscraped)
// Prometheus exporter whose bounded ring absorbs or drops what the
// scrape never collects. One op is one simulated round; the delta
// against BenchmarkDynamicRound10k is the total cost of telemetry.
func BenchmarkDynamicRoundObserved(b *testing.B) {
	const n = 10_000
	g := graph.RandomRegular(n, 16, newBenchRand())
	broker := obs.NewBroker()
	obs.NewExporter(broker, 4096)
	sub := broker.Subscribe(obs.SubOptions{Capacity: 4096})
	done := make(chan struct{})
	seen := 0
	go func() {
		defer close(done)
		buf := make([]obs.Event, 0, 256)
		for evs := sub.Wait(buf); evs != nil; evs = sub.Wait(buf) {
			seen += len(evs)
		}
	}()
	cfg := dynamic.Config{
		Graph:    g,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service: dynamic.WeightProportional{Rate: 1},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Obs:     broker,
		Rounds:  b.N,
		Window:  1 << 30,
		Seed:    0x9e3779b97f4a7c15,
		Workers: runtime.GOMAXPROCS(0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := dynamic.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	broker.Close()
	<-done
	if seen == 0 {
		b.Fatal("active subscription saw no events")
	}
}

// BenchmarkDynamicRoundFaulty: the BenchmarkDynamicRound10k workload
// with the unreliable-network layer active — 1% message loss (retried
// with capped backoff off the in-flight ledger, re-homed on timeout),
// a 0.5% chance of a 1–4 round delay and 0.1% duplication. One op is
// one simulated round; the delta against BenchmarkDynamicRound10k is
// the full cost of fault draws, ledger/wheel upkeep and the extra
// late-delivery exchange.
func BenchmarkDynamicRoundFaulty(b *testing.B) {
	const n = 10_000
	g := graph.RandomRegular(n, 16, newBenchRand())
	cfg := dynamic.Config{
		Graph:    g,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service: dynamic.WeightProportional{Rate: 1},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Faults: &faults.Plan{Loss: 0.01, DelayProb: 0.005, DelayMax: 4,
			DupProb: 0.001, RetryBase: 1, RetryCap: 8, Timeout: 30},
		Rounds:  b.N,
		Window:  1 << 30,
		Seed:    0x9e3779b97f4a7c15,
		Workers: runtime.GOMAXPROCS(0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := dynamic.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if b.N > 100 && res.Lost == 0 {
		b.Fatal("fault layer injected nothing")
	}
}

// BenchmarkDynamicRoundTraced: the BenchmarkDynamicRound10k workload
// with task-lifecycle tracing on at a 1/64 sampling rate — an event
// broker with one actively-draining KindTrace subscription, so every
// sampled arrival, hop and departure is hashed, recorded and
// published. One op is one simulated round; the delta against
// BenchmarkDynamicRound10k is the full cost of sampled tracing (the
// always-on histograms are included in the untraced figure already).
func BenchmarkDynamicRoundTraced(b *testing.B) {
	const n = 10_000
	g := graph.RandomRegular(n, 16, newBenchRand())
	broker := obs.NewBroker()
	sub := broker.Subscribe(obs.SubOptions{
		Kinds: obs.Mask(obs.KindTrace, obs.KindTraceHist), Capacity: 8192})
	done := make(chan struct{})
	seen := 0
	go func() {
		defer close(done)
		buf := make([]obs.Event, 0, 256)
		for evs := sub.Wait(buf); evs != nil; evs = sub.Wait(buf) {
			seen += len(evs)
		}
	}()
	cfg := dynamic.Config{
		Graph:    g,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service: dynamic.WeightProportional{Rate: 1},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Obs:         broker,
		TraceSample: 1.0 / 64,
		Rounds:      b.N,
		Window:      1 << 30,
		Seed:        0x9e3779b97f4a7c15,
		Workers:     runtime.GOMAXPROCS(0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := dynamic.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	broker.Close()
	<-done
	if b.N > 100 && seen == 0 {
		b.Fatal("trace subscription saw no events")
	}
}

// BenchmarkDynamicRound100k: the n = 10⁵ regime of Goldsztajn et al.
// that the sequential engine could not reach practically — a 16-regular
// expander with 100000 resources, ~41000 arrivals per round, sharded
// across GOMAXPROCS workers.
func BenchmarkDynamicRound100k(b *testing.B) {
	g := graph.RandomRegular(100_000, 16, newBenchRand())
	benchDynamicRound(b, g, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))}, 0)
}

// BenchmarkDeliver measures the per-destination-shard delivery
// exchange in isolation: 20000 tasks on 10000 resources are popped by
// their source shards and re-delivered to rotated destinations through
// core.Exchange every iteration — route (sort + lane segmentation),
// the per-destination k-way merge, and the canonical stats fold. One
// op is one full cross-shard delivery of 20000 moves.
func BenchmarkDeliver(b *testing.B) {
	const (
		n      = 10_000
		m      = 2 * n
		shards = 8
	)
	g := graph.RandomRegular(n, 16, newBenchRand())
	ts := task.NewSet(task.UniformRange{Lo: 1, Hi: 4}.Weights(m, newBenchRand()))
	placement := make([]int, m)
	for i := range placement {
		placement[i] = i % n
	}
	s := core.NewState(g, ts, placement, core.AboveAverage{Eps: 0.5}, 1)
	bounds := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		bounds[i] = i * n / shards
	}
	x := core.NewExchange(bounds)
	pool := par.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	moves := make([][]core.Migration, shards)
	route := func(i int) {
		lo, hi := bounds[i], bounds[i+1]
		moves[i] = moves[i][:0]
		for r := lo; r < hi; r++ {
			for _, tk := range s.Stack(r).Tasks() {
				moves[i] = append(moves[i],
					core.Migration{Task: tk, Dest: int32((r + n/2 + 1) % n)})
			}
			s.Stack(r).Reset()
		}
		x.Route(i, moves[i])
	}
	deliver := func(j int) { x.DeliverShard(s, j) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Run(shards, route)
		pool.Run(shards, deliver)
		st := x.Finish(s, false)
		if st.Migrations != m {
			b.Fatalf("delivered %d of %d moves", st.Migrations, m)
		}
	}
}

// BenchmarkMassChurn10k measures mass-failure rounds end to end: a
// 10000-resource open system under steady ρ = 0.8 traffic where every
// 20th round 1000 resources fail simultaneously (their tasks evacuate
// through the sharded exchange) and rejoin 10 rounds later. One op is
// one simulated round, ~1/20 of which carry a rack-loss evacuation.
func BenchmarkMassChurn10k(b *testing.B) {
	g := graph.RandomRegular(10_000, 16, newBenchRand())
	cfg := dynamic.Config{
		Graph:    g,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * 10_000 / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service: dynamic.WeightProportional{Rate: 1},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Churn: dynamic.Churn{
			MinUp: 5_000,
			Events: []dynamic.ChurnEvent{
				{Round: 10, Every: 20, Down: 1000},
				{Round: 20, Every: 20, Up: 1000},
			},
		},
		Rounds:  b.N,
		Window:  1 << 30,
		Seed:    0x9e3779b97f4a7c15,
		Workers: runtime.GOMAXPROCS(0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := dynamic.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRackLossRecover measures topology-aware mass-failure
// recovery end to end, one sub-benchmark per re-home policy: a
// 10000-resource fleet laid out as 8 racks (speed classes 1/2/4/10
// interleaved, so every rack mixes all classes) under steady ρ = 0.8
// traffic loses whole rack 0 — 1250 machines, ~1/8 of the fleet —
// every 40th round and gets it back 20 rounds later. One op is one
// simulated round, ~1/40 of which carry the rack-loss evacuation
// routed by the policy under test (uniform, load-aware power-of-2,
// topology-aware locality, speed-weighted).
func BenchmarkRackLossRecover(b *testing.B) {
	const n = 10_000
	topo, err := recovery.Synth(n, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.RandomRegular(n, 16, newBenchRand())
	speeds := make([]float64, n)
	totalSpeed := 0.0
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
		totalSpeed += speeds[r]
	}
	rack0 := topo.RackList(0, nil)
	policies := []struct {
		name string
		mk   func() dynamic.RehomePolicy
	}{
		{"uniform", func() dynamic.RehomePolicy { return dynamic.UniformRehome{} }},
		{"power2", func() dynamic.RehomePolicy { return dynamic.PowerOfDRehome{D: 2} }},
		{"locality", func() dynamic.RehomePolicy { return &recovery.Locality{Topo: topo} }},
		{"speed", func() dynamic.RehomePolicy { return &dynamic.SpeedWeightedRehome{} }},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			cfg := dynamic.Config{
				Graph:    g,
				Speeds:   speeds,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: dynamic.Poisson{Rate: 0.8 * totalSpeed / 1.95,
					Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service:  dynamic.WeightProportional{Rate: 1},
				Dispatch: dynamic.PowerOfD{D: 2},
				Rehome:   pol.mk(),
				Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Churn: dynamic.Churn{
					MinUp: n / 4,
					Events: []dynamic.ChurnEvent{
						{Round: 10, Every: 40, DownList: rack0},
						{Round: 30, Every: 40, UpList: rack0},
					},
				},
				Rounds:  b.N,
				Window:  1 << 30,
				Seed:    0x9e3779b97f4a7c15,
				Workers: runtime.GOMAXPROCS(0),
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := dynamic.Run(cfg); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkHittingTime measures H(G) computation on a 16×16 torus.
func BenchmarkHittingTime(b *testing.B) {
	g := graph.Grid2D(16, 16, true)
	k := walk.NewMaxDegree(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walk.HittingTimesTo(k, 0, 1e-8, 2_000_000)
	}
}

// BenchmarkMixingTime measures the exact TV mixing-time computation on
// a 16×16 torus.
func BenchmarkMixingTime(b *testing.B) {
	g := graph.Grid2D(16, 16, true)
	k := walk.NewLazy(walk.NewMaxDegree(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walk.MixingTimeTV(k, []int{0}, walk.DefaultMixingEps, 10_000_000)
	}
}

// checkpointBenchConfig is the BenchmarkDynamicRound10k workload with
// a fixed horizon — the warm steady-state fleet the checkpoint
// benchmarks snapshot (~8k live tasks across 10k resources). A fresh
// config (fresh tuner included) is required per engine, matching the
// restore identity contract.
func checkpointBenchConfig(g *graph.Graph, rounds int) dynamic.Config {
	n := g.N()
	return dynamic.Config{
		Graph:    g,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / 1.95,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service: dynamic.WeightProportional{Rate: 1},
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Rounds:  rounds,
		Window:  1 << 30,
		Seed:    0x9e3779b97f4a7c15,
		Workers: runtime.GOMAXPROCS(0),
	}
}

// BenchmarkCheckpoint10k: one complete engine checkpoint — every task,
// per-resource stack, RNG stream, tuner estimate and accumulator of
// the warm 10000-resource fleet — encoded into the reusable snapshot
// buffer and written to io.Discard. One op is one full snapshot; after
// the buffer's high-water mark the encode itself is allocation-free.
func BenchmarkCheckpoint10k(b *testing.B) {
	g := graph.RandomRegular(10_000, 16, newBenchRand())
	eng, err := dynamic.NewEngine(checkpointBenchConfig(g, 200))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Checkpoint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResume10k: restoring the same warm-fleet snapshot into a
// fresh engine — full decode, checksum verification and state rebuild,
// worker pool included. One op is one complete Resume.
func BenchmarkResume10k(b *testing.B) {
	g := graph.RandomRegular(10_000, 16, newBenchRand())
	eng, err := dynamic.NewEngine(checkpointBenchConfig(g, 200))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	eng.Close()
	snap := buf.Bytes()
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dynamic.Resume(bytes.NewReader(snap), checkpointBenchConfig(g, 200))
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func newBenchRand() *rng.Rand { return rng.NewSeeded(0x9e3779b97f4a7c15) }

// BenchmarkLiveIngest10k: the live serving runtime's hot path — 10k
// tasks pushed through Runtime.Ingest in 1000-task batches, then the
// round stepped through the lockstep engine (arrivals dispatched,
// service, tuner, propose/deliver). One op is one full live round with
// 10k admitted arrivals on the warm 10000-resource fleet.
func BenchmarkLiveIngest10k(b *testing.B) {
	g := graph.RandomRegular(10_000, 16, newBenchRand())
	cfg := checkpointBenchConfig(g, 1<<30)
	cfg.Arrivals = dynamic.External{}
	eng, err := dynamic.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	rt := serve.New(eng, "uniform", serve.Options{})
	batch := make([]float64, 1000)
	for i := range batch {
		batch[i] = 1 + float64(i%7)/2
	}
	// Warm the fleet and the runtime's buffers.
	for r := 0; r < 20; r++ {
		for j := 0; j < 10; j++ {
			if _, err := rt.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := rt.StepRound(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			if _, err := rt.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := rt.StepRound(); err != nil {
			b.Fatal(err)
		}
	}
}
