// Command lbbench regenerates the paper's tables and figures.
//
// Usage:
//
//	lbbench -exp figure1 -trials 1000          # full Figure 1
//	lbbench -exp table1                        # Table 1/2 reproduction
//	lbbench -exp all -quick -trials 10         # smoke pass over everything
//	lbbench -list                              # show available experiments
//	lbbench -exp figure2 -csv > figure2.csv    # machine-readable output
//
// Experiment IDs match DESIGN.md's per-experiment index (E1–E10).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		trials  = flag.Int("trials", 50, "trials per data point (paper: 1000)")
		workers = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 0x5eed, "base RNG seed")
		quick   = flag.Bool("quick", false, "shrink parameter sweeps for a fast pass")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{
		Trials:  *trials,
		Workers: *workers,
		Seed:    *seed,
		Quick:   *quick,
	}
	run := func(id string, d experiments.Driver) {
		start := time.Now()
		tbl := d(cfg)
		if *csv {
			tbl.CSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e.ID, e.Driver)
		}
		return
	}
	d := experiments.Lookup(*exp)
	if d == nil {
		fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(*exp, d)
}
