// Command lbsim runs a single threshold-balancing scenario and prints
// the outcome, optionally with the potential trajectory.
//
// Usage examples:
//
//	lbsim -graph complete -n 1000 -m 5000 -proto user -eps 0.2
//	lbsim -graph torus -n 1024 -m 4096 -proto resource -eps 0.5 -lazy
//	lbsim -graph cliquependant -n 64 -k 4 -m 512 -proto resource -eps 0 -trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	lb "repro"
	"repro/internal/cli"
)

func main() {
	var (
		graphKind = flag.String("graph", "complete", "complete|grid|torus|hypercube|expander|gnp|cliquependant")
		n         = flag.Int("n", 100, "number of resources (rounded per family)")
		k         = flag.Int("k", 2, "family parameter: pendant links / expander degree")
		p         = flag.Float64("p", 0.1, "G(n,p) edge probability")
		m         = flag.Int("m", 1000, "number of tasks")
		heavy     = flag.Int("heavy", 0, "number of heavy tasks (two-point workload)")
		wmax      = flag.Float64("wmax", 50, "heavy task weight")
		proto     = flag.String("proto", "user", "user|resource|usergraph|mixed")
		eps       = flag.Float64("eps", 0.2, "threshold slack (0 = tight threshold)")
		alpha     = flag.Float64("alpha", 1, "user-protocol migration constant")
		lazy      = flag.Bool("lazy", false, "use the 1/2-lazy walk (resource protocol)")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		maxRounds = flag.Int("maxrounds", 0, "round cap (0 = library default)")
		trace     = flag.Bool("trace", false, "print the potential trajectory")
		csvTrace  = flag.String("csvtrace", "", "write a per-round imbalance CSV (round,maxload,gap,gini,overloaded) to this file")
		spread    = flag.Bool("spread", false, "random initial placement instead of single-source")
	)
	flag.Parse()

	g, err := cli.GraphSpec{Kind: *graphKind, N: *n, K: *k, P: *p, Seed: *seed}.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	weights := lb.UnitWeights(*m)
	if *heavy > 0 {
		weights = lb.TwoPointWeights(*m, *heavy, *wmax)
	}
	var placement []int
	if *spread {
		placement = make([]int, *m)
		s := *seed
		for i := range placement {
			s = s*6364136223846793005 + 1442695040888963407
			placement[i] = int(s>>33) % g.N()
		}
	}
	kind, err := protocolKind(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	sc := lb.Scenario{
		Graph:           g,
		Weights:         weights,
		Placement:       placement,
		Epsilon:         *eps,
		Protocol:        kind,
		Alpha:           *alpha,
		LazyWalk:        *lazy,
		Seed:            *seed,
		MaxRounds:       *maxRounds,
		RecordPotential: *trace,
	}
	var csvFile *os.File
	if *csvTrace != "" {
		f, err := os.Create(*csvTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
		fmt.Fprintln(csvFile, "round,maxload,gap,gini,overloaded")
		// The hook needs the threshold; derive it from the scenario's
		// own parameters (uniform policies only — good enough for CLI
		// tracing).
		W := sum(weights)
		wm := 1.0
		for _, w := range weights {
			if w > wm {
				wm = w
			}
		}
		thr := W/float64(g.N()) + 2*wm
		if *eps > 0 {
			thr = (1+*eps)*W/float64(g.N()) + wm
		}
		sc.OnRound = func(round int, loads []float64) {
			im := lb.MeasureImbalance(loads, thr)
			fmt.Fprintf(csvFile, "%d,%.3f,%.3f,%.4f,%d\n", round, im.Max, im.Gap, im.Gini, im.Overloaded)
		}
	}
	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
	fmt.Printf("graph:       %s (n=%d, m_edges=%d, maxdeg=%d)\n", g.Name(), g.N(), g.M(), g.MaxDegree())
	fmt.Printf("tasks:       %d (total weight %.0f)\n", len(weights), sum(weights))
	fmt.Printf("protocol:    %s (eps=%g alpha=%g lazy=%v)\n", kind, *eps, *alpha, *lazy)
	fmt.Printf("balanced:    %v\n", res.Balanced)
	fmt.Printf("rounds:      %d\n", res.Rounds)
	fmt.Printf("migrations:  %d (weight %.0f)\n", res.Migrations, res.MovedWeight)
	if len(weights) > 1 {
		fmt.Printf("rounds/ln m: %.2f\n", float64(res.Rounds)/math.Log(float64(len(weights))))
	}
	if *trace {
		fmt.Println("potential trajectory:")
		for i, v := range res.PotentialTrace {
			if i%10 == 0 || i == len(res.PotentialTrace)-1 {
				fmt.Printf("  round %6d  phi=%.1f\n", i, v)
			}
		}
	}
}

func protocolKind(s string) (lb.ProtocolKind, error) {
	switch s {
	case "user":
		return lb.UserBased, nil
	case "resource":
		return lb.ResourceBased, nil
	case "usergraph":
		return lb.UserBasedGraph, nil
	case "mixed":
		return lb.MixedBased, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
