package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = run(args, &out, &errw)
	return out.String(), errw.String(), err
}

// writeFixture persists a two-task trace: task 3 arrives, hops twice
// (protocol then a retried redelivery) and departs; task 9 arrives on
// resource 7 and departs without moving.
func writeFixture(t *testing.T) string {
	t.Helper()
	recs := []trace.Record{
		{Round: 0, Task: 3, Op: trace.OpArrive, From: -1, To: 4, Weight: 2.5},
		{Round: 1, Task: 9, Op: trace.OpArrive, From: -1, To: 7, Weight: 1},
		{Round: 2, Task: 3, Op: trace.OpHop, Cause: trace.CauseProtocol, From: 4, To: 6, Hops: 1},
		{Round: 3, Task: 3, Op: trace.OpLoss, Cause: trace.CauseRetry, From: 6, To: 2},
		{Round: 5, Task: 3, Op: trace.OpRetry, Cause: trace.CauseRetry, From: 6, To: 2, Attempt: 1},
		{Round: 5, Task: 3, Op: trace.OpHop, Cause: trace.CauseRetry, From: 6, To: 2, Hops: 2, Latency: 2},
		{Round: 6, Task: 9, Op: trace.OpDepart, From: 7, To: -1, Weight: 1, Sojourn: 5},
		{Round: 9, Task: 3, Op: trace.OpDepart, From: 2, To: -1, Weight: 2.5, Hops: 2, Sojourn: 9},
	}
	path := filepath.Join(t.TempDir(), "fixture.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestListingAndSummary(t *testing.T) {
	stdout, stderr, err := runCLI(t, writeFixture(t))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr:\n%s", stderr)
	}
	for _, want := range []string{
		"records:  8 of 8 match (2 tasks)",
		"ops:      arrive=2 hop=2 depart=2 loss=1 retry=1",
		"protocol=1",
		"retry=1",
		"sojourn:  p50=5 p95=9 p99=9 max=9 rounds (over 2 departures, exact)",
		"hops/task: p50=0 p95=2 p99=2 max=2",
		"cause=retry hops=2 latency=2",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestTaskTimeline(t *testing.T) {
	stdout, _, err := runCLI(t, "-task", "3", "-timeline", writeFixture(t))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "task 3 (6 records):") {
		t.Errorf("missing task 3 timeline header:\n%s", stdout)
	}
	if strings.Contains(stdout, "task 9") {
		t.Errorf("-task 3 leaked task 9 records:\n%s", stdout)
	}
	// The timeline keeps stream order: arrive, hop, loss, retry, hop,
	// depart.
	idx := -1
	for _, step := range []string{"arrive", "hop", "loss", "retry", "hop", "depart"} {
		j := strings.Index(stdout[idx+1:], step)
		if j < 0 {
			t.Fatalf("timeline missing %q after offset %d:\n%s", step, idx, stdout)
		}
		idx += 1 + j
	}
}

func TestFilters(t *testing.T) {
	path := writeFixture(t)

	stdout, _, err := runCLI(t, "-cause", "retry", "-summary", path)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "records:  3 of 8 match (1 tasks)") {
		t.Errorf("-cause retry summary wrong:\n%s", stdout)
	}

	stdout, _, err = runCLI(t, "-resource", "7", "-summary", path)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "records:  2 of 8 match (1 tasks)") {
		t.Errorf("-resource 7 summary wrong:\n%s", stdout)
	}

	stdout, _, err = runCLI(t, "-rounds", "2:6", "-summary", path)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "records:  4 of 8 match (1 tasks)") {
		t.Errorf("-rounds 2:6 summary wrong:\n%s", stdout)
	}
	if !strings.Contains(stdout, "sojourn:  no departures in the filtered set") {
		t.Errorf("-rounds 2:6 should have no departures:\n%s", stdout)
	}
}

func TestBadInputs(t *testing.T) {
	path := writeFixture(t)
	for _, args := range [][]string{
		{"-cause", "gremlins", path},
		{"-rounds", "10", path},
		{"-rounds", "9:2", path},
		{path, "extra"},
		{filepath.Join(t.TempDir(), "missing.trace")},
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: want error, got nil", args)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("{\"op\":\"warp\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := runCLI(t, bad)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed line: want line-numbered error, got %v", err)
	}
}
