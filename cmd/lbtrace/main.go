// Command lbtrace queries a task-lifecycle trace stream recorded by
// lbdyn -trace-out (bare trace records as JSONL: arrivals, migration
// hops with their causes, retries, departures). It filters by task,
// resource, round range and hop cause, renders per-task timelines, and
// summarises exact sojourn/hop percentiles over the departures that
// survive the filter.
//
// Usage examples:
//
//	lbdyn -graph complete -n 1000 -trace-sample 0.05 -trace-out run.trace
//	lbtrace run.trace                      # listing + summary
//	lbtrace -task 1234 -timeline run.trace # one task's life story
//	lbtrace -cause retry run.trace         # every ledger-retry event
//	lbtrace -resource 17 -rounds 100:200 run.trace
//	lbtrace -summary run.trace             # percentiles only
//
// Unlike the engine's always-on histograms (bucketed to a power-of-two
// ladder), the percentiles here are exact: computed from the sampled
// departure records themselves.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		taskID   = fs.Int("task", -1, "only this task's records (-1 = all)")
		resource = fs.Int("resource", -1, "only records touching this resource as source or destination (-1 = all)")
		rounds   = fs.String("rounds", "", "only rounds in the half-open range A:B (either side may be empty)")
		cause    = fs.String("cause", "", "only hop/loss/retry records with this cause: protocol|evac|bounce|partition|delay|retry|timeout")
		timeline = fs.Bool("timeline", false, "group the listing into per-task timelines")
		summary  = fs.Bool("summary", false, "suppress the listing; print only the percentile summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("want at most one input file, got %v", fs.Args())
	}

	var causeFilter trace.Cause
	filterCause := *cause != ""
	if filterCause {
		c, ok := trace.CauseFromString(*cause)
		if !ok || c == trace.CauseNone {
			return fmt.Errorf("-cause %q: unknown cause", *cause)
		}
		causeFilter = c
	}
	lo, hi, err := parseRange(*rounds)
	if err != nil {
		return fmt.Errorf("-rounds: %w", err)
	}

	in := io.Reader(os.Stdin)
	name := "stdin"
	if fs.NArg() == 1 && fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, fs.Arg(0)
	}
	all, err := trace.ReadRecords(in)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}

	recs := all[:0:0]
	for i := range all {
		r := &all[i]
		if *taskID >= 0 && r.Task != *taskID {
			continue
		}
		if *resource >= 0 && int(r.From) != *resource && int(r.To) != *resource {
			continue
		}
		if r.Round < lo || r.Round >= hi {
			continue
		}
		if filterCause && r.Cause != causeFilter {
			continue
		}
		recs = append(recs, *r)
	}

	switch {
	case *summary:
		// listing suppressed
	case *timeline:
		printTimelines(stdout, recs)
	default:
		for i := range recs {
			fmt.Fprintln(stdout, formatRecord(&recs[i], true))
		}
	}
	printSummary(stdout, recs, len(all))
	return nil
}

// parseRange parses the half-open "A:B" round range; empty sides mean
// unbounded, an empty spec means everything.
func parseRange(s string) (lo, hi int, err error) {
	lo, hi = math.MinInt, math.MaxInt
	if s == "" {
		return lo, hi, nil
	}
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q is not an A:B range", s)
	}
	if a = strings.TrimSpace(a); a != "" {
		if lo, err = strconv.Atoi(a); err != nil {
			return 0, 0, fmt.Errorf("bad start %q", a)
		}
	}
	if b = strings.TrimSpace(b); b != "" {
		if hi, err = strconv.Atoi(b); err != nil {
			return 0, 0, fmt.Errorf("bad end %q", b)
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("empty range %q", s)
	}
	return lo, hi, nil
}

// formatRecord renders one record as a fixed-ish width line; withTask
// drops the task column in per-task timelines where it is redundant.
func formatRecord(r *trace.Record, withTask bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%-7d", r.Round)
	if withTask {
		fmt.Fprintf(&b, " task %-9d", r.Task)
	}
	fmt.Fprintf(&b, " %-7s", r.Op)
	switch r.Op {
	case trace.OpArrive:
		fmt.Fprintf(&b, "      -> %-6d w=%.4g", r.To, r.Weight)
	case trace.OpDepart:
		fmt.Fprintf(&b, " %5d ->        w=%.4g hops=%d sojourn=%d", r.From, r.Weight, r.Hops, r.Sojourn)
	default:
		fmt.Fprintf(&b, " %5d -> %-6d", r.From, r.To)
	}
	if r.Cause != trace.CauseNone {
		fmt.Fprintf(&b, " cause=%s", r.Cause)
	}
	if r.Op == trace.OpHop {
		fmt.Fprintf(&b, " hops=%d", r.Hops)
	}
	if r.Attempt > 0 {
		fmt.Fprintf(&b, " attempt=%d", r.Attempt)
	}
	if r.Latency > 0 {
		fmt.Fprintf(&b, " latency=%d", r.Latency)
	}
	return b.String()
}

// printTimelines groups records per task (ascending ID, stream order
// within a task — the stream is already round-ordered).
func printTimelines(w io.Writer, recs []trace.Record) {
	byTask := map[int][]*trace.Record{}
	ids := []int{}
	for i := range recs {
		id := recs[i].Task
		if _, seen := byTask[id]; !seen {
			ids = append(ids, id)
		}
		byTask[id] = append(byTask[id], &recs[i])
	}
	sort.Ints(ids)
	for _, id := range ids {
		tl := byTask[id]
		fmt.Fprintf(w, "task %d (%d records):\n", id, len(tl))
		for _, r := range tl {
			fmt.Fprintf(w, "  %s\n", formatRecord(r, false))
		}
	}
}

// printSummary counts records by op, hops by cause, and computes exact
// percentiles over the filtered departures.
func printSummary(w io.Writer, recs []trace.Record, total int) {
	var opCount [8]int
	causeCount := map[trace.Cause]int{}
	var sojourns, hops []int
	tasks := map[int]struct{}{}
	for i := range recs {
		r := &recs[i]
		opCount[r.Op]++
		tasks[r.Task] = struct{}{}
		if r.Op == trace.OpHop {
			causeCount[r.Cause]++
		}
		if r.Op == trace.OpDepart {
			sojourns = append(sojourns, int(r.Sojourn))
			hops = append(hops, int(r.Hops))
		}
	}
	fmt.Fprintf(w, "records:  %d of %d match (%d tasks)\n", len(recs), total, len(tasks))
	fmt.Fprintf(w, "ops:      arrive=%d hop=%d depart=%d loss=%d retry=%d\n",
		opCount[trace.OpArrive], opCount[trace.OpHop], opCount[trace.OpDepart],
		opCount[trace.OpLoss], opCount[trace.OpRetry])
	if len(causeCount) > 0 {
		keys := make([]trace.Cause, 0, len(causeCount))
		for c := range causeCount {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fmt.Fprintf(w, "hops:    ")
		for _, c := range keys {
			fmt.Fprintf(w, " %s=%d", c, causeCount[c])
		}
		fmt.Fprintln(w)
	}
	if len(sojourns) == 0 {
		fmt.Fprintln(w, "sojourn:  no departures in the filtered set")
		return
	}
	sort.Ints(sojourns)
	sort.Ints(hops)
	fmt.Fprintf(w, "sojourn:  p50=%d p95=%d p99=%d max=%d rounds (over %d departures, exact)\n",
		pct(sojourns, 0.50), pct(sojourns, 0.95), pct(sojourns, 0.99), sojourns[len(sojourns)-1], len(sojourns))
	fmt.Fprintf(w, "hops/task: p50=%d p95=%d p99=%d max=%d\n",
		pct(hops, 0.50), pct(hops, 0.95), pct(hops, 0.99), hops[len(hops)-1])
}

// pct is the exact order statistic: the smallest value with at least
// q·n observations at or below it (sorted input).
func pct(sorted []int, q float64) int {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
