// Command benchrec records the perf trajectory of the hot paths: it
// runs the round micro-benchmarks — dynamic rounds, the delivery
// exchange, mass-failure churn — with -benchmem, parses the results
// into a JSON report (committed as BENCH_dynamic.json), and compares
// them against a committed baseline (BENCH_baseline.json: the
// sequential PR-1 engine's numbers, plus first-recording gate entries
// for benchmarks born later).
//
// Two kinds of gate:
//
//   - allocations are hardware-independent, so any allocs/op regression
//     against the baseline fails the run — this is what CI enforces;
//   - ns/op ratios only mean something on one machine, so -min-speedup
//     is off by default and is used locally to certify speedups (e.g.
//     -min-speedup 3 for the ≥3× acceptance figure).
//
// Usage:
//
//	go run ./cmd/benchrec                         # record + compare
//	go run ./cmd/benchrec -benchtime 200ms        # quick CI pass
//	go run ./cmd/benchrec -min-speedup 3          # same-machine gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// FirstRecording marks a baseline entry that IS the benchmark's
	// first measurement (the benchmark was born after the baseline
	// snapshot): the allocs gate applies, but -min-speedup does not —
	// a benchmark cannot be required to beat itself.
	FirstRecording bool `json:"first_recording,omitempty"`
}

// Report is the JSON document benchrec reads and writes.
type Report struct {
	Note       string      `json:"note,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	var (
		bench      = flag.String("bench", "BenchmarkDynamicRound|BenchmarkDeliver|BenchmarkMassChurn|BenchmarkRackLossRecover|BenchmarkCheckpoint|BenchmarkResume|BenchmarkLiveIngest", "benchmark regex passed to go test -bench")
		benchtime  = flag.String("benchtime", "1s", "go test -benchtime value")
		pkg        = flag.String("pkg", ".", "package to benchmark")
		out        = flag.String("out", "BENCH_dynamic.json", "JSON report to write (empty = don't write)")
		baseline   = flag.String("baseline", "BENCH_baseline.json", "committed baseline to compare against (empty = skip)")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless every common benchmark is at least this much faster than the baseline (0 = report only; same-machine runs only)")
		note       = flag.String("note", "", "free-form note stored in the report")
	)
	flag.Parse()

	rep, err := run(*bench, *benchtime, *pkg)
	if err != nil {
		fail(err)
	}
	rep.Note = *note

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}

	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fail(fmt.Errorf("baseline: %w", err))
	}
	if err := compare(base, rep, *minSpeedup); err != nil {
		fail(err)
	}
}

// run executes the benchmarks and parses the output.
func run(bench, benchtime, pkg string) (*Report, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", "1", pkg}
	fmt.Printf("go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	output := string(outBytes)
	fmt.Print(output)
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}

	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bytes, _ := strconv.ParseInt(m[4], 10, 64)
		allocs, _ := strconv.ParseInt(m[5], 10, 64)
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name: m[1], Iterations: iters, NsPerOp: ns,
			BytesPerOp: bytes, AllocsPerOp: allocs,
		})
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed (regex %q)", bench)
	}
	return rep, nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compare prints the trajectory table and applies the gates.
func compare(base, cur *Report, minSpeedup float64) error {
	byName := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var failures []string
	seen := map[string]bool{}
	fmt.Printf("\n%-34s %14s %14s %9s %14s\n", "benchmark", "baseline ns/op", "current ns/op", "speedup", "allocs (b→c)")
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		b, ok := byName[c.Name]
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %9s %14d\n", c.Name, "(new)", c.NsPerOp, "-", c.AllocsPerOp)
			continue
		}
		speedup := b.NsPerOp / c.NsPerOp
		fmt.Printf("%-34s %14.0f %14.0f %8.2fx %7d→%d\n",
			c.Name, b.NsPerOp, c.NsPerOp, speedup, b.AllocsPerOp, c.AllocsPerOp)
		if c.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op regressed %d → %d", c.Name, b.AllocsPerOp, c.AllocsPerOp))
		}
		if minSpeedup > 0 && speedup < minSpeedup && !b.FirstRecording {
			failures = append(failures, fmt.Sprintf(
				"%s: speedup %.2fx below required %.2fx", c.Name, speedup, minSpeedup))
		}
	}
	// A baseline benchmark the current run never produced means its
	// gate silently vanished (renamed benchmark, narrowed -bench
	// regex) — fail loudly instead.
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			failures = append(failures, fmt.Sprintf(
				"%s: present in baseline but missing from this run — its perf gate no longer applies", b.Name))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("\nperf gates passed")
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchrec:", err)
	os.Exit(1)
}
