// Command lbgraph prints random-walk diagnostics for a resource graph:
// spectral gap, the Lemma 2 mixing bound 4·ln n/µ, the exact TV mixing
// time, and the maximum hitting time — the quantities the paper's
// Theorem 3 and Theorem 7 bounds are expressed in.
//
// Usage:
//
//	lbgraph -graph torus -n 256
//	lbgraph -graph cliquependant -n 64 -k 2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	lb "repro"
	"repro/internal/cli"
)

func main() {
	var (
		graphKind = flag.String("graph", "complete", "complete|grid|torus|hypercube|expander|gnp|cliquependant")
		n         = flag.Int("n", 64, "number of resources (rounded per family)")
		k         = flag.Int("k", 2, "family parameter: pendant links / expander degree")
		p         = flag.Float64("p", 0.1, "G(n,p) edge probability")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT to stdout and exit")
		edgeList  = flag.Bool("edgelist", false, "emit a plain edge list to stdout and exit")
	)
	flag.Parse()

	g, err := cli.GraphSpec{Kind: *graphKind, N: *n, K: *k, P: *p, Seed: *seed}.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbgraph:", err)
		os.Exit(2)
	}
	if *dot {
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lbgraph:", err)
			os.Exit(1)
		}
		return
	}
	if *edgeList {
		if err := g.WriteEdgeList(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lbgraph:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("graph:        %s\n", g.Name())
	fmt.Printf("n, edges:     %d, %d\n", g.N(), g.M())
	fmt.Printf("degree:       min %d, max %d\n", g.MinDegree(), g.MaxDegree())
	fmt.Printf("connected:    %v\n", g.Connected())
	fmt.Printf("bipartite:    %v\n", g.IsBipartite())
	if g.N() <= 2048 {
		fmt.Printf("diameter:     %d\n", g.Diameter())
	}
	gap := lb.SpectralGap(g, *seed)
	fmt.Printf("spectral gap: %.6f (lazy max-degree walk)\n", gap)
	if gap > 0 {
		fmt.Printf("tau=4ln(n)/µ: %.1f\n", 4*math.Log(float64(g.N()))/gap)
	}
	fmt.Printf("tmix(TV,1/4): %d\n", lb.MixingTime(g))
	fmt.Printf("H(G):         %.1f\n", lb.MaxHittingTime(g))
}
