package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// runCLI invokes run() with stdout/stderr captured.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = run(args, &out, &errw)
	return out.String(), errw.String(), err
}

var smallRun = []string{
	"-graph", "complete", "-n", "64", "-proto", "resource",
	"-rounds", "120", "-window", "40", "-workers", "2", "-seed", "1",
}

// TestRunSummary: the plain CLI prints the config header, window table
// and final summary on stdout and nothing on stderr.
func TestRunSummary(t *testing.T) {
	stdout, stderr, err := runCLI(t, smallRun...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"graph:", "protocol:", "arrived:", "migrations:", "steady overload"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if stderr != "" {
		t.Errorf("unobserved run wrote to stderr:\n%s", stderr)
	}
}

// TestShardDebugGoesToStderr: -sharddebug telemetry renders on stderr
// only, so the stdout table and summary stay machine-parseable.
func TestShardDebugGoesToStderr(t *testing.T) {
	args := append([]string{"-sharddebug"}, smallRun...)
	stdout, stderr, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"[lanes]", "[shards]", "[phases]"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %s lines:\n%s", want, stderr)
		}
		if strings.Contains(stdout, want) {
			t.Errorf("%s debug lines leaked into stdout:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "service=") {
		t.Errorf("[phases] line missing per-phase timings:\n%s", stderr)
	}
}

// TestShardDebugDeterministic: the debug stream must not perturb the
// simulation — stdout is byte-identical with and without -sharddebug.
func TestShardDebugDeterministic(t *testing.T) {
	plain, _, err := runCLI(t, smallRun...)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	args := append([]string{"-sharddebug"}, smallRun...)
	debug, _, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("debug run: %v", err)
	}
	if plain != debug {
		t.Fatalf("-sharddebug changed stdout:\nplain:\n%s\ndebug:\n%s", plain, debug)
	}
}

// TestMetricsEndpoint: -metrics-addr serves Prometheus text with
// fleet, per-shard, lane and phase-timing series plus expvar.
func TestMetricsEndpoint(t *testing.T) {
	var body, vars string
	metricsHook = func(base string) {
		body = httpGet(t, base+"/metrics")
		vars = httpGet(t, base+"/debug/vars")
	}
	defer func() { metricsHook = nil }()

	args := append([]string{"-metrics-addr", "127.0.0.1:0", "-synthracks", "4"}, smallRun...)
	stdout, _, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "metrics:   http://127.0.0.1:") {
		t.Errorf("stdout missing metrics banner:\n%s", stdout)
	}
	for _, want := range []string{
		"lbdyn_overload_frac ",
		`lbdyn_shard_overload_frac{shard="0"}`,
		`lbdyn_exchange_inbound_total{shard="0"}`,
		`lbdyn_phase_nanos_total{shard="seq",phase="arrivals"}`,
		`lbdyn_domain_overload_frac{level="rack",domain="rack0"}`,
		"lbdyn_events_published_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", body)
	}
	if !strings.Contains(vars, `"lbdyn"`) {
		t.Errorf("/debug/vars missing lbdyn export:\n%s", vars)
	}
}

// TestEventsOut: -events-out writes a JSONL stream our own reader
// accepts, covering fleet, shard, domain and telemetry events.
func TestEventsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	args := append([]string{"-events-out", path, "-synthracks", "4"}, smallRun...)
	if _, _, err := runCLI(t, args...); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("ReadEvents of -events-out file: %v", err)
	}
	kinds := map[obs.Kind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.Kind{
		obs.KindWindow, obs.KindShardWindow, obs.KindDomainWindow,
		obs.KindLanes, obs.KindShardCost, obs.KindPhase,
	} {
		if kinds[want] == 0 {
			t.Errorf("event stream has no %s events (kinds: %v)", want, kinds)
		}
	}
}

// TestCheckpointCrashResume: a run killed by -crash-at-round exits
// with an error, its checkpoint files are byte-identical to the
// uninterrupted run's, and resuming from the last one reproduces the
// baseline summary and every later checkpoint exactly.
func TestCheckpointCrashResume(t *testing.T) {
	dir := t.TempDir()
	baseDir := filepath.Join(dir, "base")
	crashDir := filepath.Join(dir, "crash")
	resDir := filepath.Join(dir, "res")
	for _, d := range []string{baseDir, crashDir, resDir} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	common := []string{
		"-graph", "complete", "-n", "96", "-rounds", "120", "-window", "40",
		"-workers", "2", "-seed", "4", "-churn", "0.1",
		"-synthracks", "4", "-synthzones", "2", "-rehome", "locality",
		"-loss", "0.1", "-retry", "1:4:12", "-partition", "zone1:30:80",
		"-alert-budget", "0.3", "-alert-windows", "2",
		"-checkpoint-every", "40",
	}
	base, _, err := runCLI(t, append([]string{"-checkpoint-dir", baseDir}, common...)...)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	_, _, err = runCLI(t, append([]string{"-checkpoint-dir", crashDir, "-crash-at-round", "100"}, common...)...)
	if err == nil || !strings.Contains(err.Error(), "crash-at-round") {
		t.Fatalf("crash run error = %v, want the -crash-at-round notice", err)
	}
	readSnap := func(dir, name string) []byte {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, name := range []string{"ckpt-000040.snap", "ckpt-000080.snap"} {
		if !bytes.Equal(readSnap(baseDir, name), readSnap(crashDir, name)) {
			t.Fatalf("crashed run's %s differs from the baseline's", name)
		}
	}
	snap := filepath.Join(crashDir, "ckpt-000080.snap")
	resumed, _, err := runCLI(t, append([]string{"-checkpoint-dir", resDir, "-resume", snap}, common...)...)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	cut := func(s string) string {
		t.Helper()
		i := strings.Index(s, "arrived:")
		if i < 0 {
			t.Fatalf("no summary in output:\n%s", s)
		}
		return s[i:]
	}
	if cut(base) != cut(resumed) {
		t.Fatalf("resumed summary differs from baseline:\nbase:\n%s\nresumed:\n%s", cut(base), cut(resumed))
	}
	if !bytes.Equal(readSnap(baseDir, "ckpt-000120.snap"), readSnap(resDir, "ckpt-000120.snap")) {
		t.Fatal("post-resume checkpoint differs from the baseline's")
	}

	// Corruption and config drift must fail the resume loudly.
	trunc := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(trunc, readSnap(crashDir, "ckpt-000080.snap")[:100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, append([]string{"-resume", trunc}, common...)...); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("truncated snapshot resume error = %v, want a checksum failure", err)
	}
	drift := append([]string{"-resume", snap}, common...)
	for i, a := range drift {
		if a == "-seed" {
			drift[i+1] = "5"
		}
	}
	if _, _, err := runCLI(t, drift...); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed-drift resume error = %v, want a seed mismatch", err)
	}
}

// TestAlertsSurface: domain SLO alerts render on -sharddebug stderr
// and export as Prometheus series alongside the checkpoint counters.
func TestAlertsSurface(t *testing.T) {
	var body string
	metricsHook = func(base string) { body = httpGet(t, base+"/metrics") }
	defer func() { metricsHook = nil }()

	dir := t.TempDir()
	args := []string{
		"-sharddebug", "-metrics-addr", "127.0.0.1:0",
		"-graph", "complete", "-n", "100", "-rounds", "150", "-window", "50",
		"-workers", "2", "-seed", "2", "-rho", "0.95",
		"-synthracks", "4", "-alert-budget", "0.01", "-alert-windows", "1",
		"-checkpoint-every", "50", "-checkpoint-dir", dir,
	}
	_, stderr, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr, "[alert]") || !strings.Contains(stderr, "FIRING") {
		t.Errorf("stderr missing [alert] lines:\n%s", stderr)
	}
	if !strings.Contains(stderr, "[ckpt]") {
		t.Errorf("stderr missing [ckpt] lines:\n%s", stderr)
	}
	for _, want := range []string{
		"lbdyn_alerts_fired_total ",
		"lbdyn_checkpoints_total ",
		"lbdyn_checkpoint_last_round ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s\n%s", want, body)
		}
	}
}

// TestBadFlag: flag errors surface as errors, not os.Exit, and name
// the flag on stderr.
func TestBadFlag(t *testing.T) {
	_, stderr, err := runCLI(t, "-no-such-flag")
	if err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr does not name the bad flag:\n%s", stderr)
	}
	if _, _, err := runCLI(t, "stray-arg"); err == nil {
		t.Fatal("run accepted a stray positional argument")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

// TestCheckpointFlagValidation pins the error message for each invalid
// checkpoint-flag combination — in particular the mutually-exclusive
// -resume + -crash-at-round pair, where the crash drill belongs to the
// run that WRITES the checkpoint: a resumed run at or past the crash
// round would silently never fire it.
func TestCheckpointFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		extra   []string
		wantErr string
	}{
		{
			name:    "checkpoint-dir without cadence",
			extra:   []string{"-checkpoint-dir", t.TempDir()},
			wantErr: "-checkpoint-dir needs -checkpoint-every",
		},
		{
			name:    "resume with crash drill",
			extra:   []string{"-resume", "no-such.snap", "-crash-at-round", "10"},
			wantErr: "-resume and -crash-at-round are mutually exclusive: the crash drill scripts the run that writes the checkpoint; resume without it (or rerun the original flags to crash again)",
		},
		{
			name:    "resume with crash drill and cadence",
			extra:   []string{"-resume", "no-such.snap", "-crash-at-round", "60", "-checkpoint-every", "50"},
			wantErr: "-resume and -crash-at-round are mutually exclusive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := runCLI(t, append(append([]string{}, smallRun...), tc.extra...)...)
			if err == nil {
				t.Fatalf("run accepted %v", tc.extra)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSojournSummaryAlwaysOn: the sojourn/hops percentile line comes
// from the always-on lifecycle histograms — no tracing flags needed.
func TestSojournSummaryAlwaysOn(t *testing.T) {
	stdout, _, err := runCLI(t, smallRun...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "sojourn:    p50 ") || !strings.Contains(stdout, "| hops p99 ") {
		t.Errorf("summary missing the sojourn/hops percentile line:\n%s", stdout)
	}
}

// TestTraceOut: -trace-sample/-trace-out record sampled lifecycles as
// JSONL that the trace reader parses back, and the byte stream is
// identical for every worker count.
func TestTraceOut(t *testing.T) {
	dir := t.TempDir()
	runTrace := func(workers string) string {
		t.Helper()
		path := filepath.Join(dir, "trace-w"+workers+".jsonl")
		args := append([]string{"-trace-sample", "0.25", "-trace-out", path}, smallRun...)
		args = append(args, "-workers", workers) // later flag wins
		stdout, _, err := runCLI(t, args...)
		if err != nil {
			t.Fatalf("run (workers=%s): %v", workers, err)
		}
		if !strings.Contains(stdout, "trace:     sample=0.25") {
			t.Errorf("header missing the trace line:\n%s", stdout)
		}
		return path
	}
	p2 := runTrace("2")
	f, err := os.Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadRecords(f)
	f.Close()
	if err != nil {
		t.Fatalf("ReadRecords of -trace-out file: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("trace file is empty at sample=0.25")
	}
	ops := map[trace.Op]int{}
	for i := range recs {
		ops[recs[i].Op]++
	}
	if ops[trace.OpArrive] == 0 || ops[trace.OpDepart] == 0 {
		t.Errorf("trace stream lacks arrivals or departures (ops: %v)", ops)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(runTrace("8"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2, b8) {
		t.Error("trace stream differs between -workers 2 and -workers 8")
	}
}

// TestTraceFlagValidation pins the tracing flag errors.
func TestTraceFlagValidation(t *testing.T) {
	if _, _, err := runCLI(t, append([]string{"-trace-out", "x.jsonl"}, smallRun...)...); err == nil ||
		!strings.Contains(err.Error(), "-trace-out needs -trace-sample") {
		t.Errorf("-trace-out without sampling: got %v", err)
	}
	if _, _, err := runCLI(t, append([]string{"-trace-sample", "1.5"}, smallRun...)...); err == nil ||
		!strings.Contains(err.Error(), "must lie in [0, 1]") {
		t.Errorf("-trace-sample 1.5: got %v", err)
	}
}
