package main

import (
	"fmt"
	"io"
	"strings"

	lb "repro"
	"repro/internal/obs"
)

// debugRenderer turns the engine's lane / shard-cost / phase event
// stream into the human-readable -sharddebug lines, written to stderr
// so the stdout window table stays machine-parseable. Events for one
// telemetry window arrive contiguously and end with the engine-level
// (Shard = -1) phase profile, which triggers the flush; a pump
// goroutine drains the subscription so rendering never blocks the
// round loop.
type debugRenderer struct {
	w    io.Writer
	sub  *lb.ObsSubscription
	done chan struct{}

	round  int
	lanes  []obs.LaneStats
	costs  []obs.ShardCost
	phases [obs.NumPhases]int64 // per-shard phases summed across shards
}

func newDebugRenderer(w io.Writer, sub *lb.ObsSubscription) *debugRenderer {
	d := &debugRenderer{w: w, sub: sub, done: make(chan struct{})}
	go d.pump()
	return d
}

func (d *debugRenderer) pump() {
	defer close(d.done)
	buf := make([]obs.Event, 0, 256)
	for evs := d.sub.Wait(buf); evs != nil; evs = d.sub.Wait(buf) {
		for i := range evs {
			d.apply(&evs[i])
		}
	}
	d.flush() // partial window at shutdown, if any
	if n := d.sub.Dropped(); n > 0 {
		fmt.Fprintf(d.w, "[debug] %d telemetry events dropped (slow stderr)\n", n)
	}
}

func (d *debugRenderer) apply(ev *obs.Event) {
	d.round = ev.Round
	switch ev.Kind {
	case obs.KindLanes:
		d.lanes = append(d.lanes, ev.Lane)
	case obs.KindShardCost:
		d.costs = append(d.costs, ev.ShardCost)
	case obs.KindPhase:
		if ev.Phase.Shard >= 0 {
			for p, ns := range ev.Phase.Nanos {
				d.phases[p] += ns
			}
			return
		}
		// Engine-level profile closes the window: fold in the
		// sequential phases and render everything buffered.
		for p, ns := range ev.Phase.Nanos {
			d.phases[p] += ns
		}
		d.flush()
	case obs.KindAlert:
		// Domain SLO transitions render immediately — an alert should
		// never wait for the next telemetry window to flush.
		a := ev.Alert
		state := "FIRING"
		if a.Cleared {
			state = "cleared"
		}
		fmt.Fprintf(d.w, "[alert] round %d %s %s %q overload=%.1f%% budget=%.1f%% windows=%d\n",
			ev.Round, state, a.Level, a.Name, 100*a.OverloadFrac, 100*a.Budget, a.Windows)
	case obs.KindCheckpoint:
		c := ev.Checkpoint
		fmt.Fprintf(d.w, "[ckpt] round %d snapshot %d bytes\n", c.Round, c.Bytes)
	case obs.KindFaults:
		// The fault snapshot trails the phase profile that closed the
		// window, so it renders directly rather than via the buffer.
		f := ev.Faults
		fmt.Fprintf(d.w, "[faults] round %d lost=%d retries=%d timeouts=%d delayed=%d dup=%d dedup=%d blocked=%d bounced=%d ledger=%d(w=%.0f) quarantined=%d\n",
			ev.Round, f.Lost, f.Retries, f.Timeouts, f.Delayed, f.Duplicated, f.Deduped,
			f.PartitionBlocked, f.Bounced, f.Ledger, f.LedgerWeight, f.Quarantined)
	}
}

func (d *debugRenderer) flush() {
	if len(d.lanes) == 0 && len(d.costs) == 0 && d.phases == ([obs.NumPhases]int64{}) {
		return
	}
	var b strings.Builder
	if len(d.lanes) > 0 {
		fmt.Fprintf(&b, "[lanes] round %d inbound/dest:", d.round)
		for _, l := range d.lanes {
			fmt.Fprintf(&b, " %d:%d", l.Shard, l.Inbound)
		}
		b.WriteByte('\n')
	}
	if len(d.costs) > 0 {
		total := int64(0)
		for _, c := range d.costs {
			total += c.Nanos
		}
		fmt.Fprintf(&b, "[shards] round %d:", d.round)
		for _, c := range d.costs {
			share := 0.0
			if total > 0 {
				share = 100 * float64(c.Nanos) / float64(total)
			}
			fmt.Fprintf(&b, " %d:[%d,%d) %.0f%%", c.Shard, c.Lo, c.Hi, share)
		}
		b.WriteByte('\n')
	}
	if d.phases != ([obs.NumPhases]int64{}) {
		fmt.Fprintf(&b, "[phases] round %d:", d.round)
		for p := obs.PhaseID(0); p < obs.NumPhases; p++ {
			fmt.Fprintf(&b, " %s=%.2fms", p, float64(d.phases[p])/1e6)
		}
		b.WriteByte('\n')
	}
	io.WriteString(d.w, b.String())
	d.lanes = d.lanes[:0]
	d.costs = d.costs[:0]
	d.phases = [obs.NumPhases]int64{}
}

// Close waits for the pump to drain the remaining buffered events; the
// broker must already be closed.
func (d *debugRenderer) Close() { <-d.done }
