// Command lbdyn runs an open-system (dynamic) threshold-balancing
// scenario: continuous task arrivals and departures, optional resource
// churn, and thresholds re-estimated online. It prints one line per
// metrics window plus a final summary.
//
// Usage examples:
//
//	lbdyn -graph complete -n 1000 -rho 0.8 -proto user -rounds 600
//	lbdyn -graph torus -n 1024 -proto resource -lazy -dispatch hotspot -rho 0.9
//	lbdyn -graph expander -n 500 -k 8 -proto resource -churn 0.1 -rounds 1000
//	lbdyn -graph complete -n 200 -arrivals burst -burst-every 50 -burst-size 200
//	lbdyn -graph expander -n 100000 -k 16 -proto resource -workers 8 -rounds 2000
//	lbdyn -graph complete -n 1000 -trace ingress.csv -rounds 5000
//	lbdyn -graph expander -n 1000 -k 8 -proto resource -speedspread 10 -dispatch speed
//	lbdyn -graph complete -n 500 -speeds fleet.csv -dispatch power2 -rho 0.85
//	lbdyn -graph complete -n 1000 -metrics-addr :9090 -events-out run.jsonl
//	lbdyn -graph complete -n 1000 -loss 0.01 -retry 1:8:30 -quarantine 3:50:100
//	lbdyn -graph torus -n 1024 -synthracks 16 -partition 2:100:200 -dup 0.001
//
// -workers shards the round pipeline across a persistent worker pool;
// results are bit-identical for every worker count (0 = GOMAXPROCS).
// -trace replays a recorded arrival log (.csv round,weight records or
// .jsonl {"round":r,"weight":w} lines) instead of a synthetic process.
// -speeds loads a heterogeneous speed profile (.csv resource,speed
// records or .jsonl {"resource":r,"speed":s} lines; unlisted resources
// run at speed 1) and -speedspread S generates a linear 1→S ramp;
// either one makes service, thresholds and load-aware dispatch
// speed-proportional, and the per-window p99 column switches to
// load-per-speed (the quantity the proportional thresholds equalise).
//
// Observability: -metrics-addr serves Prometheus text on /metrics plus
// expvar (/debug/vars) and pprof (/debug/pprof/) on one mux for the
// duration of the run; -events-out streams every engine event as JSONL
// (readable back with the same codec); -sharddebug renders exchange
// lane occupancy, per-shard cost shares and phase-timing profiles to
// STDERR, so the stdout window table and summary stay machine-
// parseable. All three ride the same bounded event broker and leave
// results bit-for-bit identical to an unobserved run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	lb "repro"
	"repro/internal/cli"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lbdyn:", err)
		os.Exit(2)
	}
}

// metricsHook, when non-nil, is called with the metrics base URL after
// the simulation finishes but before the HTTP server shuts down — the
// seam CLI tests scrape through.
var metricsHook func(baseURL string)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbdyn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphKind = fs.String("graph", "complete", "complete|grid|torus|hypercube|expander|gnp|cliquependant")
		n         = fs.Int("n", 1000, "number of resources (rounded per family)")
		k         = fs.Int("k", 8, "family parameter: pendant links / expander degree")
		p         = fs.Float64("p", 0.1, "G(n,p) edge probability")
		proto     = fs.String("proto", "user", "user|resource|usergraph|mixed")
		alpha     = fs.Float64("alpha", 1, "user-protocol migration constant")
		eps       = fs.Float64("eps", 0.5, "threshold slack epsilon")
		lazy      = fs.Bool("lazy", false, "use the 1/2-lazy walk (resource protocol)")
		rounds    = fs.Int("rounds", 600, "simulated rounds")
		window    = fs.Int("window", 100, "metrics window length")
		seed      = fs.Uint64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "round-pipeline shards (0 = GOMAXPROCS, 1 = sequential; results identical for any value)")

		arrivals   = fs.String("arrivals", "poisson", "poisson|burst")
		tracePath  = fs.String("trace", "", "replay a recorded arrival trace (.csv round,weight or .jsonl) instead of -arrivals")
		rho        = fs.Float64("rho", 0.8, "offered utilisation (poisson rate = rho*n*svcrate/E[w])")
		burstEvery = fs.Int("burst-every", 50, "burst period in rounds")
		burstSize  = fs.Int("burst-size", 100, "tasks per burst")
		weights    = fs.String("weights", "pareto", "pareto|unit|exp|range")
		palpha     = fs.Float64("pareto-alpha", 2, "Pareto shape")
		pcap       = fs.Float64("pareto-cap", 20, "Pareto weight cap (0 = uncapped)")
		expMean    = fs.Float64("exp-mean", 2, "exponential weight mean")
		rangeLo    = fs.Float64("range-lo", 1, "uniform range low")
		rangeHi    = fs.Float64("range-hi", 4, "uniform range high")

		service = fs.String("service", "weight", "weight (proportional to weight) | geom")
		svcRate = fs.Float64("svcrate", 1, "weight-units served per resource per round")
		geomP   = fs.Float64("geomp", 0.05, "geometric per-round departure probability")

		dispatch = fs.String("dispatch", "uniform", "uniform|hotspot|power2|speed")
		hotspot  = fs.Int("hotspot", 0, "hotspot ingress resource")

		speedsPath  = fs.String("speeds", "", "heterogeneous speed profile (.csv resource,speed or .jsonl; unlisted resources get speed 1)")
		speedSpread = fs.Float64("speedspread", 0, "generate a linear speed ramp 1..S across the resources (0 = homogeneous)")

		churn      = fs.Float64("churn", 0, "per-round leave/join probability (0 = no churn)")
		minUp      = fs.Int("minup", 0, "floor on up resources (0 = n/2 when churn > 0)")
		oracle     = fs.Bool("oracle", false, "exact-average thresholds instead of self-tuned diffusion estimates")
		check      = fs.Bool("check", false, "validate weight conservation every round (slow)")
		shardDebug = fs.Bool("sharddebug", false, "render per-shard cost, exchange-lane and phase-timing telemetry to stderr at every telemetry window")

		topoPath   = fs.String("topology", "", "failure-domain inventory (.csv resource,rack,zone or .jsonl; enables rack-aware failures and locality re-homing)")
		synthRacks = fs.Int("synthracks", 0, "synthesise a topology with this many contiguous racks (mutually exclusive with -topology)")
		synthZones = fs.Int("synthzones", 1, "zones for the synthesised topology")
		rehome     = fs.String("rehome", "uniform", "evacuation re-home policy: uniform|power2|locality|speed")
		eventsPath = fs.String("events", "", "scripted churn-event schedule (.csv round,every,down,up or .jsonl with down_list/up_list)")
		rackMTBF   = fs.Float64("rackmtbf", 0, "mean rounds between whole-rack failures (compiled failure model; needs a topology)")
		rackMTTR   = fs.Float64("rackmttr", 0, "mean rounds to repair a failed rack")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address for the duration of the run (e.g. :9090)")
		eventsOut   = fs.String("events-out", "", "stream the engine's event feed (windows, lanes, phases, recovery episodes) as JSONL to this file (- = stdout)")
		traceSample = fs.Float64("trace-sample", 0, "per-task lifecycle trace sampling probability in [0,1] (stateless hash of the task ID — worker-count invariant; 0 = off)")
		traceOut    = fs.String("trace-out", "", "write sampled task-lifecycle records (arrivals, hops with causes, retries, departures) as JSONL to this file (- = stdout; needs -trace-sample)")
		traceSeed   = fs.Uint64("trace-seed", 0, "trace sampling seed, decoupled from -seed so repeated passes can sample different task subsets")

		alertBudget  = fs.Float64("alert-budget", 0, "domain SLO overload budget: alert when a rack/zone window overload fraction exceeds this for -alert-windows consecutive windows (0 = off; needs a topology)")
		alertWindows = fs.Int("alert-windows", 3, "consecutive over-budget windows before a domain alert fires")

		checkpointEvery = fs.Int("checkpoint-every", 0, "write a full engine checkpoint every this many rounds (0 = off)")
		checkpointDir   = fs.String("checkpoint-dir", "", "directory for ckpt-<round>.snap files (atomic writes; default with -checkpoint-every: current directory)")
		resumePath      = fs.String("resume", "", "resume from a checkpoint file instead of starting at round 0 (flags must rebuild the checkpointed scenario)")
		crashAtRound    = fs.Int("crash-at-round", 0, "kill the run after this round and exit nonzero — crash-injection for checkpoint/resume drills (0 = off)")

		loss       = fs.Float64("loss", 0, "per-migration loss probability (lost moves are ledgered and retried with backoff)")
		delayProb  = fs.Float64("delayprob", 0, "per-migration delay probability (delayed moves deliver 1..delaymax rounds late)")
		delayMax   = fs.Int("delaymax", 4, "maximum extra rounds a delayed migration spends in flight")
		dup        = fs.Float64("dup", 0, "per-migration duplication probability (late copies are deduped on arrival)")
		retrySpec  = fs.String("retry", "", "lost-message retry policy BASE:CAP:TIMEOUT in rounds (default 1:8:30)")
		partition  = fs.String("partition", "", "scripted partition windows RACK:START:END, comma-separated (needs -topology or -synthracks)")
		faultPlan  = fs.String("faultplan", "", "load a fault plan (.csv kind,a,b,c or .jsonl directives); mutually exclusive with -loss/-delayprob/-dup/-retry/-partition")
		quarantine = fs.String("quarantine", "", "flapping hold-down FLAPS:WINDOW:COOLOFF — quarantine a resource after FLAPS transitions within a WINDOW-round window for COOLOFF rounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	g, err := cli.GraphSpec{Kind: *graphKind, N: *n, K: *k, P: *p, Seed: *seed}.Build()
	if err != nil {
		return err
	}

	// Heterogeneous speed profile: a file, or a generated linear ramp.
	// totalSpeed is the fleet's service capacity in unit-resource
	// equivalents — the n of the rho → rate conversion.
	var speeds []float64
	switch {
	case *speedsPath != "" && *speedSpread > 0:
		return fmt.Errorf("-speeds and -speedspread are mutually exclusive")
	case *speedsPath != "":
		if speeds, err = lb.LoadSpeeds(*speedsPath, g.N()); err != nil {
			return err
		}
	case *speedSpread > 0:
		if *speedSpread < 1 {
			return fmt.Errorf("-speedspread %g must be >= 1", *speedSpread)
		}
		speeds = make([]float64, g.N())
		for r := range speeds {
			frac := 0.0
			if g.N() > 1 {
				frac = float64(r) / float64(g.N()-1)
			}
			speeds[r] = 1 + (*speedSpread-1)*frac
		}
	}
	totalSpeed := float64(g.N())
	if speeds != nil {
		totalSpeed = 0
		for _, s := range speeds {
			totalSpeed += s
		}
	}

	var dist lb.WeightDist
	meanW := 1.0
	switch *weights {
	case "pareto":
		dist = lb.ParetoDist(*palpha, *pcap)
		// E[min(Pareto(1,a), cap)]; without a cap, a <= 1 has no finite
		// mean and the rho -> rate conversion is meaningless.
		switch {
		case *pcap > 0 && *palpha == 1:
			meanW = 1 + math.Log(*pcap)
		case *pcap > 0:
			c1a := math.Pow(*pcap, 1-*palpha)
			meanW = *palpha*(c1a-1)/(1-*palpha) + c1a
		case *palpha > 1:
			meanW = *palpha / (*palpha - 1)
		default:
			return fmt.Errorf("pareto with alpha <= 1 needs -pareto-cap for a finite mean (rho is undefined otherwise)")
		}
	case "unit":
		dist = lb.UnitDist()
	case "exp":
		dist = lb.ExponentialDist(*expMean)
		meanW = *expMean
	case "range":
		dist = lb.UniformRangeDist(*rangeLo, *rangeHi)
		meanW = (*rangeLo + *rangeHi) / 2
	default:
		return fmt.Errorf("unknown weight distribution %q", *weights)
	}

	var arr lb.Arrivals
	switch {
	case *tracePath != "":
		if arr, err = lb.LoadTraceArrivals(*tracePath); err != nil {
			return err
		}
	case *arrivals == "poisson":
		arr = lb.PoissonArrivals(*rho*totalSpeed**svcRate/meanW, dist)
	case *arrivals == "burst":
		arr = lb.BurstArrivals(*burstEvery, *burstSize, dist)
	default:
		return fmt.Errorf("unknown arrival process %q", *arrivals)
	}

	var svc lb.Service
	switch *service {
	case "weight":
		svc = lb.WeightProportionalService(*svcRate)
	case "geom":
		svc = lb.GeometricService(*geomP)
	default:
		return fmt.Errorf("unknown service discipline %q", *service)
	}

	var disp lb.Dispatch
	switch *dispatch {
	case "uniform":
		disp = lb.UniformDispatch()
	case "hotspot":
		disp = lb.HotspotDispatch(*hotspot)
	case "power2":
		disp = lb.PowerOfDDispatch(2)
	case "speed":
		disp = lb.SpeedWeightedDispatch()
	default:
		return fmt.Errorf("unknown dispatch %q", *dispatch)
	}

	kind, err := protocolKind(*proto)
	if err != nil {
		return err
	}

	// Failure-domain topology: a fleet inventory file, or a synthetic
	// contiguous-rack layout.
	var topo *lb.Topology
	switch {
	case *topoPath != "" && *synthRacks > 0:
		return fmt.Errorf("-topology and -synthracks are mutually exclusive")
	case *topoPath != "":
		if topo, err = lb.LoadTopology(*topoPath, g.N()); err != nil {
			return err
		}
	case *synthRacks > 0:
		if topo, err = lb.SynthTopology(g.N(), *synthRacks, *synthZones); err != nil {
			return err
		}
	}

	var rehomer lb.RehomePolicy
	switch *rehome {
	case "uniform":
		rehomer = lb.UniformRehome()
	case "power2":
		rehomer = lb.PowerOfDRehome(2)
	case "locality":
		if topo == nil {
			return fmt.Errorf("-rehome locality needs -topology or -synthracks")
		}
		rehomer = lb.LocalityRehome(topo)
	case "speed":
		rehomer = lb.SpeedWeightedRehome()
	default:
		return fmt.Errorf("unknown re-home policy %q", *rehome)
	}

	var spec lb.ChurnSpec
	if *churn > 0 {
		up := *minUp
		if up <= 0 {
			up = g.N() / 2
		}
		spec = lb.ChurnSpec{LeaveProb: *churn, JoinProb: *churn, MinUp: up}
	} else if *minUp > 0 {
		spec.MinUp = *minUp
	}
	if *eventsPath != "" {
		if spec.Events, err = lb.LoadChurnEvents(*eventsPath, g.N()); err != nil {
			return err
		}
	}
	if *rackMTBF > 0 || *rackMTTR > 0 {
		if len(spec.Events) > 0 {
			return fmt.Errorf("-events and -rackmtbf/-rackmttr are mutually exclusive (the compiled schedule could contradict the scripted one)")
		}
		if topo == nil {
			return fmt.Errorf("-rackmtbf/-rackmttr need -topology or -synthracks")
		}
		model := lb.FailureModel{Topo: topo, RackMTBF: *rackMTBF, RackMTTR: *rackMTTR}
		if spec.Events, err = model.Compile(*rounds, *seed); err != nil {
			return err
		}
	}

	// Unreliable-network plan: a fault-plan file, or assembled from the
	// scalar fault flags. Either way the plan is validated against the
	// fleet before the run starts.
	var plan *lb.FaultPlan
	scalarFaults := *loss > 0 || *delayProb > 0 || *dup > 0 || *retrySpec != "" || *partition != ""
	switch {
	case *faultPlan != "" && scalarFaults:
		return fmt.Errorf("-faultplan and the scalar fault flags (-loss/-delayprob/-dup/-retry/-partition) are mutually exclusive")
	case *faultPlan != "":
		if plan, err = lb.LoadFaultPlan(*faultPlan, g.N()); err != nil {
			return err
		}
	case scalarFaults:
		plan = &lb.FaultPlan{Loss: *loss, DelayProb: *delayProb, DelayMax: *delayMax, DupProb: *dup}
		if *retrySpec != "" {
			if plan.RetryBase, plan.RetryCap, plan.Timeout, err = parseTriple(*retrySpec); err != nil {
				return fmt.Errorf("-retry: %w (want BASE:CAP:TIMEOUT)", err)
			}
		}
		if *partition != "" {
			if topo == nil {
				return fmt.Errorf("-partition needs -topology or -synthracks to name racks")
			}
			// Each entry is DOMAIN:START:END where DOMAIN is a rack index
			// or a rack/zone name from the topology inventory ("rack3",
			// "zone1", or whatever the CSV/JSONL loader recorded).
			for _, ent := range strings.Split(*partition, ",") {
				dom, span, ok := strings.Cut(ent, ":")
				if !ok {
					return fmt.Errorf("-partition %q: want DOMAIN:START:END", ent)
				}
				dom = strings.TrimSpace(dom)
				var start, end int
				if _, err := fmt.Sscanf(span, "%d:%d", &start, &end); err != nil {
					return fmt.Errorf("-partition %q: bad START:END %q", ent, span)
				}
				if rack, err := strconv.Atoi(dom); err == nil {
					if rack < 0 || rack >= topo.Racks() {
						return fmt.Errorf("-partition %q: rack %d out of range [0,%d)", ent, rack, topo.Racks())
					}
					plan.Partitions = append(plan.Partitions, lb.PartitionRack(topo, rack, start, end))
					continue
				}
				members, ok := topo.Resolve(dom)
				if !ok {
					return fmt.Errorf("-partition %q: no rack or zone named %q in the topology", ent, dom)
				}
				plan.Partitions = append(plan.Partitions, lb.FaultPartition{Start: start, End: end, Members: members})
			}
		}
		if err := plan.Validate(g.N()); err != nil {
			return err
		}
	}

	var quar lb.QuarantineSpec
	if *quarantine != "" {
		if quar.Flaps, quar.Window, quar.Cooloff, err = parseTriple(*quarantine); err != nil {
			return fmt.Errorf("-quarantine: %w (want FLAPS:WINDOW:COOLOFF)", err)
		}
		if quar.Flaps <= 0 {
			return fmt.Errorf("-quarantine: FLAPS must be positive, got %d", quar.Flaps)
		}
		// Normalise to the engine's defaults so the header line shows
		// the effective policy.
		if quar.Window == 0 {
			quar.Window = 50
		}
		if quar.Cooloff == 0 {
			quar.Cooloff = 100
		}
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("-trace-sample %g must lie in [0, 1]", *traceSample)
	}
	if *traceOut != "" && *traceSample == 0 {
		return fmt.Errorf("-trace-out needs -trace-sample > 0 (no tasks are sampled otherwise)")
	}

	sc := lb.DynamicScenario{
		Graph:            g,
		Speeds:           speeds,
		Protocol:         kind,
		Alpha:            *alpha,
		Epsilon:          *eps,
		LazyWalk:         *lazy,
		Seed:             *seed,
		Workers:          nWorkers,
		Rounds:           *rounds,
		Window:           *window,
		Arrivals:         arr,
		Service:          svc,
		Dispatch:         disp,
		Rehome:           rehomer,
		OracleThresholds: *oracle,
		Churn:            spec,
		Faults:           plan,
		Quarantine:       quar,
		CheckInvariants:  *check,
		OnWindow: func(w lb.WindowStats) {
			p99 := w.P99Load
			if speeds != nil {
				p99 = w.P99LoadPerSpeed
			}
			fmt.Fprintf(stdout, "%4d-%-4d %9.2f%% %10.2f %10.2f %10.2f %10.2f %10.0f %6d\n",
				w.Start, w.End, 100*w.OverloadFrac, w.MigrationRate, w.ArrivalRate,
				w.DepartureRate, p99, w.InFlightWeight, w.UpResources)
		},
	}
	if topo != nil {
		sc.Domains = lb.ObsDomains(topo)
	}

	if *alertBudget > 0 {
		if topo == nil {
			return fmt.Errorf("-alert-budget needs -topology or -synthracks (alerts are per failure domain)")
		}
		sc.AlertBudget = *alertBudget
		sc.AlertWindows = *alertWindows
	}

	sc.TraceSample = *traceSample
	sc.TraceSeed = *traceSeed

	sc.CheckpointEvery = *checkpointEvery
	sc.CrashAfterRound = *crashAtRound
	if *checkpointDir != "" && *checkpointEvery <= 0 {
		return fmt.Errorf("-checkpoint-dir needs -checkpoint-every")
	}
	if *resumePath != "" && *crashAtRound > 0 {
		return fmt.Errorf("-resume and -crash-at-round are mutually exclusive: the crash drill scripts the run that writes the checkpoint; resume without it (or rerun the original flags to crash again)")
	}
	if *checkpointEvery > 0 {
		dir := *checkpointDir
		if dir == "" {
			dir = "."
		}
		sc.OnCheckpoint = func(round int, data []byte) error {
			return lb.WriteSnapshotFile(filepath.Join(dir, fmt.Sprintf("ckpt-%06d.snap", round)), data)
		}
	}

	// Observability attachments share one broker; each consumer gets
	// its own bounded subscription, so a slow one drops its own events
	// without stalling the round loop or the other consumers. Domain
	// alerts ride the same broker, so arming them attaches one too.
	needObs := *shardDebug || *metricsAddr != "" || *eventsOut != "" || *alertBudget > 0 || *traceOut != ""
	if needObs {
		sc.Obs = lb.NewObsBroker()
	}

	var debug *debugRenderer
	if *shardDebug {
		debug = newDebugRenderer(stderr, sc.Subscribe(lb.ObsSubOptions{
			Capacity: 4096,
			Kinds:    obs.Mask(obs.KindLanes, obs.KindShardCost, obs.KindPhase, obs.KindFaults, obs.KindAlert, obs.KindCheckpoint),
		}))
	}

	var sink *obs.Sink
	if *eventsOut != "" {
		w := io.Writer(stdout)
		var f *os.File
		if *eventsOut != "-" {
			if f, err = os.Create(*eventsOut); err != nil {
				return err
			}
			w = f
		}
		sink = obs.NewSink(w, sc.Obs, obs.SubOptions{Capacity: 8192})
		defer func() {
			if f != nil {
				f.Close()
			}
		}()
	}

	var tsink *obs.TraceSink
	if *traceOut != "" {
		w := io.Writer(stdout)
		var f *os.File
		if *traceOut != "-" {
			if f, err = os.Create(*traceOut); err != nil {
				return err
			}
			w = f
		}
		tsink = obs.NewTraceSink(w, sc.Obs, 8192)
		defer func() {
			if f != nil {
				f.Close()
			}
		}()
	}

	var srv *http.Server
	var metricsURL string
	if *metricsAddr != "" {
		exp := obs.NewExporter(sc.Obs, 8192)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		exp.PublishExpvar()
		srv = &http.Server{Handler: exp.Mux(), ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln)
		metricsURL = "http://" + ln.Addr().String()
	}

	fmt.Fprintf(stdout, "graph:     %s (n=%d)\n", g.Name(), g.N())
	if speeds != nil {
		minS, maxS := speeds[0], speeds[0]
		for _, s := range speeds {
			minS = math.Min(minS, s)
			maxS = math.Max(maxS, s)
		}
		fmt.Fprintf(stdout, "speeds:    heterogeneous (min=%g max=%g total=%g) — p99 column is load/speed\n",
			minS, maxS, totalSpeed)
	}
	fmt.Fprintf(stdout, "protocol:  %s (eps=%g alpha=%g lazy=%v oracle=%v workers=%d)\n", kind, *eps, *alpha, *lazy, *oracle, nWorkers)
	fmt.Fprintf(stdout, "arrivals:  %s  service: %s  dispatch: %s  churn: %g\n", arr.Name(), svc.Name(), disp.Name(), *churn)
	if topo != nil {
		fmt.Fprintf(stdout, "topology:  %d racks in %d zones  rehome: %s  events: %d\n",
			topo.Racks(), topo.Zones(), rehomer.Name(), len(spec.Events))
	} else if len(spec.Events) > 0 || *rehome != "uniform" {
		fmt.Fprintf(stdout, "rehome:    %s  events: %d\n", rehomer.Name(), len(spec.Events))
	}
	if plan.Active() || *quarantine != "" {
		fmt.Fprintf(stdout, "faults:    ")
		if plan.Active() {
			eff := *plan
			if eff.RetryBase == 0 {
				eff.RetryBase = 1
			}
			if eff.RetryCap == 0 {
				eff.RetryCap = 8
			}
			if eff.Timeout == 0 {
				eff.Timeout = 30
			}
			fmt.Fprintf(stdout, "loss=%g delay=%g(max %d) dup=%g retry=%d:%d:%d partitions=%d",
				eff.Loss, eff.DelayProb, eff.DelayMax, eff.DupProb,
				eff.RetryBase, eff.RetryCap, eff.Timeout, len(eff.Partitions))
		} else {
			fmt.Fprintf(stdout, "none")
		}
		if *quarantine != "" {
			fmt.Fprintf(stdout, "  quarantine=%d:%d:%d", quar.Flaps, quar.Window, quar.Cooloff)
		}
		fmt.Fprintln(stdout)
	}
	if metricsURL != "" {
		fmt.Fprintf(stdout, "metrics:   %s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", metricsURL)
	}
	if *traceSample > 0 {
		fmt.Fprintf(stdout, "trace:     sample=%g seed=%d", *traceSample, *traceSeed)
		if *traceOut != "" {
			fmt.Fprintf(stdout, " out=%s", *traceOut)
		}
		fmt.Fprintln(stdout)
	}
	if *alertBudget > 0 {
		fmt.Fprintf(stdout, "alerts:    budget=%g%% windows=%d per rack/zone\n", 100**alertBudget, *alertWindows)
	}
	if *checkpointEvery > 0 || *resumePath != "" {
		fmt.Fprintf(stdout, "ckpt:      every=%d", *checkpointEvery)
		if *checkpointEvery > 0 {
			dir := *checkpointDir
			if dir == "" {
				dir = "."
			}
			fmt.Fprintf(stdout, " dir=%s", dir)
		}
		if *resumePath != "" {
			fmt.Fprintf(stdout, " resume=%s", *resumePath)
		}
		if *crashAtRound > 0 {
			fmt.Fprintf(stdout, " crash-at=%d", *crashAtRound)
		}
		fmt.Fprintln(stdout)
	}
	p99Label := "p99load"
	if speeds != nil {
		p99Label = "p99 x/s"
	}
	fmt.Fprintf(stdout, "%8s %10s %10s %10s %10s %10s %10s %6s\n",
		"rounds", "overload%", "mig/round", "arr/round", "dep/round", p99Label, "W-inflight", "up")

	var res lb.DynamicResult
	var runErr error
	if *resumePath != "" {
		res, runErr = resumeRun(sc, *resumePath)
	} else {
		res, runErr = sc.Run()
	}

	// Shut down the observability consumers in dependency order: close
	// the broker so drains see EOF, join the renderer and sink pumps,
	// then (after the test hook scraped) stop the HTTP server.
	if sc.Obs != nil {
		sc.Obs.Close()
	}
	if debug != nil {
		debug.Close()
	}
	if sink != nil {
		if err := sink.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("-events-out: %w", err)
		}
	}
	if tsink != nil {
		if err := tsink.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("-trace-out: %w", err)
		}
	}
	if srv != nil {
		if metricsHook != nil {
			metricsHook(metricsURL)
		}
		srv.Close()
	}
	if runErr != nil {
		if errors.Is(runErr, lb.ErrCrashed) {
			return fmt.Errorf("crashed after round %d by -crash-at-round; resume from the last checkpoint with -resume", *crashAtRound)
		}
		return runErr
	}

	fmt.Fprintf(stdout, "\narrived:    %d tasks (weight %.0f)\n", res.Arrived, res.ArrivedWeight)
	fmt.Fprintf(stdout, "departed:   %d tasks (weight %.0f)\n", res.Departed, res.DepartedWeight)
	fmt.Fprintf(stdout, "in flight:  %d tasks (weight %.0f)\n", res.FinalInFlight, res.FinalWeight)
	fmt.Fprintf(stdout, "migrations: %d (weight %.0f)\n", res.Migrations, res.MovedWeight)
	if res.Departed > 0 {
		fmt.Fprintf(stdout, "sojourn:    p50 %.0f p99 %.0f rounds | hops p99 %.0f\n",
			res.Sojourn.Quantile(0.50), res.Sojourn.Quantile(0.99), res.Hops.Quantile(0.99))
	}
	if res.Rehomed > 0 || res.Downs > 0 {
		fmt.Fprintf(stdout, "churn:      %d downs, %d ups, %d tasks re-homed (weight %.0f)\n",
			res.Downs, res.Ups, res.Rehomed, res.RehomedWeight)
	}
	if res.Lost > 0 || res.Delayed > 0 || res.Duplicated > 0 || res.PartitionBlocked > 0 || res.Timeouts > 0 {
		fmt.Fprintf(stdout, "faults:     %d lost (%d retries, %d timeouts), %d delayed, %d duplicated (%d deduped), %d partition-blocked\n",
			res.Lost, res.Retries, res.Timeouts, res.Delayed, res.Duplicated, res.Deduped, res.PartitionBlocked)
	}
	if res.FinalLedger > 0 {
		fmt.Fprintf(stdout, "ledger:     %d moves still in flight (weight %.0f)\n", res.FinalLedger, res.FinalLedgerWeight)
	}
	if res.Bounced > 0 {
		fmt.Fprintf(stdout, "bounced:    %d deliveries returned to source (weight %.0f)\n", res.Bounced, res.BouncedWeight)
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(stdout, "quarantine: %d flapping holds\n", res.Quarantined)
	}
	if len(res.Recoveries) > 0 {
		drained := 0
		for _, rs := range res.Recoveries {
			if rs.Drained() {
				drained++
			}
		}
		fmt.Fprintf(stdout, "recovery:   %d episodes (%d drained), peak post-failure overload %.2f%%",
			len(res.Recoveries), drained, 100*res.PeakPostFailureOverload())
		if mean := res.MeanDrainRounds(); !math.IsNaN(mean) {
			fmt.Fprintf(stdout, ", mean drain %.1f rounds", mean)
		}
		fmt.Fprintln(stdout)
	}
	if frac := res.TailOverloadFrac(2); !math.IsNaN(frac) {
		fmt.Fprintf(stdout, "steady overload (skip 2 windows): %.3f%%\n", 100*frac)
	} else {
		fmt.Fprintln(stdout, "steady overload: run at least 3 windows for a warmed-up figure")
	}
	return nil
}

// resumeRun restores a checkpoint into the configured scenario and
// runs it to completion. The flags must rebuild the checkpointed
// scenario (same graph, seed, horizon, fault plan, ...); any drift is
// a structured restore error, never a silently different run.
func resumeRun(sc lb.DynamicScenario, path string) (lb.DynamicResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return lb.DynamicResult{}, fmt.Errorf("-resume: %w", err)
	}
	eng, err := sc.Resume(f)
	f.Close()
	if err != nil {
		return lb.DynamicResult{}, fmt.Errorf("-resume %s: %w", path, err)
	}
	defer eng.Close()
	return eng.Run()
}

// parseTriple parses a colon-separated "A:B:C" integer triple, the
// shape shared by -retry, -partition entries and -quarantine.
func parseTriple(s string) (a, b, c int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("%q is not an A:B:C triple", s)
	}
	var v [3]int
	for i, p := range parts {
		if v[i], err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
			return 0, 0, 0, fmt.Errorf("bad field %q in %q", p, s)
		}
	}
	return v[0], v[1], v[2], nil
}

func protocolKind(s string) (lb.ProtocolKind, error) {
	switch s {
	case "user":
		return lb.UserBased, nil
	case "resource":
		return lb.ResourceBased, nil
	case "usergraph":
		return lb.UserBasedGraph, nil
	case "mixed":
		return lb.MixedBased, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}
