// Command lbdyn runs an open-system (dynamic) threshold-balancing
// scenario: continuous task arrivals and departures, optional resource
// churn, and thresholds re-estimated online. It prints one line per
// metrics window plus a final summary.
//
// Usage examples:
//
//	lbdyn -graph complete -n 1000 -rho 0.8 -proto user -rounds 600
//	lbdyn -graph torus -n 1024 -proto resource -lazy -dispatch hotspot -rho 0.9
//	lbdyn -graph expander -n 500 -k 8 -proto resource -churn 0.1 -rounds 1000
//	lbdyn -graph complete -n 200 -arrivals burst -burst-every 50 -burst-size 200
//	lbdyn -graph expander -n 100000 -k 16 -proto resource -workers 8 -rounds 2000
//	lbdyn -graph complete -n 1000 -trace ingress.csv -rounds 5000
//	lbdyn -graph expander -n 1000 -k 8 -proto resource -speedspread 10 -dispatch speed
//	lbdyn -graph complete -n 500 -speeds fleet.csv -dispatch power2 -rho 0.85
//
// -workers shards the round pipeline across a persistent worker pool;
// results are bit-identical for every worker count (0 = GOMAXPROCS).
// -trace replays a recorded arrival log (.csv round,weight records or
// .jsonl {"round":r,"weight":w} lines) instead of a synthetic process.
// -speeds loads a heterogeneous speed profile (.csv resource,speed
// records or .jsonl {"resource":r,"speed":s} lines; unlisted resources
// run at speed 1) and -speedspread S generates a linear 1→S ramp;
// either one makes service, thresholds and load-aware dispatch
// speed-proportional, and the per-window p99 column switches to
// load-per-speed (the quantity the proportional thresholds equalise).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	lb "repro"
	"repro/internal/cli"
)

func main() {
	var (
		graphKind = flag.String("graph", "complete", "complete|grid|torus|hypercube|expander|gnp|cliquependant")
		n         = flag.Int("n", 1000, "number of resources (rounded per family)")
		k         = flag.Int("k", 8, "family parameter: pendant links / expander degree")
		p         = flag.Float64("p", 0.1, "G(n,p) edge probability")
		proto     = flag.String("proto", "user", "user|resource|usergraph|mixed")
		alpha     = flag.Float64("alpha", 1, "user-protocol migration constant")
		eps       = flag.Float64("eps", 0.5, "threshold slack epsilon")
		lazy      = flag.Bool("lazy", false, "use the 1/2-lazy walk (resource protocol)")
		rounds    = flag.Int("rounds", 600, "simulated rounds")
		window    = flag.Int("window", 100, "metrics window length")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		workers   = flag.Int("workers", 0, "round-pipeline shards (0 = GOMAXPROCS, 1 = sequential; results identical for any value)")

		arrivals   = flag.String("arrivals", "poisson", "poisson|burst")
		tracePath  = flag.String("trace", "", "replay a recorded arrival trace (.csv round,weight or .jsonl) instead of -arrivals")
		rho        = flag.Float64("rho", 0.8, "offered utilisation (poisson rate = rho*n*svcrate/E[w])")
		burstEvery = flag.Int("burst-every", 50, "burst period in rounds")
		burstSize  = flag.Int("burst-size", 100, "tasks per burst")
		weights    = flag.String("weights", "pareto", "pareto|unit|exp|range")
		palpha     = flag.Float64("pareto-alpha", 2, "Pareto shape")
		pcap       = flag.Float64("pareto-cap", 20, "Pareto weight cap (0 = uncapped)")
		expMean    = flag.Float64("exp-mean", 2, "exponential weight mean")
		rangeLo    = flag.Float64("range-lo", 1, "uniform range low")
		rangeHi    = flag.Float64("range-hi", 4, "uniform range high")

		service = flag.String("service", "weight", "weight (proportional to weight) | geom")
		svcRate = flag.Float64("svcrate", 1, "weight-units served per resource per round")
		geomP   = flag.Float64("geomp", 0.05, "geometric per-round departure probability")

		dispatch = flag.String("dispatch", "uniform", "uniform|hotspot|power2|speed")
		hotspot  = flag.Int("hotspot", 0, "hotspot ingress resource")

		speedsPath  = flag.String("speeds", "", "heterogeneous speed profile (.csv resource,speed or .jsonl; unlisted resources get speed 1)")
		speedSpread = flag.Float64("speedspread", 0, "generate a linear speed ramp 1..S across the resources (0 = homogeneous)")

		churn      = flag.Float64("churn", 0, "per-round leave/join probability (0 = no churn)")
		minUp      = flag.Int("minup", 0, "floor on up resources (0 = n/2 when churn > 0)")
		oracle     = flag.Bool("oracle", false, "exact-average thresholds instead of self-tuned diffusion estimates")
		check      = flag.Bool("check", false, "validate weight conservation every round (slow)")
		shardDebug = flag.Bool("sharddebug", false, "print per-shard measured round-cost stats and exchange lane occupancy at every rebalance (workers > 1)")

		topoPath   = flag.String("topology", "", "failure-domain inventory (.csv resource,rack,zone or .jsonl; enables rack-aware failures and locality re-homing)")
		synthRacks = flag.Int("synthracks", 0, "synthesise a topology with this many contiguous racks (mutually exclusive with -topology)")
		synthZones = flag.Int("synthzones", 1, "zones for the synthesised topology")
		rehome     = flag.String("rehome", "uniform", "evacuation re-home policy: uniform|power2|locality|speed")
		eventsPath = flag.String("events", "", "scripted churn-event schedule (.csv round,every,down,up or .jsonl with down_list/up_list)")
		rackMTBF   = flag.Float64("rackmtbf", 0, "mean rounds between whole-rack failures (compiled failure model; needs a topology)")
		rackMTTR   = flag.Float64("rackmttr", 0, "mean rounds to repair a failed rack")
	)
	flag.Parse()

	g, err := cli.GraphSpec{Kind: *graphKind, N: *n, K: *k, P: *p, Seed: *seed}.Build()
	if err != nil {
		fail(err)
	}

	// Heterogeneous speed profile: a file, or a generated linear ramp.
	// totalSpeed is the fleet's service capacity in unit-resource
	// equivalents — the n of the rho → rate conversion.
	var speeds []float64
	switch {
	case *speedsPath != "" && *speedSpread > 0:
		fail(fmt.Errorf("-speeds and -speedspread are mutually exclusive"))
	case *speedsPath != "":
		if speeds, err = lb.LoadSpeeds(*speedsPath, g.N()); err != nil {
			fail(err)
		}
	case *speedSpread > 0:
		if *speedSpread < 1 {
			fail(fmt.Errorf("-speedspread %g must be >= 1", *speedSpread))
		}
		speeds = make([]float64, g.N())
		for r := range speeds {
			frac := 0.0
			if g.N() > 1 {
				frac = float64(r) / float64(g.N()-1)
			}
			speeds[r] = 1 + (*speedSpread-1)*frac
		}
	}
	totalSpeed := float64(g.N())
	if speeds != nil {
		totalSpeed = 0
		for _, s := range speeds {
			totalSpeed += s
		}
	}

	var dist lb.WeightDist
	meanW := 1.0
	switch *weights {
	case "pareto":
		dist = lb.ParetoDist(*palpha, *pcap)
		// E[min(Pareto(1,a), cap)]; without a cap, a <= 1 has no finite
		// mean and the rho -> rate conversion is meaningless.
		switch {
		case *pcap > 0 && *palpha == 1:
			meanW = 1 + math.Log(*pcap)
		case *pcap > 0:
			c1a := math.Pow(*pcap, 1-*palpha)
			meanW = *palpha*(c1a-1)/(1-*palpha) + c1a
		case *palpha > 1:
			meanW = *palpha / (*palpha - 1)
		default:
			fail(fmt.Errorf("pareto with alpha <= 1 needs -pareto-cap for a finite mean (rho is undefined otherwise)"))
		}
	case "unit":
		dist = lb.UnitDist()
	case "exp":
		dist = lb.ExponentialDist(*expMean)
		meanW = *expMean
	case "range":
		dist = lb.UniformRangeDist(*rangeLo, *rangeHi)
		meanW = (*rangeLo + *rangeHi) / 2
	default:
		fail(fmt.Errorf("unknown weight distribution %q", *weights))
	}

	var arr lb.Arrivals
	switch {
	case *tracePath != "":
		var err error
		if arr, err = lb.LoadTraceArrivals(*tracePath); err != nil {
			fail(err)
		}
	case *arrivals == "poisson":
		arr = lb.PoissonArrivals(*rho*totalSpeed**svcRate/meanW, dist)
	case *arrivals == "burst":
		arr = lb.BurstArrivals(*burstEvery, *burstSize, dist)
	default:
		fail(fmt.Errorf("unknown arrival process %q", *arrivals))
	}

	var svc lb.Service
	switch *service {
	case "weight":
		svc = lb.WeightProportionalService(*svcRate)
	case "geom":
		svc = lb.GeometricService(*geomP)
	default:
		fail(fmt.Errorf("unknown service discipline %q", *service))
	}

	var disp lb.Dispatch
	switch *dispatch {
	case "uniform":
		disp = lb.UniformDispatch()
	case "hotspot":
		disp = lb.HotspotDispatch(*hotspot)
	case "power2":
		disp = lb.PowerOfDDispatch(2)
	case "speed":
		disp = lb.SpeedWeightedDispatch()
	default:
		fail(fmt.Errorf("unknown dispatch %q", *dispatch))
	}

	kind, err := protocolKind(*proto)
	if err != nil {
		fail(err)
	}

	// Failure-domain topology: a fleet inventory file, or a synthetic
	// contiguous-rack layout.
	var topo *lb.Topology
	switch {
	case *topoPath != "" && *synthRacks > 0:
		fail(fmt.Errorf("-topology and -synthracks are mutually exclusive"))
	case *topoPath != "":
		if topo, err = lb.LoadTopology(*topoPath, g.N()); err != nil {
			fail(err)
		}
	case *synthRacks > 0:
		if topo, err = lb.SynthTopology(g.N(), *synthRacks, *synthZones); err != nil {
			fail(err)
		}
	}

	var rehomer lb.RehomePolicy
	switch *rehome {
	case "uniform":
		rehomer = lb.UniformRehome()
	case "power2":
		rehomer = lb.PowerOfDRehome(2)
	case "locality":
		if topo == nil {
			fail(fmt.Errorf("-rehome locality needs -topology or -synthracks"))
		}
		rehomer = lb.LocalityRehome(topo)
	case "speed":
		rehomer = lb.SpeedWeightedRehome()
	default:
		fail(fmt.Errorf("unknown re-home policy %q", *rehome))
	}

	var spec lb.ChurnSpec
	if *churn > 0 {
		up := *minUp
		if up <= 0 {
			up = g.N() / 2
		}
		spec = lb.ChurnSpec{LeaveProb: *churn, JoinProb: *churn, MinUp: up}
	} else if *minUp > 0 {
		spec.MinUp = *minUp
	}
	if *eventsPath != "" {
		if spec.Events, err = lb.LoadChurnEvents(*eventsPath, g.N()); err != nil {
			fail(err)
		}
	}
	if *rackMTBF > 0 || *rackMTTR > 0 {
		if len(spec.Events) > 0 {
			fail(fmt.Errorf("-events and -rackmtbf/-rackmttr are mutually exclusive (the compiled schedule could contradict the scripted one)"))
		}
		if topo == nil {
			fail(fmt.Errorf("-rackmtbf/-rackmttr need -topology or -synthracks"))
		}
		model := lb.FailureModel{Topo: topo, RackMTBF: *rackMTBF, RackMTTR: *rackMTTR}
		if spec.Events, err = model.Compile(*rounds, *seed); err != nil {
			fail(err)
		}
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	fmt.Printf("graph:     %s (n=%d)\n", g.Name(), g.N())
	if speeds != nil {
		minS, maxS := speeds[0], speeds[0]
		for _, s := range speeds {
			minS = math.Min(minS, s)
			maxS = math.Max(maxS, s)
		}
		fmt.Printf("speeds:    heterogeneous (min=%g max=%g total=%g) — p99 column is load/speed\n",
			minS, maxS, totalSpeed)
	}
	fmt.Printf("protocol:  %s (eps=%g alpha=%g lazy=%v oracle=%v workers=%d)\n", kind, *eps, *alpha, *lazy, *oracle, nWorkers)
	fmt.Printf("arrivals:  %s  service: %s  dispatch: %s  churn: %g\n", arr.Name(), svc.Name(), disp.Name(), *churn)
	if topo != nil {
		fmt.Printf("topology:  %d racks in %d zones  rehome: %s  events: %d\n",
			topo.Racks(), topo.Zones(), rehomer.Name(), len(spec.Events))
	} else if len(spec.Events) > 0 || *rehome != "uniform" {
		fmt.Printf("rehome:    %s  events: %d\n", rehomer.Name(), len(spec.Events))
	}
	p99Label := "p99load"
	if speeds != nil {
		p99Label = "p99 x/s"
	}
	fmt.Printf("%8s %10s %10s %10s %10s %10s %10s %6s\n",
		"rounds", "overload%", "mig/round", "arr/round", "dep/round", p99Label, "W-inflight", "up")

	sc := lb.DynamicScenario{
		Graph:            g,
		Speeds:           speeds,
		Protocol:         kind,
		Alpha:            *alpha,
		Epsilon:          *eps,
		LazyWalk:         *lazy,
		Seed:             *seed,
		Workers:          nWorkers,
		Rounds:           *rounds,
		Window:           *window,
		Arrivals:         arr,
		Service:          svc,
		Dispatch:         disp,
		Rehome:           rehomer,
		OracleThresholds: *oracle,
		Churn:            spec,
		CheckInvariants:  *check,
		OnWindow: func(w lb.WindowStats) {
			p99 := w.P99Load
			if speeds != nil {
				p99 = w.P99LoadPerSpeed
			}
			fmt.Printf("%4d-%-4d %9.2f%% %10.2f %10.2f %10.2f %10.2f %10.0f %6d\n",
				w.Start, w.End, 100*w.OverloadFrac, w.MigrationRate, w.ArrivalRate,
				w.DepartureRate, p99, w.InFlightWeight, w.UpResources)
		},
	}
	if *shardDebug {
		sc.OnLanes = func(round, workers int, counts []int64) {
			// Per-destination inbound totals make the serialise-the-merge
			// skew (all lanes targeting one shard) obvious at a glance.
			fmt.Printf("[lanes] round %d inbound/dest:", round)
			for j := 0; j < workers; j++ {
				var tot int64
				for i := 0; i < workers; i++ {
					tot += counts[i*workers+j]
				}
				fmt.Printf(" %d:%d", j, tot)
			}
			fmt.Println()
		}
		sc.OnRebalance = func(round int, stats []lb.ShardStat) {
			total := int64(0)
			for _, st := range stats {
				total += st.Nanos
			}
			fmt.Printf("[shards] round %d:", round)
			for i, st := range stats {
				share := 0.0
				if total > 0 {
					share = 100 * float64(st.Nanos) / float64(total)
				}
				fmt.Printf(" %d:[%d,%d) %.0f%%", i, st.Lo, st.Hi, share)
			}
			fmt.Println()
		}
	}
	res, err := sc.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\narrived:    %d tasks (weight %.0f)\n", res.Arrived, res.ArrivedWeight)
	fmt.Printf("departed:   %d tasks (weight %.0f)\n", res.Departed, res.DepartedWeight)
	fmt.Printf("in flight:  %d tasks (weight %.0f)\n", res.FinalInFlight, res.FinalWeight)
	fmt.Printf("migrations: %d (weight %.0f)\n", res.Migrations, res.MovedWeight)
	if res.Rehomed > 0 || res.Downs > 0 {
		fmt.Printf("churn:      %d downs, %d ups, %d tasks re-homed (weight %.0f)\n",
			res.Downs, res.Ups, res.Rehomed, res.RehomedWeight)
	}
	if len(res.Recoveries) > 0 {
		drained := 0
		for _, rs := range res.Recoveries {
			if rs.Drained() {
				drained++
			}
		}
		fmt.Printf("recovery:   %d episodes (%d drained), peak post-failure overload %.2f%%",
			len(res.Recoveries), drained, 100*res.PeakPostFailureOverload())
		if mean := res.MeanDrainRounds(); !math.IsNaN(mean) {
			fmt.Printf(", mean drain %.1f rounds", mean)
		}
		fmt.Println()
	}
	if frac := res.TailOverloadFrac(2); !math.IsNaN(frac) {
		fmt.Printf("steady overload (skip 2 windows): %.3f%%\n", 100*frac)
	} else {
		fmt.Println("steady overload: run at least 3 windows for a warmed-up figure")
	}
}

func protocolKind(s string) (lb.ProtocolKind, error) {
	switch s {
	case "user":
		return lb.UserBased, nil
	case "resource":
		return lb.ResourceBased, nil
	case "usergraph":
		return lb.UserBasedGraph, nil
	case "mixed":
		return lb.MixedBased, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lbdyn:", err)
	os.Exit(2)
}
