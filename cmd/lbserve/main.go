// Command lbserve runs the live serving runtime: a threshold
// load-balancing fleet whose arrivals come in through an HTTP front
// door while rounds tick on a wall clock (or adaptively on backlog)
// and the balancing protocols, service, churn and fault plans of the
// offline engine all keep running underneath.
//
//	lbserve -graph complete -n 1000 -proto user -addr :8080
//	lbserve -graph expander -n 4096 -k 8 -proto resource -interval 10ms
//	lbserve -n 500 -roundlog run.jsonl -snapshot lbserve.snap
//
// Endpoints (all on -addr, alongside /metrics, /debug/vars and
// /debug/pprof/):
//
//	POST /ingest   — JSON array of task weights, admitted into the
//	                 next round
//	POST /reconfig — {"down":[...],"up":[...],"dispatch":"..."}:
//	                 drain/add resources, swap the dispatch policy
//	                 (uniform | hotspot:<r> | power-of-<d> |
//	                 speed-weighted) without stopping the world
//	GET  /statusz  — runtime stats JSON
//	GET  /healthz  — liveness
//
// Every admitted batch is recorded to the -roundlog (JSONL, one
// record per round): replaying it through the lockstep engine with
// the same flags reproduces the live run's Result bit-for-bit.
//
// On SIGTERM/SIGINT the runtime stops ingest, drains the staged
// backlog, checkpoints the full engine state to -snapshot (atomic
// write) and exits; a restart with the same flags finds the snapshot
// and resumes exactly where it stopped, recovering any online
// dispatch swap from the round log.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	lb "repro"
	"repro/internal/cli"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(2)
	}
}

// readyHook, when non-nil, receives the front door's base URL once the
// runtime is serving — the seam the CLI tests drive ingest through.
var readyHook func(baseURL string)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphKind = fs.String("graph", "complete", "complete|grid|torus|hypercube|expander|gnp|cliquependant")
		n         = fs.Int("n", 1000, "number of resources (rounded per family)")
		k         = fs.Int("k", 8, "family parameter: pendant links / expander degree")
		p         = fs.Float64("p", 0.1, "G(n,p) edge probability")
		proto     = fs.String("proto", "user", "user|resource|usergraph|mixed")
		alpha     = fs.Float64("alpha", 1, "user-protocol migration constant")
		eps       = fs.Float64("eps", 0.5, "threshold slack epsilon")
		lazy      = fs.Bool("lazy", false, "use the 1/2-lazy walk (resource protocol)")
		seed      = fs.Uint64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "round-pipeline shards (0 = GOMAXPROCS; results identical for any value)")
		window    = fs.Int("window", 100, "metrics window length in rounds")
		maxRounds = fs.Int("max-rounds", 1<<20, "round horizon: the runtime stops after this many rounds")

		service = fs.String("service", "weight", "weight (proportional to weight) | geom")
		svcRate = fs.Float64("svcrate", 1, "weight-units served per resource per round")
		geomP   = fs.Float64("geomp", 0.05, "geometric per-round departure probability")

		dispatch = fs.String("dispatch", "uniform", "initial dispatch policy: uniform | hotspot:<r> | power-of-<d> | speed-weighted")

		addr        = fs.String("addr", ":8080", "front-door listen address (ingest, reconfig, status, metrics, pprof)")
		interval    = fs.Duration("interval", 0, "fixed round period (0 = adaptive: step at -batch backlog or -max-interval)")
		batch       = fs.Int("batch", 256, "adaptive-mode backlog that triggers a round")
		maxInterval = fs.Duration("max-interval", 50*time.Millisecond, "adaptive-mode bound on the wait between rounds")
		maxPending  = fs.Int("max-pending", 1<<20, "ingest backlog bound (past it, /ingest answers 503)")

		roundLog = fs.String("roundlog", "", "round-log JSONL path (append; required for twin replay and dispatch recovery on resume)")
		snapPath = fs.String("snapshot", "", "checkpoint path: written atomically on SIGTERM, resumed from on boot when present")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	g, err := cli.GraphSpec{Kind: *graphKind, N: *n, K: *k, P: *p, Seed: *seed}.Build()
	if err != nil {
		return err
	}

	var svc lb.Service
	switch *service {
	case "weight":
		svc = lb.WeightProportionalService(*svcRate)
	case "geom":
		svc = lb.GeometricService(*geomP)
	default:
		return fmt.Errorf("unknown service discipline %q", *service)
	}

	disp, err := lb.ParseLiveDispatch(*dispatch)
	if err != nil {
		return err
	}
	kind, err := protocolKind(*proto)
	if err != nil {
		return err
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	sc := lb.DynamicScenario{
		Graph:    g,
		Protocol: kind,
		Alpha:    *alpha,
		Epsilon:  *eps,
		LazyWalk: *lazy,
		Seed:     *seed,
		Workers:  nWorkers,
		Rounds:   *maxRounds,
		Window:   *window,
		Arrivals: lb.ExternalArrivals(),
		Service:  svc,
		Dispatch: disp,
		Obs:      lb.NewObsBroker(),
	}

	opts := lb.LiveOptions{
		Interval:    *interval,
		BatchTarget: *batch,
		MaxInterval: *maxInterval,
		MaxPending:  *maxPending,
	}
	if *snapPath != "" {
		path := *snapPath
		opts.OnShutdown = func(data []byte) error {
			return lb.WriteSnapshotFile(path, data)
		}
	}

	// Resume-on-boot: a snapshot left by a previous SIGTERM restores
	// the engine at its checkpointed round; the round log recovers any
	// dispatch swap made online since that run booted. Without a
	// snapshot the runtime starts fresh at round 0.
	var (
		rt       *lb.LiveRuntime
		prevRecs []lb.RoundRecord
		resumed  = false
	)
	if *roundLog != "" {
		if f, err := os.Open(*roundLog); err == nil {
			prevRecs, err = lb.ReadRoundLog(f)
			f.Close()
			if err != nil {
				return err
			}
		}
	}
	if *snapPath != "" {
		if f, err := os.Open(*snapPath); err == nil {
			rt, err = sc.ResumeLiveRuntime(f, prevRecs, opts)
			f.Close()
			if err != nil {
				return fmt.Errorf("resuming from %s: %w", *snapPath, err)
			}
			resumed = true
		}
	}

	// The round log is write-ahead: on a fresh boot it restarts empty;
	// on resume, records past the snapshot's round (stepped after the
	// last checkpoint by a run that died uncheckpointed) are dropped so
	// the log stays consecutive with what the engine will re-run.
	var logFile *os.File
	if *roundLog != "" {
		logFile, err = os.Create(*roundLog)
		if err != nil {
			return err
		}
		defer logFile.Close()
		if resumed {
			keep := prevRecs
			next := 0
			if len(keep) > 0 {
				// Engine resumes at the snapshot round; keep exactly the
				// records before it.
				next = rtNextRound(rt)
				if next < len(keep) {
					keep = keep[:next]
				}
			}
			if err := lb.WriteRoundLog(logFile, keep); err != nil {
				return err
			}
		}
		opts.LogWriter = logFile
	}

	if rt == nil {
		if rt, err = sc.LiveRuntime(opts); err != nil {
			return err
		}
	} else if logFile != nil {
		// The resumed runtime was built before the log file reopened;
		// re-wrap it with the writer attached.
		rt.SetLogWriter(logFile)
	}
	defer rt.Close()

	// One mux serves the front door and the observability endpoints.
	exp := lb.NewObsExporter(sc.Obs, 8192)
	exp.PublishExpvar()
	mux := exp.Mux()
	lb.LiveRoutes(mux, rt)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	baseURL := "http://" + ln.Addr().String()

	mode := "adaptive"
	if *interval > 0 {
		mode = fmt.Sprintf("every %v", *interval)
	}
	boot := "fresh"
	if resumed {
		boot = fmt.Sprintf("resumed at round %d", rtNextRound(rt))
	}
	fmt.Fprintf(stdout, "lbserve: %s (n=%d) proto=%s workers=%d dispatch=%s\n",
		g.Name(), g.N(), kind, nWorkers, *dispatch)
	fmt.Fprintf(stdout, "lbserve: serving on %s (%s rounds, %s)\n", baseURL, mode, boot)

	// The signal handler must be live before readyHook announces the
	// server: a test that SIGTERMs right after the hook must hit the
	// graceful path, never the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if readyHook != nil {
		readyHook(baseURL)
	}
	runErr := rt.Run(ctx)
	stop()
	srv.Close()
	sc.Obs.Close()
	if runErr != nil {
		return runErr
	}

	res, err := rt.Finish()
	if err != nil {
		return err
	}
	st := rt.Stats()
	fmt.Fprintf(stdout, "\nlbserve: stopped at round %d (accepted %d, rejected %d)\n",
		res.Rounds, st.Accepted, st.Rejected)
	fmt.Fprintf(stdout, "arrived:    %d tasks (weight %.0f)\n", res.Arrived, res.ArrivedWeight)
	fmt.Fprintf(stdout, "departed:   %d tasks (weight %.0f)\n", res.Departed, res.DepartedWeight)
	fmt.Fprintf(stdout, "in flight:  %d tasks (weight %.0f)\n", res.FinalInFlight, res.FinalWeight)
	fmt.Fprintf(stdout, "migrations: %d (weight %.0f)\n", res.Migrations, res.MovedWeight)
	if *snapPath != "" {
		fmt.Fprintf(stdout, "snapshot:   %s (resume by restarting with the same flags)\n", *snapPath)
	}
	return nil
}

// rtNextRound reads the runtime's next round via its stats snapshot.
func rtNextRound(rt *lb.LiveRuntime) int { return rt.Stats().NextRound }

func protocolKind(s string) (lb.ProtocolKind, error) {
	switch s {
	case "user":
		return lb.UserBased, nil
	case "resource":
		return lb.ResourceBased, nil
	case "usergraph":
		return lb.UserBasedGraph, nil
	case "mixed":
		return lb.MixedBased, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}
