package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	lb "repro"
	"repro/internal/snapshot"
)

// server drives one run() invocation: it installs the readyHook seam,
// runs the CLI in a goroutine, and hands back the base URL plus a stop
// function that SIGTERMs the process (the real shutdown path — the
// signal handler is registered before readyHook fires) and waits for
// the graceful exit.
type server struct {
	url  string
	out  *bytes.Buffer
	errc chan error
}

func startServer(t *testing.T, args ...string) *server {
	t.Helper()
	s := &server{out: &bytes.Buffer{}, errc: make(chan error, 1)}
	ready := make(chan string, 1)
	readyHook = func(baseURL string) { ready <- baseURL }
	t.Cleanup(func() { readyHook = nil })
	go func() { s.errc <- run(args, s.out, io.Discard) }()
	select {
	case s.url = <-ready:
	case err := <-s.errc:
		t.Fatalf("server exited before ready: %v\n%s", err, s.out)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return s
}

func (s *server) stop(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-s.errc:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, s.out)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

func postJSON(t *testing.T, url string, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func ingestBatch(t *testing.T, baseURL string, weights []float64) {
	t.Helper()
	body, _ := json.Marshal(weights)
	code, resp := postJSON(t, baseURL+"/ingest", string(body))
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, resp)
	}
}

var arrivedRe = regexp.MustCompile(`arrived:\s+(\d+) tasks`)

func parseArrived(t *testing.T, out string) int {
	t.Helper()
	m := arrivedRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no arrived line in output:\n%s", out)
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// TestServeSIGTERMCheckpointResume is the graceful-shutdown e2e: a
// SIGTERM mid-run drains the backlog, writes a snapshot the container
// decoder validates and a consecutive round log, loses zero tasks, and
// a reboot with the same flags resumes from the snapshot and carries
// the counters forward.
func TestServeSIGTERMCheckpointResume(t *testing.T) {
	tmp := t.TempDir()
	logPath := filepath.Join(tmp, "run.jsonl")
	snapPath := filepath.Join(tmp, "lbserve.snap")
	args := []string{
		"-addr", "127.0.0.1:0", "-graph", "complete", "-n", "64",
		"-proto", "user", "-seed", "3", "-workers", "2", "-window", "25",
		"-max-rounds", "4096", "-batch", "32", "-max-interval", "2ms",
		"-roundlog", logPath, "-snapshot", snapPath,
	}

	s := startServer(t, args...)
	const batches, perBatch = 40, 25
	for i := 0; i < batches; i++ {
		ws := make([]float64, perBatch)
		for j := range ws {
			ws[j] = 1 + float64((i+j)%4)
		}
		ingestBatch(t, s.url, ws)
	}
	// The obs endpoints share the front door's listener.
	if resp, err := http.Get(s.url + "/debug/vars"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: %v", err)
	} else {
		resp.Body.Close()
	}
	time.Sleep(20 * time.Millisecond) // let a few rounds tick mid-burst
	s.stop(t)

	sent := batches * perBatch
	if got := parseArrived(t, s.out.String()); got != sent {
		t.Fatalf("first run arrived %d tasks, ingested %d — tasks lost\n%s", got, sent, s.out)
	}

	// The snapshot must validate under the existing container decoder.
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("no snapshot after SIGTERM: %v", err)
	}
	if _, err := snapshot.NewDecoder(data); err != nil {
		t.Fatalf("snapshot rejected by the container decoder: %v", err)
	}
	// The round log must parse, be consecutive (ReadRoundLog enforces
	// it) and account for every ingested task.
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := lb.ReadRoundLog(f)
	f.Close()
	if err != nil {
		t.Fatalf("round log: %v", err)
	}
	logged := 0
	for i := range recs {
		logged += len(recs[i].Weights)
	}
	if logged != sent {
		t.Fatalf("round log records %d arrivals, ingested %d", logged, sent)
	}

	// Reboot with the same flags: resume-on-boot.
	s2 := startServer(t, args...)
	if !strings.Contains(s2.out.String(), "resumed at round") {
		t.Fatalf("second boot did not resume:\n%s", s2.out)
	}
	const moreBatches = 10
	for i := 0; i < moreBatches; i++ {
		ws := make([]float64, perBatch)
		for j := range ws {
			ws[j] = 2
		}
		ingestBatch(t, s2.url, ws)
	}
	s2.stop(t)
	// Resume restores the books: the final total spans both runs.
	total := sent + moreBatches*perBatch
	if got := parseArrived(t, s2.out.String()); got != total {
		t.Fatalf("resumed run arrived %d tasks, want %d across both runs\n%s", got, total, s2.out)
	}
}

// TestServeLoadE2E pushes >=100k arrivals through the HTTP front door
// from concurrent clients, asserts zero task loss via the conservation
// line, and records a throughput/latency table into RESULTS_serve.txt
// at the repo root.
func TestServeLoadE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("load e2e skipped in -short")
	}
	s := startServer(t,
		"-addr", "127.0.0.1:0", "-graph", "complete", "-n", "256",
		"-proto", "user", "-seed", "1", "-window", "100",
		"-max-rounds", "1048576", "-batch", "8192", "-max-interval", "5ms",
		"-dispatch", "power-of-2",
	)

	const (
		clients  = 8
		requests = 13 // per client
		perBatch = 1000
	)
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	body, _ := json.Marshal(func() []float64 {
		ws := make([]float64, perBatch)
		for i := range ws {
			ws[i] = 1 + float64(i%7)/2
		}
		return ws
	}())
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, requests)
			for i := 0; i < requests; i++ {
				t0 := time.Now()
				resp, err := http.Post(s.url+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest: %d", resp.StatusCode)
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if t.Failed() {
		t.FailNow()
	}
	sent := clients * requests * perBatch // 104k

	s.stop(t)
	if got := parseArrived(t, s.out.String()); got != sent {
		t.Fatalf("arrived %d tasks, ingested %d — tasks lost\n%s", got, sent, s.out)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) time.Duration { return latencies[int(p*float64(len(latencies)-1))] }
	var table strings.Builder
	fmt.Fprintf(&table, "# serve — lbserve HTTP load e2e (regenerated by: go test ./cmd/lbserve -run TestServeLoadE2E)\n")
	fmt.Fprintf(&table, "# n=256 complete graph, user protocol, power-of-2 dispatch, adaptive rounds (batch 8192, max-interval 5ms)\n")
	fmt.Fprintf(&table, "# %d concurrent clients x %d requests x %d tasks/batch; zero task loss asserted via arrived == ingested\n\n", clients, requests, perBatch)
	fmt.Fprintf(&table, "tasks ingested     %d\n", sent)
	fmt.Fprintf(&table, "wall time          %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(&table, "throughput         %.0f tasks/sec\n", float64(sent)/elapsed.Seconds())
	fmt.Fprintf(&table, "request latency    p50 %v  p95 %v  p99 %v  max %v\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	fmt.Fprintf(&table, "task loss          0 (conservation: arrived == ingested at shutdown)\n")
	if err := os.WriteFile(filepath.Join("..", "..", "RESULTS_serve.txt"), []byte(table.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.String())
}
