# Threshold Load Balancing with Weighted Tasks — build/test/bench targets.

GO ?= go

.PHONY: build test race fuzz bench bench-quick bench-check fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Parallel-sensitive packages under the race detector (mirrors the CI
# race job: the exchange and evacuation tests run real multi-worker
# phases, so the detector sees the concurrent paths).
race:
	$(GO) test -race ./internal/core ./internal/dynamic ./internal/faults ./internal/obs ./internal/par ./internal/recovery ./internal/serve ./internal/sim ./internal/snapshot ./internal/stack ./internal/task ./internal/trace

# Coverage-guided fuzz of the trace/speed-profile/topology parsers and
# the JSONL event-sink reader (mirrors the CI smoke job; go accepts one
# -fuzz target per invocation).
fuzz:
	for target in FuzzReadTraceCSV FuzzReadTraceJSONL FuzzReadSpeedsCSV FuzzReadSpeedsJSONL; do \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime 30s ./internal/dynamic || exit 1; \
	done
	for target in FuzzReadTopologyCSV FuzzReadTopologyJSONL; do \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime 30s ./internal/recovery || exit 1; \
	done
	for target in FuzzReadPlanCSV FuzzReadPlanJSONL; do \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime 30s ./internal/faults || exit 1; \
	done
	$(GO) test -run '^$$' -fuzz '^FuzzReadEventsJSONL$$' -fuzztime 30s ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzReadRecords$$' -fuzztime 30s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzDecoder$$' -fuzztime 30s ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzRoundLog$$' -fuzztime 30s ./internal/serve

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Record the dynamic-round perf trajectory into BENCH_dynamic.json and
# compare against the committed baseline (fails on allocs/op
# regressions; speed ratios are informational across machines).
bench:
	$(GO) run ./cmd/benchrec -benchtime 1s

# The fast CI variant: same gates, shorter measurement.
bench-quick:
	$(GO) run ./cmd/benchrec -benchtime 200ms -out ""

# Same-machine certification of the acceptance speedup: every recorded
# benchmark must beat the committed baseline by ≥ 3×.
bench-check:
	$(GO) run ./cmd/benchrec -benchtime 2s -min-speedup 3
