package thresholdlb

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/snapshot"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/walk"
)

// This file is the public face of the open-system engine
// (internal/dynamic): continuous task arrivals and departures, resource
// churn, and thresholds re-estimated online — the regime of
// Goldsztajn et al.'s self-learning threshold balancing, layered on the
// source paper's migration protocols.

// DynamicResult reports a completed open-system run: totals plus one
// WindowStats per metrics window.
type DynamicResult = dynamic.Result

// WindowStats summarises one metrics window (time-averaged overload
// fraction, migration rate, p99 load, in-flight weight, …).
type WindowStats = dynamic.WindowStats

// Arrivals is a pluggable arrival process (see PoissonArrivals,
// BurstArrivals, TraceArrivals).
type Arrivals = dynamic.Arrivals

// Service is a pluggable departure discipline (see
// WeightProportionalService, GeometricService).
type Service = dynamic.Service

// Dispatch routes arriving tasks to resources (see UniformDispatch,
// HotspotDispatch, PowerOfDDispatch).
type Dispatch = dynamic.Dispatch

// ChurnSpec configures resource join/leave dynamics; the zero value
// disables churn.
type ChurnSpec = dynamic.Churn

// ChurnEvent scripts one mass join/leave burst (e.g. a rack loss:
// thousands of simultaneous failures in one round, evacuated through
// the engine's sharded exchange); add events to ChurnSpec.Events.
// DownList/UpList name specific resources — the form FailureModel
// compiles to — and list schedules are validated at config time
// (killing an already-down resource or reviving an already-up one is
// rejected before the run).
type ChurnEvent = dynamic.ChurnEvent

// RecoveryStat reports one failure-recovery episode of a dynamic run:
// the failure round, how many resources died, the evacuation migration
// load, and the overload transient (pre-failure baseline, peak, and
// time-to-drain back to the baseline). See DynamicResult.Recoveries.
type RecoveryStat = dynamic.RecoveryStat

// RehomePolicy decides where each task evacuated off a failed resource
// lands (see UniformRehome, PowerOfDRehome, LocalityRehome,
// SpeedWeightedRehome). Every policy draws only from the failed
// resource's deterministic stream, so runs stay bit-identical for any
// worker count.
type RehomePolicy = dynamic.RehomePolicy

// Topology is a resource → rack → zone failure-domain hierarchy: the
// blast-radius model for correlated failures (FailureModel) and the
// locality structure for topology-aware re-homing (LocalityRehome).
// Build one with SynthTopology or LoadTopology.
type Topology = recovery.Topology

// FailureModel describes correlated stochastic failure/repair
// processes over a Topology — whole-rack losses (RackMTBF/RackMTTR),
// independent machine churn (ResourceMTBF/ResourceMTTR), and flapping
// machines (FlapResources, FlapMTBF/FlapMTTR). Compile(rounds, seed)
// turns it into the one-shot ChurnEvent schedule a DynamicScenario
// replays deterministically.
type FailureModel = recovery.FailureModel

// SynthTopology builds a synthetic fleet: n resources in `racks`
// contiguous equal-ish racks, grouped into `zones` zones.
func SynthTopology(n, racks, zones int) (*Topology, error) {
	return recovery.Synth(n, racks, zones)
}

// LoadTopology reads an n-resource failure-domain inventory: .csv
// holds resource,rack,zone rows, .jsonl/.ndjson/.json holds rack
// definitions {"rack":"r1","zone":"z1"} and assignments
// {"resource":0,"rack":"r1"} one per line. Every resource must be
// assigned exactly once, racks live in exactly one zone, the
// rack/zone namespaces must be disjoint (cycle-free hierarchy), and
// errors carry line numbers.
func LoadTopology(path string, n int) (*Topology, error) {
	return recovery.LoadTopologyFile(path, n)
}

// LoadChurnEvents reads a scripted churn-event schedule for an
// n-resource system: .csv holds round,every,down,up rows,
// .jsonl/.ndjson/.json holds one event object per line with optional
// down_list/up_list resource arrays. The full schedule validation runs
// at load time with line-numbered errors.
func LoadChurnEvents(path string, n int) ([]ChurnEvent, error) {
	return dynamic.LoadEventsFile(path, n)
}

// FaultPlan configures the deterministic message-fault layer of a
// dynamic run: per-message loss (lost migrations enter an in-flight
// ledger and retry with capped exponential backoff until a timeout
// re-homes them at their source), bounded delays (delivery k rounds
// late in canonical order), duplication (late copies deduped on
// arrival), and scripted partition windows (cut migrations bounce to
// their source while dispatch and the threshold tuner see only the
// reachable component). Every decision is a stateless keyed draw, so
// faulty runs replay bit-identically for every worker count. The zero
// value injects nothing.
type FaultPlan = faults.Plan

// FaultPartition scripts one connectivity window of a FaultPlan: during
// rounds [Start, End) the member resources form their own network
// component.
type FaultPartition = faults.Partition

// QuarantineSpec configures the flapping-resource hold-down: a resource
// whose churn transitions reach Flaps within a tumbling Window is held
// down for Cooloff rounds, its rejoin deferred until the hold expires.
// The zero value disables quarantining.
type QuarantineSpec = dynamic.Quarantine

// LoadFaultPlan reads a fault plan for an n-resource system: .csv holds
// kind,a,b,c directives (loss,P · delay,P,MAX · dup,P ·
// retry,BASE,CAP,TIMEOUT · seed,S · partition,START,END,MEMBERS with
// members as ranges "0-99;256"), .jsonl/.ndjson/.json holds one
// directive object per line. The full plan validation runs at load time
// with line-numbered errors.
func LoadFaultPlan(path string, n int) (*FaultPlan, error) {
	return faults.LoadPlanFile(path, n)
}

// PartitionRack builds the partition window that cuts one topology rack
// off the fleet during rounds [start, end).
func PartitionRack(topo *Topology, rack, start, end int) FaultPartition {
	return FaultPartition{Start: start, End: end, Members: topo.RackList(rack, nil)}
}

// PartitionZone builds the partition window that cuts one topology zone
// off the fleet during rounds [start, end) — the zone-level sibling of
// PartitionRack (a zone loss is the classic cloud incident shape).
func PartitionZone(topo *Topology, zone, start, end int) FaultPartition {
	return FaultPartition{Start: start, End: end, Members: topo.ZoneList(zone, nil)}
}

// LoadFaultPlanTopo is LoadFaultPlan with the topology's rack and zone
// names resolvable in partition member lists: a directive may say
// "partition,100,200,rack3" or mix names with index ranges
// ("0-15;zone1").
func LoadFaultPlanTopo(path string, n int, topo *Topology) (*FaultPlan, error) {
	return faults.LoadPlanFileNamed(path, n, topo.Resolve)
}

// UniformRehome re-homes each evacuated task to a uniformly random up
// resource — the engine's default (and original) evacuation rule.
func UniformRehome() RehomePolicy { return dynamic.UniformRehome{} }

// PowerOfDRehome samples d up resources per evacuated task and lands
// it on the least loaded (by load-per-speed on heterogeneous fleets) —
// load-aware failure recovery.
func PowerOfDRehome(d int) RehomePolicy { return dynamic.PowerOfDRehome{D: d} }

// LocalityRehome re-homes evacuees topology-aware: same rack first,
// then same zone, then anywhere up. Use a fresh value per concurrent
// run (the policy tracks the up set incrementally).
func LocalityRehome(topo *Topology) RehomePolicy { return &recovery.Locality{Topo: topo} }

// SpeedWeightedRehome re-homes each evacuee to an up resource drawn
// with probability proportional to its speed — fast machines absorb
// more of a dead rack. Equals UniformRehome on homogeneous fleets.
func SpeedWeightedRehome() RehomePolicy { return &dynamic.SpeedWeightedRehome{} }

// ShardStat reports one worker shard's resource range and measured
// phase cost — the observability surface of measured-cost shard sizing
// (see DynamicScenario.OnRebalance).
type ShardStat = dynamic.ShardStat

// ObsBroker is the streaming observability broker: a bounded
// ring-buffer pub/sub fabric carrying a dynamic run's typed telemetry
// events (fleet / per-shard / per-domain window statistics, exchange
// lane occupancy, per-shard phase timings, recovery episodes). Attach
// one via DynamicScenario.Subscribe (or set DynamicScenario.Obs) and
// drain subscriptions with Poll (non-blocking) or Wait (blocking).
// Publishing never blocks or allocates — a slow subscriber loses
// events per its drop policy, counted on the subscription — so the
// engine's zero-alloc and bit-for-bit determinism invariants hold with
// any number of subscribers attached.
type ObsBroker = obs.Broker

// ObsEvent is one typed telemetry event; ObsEvent.Kind selects the
// payload field.
type ObsEvent = obs.Event

// ObsSubscription is one subscriber's bounded view of the event
// stream.
type ObsSubscription = obs.Subscription

// ObsSubOptions configures a subscription: ring capacity, an optional
// kind filter (obs.Mask), and the drop policy for a full ring.
type ObsSubOptions = obs.SubOptions

// DomainLabels labels every resource with a failure domain on one
// hierarchy level (racks, zones) for per-domain window events; build
// them from a Topology with ObsDomains.
type DomainLabels = obs.Domains

// NewObsBroker returns an empty observability broker to share between
// a DynamicScenario and export surfaces.
func NewObsBroker() *ObsBroker { return obs.NewBroker() }

// ObsDomains converts a Topology into per-level domain labellings
// (level "rack", then level "zone") for DynamicScenario.Domains.
func ObsDomains(topo *Topology) []DomainLabels { return topo.ObsDomains() }

// ObsKind discriminates telemetry event payloads; ObsKindMask filters
// a subscription down to the kinds it wants (zero mask = all kinds).
type (
	ObsKind     = obs.Kind
	ObsKindMask = obs.KindMask
)

// The event taxonomy: fleet, per-shard and per-failure-domain window
// statistics, exchange lane occupancy, per-shard measured cost,
// per-phase wall-clock profiles, recovery-episode transitions,
// cumulative message-fault counters, and quarantine transitions.
const (
	KindWindow        = obs.KindWindow
	KindShardWindow   = obs.KindShardWindow
	KindDomainWindow  = obs.KindDomainWindow
	KindLanes         = obs.KindLanes
	KindShardCost     = obs.KindShardCost
	KindPhase         = obs.KindPhase
	KindRecoveryStart = obs.KindRecoveryStart
	KindRecoveryEnd   = obs.KindRecoveryEnd
	KindFaults        = obs.KindFaults
	KindQuarantine    = obs.KindQuarantine
	KindAlert         = obs.KindAlert
	KindCheckpoint    = obs.KindCheckpoint
	KindTrace         = obs.KindTrace
	KindTraceHist     = obs.KindTraceHist
)

// FaultStats is the cumulative message-fault snapshot carried by
// KindFaults events; QuarantineEvent is the per-transition payload of
// KindQuarantine events; AlertEvent is the domain SLO alert payload of
// KindAlert events; CheckpointEvent announces each written checkpoint
// on KindCheckpoint events.
type (
	FaultStats      = obs.FaultStats
	QuarantineEvent = obs.QuarantineEvent
	AlertEvent      = obs.AlertEvent
	CheckpointEvent = obs.CheckpointEvent
)

// ObsMask builds a subscription kind filter from event kinds.
func ObsMask(kinds ...ObsKind) ObsKindMask { return obs.Mask(kinds...) }

// ShardWindowStats and DomainWindowStats are the per-shard and
// per-failure-domain variants of WindowStats, carried by
// KindShardWindow / KindDomainWindow events.
type (
	ShardWindowStats  = obs.ShardWindowStats
	DomainWindowStats = obs.DomainWindowStats
)

// ObsExporter aggregates an event subscription into live export
// surfaces: a Prometheus text /metrics handler, an expvar publication,
// and a ready-made mux with net/http/pprof attached. It drains lazily
// on scrape — registered but unscraped, it costs the run nothing.
type ObsExporter = obs.Exporter

// NewObsExporter subscribes an exporter to the broker (capacity <= 0
// uses the default ring size). Returns nil if the broker is closed.
func NewObsExporter(b *ObsBroker, capacity int) *ObsExporter {
	return obs.NewExporter(b, capacity)
}

// ObsSink pumps a subscription to an io.Writer as JSONL on its own
// goroutine — the run never blocks on the writer; a slow sink shows up
// as counted drops. Close flushes and reports the first write error.
type ObsSink = obs.Sink

// NewObsSink attaches a JSONL sink to the broker. Returns nil if the
// broker is closed.
func NewObsSink(w io.Writer, b *ObsBroker, o ObsSubOptions) *ObsSink {
	return obs.NewSink(w, b, o)
}

// WriteObsEvents and ReadObsEvents are the symmetric JSONL event
// codec — ReadObsEvents parses what ObsSink / WriteObsEvents wrote
// (one object per line, blank lines and # comments skipped).
func WriteObsEvents(w io.Writer, evs []ObsEvent) error { return obs.WriteEvents(w, evs) }

// ReadObsEvents reads a JSONL event stream back; errors carry line
// numbers and never panic (the reader is fuzzed).
func ReadObsEvents(r io.Reader) ([]ObsEvent, error) { return obs.ReadEvents(r) }

// TraceRecord is one sampled task-lifecycle event (arrival, migration
// hop with its cause, retry attempt, loss, departure), carried by
// KindTrace events and by the JSONL trace streams lbdyn writes and
// lbtrace reads.
type TraceRecord = trace.Record

// TraceSnapshot is the always-on lifecycle histogram triple (sojourn
// rounds, migration hops per task, ledger retry latency) carried by
// KindTraceHist events at every metrics-window boundary.
type TraceSnapshot = trace.Snapshot

// ObsTraceSink pumps a broker's KindTrace stream to an io.Writer as
// bare-record JSONL on its own goroutine — the run never blocks on the
// writer. The sink clears the broker sequence number, so the byte
// stream is identical for every worker count.
type ObsTraceSink = obs.TraceSink

// NewObsTraceSink attaches a trace-record JSONL sink to the broker
// (capacity <= 0 uses the default ring size). Returns nil if the broker
// is closed.
func NewObsTraceSink(w io.Writer, b *ObsBroker, capacity int) *ObsTraceSink {
	return obs.NewTraceSink(w, b, capacity)
}

// ReadTraceRecords parses a bare-record trace JSONL stream back (one
// record per line, blank lines and # comments skipped); errors carry
// line numbers and never panic (the reader is fuzzed).
func ReadTraceRecords(r io.Reader) ([]TraceRecord, error) { return trace.ReadRecords(r) }

// WriteTraceRecords writes records in the format ReadTraceRecords
// parses.
func WriteTraceRecords(w io.Writer, recs []TraceRecord) error { return trace.WriteRecords(w, recs) }

// WeightDist generates task weights (each ≥ 1) for arrival processes.
type WeightDist = task.Distribution

// UnitDist returns the constant unit-weight distribution.
func UnitDist() WeightDist { return task.Uniform{W: 1} }

// ParetoDist returns the heavy-tailed Pareto(1, alpha) weight
// distribution capped at cap (0 = uncapped).
func ParetoDist(alpha, cap float64) WeightDist { return task.Pareto{Alpha: alpha, Cap: cap} }

// ExponentialDist returns the 1+Exp weight distribution with the given
// mean ≥ 1.
func ExponentialDist(mean float64) WeightDist { return task.Exponential{Mean: mean} }

// UniformRangeDist returns weights uniform on [lo, hi], lo ≥ 1.
func UniformRangeDist(lo, hi float64) WeightDist { return task.UniformRange{Lo: lo, Hi: hi} }

// PoissonArrivals emits Poisson(rate) tasks per round with weights
// from dist.
func PoissonArrivals(rate float64, dist WeightDist) Arrivals {
	return dynamic.Poisson{Rate: rate, Weights: dist}
}

// BurstArrivals emits size tasks every `every` rounds — a periodic
// batch workload.
func BurstArrivals(every, size int, dist WeightDist) Arrivals {
	return dynamic.Burst{Every: every, Size: size, Weights: dist}
}

// TraceArrivals replays a recorded arrival sequence: rounds[t] holds
// the weights arriving in round t.
func TraceArrivals(rounds [][]float64, label string) Arrivals {
	return dynamic.Trace{Rounds: rounds, Label: label}
}

// LoadTraceArrivals reads a recorded arrival trace from a file so
// production logs replay through the open-system engine. The format
// follows the extension: .csv holds round,weight records (optional
// header, '#' comments), .jsonl/.ndjson/.json holds one
// {"round":r,"weight":w} object per line. Records may appear in any
// round order; weights must satisfy the library's wmin ≥ 1
// normalisation and errors carry line numbers.
func LoadTraceArrivals(path string) (Arrivals, error) {
	return dynamic.LoadTraceFile(path)
}

// WeightProportionalService makes every resource serve rate
// weight-units per round, bottom of stack first; a task departs once
// work equal to its weight is done. Offered utilisation is
// ρ = arrivalRate·E[w]/(n·rate).
func WeightProportionalService(rate float64) Service {
	return dynamic.WeightProportional{Rate: rate}
}

// GeometricService makes every in-flight task depart independently
// with probability p per round (mean lifetime 1/p rounds).
func GeometricService(p float64) Service { return dynamic.Geometric{P: p} }

// UniformDispatch routes each arrival to a uniformly random up
// resource.
func UniformDispatch() Dispatch { return dynamic.UniformDispatch{} }

// HotspotDispatch routes every arrival to one ingress resource — the
// dynamic analogue of the paper's single-source placement.
func HotspotDispatch(resource int) Dispatch { return dynamic.HotspotDispatch{Resource: resource} }

// PowerOfDDispatch samples d random up resources per arrival and
// routes to the least loaded (d = 2 is the classic two-choice rule).
// On heterogeneous fleets (DynamicScenario.Speeds) the samples are
// compared by load-per-speed, the quantity the speed-proportional
// thresholds equalise.
func PowerOfDDispatch(d int) Dispatch { return dynamic.PowerOfD{D: d} }

// SpeedWeightedDispatch routes each arrival to an up resource drawn
// with probability proportional to its speed — faster machines take
// proportionally more ingress. On homogeneous fleets it equals
// UniformDispatch.
func SpeedWeightedDispatch() Dispatch { return &dynamic.SpeedWeighted{} }

// LoadSpeeds reads an n-resource speed profile for heterogeneous
// fleets: .csv holds resource,speed records (optional header, '#'
// comments), .jsonl/.ndjson/.json holds one {"resource":r,"speed":s}
// object per line. Resources the file does not mention default to
// speed 1; speeds must be positive and finite, indices must lie in
// [0, n), duplicates are an error, and errors carry line numbers. The
// result plugs into DynamicScenario.Speeds.
func LoadSpeeds(path string, n int) ([]float64, error) {
	return dynamic.LoadSpeedsFile(path, n)
}

// DynamicScenario describes one open-system simulation: tasks arrive
// via Arrivals, are routed by Dispatch, receive service and depart per
// Service, resources churn per Churn, and every round the selected
// migration protocol runs against thresholds re-estimated online
// (decaying load averages spread by diffusion — or the exact average
// when OracleThresholds is set).
type DynamicScenario struct {
	// Graph is the resource topology (required).
	Graph *Graph
	// Speeds is the per-resource speed profile of a heterogeneous
	// fleet (nil = homogeneous): resource r serves work at s_r times
	// the unit rate, the online tuner targets the speed-proportional
	// thresholds (1+ε)·(W/S_up)·s_r + wmax, and load-aware dispatch
	// compares load-per-speed. Length must equal the resource count;
	// all speeds must be positive and finite. See LoadSpeeds for the
	// file formats and SpeedWeightedDispatch for speed-proportional
	// ingress.
	Speeds []float64
	// Protocol selects the migration rule (same kinds as Scenario).
	Protocol ProtocolKind
	// Alpha is the user-protocol migration constant; 0 means 1.
	Alpha float64
	// Epsilon is the threshold slack of the online estimate
	// T_r = (1+ε)·estimate_r + wmax; 0 means 0.5. Must be positive —
	// the slack absorbs both estimation error and arrival bursts.
	Epsilon float64
	// LazyWalk makes the resource-protocol walk 1/2-lazy.
	LazyWalk bool
	// Seed fixes all randomness; runs are fully deterministic.
	Seed uint64
	// Workers shards the round pipeline across a persistent worker
	// pool; ≤ 1 runs sequentially. Any worker count produces the same
	// Result bit for bit — parallelism changes only the wall clock, so
	// the seed alone still identifies a run.
	Workers int
	// RebalanceEvery is the measured-cost shard-sizing period in
	// rounds: shard boundaries move so observed per-shard cost
	// equalises. 0 selects the default (64); < 0 pins equal-count
	// shards. Boundary placement never changes results.
	RebalanceEvery int
	// OnRebalance, if non-nil, receives per-shard measured costs at
	// every rebalance point (Workers > 1 only); the slice is reused
	// across calls.
	OnRebalance func(round int, stats []ShardStat)
	// OnLanes, if non-nil, receives the delivery exchange's per-lane
	// move counts (row-major source×destination shard matrix,
	// accumulated since the previous report) on the OnRebalance
	// cadence — the backpressure telemetry that makes skewed migration
	// patterns visible before they serialise the merge. Workers > 1
	// only; the slice is reused across calls.
	OnLanes func(round int, workers int, counts []int64)
	// Rounds is the number of simulated rounds (required).
	Rounds int
	// Window is the metrics window length; 0 means 100 rounds.
	Window int
	// Arrivals is the arrival process (required).
	Arrivals Arrivals
	// Service is the departure discipline (required).
	Service Service
	// Dispatch routes arrivals; nil means UniformDispatch.
	Dispatch Dispatch
	// Rehome picks where tasks evacuated off failed resources land;
	// nil means UniformRehome (bit-identical to the pre-policy engine).
	Rehome RehomePolicy
	// OracleThresholds uses the exact in-flight average W(t)/n_up
	// instead of the decentralised diffusion estimate.
	OracleThresholds bool
	// TunerDecay is the per-round EWMA decay of the load estimate
	// (0 = default 0.8); TunerEvery the rounds between diffusion
	// refreshes (0 = default 10); TunerSteps the diffusion steps per
	// refresh (0 = default 8).
	TunerDecay float64
	TunerEvery int
	TunerSteps int
	// Churn enables resource join/leave; zero value disables.
	Churn ChurnSpec
	// Faults configures the unreliable-network mode (message loss with
	// retry/timeout, bounded delays, duplication, scripted partition
	// windows); nil — or an all-zero plan — injects nothing and keeps
	// the fault-free hot path byte-identical. See FaultPlan and
	// LoadFaultPlan.
	Faults *FaultPlan
	// Quarantine enables the flapping-resource hold-down; the zero
	// value disables it.
	Quarantine QuarantineSpec
	// InitialWeights/InitialPlacement optionally pre-populate the
	// system (nil placement puts all initial tasks on resource 0).
	InitialWeights   []float64
	InitialPlacement []int
	// CheckInvariants validates weight conservation every round
	// (slow; tests only).
	CheckInvariants bool
	// OnWindow, if non-nil, receives each completed metrics window —
	// the streaming-metrics hook.
	OnWindow func(WindowStats)
	// Obs, if non-nil, streams the run's typed telemetry events into
	// the broker (see ObsBroker). Subscribe attaches a subscription and
	// fills this field lazily.
	Obs *ObsBroker
	// Domains labels resources with failure domains (racks, zones) for
	// per-domain window events on Obs; see ObsDomains. Ignored when Obs
	// is nil.
	Domains []DomainLabels
	// TraceSample samples per-task lifecycle tracing: each arriving task
	// is traced with this probability, decided by a stateless hash of
	// (Seed, TraceSeed, task ID) — never by the shard split — so the
	// record stream is bit-identical for every worker count. Sampled
	// tasks publish KindTrace events (arrival, every migration hop with
	// its cause, retries, departure) on Obs; 0 disables record
	// publication. The sojourn/hop/retry-latency histograms in the
	// Result are always on regardless. Must lie in [0, 1]; requires Obs
	// for the records to go anywhere.
	TraceSample float64
	// TraceSeed decouples the sampling hash from the run seed, so
	// several trace passes over one scenario can sample different task
	// subsets. 0 is a fine default.
	TraceSeed uint64
	// AlertBudget arms domain-level SLO alerts: when a rack's or zone's
	// window overload fraction exceeds the budget for AlertWindows
	// consecutive windows, a KindAlert event fires on Obs (and a
	// Cleared event when the domain returns within budget). 0 disables;
	// otherwise must lie in (0,1). Requires Obs and Domains.
	AlertBudget float64
	// AlertWindows is the consecutive-breach count that fires an alert;
	// 0 selects 1 (alert on the first breached window).
	AlertWindows int
	// CheckpointEvery writes a checkpoint of the complete engine state
	// every that many rounds (0 disables), delivered to OnCheckpoint. A
	// run resumed from a checkpoint finishes byte-identical to the
	// uninterrupted one, at any worker count. See Resume.
	CheckpointEvery int
	// OnCheckpoint receives each checkpoint: the byte slice aliases an
	// internal buffer reused by the next checkpoint, so persist it (see
	// WriteSnapshotFile) or copy it before returning. A non-nil error
	// aborts the run.
	OnCheckpoint func(round int, data []byte) error
	// CrashAfterRound, when > 0, kills the run with ErrCrashed after
	// that many rounds — after the boundary's checkpoint, so the
	// crash-recovery path is testable end to end.
	CrashAfterRound int
}

// Subscribe attaches a subscription to the scenario's event stream,
// creating the broker on first use. Call before Run; drain the
// subscription from another goroutine (Wait) or after the run (Poll).
// Subscribers never perturb the run — replay stays bit-identical and
// steady-state rounds still allocate nothing.
func (sc *DynamicScenario) Subscribe(o ObsSubOptions) *ObsSubscription {
	if sc.Obs == nil {
		sc.Obs = NewObsBroker()
	}
	return sc.Obs.Subscribe(o)
}

// Run executes the open-system scenario.
func (sc DynamicScenario) Run() (DynamicResult, error) {
	cfg, err := sc.config()
	if err != nil {
		return DynamicResult{}, err
	}
	return dynamic.Run(cfg)
}

// Engine builds the scenario's resumable engine without starting it:
// call Run once, Checkpoint to snapshot manually, and Close when done.
// Most callers want plain Run (or Resume); the explicit engine exists
// for harnesses that checkpoint outside the CheckpointEvery cadence.
func (sc DynamicScenario) Engine() (*DynamicEngine, error) {
	cfg, err := sc.config()
	if err != nil {
		return nil, err
	}
	return dynamic.NewEngine(cfg)
}

// Resume reads a checkpoint written by a run of this scenario and
// returns the engine that continues it: its Run() enters the round
// loop at the checkpointed boundary and finishes byte-identical to the
// uninterrupted run, at any worker count, including under active fault
// plans. The scenario must be equivalent to the one that wrote the
// checkpoint (the snapshot rejects detectable mismatches with a
// structured error — corrupted, truncated or reordered snapshots never
// load silently).
func (sc DynamicScenario) Resume(r io.Reader) (*DynamicEngine, error) {
	cfg, err := sc.config()
	if err != nil {
		return nil, err
	}
	return dynamic.Resume(r, cfg)
}

// config validates the scenario and assembles the engine configuration
// shared by Run, Engine and Resume. Stateful components (tuner,
// re-home policy state) are built fresh on every call, as checkpoint
// restore requires.
func (sc DynamicScenario) config() (dynamic.Config, error) {
	if sc.Graph == nil {
		return dynamic.Config{}, errors.New("thresholdlb: DynamicScenario.Graph is required")
	}
	if sc.Graph.N() == 0 {
		return dynamic.Config{}, errors.New("thresholdlb: graph has no resources")
	}
	if !sc.Graph.Connected() {
		return dynamic.Config{}, errors.New("thresholdlb: graph must be connected")
	}
	if sc.Arrivals == nil {
		return dynamic.Config{}, errors.New("thresholdlb: DynamicScenario.Arrivals is required")
	}
	if sc.Service == nil {
		return dynamic.Config{}, errors.New("thresholdlb: DynamicScenario.Service is required")
	}
	if sc.Rounds <= 0 {
		return dynamic.Config{}, errors.New("thresholdlb: DynamicScenario.Rounds must be > 0")
	}
	if sc.Epsilon < 0 {
		return dynamic.Config{}, errors.New("thresholdlb: Epsilon must be non-negative")
	}
	eps := sc.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	alpha := sc.Alpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha < 0 {
		return dynamic.Config{}, errors.New("thresholdlb: Alpha must be positive")
	}
	for i, w := range sc.InitialWeights {
		if !task.ValidWeight(w) {
			return dynamic.Config{}, fmt.Errorf("thresholdlb: initial weight %v at index %d is below 1 (or not finite)", w, i)
		}
	}

	mkKernel := func() walk.Kernel {
		var k walk.Kernel = walk.NewMaxDegree(sc.Graph)
		if sc.LazyWalk {
			k = walk.NewLazy(k)
		}
		return k
	}
	var proto core.Protocol
	switch sc.Protocol {
	case ResourceBased:
		proto = core.ResourceControlled{Kernel: mkKernel()}
	case UserBased:
		if !isComplete(sc.Graph) {
			return dynamic.Config{}, errors.New("thresholdlb: UserBased requires the complete graph (the paper's model); use UserBasedGraph for other topologies")
		}
		proto = core.UserControlled{Alpha: alpha}
	case UserBasedGraph:
		proto = core.UserControlledGraph{Alpha: alpha}
	case MixedBased:
		proto = core.Mixed{
			A:      core.ResourceControlled{Kernel: mkKernel()},
			B:      core.UserControlledGraph{Alpha: alpha},
			Period: 2,
		}
	default:
		return dynamic.Config{}, fmt.Errorf("thresholdlb: unknown protocol %v", sc.Protocol)
	}

	var tuner dynamic.Tuner
	if sc.OracleThresholds {
		tuner = &dynamic.OracleTuner{Eps: eps, Every: sc.TunerEvery}
	} else {
		if sc.Graph.MaxDegree() == 0 {
			return dynamic.Config{}, errors.New("thresholdlb: self-tuned thresholds need a graph with at least one edge to diffuse over; set OracleThresholds for a single resource")
		}
		st := dynamic.NewSelfTuner(walk.NewLazy(walk.NewMaxDegree(sc.Graph)), eps)
		if sc.TunerDecay > 0 {
			st.Decay = sc.TunerDecay
		}
		if sc.TunerEvery > 0 {
			st.Every = sc.TunerEvery
		}
		if sc.TunerSteps > 0 {
			st.Steps = sc.TunerSteps
		}
		tuner = st
	}

	rehome := sc.Rehome
	if loc, ok := rehome.(*recovery.Locality); ok && loc != nil {
		// Checkpoint restore (and back-to-back runs) need fresh policy
		// state; the Locality value itself carries run state, so clone
		// the configuration without the membership lists.
		rehome = &recovery.Locality{Topo: loc.Topo}
	}

	return dynamic.Config{
		Graph:            sc.Graph,
		Speeds:           sc.Speeds,
		Protocol:         proto,
		Arrivals:         sc.Arrivals,
		Service:          sc.Service,
		Dispatch:         sc.Dispatch,
		Rehome:           rehome,
		Tuner:            tuner,
		Churn:            sc.Churn,
		Faults:           sc.Faults,
		Quarantine:       sc.Quarantine,
		Rounds:           sc.Rounds,
		Window:           sc.Window,
		Seed:             sc.Seed,
		Workers:          sc.Workers,
		RebalanceEvery:   sc.RebalanceEvery,
		OnRebalance:      sc.OnRebalance,
		OnLanes:          sc.OnLanes,
		InitialWeights:   sc.InitialWeights,
		InitialPlacement: sc.InitialPlacement,
		CheckInvariants:  sc.CheckInvariants,
		OnWindow:         sc.OnWindow,
		Obs:              sc.Obs,
		Domains:          sc.Domains,
		TraceSample:      sc.TraceSample,
		TraceSeed:        sc.TraceSeed,
		AlertBudget:      sc.AlertBudget,
		AlertWindows:     sc.AlertWindows,
		CheckpointEvery:  sc.CheckpointEvery,
		OnCheckpoint:     sc.OnCheckpoint,
		CrashAfterRound:  sc.CrashAfterRound,
	}, nil
}

// DynamicEngine is the resumable form of DynamicScenario.Run — built
// by DynamicScenario.Engine or DynamicScenario.Resume.
type DynamicEngine = dynamic.Engine

// ErrCrashed is returned by a run cut short by CrashAfterRound (the
// crash-injection harness's simulated kill).
var ErrCrashed = dynamic.ErrCrashed

// WriteSnapshotFile persists one checkpoint atomically: the bytes land
// under a temporary name, are fsynced, and are renamed into place, so
// a crash mid-write never leaves a truncated snapshot at path.
func WriteSnapshotFile(path string, data []byte) error {
	return snapshot.WriteFileAtomic(path, data)
}
