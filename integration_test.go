package thresholdlb

// Integration tests: cross-module checks that the measured balancing
// behaviour obeys the paper's theorems at small scale. These complement
// the full-scale experiment harness (cmd/lbbench) with fast assertions
// that run in `go test`.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// meanRounds runs `trials` deterministic trials of a scenario builder
// and returns the mean balancing time.
func meanRounds(t *testing.T, trials int, build func(seed uint64) (*core.State, core.Protocol)) float64 {
	t.Helper()
	o := sim.Mean(trials, 2, func(trial int, seed uint64) float64 {
		s, p := build(seed)
		res := core.Run(s, p, core.RunOptions{MaxRounds: 5_000_000})
		if !res.Balanced {
			t.Errorf("trial %d did not balance", trial)
		}
		return float64(res.Rounds)
	}, 0xabc)
	return o.Mean()
}

func unitSet(m int) *task.Set {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return task.NewSet(w)
}

// Theorem 11 compliance: measured expected balancing time must sit
// below the analytic bound 2(1+ε)/(αε)·(wmax/wmin)·ln m for a range of
// weight ratios.
func TestIntegrationTheorem11Bound(t *testing.T) {
	const (
		n     = 100
		m     = 800
		eps   = 0.2
		alpha = 1.0
	)
	g := graph.Complete(n)
	for _, wmax := range []float64{1, 8, 64} {
		k := 1
		if wmax == 1 {
			k = 0
		}
		mean := meanRounds(t, 10, func(seed uint64) (*core.State, core.Protocol) {
			r := task.TwoPoint{Heavy: math.Max(wmax, 1), K: k}
			ts := task.NewSet(r.Weights(m, seedRand(seed)))
			s := core.NewState(g, ts, make([]int, m), core.AboveAverage{Eps: eps}, seed)
			return s, core.UserControlled{Alpha: alpha}
		})
		bound := drift.Theorem11Bound(eps, alpha, wmax, 1, m)
		if mean > bound {
			t.Fatalf("wmax=%v: measured %v exceeds Theorem 11 bound %v", wmax, mean, bound)
		}
	}
}

// Theorem 3 shape: balancing time normalised by τ(G)·ln m must be of
// the same order across topologies with very different mixing times.
func TestIntegrationTheorem3ShapeAcrossGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(64),
		graph.Hypercube(6),
		graph.Grid2D(8, 8, true),
	}
	m := 256
	var ratios []float64
	for _, g := range graphs {
		kernel := walk.NewLazy(walk.NewMaxDegree(g))
		tau := walk.MixingTimeTV(kernel, walk.DefaultStarts(kernel), walk.DefaultMixingEps, 1_000_000)
		mean := meanRounds(t, 8, func(seed uint64) (*core.State, core.Protocol) {
			ts := unitSet(m)
			s := core.NewState(g, ts, make([]int, m), core.AboveAverage{Eps: 0.5}, seed)
			return s, core.ResourceControlled{Kernel: kernel}
		})
		ratios = append(ratios, mean/(math.Max(float64(tau), 1)*math.Log(float64(m))))
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	// Same order of magnitude: within a factor 12 across a complete
	// graph, a hypercube and a torus whose mixing times span ~20x.
	if hi > 12*lo {
		t.Fatalf("Theorem 3 ratios too spread: %v", ratios)
	}
}

// Theorem 3's weight-independence: unit vs heavy-tailed weights on the
// same graph must balance in comparable time (the bound has no weight
// term).
func TestIntegrationWeightIndependence(t *testing.T) {
	g := graph.Hypercube(6)
	kernel := walk.NewLazy(walk.NewMaxDegree(g))
	m := 256
	unit := meanRounds(t, 10, func(seed uint64) (*core.State, core.Protocol) {
		ts := unitSet(m)
		s := core.NewState(g, ts, make([]int, m), core.AboveAverage{Eps: 0.5}, seed)
		return s, core.ResourceControlled{Kernel: kernel}
	})
	weighted := meanRounds(t, 10, func(seed uint64) (*core.State, core.Protocol) {
		ts := task.NewSet(task.Pareto{Alpha: 1.5, Cap: 30}.Weights(m, seedRand(seed)))
		s := core.NewState(g, ts, make([]int, m), core.AboveAverage{Eps: 0.5}, seed)
		return s, core.ResourceControlled{Kernel: kernel}
	})
	if weighted > 4*unit+10 || unit > 4*weighted+10 {
		t.Fatalf("weight dependence detected: unit %v vs weighted %v rounds", unit, weighted)
	}
}

// Observation 8 scaling: halving the pendant links roughly doubles the
// balancing time at fixed n (rounds ∝ H(G) = Θ(n²/k)).
func TestIntegrationObservation8Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: clique+pendant sweeps")
	}
	n := 24
	perNode := 3 * n
	m := perNode * n
	rounds := map[int]float64{}
	for _, k := range []int{2, 8} {
		g := graph.CliquePendant(n, k)
		kernel := walk.NewLazy(walk.NewMaxDegree(g))
		rounds[k] = meanRounds(t, 6, func(seed uint64) (*core.State, core.Protocol) {
			ts := unitSet(m)
			placement := make([]int, m)
			id := 0
			for node := 0; node < n-1; node++ {
				for j := 0; j < perNode; j++ {
					placement[id] = node
					id++
				}
			}
			for ; id < m; id++ {
				placement[id] = 0
			}
			s := core.NewState(g, ts, placement, core.TightResource{}, seed)
			return s, core.ResourceControlled{Kernel: kernel}
		})
	}
	ratio := rounds[2] / rounds[8]
	// H ratio is 4; allow generous noise at this tiny scale.
	if ratio < 1.6 || ratio > 10 {
		t.Fatalf("Observation 8 scaling off: rounds(k=2)/rounds(k=8) = %v (want ≈4)", ratio)
	}
}

// The drift estimate from real user-controlled traces must be positive
// and the implied Theorem 6 bound must dominate the measured time.
func TestIntegrationDriftConsistency(t *testing.T) {
	g := graph.Complete(50)
	m := 400
	var traces [][]float64
	var measured []float64
	for trial := 0; trial < 10; trial++ {
		ts := unitSet(m)
		s := core.NewState(g, ts, make([]int, m), core.AboveAverage{Eps: 0.2}, uint64(100+trial))
		res := core.Run(s, core.UserControlled{Alpha: 1},
			core.RunOptions{MaxRounds: 100000, RecordPotential: true})
		if !res.Balanced {
			t.Fatal("did not balance")
		}
		traces = append(traces, res.PotentialTrace)
		measured = append(measured, float64(res.Rounds))
	}
	est := drift.EstimateDelta(traces, 5)
	if est.Delta <= 0 {
		t.Fatalf("non-positive empirical drift: %+v", est)
	}
	s0 := traces[0][0]
	bound := drift.Bound(s0, 1, est.Delta)
	if mean := stats.Mean(measured); mean > 3*bound {
		t.Fatalf("measured %v wildly exceeds drift bound %v (delta=%v)", mean, bound, est.Delta)
	}
}

// seedRand builds the deterministic generator used by workload builders
// in integration tests.
func seedRand(seed uint64) *rng.Rand { return rng.NewSeeded(seed) }
