package thresholdlb

import (
	"io"
	"net/http"

	"repro/internal/dynamic"
	"repro/internal/serve"
)

// Live serving: DynamicScenario describes the fleet and protocols as
// usual, but instead of drawing arrivals from a configured process the
// runtime ingests them from callers (typically cmd/lbserve's HTTP
// front door), ticks rounds on a wall clock or adaptively on backlog,
// and supports online reconfiguration — drain/add resources, swap the
// dispatch policy — without stopping the world.
//
// Every admitted batch is recorded into a deterministic round log;
// ReplayRoundLog re-runs the log through the lockstep engine and
// reproduces the live Result bit-for-bit (the twin-equivalence
// guarantee, pinned by internal/serve's test suite).

// ExternalArrivals marks a scenario whose arrivals are pushed in live
// (or replayed from a round log) instead of drawn from a synthetic
// process. LiveRuntime, ResumeLiveRuntime and ReplayRoundLog default
// a nil Arrivals to it.
func ExternalArrivals() Arrivals { return dynamic.External{} }

// StepInput is one round's worth of externally pushed input for
// DynamicEngine.Step — the primitive under the live runtime.
type StepInput = dynamic.StepInput

// LiveOptions tune the live runtime's pacing and persistence.
type LiveOptions = serve.Options

// LiveRuntime is the live serving runtime around a scenario's engine.
type LiveRuntime = serve.Runtime

// LiveRuntimeStats is the runtime's status snapshot.
type LiveRuntimeStats = serve.Stats

// RoundRecord is one stepped round's external input in the round log.
type RoundRecord = serve.RoundRecord

// LiveRuntime builds the scenario's live runtime: a fresh engine plus
// the serving loop. Drive it with Run (wall-clock) or StepRound
// (manual), push arrivals with Ingest, and Close when done.
func (sc DynamicScenario) LiveRuntime(opts LiveOptions) (*LiveRuntime, error) {
	if sc.Arrivals == nil {
		sc.Arrivals = ExternalArrivals()
	}
	eng, err := sc.Engine()
	if err != nil {
		return nil, err
	}
	return serve.New(eng, "", opts), nil
}

// ResumeLiveRuntime restores a live runtime from a shutdown checkpoint
// (resume-on-boot): the engine continues from the snapshot's round,
// and the dispatch policy in force — possibly swapped online since
// boot — is recovered from the recorded round log.
func (sc DynamicScenario) ResumeLiveRuntime(r io.Reader, recs []RoundRecord, opts LiveOptions) (*LiveRuntime, error) {
	if sc.Arrivals == nil {
		sc.Arrivals = ExternalArrivals()
	}
	eng, err := sc.Resume(r)
	if err != nil {
		return nil, err
	}
	name := serve.RecoverDispatch(recs, eng.NextRound())
	if name != "" {
		d, err := serve.ParseDispatch(name)
		if err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.SetDispatch(d); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return serve.New(eng, name, opts), nil
}

// ReplayRoundLog drives a fresh lockstep engine through a recorded
// live run and returns its Result — bit-identical to the live one when
// the scenario matches the live configuration (same graph, seed,
// protocols, plans; Workers may differ, results never do).
func (sc DynamicScenario) ReplayRoundLog(recs []RoundRecord) (DynamicResult, error) {
	if sc.Arrivals == nil {
		sc.Arrivals = ExternalArrivals()
	}
	eng, err := sc.Engine()
	if err != nil {
		return DynamicResult{}, err
	}
	defer eng.Close()
	return serve.Replay(eng, recs)
}

// ReadRoundLog parses and validates a JSONL round log written by the
// live runtime.
func ReadRoundLog(r io.Reader) ([]RoundRecord, error) { return serve.ReadRoundLog(r) }

// WriteRoundLog writes records as a JSONL round log.
func WriteRoundLog(w io.Writer, recs []RoundRecord) error {
	for i := range recs {
		if err := serve.AppendRecord(w, &recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// LiveRoutes mounts the runtime's HTTP front door (POST /ingest, POST
// /reconfig, GET /statusz, GET /healthz) on mux — typically the obs
// exporter's Mux so the front door, metrics and pprof share one
// listener.
func LiveRoutes(mux *http.ServeMux, rt *LiveRuntime) { serve.Routes(mux, rt) }

// ParseLiveDispatch resolves a dispatch-policy name from the
// reconfigure grammar: uniform | hotspot:<r> | power-of-<d> |
// speed-weighted.
func ParseLiveDispatch(name string) (Dispatch, error) { return serve.ParseDispatch(name) }
