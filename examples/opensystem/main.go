// Open system: the library's dynamic engine end to end.
//
// A 500-resource complete graph serves continuous traffic: weighted
// tasks arrive as a Poisson stream at 80% of the system's service
// capacity, every arrival lands on ONE ingress resource (the dynamic
// analogue of the paper's single-source placement), each task departs
// after receiving service proportional to its weight, and a tenth of
// the machines churn in and out. No resource knows the global load:
// thresholds are re-estimated online from decaying local load averages
// spread by diffusion, and the user-controlled protocol migrates excess
// work every round.
//
// Despite the hotspot ingress and the churn, the steady-state overload
// fraction stays near zero — the threshold protocol does the spreading
// the dispatcher refuses to do.
//
// Act two replays the same regime on a HETEROGENEOUS fleet: half the
// machines are 1×, a quarter 4×, a quarter 10×. Service capacity,
// thresholds and dispatch all become speed-proportional — the tuner
// learns the (W/S_up)·s_r targets online — and the fast machines end
// up carrying proportionally more load while load-per-speed stays
// flat across the fleet.
//
// Run with: go run ./examples/opensystem
package main

import (
	"fmt"
	"log"

	lb "repro"
)

const (
	n   = 500
	rho = 0.8 // offered utilisation
	// E[min(Pareto(1,2), 20)] = 2 − 1/20: mean arrival weight.
	meanWeight = 1.95
)

func main() {
	fmt.Println("=== homogeneous fleet, hotspot ingress, churn ===")
	homogeneous()
	fmt.Println("\n=== heterogeneous fleet (1x / 4x / 10x), speed-weighted ingress, churn ===")
	heterogeneous()
}

func homogeneous() {
	sc := lb.DynamicScenario{
		Graph:    lb.CompleteGraph(n),
		Protocol: lb.UserBased,
		Epsilon:  0.5,
		Seed:     2026,
		Rounds:   800,
		Window:   100,
		Arrivals: lb.PoissonArrivals(rho*n/meanWeight, lb.ParetoDist(2, 20)),
		Service:  lb.WeightProportionalService(1),
		Dispatch: lb.HotspotDispatch(0),
		Churn:    lb.ChurnSpec{LeaveProb: 0.05, JoinProb: 0.05, MinUp: 9 * n / 10},
		OnWindow: func(w lb.WindowStats) {
			fmt.Printf("rounds %4d-%-4d  overload %5.2f%%  p99 load %6.1f  in flight %6.0f  up %d\n",
				w.Start, w.End, 100*w.OverloadFrac, w.P99Load, w.InFlightWeight, w.UpResources)
		},
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d tasks (weight %.0f); %d still in flight\n",
		res.Departed, res.DepartedWeight, res.FinalInFlight)
	fmt.Printf("protocol moved %d tasks; churn re-homed %d across %d machine departures\n",
		res.Migrations, res.Rehomed, res.Downs)
	fmt.Printf("steady-state overload fraction: %.3f%%\n", 100*res.TailOverloadFrac(2))
}

func heterogeneous() {
	// Half the fleet 1×, a quarter 4×, a quarter 10× — total capacity
	// S = 500·(0.5·1 + 0.25·4 + 0.25·10) = 2000 unit-resource
	// equivalents (4× the homogeneous fleet). Arrivals are sized
	// against S, not n.
	speeds := make([]float64, n)
	totalSpeed := 0.0
	for r := range speeds {
		switch r % 4 {
		case 0, 1:
			speeds[r] = 1
		case 2:
			speeds[r] = 4
		case 3:
			speeds[r] = 10
		}
		totalSpeed += speeds[r]
	}
	sc := lb.DynamicScenario{
		Graph:    lb.CompleteGraph(n),
		Speeds:   speeds,
		Protocol: lb.UserBased,
		Epsilon:  0.5,
		Seed:     2026,
		Rounds:   800,
		Window:   100,
		Arrivals: lb.PoissonArrivals(rho*totalSpeed/meanWeight, lb.ParetoDist(2, 20)),
		Service:  lb.WeightProportionalService(1),
		Dispatch: lb.SpeedWeightedDispatch(),
		Churn:    lb.ChurnSpec{LeaveProb: 0.05, JoinProb: 0.05, MinUp: 9 * n / 10},
		OnWindow: func(w lb.WindowStats) {
			fmt.Printf("rounds %4d-%-4d  overload %5.2f%%  p99 load/speed %6.1f  in flight %6.0f  up %d\n",
				w.Start, w.End, 100*w.OverloadFrac, w.P99LoadPerSpeed, w.InFlightWeight, w.UpResources)
		},
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d tasks (weight %.0f) on %.1fx the homogeneous capacity\n",
		res.Departed, res.DepartedWeight, totalSpeed/n)
	fmt.Printf("protocol moved %d tasks; churn re-homed %d across %d machine departures\n",
		res.Migrations, res.Rehomed, res.Downs)
	fmt.Printf("steady-state overload fraction: %.3f%%\n", 100*res.TailOverloadFrac(2))
}
