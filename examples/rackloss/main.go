// Rack loss and recovery: the failure-domain subsystem end to end.
//
// A 1000-resource fleet is laid out as 8 racks in 2 zones, with
// speed classes 1×/2×/4×/10× interleaved so every rack mixes fast and
// slow machines. A compiled failure model takes whole racks down with
// a mean time between failures of 400 rounds and repairs them after
// ~30 — the same correlated trace (same seed) replayed twice, once
// with the engine's original uniform evacuation and once with
// speed-weighted re-homing, so the only difference is WHERE the
// displaced tasks land.
//
// The recovery summaries printed at the end are the point: the peak
// post-failure overload fraction and the time-to-drain both improve
// when a dead rack's work is handed to the machines with
// proportionally more headroom instead of being scattered uniformly.
//
// Run with: go run ./examples/rackloss
package main

import (
	"fmt"
	"log"
	"math"

	lb "repro"
)

const (
	n     = 1000
	racks = 8
	zones = 2
	rho   = 0.8
	// E[min(Pareto(1,2), 20)] = 2 − 1/20: mean arrival weight.
	meanWeight = 1.95
)

func main() {
	topo, err := lb.SynthTopology(n, racks, zones)
	if err != nil {
		log.Fatal(err)
	}
	// One correlated failure trace, shared by both runs.
	model := lb.FailureModel{Topo: topo, RackMTBF: 400, RackMTTR: 30}
	events, err := model.Compile(800, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d correlated churn events over 800 rounds\n\n", len(events))

	fmt.Println("=== uniform evacuation (the original engine behaviour) ===")
	uniform := run(topo, events, lb.UniformRehome())
	fmt.Println("\n=== speed-weighted evacuation (fast machines absorb the dead rack) ===")
	speedy := run(topo, events, lb.SpeedWeightedRehome())

	fmt.Printf("\npeak post-failure overload: %.2f%% (uniform) vs %.2f%% (speed-weighted)\n",
		100*uniform.PeakPostFailureOverload(), 100*speedy.PeakPostFailureOverload())
	u, s := uniform.MeanDrainRounds(), speedy.MeanDrainRounds()
	if !math.IsNaN(u) && !math.IsNaN(s) {
		fmt.Printf("mean time-to-drain:         %.1f rounds (uniform) vs %.1f rounds (speed-weighted)\n", u, s)
	}
}

func run(topo *lb.Topology, events []lb.ChurnEvent, rehome lb.RehomePolicy) lb.DynamicResult {
	speeds := make([]float64, n)
	total := 0.0
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
		total += speeds[r]
	}
	sc := lb.DynamicScenario{
		Graph:    lb.ExpanderGraph(n, 8, 11),
		Speeds:   speeds,
		Protocol: lb.ResourceBased,
		Epsilon:  0.5,
		Seed:     2026,
		Rounds:   800,
		Window:   100,
		Arrivals: lb.PoissonArrivals(rho*total/meanWeight, lb.ParetoDist(2, 20)),
		Service:  lb.WeightProportionalService(1),
		Dispatch: lb.PowerOfDDispatch(2),
		Rehome:   rehome,
		Churn:    lb.ChurnSpec{MinUp: n / 4, Events: events},
		OnWindow: func(w lb.WindowStats) {
			fmt.Printf("  rounds %4d-%-4d overload %6.2f%%  rehomed/round %7.1f  up %4d\n",
				w.Start, w.End, 100*w.OverloadFrac, w.RehomeRate, w.UpResources)
		},
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	drained := 0
	for _, rs := range res.Recoveries {
		if rs.Drained() {
			drained++
		}
	}
	fmt.Printf("  %d recovery episodes (%d drained), %d tasks re-homed (weight %.0f)\n",
		len(res.Recoveries), drained, res.Rehomed, res.RehomedWeight)
	return res
}
