// Grid cluster scenario: resource-controlled balancing on a sparse
// topology. Think of a mesh-connected compute fabric (a 2-D torus of
// nodes, as in many interconnects): nodes only talk to their four
// neighbours, so tasks must diffuse through the mesh. This is the
// regime of Theorem 3/7, where the balancing time is governed by the
// random walk's mixing and hitting times rather than by log m alone.
//
// We run the same workload on a torus and on an expander of the same
// size and show how the measured balancing times track the measured
// mixing times (Theorem 3: O(τ(G)·log m)).
//
// Run with: go run ./examples/gridcluster
package main

import (
	"fmt"
	"log"
	"math"

	lb "repro"
)

func main() {
	const side = 16
	n := side * side
	m := 4 * n
	topologies := []struct {
		name string
		g    *lb.Graph
	}{
		{"torus 16x16", lb.TorusGraph(side, side)},
		{"expander d=4", lb.ExpanderGraph(n, 4, 7)},
		{"hypercube d=8", lb.HypercubeGraph(8)},
	}
	fmt.Printf("workload: %d Pareto(1.5)-weighted tasks, all starting on node 0, eps=0.5\n\n", m)
	fmt.Printf("%-14s %10s %10s %10s %16s\n", "topology", "tau(TV)", "H(G)", "rounds", "rounds/(tau·lnm)")
	for _, tc := range topologies {
		sc := lb.Scenario{
			Graph:    tc.g,
			Weights:  lb.ParetoWeights(m, 1.5, 30, 11),
			Epsilon:  0.5,
			Protocol: lb.ResourceBased,
			LazyWalk: true, // grids and hypercubes are bipartite
			Seed:     33,
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		if !res.Balanced {
			log.Fatalf("%s: did not balance", tc.name)
		}
		tau := lb.MixingTime(tc.g)
		h := lb.MaxHittingTime(tc.g)
		denom := math.Max(float64(tau), 1) * math.Log(float64(m))
		fmt.Printf("%-14s %10d %10.0f %10d %16.3f\n",
			tc.name, tau, h, res.Rounds, float64(res.Rounds)/denom)
	}
	fmt.Println("\nnote: the last column stays O(1) across topologies — the balancing")
	fmt.Println("time scales with the mixing time as Theorem 3 predicts.")
}
