// Datacenter scenario: weighted batch jobs on a cluster with full
// connectivity — the paper's motivating setting ("the balls usually
// model tasks … the bins model the resources used to process the
// tasks"), with the Figure 1 workload shape.
//
// A scheduler has dumped a burst of jobs onto one ingest node: a few
// heavy jobs (long service times, weight 50) and thousands of small
// ones (weight 1). Every job re-schedules itself autonomously with the
// user-controlled protocol; nobody has a global view. We sweep the
// number of heavy jobs and show the paper's Figure 1 observation: the
// balancing time tracks log(total jobs) and is almost independent of
// how many of them are heavy.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math"

	lb "repro"
)

func main() {
	const (
		nodes  = 500
		budget = 8000.0 // total work (sum of job weights) W
		heavyW = 50.0
	)
	g := lb.CompleteGraph(nodes)
	fmt.Printf("cluster: %d nodes, total work %.0f, threshold (1.2·W/n + wmax)\n\n", nodes, budget)
	fmt.Printf("%8s %8s %8s %14s\n", "heavy", "jobs", "rounds", "rounds/ln(m)")
	for _, heavy := range []int{1, 5, 10, 20, 50} {
		small := int(budget) - heavy*int(heavyW)
		m := small + heavy
		sc := lb.Scenario{
			Graph:    g,
			Weights:  lb.TwoPointWeights(m, heavy, heavyW),
			Epsilon:  0.2,
			Protocol: lb.UserBased,
			Alpha:    1,
			Seed:     uint64(9000 + heavy),
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		if !res.Balanced {
			log.Fatalf("heavy=%d: did not balance in %d rounds", heavy, res.Rounds)
		}
		fmt.Printf("%8d %8d %8d %14.2f\n",
			heavy, m, res.Rounds, float64(res.Rounds)/math.Log(float64(m)))
	}
	fmt.Println("\nnote: the last column is nearly flat — balancing time ∝ log m,")
	fmt.Println("independent of the heavy-job count (paper, Figure 1).")
}
