// Quickstart: the smallest useful run of the library.
//
// 1000 unit-weight tasks start on one resource of a 100-node complete
// graph. The user-controlled protocol (Algorithm 6.1) with the paper's
// simulation parameters (ε = 0.2, α = 1) balances the system; we print
// how many rounds it took and compare with the Theorem 11 shape
// O(wmax/wmin · log m).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	lb "repro"
)

func main() {
	const (
		n = 100  // resources
		m = 1000 // tasks
	)
	sc := lb.Scenario{
		Graph:    lb.CompleteGraph(n),
		Weights:  lb.UnitWeights(m),
		Epsilon:  0.2,
		Protocol: lb.UserBased,
		Alpha:    1,
		Seed:     2025,
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced %d tasks over %d resources in %d rounds (%d migrations)\n",
		m, n, res.Rounds, res.Migrations)
	fmt.Printf("rounds / ln(m) = %.2f   (Theorem 11: O(wmax/wmin · log m) with wmax=wmin=1)\n",
		float64(res.Rounds)/math.Log(m))
}
