// Monitor: live observability of a balancing run.
//
// The library's OnRound hook exposes the per-resource load vector after
// every synchronous round; MeasureImbalance turns it into standard
// imbalance measures. This example watches the resource-controlled
// protocol drain a hot spot on an expander and prints the trajectory of
// the max/average gap, the Gini coefficient and the overloaded
// fraction — the kind of dashboard a real deployment would chart.
//
// Run with: go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	lb "repro"
)

func main() {
	const n, d = 256, 4
	m := 6 * n
	g := lb.ExpanderGraph(n, d, 5)
	weights := lb.ParetoWeights(m, 1.5, 25, 13)
	// Threshold the monitor reports against: (1+eps)W/n + wmax.
	W := 0.0
	wmax := 0.0
	for _, w := range weights {
		W += w
		if w > wmax {
			wmax = w
		}
	}
	const eps = 0.5
	thr := (1+eps)*W/float64(n) + wmax

	fmt.Printf("expander n=%d d=%d, %d Pareto tasks (W=%.0f), threshold %.1f\n\n", n, d, m, W, thr)
	fmt.Printf("%8s %12s %8s %10s %12s\n", "round", "max-avg gap", "gini", "overload%", "makespan/avg")
	sc := lb.Scenario{
		Graph:    g,
		Weights:  weights,
		Epsilon:  eps,
		Protocol: lb.ResourceBased,
		LazyWalk: false,
		Seed:     99,
		OnRound: func(round int, loads []float64) {
			if round%5 != 0 && round != 1 {
				return
			}
			im := lb.MeasureImbalance(loads, thr)
			fmt.Printf("%8d %12.1f %8.3f %9.1f%% %12.2f\n",
				round, im.Gap, im.Gini, 100*im.OverFrac, im.Max/im.Average)
		},
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Balanced {
		log.Fatalf("did not balance in %d rounds", res.Rounds)
	}
	fmt.Printf("\nbalanced in %d rounds, %d migrations (total moved weight %.0f)\n",
		res.Rounds, res.Migrations, res.MovedWeight)
}
