// Adaptive thresholds: end-to-end decentralised balancing with no
// oracle knowledge of the average load.
//
// The paper's protocols assume every resource knows the threshold
// T = (1+ε)·W/n + wmax, which requires the global average W/n.
// Footnote 1 sketches the fix: resources run continuous diffusion on
// their load estimates for ~mixing-time steps, after which every
// estimate concentrates around W/n. This example runs that full
// pipeline on a torus — diffusion first, then the resource-controlled
// protocol against the estimated thresholds — and compares it with the
// oracle-threshold run.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	lb "repro"
)

func main() {
	const side = 12
	n := side * side
	m := 4 * n
	g := lb.TorusGraph(side, side)
	base := lb.Scenario{
		Graph:    g,
		Weights:  lb.ExponentialWeights(m, 3, 21),
		Epsilon:  0.5,
		Protocol: lb.ResourceBased,
		LazyWalk: true,
		Seed:     77,
	}

	oracle := base
	resOracle, err := oracle.Run()
	if err != nil {
		log.Fatal(err)
	}

	adaptive := base
	adaptive.EstimatedThresholds = true
	resAdaptive, err := adaptive.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("torus %dx%d, %d tasks (exponential weights, mean 3), eps=0.5\n\n", side, side, m)
	fmt.Printf("%-22s %8s %12s\n", "thresholds", "rounds", "migrations")
	fmt.Printf("%-22s %8d %12d\n", "oracle (1+e)W/n+wmax", resOracle.Rounds, resOracle.Migrations)
	fmt.Printf("%-22s %8d %12d\n", "diffusion-estimated", resAdaptive.Rounds, resAdaptive.Migrations)
	if !resOracle.Balanced || !resAdaptive.Balanced {
		log.Fatal("a run failed to balance")
	}
	fmt.Println("\nnote: the diffusion-estimated run needs no global knowledge at all —")
	fmt.Println("estimation error is absorbed by the epsilon slack (paper, footnote 1).")
}
