package thresholdlb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCheckpointResumePublicAPI drives the exported checkpoint surface
// end to end — scenario-built engines, topology-aware locality
// re-homing (the "rehome" snapshot section), domain SLO alerts, a zone
// partition with lossy delivery — and pins the headline invariant: a
// run crashed mid-flight and resumed from its last checkpoint finishes
// with exactly the uninterrupted run's Result, and every checkpoint it
// writes is byte-identical to the baseline's.
func TestCheckpointResumePublicAPI(t *testing.T) {
	const n = 120
	topo, err := SynthTopology(n, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func() DynamicScenario {
		return DynamicScenario{
			Graph:    CompleteGraph(n),
			Protocol: UserBased,
			Epsilon:  0.5,
			Rounds:   160,
			Window:   40,
			Arrivals: PoissonArrivals(0.85*n/1.95, ParetoDist(2, 20)),
			Service:  WeightProportionalService(1),
			Seed:     11,
			Workers:  4,
			Churn:    ChurnSpec{LeaveProb: 0.2, JoinProb: 0.2, MinUp: n / 2},
			Rehome:   LocalityRehome(topo),
			Domains:  ObsDomains(topo),
			Faults: &FaultPlan{
				Loss: 0.1, RetryBase: 1, RetryCap: 4, Timeout: 12,
				Partitions: []FaultPartition{PartitionZone(topo, 1, 40, 100)},
			},
			AlertBudget:     0.25,
			AlertWindows:    2,
			CheckpointEvery: 50,
			Obs:             NewObsBroker(),
		}
	}

	run := func(crashAt int, resume []byte) (DynamicResult, map[int][]byte, error) {
		sc := build()
		snaps := map[int][]byte{}
		sc.CrashAfterRound = crashAt
		sc.OnCheckpoint = func(round int, data []byte) error {
			snaps[round] = append([]byte(nil), data...)
			return nil
		}
		var res DynamicResult
		var err error
		if resume != nil {
			var eng *DynamicEngine
			if eng, err = sc.Resume(bytes.NewReader(resume)); err == nil {
				res, err = eng.Run()
				eng.Close()
			}
		} else {
			res, err = sc.Run()
		}
		sc.Obs.Close()
		return res, snaps, err
	}

	ref, baseSnaps, err := run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseSnaps) != 3 {
		t.Fatalf("baseline wrote %d checkpoints, want 3", len(baseSnaps))
	}

	_, crashSnaps, err := run(120, nil)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash run error = %v, want ErrCrashed", err)
	}
	for r, b := range crashSnaps {
		if !bytes.Equal(b, baseSnaps[r]) {
			t.Fatalf("crashed run's round-%d checkpoint differs from the baseline's", r)
		}
	}

	res, resSnaps, err := run(0, crashSnaps[100])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("resumed Result differs from baseline:\n%+v\nvs\n%+v", res, ref)
	}
	if !bytes.Equal(resSnaps[150], baseSnaps[150]) {
		t.Fatal("post-resume checkpoint differs from the baseline's")
	}
}

// TestManualEngineSnapshotFile drives the hand-stepped path: Engine()
// before any round, Checkpoint into an atomically-written file,
// Resume from that file, and a Result equal to the plain Run's.
func TestManualEngineSnapshotFile(t *testing.T) {
	build := func() DynamicScenario {
		return DynamicScenario{
			Graph:    CompleteGraph(50),
			Protocol: UserBased,
			Epsilon:  0.5,
			Rounds:   60,
			Window:   30,
			Arrivals: PoissonArrivals(0.8*50/1.95, ParetoDist(2, 20)),
			Service:  WeightProportionalService(1),
			Seed:     7,
			Workers:  2,
		}
	}
	ref, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := build().Engine()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	path := filepath.Join(t.TempDir(), "ckpt.snap")
	if err := WriteSnapshotFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := build().Resume(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Run()
	eng2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("resumed-from-round-0 Result differs from plain Run:\n%+v\nvs\n%+v", res, ref)
	}
}
