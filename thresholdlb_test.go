package thresholdlb

import (
	"strings"
	"testing"
)

func TestQuickstartScenario(t *testing.T) {
	sc := Scenario{
		Graph:    CompleteGraph(50),
		Weights:  UnitWeights(500),
		Epsilon:  0.2,
		Protocol: UserBased,
		Alpha:    1,
		Seed:     1,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced || res.Rounds == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestResourceBasedOnTorus(t *testing.T) {
	sc := Scenario{
		Graph:    TorusGraph(6, 6),
		Weights:  TwoPointWeights(200, 4, 25),
		Epsilon:  0.5,
		Protocol: ResourceBased,
		LazyWalk: true,
		Seed:     2,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced {
		t.Fatalf("torus run did not balance: %+v", res)
	}
}

func TestTightThresholdDefaults(t *testing.T) {
	// Epsilon 0 selects the tight thresholds for both families.
	for _, proto := range []ProtocolKind{ResourceBased, UserBased} {
		sc := Scenario{
			Graph:    CompleteGraph(20),
			Weights:  UnitWeights(100),
			Epsilon:  0,
			Protocol: proto,
			Seed:     3,
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !res.Balanced {
			t.Fatalf("%v tight run did not balance", proto)
		}
	}
}

func TestUserBasedRejectsNonCompleteGraph(t *testing.T) {
	sc := Scenario{
		Graph:    TorusGraph(4, 4),
		Weights:  UnitWeights(64),
		Epsilon:  0.2,
		Protocol: UserBased,
	}
	if _, err := sc.Run(); err == nil || !strings.Contains(err.Error(), "complete graph") {
		t.Fatalf("expected complete-graph error, got %v", err)
	}
}

func TestUserBasedGraphAndMixed(t *testing.T) {
	for _, proto := range []ProtocolKind{UserBasedGraph, MixedBased} {
		sc := Scenario{
			Graph:    TorusGraph(5, 5),
			Weights:  UnitWeights(150),
			Epsilon:  0.5,
			Protocol: proto,
			LazyWalk: true,
			Seed:     4,
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !res.Balanced {
			t.Fatalf("%v did not balance", proto)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	good := Scenario{Graph: CompleteGraph(4), Weights: UnitWeights(8)}
	cases := []struct {
		mutate func(*Scenario)
		want   string
	}{
		{func(s *Scenario) { s.Graph = nil }, "Graph is required"},
		{func(s *Scenario) { s.Weights = nil }, "Weights is required"},
		{func(s *Scenario) { s.Weights = []float64{} }, "Weights is required"},
		{func(s *Scenario) { s.Weights = []float64{1, 0.5} }, "below 1"},
		{func(s *Scenario) { s.Placement = []int{0} }, "placement has"},
		{func(s *Scenario) { s.Placement = make([]int, 8); s.Placement[0] = 99 }, "invalid resource"},
		{func(s *Scenario) { s.Placement = make([]int, 8); s.Placement[7] = -1 }, "invalid resource"},
		{func(s *Scenario) { s.Alpha = -1 }, "Alpha"},
		{func(s *Scenario) { s.Epsilon = -0.1 }, "Epsilon"},
		{func(s *Scenario) { s.Protocol = UserBased; s.Graph = TorusGraph(2, 4) }, "complete graph"},
		{func(s *Scenario) { s.Protocol = ProtocolKind(99) }, "unknown protocol"},
		{func(s *Scenario) {
			s.Graph = CustomGraph("islands", 4, [][2]int{{0, 1}, {2, 3}})
		}, "connected"},
	}
	for _, c := range cases {
		sc := good
		c.mutate(&sc)
		if _, err := sc.Run(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("want error containing %q, got %v", c.want, err)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	sc := Scenario{
		Graph:    ExpanderGraph(64, 4, 7),
		Weights:  ParetoWeights(300, 1.5, 20, 9),
		Epsilon:  0.3,
		Protocol: ResourceBased,
		LazyWalk: true,
		Seed:     11,
	}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sc.Run()
	if a.Rounds != b.Rounds || a.Migrations != b.Migrations {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestGraphConstructors(t *testing.T) {
	cases := []struct {
		g       *Graph
		n, dmin int
	}{
		{CompleteGraph(6), 6, 5},
		{GridGraph(3, 4), 12, 2},
		{TorusGraph(3, 3), 9, 4},
		{HypercubeGraph(3), 8, 3},
		{ExpanderGraph(10, 3, 1), 10, 3},
		{CliquePendantGraph(8, 2), 8, 2},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Fatalf("%s: n=%d want %d", c.g.Name(), c.g.N(), c.n)
		}
		if c.g.MinDegree() != c.dmin {
			t.Fatalf("%s: min degree %d want %d", c.g.Name(), c.g.MinDegree(), c.dmin)
		}
	}
	er := ErdosRenyiGraph(40, 0.3, 5)
	if !er.Connected() {
		t.Fatal("ErdosRenyiGraph must return a connected sample")
	}
}

func TestWeightHelpers(t *testing.T) {
	if w := UnitWeights(5); len(w) != 5 || w[3] != 1 {
		t.Fatalf("unit weights %v", w)
	}
	tp := TwoPointWeights(10, 3, 7)
	heavy := 0
	for _, w := range tp {
		if w == 7 {
			heavy++
		}
	}
	if heavy != 3 {
		t.Fatalf("twopoint weights %v", tp)
	}
	for _, w := range ParetoWeights(100, 2, 50, 1) {
		if w < 1 || w > 50 {
			t.Fatalf("pareto weight %v", w)
		}
	}
	for _, w := range ExponentialWeights(100, 3, 1) {
		if w < 1 {
			t.Fatalf("exponential weight %v", w)
		}
	}
}

func TestAnalysisHelpers(t *testing.T) {
	g := CompleteGraph(20)
	if mt := MixingTime(g); mt < 1 || mt > 3 {
		t.Fatalf("K20 lazy mixing time %d", mt)
	}
	if h := MaxHittingTime(g); h < 18 || h > 20 {
		t.Fatalf("H(K20)=%v want 19", h)
	}
	if gap := SpectralGap(g, 1); gap < 0.4 || gap > 1 {
		t.Fatalf("lazy K20 gap %v", gap)
	}
}

func TestPotentialTraceExposed(t *testing.T) {
	sc := Scenario{
		Graph:           CompleteGraph(20),
		Weights:         UnitWeights(200),
		Epsilon:         0.2,
		Protocol:        UserBased,
		Seed:            5,
		RecordPotential: true,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PotentialTrace) != res.Rounds+1 {
		t.Fatalf("trace length %d rounds %d", len(res.PotentialTrace), res.Rounds)
	}
}

func TestProtocolKindString(t *testing.T) {
	names := map[ProtocolKind]string{
		ResourceBased:    "resource-based",
		UserBased:        "user-based",
		UserBasedGraph:   "user-based-graph",
		MixedBased:       "mixed",
		ProtocolKind(42): "ProtocolKind(42)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String()=%q", int(k), k.String())
		}
	}
}

func TestEstimatedThresholds(t *testing.T) {
	sc := Scenario{
		Graph:               TorusGraph(8, 8),
		Weights:             UnitWeights(256),
		Epsilon:             0.5,
		Protocol:            ResourceBased,
		LazyWalk:            true,
		Seed:                6,
		EstimatedThresholds: true,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced {
		t.Fatalf("estimated-threshold run did not balance: %+v", res)
	}
	// Tight threshold + estimation is rejected.
	sc.Epsilon = 0
	if _, err := sc.Run(); err == nil || !strings.Contains(err.Error(), "Epsilon > 0") {
		t.Fatalf("expected epsilon error, got %v", err)
	}
}

func TestDynamicScenarioSteadyState(t *testing.T) {
	// The public face of the acceptance scenario at reduced size:
	// Poisson arrivals at rho = 0.8 with heavy-tailed weights, routed
	// uniformly, served proportionally to weight, thresholds self-tuned
	// from decaying load averages spread by diffusion.
	sc := DynamicScenario{
		Graph:    CompleteGraph(200),
		Protocol: UserBased,
		Epsilon:  0.5,
		Seed:     11,
		Rounds:   400,
		Window:   100,
		Arrivals: PoissonArrivals(0.8*200/1.95, ParetoDist(2, 20)),
		Service:  WeightProportionalService(1),
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Departed == 0 || len(res.Windows) != 4 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if frac := res.TailOverloadFrac(2); frac >= 0.05 {
		t.Fatalf("steady-state overload fraction %v, want < 0.05", frac)
	}
	again, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if again.Migrations != res.Migrations || again.FinalWeight != res.FinalWeight {
		t.Fatalf("nondeterministic dynamic run: %+v vs %+v", res, again)
	}
}

func TestDynamicScenarioChurnAndStreaming(t *testing.T) {
	windows := 0
	sc := DynamicScenario{
		Graph:            TorusGraph(8, 8),
		Protocol:         MixedBased,
		LazyWalk:         true,
		Seed:             4,
		Rounds:           300,
		Window:           60,
		Arrivals:         BurstArrivals(20, 40, ExponentialDist(2)),
		Service:          GeometricService(0.1),
		Dispatch:         HotspotDispatch(0),
		Churn:            ChurnSpec{LeaveProb: 0.1, JoinProb: 0.1, MinUp: 32},
		CheckInvariants:  true,
		OracleThresholds: true,
		OnWindow:         func(w WindowStats) { windows++ },
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if windows != len(res.Windows) || windows != 5 {
		t.Fatalf("streaming windows %d, result windows %d", windows, len(res.Windows))
	}
	if res.Downs == 0 || res.Rehomed == 0 {
		t.Fatalf("churn never fired: %+v", res)
	}
}

func TestDynamicScenarioValidation(t *testing.T) {
	good := func() DynamicScenario {
		return DynamicScenario{
			Graph:    CompleteGraph(8),
			Rounds:   10,
			Arrivals: PoissonArrivals(1, UnitDist()),
			Service:  GeometricService(0.5),
		}
	}
	cases := []struct {
		mutate func(*DynamicScenario)
		want   string
	}{
		{func(s *DynamicScenario) { s.Graph = nil }, "Graph is required"},
		{func(s *DynamicScenario) { s.Arrivals = nil }, "Arrivals is required"},
		{func(s *DynamicScenario) { s.Service = nil }, "Service is required"},
		{func(s *DynamicScenario) { s.Rounds = 0 }, "Rounds"},
		{func(s *DynamicScenario) { s.Epsilon = -1 }, "Epsilon"},
		{func(s *DynamicScenario) { s.Alpha = -2 }, "Alpha"},
		{func(s *DynamicScenario) { s.Protocol = UserBased; s.Graph = TorusGraph(2, 4) }, "complete graph"},
		{func(s *DynamicScenario) { s.Protocol = ProtocolKind(99) }, "unknown protocol"},
		{func(s *DynamicScenario) { s.InitialWeights = []float64{0.2} }, "below 1"},
		{func(s *DynamicScenario) {
			s.Graph = CustomGraph("islands", 4, [][2]int{{0, 1}, {2, 3}})
		}, "connected"},
	}
	for _, c := range cases {
		sc := good()
		c.mutate(&sc)
		if _, err := sc.Run(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("want error containing %q, got %v", c.want, err)
		}
	}
}
