package sim

import (
	"sync/atomic"
	"testing"
)

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(trial int, seed uint64) uint64 { return seed ^ uint64(trial) }
	a := Run(100, 1, f, 42)
	b := Run(100, 8, f, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunOrderPreserved(t *testing.T) {
	out := Run(50, 4, func(trial int, seed uint64) int { return trial * trial }, 1)
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d]=%d", i, v)
		}
	}
}

func TestRunExecutesEveryTrialOnce(t *testing.T) {
	var count int64
	Run(1000, 7, func(trial int, seed uint64) struct{} {
		atomic.AddInt64(&count, 1)
		return struct{}{}
	}, 2)
	if count != 1000 {
		t.Fatalf("ran %d trials", count)
	}
}

func TestTrialSeedsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		s := TrialSeed(9, i)
		if seen[s] {
			t.Fatalf("duplicate seed for trial %d", i)
		}
		seen[s] = true
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
}

func TestRunZeroTrials(t *testing.T) {
	out := Run(0, 4, func(trial int, seed uint64) int { return 1 }, 3)
	if len(out) != 0 {
		t.Fatalf("got %v", out)
	}
}

func TestRunNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(-1, 1, func(trial int, seed uint64) int { return 0 }, 0)
}

func TestMeanAggregation(t *testing.T) {
	o := Mean(200, 4, func(trial int, seed uint64) float64 { return float64(trial) }, 5)
	if o.N() != 200 {
		t.Fatalf("N=%d", o.N())
	}
	if o.Mean() != 99.5 {
		t.Fatalf("mean=%v", o.Mean())
	}
	if o.Min() != 0 || o.Max() != 199 {
		t.Fatalf("min/max=%v/%v", o.Min(), o.Max())
	}
}

func TestDefaultWorkers(t *testing.T) {
	// workers ≤ 0 must still run everything.
	out := Run(10, 0, func(trial int, seed uint64) int { return trial }, 6)
	if len(out) != 10 || out[9] != 9 {
		t.Fatalf("out=%v", out)
	}
}
