// Package sim runs independent simulation trials in parallel.
//
// The paper's Section 7 data points average 1000 trials each; this
// package fans trials out over a goroutine worker pool while keeping
// results fully deterministic: each trial's seed is a pure function of
// the base seed and the trial index, and results land in an indexed
// slice, so neither scheduling nor worker count affects the output.
package sim

import (
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TrialSeed derives the deterministic seed for one trial.
func TrialSeed(baseSeed uint64, trial int) uint64 {
	return rng.Stream(baseSeed, uint64(trial)).Uint64()
}

// Run executes trials calls of f in parallel on workers goroutines
// (workers ≤ 0 means GOMAXPROCS) and returns the per-trial results in
// trial order. f must be safe for concurrent invocation with distinct
// trial indices.
func Run[T any](trials, workers int, f func(trial int, seed uint64) T, baseSeed uint64) []T {
	if trials < 0 {
		panic("sim: negative trial count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	out := make([]T, trials)
	if trials == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			out[i] = f(i, TrialSeed(baseSeed, i))
		}
		return out
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= trials {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				out[i] = f(i, TrialSeed(baseSeed, i))
			}
		}()
	}
	wg.Wait()
	return out
}

// Mean runs trials of a scalar metric and aggregates them.
func Mean(trials, workers int, f func(trial int, seed uint64) float64, baseSeed uint64) stats.Online {
	var o stats.Online
	for _, v := range Run(trials, workers, f, baseSeed) {
		o.Add(v)
	}
	return o
}
