package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N=%d", o.N())
	}
	if !almostEq(o.Mean(), 5, 1e-12) {
		t.Fatalf("mean=%v", o.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if !almostEq(o.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var=%v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.SEM() != 0 || o.CI95() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
}

func TestOnlineSingle(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.Mean() != 3.5 || o.Var() != 0 {
		t.Fatalf("single-sample stats wrong: %v", o.String())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	r := rng.NewSeeded(1)
	f := func(seed uint64) bool {
		var whole, left, right Online
		n := 3 + int(seed%97)
		for i := 0; i < n; i++ {
			x := r.NormFloat64()*3 + 10
			whole.Add(x)
			if i < n/2 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-9) &&
			almostEq(left.Var(), whole.Var(), 1e-9) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(2)
	saved := a
	a.Merge(b) // merging empty is a no-op
	if a != saved {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || !almostEq(b.Mean(), 1.5, 1e-12) {
		t.Fatal("merge into empty failed")
	}
}

func TestMeanVarianceSlices(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean=%v", Mean(xs))
	}
	if !almostEq(Variance(xs), 5.0/3.0, 1e-12) {
		t.Fatalf("var=%v", Variance(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{7}) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0=%v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1=%v", got)
	}
	if got := Median(xs); !almostEq(got, 3.5, 1e-12) {
		t.Fatalf("median=%v", got)
	}
	// Input must be left untouched.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	if got := Quantile([]float64{42}, 0.3); got != 42 {
		t.Fatalf("singleton quantile=%v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.99, 2, 9.999, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts=%v", h.Counts)
	}
	if h.Total() != 7 {
		t.Fatalf("total=%d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty range")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	f := FitLinear(xs, ys)
	if !almostEq(f.Slope, 3, 1e-9) || !almostEq(f.Intercept, -7, 1e-9) || !almostEq(f.R2, 1, 1e-9) {
		t.Fatalf("fit=%+v", f)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rng.NewSeeded(2)
	var xs, ys []float64
	for i := 1; i <= 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x+5+r.NormFloat64())
	}
	f := FitLinear(xs, ys)
	if !almostEq(f.Slope, 2, 0.02) || !almostEq(f.Intercept, 5, 1.5) {
		t.Fatalf("noisy fit=%+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2=%v too low", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// Vertical data: all x equal.
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 5, 9})
	if f.Slope != 0 || !almostEq(f.Intercept, 5, 1e-12) {
		t.Fatalf("degenerate fit=%+v", f)
	}
	// Horizontal data: all y equal — R2 defined as 1 (exact fit).
	g := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if g.Slope != 0 || g.Intercept != 4 || g.R2 != 1 {
		t.Fatalf("horizontal fit=%+v", g)
	}
}

func TestFitLog(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{10, 100, 1000, 10000} {
		xs = append(xs, x)
		ys = append(ys, 4*math.Log(x)+1)
	}
	f := FitLog(xs, ys)
	if !almostEq(f.Slope, 4, 1e-9) || !almostEq(f.Intercept, 1, 1e-9) {
		t.Fatalf("log fit=%+v", f)
	}
}

func TestFitPower(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 5*math.Pow(x, 1.7))
	}
	f := FitPower(xs, ys)
	if !almostEq(f.Exponent, 1.7, 1e-9) || !almostEq(f.C, 5, 1e-6) {
		t.Fatalf("power fit=%+v", f)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect corr=%v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("perfect anticorr=%v", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("constant corr=%v", got)
	}
}

func TestFitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { FitLinear([]float64{1}, []float64{1, 2}) },
		"short":    func() { FitLinear([]float64{1}, []float64{1}) },
		"logneg":   func() { FitLog([]float64{-1, 2}, []float64{1, 2}) },
		"powneg":   func() { FitPower([]float64{1, 2}, []float64{-1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
