// Package stats provides the statistical aggregation used by the
// experiment harness: online moments (Welford), quantiles, histograms,
// confidence intervals, and least-squares fits for checking the
// asymptotic shapes the paper predicts (a·log m + b, a·x + b, a·x^p).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean and variance in one pass using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge combines another accumulator into o (parallel Welford).
func (o *Online) Merge(p Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	o.m2 += p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	o.mean += d * float64(p.n) / float64(n)
	if p.min < o.min {
		o.min = p.min
	}
	if p.max > o.max {
		o.max = p.max
	}
	o.n = n
}

// N returns the number of samples.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 if fewer than 2 samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest sample (0 if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample (0 if empty).
func (o *Online) Max() float64 { return o.max }

// SEM returns the standard error of the mean.
func (o *Online) SEM() float64 {
	if o.n == 0 {
		return 0
	}
	return o.StdDev() / math.Sqrt(float64(o.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean. Valid for the large trial counts (≥100) the
// harness uses.
func (o *Online) CI95() float64 { return 1.96 * o.SEM() }

// String summarises the accumulator for logs.
func (o *Online) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.4g min=%.4g max=%.4g",
		o.n, o.Mean(), o.CI95(), o.StdDev(), o.min, o.max)
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input or
// q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for input the caller has already sorted
// ascending — no copy, no allocation. The open-system engine's
// window-snapshot path pools one sorted buffer and reads several
// quantiles from it.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	perWidth float64
}

// NewHistogram returns a histogram with buckets equal-width buckets
// spanning [lo, hi). It panics if buckets <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range empty")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts:   make([]int, buckets),
		perWidth: float64(buckets) / (hi - lo),
	}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) * h.perWidth)
		if i == len(h.Counts) { // guard against float rounding at Hi
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded samples, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// LinearFit holds an ordinary-least-squares fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64 // coefficient of determination
}

// FitLinear computes the OLS line through (xs, ys). It panics if the
// slices differ in length or hold fewer than two points.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	n := len(xs)
	if n < 2 {
		panic("stats: FitLinear needs at least 2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Slope: 0, Intercept: my, R2: 0}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // all ys identical and fit is exact
	}
	return fit
}

// FitLog fits y ≈ a·ln(x) + b, the shape of the paper's O(log m)
// balancing-time bounds. All xs must be positive.
func FitLog(xs, ys []float64) LinearFit {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			panic("stats: FitLog requires positive x")
		}
		lx[i] = math.Log(x)
	}
	return FitLinear(lx, ys)
}

// PowerFit holds a fit y ≈ C·x^Exponent obtained by regressing in
// log-log space. Used to verify e.g. H(G) = Θ(n²/k) scaling.
type PowerFit struct {
	C, Exponent float64
	R2          float64
}

// FitPower fits y ≈ C·x^p. All xs and ys must be positive.
func FitPower(xs, ys []float64) PowerFit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: FitPower requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f := FitLinear(lx, ly)
	return PowerFit{C: math.Exp(f.Intercept), Exponent: f.Slope, R2: f.R2}
}

// Pearson returns the Pearson correlation coefficient of xs and ys.
// It panics on length mismatch; returns 0 when either side is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, syy, sxy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
