package baseline

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
)

func unitSet(m int) *task.Set {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return task.NewSet(w)
}

func TestIdealDiffusionConservesAndConverges(t *testing.T) {
	g := graph.Grid2D(6, 6, true)
	initial := make([]float64, g.N())
	initial[0] = 360
	b := DiffusionBalancer{}
	loads, rounds := b.IdealBalance(g, initial, 0.01, 100000)
	if rounds == 100000 {
		t.Fatal("ideal diffusion did not converge")
	}
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	if math.Abs(sum-360) > 1e-6 {
		t.Fatalf("mass not conserved: %v", sum)
	}
	avg := 360.0 / float64(g.N())
	for i, l := range loads {
		if math.Abs(l-avg) > 0.02 {
			t.Fatalf("load[%d]=%v far from %v", i, l, avg)
		}
	}
}

func TestIdealRoundMaxDelta(t *testing.T) {
	g := graph.Path(3)
	// loads [4,0,0], maxdeg d=2, gamma=1: edge(0,1) flow = 4/(d+1) = 4/3.
	b := DiffusionBalancer{}
	next := make([]float64, 3)
	delta := b.IdealRound(g, []float64{4, 0, 0}, next)
	want := 4.0 / 3.0
	if math.Abs(delta-want) > 1e-12 {
		t.Fatalf("delta=%v want %v", delta, want)
	}
	if math.Abs(next[0]-(4-want)) > 1e-12 || math.Abs(next[1]-want) > 1e-12 || next[2] != 0 {
		t.Fatalf("next=%v", next)
	}
}

func TestIntegralDiffusionBalancesUnitTasks(t *testing.T) {
	g := graph.Grid2D(5, 5, true)
	m := 100
	ts := unitSet(m)
	placement := make([]int, m) // all on node 0
	s := NewIntegralState(g, ts, placement)
	// Integral diffusion stalls once edge quotas Δ/(d+1) drop below one
	// unit, so its reachable threshold is avg + (d+1) — strictly worse
	// than the paper's tight threshold avg + 2·wmax. That gap is the
	// point of the comparison.
	thr := float64(m)/float64(g.N()) + float64(g.MaxDegree()+1)
	rounds, balanced, stalled := s.BalanceToThreshold(DiffusionBalancer{}, thr, 100000)
	if !balanced {
		t.Fatalf("integral diffusion failed: rounds=%d stalled=%v maxload=%v", rounds, stalled, s.MaxLoad())
	}
	// Conservation.
	sum := 0.0
	for _, l := range s.Loads() {
		sum += l
	}
	if math.Abs(sum-float64(m)) > 1e-9 {
		t.Fatalf("mass %v", sum)
	}
}

func TestIntegralDiffusionStallsOnIndivisibleWeights(t *testing.T) {
	// Two nodes, one giant task plus crumbs: the fluid quota per round
	// is (x_hi - x_lo)/d and can never fit the giant task once the
	// crumbs are level, so the integral scheme stalls above the fluid
	// average — the discretisation weakness threshold protocols avoid.
	g := graph.Path(2)
	ts := task.NewSet([]float64{10, 1, 1})
	s := NewIntegralState(g, ts, []int{0, 0, 0})
	_, balanced, stalled := s.BalanceToThreshold(DiffusionBalancer{}, 7, 10000)
	if balanced {
		t.Fatalf("expected stall, got balanced with maxload %v", s.MaxLoad())
	}
	if !stalled {
		t.Fatal("expected explicit stall signal")
	}
}

func TestIntegralRoundMovesTowardLighter(t *testing.T) {
	g := graph.Path(2)
	ts := unitSet(10)
	s := NewIntegralState(g, ts, make([]int, 10))
	moved := s.Round(DiffusionBalancer{})
	// Quota = (10-0)/1 = 10 but moving all 10 only happens if the
	// greedy fill reaches the quota; unit tasks fill exactly 10.
	if moved == 0 {
		t.Fatal("no tasks moved")
	}
	if s.Loads()[0] < s.Loads()[1]-1 {
		t.Fatalf("overshoot: loads=%v", s.Loads())
	}
}

func TestTwoChoiceBetaZeroBeatsRandom(t *testing.T) {
	r := rng.NewSeeded(1)
	ts := unitSet(20000)
	n := 100
	greedy := Gap(TwoChoice{Beta: 0}.Allocate(ts, n, r))
	random := Gap(TwoChoice{Beta: 1}.Allocate(ts, n, r))
	if greedy >= random {
		t.Fatalf("greedy gap %v should beat random gap %v", greedy, random)
	}
	// Two-choice keeps the gap tiny even with m ≫ n (Berenbrink et al.).
	if greedy > 5 {
		t.Fatalf("greedy[2] gap %v suspiciously large", greedy)
	}
}

func TestTwoChoiceConservesWeight(t *testing.T) {
	r := rng.NewSeeded(2)
	ts := task.NewSet(task.Pareto{Alpha: 1.5, Cap: 50}.Weights(5000, r))
	loads := TwoChoice{Beta: 0.3}.Allocate(ts, 64, r)
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	if math.Abs(sum-ts.W()) > 1e-6 {
		t.Fatalf("weight %v != %v", sum, ts.W())
	}
}

func TestTwoChoicePanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TwoChoice{Beta: 2}.Allocate(unitSet(10), 4, rng.NewSeeded(3))
}

func TestLeastLoadedLPTQuality(t *testing.T) {
	r := rng.NewSeeded(4)
	ts := task.NewSet(task.UniformRange{Lo: 1, Hi: 10}.Weights(500, r))
	loads := LeastLoaded(ts, 16)
	avg := ts.W() / 16
	for _, l := range loads {
		// LPT: max load ≤ avg + wmax.
		if l > avg+ts.WMax()+1e-9 {
			t.Fatalf("load %v exceeds avg+wmax=%v", l, avg+ts.WMax())
		}
	}
}

func TestLeastLoadedExact(t *testing.T) {
	ts := task.NewSet([]float64{4, 3, 3, 2})
	loads := LeastLoaded(ts, 2)
	// LPT: 4 | 3 → [4,3]; 3 → [4,6]; 2 → [6,6].
	if loads[0] != 6 || loads[1] != 6 {
		t.Fatalf("loads=%v want [6 6]", loads)
	}
}

func TestGap(t *testing.T) {
	if g := Gap([]float64{4, 2, 0}); g != 2 {
		t.Fatalf("gap=%v want 2", g)
	}
	if g := Gap([]float64{3, 3, 3}); g != 0 {
		t.Fatalf("gap=%v want 0", g)
	}
}
