// Package baseline implements the comparison algorithms from the
// paper's related-work section, so the experiments can position the
// threshold protocols against established alternatives:
//
//   - Continuous diffusion load balancing (first-order scheme): the
//     classical neighbourhood-averaging protocol the paper's footnote 1
//     borrows for average estimation, here used as an actual balancer.
//     Loads converge to the average but tasks are splittable only in
//     the idealised variant; the integral variant moves whole tasks and
//     stalls at a discretisation floor — exactly why threshold
//     protocols are interesting for indivisible weighted tasks.
//   - Greedy[2] / (1+β)-choice sequential allocation (Talwar–Wieder,
//     Peres et al.): the throw-balls-one-by-one baseline; measures the
//     final max load rather than a balancing time.
//   - Least-loaded oracle assignment: the centralised lower-bound
//     reference (first-fit proper assignment quality).
package baseline

import (
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
)

// DiffusionBalancer runs first-order continuous diffusion on task
// loads over a graph: in each round every resource r sends
// γ·(x_r − x_w)·P(r,w) of load towards each lighter neighbour w. The
// Ideal variant treats load as infinitely divisible fluid (lower
// bound for any local protocol); the integral variant moves whole
// tasks greedily up to the fluid quota and therefore leaves a
// discretisation gap of up to wmax per edge.
type DiffusionBalancer struct {
	// Gamma scales the flow (stability requires Gamma ≤ 1; the
	// canonical first-order scheme uses 1).
	Gamma float64
}

// IdealRound advances fluid loads one diffusion round on g using the
// classical convergent first-order weights 1/(d+1) (weights of 1/d
// oscillate forever on bipartite graphs, where the iteration matrix
// has eigenvalue −1). It writes into next and returns the maximum
// absolute change.
func (b DiffusionBalancer) IdealRound(g *graph.Graph, loads, next []float64) float64 {
	d := float64(g.MaxDegree() + 1)
	gamma := b.Gamma
	if gamma == 0 {
		gamma = 1
	}
	copy(next, loads)
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				continue // handle each edge once
			}
			flow := gamma * (loads[v] - loads[int(w)]) / d
			next[v] -= flow
			next[int(w)] += flow
		}
	}
	maxDelta := 0.0
	for i := range loads {
		if d := abs(next[i] - loads[i]); d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

// IdealBalance runs ideal diffusion until the maximum load is within
// tol of the average or maxRounds is hit, returning final loads and
// rounds used.
func (b DiffusionBalancer) IdealBalance(g *graph.Graph, initial []float64, tol float64, maxRounds int) ([]float64, int) {
	loads := append([]float64(nil), initial...)
	next := make([]float64, len(loads))
	avg := mean(loads)
	r := 0
	for ; r < maxRounds; r++ {
		if maxAbsDev(loads, avg) <= tol {
			break
		}
		b.IdealRound(g, loads, next)
		loads, next = next, loads
	}
	return loads, r
}

// IntegralState carries whole tasks per resource for the integral
// diffusion baseline.
type IntegralState struct {
	g     *graph.Graph
	tasks [][]task.Task
	loads []float64
}

// NewIntegralState places tasks on g according to placement.
func NewIntegralState(g *graph.Graph, ts *task.Set, placement []int) *IntegralState {
	s := &IntegralState{
		g:     g,
		tasks: make([][]task.Task, g.N()),
		loads: make([]float64, g.N()),
	}
	for id, r := range placement {
		tk := ts.Task(id)
		s.tasks[r] = append(s.tasks[r], tk)
		s.loads[r] += tk.Weight
	}
	return s
}

// Loads returns the current load vector (live; do not modify).
func (s *IntegralState) Loads() []float64 { return s.loads }

// MaxLoad returns the maximum resource load.
func (s *IntegralState) MaxLoad() float64 {
	m := 0.0
	for _, l := range s.loads {
		if l > m {
			m = l
		}
	}
	return m
}

// Round performs one integral diffusion round: each edge's fluid quota
// γ·(x_v − x_w)/(d+1) is filled greedily with whole tasks from the
// heavier endpoint (largest-first, never overshooting the quota).
// Returns the number of tasks moved.
func (s *IntegralState) Round(b DiffusionBalancer) int {
	d := float64(s.g.MaxDegree() + 1)
	gamma := b.Gamma
	if gamma == 0 {
		gamma = 1
	}
	moved := 0
	// Quotas are computed against the round-start loads so the scheme
	// stays synchronous like the first-order fluid iteration.
	start := append([]float64(nil), s.loads...)
	for v := 0; v < s.g.N(); v++ {
		for _, w32 := range s.g.Neighbors(v) {
			w := int(w32)
			if w > v {
				continue
			}
			hi, lo := v, w
			if start[lo] > start[hi] {
				hi, lo = lo, hi
			}
			quota := gamma * (start[hi] - start[lo]) / d
			if quota <= 0 {
				continue
			}
			moved += s.pour(hi, lo, quota)
		}
	}
	return moved
}

// pour moves whole tasks from hi to lo, never exceeding quota, taking
// the largest fitting task each time (greedy).
func (s *IntegralState) pour(hi, lo int, quota float64) int {
	moved := 0
	for quota > 0 {
		best := -1
		for i, tk := range s.tasks[hi] {
			if tk.Weight <= quota && (best < 0 || tk.Weight > s.tasks[hi][best].Weight) {
				best = i
			}
		}
		if best < 0 {
			return moved
		}
		tk := s.tasks[hi][best]
		last := len(s.tasks[hi]) - 1
		s.tasks[hi][best] = s.tasks[hi][last]
		s.tasks[hi] = s.tasks[hi][:last]
		s.tasks[lo] = append(s.tasks[lo], tk)
		s.loads[hi] -= tk.Weight
		s.loads[lo] += tk.Weight
		quota -= tk.Weight
		moved++
	}
	return moved
}

// BalanceToThreshold runs integral diffusion rounds until all loads are
// at or below thr, or until maxRounds or until a round moves nothing
// (stall). It returns (rounds, balanced, stalled).
func (s *IntegralState) BalanceToThreshold(b DiffusionBalancer, thr float64, maxRounds int) (int, bool, bool) {
	for r := 0; r < maxRounds; r++ {
		if s.MaxLoad() <= thr {
			return r, true, false
		}
		if s.Round(b) == 0 {
			return r, s.MaxLoad() <= thr, true
		}
	}
	return maxRounds, s.MaxLoad() <= thr, false
}

// TwoChoice sequentially allocates weighted tasks to n bins with the
// (1+β)-choice rule (Peres–Talwar–Wieder): with probability β the task
// goes to one uniformly random bin, otherwise to the lighter of two
// uniform picks. β = 0 recovers Greedy[2]; β = 1 is purely random.
type TwoChoice struct {
	Beta float64
}

// Allocate throws the task set into n bins and returns the final load
// vector.
func (c TwoChoice) Allocate(ts *task.Set, n int, r *rng.Rand) []float64 {
	if c.Beta < 0 || c.Beta > 1 {
		panic("baseline: TwoChoice Beta must be in [0,1]")
	}
	loads := make([]float64, n)
	for _, tk := range ts.Tasks() {
		var dest int
		if c.Beta > 0 && r.Bool(c.Beta) {
			dest = r.Intn(n)
		} else {
			a, b := r.Intn(n), r.Intn(n)
			if loads[a] <= loads[b] {
				dest = a
			} else {
				dest = b
			}
		}
		loads[dest] += tk.Weight
	}
	return loads
}

// Gap returns max load − average load: the quantity Talwar–Wieder and
// Peres et al. bound for the sequential processes.
func Gap(loads []float64) float64 {
	avg := mean(loads)
	m := 0.0
	for _, l := range loads {
		if l-avg > m {
			m = l - avg
		}
	}
	return m
}

// LeastLoaded is the centralised oracle: every task (largest first)
// goes to the currently least-loaded bin. Its max load is within wmax
// of the optimum (LPT rule) and serves as the quality reference.
func LeastLoaded(ts *task.Set, n int) []float64 {
	loads := make([]float64, n)
	order := make([]int, ts.M())
	for i := range order {
		order[i] = i
	}
	// Largest-first for the classical LPT guarantee.
	sortDesc(order, ts)
	for _, id := range order {
		best := 0
		for i := 1; i < n; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		loads[best] += ts.Weight(id)
	}
	return loads
}

func sortDesc(order []int, ts *task.Set) {
	// Insertion sort is fine for the experiment sizes; avoid pulling in
	// sort.Slice allocations in hot loops elsewhere.
	for i := 1; i < len(order); i++ {
		v := order[i]
		w := ts.Weight(v)
		j := i - 1
		for j >= 0 && ts.Weight(order[j]) < w {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxAbsDev(xs []float64, c float64) float64 {
	m := 0.0
	for _, x := range xs {
		if d := abs(x - c); d > m {
			m = d
		}
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
