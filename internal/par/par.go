// Package par provides the persistent worker pool behind the sharded
// simulation phases. A Pool owns a fixed set of goroutines that stay
// alive across rounds, so a phase barrier costs two channel hops per
// worker instead of a goroutine spawn, and — crucially for the
// steady-state allocation budget — dispatching a phase allocates
// nothing: jobs are plain values on a buffered channel and the
// completion barrier reuses one WaitGroup.
//
// Determinism contract: Run gives every shard index to exactly one
// worker and blocks until all shards finish. Callers keep results
// deterministic by having each shard write only shard-owned state (or
// commutative atomics) and by merging cross-shard results in a
// canonical order afterwards.
package par

import "sync"

// job is one shard of a phase.
type job struct {
	fn  func(int)
	idx int
	wg  *sync.WaitGroup
}

// Pool is a fixed-size persistent worker pool. The zero value is not
// usable; construct with NewPool. A Pool with one worker runs
// everything inline on the caller's goroutine (no channels, no
// goroutines), which is also the fallback after Close.
type Pool struct {
	workers int
	jobs    chan job
	wg      sync.WaitGroup // reused across Run calls; Run is not reentrant
}

// NewPool returns a pool that executes phases on `workers` logical
// workers. workers < 1 is treated as 1. For workers > 1 the pool spawns
// workers−1 background goroutines; the caller's goroutine acts as the
// final worker during Run, so an idle pool holds no runnable work.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.jobs = make(chan job, workers)
		for i := 0; i < workers-1; i++ {
			go worker(p.jobs)
		}
	}
	return p
}

// worker takes the channel as a parameter so a later Close (which
// nils the field) never races with the drain loop.
func worker(jobs <-chan job) {
	for j := range jobs {
		j.fn(j.idx)
		j.wg.Done()
	}
}

// Workers returns the pool's worker count (≥ 1).
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(0), fn(1), …, fn(n−1) across the pool and returns
// once every call has completed — one phase barrier. The caller's
// goroutine runs shard 0 (and everything, inline in index order, for a
// single-worker pool). Run must not be called concurrently with itself
// or after Close.
func (p *Pool) Run(n int, fn func(int)) {
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.wg.Add(n - 1)
	for i := 1; i < n; i++ {
		p.jobs <- job{fn: fn, idx: i, wg: &p.wg}
	}
	fn(0)
	p.wg.Wait()
}

// Close shuts the background workers down. The pool must be idle.
// After Close, Run degrades to inline execution.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
		p.workers = 1
	}
}

// Shard returns the half-open range [lo, hi) of the i-th of p.Workers()
// contiguous shards over n items: the canonical resource partition used
// by every sharded phase, so shard boundaries agree across packages.
func (p *Pool) Shard(n, i int) (lo, hi int) {
	w := p.workers
	return i * n / w, (i + 1) * n / w
}

// Balance computes a cost-weighted contiguous partition of
// len(costs) items into w shards: boundaries are placed so every
// shard's summed cost approaches total/w, while each shard keeps at
// least one item. This is the measured-cost shard sizing used by the
// dynamic engine — costs come from observed per-shard round nanos, so
// skewed workloads (hotspots, clumped churn) stop bottlenecking on one
// worker. The result is appended to bounds[:0] and returned
// (len w+1, bounds[0] = 0, bounds[w] = len(costs)), so steady-state
// rebalancing allocates nothing once the buffer is warm.
//
// Balance is a pure function of its inputs; callers that need
// partition-independent results (the engine's determinism contract)
// get them because every sharded phase produces identical output for
// ANY contiguous partition — the boundary placement only moves work
// between workers.
func Balance(costs []float64, w int, bounds []int) []int {
	n := len(costs)
	if w < 1 || n < w {
		panic("par: Balance needs 1 <= w <= len(costs)")
	}
	total := 0.0
	for _, c := range costs {
		total += c
	}
	bounds = append(bounds[:0], 0)
	if total <= 0 {
		// No signal: fall back to the equal-count partition.
		for j := 1; j <= w; j++ {
			bounds = append(bounds, j*n/w)
		}
		return bounds
	}
	target := total / float64(w)
	cum := 0.0
	j := 1
	for i := 0; i < n && j < w; i++ {
		cum += costs[i]
		// Cut after item i once shard j's cumulative goal is met, or as
		// late as still leaves one item for every remaining shard.
		if cum >= float64(j)*target || n-(i+1) == w-j {
			bounds = append(bounds, i+1)
			j++
		}
	}
	return append(bounds, n)
}
