package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		hits := make([]int32, 37)
		for round := 0; round < 50; round++ {
			p.Run(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		}
		for i, h := range hits {
			if h != 50 {
				t.Fatalf("workers=%d: shard %d ran %d times, want 50", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestPoolShardPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		n := 101
		covered := 0
		prevHi := 0
		for i := 0; i < p.Workers(); i++ {
			lo, hi := p.Shard(n, i)
			if lo != prevHi {
				t.Fatalf("workers=%d: shard %d starts at %d, want %d", workers, i, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n || prevHi != n {
			t.Fatalf("workers=%d: shards cover %d of %d items", workers, covered, n)
		}
		p.Close()
	}
}

func TestPoolCloseDegradesInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	ran := 0
	p.Run(3, func(int) { ran++ })
	if ran != 3 || p.Workers() != 1 {
		t.Fatalf("closed pool: ran=%d workers=%d", ran, p.Workers())
	}
}

func TestPoolZeroAndNegativeWorkers(t *testing.T) {
	p := NewPool(0)
	if p.Workers() != 1 {
		t.Fatalf("workers=%d, want 1", p.Workers())
	}
	sum := 0
	p.Run(4, func(i int) { sum += i })
	if sum != 6 {
		t.Fatalf("inline run sum %d", sum)
	}
}

// BenchmarkPoolBarrier measures the per-phase dispatch cost and pins
// the zero-allocation property of Run.
func BenchmarkPoolBarrier(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	fn := func(int) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(4, fn)
	}
}

// checkBounds validates the Balance partition contract: w+1 strictly
// increasing boundaries covering [0, n).
func checkBounds(t *testing.T, bounds []int, n, w int) {
	t.Helper()
	if len(bounds) != w+1 {
		t.Fatalf("got %d boundaries for %d shards: %v", len(bounds), w, bounds)
	}
	if bounds[0] != 0 || bounds[w] != n {
		t.Fatalf("bounds do not cover [0,%d): %v", n, bounds)
	}
	for j := 0; j < w; j++ {
		if bounds[j+1] <= bounds[j] {
			t.Fatalf("empty shard %d in %v", j, bounds)
		}
	}
}

func TestBalanceEqualCosts(t *testing.T) {
	costs := make([]float64, 12)
	for i := range costs {
		costs[i] = 1
	}
	bounds := Balance(costs, 4, nil)
	checkBounds(t, bounds, 12, 4)
	for j := 0; j < 4; j++ {
		if got := bounds[j+1] - bounds[j]; got != 3 {
			t.Fatalf("equal costs should split evenly, got %v", bounds)
		}
	}
}

func TestBalanceSkewedCosts(t *testing.T) {
	// One item carries half the total cost: its shard should hold far
	// fewer items than the others.
	costs := make([]float64, 100)
	for i := range costs {
		costs[i] = 1
	}
	costs[0] = 99
	bounds := Balance(costs, 4, nil)
	checkBounds(t, bounds, 100, 4)
	if first := bounds[1] - bounds[0]; first > 2 {
		t.Fatalf("hot item not isolated: first shard holds %d items (%v)", first, bounds)
	}
}

func TestBalanceZeroTotalFallsBackToEqualSplit(t *testing.T) {
	costs := make([]float64, 10)
	bounds := Balance(costs, 3, nil)
	checkBounds(t, bounds, 10, 3)
	want := []int{0, 3, 6, 10}
	for i, b := range want {
		if bounds[i] != b {
			t.Fatalf("zero-cost fallback %v, want %v", bounds, want)
		}
	}
}

func TestBalanceEveryShardNonEmptyUnderExtremes(t *testing.T) {
	// All the cost on the last item: earlier shards must still get one
	// item each (the forced-cut path).
	costs := make([]float64, 6)
	costs[5] = 1
	bounds := Balance(costs, 6, nil)
	checkBounds(t, bounds, 6, 6)
	// Buffer reuse must not change the result.
	again := Balance(costs, 6, bounds)
	checkBounds(t, again, 6, 6)
}
