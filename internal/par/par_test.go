package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		hits := make([]int32, 37)
		for round := 0; round < 50; round++ {
			p.Run(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		}
		for i, h := range hits {
			if h != 50 {
				t.Fatalf("workers=%d: shard %d ran %d times, want 50", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestPoolShardPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		n := 101
		covered := 0
		prevHi := 0
		for i := 0; i < p.Workers(); i++ {
			lo, hi := p.Shard(n, i)
			if lo != prevHi {
				t.Fatalf("workers=%d: shard %d starts at %d, want %d", workers, i, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n || prevHi != n {
			t.Fatalf("workers=%d: shards cover %d of %d items", workers, covered, n)
		}
		p.Close()
	}
}

func TestPoolCloseDegradesInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	ran := 0
	p.Run(3, func(int) { ran++ })
	if ran != 3 || p.Workers() != 1 {
		t.Fatalf("closed pool: ran=%d workers=%d", ran, p.Workers())
	}
}

func TestPoolZeroAndNegativeWorkers(t *testing.T) {
	p := NewPool(0)
	if p.Workers() != 1 {
		t.Fatalf("workers=%d, want 1", p.Workers())
	}
	sum := 0
	p.Run(4, func(i int) { sum += i })
	if sum != 6 {
		t.Fatalf("inline run sum %d", sum)
	}
}

// BenchmarkPoolBarrier measures the per-phase dispatch cost and pins
// the zero-allocation property of Run.
func BenchmarkPoolBarrier(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	fn := func(int) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(4, fn)
	}
}
