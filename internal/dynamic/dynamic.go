// Package dynamic is the open-system simulation engine layered on
// internal/core: instead of placing m tasks once and balancing until
// quiescence (the paper's closed setting), a round-based event loop
// feeds the threshold protocols a living system —
//
//  1. resource churn: machines leave (their tasks are re-homed) and
//     rejoin,
//  2. arrivals: weighted tasks enter via a pluggable arrival process
//     (Poisson, periodic bursts, a replayed trace) and are routed by a
//     dispatch policy (uniform, hotspot ingress, power-of-d),
//  3. service: tasks receive service and depart (service time
//     proportional to weight, or geometric lifetimes),
//  4. self-tuning: thresholds are re-estimated online from decaying
//     load averages spread by diffusion (no global knowledge), and
//  5. migration: one round of the paper's protocols
//     (resource-controlled, user-controlled, mixed) runs against the
//     current thresholds.
//
// This is the regime of Goldsztajn et al., "Self-Learning
// Threshold-Based Load Balancing", and of Hoefer–Sauerwald's dynamic
// threshold games, grafted onto the weighted-task protocols of the
// source paper. Runs are fully deterministic per seed: every actor
// draws from its own split RNG stream.
package dynamic

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Churn configures resource join/leave dynamics. Each round at most
// one resource leaves stochastically (probability LeaveProb, never
// below MinUp up resources) and at most one rejoins (probability
// JoinProb); Events additionally scripts mass join/leave bursts — a
// whole rack failing in one round. A leaving resource's tasks are
// immediately re-homed to uniformly random up resources (each lost
// resource draws destinations from its own deterministic re-home
// stream, so evacuation shards like every other phase); total
// in-flight weight is conserved across all events.
type Churn struct {
	LeaveProb float64      // per-round probability one up resource leaves
	JoinProb  float64      // per-round probability one down resource rejoins
	MinUp     int          // floor on up resources; 0 means 1
	Events    []ChurnEvent // scripted mass join/leave bursts
}

// ChurnEvent is one scripted churn burst: at round Round (and, when
// Every > 0, every Every rounds after it) Down uniformly random up
// resources fail simultaneously and Up uniformly random down resources
// rejoin. Failures respect Churn.MinUp; rejoins are capped by the down
// population. Mass failures (Down in the thousands) exercise the
// engine's parallel evacuation path.
type ChurnEvent struct {
	Round int // first round at which the event fires (0-based)
	Every int // repeat period in rounds; 0 fires exactly once
	Down  int // up resources failing together
	Up    int // down resources rejoining together
}

// fires reports whether the event is due at round t.
func (ev ChurnEvent) fires(t int) bool {
	if ev.Every <= 0 {
		return t == ev.Round
	}
	return t >= ev.Round && (t-ev.Round)%ev.Every == 0
}

func (c Churn) enabled() bool {
	return c.LeaveProb > 0 || c.JoinProb > 0 || len(c.Events) > 0
}

// Config describes one open-system run.
type Config struct {
	// Graph is the resource topology (required).
	Graph *graph.Graph
	// Speeds is the per-resource speed profile of a heterogeneous
	// fleet: resource r serves work at s_r times the unit rate, its
	// self-tuned threshold converges to the speed-proportional target
	// (1+ε)·(W/S_up)·s_r + wmax (core.Proportional restricted to the
	// up capacity), and load-aware dispatch compares load-per-speed.
	// All speeds must be positive and finite, and the slice length must
	// equal the resource count. nil means a homogeneous fleet (all 1),
	// which replays bit-identically to the pre-speed engine. Resources
	// keep their speed across churn — a rejoining machine comes back at
	// its own capacity, so S_up moves with the churn.
	Speeds []float64
	// Protocol is the per-round migration rule (required).
	Protocol core.Protocol
	// Arrivals is the arrival process (required).
	Arrivals Arrivals
	// Service is the departure discipline (required).
	Service Service
	// Dispatch routes arrivals; nil means UniformDispatch.
	Dispatch Dispatch
	// Tuner refreshes thresholds online (required).
	Tuner Tuner
	// Churn enables resource join/leave; the zero value disables it.
	Churn Churn
	// Rounds is the number of simulated rounds (required, > 0).
	Rounds int
	// Window is the metrics window length in rounds; 0 means 100.
	Window int
	// Seed fixes all randomness.
	Seed uint64
	// Workers shards the round pipeline (service, tuner sweeps,
	// protocol propose, migration delivery, churn evacuation) across a
	// persistent worker pool; ≤ 1 runs sequentially. Results are
	// bit-identical for every worker count: all randomness is drawn
	// from per-resource or sequential engine streams, cross-shard
	// effects merge in canonical (destination, task ID) order, and
	// float reductions always run in the same order.
	Workers int
	// RebalanceEvery is the period, in rounds, of measured-cost shard
	// sizing: the engine times every shard phase and periodically moves
	// the shard boundaries so observed per-shard round nanos equalise
	// (skewed workloads stop bottlenecking on one worker). 0 selects
	// the default (64); < 0 pins the equal-count partition. Boundary
	// placement never affects results — only the work split — so runs
	// stay bit-identical across worker counts and machines.
	RebalanceEvery int
	// OnRebalance, if non-nil, receives the per-shard measured costs at
	// every rebalance point (the -sharddebug hook). The stats slice is
	// reused across calls. Only fires with Workers > 1.
	OnRebalance func(round int, stats []ShardStat)
	// InitialWeights optionally pre-populates the system; paired with
	// InitialPlacement (task → resource; nil places all on resource 0).
	InitialWeights   []float64
	InitialPlacement []int
	// CheckInvariants validates conservation after every round (slow;
	// tests only).
	CheckInvariants bool
	// OnRound, if non-nil, runs after every completed round with the
	// live state (read-only use expected).
	OnRound func(round int, s *core.State)
	// OnWindow, if non-nil, receives each completed metrics window.
	OnWindow func(w WindowStats)
}

// WindowStats summarises one metrics window of an open-system run.
// Rates are per-round time averages over the window; load figures are
// a snapshot over up resources at the window's last round.
type WindowStats struct {
	Start, End      int     // round range [Start, End)
	OverloadFrac    float64 // time-averaged fraction of up resources over threshold
	MigrationRate   float64 // protocol migrations per round
	RehomeRate      float64 // churn re-homes + bounced deliveries per round
	ArrivalRate     float64 // arriving tasks per round
	DepartureRate   float64 // departing tasks per round
	MeanLoad        float64 // snapshot mean load over up resources
	MaxLoad         float64 // snapshot max load
	P99Load         float64 // snapshot 99th-percentile load
	P99LoadPerSpeed float64 // snapshot p99 of load/speed (= P99Load when homogeneous)
	InFlight        int     // live tasks at window end
	InFlightWeight  float64 // live weight at window end
	UpResources     int     // up resources at window end
}

// ShardStat reports one shard's resource range and the wall-clock
// nanos its sharded phases (service, propose, deliver, evacuate)
// consumed since the previous rebalance — the observability surface of
// measured-cost shard sizing.
type ShardStat struct {
	Lo, Hi int   // resource range [Lo, Hi) the shard owned
	Nanos  int64 // accumulated phase nanos over the window
}

// Result reports a completed open-system run.
type Result struct {
	Rounds         int
	Arrived        int64
	Departed       int64
	ArrivedWeight  float64
	DepartedWeight float64
	Migrations     int64   // protocol-driven moves
	MovedWeight    float64 // weight of protocol-driven moves
	Rehomed        int64   // churn evacuations + bounced deliveries
	Downs, Ups     int     // churn events
	Windows        []WindowStats
	FinalInFlight  int
	FinalWeight    float64
}

// TailOverloadFrac averages the windowed overload fraction over the
// windows after the first skip ones — the steady-state figure once the
// warm-up transient is discarded. Returns NaN with no such windows.
func (r Result) TailOverloadFrac(skip int) float64 {
	if skip < 0 || skip >= len(r.Windows) {
		return math.NaN()
	}
	sum := 0.0
	for _, w := range r.Windows[skip:] {
		sum += w.OverloadFrac
	}
	return sum / float64(len(r.Windows)-skip)
}

// Run executes the open-system simulation described by cfg on the
// sharded round pipeline (see engine.go). For any Config.Workers the
// Result — WindowStats and float totals included — is bit-identical to
// the sequential Workers = 1 execution.
func Run(cfg Config) (Result, error) {
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	e := newEngine(cfg)
	defer e.close()
	return e.run()
}

// checkConservation validates the open-system weight balance
// W(t) = W(0) + arrived − departed and the core stack/location/set
// invariants.
func checkConservation(s *core.State, initialWeight float64, res Result) error {
	if err := s.CheckInvariants(); err != nil {
		return err
	}
	want := initialWeight + res.ArrivedWeight - res.DepartedWeight
	got := s.InFlightWeight()
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		return fmt.Errorf("in-flight weight %v != arrived−departed balance %v", got, want)
	}
	return nil
}

func validate(cfg Config) error {
	switch {
	case cfg.Graph == nil:
		return errors.New("dynamic: Config.Graph is required")
	case cfg.Graph.N() == 0:
		return errors.New("dynamic: graph has no resources")
	case cfg.Protocol == nil:
		return errors.New("dynamic: Config.Protocol is required")
	case cfg.Arrivals == nil:
		return errors.New("dynamic: Config.Arrivals is required")
	case cfg.Service == nil:
		return errors.New("dynamic: Config.Service is required")
	case cfg.Tuner == nil:
		return errors.New("dynamic: Config.Tuner is required")
	case cfg.Rounds <= 0:
		return errors.New("dynamic: Config.Rounds must be > 0")
	case cfg.Churn.LeaveProb < 0 || cfg.Churn.LeaveProb > 1 ||
		cfg.Churn.JoinProb < 0 || cfg.Churn.JoinProb > 1:
		return errors.New("dynamic: churn probabilities must be in [0,1]")
	case cfg.Churn.MinUp > cfg.Graph.N():
		return errors.New("dynamic: Churn.MinUp exceeds the number of resources")
	}
	if cfg.Speeds != nil {
		if len(cfg.Speeds) != cfg.Graph.N() {
			return fmt.Errorf("dynamic: Config.Speeds has %d entries for %d resources",
				len(cfg.Speeds), cfg.Graph.N())
		}
		for r, s := range cfg.Speeds {
			if !ValidSpeed(s) {
				return fmt.Errorf("dynamic: speed %v of resource %d must be positive and finite", s, r)
			}
		}
	}
	for i, ev := range cfg.Churn.Events {
		if ev.Round < 0 || ev.Every < 0 || ev.Down < 0 || ev.Up < 0 {
			return fmt.Errorf("dynamic: churn event %d has negative fields: %+v", i, ev)
		}
	}
	if cfg.InitialPlacement != nil && len(cfg.InitialPlacement) != len(cfg.InitialWeights) {
		return fmt.Errorf("dynamic: initial placement has %d entries for %d tasks",
			len(cfg.InitialPlacement), len(cfg.InitialWeights))
	}
	for i, r := range cfg.InitialPlacement {
		if r < 0 || r >= cfg.Graph.N() {
			return fmt.Errorf("dynamic: initial task %d placed on invalid resource %d", i, r)
		}
	}
	// Pluggable components check their own parameters up front, so a bad
	// rate or probability is a config error, not a mid-run panic.
	for _, c := range []any{cfg.Arrivals, cfg.Service, cfg.Dispatch, cfg.Tuner} {
		if v, ok := c.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}
