// Package dynamic is the open-system simulation engine layered on
// internal/core: instead of placing m tasks once and balancing until
// quiescence (the paper's closed setting), a round-based event loop
// feeds the threshold protocols a living system —
//
//  1. resource churn: machines leave (their tasks are re-homed) and
//     rejoin,
//  2. arrivals: weighted tasks enter via a pluggable arrival process
//     (Poisson, periodic bursts, a replayed trace) and are routed by a
//     dispatch policy (uniform, hotspot ingress, power-of-d),
//  3. service: tasks receive service and depart (service time
//     proportional to weight, or geometric lifetimes),
//  4. self-tuning: thresholds are re-estimated online from decaying
//     load averages spread by diffusion (no global knowledge), and
//  5. migration: one round of the paper's protocols
//     (resource-controlled, user-controlled, mixed) runs against the
//     current thresholds.
//
// This is the regime of Goldsztajn et al., "Self-Learning
// Threshold-Based Load Balancing", and of Hoefer–Sauerwald's dynamic
// threshold games, grafted onto the weighted-task protocols of the
// source paper. Runs are fully deterministic per seed: every actor
// draws from its own split RNG stream.
package dynamic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Churn configures resource join/leave dynamics. Each round at most
// one resource leaves stochastically (probability LeaveProb, never
// below MinUp up resources) and at most one rejoins (probability
// JoinProb); Events additionally scripts mass join/leave bursts — a
// whole rack failing in one round. A leaving resource's tasks are
// immediately re-homed to uniformly random up resources (each lost
// resource draws destinations from its own deterministic re-home
// stream, so evacuation shards like every other phase); total
// in-flight weight is conserved across all events.
type Churn struct {
	LeaveProb float64      // per-round probability one up resource leaves
	JoinProb  float64      // per-round probability one down resource rejoins
	MinUp     int          // floor on up resources; 0 means 1
	Events    []ChurnEvent // scripted mass join/leave bursts
}

// ChurnEvent is one scripted churn burst: at round Round (and, when
// Every > 0, every Every rounds after it) the resources named in
// DownList plus Down uniformly random up resources fail simultaneously,
// and the resources named in UpList plus Up uniformly random down
// resources rejoin. Failures respect Churn.MinUp; rejoins are capped by
// the down population. Mass failures (thousands of departures in one
// round) exercise the engine's parallel evacuation path.
//
// The lists are how correlated, topology-aware failures enter the
// engine: recovery.FailureModel compiles per-rack MTBF/MTTR processes
// down to one-shot events whose DownList is a whole rack. Listed
// transitions are validated at config time (see ValidateEvents): a
// schedule that kills an already-down resource or revives an already-up
// one is rejected before the run starts. At run time a listed
// transition that has become moot — the stochastic churn already took
// the machine down, or MinUp leaves no headroom — is skipped rather
// than counted.
type ChurnEvent struct {
	Round    int   // first round at which the event fires (0-based)
	Every    int   // repeat period in rounds; 0 fires exactly once
	Down     int   // up resources failing together, chosen uniformly
	Up       int   // down resources rejoining together, chosen uniformly
	DownList []int // specific resources failing together
	UpList   []int // specific resources rejoining together
}

// fires reports whether the event is due at round t.
func (ev ChurnEvent) fires(t int) bool {
	if ev.Every <= 0 {
		return t == ev.Round
	}
	return t >= ev.Round && (t-ev.Round)%ev.Every == 0
}

// EventError locates a churn-schedule inconsistency: Event indexes the
// offending entry of ChurnSpec.Events, Round is the firing at which the
// schedule contradicts itself. The event loader translates Event back
// into a source line number.
type EventError struct {
	Event int // index into the events slice
	Round int // firing round of the conflict
	Msg   string
}

func (e *EventError) Error() string {
	return fmt.Sprintf("dynamic: churn event %d: round %d: %s", e.Event, e.Round, e.Msg)
}

// maxValidateFirings bounds the timeline simulation of ValidateEvents:
// one-shot schedules (the recovery compiler's output) are always
// checked exactly; a repeating listed schedule is checked over its
// first maxValidateFirings firings, which covers many full periods of
// any realistic configuration.
const maxValidateFirings = 10_000

// ValidateEvents checks a scripted churn schedule for internal
// consistency: list entries must lie in [0, n), no list may repeat a
// resource, no event may both kill and revive the same resource, and —
// simulating the firings in engine order (all kills of a round, then
// all rejoins) over the first `rounds` rounds — no firing may kill a
// resource the schedule has already downed or revive one it has not.
// Stochastic churn cannot be foreseen here, so the simulation assumes
// only scripted transitions; the engine absorbs runtime conflicts that
// arise from mixing lists with LeaveProb/JoinProb. Returns an
// *EventError naming the offending event and round.
func ValidateEvents(events []ChurnEvent, n, rounds int) error {
	listed := false
	for i, ev := range events {
		if ev.Round < 0 || ev.Every < 0 || ev.Down < 0 || ev.Up < 0 {
			return &EventError{Event: i, Round: ev.Round,
				Msg: fmt.Sprintf("negative fields: %+v", ev)}
		}
		if len(ev.DownList) == 0 && len(ev.UpList) == 0 {
			continue
		}
		listed = true
		seen := make(map[int]int8, len(ev.DownList)+len(ev.UpList))
		for _, r := range ev.DownList {
			if r < 0 || r >= n {
				return &EventError{Event: i, Round: ev.Round,
					Msg: fmt.Sprintf("down-list resource %d out of range [0, %d)", r, n)}
			}
			if seen[r] != 0 {
				return &EventError{Event: i, Round: ev.Round,
					Msg: fmt.Sprintf("down list repeats resource %d", r)}
			}
			seen[r] = 1
		}
		for _, r := range ev.UpList {
			if r < 0 || r >= n {
				return &EventError{Event: i, Round: ev.Round,
					Msg: fmt.Sprintf("up-list resource %d out of range [0, %d)", r, n)}
			}
			switch seen[r] {
			case 1:
				return &EventError{Event: i, Round: ev.Round,
					Msg: fmt.Sprintf("resource %d appears in both the down and the up list", r)}
			case 2:
				return &EventError{Event: i, Round: ev.Round,
					Msg: fmt.Sprintf("up list repeats resource %d", r)}
			}
			seen[r] = 2
		}
	}
	if !listed {
		return nil // purely random schedules cannot self-conflict
	}

	// Timeline simulation over the listed resources: collect the firing
	// rounds of listed events (capped per event), walk them in ascending
	// order, and within a round apply every event's kills (slice order),
	// then every event's rejoins — the engine's order.
	firingSet := make(map[int]struct{})
	for _, ev := range events {
		if len(ev.DownList) == 0 && len(ev.UpList) == 0 {
			continue
		}
		if ev.Every <= 0 {
			if ev.Round < rounds {
				firingSet[ev.Round] = struct{}{}
			}
			continue
		}
		cnt := 0
		for t := ev.Round; t < rounds && cnt < maxValidateFirings; t += ev.Every {
			firingSet[t] = struct{}{}
			cnt++
			if t > rounds-ev.Every {
				break // the next firing would overflow past the horizon
			}
		}
	}
	firings := make([]int, 0, len(firingSet))
	for t := range firingSet {
		firings = append(firings, t)
	}
	sort.Ints(firings)
	down := make(map[int]bool)
	for _, t := range firings {
		for i, ev := range events {
			if !ev.fires(t) {
				continue
			}
			for _, r := range ev.DownList {
				if down[r] {
					return &EventError{Event: i, Round: t,
						Msg: fmt.Sprintf("kills resource %d, which the schedule already downed", r)}
				}
				down[r] = true
			}
		}
		for i, ev := range events {
			if !ev.fires(t) {
				continue
			}
			for _, r := range ev.UpList {
				if !down[r] {
					return &EventError{Event: i, Round: t,
						Msg: fmt.Sprintf("revives resource %d, which the schedule never downed", r)}
				}
				delete(down, r)
			}
		}
	}
	return nil
}

func (c Churn) enabled() bool {
	return c.LeaveProb > 0 || c.JoinProb > 0 || len(c.Events) > 0
}

// Quarantine configures the flapping-resource hold-down: a resource
// whose churn transitions (up↔down, in either direction) reach Flaps
// within one tumbling Window is held down for Cooloff rounds — its
// rejoin deferred until the hold expires — so a link or machine that
// oscillates stops churning the balancer with evacuation/rejoin storms.
// The hysteresis is the hold itself: once quarantined, further flaps
// cannot retrigger until the resource has actually rejoined. The zero
// value disables quarantining.
type Quarantine struct {
	Flaps   int // transitions within Window that trigger the hold; 0 disables
	Window  int // tumbling flap-count window in rounds (default 50)
	Cooloff int // hold-down duration in rounds (default 100)
}

// withDefaults fills the window and cool-off defaults of an enabled
// config.
func (q Quarantine) withDefaults() Quarantine {
	if q.Flaps <= 0 {
		return q
	}
	if q.Window <= 0 {
		q.Window = 50
	}
	if q.Cooloff <= 0 {
		q.Cooloff = 100
	}
	return q
}

func (q Quarantine) enabled() bool { return q.Flaps > 0 }

// Config describes one open-system run.
type Config struct {
	// Graph is the resource topology (required).
	Graph *graph.Graph
	// Speeds is the per-resource speed profile of a heterogeneous
	// fleet: resource r serves work at s_r times the unit rate, its
	// self-tuned threshold converges to the speed-proportional target
	// (1+ε)·(W/S_up)·s_r + wmax (core.Proportional restricted to the
	// up capacity), and load-aware dispatch compares load-per-speed.
	// All speeds must be positive and finite, and the slice length must
	// equal the resource count. nil means a homogeneous fleet (all 1),
	// which replays bit-identically to the pre-speed engine. Resources
	// keep their speed across churn — a rejoining machine comes back at
	// its own capacity, so S_up moves with the churn.
	Speeds []float64
	// Protocol is the per-round migration rule (required).
	Protocol core.Protocol
	// Arrivals is the arrival process (required).
	Arrivals Arrivals
	// Service is the departure discipline (required).
	Service Service
	// Dispatch routes arrivals; nil means UniformDispatch.
	Dispatch Dispatch
	// Rehome picks the destination of every task evacuated off a failed
	// resource; nil means UniformRehome (the original engine behaviour,
	// bit-identical draws included). Policies draw only from the failed
	// resource's per-resource stream, so every policy keeps the
	// cross-worker determinism guarantee.
	Rehome RehomePolicy
	// Tuner refreshes thresholds online (required).
	Tuner Tuner
	// Churn enables resource join/leave; the zero value disables it.
	Churn Churn
	// Faults configures the deterministic message-fault layer between
	// the propose and deliver phases: per-message loss (with an
	// in-flight retry ledger, capped exponential backoff and a
	// re-home-at-source timeout), bounded delays (a delay wheel
	// delivering k rounds late in canonical order), duplication (deduped
	// by flight token on arrival) and scripted partition windows (cut
	// migrations bounce to their source; dispatch and the tuner see only
	// the reachable component). All draws are stateless keyed hashes of
	// (task, round, attempt), so faulty runs replay bit-identically for
	// every worker count. nil — or a plan with all probabilities zero
	// and no partitions — injects nothing and keeps the fault-free hot
	// path byte-identical and allocation-free. Requires a range-proposer
	// protocol (the sharded propose path is where the layer hooks in).
	Faults *faults.Plan
	// Quarantine enables the flapping-resource hold-down; the zero value
	// disables it.
	Quarantine Quarantine
	// Rounds is the number of simulated rounds (required, > 0).
	Rounds int
	// Window is the metrics window length in rounds; 0 means 100.
	Window int
	// Seed fixes all randomness.
	Seed uint64
	// Workers shards the round pipeline (service, tuner sweeps,
	// protocol propose, migration delivery, churn evacuation) across a
	// persistent worker pool; ≤ 1 runs sequentially. Results are
	// bit-identical for every worker count: all randomness is drawn
	// from per-resource or sequential engine streams, cross-shard
	// effects merge in canonical (destination, task ID) order, and
	// float reductions always run in the same order.
	Workers int
	// RebalanceEvery is the period, in rounds, of measured-cost shard
	// sizing: the engine times every shard phase and periodically moves
	// the shard boundaries so observed per-shard round nanos equalise
	// (skewed workloads stop bottlenecking on one worker). 0 selects
	// the default (64); < 0 pins the equal-count partition. Boundary
	// placement never affects results — only the work split — so runs
	// stay bit-identical across worker counts and machines.
	RebalanceEvery int
	// OnRebalance, if non-nil, receives the per-shard measured costs at
	// every rebalance point (the -sharddebug hook). The stats slice is
	// reused across calls. Only fires with Workers > 1.
	OnRebalance func(round int, stats []ShardStat)
	// OnLanes, if non-nil, receives the exchange's per-lane move counts
	// — counts[i*workers+j] moves were routed from source shard i to
	// destination shard j since the previous report — at the same
	// RebalanceEvery cadence as OnRebalance. Lane counts are known at
	// Route time, before the destination merge runs, so an
	// all-targets-one-shard skew (a locality-policy failure mode under
	// rack loss) is visible before it serialises the merge. The counts
	// slice is reused across calls. Only fires with Workers > 1.
	OnLanes func(round int, workers int, counts []int64)
	// InitialWeights optionally pre-populates the system; paired with
	// InitialPlacement (task → resource; nil places all on resource 0).
	InitialWeights   []float64
	InitialPlacement []int
	// CheckInvariants validates conservation after every round (slow;
	// tests only).
	CheckInvariants bool
	// OnRound, if non-nil, runs after every completed round with the
	// live state (read-only use expected).
	OnRound func(round int, s *core.State)
	// OnWindow, if non-nil, receives each completed metrics window.
	OnWindow func(w WindowStats)
	// Obs, if non-nil, streams typed telemetry events into the given
	// broker: fleet / per-shard / per-domain window statistics at the
	// Window cadence, exchange lane occupancy, per-shard phase timings
	// and shard costs at the telemetry cadence (RebalanceEvery, or its
	// default when rebalancing is off), and recovery-episode
	// transitions as they happen. Events are snapshot copies published
	// from the engine's sequential sections — they never feed back into
	// the run, so replay stays bit-identical for every worker count
	// with any number of subscribers attached, and publishing into the
	// broker's pre-sized rings keeps steady-state rounds at 0 allocs.
	Obs *obs.Broker
	// Domains optionally labels every resource with failure domains
	// (one entry per hierarchy level, e.g. racks then zones) for
	// per-domain window events on the Obs broker. Ignored when Obs is
	// nil; validated against the resource count.
	Domains []obs.Domains
	// AlertBudget enables domain-level SLO alerting: when a failure
	// domain's windowed overload fraction exceeds the budget for
	// AlertWindows consecutive metrics windows, the engine publishes a
	// KindAlert event for that domain (and a matching Cleared event the
	// first window it returns to budget). 0 disables alerting; requires
	// Obs and Domains to have any effect. Must lie in [0, 1).
	AlertBudget float64
	// AlertWindows is the consecutive-window count K a breach must
	// persist before the alert fires; 0 selects 1 (alert on the first
	// over-budget window).
	AlertWindows int
	// CheckpointEvery, when > 0, snapshots the complete engine state
	// every CheckpointEvery rounds (at the round boundary, after the
	// window flush and telemetry hooks) and hands the encoded snapshot
	// to OnCheckpoint. A run resumed from any such snapshot (see Resume)
	// finishes byte-identical to the uninterrupted run, for every worker
	// count, including under active fault plans.
	CheckpointEvery int
	// OnCheckpoint receives each completed checkpoint: the boundary
	// round the snapshot captured and the encoded bytes. The slice
	// aliases an engine-owned buffer reused across checkpoints — copy or
	// write it out before returning. A non-nil error aborts the run.
	OnCheckpoint func(round int, data []byte) error
	// CrashAfterRound, when > 0, makes the run return ErrCrashed after
	// completing that many rounds (after the boundary's checkpoint, if
	// one is due) — the crash-injection hook of the recovery test
	// harness and lbdyn's -crash-at-round flag.
	CrashAfterRound int
	// TraceSample, in [0, 1], is the task-lifecycle sampling rate:
	// each task is traced iff a stateless hash of (trace seed, task ID)
	// falls below it, so the traced set never depends on the shard
	// partition and a traced run's Result stays bit-identical to the
	// untraced run. Sampled tasks publish KindTrace records (arrival,
	// every migration hop with its cause, fault losses/retries,
	// departure) on the Obs broker in canonical order. 0 disables record
	// emission and keeps the hot path allocation-free; the sojourn /
	// hops / retry-latency histograms in Result are maintained
	// regardless. Requires Obs to have any effect.
	TraceSample float64
	// TraceSeed decorrelates the sampled-task set from the run's other
	// randomness; two runs with the same Seed but different TraceSeeds
	// trace different tasks while producing identical Results.
	TraceSeed uint64
}

// WindowStats summarises one metrics window of an open-system run.
// The type lives in internal/obs (it doubles as the fleet window event
// payload); the alias keeps the engine's public surface unchanged. See
// obs.WindowStats for field-level documentation, and
// obs.ShardWindowStats for the per-shard variant streamed over
// Config.Obs.
type WindowStats = obs.WindowStats

// ShardStat reports one shard's resource range and the wall-clock
// nanos its sharded phases (service, propose, deliver, evacuate)
// consumed since the previous rebalance — the observability surface of
// measured-cost shard sizing. Aliased from internal/obs, where it is
// also the shard-cost event payload.
type ShardStat = obs.ShardStat

// RecoveryStat reports one failure-recovery episode: a round in which
// a SCRIPTED ChurnEvent took resources down opens an episode, and the
// episode closes when the overload fraction first returns to its
// pre-failure baseline (drained) or when the next failure round or the
// run's end cuts it short (censored). Per-round stochastic churn
// (Churn.LeaveProb) never opens episodes — under continuous churn
// every round would, flooding Recoveries with censored one-machine
// noise and growing it without bound on long runs. All fields derive
// from partition-invariant quantities, so episodes are bit-identical
// for every worker count.
type RecoveryStat struct {
	Round            int     // round the failure hit
	Downs            int     // resources lost in that round
	EvacTasks        int64   // tasks re-homed by the failure round's evacuations
	EvacWeight       float64 // weight of those re-homes (evacuation migration load)
	BaselineOverload float64 // overload fraction of the round before the failure
	PeakOverload     float64 // max per-round overload fraction during the episode
	// DrainRounds counts rounds from the failure until the overload
	// fraction first returned to the baseline (0 = drained within the
	// failure round itself); −1 marks a censored episode.
	DrainRounds int
}

// Drained reports whether the episode closed by returning to its
// pre-failure overload baseline (rather than being cut short).
func (rs RecoveryStat) Drained() bool { return rs.DrainRounds >= 0 }

// Result reports a completed open-system run.
type Result struct {
	Rounds         int
	Arrived        int64
	Departed       int64
	ArrivedWeight  float64
	DepartedWeight float64
	Migrations     int64   // protocol-driven moves (late fault-layer deliveries included)
	MovedWeight    float64 // weight of protocol-driven moves
	Rehomed        int64   // churn evacuations + bounced deliveries
	RehomedWeight  float64 // weight of churn evacuations + bounced deliveries
	Downs, Ups     int     // churn events
	Recoveries     []RecoveryStat
	Windows        []WindowStats
	FinalInFlight  int
	FinalWeight    float64

	// Message-fault layer totals (all zero on fault-free runs; every
	// field is worker-count invariant).
	Lost             int64 // messages lost on first send
	Delayed          int64 // messages parked in the delay wheel
	Duplicated       int64 // duplicate copies spawned
	Deduped          int64 // duplicate copies dropped on arrival
	Retries          int64 // ledger retry attempts
	Timeouts         int64 // ledger tasks that re-homed at their source
	PartitionBlocked int64 // migrations bounced at a partition cut
	// Bounced counts step-6 re-homes — deliveries that landed on a down
	// resource (a subset of Rehomed, which also holds churn evacuations).
	Bounced       int64
	BouncedWeight float64
	// Quarantined counts flapping-resource hold-downs entered;
	// FinalLedger/FinalLedgerWeight are the in-flight residue (lost or
	// delayed messages still undelivered) at run end.
	Quarantined       int
	FinalLedger       int
	FinalLedgerWeight float64

	// Always-on task-lifecycle histograms over the fixed power-of-two
	// ladder (trace.Bounds): rounds from arrival to departure and
	// migration hops per task, both observed at every departure, and
	// the rounds a lost migration spent in the retry ledger before it
	// resolved (retry success or timeout). Every observation is an
	// integer increment made in canonical order, so the histograms are
	// bit-identical for every worker count and ride the same golden
	// and checkpoint guarantees as the scalar totals.
	Sojourn  trace.Hist
	Hops     trace.Hist
	RetryLat trace.Hist
}

// PeakPostFailureOverload returns the worst per-round overload
// fraction observed across all recovery episodes — the headline
// post-failure transient figure. NaN with no episodes.
func (r Result) PeakPostFailureOverload() float64 {
	if len(r.Recoveries) == 0 {
		return math.NaN()
	}
	peak := 0.0
	for _, rs := range r.Recoveries {
		if rs.PeakOverload > peak {
			peak = rs.PeakOverload
		}
	}
	return peak
}

// MeanDrainRounds averages the time-to-drain-overload over the drained
// (non-censored) recovery episodes. NaN with no drained episodes.
func (r Result) MeanDrainRounds() float64 {
	sum, n := 0.0, 0
	for _, rs := range r.Recoveries {
		if rs.Drained() {
			sum += float64(rs.DrainRounds)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TailOverloadFrac averages the windowed overload fraction over the
// windows after the first skip ones — the steady-state figure once the
// warm-up transient is discarded. Returns NaN with no such windows.
func (r Result) TailOverloadFrac(skip int) float64 {
	if skip < 0 || skip >= len(r.Windows) {
		return math.NaN()
	}
	sum := 0.0
	for _, w := range r.Windows[skip:] {
		sum += w.OverloadFrac
	}
	return sum / float64(len(r.Windows)-skip)
}

// Run executes the open-system simulation described by cfg on the
// sharded round pipeline (see engine.go). For any Config.Workers the
// Result — WindowStats and float totals included — is bit-identical to
// the sequential Workers = 1 execution.
func Run(cfg Config) (Result, error) {
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	e := newEngine(cfg)
	defer e.close()
	return e.run()
}

// checkConservation validates the open-system weight balance
// W(t) = W(0) + arrived − departed and the core stack/location/set
// invariants.
func checkConservation(s *core.State, initialWeight float64, res Result) error {
	if err := s.CheckInvariants(); err != nil {
		return err
	}
	want := initialWeight + res.ArrivedWeight - res.DepartedWeight
	got := s.InFlightWeight()
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		return fmt.Errorf("in-flight weight %v != arrived−departed balance %v", got, want)
	}
	return nil
}

func validate(cfg Config) error {
	switch {
	case cfg.Graph == nil:
		return errors.New("dynamic: Config.Graph is required")
	case cfg.Graph.N() == 0:
		return errors.New("dynamic: graph has no resources")
	case cfg.Protocol == nil:
		return errors.New("dynamic: Config.Protocol is required")
	case cfg.Arrivals == nil:
		return errors.New("dynamic: Config.Arrivals is required")
	case cfg.Service == nil:
		return errors.New("dynamic: Config.Service is required")
	case cfg.Tuner == nil:
		return errors.New("dynamic: Config.Tuner is required")
	case cfg.Rounds <= 0:
		return errors.New("dynamic: Config.Rounds must be > 0")
	case cfg.Churn.LeaveProb < 0 || cfg.Churn.LeaveProb > 1 ||
		cfg.Churn.JoinProb < 0 || cfg.Churn.JoinProb > 1:
		return errors.New("dynamic: churn probabilities must be in [0,1]")
	case cfg.Churn.MinUp > cfg.Graph.N():
		return errors.New("dynamic: Churn.MinUp exceeds the number of resources")
	}
	if cfg.Speeds != nil {
		if len(cfg.Speeds) != cfg.Graph.N() {
			return fmt.Errorf("dynamic: Config.Speeds has %d entries for %d resources",
				len(cfg.Speeds), cfg.Graph.N())
		}
		for r, s := range cfg.Speeds {
			if !ValidSpeed(s) {
				return fmt.Errorf("dynamic: speed %v of resource %d must be positive and finite", s, r)
			}
		}
	}
	if err := ValidateEvents(cfg.Churn.Events, cfg.Graph.N(), cfg.Rounds); err != nil {
		return err
	}
	if cfg.Faults.Active() {
		if err := cfg.Faults.Validate(cfg.Graph.N()); err != nil {
			return fmt.Errorf("dynamic: %w", err)
		}
		if !core.CanPropose(cfg.Protocol) {
			return fmt.Errorf("dynamic: Config.Faults requires a range-proposer protocol (%T is not one)", cfg.Protocol)
		}
	}
	if q := cfg.Quarantine; q.Flaps < 0 || q.Window < 0 || q.Cooloff < 0 {
		return fmt.Errorf("dynamic: Config.Quarantine fields must be non-negative (%+v)", q)
	}
	if cfg.AlertBudget < 0 || cfg.AlertBudget >= 1 {
		if cfg.AlertBudget != 0 {
			return fmt.Errorf("dynamic: Config.AlertBudget %v must lie in [0, 1)", cfg.AlertBudget)
		}
	}
	if cfg.AlertWindows < 0 {
		return fmt.Errorf("dynamic: Config.AlertWindows %d must be non-negative", cfg.AlertWindows)
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("dynamic: Config.CheckpointEvery %d must be non-negative", cfg.CheckpointEvery)
	}
	if cfg.CrashAfterRound < 0 || cfg.CrashAfterRound > cfg.Rounds {
		return fmt.Errorf("dynamic: Config.CrashAfterRound %d must lie in [0, Rounds]", cfg.CrashAfterRound)
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		return fmt.Errorf("dynamic: Config.TraceSample %v must lie in [0, 1]", cfg.TraceSample)
	}
	for i, d := range cfg.Domains {
		if err := d.Validate(cfg.Graph.N()); err != nil {
			return fmt.Errorf("dynamic: Config.Domains[%d]: %w", i, err)
		}
	}
	if cfg.InitialPlacement != nil && len(cfg.InitialPlacement) != len(cfg.InitialWeights) {
		return fmt.Errorf("dynamic: initial placement has %d entries for %d tasks",
			len(cfg.InitialPlacement), len(cfg.InitialWeights))
	}
	for i, r := range cfg.InitialPlacement {
		if r < 0 || r >= cfg.Graph.N() {
			return fmt.Errorf("dynamic: initial task %d placed on invalid resource %d", i, r)
		}
	}
	// Pluggable components check their own parameters up front, so a bad
	// rate or probability is a config error, not a mid-run panic.
	// ValidateFor additionally hands size-dependent components (a
	// topology-backed re-home policy) the resource count they must
	// cover.
	for _, c := range []any{cfg.Arrivals, cfg.Service, cfg.Dispatch, cfg.Rehome, cfg.Tuner} {
		if v, ok := c.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return err
			}
		}
		if v, ok := c.(interface{ ValidateFor(n int) error }); ok {
			if err := v.ValidateFor(cfg.Graph.N()); err != nil {
				return err
			}
		}
	}
	return nil
}
