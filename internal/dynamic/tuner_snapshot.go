package dynamic

import (
	"errors"
	"fmt"

	"repro/internal/snapshot"
)

// SelfTuner checkpoint support. The tuner's persistent state is small:
// the decaying load estimates, the push-sum companion (up/speed mass)
// and the churned latch. Everything else — the diffusion ping-pong
// buffers, the threshold scratch, the bound shard closures — is
// refresh-time scratch the decode path rebuilds, exactly as the lazy
// first-Refresh init would. The estimates are bit patterns of
// incrementally decayed sums, so they are stored as exact float bits
// and never recomputed.
//
// OracleTuner deliberately does not implement SnapshotStater: its only
// field is a threshold scratch vector fully rewritten from core state
// at each refresh round, so a fresh oracle resumes bit-identically.

// EncodeSnapshot implements SnapshotStater.
func (st *SelfTuner) EncodeSnapshot(enc *snapshot.Encoder) {
	enc.Bool(st.est != nil)
	if st.est == nil {
		return
	}
	enc.Float64s(st.est)
	enc.Float64s(st.upw)
	enc.Bool(st.churned)
}

// DecodeSnapshot implements SnapshotStater. The receiver must be a
// fresh tuner (same configuration as the checkpointed run, speeds
// already applied by the engine); restore rebuilds the refresh scratch
// and closures the first Refresh would otherwise lazily allocate.
func (st *SelfTuner) DecodeSnapshot(sec *snapshot.Section) error {
	if st.est != nil {
		return errors.New("dynamic: SelfTuner snapshot restore requires a fresh tuner")
	}
	inited := sec.Bool()
	if err := sec.Err(); err != nil {
		return err
	}
	if !inited {
		return nil
	}
	st.est = sec.Float64s(nil)
	st.upw = sec.Float64s(nil)
	st.churned = sec.Bool()
	if err := sec.Err(); err != nil {
		return err
	}
	n := len(st.est)
	if len(st.upw) != n {
		return fmt.Errorf("dynamic: SelfTuner snapshot has %d mass entries for %d estimates", len(st.upw), n)
	}
	if st.speeds != nil && len(st.speeds) != n {
		return fmt.Errorf("dynamic: SelfTuner snapshot covers %d resources, speed profile has %d", n, len(st.speeds))
	}
	st.thr = make([]float64, n)
	st.zEst = make([]float64, n)
	st.zEstNext = make([]float64, n)
	st.decayFn = st.decayShard
	st.diffuseFn = st.diffuseShard
	st.thrFn = st.thresholdShard
	st.churned = st.churned || st.speeds != nil
	if st.churned {
		st.zUp = make([]float64, n)
		st.zUpNext = make([]float64, n)
	}
	return nil
}

// Interface conformance, pinned at compile time.
var _ SnapshotStater = (*SelfTuner)(nil)
