package dynamic

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/task"
	"repro/internal/trace"
)

// Checkpoint/restore for the open-system engine. A checkpoint captures
// the COMPLETE mutable state a resumed run needs to finish
// byte-identical to the uninterrupted one: every RNG stream position,
// the task set (free list included — ID assignment is a pure function
// of its LIFO order), every stack with its incrementally-accumulated
// load bits, the threshold vector, the up/down and reachable sets in
// their exact internal order (uniform draws index into them), the
// quarantine ledger, the fault injector's in-flight ledger and delay
// wheel, stateful tuner and re-home policy internals, the recovery
// episode tracker, the window accumulators and the full Result so far.
//
// Deliberately NOT captured: shard boundaries, measured phase nanos and
// exchange lane counters — all wall-clock-driven work-split state that
// never affects results (the determinism contract makes every phase
// partition-invariant). A resumed run re-cuts its own boundaries, so
// per-shard telemetry (KindShardWindow, KindLanes, KindShardCost,
// KindPhase) may attribute work differently than the uninterrupted
// run even though Result and all partition-invariant event kinds are
// bit-identical.
//
// Identity contract: Resume must be given an equivalent Config (same
// graph, seed, rounds, window, protocol, processes and plans) with
// FRESH stateful components (tuner, re-home policy, dispatcher) — the
// snapshot restores their state, it cannot un-run a used one. The
// snapshot stores enough fingerprint (n, seed, rounds, window,
// component presence flags) to reject the obvious mismatches with a
// structured error instead of diverging silently.

// ErrCrashed is returned by a run cut short by Config.CrashAfterRound
// — the crash-injection harness's signal that the simulated kill, not
// a real failure, ended the run.
var ErrCrashed = errors.New("dynamic: run crashed by Config.CrashAfterRound")

// SnapshotStater is implemented by stateful pluggable components
// (tuners, re-home policies) whose internal state must ride the
// engine checkpoint. EncodeSnapshot writes the component's persistent
// state as one section body; DecodeSnapshot restores it into a freshly
// constructed component of the same configuration.
type SnapshotStater interface {
	EncodeSnapshot(*snapshot.Encoder)
	DecodeSnapshot(*snapshot.Section) error
}

// Engine is the resumable form of Run: construct with NewEngine (or
// Resume), call Run once, and Close when done. Checkpoint may be
// called before Run starts or after it returns — never concurrently
// with it (the run loop's own cadence checkpoints live via
// Config.CheckpointEvery/OnCheckpoint).
type Engine struct {
	e      *engine
	closed bool
}

// NewEngine validates cfg and builds an engine without starting it.
func NewEngine(cfg Config) (*Engine, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	return &Engine{e: newEngine(cfg)}, nil
}

// Run executes the run (from the snapshot's round when the engine was
// built by Resume). Call at most once.
func (en *Engine) Run() (Result, error) {
	return en.e.run()
}

// Checkpoint encodes the engine's current state and writes it to w.
func (en *Engine) Checkpoint(w io.Writer) error {
	data := en.e.checkpointBytes(en.e.nextRound)
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("dynamic: writing checkpoint: %w", err)
	}
	return nil
}

// Close releases the engine's worker pool. Idempotent.
func (en *Engine) Close() {
	if !en.closed {
		en.closed = true
		en.e.close()
	}
}

// Resume reads a snapshot and builds an engine that continues the
// checkpointed run: its Run() enters the round loop at the snapshot's
// boundary and finishes byte-identical to the uninterrupted run. cfg
// must be equivalent to the original run's Config (fresh stateful
// components included); mismatches the snapshot can detect fail here
// with a structured error.
func Resume(r io.Reader, cfg Config) (*Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot: %w", err)
	}
	if err := validate(cfg); err != nil {
		return nil, err
	}
	e := newEngine(cfg)
	if err := e.decodeState(data); err != nil {
		e.close()
		return nil, err
	}
	// The crash drill fires when round CrashAfterRound completes; a
	// snapshot already at or past it would otherwise resume into a run
	// where the scripted crash silently never happens.
	if cfg.CrashAfterRound > 0 && e.startRound >= cfg.CrashAfterRound {
		e.close()
		return nil, fmt.Errorf("dynamic: snapshot resumes at round %d, at or past Config.CrashAfterRound %d — the scripted crash can never fire; drop CrashAfterRound to resume", e.startRound, cfg.CrashAfterRound)
	}
	return &Engine{e: e}, nil
}

// checkpoint runs one cadence checkpoint: encode, announce on the
// broker, hand the bytes to the sink.
func (e *engine) checkpoint(round int) error {
	data := e.checkpointBytes(round)
	if e.cfg.OnCheckpoint != nil {
		if err := e.cfg.OnCheckpoint(round, data); err != nil {
			return fmt.Errorf("dynamic: checkpoint at round %d: %w", round, err)
		}
	}
	return nil
}

// checkpointBytes encodes the snapshot capturing the boundary `round`
// and publishes its KindCheckpoint marker. The returned slice aliases
// the engine's reusable encoder buffer.
func (e *engine) checkpointBytes(round int) []byte {
	data := e.encodeState(round)
	if e.broker != nil {
		e.ev = obs.Event{Kind: obs.KindCheckpoint, Round: round,
			Checkpoint: obs.CheckpointEvent{Round: round, Bytes: len(data)}}
		e.broker.Publish(&e.ev)
	}
	return data
}

// encodeRand appends one generator's position (kind tag + 4 state
// words).
func encodeRand(enc *snapshot.Encoder, r *rng.Rand) {
	kind, words := r.State()
	enc.Uint8(kind)
	for _, w := range words {
		enc.Uint64(w)
	}
}

// decodeRand restores one generator's position.
func decodeRand(sec *snapshot.Section, r *rng.Rand) error {
	kind := sec.Uint8()
	var words [4]uint64
	for i := range words {
		words[i] = sec.Uint64()
	}
	if err := sec.Err(); err != nil {
		return err
	}
	return r.SetState(kind, words)
}

// encodeState serializes the complete engine state at the boundary
// entering `nextRound`. Allocation-free once the reusable encoder
// buffer reaches its high-water mark.
func (e *engine) encodeState(nextRound int) []byte {
	if e.ckptEnc == nil {
		e.ckptEnc = snapshot.NewEncoder()
	}
	enc := e.ckptEnc
	enc.Reset()

	tunerState, _ := e.cfg.Tuner.(SnapshotStater)
	rehomeState, _ := e.rehome.(SnapshotStater)

	enc.Begin("meta")
	enc.Int(e.n)
	enc.Uint64(e.cfg.Seed)
	enc.Int(e.cfg.Rounds)
	enc.Int(e.window)
	enc.Int(nextRound)
	var seq uint64
	if e.broker != nil {
		// The KindCheckpoint marker for this boundary publishes right
		// after encoding, so the saved sequence counts it: the resumed
		// stream continues numbering immediately after the marker.
		seq = e.broker.Published() + 1
	}
	enc.Uint64(seq)
	enc.Int(len(e.shards))
	enc.Bool(e.inj != nil)
	enc.Bool(e.reach != e.up)
	enc.Bool(e.quarCfg.enabled())
	enc.Bool(tunerState != nil)
	enc.Bool(rehomeState != nil)
	enc.Bool(e.alertCnt != nil)
	enc.End()

	enc.Begin("rng")
	encodeRand(enc, e.arrRand)
	encodeRand(enc, e.dispRand)
	encodeRand(enc, e.churnRand)
	for r := 0; r < e.n; r++ {
		encodeRand(enc, e.s.Rand(r))
	}
	enc.End()

	enc.Begin("tasks")
	tasks, removed, free, live, liveTop, total, wmax, wmin := e.ts.SnapshotState()
	enc.Uint32(uint32(len(tasks)))
	for i := range tasks {
		enc.Float64(tasks[i].Weight)
	}
	enc.Bools(removed)
	enc.Ints(free)
	enc.Int(live)
	enc.Int(liveTop)
	enc.Float64(total)
	enc.Float64(wmax)
	enc.Float64(wmin)
	enc.End()

	enc.Begin("state")
	enc.Int(e.s.Round())
	enc.Float64s(e.s.SnapshotThresholds())
	enc.Int32s(e.s.SnapshotLoc())
	wm, wmCount, wmDirty := e.s.SnapshotLiveWMax()
	enc.Float64(wm)
	enc.Int(wmCount)
	enc.Bool(wmDirty)
	ledgerN, ledgerW := e.s.InFlightLedger()
	enc.Int(ledgerN)
	enc.Float64(ledgerW)
	for r := 0; r < e.n; r++ {
		st := e.s.Stack(r)
		held := st.Tasks()
		enc.Uint32(uint32(len(held)))
		for _, tk := range held {
			enc.Int(tk.ID)
			enc.Float64(tk.Weight)
		}
		enc.Float64(st.Load())
	}
	enc.End()

	enc.Begin("ups")
	enc.Ints(e.up.list)
	enc.Ints(e.up.down)
	enc.Ints(e.up.pos)
	if e.reach != e.up {
		enc.Ints(e.reach.list)
		enc.Ints(e.reach.down)
		enc.Ints(e.reach.pos)
	}
	enc.End()

	if e.quarCfg.enabled() {
		enc.Begin("quar")
		enc.Int32s(e.flapCnt)
		enc.Int32s(e.quarUntil)
		enc.Bools(e.quarWantUp)
		enc.Ints(e.quarActive)
		enc.End()
	}

	if e.inj != nil {
		enc.Begin("inj")
		e.inj.EncodeSnapshot(enc)
		enc.End()
	}

	if tunerState != nil {
		enc.Begin("tuner")
		tunerState.EncodeSnapshot(enc)
		enc.End()
	}

	if rehomeState != nil {
		enc.Begin("rehome")
		rehomeState.EncodeSnapshot(enc)
		enc.End()
	}

	if e.alertCnt != nil {
		enc.Begin("alerts")
		enc.Uint32(uint32(len(e.alertCnt)))
		for li := range e.alertCnt {
			enc.Int32s(e.alertCnt[li])
			enc.Bools(e.alertActive[li])
		}
		enc.End()
	}

	enc.Begin("engine")
	enc.Float64s(e.remaining)
	enc.Float64(e.initialWeight)
	enc.Float64(e.prevOverload)
	enc.Bool(e.recOpen)
	enc.Int(e.recCur.Round)
	enc.Int(e.recCur.Downs)
	enc.Int64(e.recCur.EvacTasks)
	enc.Float64(e.recCur.EvacWeight)
	enc.Float64(e.recCur.BaselineOverload)
	enc.Float64(e.recCur.PeakOverload)
	enc.Int(e.recCur.DrainRounds)
	enc.Int(e.windowStart)
	enc.Float64(e.wOverload)
	enc.Int64(e.wMigrations)
	enc.Int64(e.wRehomed)
	enc.Int64(e.wArrivals)
	enc.Int64(e.wDepartures)
	// The per-shard window accumulators (wShardArr/Dep/Inb) are
	// deliberately NOT captured: their attribution follows the
	// wall-clock-rebalanced shard bounds, which are nondeterministic
	// and not part of a snapshot. Dropping them keeps checkpoint bytes
	// bit-deterministic; the cost is one under-counted KindShardWindow
	// report right after resume — per-shard telemetry is already
	// partition-dependent and outside the determinism contract.
	enc.End()

	enc.Begin("trace")
	enc.Int32s(e.arrT)
	enc.Int32s(e.hopCnt)
	enc.End()

	enc.Begin("result")
	encodeResult(enc, &e.res)
	enc.End()

	return enc.Finish()
}

// decodeState restores a snapshot into a freshly constructed engine
// (same Config shape). Any inconsistency — corruption, truncation,
// reordering, or a config that does not match the snapshot — returns a
// structured error; nothing loads silently.
func (e *engine) decodeState(data []byte) error {
	d, err := snapshot.NewDecoder(data)
	if err != nil {
		return err
	}

	tunerState, _ := e.cfg.Tuner.(SnapshotStater)
	rehomeState, _ := e.rehome.(SnapshotStater)

	sec, err := d.Section("meta")
	if err != nil {
		return err
	}
	n := sec.Int()
	seed := sec.Uint64()
	rounds := sec.Int()
	window := sec.Int()
	nextRound := sec.Int()
	brokerSeq := sec.Uint64()
	sec.Int() // the writing run's shard count — informational only
	hasInj := sec.Bool()
	hasReach := sec.Bool()
	hasQuar := sec.Bool()
	hasTuner := sec.Bool()
	hasRehome := sec.Bool()
	hasAlerts := sec.Bool()
	if err := sec.Done(); err != nil {
		return err
	}
	switch {
	case n != e.n:
		return fmt.Errorf("dynamic: snapshot covers %d resources, config has %d", n, e.n)
	case seed != e.cfg.Seed:
		return fmt.Errorf("dynamic: snapshot seed %d does not match config seed %d", seed, e.cfg.Seed)
	case rounds != e.cfg.Rounds:
		return fmt.Errorf("dynamic: snapshot run horizon %d rounds does not match config %d", rounds, e.cfg.Rounds)
	case window != e.window:
		return fmt.Errorf("dynamic: snapshot window %d does not match config %d", window, e.window)
	case nextRound < 0 || nextRound > rounds:
		return fmt.Errorf("dynamic: snapshot resume round %d outside [0, %d]", nextRound, rounds)
	case hasInj != (e.inj != nil):
		return fmt.Errorf("dynamic: snapshot fault-injector state (%v) does not match config (%v)", hasInj, e.inj != nil)
	case hasReach != (e.reach != e.up):
		return fmt.Errorf("dynamic: snapshot partition reachability state (%v) does not match config (%v)", hasReach, e.reach != e.up)
	case hasQuar != e.quarCfg.enabled():
		return fmt.Errorf("dynamic: snapshot quarantine state (%v) does not match config (%v)", hasQuar, e.quarCfg.enabled())
	case hasTuner != (tunerState != nil):
		return fmt.Errorf("dynamic: snapshot tuner state (%v) does not match config tuner %q", hasTuner, e.cfg.Tuner.Name())
	case hasRehome != (rehomeState != nil):
		return fmt.Errorf("dynamic: snapshot re-home state (%v) does not match config policy %q", hasRehome, e.rehome.Name())
	case hasAlerts != (e.alertCnt != nil):
		return fmt.Errorf("dynamic: snapshot alert-tracker state (%v) does not match config (%v)", hasAlerts, e.alertCnt != nil)
	}

	sec, err = d.Section("rng")
	if err != nil {
		return err
	}
	if err := decodeRand(sec, e.arrRand); err != nil {
		return err
	}
	if err := decodeRand(sec, e.dispRand); err != nil {
		return err
	}
	if err := decodeRand(sec, e.churnRand); err != nil {
		return err
	}
	for r := 0; r < e.n; r++ {
		if err := decodeRand(sec, e.s.Rand(r)); err != nil {
			return err
		}
	}
	if err := sec.Done(); err != nil {
		return err
	}

	sec, err = d.Section("tasks")
	if err != nil {
		return err
	}
	nTasks := sec.Len(8)
	tasks := make([]task.Task, 0, nTasks)
	for i := 0; i < nTasks && sec.Err() == nil; i++ {
		tasks = append(tasks, task.Task{ID: i, Weight: sec.Float64()})
	}
	removed := sec.Bools(nil)
	free := sec.Ints(nil)
	live := sec.Int()
	liveTop := sec.Int()
	total := sec.Float64()
	wmax := sec.Float64()
	wmin := sec.Float64()
	if err := sec.Done(); err != nil {
		return err
	}
	if len(removed) != nTasks {
		return fmt.Errorf("dynamic: snapshot task set has %d removal flags for %d tasks", len(removed), nTasks)
	}
	e.ts.RestoreState(tasks, removed, free, live, liveTop, total, wmax, wmin)

	sec, err = d.Section("state")
	if err != nil {
		return err
	}
	coreRound := sec.Int()
	thr := sec.Float64s(nil)
	loc := sec.Int32s(nil)
	wm := sec.Float64()
	wmCount := sec.Int()
	wmDirty := sec.Bool()
	ledgerN := sec.Int()
	ledgerW := sec.Float64()
	var stkBuf []task.Task
	for r := 0; r < e.n && sec.Err() == nil; r++ {
		cnt := sec.Len(16)
		stkBuf = stkBuf[:0]
		for j := 0; j < cnt && sec.Err() == nil; j++ {
			id := sec.Int()
			w := sec.Float64()
			stkBuf = append(stkBuf, task.Task{ID: id, Weight: w})
		}
		load := sec.Float64()
		if sec.Err() == nil {
			e.s.Stack(r).Restore(stkBuf, load)
		}
	}
	if err := sec.Done(); err != nil {
		return err
	}
	if len(thr) != e.n {
		return fmt.Errorf("dynamic: snapshot threshold vector covers %d resources, fleet has %d", len(thr), e.n)
	}
	e.s.RestoreSnapshot(coreRound, thr, loc, wm, wmCount, wmDirty, ledgerN, ledgerW)

	sec, err = d.Section("ups")
	if err != nil {
		return err
	}
	e.up.list = sec.Ints(e.up.list)
	e.up.down = sec.Ints(e.up.down)
	e.up.pos = sec.Ints(e.up.pos)
	if hasReach {
		e.reach.list = sec.Ints(e.reach.list)
		e.reach.down = sec.Ints(e.reach.down)
		e.reach.pos = sec.Ints(e.reach.pos)
	}
	if err := sec.Done(); err != nil {
		return err
	}
	if len(e.up.pos) != e.n || len(e.up.list)+len(e.up.down) != e.n {
		return fmt.Errorf("dynamic: snapshot up set covers %d+%d of %d resources", len(e.up.list), len(e.up.down), e.n)
	}
	if hasReach && (len(e.reach.pos) != e.n || len(e.reach.list)+len(e.reach.down) != e.n) {
		return fmt.Errorf("dynamic: snapshot reachable set covers %d+%d of %d resources", len(e.reach.list), len(e.reach.down), e.n)
	}

	if hasQuar {
		sec, err = d.Section("quar")
		if err != nil {
			return err
		}
		e.flapCnt = sec.Int32s(e.flapCnt)
		e.quarUntil = sec.Int32s(e.quarUntil)
		e.quarWantUp = sec.Bools(e.quarWantUp)
		e.quarActive = sec.Ints(e.quarActive)
		if err := sec.Done(); err != nil {
			return err
		}
		if len(e.flapCnt) != e.n || len(e.quarUntil) != e.n || len(e.quarWantUp) != e.n {
			return fmt.Errorf("dynamic: snapshot quarantine vectors do not cover the %d-resource fleet", e.n)
		}
	}

	if hasInj {
		sec, err = d.Section("inj")
		if err != nil {
			return err
		}
		if err := e.inj.DecodeSnapshot(sec); err != nil {
			return err
		}
		if err := sec.Done(); err != nil {
			return err
		}
	}

	if hasTuner {
		sec, err = d.Section("tuner")
		if err != nil {
			return err
		}
		if err := tunerState.DecodeSnapshot(sec); err != nil {
			return err
		}
		if err := sec.Done(); err != nil {
			return err
		}
	}

	if hasRehome {
		sec, err = d.Section("rehome")
		if err != nil {
			return err
		}
		if err := rehomeState.DecodeSnapshot(sec); err != nil {
			return err
		}
		if err := sec.Done(); err != nil {
			return err
		}
	}

	if hasAlerts {
		sec, err = d.Section("alerts")
		if err != nil {
			return err
		}
		levels := int(sec.Uint32())
		if sec.Err() == nil && levels != len(e.alertCnt) {
			return fmt.Errorf("dynamic: snapshot alert tracker has %d levels, config has %d", levels, len(e.alertCnt))
		}
		for li := 0; li < levels && sec.Err() == nil; li++ {
			e.alertCnt[li] = sec.Int32s(e.alertCnt[li])
			e.alertActive[li] = sec.Bools(e.alertActive[li])
			if sec.Err() == nil &&
				(len(e.alertCnt[li]) != len(e.domains[li].Names) ||
					len(e.alertActive[li]) != len(e.domains[li].Names)) {
				return fmt.Errorf("dynamic: snapshot alert level %d covers %d domains, config has %d",
					li, len(e.alertCnt[li]), len(e.domains[li].Names))
			}
		}
		if err := sec.Done(); err != nil {
			return err
		}
	}

	sec, err = d.Section("engine")
	if err != nil {
		return err
	}
	e.remaining = sec.Float64s(e.remaining)
	e.initialWeight = sec.Float64()
	e.prevOverload = sec.Float64()
	e.recOpen = sec.Bool()
	e.recCur.Round = sec.Int()
	e.recCur.Downs = sec.Int()
	e.recCur.EvacTasks = sec.Int64()
	e.recCur.EvacWeight = sec.Float64()
	e.recCur.BaselineOverload = sec.Float64()
	e.recCur.PeakOverload = sec.Float64()
	e.recCur.DrainRounds = sec.Int()
	e.windowStart = sec.Int()
	e.wOverload = sec.Float64()
	e.wMigrations = sec.Int64()
	e.wRehomed = sec.Int64()
	e.wArrivals = sec.Int64()
	e.wDepartures = sec.Int64()
	if err := sec.Done(); err != nil {
		return err
	}

	sec, err = d.Section("trace")
	if err != nil {
		return err
	}
	e.arrT = sec.Int32s(e.arrT)
	e.hopCnt = sec.Int32s(e.hopCnt)
	if err := sec.Done(); err != nil {
		return err
	}
	if len(e.arrT) != len(e.hopCnt) {
		return fmt.Errorf("dynamic: snapshot trace state has %d arrival rounds for %d hop counters",
			len(e.arrT), len(e.hopCnt))
	}

	sec, err = d.Section("result")
	if err != nil {
		return err
	}
	if err := decodeResult(sec, &e.res); err != nil {
		return err
	}
	if err := sec.Done(); err != nil {
		return err
	}

	if err := d.Close(); err != nil {
		return err
	}

	e.startRound = nextRound
	e.nextRound = nextRound
	if e.broker != nil && brokerSeq > 0 {
		e.broker.ResumeSeq(brokerSeq)
	}
	return nil
}

// encodeResult serializes the full Result accumulated so far —
// incrementally-summed floats as exact bit patterns, the recovery and
// window histories verbatim.
func encodeResult(enc *snapshot.Encoder, res *Result) {
	enc.Int(res.Rounds)
	enc.Int64(res.Arrived)
	enc.Int64(res.Departed)
	enc.Float64(res.ArrivedWeight)
	enc.Float64(res.DepartedWeight)
	enc.Int64(res.Migrations)
	enc.Float64(res.MovedWeight)
	enc.Int64(res.Rehomed)
	enc.Float64(res.RehomedWeight)
	enc.Int(res.Downs)
	enc.Int(res.Ups)
	enc.Uint32(uint32(len(res.Recoveries)))
	for i := range res.Recoveries {
		rs := &res.Recoveries[i]
		enc.Int(rs.Round)
		enc.Int(rs.Downs)
		enc.Int64(rs.EvacTasks)
		enc.Float64(rs.EvacWeight)
		enc.Float64(rs.BaselineOverload)
		enc.Float64(rs.PeakOverload)
		enc.Int(rs.DrainRounds)
	}
	enc.Uint32(uint32(len(res.Windows)))
	for i := range res.Windows {
		w := &res.Windows[i]
		enc.Int(w.Start)
		enc.Int(w.End)
		enc.Float64(w.OverloadFrac)
		enc.Float64(w.MigrationRate)
		enc.Float64(w.RehomeRate)
		enc.Float64(w.ArrivalRate)
		enc.Float64(w.DepartureRate)
		enc.Float64(w.MeanLoad)
		enc.Float64(w.MaxLoad)
		enc.Float64(w.P99Load)
		enc.Float64(w.P99LoadPerSpeed)
		enc.Int(w.InFlight)
		enc.Float64(w.InFlightWeight)
		enc.Int(w.UpResources)
	}
	enc.Int(res.FinalInFlight)
	enc.Float64(res.FinalWeight)
	enc.Int64(res.Lost)
	enc.Int64(res.Delayed)
	enc.Int64(res.Duplicated)
	enc.Int64(res.Deduped)
	enc.Int64(res.Retries)
	enc.Int64(res.Timeouts)
	enc.Int64(res.PartitionBlocked)
	enc.Int64(res.Bounced)
	enc.Float64(res.BouncedWeight)
	enc.Int(res.Quarantined)
	enc.Int(res.FinalLedger)
	enc.Float64(res.FinalLedgerWeight)
	encodeHist(enc, &res.Sojourn)
	encodeHist(enc, &res.Hops)
	encodeHist(enc, &res.RetryLat)
}

// encodeHist/decodeHist persist one fixed-bucket lifecycle histogram.
func encodeHist(enc *snapshot.Encoder, h *trace.Hist) {
	for _, c := range h.Counts {
		enc.Int64(c)
	}
	enc.Int64(h.Sum)
}

func decodeHist(sec *snapshot.Section, h *trace.Hist) {
	for i := range h.Counts {
		h.Counts[i] = sec.Int64()
	}
	h.Sum = sec.Int64()
}

// decodeResult restores the Result written by encodeResult.
func decodeResult(sec *snapshot.Section, res *Result) error {
	res.Rounds = sec.Int()
	res.Arrived = sec.Int64()
	res.Departed = sec.Int64()
	res.ArrivedWeight = sec.Float64()
	res.DepartedWeight = sec.Float64()
	res.Migrations = sec.Int64()
	res.MovedWeight = sec.Float64()
	res.Rehomed = sec.Int64()
	res.RehomedWeight = sec.Float64()
	res.Downs = sec.Int()
	res.Ups = sec.Int()
	nRec := sec.Len(56)
	res.Recoveries = res.Recoveries[:0]
	for i := 0; i < nRec && sec.Err() == nil; i++ {
		var rs RecoveryStat
		rs.Round = sec.Int()
		rs.Downs = sec.Int()
		rs.EvacTasks = sec.Int64()
		rs.EvacWeight = sec.Float64()
		rs.BaselineOverload = sec.Float64()
		rs.PeakOverload = sec.Float64()
		rs.DrainRounds = sec.Int()
		res.Recoveries = append(res.Recoveries, rs)
	}
	nWin := sec.Len(112)
	res.Windows = res.Windows[:0]
	for i := 0; i < nWin && sec.Err() == nil; i++ {
		var w WindowStats
		w.Start = sec.Int()
		w.End = sec.Int()
		w.OverloadFrac = sec.Float64()
		w.MigrationRate = sec.Float64()
		w.RehomeRate = sec.Float64()
		w.ArrivalRate = sec.Float64()
		w.DepartureRate = sec.Float64()
		w.MeanLoad = sec.Float64()
		w.MaxLoad = sec.Float64()
		w.P99Load = sec.Float64()
		w.P99LoadPerSpeed = sec.Float64()
		w.InFlight = sec.Int()
		w.InFlightWeight = sec.Float64()
		w.UpResources = sec.Int()
		res.Windows = append(res.Windows, w)
	}
	res.FinalInFlight = sec.Int()
	res.FinalWeight = sec.Float64()
	res.Lost = sec.Int64()
	res.Delayed = sec.Int64()
	res.Duplicated = sec.Int64()
	res.Deduped = sec.Int64()
	res.Retries = sec.Int64()
	res.Timeouts = sec.Int64()
	res.PartitionBlocked = sec.Int64()
	res.Bounced = sec.Int64()
	res.BouncedWeight = sec.Float64()
	res.Quarantined = sec.Int()
	res.FinalLedger = sec.Int()
	res.FinalLedgerWeight = sec.Float64()
	decodeHist(sec, &res.Sojourn)
	decodeHist(sec, &res.Hops)
	decodeHist(sec, &res.RetryLat)
	return sec.Err()
}
