//go:build race

package dynamic

// raceEnabled reports that this test binary runs under the race
// detector: allocation budgets are skipped there — the instrumented
// runtime slows rounds ~10×, so calibrated benchmark iteration counts
// drop and one-time engine construction stops amortizing below one
// alloc/op. The budgets are enforced by the regular CI test job and
// the benchrec allocs gate.
const raceEnabled = true
