package dynamic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// UpSet tracks which resources are currently part of the system,
// supporting O(1) membership, removal, re-insertion and uniform
// sampling of both the up and the down population — the churn
// bookkeeping. Keeping the complement explicit lets the engine rejoin
// a uniform down resource and bounce stray deliveries by walking just
// the down list instead of scanning all n resources every round.
type UpSet struct {
	list []int // compact list of up resources
	down []int // compact list of down resources
	pos  []int // resource → index into list (≥ 0) or ^index into down (< 0)
}

// NewUpSet returns an UpSet with all n resources up.
func NewUpSet(n int) *UpSet {
	u := &UpSet{list: make([]int, n), pos: make([]int, n)}
	for i := 0; i < n; i++ {
		u.list[i] = i
		u.pos[i] = i
	}
	return u
}

// N returns the number of up resources.
func (u *UpSet) N() int { return len(u.list) }

// At returns the i-th up resource (order is arbitrary but stable
// between mutations).
func (u *UpSet) At(i int) int { return u.list[i] }

// DownN returns the number of down resources.
func (u *UpSet) DownN() int { return len(u.down) }

// DownAt returns the i-th down resource (order arbitrary but stable
// between mutations).
func (u *UpSet) DownAt(i int) int { return u.down[i] }

// Contains reports whether resource r is up. Out-of-range indices are
// simply not up (a hotspot pointing outside the graph falls back to
// its uniform pick instead of crashing).
func (u *UpSet) Contains(r int) bool { return r >= 0 && r < len(u.pos) && u.pos[r] >= 0 }

// Random returns a uniformly random up resource. Panics when empty.
func (u *UpSet) Random(r *rng.Rand) int { return u.list[r.Intn(len(u.list))] }

// RandomDown returns a uniformly random down resource. Panics when
// every resource is up.
func (u *UpSet) RandomDown(r *rng.Rand) int { return u.down[r.Intn(len(u.down))] }

// Down removes resource r (swap-remove). Panics if already down.
func (u *UpSet) Down(r int) {
	i := u.pos[r]
	if i < 0 {
		panic(fmt.Sprintf("dynamic: resource %d already down", r))
	}
	last := len(u.list) - 1
	moved := u.list[last]
	u.list[i] = moved
	u.pos[moved] = i
	u.list = u.list[:last]
	u.pos[r] = ^len(u.down)
	u.down = append(u.down, r)
}

// Up re-inserts resource r. Panics if already up.
func (u *UpSet) Up(r int) {
	i := u.pos[r]
	if i >= 0 {
		panic(fmt.Sprintf("dynamic: resource %d already up", r))
	}
	di := ^i
	last := len(u.down) - 1
	moved := u.down[last]
	u.down[di] = moved
	u.pos[moved] = ^di
	u.down = u.down[:last]
	u.pos[r] = len(u.list)
	u.list = append(u.list, r)
}

// Dispatch routes an arriving task to one of the up resources.
type Dispatch interface {
	// Pick returns the destination resource for an arriving task of
	// weight w. Only up resources may be returned.
	Pick(s *core.State, up *UpSet, w float64, r *rng.Rand) int
	// Name identifies the policy in reports.
	Name() string
}

// UniformDispatch sends each arrival to a uniformly random up resource
// — the baseline "no ingress knowledge" routing.
type UniformDispatch struct{}

// Pick implements Dispatch.
func (UniformDispatch) Pick(s *core.State, up *UpSet, w float64, r *rng.Rand) int {
	return up.Random(r)
}

// Name identifies the policy.
func (UniformDispatch) Name() string { return "uniform" }

// HotspotDispatch sends every arrival to one ingress resource — the
// dynamic analogue of the paper's single-source placement, the worst
// case that makes the balancing protocol do all the spreading. If the
// hotspot is down, arrivals fall back to a uniform pick.
type HotspotDispatch struct {
	Resource int
}

// Pick implements Dispatch.
func (h HotspotDispatch) Pick(s *core.State, up *UpSet, w float64, r *rng.Rand) int {
	if up.Contains(h.Resource) {
		return h.Resource
	}
	return up.Random(r)
}

// Name identifies the policy.
func (h HotspotDispatch) Name() string { return fmt.Sprintf("hotspot(r=%d)", h.Resource) }

// PowerOfD samples D up resources uniformly and routes to the least
// loaded — the classic two-choice dispatcher (D = 2), included so the
// dynamic experiments can separate what the dispatcher contributes
// from what threshold migration contributes.
type PowerOfD struct {
	D int // samples per arrival, ≥ 1
}

// Pick implements Dispatch.
func (p PowerOfD) Pick(s *core.State, up *UpSet, w float64, r *rng.Rand) int {
	if p.D < 1 {
		panic("dynamic: PowerOfD.D must be >= 1")
	}
	best := up.Random(r)
	for i := 1; i < p.D; i++ {
		c := up.Random(r)
		if s.Load(c) < s.Load(best) {
			best = c
		}
	}
	return best
}

// Validate implements the optional config check.
func (p PowerOfD) Validate() error {
	if p.D < 1 {
		return fmt.Errorf("dynamic: PowerOfD.D %d must be >= 1", p.D)
	}
	return nil
}

// Name identifies the policy.
func (p PowerOfD) Name() string { return fmt.Sprintf("power-of-%d", p.D) }
