package dynamic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// UpSet tracks which resources are currently part of the system,
// supporting O(1) membership, removal, re-insertion and uniform
// sampling of both the up and the down population — the churn
// bookkeeping. Keeping the complement explicit lets the engine rejoin
// a uniform down resource and bounce stray deliveries by walking just
// the down list instead of scanning all n resources every round.
type UpSet struct {
	list []int // compact list of up resources
	down []int // compact list of down resources
	pos  []int // resource → index into list (≥ 0) or ^index into down (< 0)
}

// NewUpSet returns an UpSet with all n resources up.
func NewUpSet(n int) *UpSet {
	u := &UpSet{list: make([]int, n), pos: make([]int, n)}
	for i := 0; i < n; i++ {
		u.list[i] = i
		u.pos[i] = i
	}
	return u
}

// N returns the number of up resources.
func (u *UpSet) N() int { return len(u.list) }

// At returns the i-th up resource (order is arbitrary but stable
// between mutations).
func (u *UpSet) At(i int) int { return u.list[i] }

// DownN returns the number of down resources.
func (u *UpSet) DownN() int { return len(u.down) }

// DownAt returns the i-th down resource (order arbitrary but stable
// between mutations).
func (u *UpSet) DownAt(i int) int { return u.down[i] }

// Contains reports whether resource r is up. Out-of-range indices are
// simply not up (a hotspot pointing outside the graph falls back to
// its uniform pick instead of crashing).
func (u *UpSet) Contains(r int) bool { return r >= 0 && r < len(u.pos) && u.pos[r] >= 0 }

// Random returns a uniformly random up resource. Panics when empty.
func (u *UpSet) Random(r *rng.Rand) int { return u.list[r.Intn(len(u.list))] }

// RandomDown returns a uniformly random down resource. Panics when
// every resource is up.
func (u *UpSet) RandomDown(r *rng.Rand) int { return u.down[r.Intn(len(u.down))] }

// Down removes resource r (swap-remove). Panics if already down.
func (u *UpSet) Down(r int) {
	i := u.pos[r]
	if i < 0 {
		panic(fmt.Sprintf("dynamic: resource %d already down", r))
	}
	last := len(u.list) - 1
	moved := u.list[last]
	u.list[i] = moved
	u.pos[moved] = i
	u.list = u.list[:last]
	u.pos[r] = ^len(u.down)
	u.down = append(u.down, r)
}

// Up re-inserts resource r. Panics if already up.
func (u *UpSet) Up(r int) {
	i := u.pos[r]
	if i >= 0 {
		panic(fmt.Sprintf("dynamic: resource %d already up", r))
	}
	di := ^i
	last := len(u.down) - 1
	moved := u.down[last]
	u.down[di] = moved
	u.pos[moved] = ^di
	u.down = u.down[:last]
	u.pos[r] = len(u.list)
	u.list = append(u.list, r)
}

// Dispatch routes an arriving task to one of the up resources.
type Dispatch interface {
	// Pick returns the destination resource for an arriving task of
	// weight w. speeds is the per-resource speed profile (nil on
	// homogeneous fleets) — load-aware policies should compare
	// load-per-speed, not raw load, so a fast machine's longer queue is
	// not mistaken for congestion. Only up resources may be returned.
	Pick(s *core.State, up *UpSet, speeds []float64, w float64, r *rng.Rand) int
	// Name identifies the policy in reports.
	Name() string
}

// UniformDispatch sends each arrival to a uniformly random up resource
// — the baseline "no ingress knowledge" routing.
type UniformDispatch struct{}

// Pick implements Dispatch.
func (UniformDispatch) Pick(s *core.State, up *UpSet, speeds []float64, w float64, r *rng.Rand) int {
	return up.Random(r)
}

// Name identifies the policy.
func (UniformDispatch) Name() string { return "uniform" }

// HotspotDispatch sends every arrival to one ingress resource — the
// dynamic analogue of the paper's single-source placement, the worst
// case that makes the balancing protocol do all the spreading. If the
// hotspot is down, arrivals fall back to a uniform pick.
type HotspotDispatch struct {
	Resource int
}

// Pick implements Dispatch.
func (h HotspotDispatch) Pick(s *core.State, up *UpSet, speeds []float64, w float64, r *rng.Rand) int {
	if up.Contains(h.Resource) {
		return h.Resource
	}
	return up.Random(r)
}

// Name identifies the policy.
func (h HotspotDispatch) Name() string { return fmt.Sprintf("hotspot(r=%d)", h.Resource) }

// PowerOfD samples D up resources uniformly and routes to the least
// loaded — the classic two-choice dispatcher (D = 2), included so the
// dynamic experiments can separate what the dispatcher contributes
// from what threshold migration contributes. On heterogeneous fleets
// the samples are compared by load-per-speed (x_c/s_c), the quantity
// the speed-proportional thresholds equalise, so the dispatcher and
// the balancer pull toward the same fixed point.
type PowerOfD struct {
	D int // samples per arrival, ≥ 1
}

// Pick implements Dispatch.
func (p PowerOfD) Pick(s *core.State, up *UpSet, speeds []float64, w float64, r *rng.Rand) int {
	if p.D < 1 {
		panic("dynamic: PowerOfD.D must be >= 1")
	}
	best := up.Random(r)
	if speeds == nil {
		for i := 1; i < p.D; i++ {
			c := up.Random(r)
			if s.Load(c) < s.Load(best) {
				best = c
			}
		}
		return best
	}
	for i := 1; i < p.D; i++ {
		c := up.Random(r)
		if s.Load(c)/speeds[c] < s.Load(best)/speeds[best] {
			best = c
		}
	}
	return best
}

// Validate implements the optional config check.
func (p PowerOfD) Validate() error {
	if p.D < 1 {
		return fmt.Errorf("dynamic: PowerOfD.D %d must be >= 1", p.D)
	}
	return nil
}

// Name identifies the policy.
func (p PowerOfD) Name() string { return fmt.Sprintf("power-of-%d", p.D) }

// SpeedWeighted routes each arrival to an up resource drawn with
// probability proportional to its speed — the "faster machines take
// proportionally more ingress" baseline for heterogeneous fleets,
// which hands the dispatcher exactly the speed-proportional split the
// thresholds target. On a homogeneous fleet (nil speeds) it degrades
// to the uniform pick.
//
// Implemented by exact rejection sampling against the fleet-wide
// maximum speed: expected draws per arrival are s_max·n_up/S_up — a
// property of the profile, independent of n, and a small constant for
// realistic spreads. The worst case is s_max/s_min draws (an extreme
// spread whose fast class is down, or one fast machine in a sea of
// slow ones); the sampler stays exact rather than capping the loop,
// because a silent fallback would skew ingress away from the
// speed-proportional split precisely on the skewed profiles that need
// it most.
//
// A SpeedWeighted value is stateful (it caches the fleet max speed,
// primed by the engine at run start): like tuners, use a fresh value
// per concurrent run — sharing one across simultaneous runs is a data
// race.
type SpeedWeighted struct {
	// The cached fleet max is keyed by the profile's identity, not
	// computed just once, so a value reused across sequential runs with
	// different speed profiles re-scans instead of skewing the
	// acceptance ratio with a stale bound.
	maxSpeed float64
	profile  *float64 // first element of the cached profile
	n        int
}

// Prime computes and caches the fleet max for the given profile. The
// engine calls it once at run start so the hot path never writes the
// cache; calling it is optional for direct library use (Pick primes
// lazily).
func (sw *SpeedWeighted) Prime(speeds []float64) {
	sw.maxSpeed = 0
	for _, sp := range speeds {
		if sp > sw.maxSpeed {
			sw.maxSpeed = sp
		}
	}
	if len(speeds) > 0 {
		sw.profile = &speeds[0]
	} else {
		sw.profile = nil
	}
	sw.n = len(speeds)
}

// Pick implements Dispatch.
func (sw *SpeedWeighted) Pick(s *core.State, up *UpSet, speeds []float64, w float64, r *rng.Rand) int {
	if len(speeds) == 0 {
		return up.Random(r)
	}
	if sw.profile != &speeds[0] || sw.n != len(speeds) {
		sw.Prime(speeds)
	}
	for {
		c := up.Random(r)
		if speeds[c] == sw.maxSpeed || r.Float64()*sw.maxSpeed < speeds[c] {
			return c
		}
	}
}

// Name identifies the policy.
func (*SpeedWeighted) Name() string { return "speed-weighted" }
