package dynamic

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Churn-event ingestion: scripted failure schedules — hand-written or
// exported from a compiled recovery.FailureModel — load from files in
// the engine's usual two line formats:
//
//	CSV:   round,every,down,up      (optional header, '#' comments;
//	                                 random-count bursts only)
//	JSONL: {"round":40,"down_list":[0,1,2]}   one event per line, with
//	       optional "every", "down", "up", "down_list", "up_list" keys
//
// Beyond per-field parsing, the loader runs the full ValidateEvents
// schedule check — killing an already-down resource or reviving an
// already-up one is a config error, not a mid-run surprise — and maps
// the offending event back to its source line, so a broken schedule
// fails with "line 7: round 80: kills resource 3, which the schedule
// already downed".

// ReadEventsCSV parses round,every,down,up records from r.
func ReadEventsCSV(r io.Reader, n int) ([]ChurnEvent, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = 4
	cr.TrimLeadingSpace = true
	var events []ChurnEvent
	var lines []int
	first := true
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dynamic: events csv: %w", err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(fields[0]), "round") {
				continue // header row
			}
		}
		line, _ := cr.FieldPos(0)
		var ev ChurnEvent
		for i, dst := range []*int{&ev.Round, &ev.Every, &ev.Down, &ev.Up} {
			v, err := strconv.Atoi(strings.TrimSpace(fields[i]))
			if err != nil {
				return nil, fmt.Errorf("dynamic: events csv line %d: bad field %q", line, fields[i])
			}
			*dst = v
		}
		if ev.Down == 0 && ev.Up == 0 {
			return nil, fmt.Errorf("dynamic: events csv line %d: event fires nothing (no down/up counts)", line)
		}
		events = append(events, ev)
		lines = append(lines, line)
	}
	if err := validateLoadedEvents(events, lines, n); err != nil {
		return nil, fmt.Errorf("dynamic: events csv %w", err)
	}
	return events, nil
}

// eventRecord is one parsed JSONL churn event. Round is a pointer so
// an omitted round fails loudly instead of silently firing at round 0.
type eventRecord struct {
	Round    *int  `json:"round"`
	Every    int   `json:"every"`
	Down     int   `json:"down"`
	Up       int   `json:"up"`
	DownList []int `json:"down_list"`
	UpList   []int `json:"up_list"`
}

// ReadEventsJSONL parses one churn-event object per line.
func ReadEventsJSONL(r io.Reader, n int) ([]ChurnEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []ChurnEvent
	var lines []int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec eventRecord
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("dynamic: events jsonl line %d: %w", line, err)
		}
		if err := OneValuePerLine(dec); err != nil {
			return nil, fmt.Errorf("dynamic: events jsonl line %d: %w", line, err)
		}
		if rec.Round == nil {
			return nil, fmt.Errorf("dynamic: events jsonl line %d: record must carry \"round\"", line)
		}
		if rec.Down == 0 && rec.Up == 0 && len(rec.DownList) == 0 && len(rec.UpList) == 0 {
			return nil, fmt.Errorf("dynamic: events jsonl line %d: event fires nothing (no down/up counts or lists)", line)
		}
		events = append(events, ChurnEvent{
			Round: *rec.Round, Every: rec.Every, Down: rec.Down, Up: rec.Up,
			DownList: rec.DownList, UpList: rec.UpList,
		})
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dynamic: events jsonl: %w", err)
	}
	if err := validateLoadedEvents(events, lines, n); err != nil {
		return nil, fmt.Errorf("dynamic: events jsonl %w", err)
	}
	return events, nil
}

// validateLoadedEvents runs the schedule check and translates event
// indices into source line numbers. The horizon covers every one-shot
// round and many periods of any repeating event (ValidateEvents caps
// the walk), so load-time validation matches what a run would see.
func validateLoadedEvents(events []ChurnEvent, lines []int, n int) error {
	horizon := 1
	for _, ev := range events {
		if ev.Every > 0 {
			// Repeating events walk ValidateEvents' own firing cap; an
			// unbounded horizon lets them.
			horizon = math.MaxInt
			break
		}
		if ev.Round >= horizon && ev.Round < math.MaxInt {
			horizon = ev.Round + 1
		}
	}
	err := ValidateEvents(events, n, horizon)
	if err == nil {
		return nil
	}
	var ee *EventError
	if errors.As(err, &ee) && ee.Event >= 0 && ee.Event < len(lines) {
		return fmt.Errorf("line %d: round %d: %s", lines[ee.Event], ee.Round, ee.Msg)
	}
	return err
}

// LoadEventsFile reads a churn-event schedule for an n-resource system
// from path, picking the format by extension: .csv → CSV,
// .jsonl/.ndjson/.json → JSONL.
func LoadEventsFile(path string, n int) ([]ChurnEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dynamic: events: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadEventsCSV(f, n)
	case ".jsonl", ".ndjson", ".json":
		return ReadEventsJSONL(f, n)
	default:
		return nil, fmt.Errorf("dynamic: events %s: unknown extension %q (want .csv, .jsonl, .ndjson or .json)", path, ext)
	}
}
