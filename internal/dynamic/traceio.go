package dynamic

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/task"
)

// Trace ingestion: production arrival logs replay through the engine
// as (round, weight) records. Two line formats are supported —
//
//	CSV:   round,weight        (optional "round,weight" header,
//	                            '#' comment lines allowed)
//	JSONL: {"round":12,"weight":2.5}   one object per line
//
// Records may arrive in any round order; the loader buckets them into
// Trace.Rounds. Weights are validated against the library's wmin ≥ 1
// normalisation up front, with line numbers in every error, so a bad
// log fails at load time instead of mid-replay.

// traceRecord is one parsed (round, weight) entry.
type traceRecord struct {
	Round  int
	Weight float64
}

// ReadTraceCSV parses round,weight records from r into a Trace.
func ReadTraceCSV(r io.Reader, label string) (Trace, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	var recs []traceRecord
	first := true
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace csv: %w", err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(fields[0]), "round") {
				continue // header row
			}
		}
		line, _ := cr.FieldPos(0)
		round, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace csv line %d: bad round %q", line, fields[0])
		}
		weight, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace csv line %d: bad weight %q", line, fields[1])
		}
		if err := checkTraceRecord(round, weight); err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace csv line %d: %w", line, err)
		}
		recs = append(recs, traceRecord{Round: round, Weight: weight})
	}
	return bucketTrace(recs, label), nil
}

// ReadTraceJSONL parses one {"round":r,"weight":w} object per line.
func ReadTraceJSONL(r io.Reader, label string) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []traceRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// Pointer fields so a record that omits a key fails loudly
		// instead of silently landing in round 0.
		var rec struct {
			Round  *int     `json:"round"`
			Weight *float64 `json:"weight"`
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace jsonl line %d: %w", line, err)
		}
		if err := OneValuePerLine(dec); err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace jsonl line %d: %w", line, err)
		}
		if rec.Round == nil || rec.Weight == nil {
			return Trace{}, fmt.Errorf("dynamic: trace jsonl line %d: record must carry both \"round\" and \"weight\"", line)
		}
		if err := checkTraceRecord(*rec.Round, *rec.Weight); err != nil {
			return Trace{}, fmt.Errorf("dynamic: trace jsonl line %d: %w", line, err)
		}
		recs = append(recs, traceRecord{Round: *rec.Round, Weight: *rec.Weight})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("dynamic: trace jsonl: %w", err)
	}
	return bucketTrace(recs, label), nil
}

// LoadTraceFile reads a trace from path, picking the format by
// extension: .csv → CSV, .jsonl/.ndjson/.json → JSONL. The trace label
// defaults to the file's base name.
func LoadTraceFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("dynamic: trace: %w", err)
	}
	defer f.Close()
	label := filepath.Base(path)
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadTraceCSV(f, label)
	case ".jsonl", ".ndjson", ".json":
		return ReadTraceJSONL(f, label)
	default:
		return Trace{}, fmt.Errorf("dynamic: trace %s: unknown extension %q (want .csv, .jsonl, .ndjson or .json)", path, ext)
	}
}

func checkTraceRecord(round int, weight float64) error {
	if round < 0 {
		return fmt.Errorf("negative round %d", round)
	}
	if !task.ValidWeight(weight) {
		return fmt.Errorf("weight %v is below 1 (or not finite)", weight)
	}
	return nil
}

// bucketTrace groups records by round, preserving file order within a
// round (the order tasks of one round enter the dispatcher).
func bucketTrace(recs []traceRecord, label string) Trace {
	maxRound := -1
	for _, rec := range recs {
		if rec.Round > maxRound {
			maxRound = rec.Round
		}
	}
	rounds := make([][]float64, maxRound+1)
	for _, rec := range recs {
		rounds[rec.Round] = append(rounds[rec.Round], rec.Weight)
	}
	return Trace{Rounds: rounds, Label: label}
}
