package dynamic

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/walk"
)

// lifecycleConfig is the lifecycle-tracing workload: the golden
// churn+faults mix (evacuations, bounced deliveries, partition cuts,
// loss/retry/timeout, delays) so every hop cause appears in the
// stream, with a quarter of the tasks sampled.
func lifecycleConfig(g *graph.Graph, n int, seed uint64, workers int) Config {
	quarter := make([]int, n/4)
	for i := range quarter {
		quarter[i] = i
	}
	cfg := goldenConfig(n, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		g, Churn{
			MinUp: n / 2,
			Events: []ChurnEvent{
				{Round: 60, Down: n / 2},
				{Round: 150, Up: n / 2},
			},
		}, seed, workers)
	cfg.Faults = &faults.Plan{
		Loss: 0.1, DelayProb: 0.1, DelayMax: 4, RetryBase: 1, RetryCap: 4, Timeout: 12,
		Partitions: []faults.Partition{{Start: 90, End: 130, Members: quarter}},
	}
	cfg.TraceSample = 0.25
	return cfg
}

// collectTrace runs cfg with a KindTrace subscription attached and
// returns the Result plus the record stream.
func collectTrace(t *testing.T, cfg Config) (Result, []trace.Record) {
	t.Helper()
	broker := obs.NewBroker()
	cfg.Obs = broker
	sub := broker.Subscribe(obs.SubOptions{Capacity: 1 << 17, Kinds: obs.Mask(obs.KindTrace)})
	res, err := Run(cfg)
	broker.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := sub.Dropped(); n > 0 {
		t.Fatalf("trace subscription dropped %d records; raise the test ring capacity", n)
	}
	evs := drainAll(sub)
	recs := make([]trace.Record, len(evs))
	for i := range evs {
		recs[i] = evs[i].Trace
	}
	return res, recs
}

// TestTracedLifecycleDeterminism is the golden tracing test: for seeds
// {1, 2, 3} and workers {1, 2, 4, 8}, a traced run's Result must be
// bit-identical to the untraced run's (tracing never perturbs the
// simulation), and the record stream itself must be identical across
// worker counts — ordering included. The workload exercises every hop
// cause; the stream must contain each of them.
func TestTracedLifecycleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("traced determinism matrix is not short")
	}
	const n = 200
	g := graph.RandomRegular(n, 8, rng.NewSeeded(21))
	for _, seed := range []uint64{1, 2, 3} {
		var refRecs []trace.Record
		for _, workers := range []int{1, 2, 4, 8} {
			plainCfg := lifecycleConfig(g, n, seed, workers)
			plainCfg.TraceSample = 0
			plain, err := Run(plainCfg)
			if err != nil {
				t.Fatalf("seed %d workers %d untraced: %v", seed, workers, err)
			}

			res, recs := collectTrace(t, lifecycleConfig(g, n, seed, workers))
			if !reflect.DeepEqual(res, plain) {
				t.Fatalf("seed %d workers %d: tracing changed the Result\ntraced   %+v\nuntraced %+v",
					seed, workers, res, plain)
			}
			if len(recs) == 0 {
				t.Fatalf("seed %d workers %d: no trace records at sample=0.25", seed, workers)
			}
			for i := range recs {
				if err := recs[i].Validate(); err != nil {
					t.Fatalf("seed %d workers %d: record %d invalid: %v (%+v)", seed, workers, i, err, recs[i])
				}
			}
			if workers == 1 {
				refRecs = recs
				causes := map[trace.Cause]int{}
				for i := range recs {
					if recs[i].Op == trace.OpHop {
						causes[recs[i].Cause]++
					}
				}
				for _, want := range []trace.Cause{
					trace.CauseProtocol, trace.CauseEvac, trace.CauseDelay,
					trace.CauseRetry, trace.CauseTimeout, trace.CausePartition,
				} {
					if causes[want] == 0 {
						t.Errorf("seed %d: no %s hops in the stream (causes: %v)", seed, want, causes)
					}
				}
				continue
			}
			if !reflect.DeepEqual(recs, refRecs) {
				m := len(recs)
				if len(refRecs) < m {
					m = len(refRecs)
				}
				for i := 0; i < m; i++ {
					if recs[i] != refRecs[i] {
						t.Fatalf("seed %d workers %d: record %d diverges from sequential\ngot  %+v\nwant %+v",
							seed, workers, i, recs[i], refRecs[i])
					}
				}
				t.Fatalf("seed %d workers %d: stream length %d, want %d", seed, workers, len(recs), len(refRecs))
			}
		}
	}
}

// TestTracedTimelineConsistency replays one traced run's stream as
// per-task timelines and checks the lifecycle invariants: every
// sampled life opens with an arrival and closes with a departure whose
// sojourn and hop totals match the timeline (task IDs recycle, so a
// task column holds many consecutive lives).
func TestTracedTimelineConsistency(t *testing.T) {
	const n = 200
	g := graph.RandomRegular(n, 8, rng.NewSeeded(21))
	res, recs := collectTrace(t, lifecycleConfig(g, n, 1, 4))

	type life struct {
		arriveRound int
		hops        int32
		open        bool
	}
	lives := map[int]*life{}
	departs := 0
	for i := range recs {
		r := &recs[i]
		l := lives[r.Task]
		switch r.Op {
		case trace.OpArrive:
			if l != nil && l.open {
				t.Fatalf("record %d: task %d arrived while already in system (%+v)", i, r.Task, r)
			}
			lives[r.Task] = &life{arriveRound: r.Round, open: true}
		case trace.OpDepart:
			if l == nil || !l.open {
				t.Fatalf("record %d: task %d departed without an open life (%+v)", i, r.Task, r)
			}
			if want := int32(r.Round - l.arriveRound); r.Sojourn != want {
				t.Fatalf("record %d: task %d sojourn %d, want %d (arrived %d, departed %d)",
					i, r.Task, r.Sojourn, want, l.arriveRound, r.Round)
			}
			if r.Hops != l.hops {
				t.Fatalf("record %d: task %d departed with hops=%d, timeline counted %d", i, r.Task, r.Hops, l.hops)
			}
			l.open = false
			departs++
		case trace.OpHop:
			if l == nil || !l.open {
				t.Fatalf("record %d: task %d hopped without an open life (%+v)", i, r.Task, r)
			}
			// Bounces and timeout re-homes leave the task in place
			// (From == To) and do not advance the hop count.
			if r.From != r.To {
				l.hops++
			}
			if r.Hops != l.hops {
				t.Fatalf("record %d: task %d hop count %d, timeline counted %d (%+v)", i, r.Task, r.Hops, l.hops, r)
			}
		case trace.OpLoss, trace.OpRetry:
			if l == nil || !l.open {
				t.Fatalf("record %d: task %d fault event without an open life (%+v)", i, r.Task, r)
			}
		}
	}
	if departs == 0 {
		t.Fatal("no completed lifecycles in the stream")
	}
	// The sampled departures are a subset of the run's; at 25% sampling
	// of thousands of departures both sides must be populated.
	if int64(departs) >= res.Departed {
		t.Fatalf("sampled departures %d >= total %d", departs, res.Departed)
	}
}

// TestTracedSteadyStateZeroAllocs extends the headline allocation
// budget to the tracing layer: steady-state rounds must allocate
// nothing both with tracing off (hists still maintained) and with
// sampling on and a broker attached (records are struct copies into a
// preallocated ring).
func TestTracedSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrating benchmark runs take ~1s each")
	}
	if raceEnabled {
		t.Skip("race instrumentation shrinks the calibrated iteration count, so one-time construction no longer amortises below 1 alloc/op")
	}
	g := graph.RandomRegular(256, 8, rng.NewSeeded(3))
	for _, tc := range []struct {
		name   string
		sample float64
	}{
		{"trace-off", 0},
		{"trace-sampled", 1.0 / 64},
	} {
		for _, workers := range []int{1, 2} {
			res := testing.Benchmark(func(b *testing.B) {
				broker := obs.NewBroker()
				broker.Subscribe(obs.SubOptions{Capacity: 1 << 16, Kinds: obs.Mask(obs.KindTrace)})
				cfg := Config{
					Graph:    g,
					Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
					Arrivals: Poisson{Rate: 0.8 * 256 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
					Service:  WeightProportional{Rate: 1},
					Tuner: &SelfTuner{Eps: 0.5, Steps: 2,
						Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
					Rounds:      b.N,
					Window:      1 << 30,
					Seed:        0x5eed,
					Workers:     workers,
					Obs:         broker,
					TraceSample: tc.sample,
				}
				b.ReportAllocs()
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
				broker.Close()
			})
			if allocs := res.AllocsPerOp(); allocs != 0 {
				t.Fatalf("%s workers=%d: steady-state round allocates %d times/op (%d B/op), want 0",
					tc.name, workers, allocs, res.AllocedBytesPerOp())
			}
		}
	}
}

// TestTraceCheckpointResume pins tracing across crash recovery: a run
// killed mid-flight and resumed from its last checkpoint must replay
// the exact trace-record and histogram-snapshot stream of the
// uninterrupted run — open timelines (arrival rounds, hop counts) and
// histogram state ride the snapshot.
func TestTraceCheckpointResume(t *testing.T) {
	const n, every, crashAt = 200, 50, 170
	g := graph.RandomRegular(n, 8, rng.NewSeeded(21))
	traceKinds := obs.Mask(obs.KindTrace, obs.KindTraceHist, obs.KindCheckpoint)

	run := func(workers int, crash int, snap []byte) (Result, []obs.Event, map[int][]byte, error) {
		cfg := lifecycleConfig(g, n, 5, workers)
		cfg.CheckpointEvery = every
		cfg.CrashAfterRound = crash
		broker := obs.NewBroker()
		cfg.Obs = broker
		sub := broker.Subscribe(obs.SubOptions{Capacity: 1 << 17, Kinds: traceKinds})
		snaps := map[int][]byte{}
		cfg.OnCheckpoint = func(round int, data []byte) error {
			snaps[round] = append([]byte(nil), data...)
			return nil
		}
		var res Result
		var err error
		if snap == nil {
			res, err = Run(cfg)
		} else {
			var eng *Engine
			eng, err = Resume(bytes.NewReader(snap), cfg)
			if err == nil {
				res, err = eng.Run()
				eng.Close()
			}
		}
		broker.Close()
		if n := sub.Dropped(); n > 0 {
			t.Fatalf("trace subscription dropped %d events", n)
		}
		return res, drainAll(sub), snaps, err
	}

	for _, workers := range []int{1, 4} {
		baseRes, baseEvs, baseSnaps, err := run(workers, 0, nil)
		if err != nil {
			t.Fatalf("workers %d baseline: %v", workers, err)
		}
		_, crashEvs, crashSnaps, err := run(workers, crashAt, nil)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("workers %d: crash run returned %v, want ErrCrashed", workers, err)
		}
		last := (crashAt / every) * every
		snap := crashSnaps[last]
		if snap == nil {
			t.Fatalf("workers %d: no checkpoint for round %d", workers, last)
		}
		resRes, resEvs, _, err := run(workers, 0, snap)
		if err != nil {
			t.Fatalf("workers %d resume: %v", workers, err)
		}
		if !reflect.DeepEqual(resRes, baseRes) {
			t.Fatalf("workers %d: resumed Result (histograms included) diverges\ngot  %+v\nwant %+v",
				workers, resRes, baseRes)
		}
		if !bytes.Equal(crashSnaps[last], baseSnaps[last]) {
			t.Fatalf("workers %d: checkpoint at round %d differs between baseline and crashed run", workers, last)
		}
		stream := append(prefixThroughCheckpoint(t, crashEvs, last), resEvs...)
		requireSameEvents(t, "trace stream", stream, baseEvs)
	}
}
