package dynamic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/task"
)

// listEventConfig is the scripted-list workload: a named block of
// resources dies at round 40 and rejoins at 80, under steady traffic.
func listEventConfig(n int, seed uint64, workers int, rehome RehomePolicy) Config {
	g := graph.Complete(n)
	downList := make([]int, n/4)
	for i := range downList {
		downList[i] = i // the "rack": resources 0..n/4-1
	}
	return Config{
		Graph:    g,
		Protocol: core.UserControlled{Alpha: 1},
		Arrivals: Poisson{Rate: 0.8 * float64(n) / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Rehome:   rehome,
		Tuner:    &OracleTuner{Eps: 0.5},
		Churn: Churn{
			Events: []ChurnEvent{
				{Round: 40, DownList: downList},
				{Round: 80, UpList: downList},
			},
		},
		Rounds:          120,
		Window:          30,
		Seed:            seed,
		Workers:         workers,
		CheckInvariants: true,
	}
}

// TestChurnEventLists pins the scripted-list semantics: exactly the
// listed resources go down (and later rejoin), their tasks are
// re-homed, and the run stays worker-count invariant.
func TestChurnEventLists(t *testing.T) {
	var ref Result
	for _, workers := range []int{1, 4} {
		res, err := Run(listEventConfig(80, 3, workers, nil))
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref = res
			if res.Downs != 20 || res.Ups != 20 {
				t.Fatalf("listed events: downs=%d ups=%d, want 20 each", res.Downs, res.Ups)
			}
			if res.Rehomed == 0 {
				t.Fatal("listed mass failure re-homed nothing")
			}
			if res.RehomedWeight <= 0 {
				t.Fatalf("re-homed %d tasks but RehomedWeight = %v", res.Rehomed, res.RehomedWeight)
			}
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("workers=%d diverges on listed events\ngot  %+v\nwant %+v", workers, res, ref)
		}
	}
}

// TestChurnEventListsAbsorbed pins the run-time drop rule: a listed
// kill of a resource the stochastic churn already took down is
// skipped (not counted, not crashed), and MinUp caps listed kills.
func TestChurnEventListsAbsorbed(t *testing.T) {
	cfg := listEventConfig(40, 9, 2, nil)
	// Heavy stochastic churn over the same range the lists name.
	cfg.Churn.LeaveProb = 0.9
	cfg.Churn.JoinProb = 0.9
	cfg.Churn.MinUp = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MinUp = 30 on n = 40: the 10-resource list kill at round 40 can
	// take at most the headroom; with the stochastic churn in the mix
	// the exact count varies, but the run must stay consistent (the
	// per-round invariant checks above did the real work).
	if res.Downs == 0 {
		t.Fatal("no churn happened at all")
	}
}

// TestRecoveryStats drives one clean failure episode and pins the
// transient metrics: episode round, loss size, evacuation load, the
// pre-failure baseline, a peak at or above the baseline, and a drain
// back to it.
func TestRecoveryStats(t *testing.T) {
	cfg := listEventConfig(100, 5, 2, nil)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("want exactly 1 recovery episode, got %d: %+v", len(res.Recoveries), res.Recoveries)
	}
	rs := res.Recoveries[0]
	if rs.Round != 40 || rs.Downs != 25 {
		t.Fatalf("episode at round %d with %d downs, want 40/25", rs.Round, rs.Downs)
	}
	if rs.EvacTasks <= 0 || rs.EvacWeight <= 0 {
		t.Fatalf("episode evacuated nothing: %+v", rs)
	}
	if rs.EvacTasks > res.Rehomed || rs.EvacWeight > res.RehomedWeight+1e-9 {
		t.Fatalf("episode evac (%d, %v) exceeds run totals (%d, %v)",
			rs.EvacTasks, rs.EvacWeight, res.Rehomed, res.RehomedWeight)
	}
	// A non-immediate drain means at least one tracked round sat above
	// the baseline, so the peak must exceed it; an immediate drain
	// (DrainRounds 0) legitimately peaks at or below the baseline.
	if rs.DrainRounds > 0 && rs.PeakOverload <= rs.BaselineOverload {
		t.Fatalf("drained after %d rounds but peak %v never exceeded baseline %v",
			rs.DrainRounds, rs.PeakOverload, rs.BaselineOverload)
	}
	if !rs.Drained() {
		t.Fatalf("oracle-tuned run never drained: %+v", rs)
	}
	if got := res.PeakPostFailureOverload(); got != rs.PeakOverload {
		t.Fatalf("PeakPostFailureOverload() = %v, want %v", got, rs.PeakOverload)
	}
	if got := res.MeanDrainRounds(); got != float64(rs.DrainRounds) {
		t.Fatalf("MeanDrainRounds() = %v, want %v", got, rs.DrainRounds)
	}
}

// TestRecoveryStatsStochasticChurn pins the episode gate: per-round
// stochastic churn (LeaveProb) must NOT open recovery episodes — under
// continuous churn they would be censored one-machine noise growing
// Result.Recoveries without bound.
func TestRecoveryStatsStochasticChurn(t *testing.T) {
	cfg := listEventConfig(60, 21, 1, nil)
	cfg.Churn = Churn{LeaveProb: 0.5, JoinProb: 0.5, MinUp: 30}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Downs == 0 {
		t.Fatal("stochastic churn never fired")
	}
	if len(res.Recoveries) != 0 {
		t.Fatalf("stochastic churn opened %d recovery episodes, want 0", len(res.Recoveries))
	}
}

// TestRecoveryStatsCensored pins the censoring rules: a failure in the
// run's last round leaves an open episode that must be closed as
// censored, and summary helpers must not choke on it.
func TestRecoveryStatsCensored(t *testing.T) {
	cfg := listEventConfig(60, 7, 1, nil)
	cfg.Churn.Events = []ChurnEvent{{Round: 119, Down: 15}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("want 1 episode, got %+v", res.Recoveries)
	}
	rs := res.Recoveries[0]
	if rs.Round != 119 {
		t.Fatalf("episode round %d, want 119", rs.Round)
	}
	if rs.Drained() && rs.DrainRounds != 0 {
		t.Fatalf("last-round episode cannot drain later than its own round: %+v", rs)
	}
	if !rs.Drained() && !math.IsNaN(res.MeanDrainRounds()) {
		t.Fatalf("MeanDrainRounds over censored-only episodes = %v, want NaN", res.MeanDrainRounds())
	}
}

// TestRehomePoliciesDeterministic runs the in-package policies through
// the listed mass failure across worker counts: every policy must be
// bit-identical to its own sequential run, and the load-aware policy
// must actually change the outcome relative to uniform.
func TestRehomePoliciesDeterministic(t *testing.T) {
	build := func(p RehomePolicy) RehomePolicy { return p }
	policies := map[string]func() RehomePolicy{
		"uniform":  func() RehomePolicy { return build(UniformRehome{}) },
		"power2":   func() RehomePolicy { return build(PowerOfDRehome{D: 2}) },
		"speedwtd": func() RehomePolicy { return build(&SpeedWeightedRehome{}) },
	}
	speeds := speedProfile(80)
	var uniformRef, power2Ref Result
	for name, mk := range policies {
		for _, seed := range []uint64{1, 2} {
			var ref Result
			for _, workers := range []int{1, 2, 4} {
				cfg := listEventConfig(80, seed, workers, mk())
				cfg.Speeds = speeds
				cfg.CheckInvariants = workers == 1
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", name, seed, workers, err)
				}
				if workers == 1 {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s seed %d: workers=%d diverges from sequential run", name, seed, workers)
				}
			}
			if seed == 1 {
				switch name {
				case "uniform":
					uniformRef = ref
				case "power2":
					power2Ref = ref
				}
			}
		}
	}
	if reflect.DeepEqual(uniformRef, power2Ref) {
		t.Fatal("power-of-2 re-homing produced the identical run to uniform — the policy is not wired in")
	}
}

// TestNilRehomeMatchesUniform pins the extraction: an explicit
// UniformRehome must replay the nil-policy (default) run bit for bit —
// the pre-policy engine's behaviour.
func TestNilRehomeMatchesUniform(t *testing.T) {
	a, err := Run(listEventConfig(60, 11, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(listEventConfig(60, 11, 2, UniformRehome{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("UniformRehome diverges from the nil-policy default")
	}
}

// TestOnLanesTelemetry pins the exchange backpressure hook: with a
// range-capable protocol every routed move — protocol migrations AND
// churn evacuations — shows up in the lane matrix, the reports arrive
// on the rebalance cadence, and enabling the hook does not change the
// run.
func TestOnLanesTelemetry(t *testing.T) {
	build := func(hook func(int, int, []int64)) Config {
		g := graph.Complete(120)
		cfg := listEventConfig(120, 13, 4, nil)
		cfg.Graph = g
		cfg.RebalanceEvery = 30
		cfg.OnLanes = hook
		return cfg
	}
	ref, err := Run(build(nil))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	reports := 0
	res, err := Run(build(func(round, workers int, counts []int64) {
		reports++
		if round%30 != 0 {
			t.Fatalf("lane report at round %d with period 30", round)
		}
		if workers != 4 || len(counts) != 16 {
			t.Fatalf("lane report shape: workers=%d len=%d", workers, len(counts))
		}
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative lane count in %v", counts)
			}
			total += c
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if reports != 4 {
		t.Fatalf("OnLanes fired %d times over 120 rounds at period 30", reports)
	}
	if want := res.Migrations + res.Rehomed; total != want {
		t.Fatalf("lane counts sum to %d, want migrations+rehomed = %d", total, want)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("enabling OnLanes changed the run")
	}
}
