package dynamic

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/trace"
)

// The sharded round pipeline. The n resources are partitioned into
// Workers contiguous shards that live on a persistent worker pool
// (internal/par); every O(n) sweep — service and departures, the
// tuner's decay and diffusion passes, the protocol's propose phase —
// AND every O(moves) cross-shard effect — migration delivery, churn
// evacuation — runs shard-local with per-shard scratch buffers.
// Cross-shard moves travel through a per-destination-shard exchange
// (core.Exchange): the propose/evacuate phase routes each shard's
// accepted moves into (source, destination)-shard lanes, and a second
// parallel phase has every destination shard k-way-merge and apply its
// own inbound lanes, so delivery is O(moves/shard) parallel instead of
// the former O(moves) sequential sort-and-push barrier. Arrivals stay
// sequential by design: their streams are global, ID assignment is
// order-sensitive, and load-aware dispatch must observe earlier
// same-round arrivals; they cost O(arrivals) with O(1) per-task work,
// which the sharded sweeps dwarf.
//
// Determinism is the design constraint, and it is enforced by three
// rules:
//
//  1. Randomness is only ever drawn from per-resource streams (inside
//     a shard phase, for the resource being processed — service draws,
//     propose draws, and a lost resource's re-home draws all ride the
//     resource's own stream) or from the engine's sequential streams
//     (arrivals, dispatch, churn selection) outside the parallel
//     phases. No stream is ever shared across shards.
//  2. A shard phase writes only shard-owned state: its resources'
//     stacks, its tasks' location entries, its scratch buffers. The
//     one shared aggregate — the overloaded-resource counter — is an
//     integer updated atomically, so its barrier-time value is
//     independent of interleaving.
//  3. Every floating-point reduction runs in a canonical order that
//     does not depend on the shard partition: departures settle in
//     ascending resource order, migrations deliver in (destination,
//     task ID) order with MovedWeight folded as ascending-resource
//     partial sums (see core.Exchange), and window snapshots scan the
//     up list. Shard-concatenation order never feeds a float sum.
//
// Together these make the run a pure function of (Config minus
// Workers/RebalanceEvery), which the cross-worker-count golden tests
// pin — including mass-failure rounds that evacuate a thousand
// resources at once. Because every phase produces identical output for
// ANY contiguous partition, the engine is free to move the shard
// boundaries at runtime: it times each shard's phases and periodically
// re-cuts the partition so measured per-shard cost equalises
// (par.Balance), which keeps skewed workloads from bottlenecking on
// one worker without touching the determinism contract.
//
// The steady-state hot path is also allocation-free: arrival weights,
// departure indices, evacuation lists, migration buffers, exchange
// lanes and metric snapshots all live in reusable engine- or
// shard-owned buffers, task IDs (and the arrays indexed by them) are
// recycled via the task set's free list, and the pool dispatches
// phases without allocating.

// shard is one worker's slice of the resource range plus its scratch.
type shard struct {
	lo, hi    int
	depIdx    []int            // service departure-index scratch
	departed  []task.Task      // tasks departed this round, resource-ascending
	depFrom   []int32          // each departure's resource (locations clear on removal)
	evacTasks []task.Task      // evacuation pop scratch
	evacMoves []core.Migration // evacuation re-home moves
	traceRecs []trace.Record   // sampled-task records found in this shard's parallel phase
	sc        core.ProposeScratch
}

// rebalanceDefault is the measured-cost shard-resize period when
// Config.RebalanceEvery is zero.
const rebalanceDefault = 64

type engine struct {
	cfg       Config
	n         int
	window    int
	minUp     int
	speeds    []float64 // per-resource speeds; nil = homogeneous
	dispatch  Dispatch
	rehome    RehomePolicy       // never nil; UniformRehome{} by default
	rehomeObs RehomeObserver     // non-nil when the policy tracks the up set
	proto     core.RangeProposer // nil → sequential Protocol.Step fallback
	ptuner    PooledTuner        // nil → sequential Tuner.Refresh

	s  *core.State
	ts *task.Set
	up *UpSet
	// reach is the REACHABLE up set: up minus the resources isolated by
	// an active fault-plan partition window. Arrivals dispatch into it
	// and the tuner refreshes over it, so thresholds pre-compensate for
	// unreachable capacity during a partition. It aliases up whenever the
	// run has no partition windows, so the fault-free path costs nothing.
	reach *UpSet

	// inj is the message-fault injector (nil on fault-free runs): it
	// filters the propose phase's migration traffic, runs the in-flight
	// retry ledger and the delay wheel, and scripts partition windows.
	inj      *faults.Injector
	curRound int // round in progress, read by the parallel propose phase

	// Flapping-resource quarantine (Config.Quarantine): per-resource
	// churn-transition counts over a tumbling window; a resource that
	// flaps Flaps times is held down for Cooloff rounds, its deferred
	// rejoin re-applied when the hold expires. All sequential churn-phase
	// state.
	quarCfg        Quarantine
	flapCnt        []int32
	quarUntil      []int32 // round the hold-down expires; 0 = not quarantined
	quarWantUp     []bool  // a rejoin arrived during the hold
	quarActive     []int   // currently quarantined resources, entry order
	quarForcedDown int     // hold-down evictions this round (feeds evacuation)

	pool   *par.Pool
	shards []shard
	exch   *core.Exchange
	bounds []int // current shard boundaries, len(shards)+1

	// Measured-cost shard sizing and phase profiling: per-shard
	// per-phase accumulated nanos (measured whenever rebalancing or a
	// broker wants them), rebalanced every rebalanceEvery rounds
	// (< 0 = disabled). Boundary placement never affects results, only
	// the work split.
	rebalanceEvery int
	phaseNanos     [][obs.NumPhases]int64
	seqNanos       [obs.NumPhases]int64 // engine-level phases (arrivals, tune)
	costBuf        []float64            // per-resource cost scratch (lazily sized n)
	boundsBuf      []int                // par.Balance output scratch
	statsBuf       []ShardStat          // OnRebalance scratch

	// Streaming observability (nil broker = disabled): events are
	// published from the engine's sequential sections only, via the
	// reusable ev buffer so the hot path allocates nothing. Telemetry
	// events (lanes, shard costs, phase timings) fire every
	// telemetryEvery rounds; window events ride flush; recovery events
	// fire as episodes open and close.
	broker         *obs.Broker
	domains        []obs.Domains
	ev             obs.Event
	telemetryEvery int
	// Per-shard window accumulators (broker runs only) and the
	// snapshot scratch the per-shard / per-domain window events reuse.
	wShardArr, wShardDep, wShardInb []int64
	shardLoadBuf, shardNormBuf      []float64
	domAgg                          [][]domAgg

	// Sequential engine streams, living above the per-resource streams
	// 0..n−1 (slot n+2 was the global service stream before service
	// randomness moved onto the per-resource streams).
	arrRand, dispRand, churnRand *rng.Rand

	remaining  []float64 // task ID → remaining service work
	weightsBuf []float64 // this round's arrival weights

	// External-input mode (Engine.Step): the live runtime stages the
	// round's admitted arrival weights and reconfiguration ops here and
	// round(t) consumes them in place of cfg.Arrivals / ahead of
	// cfg.Churn. The arrival stream (arrRand) is never touched in this
	// mode, so a lockstep replay of the recorded inputs reproduces the
	// live run bit-for-bit.
	extActive      bool
	extWeights     []float64
	extDown, extUp []int

	initialWeight float64
	res           Result

	// Recovery-episode tracker: a round that downs resources opens an
	// episode; it closes when the overload fraction returns to the
	// pre-failure baseline (drained) or when the next failure / run end
	// cuts it short (censored). All inputs are partition-invariant.
	prevOverload   float64 // overload fraction after the previous round
	recOpen        bool
	recCur         RecoveryStat
	evacTasksRound int64   // this round's evacuation moves
	evacWtRound    float64 // and their weight

	// Per-window accumulators and pooled snapshot buffers.
	wOverload                                     float64
	wMigrations, wRehomed, wArrivals, wDepartures int64
	windowStart                                   int
	loadBuf, sortBuf, normBuf                     []float64

	// Checkpointing (Config.CheckpointEvery / Engine.Checkpoint): the
	// encoder persists across checkpoints so steady-state rounds stay
	// allocation-free once its buffer reaches its high-water mark.
	// startRound is where run() enters the loop (non-zero after Resume);
	// nextRound tracks the boundary a manual Checkpoint would capture.
	ckptEnc    *snapshot.Encoder
	startRound int
	nextRound  int

	// Domain SLO alert tracker (Config.AlertBudget): per level, per
	// domain, the consecutive-window over-budget streak and whether an
	// alert is currently firing. Sequential flush-phase state.
	alertBudget float64
	alertK      int
	alertCnt    [][]int32
	alertActive [][]bool

	// Task-lifecycle tracing. arrT and hopCnt are the ALWAYS-ON
	// histogram state — task ID → arrival round and migration hops so
	// far, recycled with the ID — feeding Result.Sojourn/Hops at every
	// departure. traceOn (TraceSample > 0 with a broker attached)
	// additionally publishes KindTrace records for the sampled tasks:
	// whether a task is sampled is a stateless hash of (traceSeed, ID),
	// never the shard split, and every record is emitted from a
	// sequential section — parallel phases stage theirs in shard
	// scratch, drained in a canonical partition-invariant order.
	traceOn   bool
	traceSeed uint64
	arrT      []int32
	hopCnt    []int32
	traceBuf  []trace.Record // evacuation-record drain scratch (sorted by task ID)

	// Phase closures, bound once so pool dispatch allocates nothing.
	serviceFn, proposeFn, deliverFn, evacFn func(int)
}

// domAgg accumulates one failure domain's window snapshot.
type domAgg struct {
	up, down, over int
	load, max      float64
}

func newEngine(cfg Config) *engine {
	n := cfg.Graph.N()
	e := &engine{cfg: cfg, n: n}
	e.window = cfg.Window
	if e.window <= 0 {
		e.window = 100
	}
	e.dispatch = cfg.Dispatch
	if e.dispatch == nil {
		e.dispatch = UniformDispatch{}
	}
	e.rehome = cfg.Rehome
	if e.rehome == nil {
		e.rehome = UniformRehome{}
	}
	// The speed profile is copied so a caller mutating its slice cannot
	// desynchronise the engine, the tuner and the dispatcher mid-run.
	if cfg.Speeds != nil {
		e.speeds = append([]float64(nil), cfg.Speeds...)
		if sat, ok := cfg.Tuner.(SpeedAwareTuner); ok {
			sat.SetSpeeds(e.speeds)
		}
		// Prime speed-caching dispatchers and re-homers up front so the
		// round hot path (and the PARALLEL evacuation phase) only ever
		// reads their cache.
		if sw, ok := e.dispatch.(interface{ Prime([]float64) }); ok {
			sw.Prime(e.speeds)
		}
		if sw, ok := e.rehome.(interface{ Prime([]float64) }); ok {
			sw.Prime(e.speeds)
		}
	}
	e.minUp = cfg.Churn.MinUp
	if e.minUp <= 0 {
		e.minUp = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// Seed state. Thresholds start at zero; the tuner sets real ones in
	// round 0 before the first protocol step.
	placement := cfg.InitialPlacement
	if len(cfg.InitialWeights) > 0 {
		e.ts = task.NewSet(cfg.InitialWeights)
		if placement == nil {
			placement = make([]int, e.ts.M())
		}
	} else {
		e.ts = task.NewEmptySet()
		placement = nil
	}
	e.s = core.NewState(cfg.Graph, e.ts, placement,
		core.FixedVector{V: make([]float64, n), Label: "dynamic-init"}, cfg.Seed)

	e.arrRand = rng.Stream(cfg.Seed, uint64(n))
	e.dispRand = rng.Stream(cfg.Seed, uint64(n)+1)
	e.churnRand = rng.Stream(cfg.Seed, uint64(n)+3)

	e.up = NewUpSet(n)
	e.reach = e.up
	if cfg.Faults.Active() {
		e.inj = faults.NewInjector(cfg.Faults, n, workers, cfg.Seed)
		if len(cfg.Faults.Partitions) > 0 {
			e.reach = NewUpSet(n)
		}
	}
	e.quarCfg = cfg.Quarantine.withDefaults()
	if e.quarCfg.enabled() {
		e.flapCnt = make([]int32, n)
		e.quarUntil = make([]int32, n)
		e.quarWantUp = make([]bool, n)
	}
	if obs, ok := e.rehome.(RehomeObserver); ok {
		e.rehomeObs = obs
		obs.ResetUp(n)
	}
	e.remaining = make([]float64, e.ts.M())
	for i := 0; i < e.ts.M(); i++ {
		e.remaining[i] = e.ts.Weight(i)
	}
	e.initialWeight = e.ts.W()

	e.pool = par.NewPool(workers)
	e.shards = make([]shard, workers)
	e.bounds = make([]int, workers+1)
	for i := range e.shards {
		lo, hi := e.pool.Shard(n, i)
		e.shards[i] = shard{lo: lo, hi: hi}
		e.bounds[i] = lo
	}
	e.bounds[workers] = n
	e.exch = core.NewExchange(e.bounds)
	e.broker = cfg.Obs
	e.domains = cfg.Domains
	if cfg.OnLanes != nil || e.broker != nil {
		e.exch.EnableLaneStats()
	}
	e.rebalanceEvery = cfg.RebalanceEvery
	if e.rebalanceEvery == 0 {
		e.rebalanceEvery = rebalanceDefault
	}
	if e.rebalanceEvery > 0 && workers > 1 {
		// measured-cost rebalancing active
	} else {
		e.rebalanceEvery = -1
	}
	// The telemetry cadence tracks the rebalance cadence so lane and
	// phase reports line up with boundary moves; when rebalancing is off
	// (workers == 1, or pinned with RebalanceEvery < 0) an attached
	// broker still gets reports at the configured or default period.
	e.telemetryEvery = -1
	if e.broker != nil {
		switch {
		case e.rebalanceEvery > 0:
			e.telemetryEvery = e.rebalanceEvery
		case cfg.RebalanceEvery > 0:
			e.telemetryEvery = cfg.RebalanceEvery
		default:
			e.telemetryEvery = rebalanceDefault
		}
	}
	if e.rebalanceEvery > 0 || e.broker != nil {
		e.phaseNanos = make([][obs.NumPhases]int64, workers)
	}
	if e.broker != nil {
		e.wShardArr = make([]int64, workers)
		e.wShardDep = make([]int64, workers)
		e.wShardInb = make([]int64, workers)
		e.shardLoadBuf = make([]float64, 0, n)
		if cfg.Speeds != nil {
			e.shardNormBuf = make([]float64, 0, n)
		}
		e.domAgg = make([][]domAgg, len(e.domains))
		for i := range e.domains {
			e.domAgg[i] = make([]domAgg, len(e.domains[i].Names))
		}
		if cfg.AlertBudget > 0 && len(e.domains) > 0 {
			e.alertBudget = cfg.AlertBudget
			e.alertK = cfg.AlertWindows
			if e.alertK <= 0 {
				e.alertK = 1
			}
			e.alertCnt = make([][]int32, len(e.domains))
			e.alertActive = make([][]bool, len(e.domains))
			for i := range e.domains {
				e.alertCnt[i] = make([]int32, len(e.domains[i].Names))
				e.alertActive[i] = make([]bool, len(e.domains[i].Names))
			}
		}
	}
	if core.CanPropose(cfg.Protocol) {
		e.proto = cfg.Protocol.(core.RangeProposer)
	}
	if pt, ok := cfg.Tuner.(PooledTuner); ok {
		e.ptuner = pt
	}
	e.loadBuf = make([]float64, 0, n)
	e.sortBuf = make([]float64, 0, n)
	if e.speeds != nil {
		e.normBuf = make([]float64, 0, n)
	}
	// Lifecycle-histogram state always runs; record emission only with a
	// sampling rate and a broker. The trace seed is decorrelated from
	// every other stream of the run by its own salt.
	e.traceSeed = rng.Hash3(cfg.Seed, cfg.TraceSeed, 0x7ace5eed, 0)
	e.traceOn = cfg.TraceSample > 0 && e.broker != nil
	e.arrT = make([]int32, e.ts.M())
	e.hopCnt = make([]int32, e.ts.M())
	if e.traceOn && e.inj != nil {
		e.inj.SetTraceHook(e.traceHook)
	}
	e.serviceFn = e.serviceShard
	e.proposeFn = e.proposeShard
	e.deliverFn = e.deliverShard
	e.evacFn = e.evacShard
	return e
}

// sampled reports whether task id's lifecycle is traced — a stateless
// draw, identical for every worker count and across checkpoint/resume.
func (e *engine) sampled(id int) bool {
	return trace.Sampled(e.traceSeed, id, e.cfg.TraceSample)
}

// noteArrival resets task id's lifecycle state (IDs are recycled),
// growing the ID-indexed vectors alongside remaining.
func (e *engine) noteArrival(id, t int) {
	for id >= len(e.arrT) {
		e.arrT = append(e.arrT, 0)
		e.hopCnt = append(e.hopCnt, 0)
	}
	e.arrT[id] = int32(t)
	e.hopCnt[id] = 0
}

// emitTrace publishes one sampled-task lifecycle record. Sequential
// sections only.
func (e *engine) emitTrace(rec *trace.Record) {
	e.ev = obs.Event{Kind: obs.KindTrace, Round: rec.Round, Trace: *rec}
	e.broker.Publish(&e.ev)
}

// traceHook observes the injector's sequential fault events (Collect's
// losses and delay parks, Tick's retry attempts) for sampled tasks.
// The task is still in flight at every hook point, so its location
// entry still names the source resource.
func (e *engine) traceHook(kind faults.HookKind, round int, tk task.Task, src, dest int32, attempt int32) {
	if !e.sampled(tk.ID) {
		return
	}
	rec := trace.Record{Round: round, Task: tk.ID, From: src, To: dest, Attempt: attempt}
	switch kind {
	case faults.HookLoss:
		rec.Op, rec.Cause = trace.OpLoss, trace.CauseRetry
	case faults.HookDelay:
		rec.Op, rec.Cause = trace.OpLoss, trace.CauseDelay
	case faults.HookRetry:
		rec.Op, rec.Cause = trace.OpRetry, trace.CauseRetry
	}
	e.emitTrace(&rec)
}

// close releases the pool's goroutines.
func (e *engine) close() { e.pool.Close() }

// run executes the configured number of rounds (entering at startRound
// when the engine was restored from a checkpoint). It is a thin loop
// over the shared step/finish pair so the live runtime (internal/serve)
// and the lockstep simulator advance through the EXACT same code —
// that identity is what the twin-equivalence suite pins.
func (e *engine) run() (Result, error) {
	for t := e.startRound; t < e.cfg.Rounds; t++ {
		if err := e.step(t); err != nil {
			return e.res, err
		}
	}
	return e.finish()
}

// step runs round t plus all of its boundary work — window flush,
// telemetry/rebalance, checkpoint, scripted crash — and advances
// nextRound. It is the single round-granularity unit both run() and
// the external-input Engine.Step drive.
func (e *engine) step(t int) error {
	if err := e.round(t); err != nil {
		return err
	}
	e.nextRound = t + 1
	if (t+1)%e.window == 0 {
		e.flush(t + 1)
	}
	// Telemetry emission and measured-cost rebalancing share one
	// cadence (and one accumulator reset): a shared period means a
	// lane/phase report always describes exactly one rebalance
	// window, never a partial one.
	doTel := e.telemetryEvery > 0 && (t+1)%e.telemetryEvery == 0
	doReb := e.rebalanceEvery > 0 && (t+1)%e.rebalanceEvery == 0
	if doTel {
		e.emitTelemetry(t + 1)
	}
	if doReb {
		e.rebalance(t + 1)
	}
	if doTel || doReb {
		e.resetTelemetry()
	}
	// Checkpoint at the boundary, after the flush/telemetry/rebalance
	// hooks, so the snapshot captures a fully settled round. The crash
	// check runs after the checkpoint: a run killed at its checkpoint
	// round still leaves that round's snapshot behind.
	if e.cfg.CheckpointEvery > 0 && (t+1)%e.cfg.CheckpointEvery == 0 {
		if err := e.checkpoint(t + 1); err != nil {
			return err
		}
	}
	if e.cfg.CrashAfterRound > 0 && t+1 == e.cfg.CrashAfterRound {
		return ErrCrashed
	}
	return nil
}

// finish closes the run after the last stepped round (nextRound): the
// final window flush, censored recovery episodes, trailing telemetry,
// the fault counters and the conservation check. A run driven by
// Engine.Step may finish before cfg.Rounds — every tail computation
// uses the actually-reached round, so an early finish is exact.
func (e *engine) finish() (Result, error) {
	end := e.nextRound
	e.flush(end)
	if e.recOpen {
		e.res.Recoveries = append(e.res.Recoveries, e.recCur) // censored by run end
		e.emitRecovery(obs.KindRecoveryEnd, end)
		e.recOpen = false
	}
	// A trailing partial telemetry window still gets reported, so short
	// runs (and the tail of any run) see lane and phase series.
	if e.telemetryEvery > 0 && end%e.telemetryEvery != 0 {
		e.emitTelemetry(end)
		e.resetTelemetry()
	}
	e.res.Rounds = end
	e.res.FinalInFlight = e.ts.Live()
	e.res.FinalWeight = e.s.InFlightWeight()
	if e.inj != nil {
		c := e.inj.Counters()
		e.res.Lost = c.Lost
		e.res.Delayed = c.Delayed
		e.res.Duplicated = c.Duplicated
		e.res.Deduped = c.Deduped
		e.res.Retries = c.Retries
		e.res.Timeouts = c.Timeouts
		e.res.PartitionBlocked = c.PartitionBlocked
		e.res.FinalLedger, e.res.FinalLedgerWeight = e.s.InFlightLedger()
	}
	if err := checkConservation(e.s, e.initialWeight, e.res); err != nil {
		return e.res, fmt.Errorf("dynamic: %w", err)
	}
	return e.res, nil
}

// round advances the system by one open-system round.
func (e *engine) round(t int) error {
	s, up := e.s, e.up
	e.curRound = t

	// The pre-failure overload baseline for this round's potential
	// recovery episode, and the per-round evacuation accumulators.
	baseline := e.prevOverload
	e.evacTasksRound, e.evacWtRound = 0, 0
	e.quarForcedDown = 0

	// 0. Fault-plan partition windows open and close at the round
	// boundary: the injector recomputes its connectivity groups (only on
	// transition rounds) and the reachable set absorbs the deltas, so
	// dispatch and the tuner below already see the degraded fleet.
	if e.inj != nil {
		iso, rest := e.inj.StartRound(t)
		for _, r := range rest {
			if up.Contains(r) && !e.reach.Contains(r) {
				e.reach.Up(r)
			}
		}
		for _, r := range iso {
			if e.reach.Contains(r) {
				e.reach.Down(r)
			}
		}
	}
	// 0b. Quarantine bookkeeping: roll the tumbling flap window and
	// release the holds that expire this round (deferred rejoins apply
	// now, before this round's churn).
	if e.quarCfg.enabled() {
		e.quarTick(t)
	}

	// 1. Resource churn. Selecting WHICH resources leave or rejoin is
	// sequential (one global stream, cheap O(events)); evacuating the
	// failed resources' tasks — the expensive part of a mass failure —
	// is sharded below.
	downsThis, eventDowns := 0, 0
	// Externally scripted reconfiguration (Engine.Step ops) applies
	// ahead of config-driven churn, with scripted-event semantics:
	// drains open recovery episodes, MinUp is respected.
	if e.extActive && (len(e.extDown) > 0 || len(e.extUp) > 0) {
		downsThis, eventDowns = e.applyExtOps()
	}
	if e.cfg.Churn.enabled() {
		d, ed := e.applyChurn(t)
		downsThis += d
		eventDowns += ed
	}
	downsThis += e.quarForcedDown
	downed := downsThis > 0
	// 1b. Parallel evacuation: every task stranded on a down resource
	// is re-homed through the exchange, each lost resource drawing
	// destinations from its own deterministic re-home stream.
	if downed && e.evacPending() {
		e.evacuate(false)
	}

	// 2. Arrivals — sequential end to end: the arrival and dispatch
	// streams are global, ID assignment must happen in arrival order,
	// and load-aware dispatchers (PowerOfD) must observe the loads of
	// earlier same-round arrivals, so each task is placed immediately
	// after its pick. The work is O(arrivals) with O(1) per-task cost,
	// far below the O(n) sweeps the shards absorb.
	arrStart := e.seqStart()
	if e.extActive {
		// External-input mode: this round's batch was admitted by the
		// caller (Engine.Step). The arrival stream stays untouched.
		e.weightsBuf = append(e.weightsBuf[:0], e.extWeights...)
	} else {
		e.weightsBuf = appendNext(e.cfg.Arrivals, t, e.arrRand, e.weightsBuf[:0])
	}
	// During a partition window arrivals route into the reachable (main)
	// component only; if churn emptied it, fall back to the full up set
	// rather than stranding the round.
	reach := e.reach
	if reach.N() == 0 {
		reach = up
	}
	for _, w := range e.weightsBuf {
		dest := e.dispatch.Pick(s, reach, e.speeds, w, e.dispRand)
		tk := s.InsertTask(w, dest)
		e.setRemaining(tk.ID, w)
		e.noteArrival(tk.ID, t)
		e.res.Arrived++
		e.res.ArrivedWeight += w
		e.wArrivals++
		if e.wShardArr != nil {
			e.wShardArr[sort.SearchInts(e.bounds, dest+1)-1]++
		}
		if e.traceOn && e.sampled(tk.ID) {
			e.emitTrace(&trace.Record{Round: t, Task: tk.ID, Op: trace.OpArrive,
				From: -1, To: int32(dest), Weight: w})
		}
	}
	e.seqDone(obs.PhaseArrivals, arrStart)

	// 3a. Service and departures (up resources only), sharded: each
	// resource draws from its own stream and pops its own stack.
	e.pool.Run(len(e.shards), e.serviceFn)
	// 3b. Settle the shared accounting in canonical ascending-resource
	// order (shards are contiguous and ordered), so the weight totals
	// are identical for every worker count.
	for i := range e.shards {
		sh := &e.shards[i]
		if e.wShardDep != nil {
			e.wShardDep[i] += int64(len(sh.departed))
		}
		for j, tk := range sh.departed {
			soj, hops := int32(t)-e.arrT[tk.ID], e.hopCnt[tk.ID]
			e.res.Sojourn.Observe(int64(soj))
			e.res.Hops.Observe(int64(hops))
			if e.traceOn && e.sampled(tk.ID) {
				e.emitTrace(&trace.Record{Round: t, Task: tk.ID, Op: trace.OpDepart,
					From: sh.depFrom[j], To: -1, Weight: tk.Weight,
					Hops: hops, Sojourn: soj})
			}
			s.SettleDeparture(tk)
			e.res.Departed++
			e.res.DepartedWeight += tk.Weight
			e.wDepartures++
		}
		sh.departed = sh.departed[:0]
		sh.depFrom = sh.depFrom[:0]
	}

	// Settle the live-wmax cache at this consistent point (all
	// departures applied, nothing in limbo or mid-migration) so
	// neither the tuner nor the protocol recomputes it mid-phase.
	s.LiveWMax()

	// 4. Online threshold refresh, on the pool when the tuner supports
	// sharded sweeps.
	// The tuner refreshes over the REACHABLE set, so during a partition
	// window thresholds pre-compensate for the unreachable speed-mass
	// (reach aliases up on partition-free runs).
	tuneStart := e.seqStart()
	var thr []float64
	if e.ptuner != nil {
		thr = e.ptuner.RefreshPooled(t, s, reach, e.pool)
	} else {
		thr = e.cfg.Tuner.Refresh(t, s, reach)
	}
	if thr != nil {
		s.SetThresholds(thr)
	}
	e.seqDone(obs.PhaseTune, tuneStart)

	// 5. One protocol round: sharded propose phases route each shard's
	// accepted moves into per-destination-shard lanes, then every
	// destination shard merges and applies its own inbound lanes in
	// canonical (destination, task ID) order — no sequential delivery
	// section. Finish folds the stats in a partition-independent order
	// and advances the round.
	var st core.StepStats
	if e.proto != nil {
		e.pool.Run(len(e.shards), e.proposeFn)
		if e.traceOn {
			// Shards are contiguous and ordered, so a shard-ascending
			// drain is resource-ascending — the same canonical order for
			// every partition.
			for i := range e.shards {
				sh := &e.shards[i]
				for j := range sh.traceRecs {
					e.emitTrace(&sh.traceRecs[j])
				}
				sh.traceRecs = sh.traceRecs[:0]
			}
		}
		e.pool.Run(len(e.shards), e.deliverFn)
		st = e.exch.Finish(s, true)
		e.noteInbound()
	} else {
		st = e.cfg.Protocol.Step(s)
	}
	e.res.Migrations += int64(st.Migrations)
	e.res.MovedWeight += st.MovedWeight
	e.wMigrations += int64(st.Migrations)

	// 5b. Fault-layer settlement: fold the propose shards' loss/delay
	// scratches into the ledger and delay wheel (canonical shard-ascending
	// order), then deliver this round's due batch — wheel arrivals, retry
	// successes, timeout re-homes — through an extra exchange round. The
	// batch runs BEFORE the bounce step so a delivery to a since-failed
	// destination (or a timeout re-home to a dead source) evacuates
	// through the configured re-home policy this same round.
	if e.inj != nil {
		e.inj.Collect(t, s)
		if due := e.inj.Tick(t, s, up); len(due) > 0 {
			e.noteDue(t, due)
			e.exch.Route(0, due)
			for i := 1; i < len(e.shards); i++ {
				e.exch.Route(i, nil)
			}
			e.pool.Run(len(e.shards), e.deliverFn)
			dst := e.exch.Finish(s, false)
			e.noteInbound()
			e.res.Migrations += int64(dst.Migrations)
			e.res.MovedWeight += dst.MovedWeight
			e.wMigrations += int64(dst.Migrations)
		}
	}

	// 6. Bounce deliveries that landed on down resources — the same
	// sharded evacuation path as 1b (per-resource re-home streams, the
	// down list is only scanned to see whether anything is stranded).
	if up.DownN() > 0 && e.evacPending() {
		e.evacuate(true)
	}

	// 7. Metrics. Down resources are always empty here (bounced above)
	// and thresholds are non-negative, so the incremental all-resource
	// counter equals the overloaded count over up resources.
	frac := float64(s.OverloadedCount()) / float64(up.N())
	e.wOverload += frac

	// 7b. Recovery-episode bookkeeping: a SCRIPTED failure round opens
	// an episode (closing any still-open one as censored); an open
	// episode tracks its peak and closes once the overload fraction is
	// back at the pre-failure baseline. Per-round stochastic churn
	// (LeaveProb) does not open episodes — under continuous churn every
	// round would, drowning Recoveries in censored one-machine noise
	// and growing it without bound on long runs.
	if eventDowns > 0 {
		if e.recOpen {
			e.res.Recoveries = append(e.res.Recoveries, e.recCur)
			e.emitRecovery(obs.KindRecoveryEnd, t) // censored by the new failure
		}
		e.recCur = RecoveryStat{
			Round: t, Downs: downsThis,
			EvacTasks: e.evacTasksRound, EvacWeight: e.evacWtRound,
			BaselineOverload: baseline, DrainRounds: -1,
		}
		e.recOpen = true
		e.emitRecovery(obs.KindRecoveryStart, t)
	}
	if e.recOpen {
		if frac > e.recCur.PeakOverload {
			e.recCur.PeakOverload = frac
		}
		if frac <= e.recCur.BaselineOverload {
			e.recCur.DrainRounds = t - e.recCur.Round
			e.res.Recoveries = append(e.res.Recoveries, e.recCur)
			e.recOpen = false
			e.emitRecovery(obs.KindRecoveryEnd, t)
		}
	}
	e.prevOverload = frac

	if e.cfg.OnRound != nil {
		e.cfg.OnRound(t, s)
	}
	if e.cfg.CheckInvariants {
		if err := checkConservation(s, e.initialWeight, e.res); err != nil {
			return fmt.Errorf("dynamic: round %d: %w", t, err)
		}
		for i := 0; i < up.DownN(); i++ {
			if r := up.DownAt(i); s.Count(r) > 0 {
				return fmt.Errorf("dynamic: round %d: down resource %d holds %d tasks", t, r, s.Count(r))
			}
		}
	}
	return nil
}

// applyChurn runs round t's churn selection on the sequential churn
// stream: all failures first (each event's scripted DownList, then its
// random Down picks, then the stochastic leave), then all rejoins in
// the same order. A rejoin draw CAN resurrect a resource that failed
// earlier in the same round — its tasks simply stay put, since
// evacuation below only touches resources still down — so Downs and
// Ups both count the event even though no re-homing happened. A listed
// transition that has become moot at run time (the stochastic churn
// already downed the machine, or MinUp leaves no headroom) is skipped
// and NOT counted; ValidateEvents rejects schedules that conflict with
// themselves before the run starts. Returns the number of resources
// that went down, and how many of those a scripted event took (the
// count that opens recovery episodes).
func (e *engine) applyChurn(t int) (downs, eventDowns int) {
	up, c := e.up, &e.cfg.Churn
	for _, ev := range c.Events {
		if !ev.fires(t) {
			continue
		}
		for _, r := range ev.DownList {
			if up.N() <= e.minUp {
				break
			}
			if !up.Contains(r) {
				continue
			}
			e.downResource(r)
			downs++
			eventDowns++
		}
		for k := 0; k < ev.Down && up.N() > e.minUp; k++ {
			e.downResource(up.Random(e.churnRand))
			downs++
			eventDowns++
		}
	}
	if c.LeaveProb > 0 && up.N() > e.minUp && e.churnRand.Bool(c.LeaveProb) {
		e.downResource(up.Random(e.churnRand))
		downs++
	}
	for _, ev := range c.Events {
		if !ev.fires(t) {
			continue
		}
		for _, r := range ev.UpList {
			if up.Contains(r) {
				continue
			}
			e.upResource(r)
		}
		for k := 0; k < ev.Up && up.DownN() > 0; k++ {
			e.upResource(up.RandomDown(e.churnRand))
		}
	}
	if c.JoinProb > 0 && up.DownN() > 0 && e.churnRand.Bool(c.JoinProb) {
		e.upResource(up.RandomDown(e.churnRand))
	}
	return downs, eventDowns
}

// applyExtOps applies one Step call's scripted reconfiguration: all
// drains first (each respecting MinUp and skipping already-down
// resources, exactly like a scripted churn event's DownList), then all
// adds (skipping already-up resources). Drains count as event downs so
// they open recovery episodes, matching scripted-churn semantics. Runs
// on no randomness at all, so it is trivially replayable.
func (e *engine) applyExtOps() (downs, eventDowns int) {
	up := e.up
	for _, r := range e.extDown {
		if up.N() <= e.minUp {
			break
		}
		if !up.Contains(r) {
			continue
		}
		e.downResource(r)
		downs++
		eventDowns++
	}
	for _, r := range e.extUp {
		if up.Contains(r) {
			continue
		}
		e.upResource(r)
	}
	return downs, eventDowns
}

// downResource/upResource apply one churn transition, keeping the
// re-home policy's incremental up-set view (if it has one) and the
// reachable set in sync, and feeding the flapping quarantine. Both run
// only in the sequential churn phase.
func (e *engine) downResource(r int) {
	e.up.Down(r)
	if e.reach != e.up && e.reach.Contains(r) {
		e.reach.Down(r)
	}
	if e.rehomeObs != nil {
		e.rehomeObs.ResourceDown(r)
	}
	e.res.Downs++
	e.noteFlap(r)
}

func (e *engine) upResource(r int) {
	if e.flapCnt != nil && e.quarUntil[r] > int32(e.curRound) {
		// Held down by the quarantine: the rejoin is deferred until the
		// cool-off expires.
		e.quarWantUp[r] = true
		return
	}
	e.up.Up(r)
	if e.reach != e.up && !e.inj.Isolated(r) {
		e.reach.Up(r)
	}
	if e.rehomeObs != nil {
		e.rehomeObs.ResourceUp(r)
	}
	e.res.Ups++
	e.noteFlap(r)
}

// noteFlap counts one churn transition of resource r toward the
// quarantine threshold; crossing it holds the resource down for the
// cool-off (evicting it if the flap ended up).
func (e *engine) noteFlap(r int) {
	if e.flapCnt == nil {
		return
	}
	e.flapCnt[r]++
	t := e.curRound
	if int(e.flapCnt[r]) < e.quarCfg.Flaps || e.quarUntil[r] > int32(t) {
		return
	}
	e.quarUntil[r] = int32(t + e.quarCfg.Cooloff)
	e.quarActive = append(e.quarActive, r)
	e.res.Quarantined++
	if e.up.Contains(r) {
		if e.up.N() <= e.minUp {
			// No headroom to evict: cancel the hold rather than drop the
			// fleet below its floor.
			e.quarUntil[r] = 0
			e.quarActive = e.quarActive[:len(e.quarActive)-1]
			e.res.Quarantined--
			return
		}
		e.up.Down(r)
		if e.reach != e.up && e.reach.Contains(r) {
			e.reach.Down(r)
		}
		if e.rehomeObs != nil {
			e.rehomeObs.ResourceDown(r)
		}
		e.res.Downs++
		e.quarForcedDown++
		e.quarWantUp[r] = true // it was up; rejoin when the hold expires
	}
	e.emitQuarantine(r, true, int(e.flapCnt[r]), int(e.quarUntil[r]))
}

// quarTick rolls the tumbling flap window and releases expired holds
// (re-applying deferred rejoins), in quarantine-entry order. Sequential,
// at the top of the round.
func (e *engine) quarTick(t int) {
	if e.quarCfg.Window > 0 && t%e.quarCfg.Window == 0 {
		clear(e.flapCnt)
	}
	if len(e.quarActive) == 0 {
		return
	}
	live := e.quarActive[:0]
	for _, r := range e.quarActive {
		if int(e.quarUntil[r]) > t {
			live = append(live, r)
			continue
		}
		e.quarUntil[r] = 0
		e.emitQuarantine(r, false, int(e.flapCnt[r]), t)
		if e.quarWantUp[r] && !e.up.Contains(r) {
			e.quarWantUp[r] = false
			e.up.Up(r)
			if e.reach != e.up && !e.inj.Isolated(r) {
				e.reach.Up(r)
			}
			if e.rehomeObs != nil {
				e.rehomeObs.ResourceUp(r)
			}
			e.res.Ups++
		}
		e.quarWantUp[r] = false
	}
	e.quarActive = live
}

// emitQuarantine publishes one quarantine transition event.
func (e *engine) emitQuarantine(r int, entered bool, flaps, until int) {
	if e.broker == nil {
		return
	}
	e.ev = obs.Event{Kind: obs.KindQuarantine, Round: e.curRound,
		Quarantine: obs.QuarantineEvent{Resource: r, Entered: entered, Flaps: flaps, Until: until}}
	e.broker.Publish(&e.ev)
}

// evacPending reports whether any down resource still holds tasks — a
// cheap scan of the down list.
func (e *engine) evacPending() bool {
	for i := 0; i < e.up.DownN(); i++ {
		if e.s.Count(e.up.DownAt(i)) > 0 {
			return true
		}
	}
	return false
}

// noteDue folds the fault layer's due batch — delay-wheel deliveries,
// retry successes, timeout re-homes — into the lifecycle accounting
// before the batch is routed. The tasks are still in flight, so each
// location entry names the original source; a timeout re-home delivers
// back to it (no hop). Sequential; the batch order is canonical.
func (e *engine) noteDue(t int, due []core.Migration) {
	info := e.inj.DueInfo()
	for k := range due {
		mv := &due[k]
		id := mv.Task.ID
		// The task is still marked in flight (no stack location), so the
		// provenance comes from the injector's due metadata. A timeout
		// re-home delivers back to its source — not a hop.
		src := info[k].Src
		hop := mv.Dest != src
		if hop {
			e.hopCnt[id]++
		}
		if info[k].Kind != faults.DueDelay {
			// A ledger resolution: how long the lost message was held.
			e.res.RetryLat.Observe(int64(info[k].Latency))
		}
		if e.traceOn && e.sampled(id) {
			cause := trace.CauseDelay
			switch info[k].Kind {
			case faults.DueRetry:
				cause = trace.CauseRetry
			case faults.DueTimeout:
				cause = trace.CauseTimeout
			}
			e.emitTrace(&trace.Record{Round: t, Task: id, Op: trace.OpHop,
				Cause: cause, From: src, To: mv.Dest, Hops: e.hopCnt[id],
				Attempt: info[k].Attempt, Latency: info[k].Latency})
		}
	}
}

// evacuate re-homes every task stranded on a down resource through the
// exchange: a sharded pop-and-route phase, a barrier, and a sharded
// per-destination delivery phase. Identical for every worker count —
// each lost resource's destinations come from its own stream, and
// delivery merges in canonical (destination, task ID) order. bounce
// marks the post-delivery pass (step 6), whose re-homes are deliveries
// that landed on a down resource; they count into Result.Bounced on top
// of the shared Rehomed totals.
func (e *engine) evacuate(bounce bool) {
	e.pool.Run(len(e.shards), e.evacFn)
	if e.traceOn {
		// The down list's entry order is global state, but each shard
		// filters it to its own range, so shard concatenation is NOT
		// partition-invariant here — sorting by task ID (unique within
		// the batch) restores one canonical order. The cause is batch-
		// wide and known only here, so it is stamped on the way out.
		cause := trace.CauseEvac
		if bounce {
			cause = trace.CauseBounce
		}
		e.traceBuf = e.traceBuf[:0]
		for i := range e.shards {
			sh := &e.shards[i]
			e.traceBuf = append(e.traceBuf, sh.traceRecs...)
			sh.traceRecs = sh.traceRecs[:0]
		}
		sort.Slice(e.traceBuf, func(a, b int) bool { return e.traceBuf[a].Task < e.traceBuf[b].Task })
		for j := range e.traceBuf {
			e.traceBuf[j].Cause = cause
			e.emitTrace(&e.traceBuf[j])
		}
	}
	e.pool.Run(len(e.shards), e.deliverFn)
	st := e.exch.Finish(e.s, false)
	e.noteInbound()
	e.res.Rehomed += int64(st.Migrations)
	e.res.RehomedWeight += st.MovedWeight
	e.wRehomed += int64(st.Migrations)
	e.evacTasksRound += int64(st.Migrations)
	e.evacWtRound += st.MovedWeight
	if bounce {
		e.res.Bounced += int64(st.Migrations)
		e.res.BouncedWeight += st.MovedWeight
	}
}

// setRemaining records a new task's service work, growing the ID-indexed
// vector only when the task set extends its ID space.
func (e *engine) setRemaining(id int, w float64) {
	for id >= len(e.remaining) {
		e.remaining = append(e.remaining, 0)
	}
	e.remaining[id] = w
}

// speedOf returns resource r's service speed (1 on homogeneous
// fleets).
func (e *engine) speedOf(r int) float64 {
	if e.speeds == nil {
		return 1
	}
	return e.speeds[r]
}

// serviceShard runs the service discipline over shard i's up
// resources, popping departures into the shard buffer in ascending
// resource order. Each resource's service capacity scales with its
// speed.
func (e *engine) serviceShard(i int) {
	start := e.phaseStart()
	sh := &e.shards[i]
	s, svc := e.s, e.cfg.Service
	for r := sh.lo; r < sh.hi; r++ {
		if !e.up.Contains(r) || s.Count(r) == 0 {
			continue
		}
		sh.depIdx = svc.Departures(s.Stack(r), e.remaining, e.speedOf(r), s.Rand(r), sh.depIdx[:0])
		if len(sh.depIdx) == 0 {
			continue
		}
		prev := len(sh.departed)
		sh.departed = s.RemoveForDeparture(r, sh.depIdx, sh.departed)
		for range sh.departed[prev:] {
			sh.depFrom = append(sh.depFrom, int32(r))
		}
	}
	e.phaseDone(i, obs.PhaseService, start)
}

// proposeShard runs the protocol's propose phase over shard i and
// routes the accepted moves into the exchange's per-destination lanes.
func (e *engine) proposeShard(i int) {
	start := e.phaseStart()
	sh := &e.shards[i]
	sh.sc.Moves = sh.sc.Moves[:0]
	e.proto.ProposeRange(e.s, sh.lo, sh.hi, &sh.sc)
	moves := sh.sc.Moves
	if e.inj != nil {
		// The fault layer sits between propose and deliver: stateless
		// per-message draws decide loss/delay/duplication, partition cuts
		// bounce the move back to its source. Draw keys are (task, round),
		// so the outcome is identical for every shard partition.
		moves = e.inj.FilterShard(i, e.curRound, e.s, moves)
	}
	// Lifecycle accounting for the moves entering this delivery batch.
	// The tasks are off their stacks but undelivered, so each location
	// entry still names its source; a move whose destination equals its
	// source is a partition bounce, not a hop. The writes are safe in
	// the parallel phase — a shard's moves come off its own resources,
	// so the touched task IDs are disjoint across shards.
	for _, mv := range moves {
		src := int32(e.s.Location(mv.Task.ID))
		hop := mv.Dest != src
		if hop {
			e.hopCnt[mv.Task.ID]++
		}
		if e.traceOn && e.sampled(mv.Task.ID) {
			cause := trace.CauseProtocol
			if !hop {
				cause = trace.CausePartition
			}
			sh.traceRecs = append(sh.traceRecs, trace.Record{Round: e.curRound,
				Task: mv.Task.ID, Op: trace.OpHop, Cause: cause,
				From: src, To: mv.Dest, Hops: e.hopCnt[mv.Task.ID]})
		}
	}
	e.exch.Route(i, moves)
	e.phaseDone(i, obs.PhasePropose, start)
}

// deliverShard merges and applies destination shard i's inbound
// exchange lanes.
func (e *engine) deliverShard(i int) {
	start := e.phaseStart()
	e.exch.DeliverShard(e.s, i)
	e.phaseDone(i, obs.PhaseDeliver, start)
}

// evacShard pops every task off shard i's non-empty down resources and
// routes them to the destinations the re-home policy picks, each lost
// resource drawing from its own re-home stream (its per-resource RNG),
// so the move set is independent of the shard partition for every
// policy. A policy that picks a down destination would strand the task
// — that is a contract violation, caught here rather than absorbed.
func (e *engine) evacShard(i int) {
	start := e.phaseStart()
	sh := &e.shards[i]
	s, up := e.s, e.up
	sh.evacMoves = sh.evacMoves[:0]
	for k := 0; k < up.DownN(); k++ {
		r := up.DownAt(k)
		if r < sh.lo || r >= sh.hi || s.Count(r) == 0 {
			continue
		}
		sh.evacTasks = s.EvacuateAppend(r, sh.evacTasks[:0])
		rr := s.Rand(r)
		for _, tk := range sh.evacTasks {
			dest := e.rehome.Pick(s, up, e.speeds, r, tk.Weight, rr)
			if !up.Contains(dest) {
				panic(fmt.Sprintf("dynamic: rehome policy %q picked non-up resource %d for a task off %d",
					e.rehome.Name(), dest, r))
			}
			// An evacuation always moves the task (its source is down, the
			// destination is up), so it is unconditionally a hop. The IDs a
			// shard touches come off its own resources — disjoint writes.
			e.hopCnt[tk.ID]++
			if e.traceOn && e.sampled(tk.ID) {
				// Cause (evac vs bounce) is stamped at the sequential drain.
				sh.traceRecs = append(sh.traceRecs, trace.Record{Round: e.curRound,
					Task: tk.ID, Op: trace.OpHop, From: int32(r), To: int32(dest),
					Hops: e.hopCnt[tk.ID]})
			}
			sh.evacMoves = append(sh.evacMoves,
				core.Migration{Task: tk, Dest: int32(dest)})
		}
	}
	e.exch.Route(i, sh.evacMoves)
	e.phaseDone(i, obs.PhaseEvac, start)
}

// phaseStart/phaseDone time one shard's slice of a parallel phase for
// measured-cost sizing and phase profiling. Each shard index is
// handled by exactly one worker per phase and the pool barrier orders
// the writes, so the plain int64 accumulation is race-free.
func (e *engine) phaseStart() time.Time {
	if e.phaseNanos == nil {
		return time.Time{}
	}
	return time.Now()
}

func (e *engine) phaseDone(i int, p obs.PhaseID, start time.Time) {
	if e.phaseNanos == nil {
		return
	}
	e.phaseNanos[i][p] += int64(time.Since(start))
}

// seqStart/seqDone time the engine's sequential phases (arrivals, the
// tuner refresh) when a broker wants phase profiles.
func (e *engine) seqStart() time.Time {
	if e.broker == nil {
		return time.Time{}
	}
	return time.Now()
}

func (e *engine) seqDone(p obs.PhaseID, start time.Time) {
	if e.broker == nil {
		return
	}
	e.seqNanos[p] += int64(time.Since(start))
}

// shardPhaseSum folds shard i's accumulated phase nanos into the one
// per-shard cost measured-cost sizing balances on.
func (e *engine) shardPhaseSum(i int) int64 {
	var sum int64
	for _, ns := range e.phaseNanos[i] {
		sum += ns
	}
	return sum
}

// noteInbound attributes the batch just Finished to its destination
// shards' window counters.
func (e *engine) noteInbound() {
	if e.wShardInb == nil {
		return
	}
	for j := range e.shards {
		e.wShardInb[j] += int64(e.exch.Delivered(j))
	}
}

// rebalance re-cuts the shard partition so measured per-shard phase
// cost equalises: each resource is charged its old shard's average
// cost, and par.Balance places the new boundaries. Runs every
// rebalanceEvery rounds; results are unaffected (every phase is
// partition-invariant), only the work split moves.
func (e *engine) rebalance(round int) {
	if e.cfg.OnLanes != nil {
		e.cfg.OnLanes(round, len(e.shards), e.exch.LaneCounts())
	}
	if e.cfg.OnRebalance != nil {
		e.statsBuf = e.statsBuf[:0]
		for i := range e.shards {
			e.statsBuf = append(e.statsBuf, ShardStat{
				Lo: e.shards[i].lo, Hi: e.shards[i].hi, Nanos: e.shardPhaseSum(i),
			})
		}
		e.cfg.OnRebalance(round, e.statsBuf)
	}
	total := int64(0)
	for i := range e.shards {
		total += e.shardPhaseSum(i)
	}
	if total > 0 {
		if e.costBuf == nil {
			e.costBuf = make([]float64, e.n)
		}
		for i := range e.shards {
			sh := &e.shards[i]
			avg := float64(e.shardPhaseSum(i)) / float64(sh.hi-sh.lo)
			for r := sh.lo; r < sh.hi; r++ {
				e.costBuf[r] = avg
			}
		}
		e.boundsBuf = par.Balance(e.costBuf, len(e.shards), e.boundsBuf)
		copy(e.bounds, e.boundsBuf)
		for i := range e.shards {
			e.shards[i].lo, e.shards[i].hi = e.bounds[i], e.bounds[i+1]
		}
		e.exch.SetBounds(e.bounds)
	}
}

// emitTelemetry publishes the telemetry window closing at `round`:
// per-destination-shard inbound lane totals, per-shard cost and phase
// profiles, and the engine-level sequential phase profile. Runs in the
// sequential section between rounds; resetTelemetry zeroes the
// accumulators afterwards (shared with rebalance, which reads the same
// nanos).
func (e *engine) emitTelemetry(round int) {
	if e.broker == nil {
		return
	}
	w := len(e.shards)
	if lanes := e.exch.LaneCounts(); lanes != nil {
		for j := 0; j < w; j++ {
			var in int64
			for i := 0; i < w; i++ {
				in += lanes[i*w+j]
			}
			e.ev = obs.Event{Kind: obs.KindLanes, Round: round,
				Lane: obs.LaneStats{Shard: j, Inbound: in}}
			e.broker.Publish(&e.ev)
		}
	}
	for i := range e.shards {
		sh := &e.shards[i]
		e.ev = obs.Event{Kind: obs.KindShardCost, Round: round,
			ShardCost: obs.ShardCost{Shard: i,
				ShardStat: obs.ShardStat{Lo: sh.lo, Hi: sh.hi, Nanos: e.shardPhaseSum(i)}}}
		e.broker.Publish(&e.ev)
		e.ev = obs.Event{Kind: obs.KindPhase, Round: round,
			Phase: obs.PhaseStats{Shard: i, Nanos: e.phaseNanos[i]}}
		e.broker.Publish(&e.ev)
	}
	e.ev = obs.Event{Kind: obs.KindPhase, Round: round,
		Phase: obs.PhaseStats{Shard: -1, Nanos: e.seqNanos}}
	e.broker.Publish(&e.ev)
	if e.inj != nil || e.flapCnt != nil {
		var c faults.Counters
		if e.inj != nil {
			c = e.inj.Counters()
		}
		ln, lw := e.s.InFlightLedger()
		e.ev = obs.Event{Kind: obs.KindFaults, Round: round, Faults: obs.FaultStats{
			Lost: c.Lost, Delayed: c.Delayed, Duplicated: c.Duplicated,
			Deduped: c.Deduped, Retries: c.Retries, Timeouts: c.Timeouts,
			PartitionBlocked: c.PartitionBlocked,
			Bounced:          e.res.Bounced,
			Quarantined:      int64(len(e.quarActive)),
			Ledger:           ln, LedgerWeight: lw,
		}}
		e.broker.Publish(&e.ev)
	}
}

// resetTelemetry zeroes the lane and phase accumulators after a
// telemetry report and/or rebalance consumed them.
func (e *engine) resetTelemetry() {
	e.exch.ResetLaneCounts()
	for i := range e.phaseNanos {
		e.phaseNanos[i] = [obs.NumPhases]int64{}
	}
	e.seqNanos = [obs.NumPhases]int64{}
}

// emitRecovery publishes the current recovery episode's transition.
func (e *engine) emitRecovery(kind obs.Kind, round int) {
	if e.broker == nil {
		return
	}
	e.ev = obs.Event{Kind: kind, Round: round, Recovery: obs.RecoveryEvent{
		Round: e.recCur.Round, Downs: e.recCur.Downs,
		EvacTasks: e.recCur.EvacTasks, EvacWeight: e.recCur.EvacWeight,
		BaselineOverload: e.recCur.BaselineOverload,
		PeakOverload:     e.recCur.PeakOverload,
		DrainRounds:      e.recCur.DrainRounds,
	}}
	e.broker.Publish(&e.ev)
}

// flush closes the metrics window ending at round `end`.
func (e *engine) flush(end int) {
	rounds := float64(end - e.windowStart)
	if rounds == 0 {
		return
	}
	s, up := e.s, e.up
	e.loadBuf = e.loadBuf[:0]
	for i := 0; i < up.N(); i++ {
		e.loadBuf = append(e.loadBuf, s.Load(up.At(i)))
	}
	e.sortBuf = append(e.sortBuf[:0], e.loadBuf...)
	sort.Float64s(e.sortBuf)
	ws := WindowStats{
		Start:          e.windowStart,
		End:            end,
		OverloadFrac:   e.wOverload / rounds,
		MigrationRate:  float64(e.wMigrations) / rounds,
		RehomeRate:     float64(e.wRehomed) / rounds,
		ArrivalRate:    float64(e.wArrivals) / rounds,
		DepartureRate:  float64(e.wDepartures) / rounds,
		MeanLoad:       stats.Mean(e.loadBuf),
		MaxLoad:        e.sortBuf[len(e.sortBuf)-1],
		P99Load:        stats.QuantileSorted(e.sortBuf, 0.99),
		InFlight:       e.ts.Live(),
		InFlightWeight: s.InFlightWeight(),
		UpResources:    up.N(),
	}
	if e.speeds == nil {
		ws.P99LoadPerSpeed = ws.P99Load
	} else {
		e.normBuf = e.normBuf[:0]
		for i := 0; i < up.N(); i++ {
			r := up.At(i)
			e.normBuf = append(e.normBuf, s.Load(r)/e.speeds[r])
		}
		sort.Float64s(e.normBuf)
		ws.P99LoadPerSpeed = stats.QuantileSorted(e.normBuf, 0.99)
	}
	e.res.Windows = append(e.res.Windows, ws)
	if e.cfg.OnWindow != nil {
		e.cfg.OnWindow(ws)
	}
	if e.broker != nil {
		e.ev = obs.Event{Kind: obs.KindWindow, Round: end, Window: ws}
		e.broker.Publish(&e.ev)
		e.ev = obs.Event{Kind: obs.KindTraceHist, Round: end, TraceHist: trace.Snapshot{
			Sojourn: e.res.Sojourn, Hops: e.res.Hops, RetryLat: e.res.RetryLat}}
		e.broker.Publish(&e.ev)
		e.emitShardWindows(end, rounds)
		e.emitDomainWindows(end)
		for i := range e.wShardArr {
			e.wShardArr[i], e.wShardDep[i], e.wShardInb[i] = 0, 0, 0
		}
	}
	e.wOverload = 0
	e.wMigrations, e.wRehomed, e.wArrivals, e.wDepartures = 0, 0, 0, 0
	e.windowStart = end
}

// emitShardWindows publishes one ShardWindowStats event per worker
// shard for the window ending at `end`: a load snapshot over the
// shard's up resources plus the window's attributed traffic rates.
// Runs in the sequential flush section; all scratch is engine-owned,
// so emission allocates nothing.
func (e *engine) emitShardWindows(end int, rounds float64) {
	s, up := e.s, e.up
	for i := range e.shards {
		sh := &e.shards[i]
		e.shardLoadBuf = e.shardLoadBuf[:0]
		inFlight, over := 0, 0
		weight := 0.0
		for r := sh.lo; r < sh.hi; r++ {
			if !up.Contains(r) {
				continue
			}
			load := s.Load(r)
			e.shardLoadBuf = append(e.shardLoadBuf, load)
			inFlight += s.Count(r)
			weight += load
			if s.Overloaded(r) {
				over++
			}
		}
		sws := obs.ShardWindowStats{
			Shard: i, Lo: sh.lo, Hi: sh.hi,
			Start: e.windowStart, End: end,
			ArrivalRate:    float64(e.wShardArr[i]) / rounds,
			DepartureRate:  float64(e.wShardDep[i]) / rounds,
			InboundRate:    float64(e.wShardInb[i]) / rounds,
			InFlight:       inFlight,
			InFlightWeight: weight,
			UpResources:    len(e.shardLoadBuf),
		}
		if n := len(e.shardLoadBuf); n > 0 {
			sws.OverloadFrac = float64(over) / float64(n)
			sws.MeanLoad = stats.Mean(e.shardLoadBuf)
			sort.Float64s(e.shardLoadBuf)
			sws.MaxLoad = e.shardLoadBuf[n-1]
			sws.P99Load = stats.QuantileSorted(e.shardLoadBuf, 0.99)
			if e.speeds == nil {
				sws.P99LoadPerSpeed = sws.P99Load
			} else {
				e.shardNormBuf = e.shardNormBuf[:0]
				for r := sh.lo; r < sh.hi; r++ {
					if up.Contains(r) {
						e.shardNormBuf = append(e.shardNormBuf, s.Load(r)/e.speeds[r])
					}
				}
				sort.Float64s(e.shardNormBuf)
				sws.P99LoadPerSpeed = stats.QuantileSorted(e.shardNormBuf, 0.99)
			}
		}
		e.ev = obs.Event{Kind: obs.KindShardWindow, Round: end, ShardWindow: sws}
		e.broker.Publish(&e.ev)
	}
}

// emitDomainWindows publishes one DomainWindowStats event per failure
// domain per configured level for the window ending at `end` — the
// per-rack/per-zone snapshot that prices what a domain loss costs.
// Level order follows Config.Domains; domains ascend within a level.
func (e *engine) emitDomainWindows(end int) {
	s, up := e.s, e.up
	for li := range e.domains {
		d := &e.domains[li]
		agg := e.domAgg[li]
		for k := range agg {
			agg[k] = domAgg{}
		}
		for r := 0; r < e.n; r++ {
			a := &agg[d.Of[r]]
			if !up.Contains(r) {
				a.down++
				continue
			}
			a.up++
			load := s.Load(r)
			a.load += load
			if load > a.max {
				a.max = load
			}
			if s.Overloaded(r) {
				a.over++
			}
		}
		for k := range agg {
			a := &agg[k]
			dws := obs.DomainWindowStats{
				Level: d.Level, Domain: k, Name: d.Names[k],
				Start: e.windowStart, End: end,
				MaxLoad:        a.max,
				InFlightWeight: a.load,
				UpResources:    a.up,
				DownResources:  a.down,
			}
			if a.up > 0 {
				dws.OverloadFrac = float64(a.over) / float64(a.up)
				dws.MeanLoad = a.load / float64(a.up)
			}
			e.ev = obs.Event{Kind: obs.KindDomainWindow, Round: end, DomainWindow: dws}
			e.broker.Publish(&e.ev)
			if e.alertCnt != nil {
				e.noteDomainAlert(li, k, &dws, end)
			}
		}
	}
}

// noteDomainAlert feeds one domain's closed window into the SLO alert
// tracker: an overload fraction above the budget extends the domain's
// consecutive-breach streak and fires a KindAlert event the window the
// streak reaches Config.AlertWindows; the first in-budget window ends
// the streak and, if an alert was firing, publishes its clear. A fully
// down domain (no up resources) reports OverloadFrac 0 and therefore
// counts as in budget — the outage is already visible through
// DownResources and the recovery events; the alert tracks overload,
// not membership. All inputs are partition-invariant, so alert streams
// replay bit-identically for every worker count.
func (e *engine) noteDomainAlert(li, k int, dws *obs.DomainWindowStats, end int) {
	cnt, active := e.alertCnt[li], e.alertActive[li]
	if dws.OverloadFrac > e.alertBudget {
		cnt[k]++
		if int(cnt[k]) == e.alertK && !active[k] {
			active[k] = true
			e.ev = obs.Event{Kind: obs.KindAlert, Round: end, Alert: obs.AlertEvent{
				Level: dws.Level, Domain: k, Name: dws.Name,
				OverloadFrac: dws.OverloadFrac, Budget: e.alertBudget,
				Windows: int(cnt[k]),
			}}
			e.broker.Publish(&e.ev)
		}
		return
	}
	if active[k] {
		active[k] = false
		e.ev = obs.Event{Kind: obs.KindAlert, Round: end, Alert: obs.AlertEvent{
			Level: dws.Level, Domain: k, Name: dws.Name,
			OverloadFrac: dws.OverloadFrac, Budget: e.alertBudget,
			Windows: int(cnt[k]), Cleared: true,
		}}
		e.broker.Publish(&e.ev)
	}
	cnt[k] = 0
}
