package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/task"
)

// The sharded round pipeline. The n resources are partitioned into
// Workers contiguous shards that live on a persistent worker pool
// (internal/par); every O(n) sweep — service and departures, the
// tuner's decay and diffusion passes, the protocol's propose phase —
// runs shard-local with per-shard scratch buffers, and the
// cross-shard effects meet at one barrier per phase where they are
// merged in a canonical order. Arrivals stay sequential by design:
// their streams are global, ID assignment is order-sensitive, and
// load-aware dispatch must observe earlier same-round arrivals; they
// cost O(arrivals) with O(1) per-task work, which the sharded sweeps
// dwarf.
//
// Determinism is the design constraint, and it is enforced by three
// rules:
//
//  1. Randomness is only ever drawn from per-resource streams (inside
//     a shard phase, for the resource being processed) or from the
//     engine's sequential streams (arrivals, dispatch, churn) outside
//     the parallel phases. No stream is ever shared across shards.
//  2. A shard phase writes only shard-owned state: its resources'
//     stacks, its tasks' location entries, its scratch buffers. The
//     one shared aggregate — the overloaded-resource counter — is an
//     integer updated atomically, so its barrier-time value is
//     independent of interleaving.
//  3. Every floating-point reduction runs in a canonical order that
//     does not depend on the shard partition: departures settle in
//     ascending resource order, migrations deliver (and sum) in
//     (destination, task ID) order, and window snapshots scan the up
//     list. Shard-concatenation order never feeds a float sum.
//
// Together these make the run a pure function of (Config minus
// Workers), which the cross-worker-count golden test pins.
//
// The steady-state hot path is also allocation-free: arrival weights,
// departure indices, evacuation lists, migration buffers and metric
// snapshots all live in reusable engine- or shard-owned buffers, task
// IDs (and the arrays indexed by them) are recycled via the task set's
// free list, and the pool dispatches phases without allocating.

// shard is one worker's slice of the resource range plus its scratch.
type shard struct {
	lo, hi   int
	depIdx   []int       // service departure-index scratch
	departed []task.Task // tasks departed this round, resource-ascending
	sc       core.ProposeScratch
}

type engine struct {
	cfg      Config
	n        int
	window   int
	minUp    int
	dispatch Dispatch
	proto    core.RangeProposer // nil → sequential Protocol.Step fallback
	ptuner   PooledTuner        // nil → sequential Tuner.Refresh

	s  *core.State
	ts *task.Set
	up *UpSet

	pool   *par.Pool
	shards []shard

	// Sequential engine streams, living above the per-resource streams
	// 0..n−1 (slot n+2 was the global service stream before service
	// randomness moved onto the per-resource streams).
	arrRand, dispRand, churnRand *rng.Rand

	remaining  []float64 // task ID → remaining service work
	weightsBuf []float64 // this round's arrival weights
	evacBuf    []task.Task
	moves      []core.Migration

	initialWeight float64
	res           Result

	// Per-window accumulators and pooled snapshot buffers.
	wOverload                                     float64
	wMigrations, wRehomed, wArrivals, wDepartures int64
	windowStart                                   int
	loadBuf, sortBuf                              []float64

	// Phase closures, bound once so pool dispatch allocates nothing.
	serviceFn, proposeFn func(int)
}

func newEngine(cfg Config) *engine {
	n := cfg.Graph.N()
	e := &engine{cfg: cfg, n: n}
	e.window = cfg.Window
	if e.window <= 0 {
		e.window = 100
	}
	e.dispatch = cfg.Dispatch
	if e.dispatch == nil {
		e.dispatch = UniformDispatch{}
	}
	e.minUp = cfg.Churn.MinUp
	if e.minUp <= 0 {
		e.minUp = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// Seed state. Thresholds start at zero; the tuner sets real ones in
	// round 0 before the first protocol step.
	placement := cfg.InitialPlacement
	if len(cfg.InitialWeights) > 0 {
		e.ts = task.NewSet(cfg.InitialWeights)
		if placement == nil {
			placement = make([]int, e.ts.M())
		}
	} else {
		e.ts = task.NewEmptySet()
		placement = nil
	}
	e.s = core.NewState(cfg.Graph, e.ts, placement,
		core.FixedVector{V: make([]float64, n), Label: "dynamic-init"}, cfg.Seed)

	e.arrRand = rng.Stream(cfg.Seed, uint64(n))
	e.dispRand = rng.Stream(cfg.Seed, uint64(n)+1)
	e.churnRand = rng.Stream(cfg.Seed, uint64(n)+3)

	e.up = NewUpSet(n)
	e.remaining = make([]float64, e.ts.M())
	for i := 0; i < e.ts.M(); i++ {
		e.remaining[i] = e.ts.Weight(i)
	}
	e.initialWeight = e.ts.W()

	e.pool = par.NewPool(workers)
	e.shards = make([]shard, workers)
	for i := range e.shards {
		lo, hi := e.pool.Shard(n, i)
		e.shards[i] = shard{lo: lo, hi: hi}
	}
	if core.CanPropose(cfg.Protocol) {
		e.proto = cfg.Protocol.(core.RangeProposer)
	}
	if pt, ok := cfg.Tuner.(PooledTuner); ok {
		e.ptuner = pt
	}
	e.loadBuf = make([]float64, 0, n)
	e.sortBuf = make([]float64, 0, n)
	e.serviceFn = e.serviceShard
	e.proposeFn = e.proposeShard
	return e
}

// close releases the pool's goroutines.
func (e *engine) close() { e.pool.Close() }

// run executes the configured number of rounds.
func (e *engine) run() (Result, error) {
	for t := 0; t < e.cfg.Rounds; t++ {
		if err := e.round(t); err != nil {
			return e.res, err
		}
		if (t+1)%e.window == 0 {
			e.flush(t + 1)
		}
	}
	e.flush(e.cfg.Rounds)
	e.res.Rounds = e.cfg.Rounds
	e.res.FinalInFlight = e.ts.Live()
	e.res.FinalWeight = e.s.InFlightWeight()
	if err := checkConservation(e.s, e.initialWeight, e.res); err != nil {
		return e.res, fmt.Errorf("dynamic: %w", err)
	}
	return e.res, nil
}

// round advances the system by one open-system round.
func (e *engine) round(t int) error {
	s, up := e.s, e.up

	// 1. Resource churn (sequential: one global stream, rare events).
	if e.cfg.Churn.enabled() {
		if up.N() > e.minUp && e.churnRand.Bool(e.cfg.Churn.LeaveProb) {
			leave := up.Random(e.churnRand)
			up.Down(leave)
			e.res.Downs++
			e.evacBuf = s.EvacuateAppend(leave, e.evacBuf[:0])
			for _, tk := range e.evacBuf {
				s.Attach(tk, up.Random(e.churnRand))
				e.res.Rehomed++
				e.wRehomed++
			}
		}
		if up.DownN() > 0 && e.churnRand.Bool(e.cfg.Churn.JoinProb) {
			up.Up(up.RandomDown(e.churnRand))
			e.res.Ups++
		}
	}

	// 2. Arrivals — sequential end to end: the arrival and dispatch
	// streams are global, ID assignment must happen in arrival order,
	// and load-aware dispatchers (PowerOfD) must observe the loads of
	// earlier same-round arrivals, so each task is placed immediately
	// after its pick. The work is O(arrivals) with O(1) per-task cost,
	// far below the O(n) sweeps the shards absorb.
	e.weightsBuf = appendNext(e.cfg.Arrivals, t, e.arrRand, e.weightsBuf[:0])
	for _, w := range e.weightsBuf {
		dest := e.dispatch.Pick(s, up, w, e.dispRand)
		tk := s.InsertTask(w, dest)
		e.setRemaining(tk.ID, w)
		e.res.Arrived++
		e.res.ArrivedWeight += w
		e.wArrivals++
	}

	// 3a. Service and departures (up resources only), sharded: each
	// resource draws from its own stream and pops its own stack.
	e.pool.Run(len(e.shards), e.serviceFn)
	// 3b. Settle the shared accounting in canonical ascending-resource
	// order (shards are contiguous and ordered), so the weight totals
	// are identical for every worker count.
	for i := range e.shards {
		sh := &e.shards[i]
		for _, tk := range sh.departed {
			s.SettleDeparture(tk)
			e.res.Departed++
			e.res.DepartedWeight += tk.Weight
			e.wDepartures++
		}
		sh.departed = sh.departed[:0]
	}

	// Settle the live-wmax cache at this consistent point (all
	// departures applied, nothing in limbo or mid-migration) so
	// neither the tuner nor the protocol recomputes it mid-phase.
	s.LiveWMax()

	// 4. Online threshold refresh, on the pool when the tuner supports
	// sharded sweeps.
	var thr []float64
	if e.ptuner != nil {
		thr = e.ptuner.RefreshPooled(t, s, up, e.pool)
	} else {
		thr = e.cfg.Tuner.Refresh(t, s, up)
	}
	if thr != nil {
		s.SetThresholds(thr)
	}

	// 5. One protocol round: sharded propose phases into per-shard
	// move buffers, then one canonical merge-and-deliver. The
	// concatenation order below is worker-count-dependent, but
	// DeliverMigrations re-sorts by (destination, task ID) — a unique
	// key — before anything (stack pushes, the MovedWeight sum)
	// consumes it.
	var st core.StepStats
	if e.proto != nil {
		e.pool.Run(len(e.shards), e.proposeFn)
		e.moves = e.moves[:0]
		for i := range e.shards {
			e.moves = append(e.moves, e.shards[i].sc.Moves...)
		}
		st = s.DeliverMigrations(e.moves)
	} else {
		st = e.cfg.Protocol.Step(s)
	}
	e.res.Migrations += int64(st.Migrations)
	e.res.MovedWeight += st.MovedWeight
	e.wMigrations += int64(st.Migrations)

	// 6. Bounce deliveries that landed on down resources (sequential:
	// the re-home stream is global; the down list is short).
	for i := 0; i < up.DownN(); i++ {
		r := up.DownAt(i)
		if s.Count(r) == 0 {
			continue
		}
		e.evacBuf = s.EvacuateAppend(r, e.evacBuf[:0])
		for _, tk := range e.evacBuf {
			s.Attach(tk, up.Random(e.churnRand))
			e.res.Rehomed++
			e.wRehomed++
		}
	}

	// 7. Metrics. Down resources are always empty here (bounced above)
	// and thresholds are non-negative, so the incremental all-resource
	// counter equals the overloaded count over up resources.
	e.wOverload += float64(s.OverloadedCount()) / float64(up.N())
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(t, s)
	}
	if e.cfg.CheckInvariants {
		if err := checkConservation(s, e.initialWeight, e.res); err != nil {
			return fmt.Errorf("dynamic: round %d: %w", t, err)
		}
	}
	return nil
}

// setRemaining records a new task's service work, growing the ID-indexed
// vector only when the task set extends its ID space.
func (e *engine) setRemaining(id int, w float64) {
	for id >= len(e.remaining) {
		e.remaining = append(e.remaining, 0)
	}
	e.remaining[id] = w
}

// serviceShard runs the service discipline over shard i's up
// resources, popping departures into the shard buffer in ascending
// resource order.
func (e *engine) serviceShard(i int) {
	sh := &e.shards[i]
	s, svc := e.s, e.cfg.Service
	for r := sh.lo; r < sh.hi; r++ {
		if !e.up.Contains(r) || s.Count(r) == 0 {
			continue
		}
		sh.depIdx = svc.Departures(s.Stack(r), e.remaining, s.Rand(r), sh.depIdx[:0])
		if len(sh.depIdx) == 0 {
			continue
		}
		sh.departed = s.RemoveForDeparture(r, sh.depIdx, sh.departed)
	}
}

// proposeShard runs the protocol's propose phase over shard i.
func (e *engine) proposeShard(i int) {
	sh := &e.shards[i]
	sh.sc.Moves = sh.sc.Moves[:0]
	e.proto.ProposeRange(e.s, sh.lo, sh.hi, &sh.sc)
}

// flush closes the metrics window ending at round `end`.
func (e *engine) flush(end int) {
	rounds := float64(end - e.windowStart)
	if rounds == 0 {
		return
	}
	s, up := e.s, e.up
	e.loadBuf = e.loadBuf[:0]
	for i := 0; i < up.N(); i++ {
		e.loadBuf = append(e.loadBuf, s.Load(up.At(i)))
	}
	e.sortBuf = append(e.sortBuf[:0], e.loadBuf...)
	sort.Float64s(e.sortBuf)
	ws := WindowStats{
		Start:          e.windowStart,
		End:            end,
		OverloadFrac:   e.wOverload / rounds,
		MigrationRate:  float64(e.wMigrations) / rounds,
		RehomeRate:     float64(e.wRehomed) / rounds,
		ArrivalRate:    float64(e.wArrivals) / rounds,
		DepartureRate:  float64(e.wDepartures) / rounds,
		MeanLoad:       stats.Mean(e.loadBuf),
		MaxLoad:        e.sortBuf[len(e.sortBuf)-1],
		P99Load:        stats.QuantileSorted(e.sortBuf, 0.99),
		InFlight:       e.ts.Live(),
		InFlightWeight: s.InFlightWeight(),
		UpResources:    up.N(),
	}
	e.res.Windows = append(e.res.Windows, ws)
	if e.cfg.OnWindow != nil {
		e.cfg.OnWindow(ws)
	}
	e.wOverload = 0
	e.wMigrations, e.wRehomed, e.wArrivals, e.wDepartures = 0, 0, 0, 0
	e.windowStart = end
}
