package dynamic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// TestFaultyShardedDeterminism extends the golden cross-worker-count
// contract to unreliable networks: for seeds {1, 2, 3} and workers
// {1, 2, 4, 8}, runs under message loss, delay + duplication,
// scripted partitions and flapping quarantine must each produce
// byte-identical Results — the fault draws are keyed off (task,
// round, attempt), never off the shard split, and the ledger/wheel
// merge is canonical.
func TestFaultyShardedDeterminism(t *testing.T) {
	g := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	proto := func() core.Protocol {
		return core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))}
	}
	quarter := make([]int, 50)
	for i := range quarter {
		quarter[i] = i
	}
	cases := []struct {
		name  string
		build func(seed uint64, workers int) Config
		check func(t *testing.T, res Result)
	}{
		{"loss-retry", func(seed uint64, workers int) Config {
			cfg := goldenConfig(200, proto(), g, Churn{}, seed, workers)
			cfg.Faults = &faults.Plan{Loss: 0.2, RetryBase: 1, RetryCap: 4, Timeout: 12}
			return cfg
		}, func(t *testing.T, res Result) {
			if res.Lost == 0 || res.Retries == 0 {
				t.Fatalf("loss plan injected nothing: %+v", res)
			}
		}},
		{"delay-dup", func(seed uint64, workers int) Config {
			cfg := goldenConfig(200, proto(), g, Churn{}, seed, workers)
			cfg.Faults = &faults.Plan{DelayProb: 0.3, DelayMax: 5, DupProb: 0.2}
			return cfg
		}, func(t *testing.T, res Result) {
			if res.Delayed == 0 || res.Duplicated == 0 || res.Deduped == 0 {
				t.Fatalf("delay/dup plan injected nothing: %+v", res)
			}
		}},
		{"partition", func(seed uint64, workers int) Config {
			cfg := goldenConfig(200, proto(), g, Churn{}, seed, workers)
			cfg.Faults = &faults.Plan{
				Loss: 0.05,
				Partitions: []faults.Partition{
					{Start: 50, End: 120, Members: quarter},
					{Start: 160, End: 200, Members: []int{190, 191, 192, 193}},
				},
			}
			return cfg
		}, func(t *testing.T, res Result) {
			if res.PartitionBlocked == 0 {
				t.Fatalf("partition windows blocked nothing: %+v", res)
			}
		}},
		{"quarantine-churn", func(seed uint64, workers int) Config {
			cfg := goldenConfig(200, proto(), g,
				Churn{LeaveProb: 0.3, JoinProb: 0.3, MinUp: 100}, seed, workers)
			cfg.Faults = &faults.Plan{Loss: 0.1, Timeout: 10}
			// Two transitions (a leave and a rejoin) within the window
			// trip the hold — common at this churn intensity.
			cfg.Quarantine = Quarantine{Flaps: 2, Window: 200, Cooloff: 40}
			return cfg
		}, func(t *testing.T, res Result) {
			if res.Quarantined == 0 {
				t.Fatalf("heavy flapping triggered no quarantine: %+v", res)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 3} {
				var ref Result
				for _, workers := range []int{1, 2, 4, 8} {
					cfg := tc.build(seed, workers)
					cfg.CheckInvariants = workers == 1 // once per seed is plenty
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, workers, err)
					}
					if workers == 1 {
						ref = res
						if res.Arrived == 0 || res.Departed == 0 {
							t.Fatalf("seed %d: no traffic: %+v", seed, res)
						}
						tc.check(t, res)
						continue
					}
					if !reflect.DeepEqual(res, ref) {
						t.Fatalf("seed %d: workers=%d diverges from sequential faulty run\ngot  %+v\nwant %+v",
							seed, workers, res, ref)
					}
				}
			}
		})
	}
}

// randomFaultPlan draws a fault plan for an n-resource fleet: loss,
// delay and duplication probabilities in ranges that keep a meaningful
// share of traffic affected, a randomized retry policy, and sometimes
// a partition window over a random contiguous block.
func randomFaultPlan(r *rng.Rand, n, rounds int) *faults.Plan {
	p := &faults.Plan{Seed: r.Uint64()}
	if r.Bool(0.7) {
		p.Loss = 0.3 * r.Float64()
	}
	if r.Bool(0.6) {
		p.DelayProb = 0.3 * r.Float64()
		p.DelayMax = 1 + r.Intn(6)
	}
	if r.Bool(0.5) {
		p.DupProb = 0.2 * r.Float64()
	}
	if r.Bool(0.5) {
		p.RetryBase = 1 + r.Intn(3)
		p.RetryCap = p.RetryBase + r.Intn(8)
		p.Timeout = 5 + r.Intn(25)
	}
	if r.Bool(0.5) {
		size := 1 + r.Intn(n/3)
		lo := r.Intn(n - size)
		members := make([]int, size)
		for i := range members {
			members[i] = lo + i
		}
		start := r.Intn(rounds)
		p.Partitions = append(p.Partitions,
			faults.Partition{Start: start, End: start + 1 + r.Intn(rounds), Members: members})
	}
	if !p.Active() {
		p.Loss = 0.05 + 0.2*r.Float64()
	}
	return p
}

// TestPropertyFaultConservation runs randomized engine configurations
// under randomized fault plans with CheckInvariants on: every round
// the engine re-validates that placed + in-flight weight equals the
// live task-set total (arrived − departed), so loss, retry, timeout
// re-homes, delayed deliveries, duplicates and partition bounces may
// never create or destroy weight. The final task-count balance is
// asserted on top.
func TestPropertyFaultConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised engine runs take a few seconds")
	}
	r := rng.NewSeeded(0xfa17)
	for trial := 0; trial < 12; trial++ {
		cfg := randomPropertyConfig(r)
		for !core.CanPropose(cfg.Protocol) {
			cfg = randomPropertyConfig(r) // faults need a range proposer
		}
		cfg.Faults = randomFaultPlan(r, cfg.Graph.N(), cfg.Rounds)
		if r.Bool(0.4) {
			cfg.Quarantine = Quarantine{Flaps: 2 + r.Intn(3), Window: 20 + r.Intn(40), Cooloff: 10 + r.Intn(40)}
		}
		cfg.CheckInvariants = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (plan %+v): %v", trial, cfg.Faults, err)
		}
		if res.FinalInFlight != int(res.Arrived)-int(res.Departed) {
			t.Fatalf("trial %d: in-flight %d != arrived %d − departed %d",
				trial, res.FinalInFlight, res.Arrived, res.Departed)
		}
		if res.FinalLedger == 0 && res.FinalLedgerWeight != 0 {
			t.Fatalf("trial %d: empty ledger carries weight %v", trial, res.FinalLedgerWeight)
		}
		if w := res.FinalLedgerWeight; math.IsNaN(w) || w < 0 {
			t.Fatalf("trial %d: ledger weight %v", trial, w)
		}
	}
}

// TestFaultLayerInertAtZero pins the degraded-to-clean boundary: with
// the injector wired in but loss, delay and partitions all absent, a
// duplication-only plan must leave the Result identical to a run with
// no plan at all apart from its own dup/dedup counters — duplicate
// copies are always identified and dropped, never a perturbation of
// the placed state.
func TestFaultLayerInertAtZero(t *testing.T) {
	g := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	build := func() Config {
		return goldenConfig(200, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			g, Churn{LeaveProb: 0.1, JoinProb: 0.1, MinUp: 100}, 5, 2)
	}
	clean, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	cfg := build()
	cfg.Faults = &faults.Plan{DupProb: 0.3}
	faulty, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Duplicated == 0 || faulty.Duplicated != faulty.Deduped {
		t.Fatalf("dup plan: %d duplicated, %d deduped", faulty.Duplicated, faulty.Deduped)
	}
	faulty.Duplicated, faulty.Deduped = 0, 0
	if !reflect.DeepEqual(clean, faulty) {
		t.Fatalf("dup-only plan perturbed the run\nclean  %+v\nfaulty %+v", clean, faulty)
	}
}

// TestFaultySteadyStateZeroAllocs extends the headline allocation
// budget to fault-enabled runs: with the injector wired in but loss
// at zero (the plan's one partition window expires in round 1), whole
// rounds — including FilterShard's short-circuit, Collect and the
// Tick wheel/ledger scans — must not allocate.
func TestFaultySteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrating benchmark runs take ~1s each")
	}
	if raceEnabled {
		t.Skip("race instrumentation shrinks the calibrated iteration count, so one-time construction no longer amortises below 1 alloc/op")
	}
	g := graph.RandomRegular(256, 8, rng.NewSeeded(3))
	for _, workers := range []int{1, 2} {
		res := testing.Benchmark(func(b *testing.B) {
			cfg := Config{
				Graph:    g,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: Poisson{Rate: 0.8 * 256 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service:  WeightProportional{Rate: 1},
				Tuner: &SelfTuner{Eps: 0.5, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Faults:  &faults.Plan{Partitions: []faults.Partition{{Start: 0, End: 1, Members: []int{255}}}},
				Rounds:  b.N,
				Window:  1 << 30,
				Seed:    0x5eed,
				Workers: workers,
			}
			b.ReportAllocs()
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		})
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Fatalf("workers=%d: fault-enabled steady-state round allocates %d times/op (%d B/op), want 0",
				workers, allocs, res.AllocedBytesPerOp())
		}
	}
}

// TestFaultsRequireRangeProposer pins the config check: a plan on a
// protocol without a range proposer is a load-time error, not a
// silent no-fault run.
func TestFaultsRequireRangeProposer(t *testing.T) {
	g := graph.Complete(16)
	cfg := Config{
		Graph:    g,
		Protocol: nullProtocol{},
		Arrivals: Poisson{Rate: 2, Weights: task.Uniform{W: 1}},
		Service:  Geometric{P: 0.3},
		Tuner:    &OracleTuner{Eps: 0.5},
		Faults:   &faults.Plan{Loss: 0.1},
		Rounds:   10,
		Window:   5,
		Seed:     1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("fault plan accepted on a non-range protocol")
	}
}
