package dynamic

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestValidateEvents pins the config-time schedule checker: list
// hygiene (range, duplicates, kill+revive of one resource in one
// event) and the timeline simulation that rejects killing an
// already-down resource or reviving an already-up one.
func TestValidateEvents(t *testing.T) {
	cases := []struct {
		name   string
		events []ChurnEvent
		rounds int
		want   string // substring of the error; "" = valid
	}{
		{"empty", nil, 100, ""},
		{"random-only", []ChurnEvent{{Round: 5, Down: 10}, {Round: 9, Up: 10}}, 100, ""},
		{"negative", []ChurnEvent{{Round: -1, Down: 1}}, 100, "negative fields"},
		{"out-of-range", []ChurnEvent{{Round: 0, DownList: []int{8}}}, 100, "out of range"},
		{"dup-in-list", []ChurnEvent{{Round: 0, DownList: []int{1, 1}}}, 100, "repeats resource 1"},
		{"both-lists", []ChurnEvent{{Round: 0, DownList: []int{1}, UpList: []int{1}}}, 100,
			"both the down and the up list"},
		{"kill-twice", []ChurnEvent{
			{Round: 10, DownList: []int{3}},
			{Round: 20, DownList: []int{3}},
		}, 100, "kills resource 3, which the schedule already downed"},
		{"revive-up", []ChurnEvent{{Round: 10, UpList: []int{2}}}, 100,
			"revives resource 2, which the schedule never downed"},
		{"kill-revive-kill", []ChurnEvent{
			{Round: 10, DownList: []int{3}},
			{Round: 20, UpList: []int{3}},
			{Round: 30, DownList: []int{3}},
		}, 100, ""},
		{"same-round-order", []ChurnEvent{
			// Kills apply before revives within a round, so downing 4 and
			// reviving it in the same round is consistent...
			{Round: 10, DownList: []int{4}},
			{Round: 10, UpList: []int{4}},
		}, 100, ""},
		{"repeating-conflict", []ChurnEvent{
			// ...but a kill repeating every 10 rounds with no revive
			// conflicts with itself at its second firing.
			{Round: 5, Every: 10, DownList: []int{0}},
		}, 100, "kills resource 0"},
		{"repeating-consistent", []ChurnEvent{
			{Round: 5, Every: 10, DownList: []int{0}},
			{Round: 9, Every: 10, UpList: []int{0}},
		}, 1000, ""},
		{"beyond-horizon", []ChurnEvent{
			// The second kill never fires within the run.
			{Round: 10, DownList: []int{3}},
			{Round: 200, DownList: []int{3}},
		}, 100, ""},
	}
	for _, tc := range cases {
		err := ValidateEvents(tc.events, 8, tc.rounds)
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: expected error containing %q, got nil", tc.name, tc.want)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestReadEventsCSV pins the CSV loader: happy path, header/comment
// handling, and line-numbered parse errors.
func TestReadEventsCSV(t *testing.T) {
	got, err := ReadEventsCSV(strings.NewReader(
		"round,every,down,up\n# rack drill\n10,0,100,0\n30,0,0,100\n5,50,3,3\n"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []ChurnEvent{
		{Round: 10, Down: 100},
		{Round: 30, Up: 100},
		{Round: 5, Every: 50, Down: 3, Up: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	for _, tc := range []struct{ in, want string }{
		{"x,0,1,0\n", "line 1"},
		{"10,0,1\n", "record on line 1"},
		{"-4,0,1,0\n", "negative fields"},
		{"100,0,0,0\n", "fires nothing"},
	} {
		if _, err := ReadEventsCSV(strings.NewReader(tc.in), 10); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("input %q: error %v does not contain %q", tc.in, err, tc.want)
		}
	}
}

// TestReadEventsJSONL pins the JSONL loader, including the
// line-numbered schedule validation the satellite is about: a schedule
// that kills an already-down resource must fail AT LOAD TIME with the
// offending line.
func TestReadEventsJSONL(t *testing.T) {
	got, err := ReadEventsJSONL(strings.NewReader(
		"# compiled rack drill\n"+
			`{"round":40,"down_list":[0,1,2]}`+"\n"+
			`{"round":80,"up_list":[0,1,2]}`+"\n"+
			`{"round":5,"every":20,"down":2,"up":2}`+"\n"), 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []ChurnEvent{
		{Round: 40, DownList: []int{0, 1, 2}},
		{Round: 80, UpList: []int{0, 1, 2}},
		{Round: 5, Every: 20, Down: 2, Up: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}

	cases := []struct{ name, in, want string }{
		{"no-round", `{"down_list":[1]}`, "line 1: record must carry \"round\""},
		{"fires-nothing", `{"round":3}`, "fires nothing"},
		{"unknown-key", `{"round":3,"kill":[1]}`, "unknown field"},
		{"trailing", `{"round":3,"down":1}{"round":4,"down":1}`, "trailing data"},
		{"double-kill", `{"round":10,"down_list":[7]}` + "\n" + `{"round":20,"down_list":[7]}`,
			"line 2: round 20: kills resource 7"},
		{"revive-up", "# hi\n" + `{"round":10,"up_list":[7]}`, "line 2: round 10: revives resource 7"},
		{"out-of-range", `{"round":10,"down_list":[700]}`, "out of range"},
	}
	for _, tc := range cases {
		if _, err := ReadEventsJSONL(strings.NewReader(tc.in), 100); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadEventsFile pins extension routing.
func TestLoadEventsFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := dir + "/ev.csv"
	if err := os.WriteFile(csvPath, []byte("10,0,5,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err := LoadEventsFile(csvPath, 100)
	if err != nil || len(evs) != 1 || evs[0].Down != 5 {
		t.Fatalf("csv load: %v %+v", err, evs)
	}
	jsonPath := dir + "/ev.jsonl"
	if err := os.WriteFile(jsonPath, []byte(`{"round":1,"down_list":[3]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err = LoadEventsFile(jsonPath, 100)
	if err != nil || len(evs) != 1 || len(evs[0].DownList) != 1 {
		t.Fatalf("jsonl load: %v %+v", err, evs)
	}
	if _, err := LoadEventsFile(dir+"/ev.txt", 100); err == nil {
		t.Fatal("unknown extension accepted")
	}
}
