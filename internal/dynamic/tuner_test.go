package dynamic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/task"
	"repro/internal/walk"
)

// TestSelfTunerDownAware is the regression test for the churn bias:
// with half the fleet down, the decaying load averages diffuse over
// the full graph, so an unrenormalised estimator converges to W/n and
// the thresholds sag to (1+ε)·W/n + wmax. The up-mass renormalisation
// must instead target the live capacity's W/n_up. Here n = 40,
// n_up = 20 and every up resource holds load 10, so the correct
// threshold is (1.5)·10 + 10 = 25 while the biased estimator would
// settle at (1.5)·5 + 10 = 17.5 — far enough apart that the assertion
// window is unambiguous.
func TestSelfTunerDownAware(t *testing.T) {
	n := 40
	g := graph.Complete(n)
	weights := make([]float64, n/2)
	placement := make([]int, n/2)
	for i := range weights {
		weights[i] = 10 // one weight-10 task per up resource
		placement[i] = i
	}
	ts := task.NewSet(weights)
	s := core.NewState(g, ts, placement, core.FixedVector{V: make([]float64, n)}, 1)
	up := NewUpSet(n)
	for r := n / 2; r < n; r++ {
		up.Down(r)
	}

	tun := NewSelfTuner(walk.NewLazy(walk.NewMaxDegree(g)), 0.5)
	tun.Steps = 16 // complete graph mixes in one step; a few settle rounding
	var thr []float64
	for round := 0; round < 300; round++ {
		if v := tun.Refresh(round, s, up); v != nil {
			thr = v
		}
	}
	if thr == nil {
		t.Fatal("tuner never refreshed")
	}
	want := (1+0.5)*10 + 10 // (1+eps)·W/n_up + wmax
	for i := 0; i < up.N(); i++ {
		r := up.At(i)
		if math.Abs(thr[r]-want) > 1 {
			t.Fatalf("resource %d threshold %v, want ≈ %v (the W/n-biased estimator gives 17.5)",
				r, thr[r], want)
		}
	}
}

// TestSelfTunerChurnlessUnchanged pins the churnless fast path: while
// no resource has ever been down, the up-mass renormalisation must be
// inert — thresholds converge to (1+ε)·W/n + wmax exactly as before.
func TestSelfTunerChurnlessUnchanged(t *testing.T) {
	n := 30
	g := graph.Complete(n)
	weights := make([]float64, n)
	placement := make([]int, n)
	for i := range weights {
		weights[i] = 4
		placement[i] = i
	}
	ts := task.NewSet(weights)
	s := core.NewState(g, ts, placement, core.FixedVector{V: make([]float64, n)}, 1)
	up := NewUpSet(n)

	tun := NewSelfTuner(walk.NewLazy(walk.NewMaxDegree(g)), 0.5)
	var thr []float64
	for round := 0; round < 200; round++ {
		if v := tun.Refresh(round, s, up); v != nil {
			thr = v
		}
	}
	want := 1.5*4 + 4
	for r := range thr {
		if math.Abs(thr[r]-want) > 0.1 {
			t.Fatalf("churnless threshold[%d] = %v, want ≈ %v", r, thr[r], want)
		}
	}
}

// TestSelfTunerProportionalTargets is the heterogeneous steady-state
// regression test of the acceptance criteria: on a mixed-speed fleet
// with part of it down, the speed-aware tuner's per-resource
// thresholds must converge to within 5% of the analytic
// core.Proportional target (1+ε)·(W/S_up)·s_r + wmax. The setup places
// load exactly speed-proportionally (the protocol's fixed point), so
// the only error left is the tuner's own estimation error — EWMA lag
// plus finite diffusion — which the 5% band bounds.
func TestSelfTunerProportionalTargets(t *testing.T) {
	n := 40
	g := graph.Complete(n)
	speeds := make([]float64, n)
	for r := range speeds {
		speeds[r] = []float64{1, 2, 5, 10}[r%4]
	}
	// Resources 30..39 are down; their speed classes leave S_up too.
	sUp := 0.0
	for r := 0; r < 30; r++ {
		sUp += speeds[r]
	}
	// One task per up resource, weight 2·s_r: W = 2·S_up, and every up
	// resource already sits at its proportional share (W/S_up)·s_r.
	weights := make([]float64, 30)
	placement := make([]int, 30)
	for r := 0; r < 30; r++ {
		weights[r] = 2 * speeds[r]
		placement[r] = r
	}
	ts := task.NewSet(weights)
	s := core.NewState(g, ts, placement, core.FixedVector{V: make([]float64, n)}, 1)
	up := NewUpSet(n)
	for r := 30; r < n; r++ {
		up.Down(r)
	}

	const eps = 0.5
	tun := NewSelfTuner(walk.NewLazy(walk.NewMaxDegree(g)), eps)
	tun.Steps = 16
	tun.SetSpeeds(speeds)
	var thr []float64
	for round := 0; round < 400; round++ {
		if v := tun.Refresh(round, s, up); v != nil {
			thr = v
		}
	}
	if thr == nil {
		t.Fatal("tuner never refreshed")
	}
	w, wmax := ts.W(), ts.WMax()
	for i := 0; i < up.N(); i++ {
		r := up.At(i)
		want := (1+eps)*(w/sUp)*speeds[r] + wmax
		if math.Abs(thr[r]-want) > 0.05*want {
			t.Fatalf("resource %d (speed %g): threshold %v, want %v ± 5%% — tuner missed the (W/S_up)·s_r target",
				r, speeds[r], thr[r], want)
		}
	}
	// Cross-check against the centralised shape: the oracle tuner must
	// land on core.Proportional restricted to the up capacity exactly.
	oracle := &OracleTuner{Eps: eps}
	oracle.SetSpeeds(speeds)
	othr := oracle.Refresh(0, s, up)
	for i := 0; i < up.N(); i++ {
		r := up.At(i)
		want := (1+eps)*(w/sUp)*speeds[r] + wmax
		if math.Abs(othr[r]-want) > 1e-9*want {
			t.Fatalf("oracle resource %d: threshold %v, want exactly %v", r, othr[r], want)
		}
	}
}

// TestSelfTunerHomogeneousSpeedsMatchUniform pins the degenerate case:
// an explicit all-ones speed profile must land on the same thresholds
// as the no-speeds tuner (the hetero formula reduces to the uniform
// one when s_r = 1), so opting into the speed-aware path on a
// homogeneous fleet costs accuracy nothing.
func TestSelfTunerHomogeneousSpeedsMatchUniform(t *testing.T) {
	n := 30
	g := graph.Complete(n)
	weights := make([]float64, n)
	placement := make([]int, n)
	for i := range weights {
		weights[i] = 4
		placement[i] = i
	}
	ts := task.NewSet(weights)
	s := core.NewState(g, ts, placement, core.FixedVector{V: make([]float64, n)}, 1)
	up := NewUpSet(n)

	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	tun := NewSelfTuner(walk.NewLazy(walk.NewMaxDegree(g)), 0.5)
	tun.SetSpeeds(ones)
	var thr []float64
	for round := 0; round < 200; round++ {
		if v := tun.Refresh(round, s, up); v != nil {
			thr = v
		}
	}
	want := 1.5*4 + 4
	for r := range thr {
		if math.Abs(thr[r]-want) > 0.1 {
			t.Fatalf("all-ones speed threshold[%d] = %v, want ≈ %v", r, thr[r], want)
		}
	}
}

// TestSelfTunerRecoversAfterRejoin drives a down phase and then brings
// the fleet back: the renormalised estimate must track n_up both ways
// instead of latching onto the churn-era value.
func TestSelfTunerRecoversAfterRejoin(t *testing.T) {
	n := 20
	g := graph.Complete(n)
	weights := make([]float64, n)
	placement := make([]int, n)
	for i := range weights {
		weights[i] = 6
		placement[i] = i
	}
	ts := task.NewSet(weights)
	s := core.NewState(g, ts, placement, core.FixedVector{V: make([]float64, n)}, 1)
	up := NewUpSet(n)

	tun := NewSelfTuner(walk.NewLazy(walk.NewMaxDegree(g)), 0.5)
	tun.Steps = 16

	// Phase 1: half the fleet leaves; their load moves to resource 0
	// (crudely: just evacuate+attach like the engine's churn step).
	for r := n / 2; r < n; r++ {
		up.Down(r)
		for _, tk := range s.Evacuate(r) {
			s.Attach(tk, r-n/2)
		}
	}
	for round := 0; round < 300; round++ {
		tun.Refresh(round, s, up)
	}
	// Phase 2: everyone rejoins and the load respreads.
	for r := n / 2; r < n; r++ {
		up.Up(r)
	}
	for r := 0; r < n/2; r++ {
		tasks := s.Evacuate(r)
		s.Attach(tasks[0], r)
		s.Attach(tasks[1], r+n/2)
	}
	var thr []float64
	for round := 0; round < 600; round++ {
		if v := tun.Refresh(round, s, up); v != nil {
			thr = v
		}
	}
	want := 1.5*6 + 6 // back to W/n_up with n_up = n
	for r := range thr {
		if math.Abs(thr[r]-want) > 0.5 {
			t.Fatalf("post-rejoin threshold[%d] = %v, want ≈ %v", r, thr[r], want)
		}
	}
}
