package dynamic

import (
	"fmt"

	"repro/internal/task"
)

// External-input stepping: the live runtime (internal/serve) drives the
// engine one round at a time, pushing each round's admitted arrival
// batch and reconfiguration ops in from outside instead of drawing them
// from Config.Arrivals / Config.Churn. Everything else — service,
// tuning, the migration protocol, faults, checkpoints — runs through
// exactly the same step function as Engine.Run, which is what makes the
// lockstep replay twin possible: re-feeding the recorded StepInputs to
// a fresh engine reproduces the live run bit-for-bit.

// StepInput is one round's worth of external input.
type StepInput struct {
	// Weights are the admitted arrival weights for this round, in
	// admission order (task IDs and dispatch draws follow it). Each must
	// be a valid task weight (finite, ≥ 1).
	Weights []float64
	// Down and Up are reconfiguration ops applied ahead of any
	// config-driven churn: Down drains resources (tasks evacuate through
	// the configured re-home policy; Config.Churn.MinUp is respected),
	// Up adds them back. Indices must be in [0, n).
	Down, Up []int
}

// Step advances the engine by exactly one round using in as the
// round's external input, running the same boundary work as Run
// (window flush, telemetry, checkpoint cadence, scripted crash). It
// returns the index of the round it ran. Step must not be mixed with
// Run, and must not be called concurrently with itself or Checkpoint;
// after a Resume it continues from the snapshot's round.
func (en *Engine) Step(in StepInput) (int, error) {
	e := en.e
	t := e.nextRound
	if t >= e.cfg.Rounds {
		return t, fmt.Errorf("dynamic: step past the %d-round horizon", e.cfg.Rounds)
	}
	for i, w := range in.Weights {
		if !task.ValidWeight(w) {
			return t, fmt.Errorf("dynamic: step round %d: arrival %d weight %v violates wmin >= 1", t, i, w)
		}
	}
	for _, r := range in.Down {
		if r < 0 || r >= e.n {
			return t, fmt.Errorf("dynamic: step round %d: drain target %d outside [0, %d)", t, r, e.n)
		}
	}
	for _, r := range in.Up {
		if r < 0 || r >= e.n {
			return t, fmt.Errorf("dynamic: step round %d: add target %d outside [0, %d)", t, r, e.n)
		}
	}
	e.extActive = true
	e.extWeights, e.extDown, e.extUp = in.Weights, in.Down, in.Up
	err := e.step(t)
	e.extWeights, e.extDown, e.extUp = nil, nil, nil
	return t, err
}

// Finish closes a Step-driven run after its last stepped round and
// returns the Result (final window flush, censored recovery episodes,
// fault counters, conservation check) — the same tail Run executes
// after its loop. Call once, after the final Step.
func (en *Engine) Finish() (Result, error) {
	return en.e.finish()
}

// NextRound reports the round the next Step (or a resumed Run) would
// execute.
func (en *Engine) NextRound() int { return en.e.nextRound }

// Rounds reports the configured round horizon.
func (en *Engine) Rounds() int { return en.e.cfg.Rounds }

// LiveStats is a point-in-time view of the engine for serving-status
// endpoints. The sojourn and hop percentiles come from the always-on
// lifecycle histograms (trace.Hist over the power-of-two ladder), so
// they are bucket-resolution estimates; all are 0 until the first
// departure.
type LiveStats struct {
	NextRound      int
	InFlight       int
	InFlightWeight float64
	UpResources    int
	SojournP50     float64
	SojournP95     float64
	SojournP99     float64
	HopsP99        float64
}

// Stats reports the engine's current occupancy. Not safe concurrently
// with Step/Run.
func (en *Engine) Stats() LiveStats {
	e := en.e
	return LiveStats{
		NextRound:      e.nextRound,
		InFlight:       e.ts.Live(),
		InFlightWeight: e.s.InFlightWeight(),
		UpResources:    e.up.N(),
		SojournP50:     e.res.Sojourn.Quantile(0.50),
		SojournP95:     e.res.Sojourn.Quantile(0.95),
		SojournP99:     e.res.Sojourn.Quantile(0.99),
		HopsP99:        e.res.Hops.Quantile(0.99),
	}
}

// SetDispatch swaps the dispatch policy between rounds — the live
// runtime's online policy switch. The swap round and policy ride the
// round log, so a replay that re-applies them at the same boundaries
// stays bit-identical (dispatch draws burn the shared dispatch stream
// in admission order either way).
func (en *Engine) SetDispatch(d Dispatch) error {
	if d == nil {
		return fmt.Errorf("dynamic: SetDispatch(nil)")
	}
	e := en.e
	if e.speeds != nil {
		if sw, ok := d.(interface{ Prime([]float64) }); ok {
			sw.Prime(e.speeds)
		}
	}
	e.dispatch = d
	return nil
}
