package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/walk"
)

// testDomains labels the n resources as four contiguous "rack"
// domains — the synthetic layout the CLI's -synthracks produces.
func testDomains(n int) []obs.Domains {
	of := make([]int32, n)
	for r := range of {
		of[r] = int32(r * 4 / n)
	}
	return []obs.Domains{{Level: "rack", Of: of,
		Names: []string{"rack0", "rack1", "rack2", "rack3"}}}
}

// drainAll empties a subscription after the run finished (every event
// is already buffered, so Poll alone drains it).
func drainAll(sub *obs.Subscription) []obs.Event {
	var all []obs.Event
	buf := make([]obs.Event, 0, 256)
	for {
		evs := sub.Poll(buf)
		if len(evs) == 0 {
			return all
		}
		all = append(all, evs...)
	}
}

// TestObserverDeterminism is the golden observer test: attaching the
// full observability stack — a broker with an all-kinds subscription,
// per-shard windows, domain windows, OnWindow and OnLanes — must leave
// the Result bit-for-bit identical to the unobserved run for every
// worker count, and the fleet-level event stream (windows, domain
// windows, recovery episodes) must itself be identical across worker
// counts once broker sequence numbers are cleared. The workload
// includes a mass failure so recovery-episode events fire.
func TestObserverDeterminism(t *testing.T) {
	const n = 200
	g := graph.RandomRegular(n, 8, rng.NewSeeded(21))
	build := func(seed uint64, workers int) Config {
		return goldenConfig(n, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			g, Churn{
				MinUp: 50,
				Events: []ChurnEvent{
					{Round: 60, Down: 100},
					{Round: 150, Up: 100},
				},
			}, seed, workers)
	}
	fleetKinds := obs.Mask(obs.KindWindow, obs.KindDomainWindow,
		obs.KindRecoveryStart, obs.KindRecoveryEnd)
	for _, seed := range []uint64{1, 2, 3} {
		var ref Result
		var refFleet []obs.Event
		for _, workers := range []int{1, 2, 4, 8} {
			plain, err := Run(build(seed, workers))
			if err != nil {
				t.Fatalf("seed %d workers %d unobserved: %v", seed, workers, err)
			}

			cfg := build(seed, workers)
			cfg.Domains = testDomains(n)
			broker := obs.NewBroker()
			cfg.Obs = broker
			sub := broker.Subscribe(obs.SubOptions{Capacity: 1 << 15})
			var windowEnds, laneRounds []int
			cfg.OnWindow = func(w WindowStats) { windowEnds = append(windowEnds, w.End) }
			cfg.OnLanes = func(round, _ int, _ []int64) { laneRounds = append(laneRounds, round) }
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d observed: %v", seed, workers, err)
			}
			broker.Close()

			// Invariant 1: observation never perturbs the simulation.
			if !reflect.DeepEqual(res, plain) {
				t.Fatalf("seed %d workers %d: observer changed the Result\nobserved   %+v\nunobserved %+v",
					seed, workers, res, plain)
			}
			// Invariant 2: golden cross-worker determinism holds with
			// subscribers attached.
			if workers == 1 {
				ref = res
			} else if !reflect.DeepEqual(res, ref) {
				t.Fatalf("seed %d: observed workers=%d run diverges from sequential\ngot  %+v\nwant %+v",
					seed, workers, res, ref)
			}

			// Callbacks arrive in round order for any worker count.
			for i := 1; i < len(windowEnds); i++ {
				if windowEnds[i] <= windowEnds[i-1] {
					t.Fatalf("seed %d workers %d: OnWindow out of round order: %v", seed, workers, windowEnds)
				}
			}
			for i := 1; i < len(laneRounds); i++ {
				if laneRounds[i] <= laneRounds[i-1] {
					t.Fatalf("seed %d workers %d: OnLanes out of round order: %v", seed, workers, laneRounds)
				}
			}

			evs := drainAll(sub)
			if sub.Dropped() != 0 {
				t.Fatalf("seed %d workers %d: capacity-%d subscription dropped %d events",
					seed, workers, 1<<15, sub.Dropped())
			}
			if len(evs) == 0 {
				t.Fatalf("seed %d workers %d: no events published", seed, workers)
			}
			checkEventStream(t, evs, n, workers, seed)

			// Invariant 3: the fleet-level stream — windows, domain
			// windows, recovery transitions — is identical across worker
			// counts once broker-assigned Seq numbers are cleared.
			// (Shard-scoped events legitimately differ: the partition IS
			// the worker count.)
			var fleet []obs.Event
			for _, ev := range evs {
				if fleetKinds.Has(ev.Kind) {
					ev.Seq = 0
					fleet = append(fleet, ev)
				}
			}
			if workers == 1 {
				refFleet = fleet
				hasRec := false
				for _, ev := range fleet {
					if ev.Kind == obs.KindRecoveryStart {
						hasRec = true
					}
				}
				if !hasRec {
					t.Fatalf("seed %d: mass failure published no recovery events", seed)
				}
			} else if !reflect.DeepEqual(fleet, refFleet) {
				t.Fatalf("seed %d: workers=%d fleet-level event stream diverges (%d vs %d events)",
					seed, workers, len(fleet), len(refFleet))
			}
		}
	}
}

// checkEventStream validates the per-run structural invariants of the
// full event feed: monotone rounds per kind-class, shard windows that
// partition [0, n) for every metrics window, and lane/phase events
// consistent with the shard count.
func checkEventStream(t *testing.T, evs []obs.Event, n, workers int, seed uint64) {
	t.Helper()
	lastSeq := uint64(0)
	shardCover := map[int]int{} // window end -> resources covered
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("seed %d workers %d: Seq not strictly increasing (%d after %d)",
				seed, workers, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case obs.KindShardWindow:
			sw := ev.ShardWindow
			if sw.Lo < 0 || sw.Hi > n || sw.Lo >= sw.Hi {
				t.Fatalf("seed %d workers %d: bad shard window range [%d,%d)", seed, workers, sw.Lo, sw.Hi)
			}
			shardCover[sw.End] += sw.Hi - sw.Lo
		case obs.KindDomainWindow:
			if ev.DomainWindow.Level != "rack" || ev.DomainWindow.Name == "" {
				t.Fatalf("seed %d workers %d: bad domain window %+v", seed, workers, ev.DomainWindow)
			}
		case obs.KindLanes:
			if s := ev.Lane.Shard; s < 0 || s >= workers {
				t.Fatalf("seed %d workers %d: lane event for shard %d", seed, workers, s)
			}
		case obs.KindPhase:
			if s := ev.Phase.Shard; s < -1 || s >= workers {
				t.Fatalf("seed %d workers %d: phase event for shard %d", seed, workers, s)
			}
		}
	}
	if len(shardCover) == 0 {
		t.Fatalf("seed %d workers %d: no shard window events", seed, workers)
	}
	for end, covered := range shardCover {
		if covered != n {
			t.Fatalf("seed %d workers %d: shard windows ending at %d cover %d of %d resources",
				seed, workers, end, covered, n)
		}
	}
}

// TestObserverMidRunSubscribe: a subscription opened from a window
// callback mid-run sees only later events and still cannot perturb the
// outcome — the broker supports live attach the way the HTTP exporter
// needs.
func TestObserverMidRunSubscribe(t *testing.T) {
	const n = 120
	g := graph.Complete(n)
	build := func() Config {
		return goldenConfig(n, core.UserControlled{Alpha: 1}, g,
			Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 60}, 7, 4)
	}
	plain, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	cfg := build()
	broker := obs.NewBroker()
	cfg.Obs = broker
	var late *obs.Subscription
	cfg.OnWindow = func(w WindowStats) {
		if late == nil && w.End >= 100 {
			late = broker.Subscribe(obs.SubOptions{Capacity: 1 << 14,
				Kinds: obs.Mask(obs.KindWindow)})
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	broker.Close()
	if !reflect.DeepEqual(res, plain) {
		t.Fatalf("mid-run subscriber changed the Result:\ngot  %+v\nwant %+v", res, plain)
	}
	if late == nil {
		t.Fatal("window callback never fired past round 100")
	}
	evs := drainAll(late)
	if len(evs) == 0 {
		t.Fatal("late subscription saw no window events")
	}
	for _, ev := range evs {
		if ev.Kind != obs.KindWindow {
			t.Fatalf("mask leak: %v event on a window-only subscription", ev.Kind)
		}
		// The subscription opens inside the round-100 flush, so that
		// window itself may still land in it; earlier ones must not.
		if ev.Round < 100 {
			t.Fatalf("late subscription saw pre-attach event from round %d", ev.Round)
		}
	}
}
