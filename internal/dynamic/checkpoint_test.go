package dynamic

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// detKinds is the event-kind set the crash/resume golden suite holds
// byte-identical: every kind whose payload is part of the determinism
// contract. Excluded are the wall-clock kinds (KindPhase, KindShardCost)
// and the shard-bound-dependent ones (KindShardWindow, KindLanes) —
// shard boundaries rebalance on measured cost and are not snapshot
// state.
var detKinds = obs.Mask(obs.KindWindow, obs.KindDomainWindow,
	obs.KindRecoveryStart, obs.KindRecoveryEnd, obs.KindFaults,
	obs.KindQuarantine, obs.KindAlert, obs.KindCheckpoint,
	obs.KindTraceHist)

// ckptCapture is one observed run: its Result, the deterministic-kind
// event stream, and every checkpoint it wrote (bytes copied).
type ckptCapture struct {
	res   Result
	err   error
	evs   []obs.Event
	snaps map[int][]byte
}

// runCkpt executes cfg — from scratch when snap is nil, resumed from
// snap otherwise — with a broker attached and every checkpoint
// captured.
func runCkpt(t *testing.T, cfg Config, snap []byte) ckptCapture {
	t.Helper()
	broker := obs.NewBroker()
	cfg.Obs = broker
	sub := broker.Subscribe(obs.SubOptions{Capacity: 1 << 15, Kinds: detKinds})
	snaps := map[int][]byte{}
	cfg.OnCheckpoint = func(round int, data []byte) error {
		snaps[round] = append([]byte(nil), data...)
		return nil
	}
	var res Result
	var err error
	if snap == nil {
		res, err = Run(cfg)
	} else {
		var eng *Engine
		eng, err = Resume(bytes.NewReader(snap), cfg)
		if err == nil {
			res, err = eng.Run()
			eng.Close()
		}
	}
	broker.Close()
	if n := sub.Dropped(); n > 0 {
		t.Fatalf("subscription dropped %d events; raise the test ring capacity", n)
	}
	return ckptCapture{res: res, err: err, evs: drainAll(sub), snaps: snaps}
}

// prefixThroughCheckpoint cuts a crashed run's event stream directly
// after the checkpoint marker for `round` — the exact prefix the
// resumed run's stream continues.
func prefixThroughCheckpoint(t *testing.T, evs []obs.Event, round int) []obs.Event {
	t.Helper()
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == obs.KindCheckpoint && evs[i].Round == round {
			return evs[:i+1]
		}
	}
	t.Fatalf("no checkpoint event for round %d in the crashed stream", round)
	return nil
}

// requireSameEvents fails with the first diverging event.
func requireSameEvents(t *testing.T, label string, got, want []obs.Event) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: event %d diverges\ngot  %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
	t.Fatalf("%s: event stream length %d, want %d", label, len(got), len(want))
}

// TestCheckpointCrashResumeGolden is the headline crash-recovery
// contract: for seeds {1, 2, 3}, workers {1, 2, 4, 8} and three fault
// regimes (fault-free churn, message loss with retry/timeout, scripted
// partition + flapping quarantine), a run killed at a randomized round
// and resumed from its last checkpoint must finish byte-identical to
// the uninterrupted run — same Result, same deterministic-kind event
// stream (sequence numbers included), and every post-resume checkpoint
// byte-for-byte equal to the uninterrupted run's checkpoint at the
// same round.
func TestCheckpointCrashResumeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("crash/resume matrix is not short")
	}
	g := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	proto := func() core.Protocol {
		return core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))}
	}
	const rounds, window, every = 160, 40, 30
	base := func(seed uint64, workers int) Config {
		cfg := goldenConfig(200, proto(), g,
			Churn{LeaveProb: 0.3, JoinProb: 0.3, MinUp: 100}, seed, workers)
		cfg.Rounds = rounds
		cfg.Window = window
		cfg.CheckpointEvery = every
		cfg.Domains = testDomains(200)
		cfg.AlertBudget = 0.2
		cfg.AlertWindows = 2
		return cfg
	}
	quarter := make([]int, 50)
	for i := range quarter {
		quarter[i] = i
	}
	cases := []struct {
		name  string
		build func(seed uint64, workers int) Config
	}{
		{"churn", base},
		{"loss-retry", func(seed uint64, workers int) Config {
			cfg := base(seed, workers)
			cfg.Faults = &faults.Plan{Loss: 0.2, RetryBase: 1, RetryCap: 4, Timeout: 12}
			return cfg
		}},
		{"partition-quarantine", func(seed uint64, workers int) Config {
			cfg := base(seed, workers)
			cfg.Faults = &faults.Plan{
				Loss:       0.05,
				RetryBase:  1,
				RetryCap:   4,
				Timeout:    12,
				Partitions: []faults.Partition{{Start: 50, End: 120, Members: quarter}},
			}
			cfg.Quarantine = Quarantine{Flaps: 2, Window: 40, Cooloff: 25}
			return cfg
		}},
	}
	crashRng := rng.NewSeeded(0xC4A54)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 3} {
				var refRes Result
				for _, workers := range []int{1, 2, 4, 8} {
					baseline := runCkpt(t, tc.build(seed, workers), nil)
					if baseline.err != nil {
						t.Fatalf("seed %d workers %d baseline: %v", seed, workers, baseline.err)
					}
					if workers == 1 {
						refRes = baseline.res
					} else if !reflect.DeepEqual(baseline.res, refRes) {
						t.Fatalf("seed %d: baseline diverges at workers=%d", seed, workers)
					}

					// Kill a second run at a randomized round past the first
					// checkpoint.
					crashAt := every + crashRng.Intn(rounds-every)
					ccfg := tc.build(seed, workers)
					ccfg.CrashAfterRound = crashAt
					crashed := runCkpt(t, ccfg, nil)
					if !errors.Is(crashed.err, ErrCrashed) {
						t.Fatalf("seed %d workers %d: crash run returned %v, want ErrCrashed", seed, workers, crashed.err)
					}
					for r, b := range crashed.snaps {
						if !bytes.Equal(b, baseline.snaps[r]) {
							t.Fatalf("seed %d workers %d: checkpoint at round %d differs between baseline and crashed run", seed, workers, r)
						}
					}

					last := (crashAt / every) * every
					snap := crashed.snaps[last]
					if snap == nil {
						t.Fatalf("seed %d workers %d: crashed at %d with no checkpoint for round %d", seed, workers, crashAt, last)
					}
					resumed := runCkpt(t, tc.build(seed, workers), snap)
					if resumed.err != nil {
						t.Fatalf("seed %d workers %d: resume from round %d: %v", seed, workers, last, resumed.err)
					}
					if !reflect.DeepEqual(resumed.res, baseline.res) {
						t.Fatalf("seed %d workers %d: resumed Result diverges (crash %d, resume %d)\ngot  %+v\nwant %+v",
							seed, workers, crashAt, last, resumed.res, baseline.res)
					}
					stream := append(prefixThroughCheckpoint(t, crashed.evs, last), resumed.evs...)
					requireSameEvents(t, tc.name, stream, baseline.evs)
					for r, b := range resumed.snaps {
						if r <= last {
							t.Fatalf("seed %d workers %d: resumed run rewrote checkpoint %d", seed, workers, r)
						}
						if !bytes.Equal(b, baseline.snaps[r]) {
							t.Fatalf("seed %d workers %d: post-resume checkpoint at round %d differs from baseline", seed, workers, r)
						}
					}
				}
			}
		})
	}
}

// TestResumeAcrossWorkerCounts pins worker-count independence of the
// snapshot itself: a checkpoint written by a 4-worker run resumes at 1,
// 2 and 8 workers and still reproduces the sequential baseline Result.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	g := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	const rounds, every, crashAt = 160, 30, 97
	build := func(workers int) Config {
		cfg := goldenConfig(200, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			g, Churn{LeaveProb: 0.3, JoinProb: 0.3, MinUp: 100}, 5, workers)
		cfg.Rounds = rounds
		cfg.Window = 40
		cfg.CheckpointEvery = every
		cfg.Faults = &faults.Plan{Loss: 0.1, RetryBase: 1, RetryCap: 4, Timeout: 10}
		cfg.Domains = testDomains(200)
		cfg.AlertBudget = 0.2
		cfg.AlertWindows = 2
		return cfg
	}
	baseline := runCkpt(t, build(1), nil)
	if baseline.err != nil {
		t.Fatal(baseline.err)
	}
	ccfg := build(4)
	ccfg.CrashAfterRound = crashAt
	crashed := runCkpt(t, ccfg, nil)
	if !errors.Is(crashed.err, ErrCrashed) {
		t.Fatalf("crash run returned %v, want ErrCrashed", crashed.err)
	}
	snap := crashed.snaps[90]
	if snap == nil {
		t.Fatal("no checkpoint at round 90")
	}
	for _, workers := range []int{1, 2, 8} {
		resumed := runCkpt(t, build(workers), snap)
		if resumed.err != nil {
			t.Fatalf("resume at workers=%d: %v", workers, resumed.err)
		}
		if !reflect.DeepEqual(resumed.res, baseline.res) {
			t.Fatalf("4-worker checkpoint resumed at workers=%d diverges from the sequential baseline", workers)
		}
	}
}

// smallCkptConfig is the corruption-matrix workload: tiny, fast, no
// broker (the decoder paths under test are config-independent).
func smallCkptConfig() Config {
	g := graph.Complete(50)
	return Config{
		Graph:    g,
		Protocol: core.UserControlled{Alpha: 1},
		Arrivals: Poisson{Rate: 10, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Tuner: &SelfTuner{Eps: 0.5, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Churn:  Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 25},
		Rounds: 40,
		Window: 20,
		Seed:   9,
	}
}

// writeSmallSnapshot produces one valid checkpoint of the small
// workload (written at round 20).
func writeSmallSnapshot(t *testing.T) []byte {
	t.Helper()
	cfg := smallCkptConfig()
	cfg.CheckpointEvery = 20
	cfg.CrashAfterRound = 25
	var snap []byte
	cfg.OnCheckpoint = func(round int, data []byte) error {
		if round == 20 {
			snap = append([]byte(nil), data...)
		}
		return nil
	}
	if _, err := Run(cfg); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash run returned %v, want ErrCrashed", err)
	}
	if snap == nil {
		t.Fatal("no checkpoint written at round 20")
	}
	return snap
}

// TestResumeRejectsCorruptSnapshots drives the decoder through the
// corruption matrix: truncations at every region, single-bit flips
// across the whole file, and config mismatches must all fail restore
// with an error — never load silently, never panic.
func TestResumeRejectsCorruptSnapshots(t *testing.T) {
	snap := writeSmallSnapshot(t)

	// Sanity: the pristine snapshot restores and finishes identically.
	full, err := Run(smallCkptConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Resume(bytes.NewReader(snap), smallCkptConfig())
	if err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	res, err := eng.Run()
	eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, full) {
		t.Fatal("pristine resume diverges from the uninterrupted run")
	}

	for _, cut := range []int{0, 1, 7, 8, len(snap) / 4, len(snap) / 2, len(snap) - 9, len(snap) - 1} {
		if _, err := Resume(bytes.NewReader(snap[:cut]), smallCkptConfig()); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes loaded silently", cut, len(snap))
		}
	}

	for off := 0; off < len(snap); off += 41 {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0x10
		if _, err := Resume(bytes.NewReader(mut), smallCkptConfig()); err == nil {
			t.Fatalf("bit flip at offset %d loaded silently", off)
		}
	}

	mismatches := []struct {
		name     string
		mutate   func(*Config)
		fragment string
	}{
		{"seed", func(c *Config) { c.Seed = 999 }, "seed"},
		{"rounds", func(c *Config) { c.Rounds = 80 }, "horizon"},
		{"window", func(c *Config) { c.Window = 10 }, "window"},
		{"faults", func(c *Config) {
			c.Faults = &faults.Plan{Loss: 0.1, RetryBase: 1, RetryCap: 2, Timeout: 8}
		}, "fault-injector"},
		{"quarantine", func(c *Config) {
			c.Quarantine = Quarantine{Flaps: 2, Window: 10, Cooloff: 10}
		}, "quarantine"},
		{"tuner", func(c *Config) { c.Tuner = &OracleTuner{Eps: 0.5} }, "tuner"},
	}
	for _, m := range mismatches {
		cfg := smallCkptConfig()
		m.mutate(&cfg)
		_, err := Resume(bytes.NewReader(snap), cfg)
		if err == nil {
			t.Fatalf("%s mismatch loaded silently", m.name)
		}
		if !strings.Contains(err.Error(), m.fragment) {
			t.Fatalf("%s mismatch error %q does not mention %q", m.name, err, m.fragment)
		}
	}
}

// TestManualEngineCheckpoint pins the explicit Engine API: a snapshot
// taken before the first round resumes into the full run, bit for bit.
func TestManualEngineCheckpoint(t *testing.T) {
	full, err := Run(smallCkptConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(smallCkptConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	resumed, err := Resume(&buf, smallCkptConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	resumed.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, full) {
		t.Fatal("round-0 checkpoint resume diverges from the plain run")
	}
}

// TestResumeSteadyStateZeroAllocs extends the zero-alloc contract to
// the resumed engine with live cadence checkpointing: past restore and
// encoder warm-up, steady-state rounds (checkpoint encoding included)
// allocate nothing.
func TestResumeSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark is not short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := graph.RandomRegular(256, 8, rng.NewSeeded(3))
	res := testing.Benchmark(func(b *testing.B) {
		const warm = 64
		build := func() Config {
			return Config{
				Graph:    g,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: Poisson{Rate: 0.8 * 256 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service:  WeightProportional{Rate: 1},
				Tuner: &SelfTuner{Eps: 0.5, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Rounds:          b.N + warm,
				Window:          1 << 30,
				Seed:            0x5eed,
				CheckpointEvery: warm,
			}
		}
		cfg := build()
		cfg.CrashAfterRound = warm
		var snap []byte
		cfg.OnCheckpoint = func(round int, data []byte) error {
			snap = append(snap[:0], data...)
			return nil
		}
		if _, err := Run(cfg); !errors.Is(err, ErrCrashed) {
			b.Fatalf("warm run returned %v, want ErrCrashed", err)
		}
		eng, err := Resume(bytes.NewReader(snap), build())
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ReportAllocs()
		b.ResetTimer()
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("resumed steady-state round allocates %d times/op (%d B/op), want 0",
			allocs, res.AllocedBytesPerOp())
	}
}

// TestResumeRejectsSpentCrashDrill pins the Resume-side guard for the
// mutually-exclusive resume + crash-drill combination: a snapshot at or
// past Config.CrashAfterRound must be rejected with a message saying
// the scripted crash can never fire, while a drill still ahead of the
// snapshot round stays allowed.
func TestResumeRejectsSpentCrashDrill(t *testing.T) {
	snap := writeSmallSnapshot(t) // captures round 20 of a 40-round run
	cases := []struct {
		name    string
		crashAt int
		wantErr string // "" = must resume cleanly
	}{
		{"crash round already passed", 10,
			"dynamic: snapshot resumes at round 20, at or past Config.CrashAfterRound 10 — the scripted crash can never fire; drop CrashAfterRound to resume"},
		{"crash round equals snapshot round", 20,
			"dynamic: snapshot resumes at round 20, at or past Config.CrashAfterRound 20 — the scripted crash can never fire; drop CrashAfterRound to resume"},
		{"crash round still ahead", 30, ""},
		{"no crash drill", 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCkptConfig()
			cfg.CrashAfterRound = tc.crashAt
			eng, err := Resume(bytes.NewReader(snap), cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Resume: %v", err)
				}
				eng.Close()
				return
			}
			if err == nil {
				eng.Close()
				t.Fatalf("Resume accepted a spent crash drill (CrashAfterRound=%d)", tc.crashAt)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("error = %q, want %q", err, tc.wantErr)
			}
		})
	}
}
