package dynamic

import (
	"bytes"
	"testing"

	"repro/internal/task"
)

// Fuzz harnesses for the file-format parsers: the CSV/JSONL arrival
// trace loaders and the speed-column (resource,speed) profile loaders.
// The contract under fuzzing is uniform — malformed input must return
// an error, never panic, and anything accepted must satisfy the
// loaders' validation guarantees (weights ≥ 1, speeds positive and
// finite, in-range unique resources) — so replayed production logs and
// fleet inventories can never smuggle invalid state into a run. Seed
// corpora live in testdata/fuzz/<FuzzName>/ alongside the f.Add seeds
// below; run with
//
//	go test -run '^$' -fuzz FuzzReadTraceCSV -fuzztime 30s ./internal/dynamic
//
// (one target per invocation; CI smoke-runs all four).

func FuzzReadTraceCSV(f *testing.F) {
	f.Add([]byte("round,weight\n0,1\n1,2.5\n"))
	f.Add([]byte("# comment\n3,1\n0,20\n3,1.25\n"))
	f.Add([]byte("0,0.5\n"))
	f.Add([]byte("-1,2\n"))
	f.Add([]byte("x,y\n"))
	f.Add([]byte("0,1,2\n"))
	f.Add([]byte(",\n"))
	f.Add([]byte("9999999,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTraceCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		for round, ws := range tr.Rounds {
			for _, w := range ws {
				if !task.ValidWeight(w) {
					t.Fatalf("accepted invalid weight %v in round %d", w, round)
				}
			}
		}
	})
}

func FuzzReadTraceJSONL(f *testing.F) {
	f.Add([]byte(`{"round":0,"weight":1}`))
	f.Add([]byte("{\"round\":2,\"weight\":3.5}\n# c\n\n{\"round\":0,\"weight\":1}\n"))
	f.Add([]byte(`{"round":-1,"weight":1}`))
	f.Add([]byte(`{"round":0,"weight":0.1}`))
	f.Add([]byte(`{"round":0,"weight":1e308}`))
	f.Add([]byte(`{"round":0,"weight":1,"extra":2}`))
	f.Add([]byte("{"))
	f.Add([]byte("null"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTraceJSONL(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		for round, ws := range tr.Rounds {
			for _, w := range ws {
				if !task.ValidWeight(w) {
					t.Fatalf("accepted invalid weight %v in round %d", w, round)
				}
			}
		}
	})
}

// checkFuzzedSpeeds validates the acceptance guarantees shared by both
// speed parsers.
func checkFuzzedSpeeds(t *testing.T, speeds []float64, n int) {
	t.Helper()
	if len(speeds) != n {
		t.Fatalf("accepted profile has %d entries for n=%d", len(speeds), n)
	}
	for r, s := range speeds {
		if !ValidSpeed(s) {
			t.Fatalf("accepted invalid speed %v for resource %d", s, r)
		}
	}
}

func FuzzReadSpeedsCSV(f *testing.F) {
	f.Add([]byte("resource,speed\n0,10\n2,2.5\n"), 8)
	f.Add([]byte("# fleet\n1,1\n"), 4)
	f.Add([]byte("0,0\n"), 4)
	f.Add([]byte("-1,1\n"), 4)
	f.Add([]byte("0,1\n0,2\n"), 4)
	f.Add([]byte("0,NaN\n"), 4)
	f.Add([]byte("0,+Inf\n"), 4)
	f.Add([]byte("7,1\n"), 4)
	f.Add([]byte("a,b\n"), 0)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<12 {
			n = 16 // keep the dense output small; size is not the target
		}
		speeds, err := ReadSpeedsCSV(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		checkFuzzedSpeeds(t, speeds, n)
	})
}

func FuzzReadSpeedsJSONL(f *testing.F) {
	f.Add([]byte(`{"resource":0,"speed":2}`), 4)
	f.Add([]byte("{\"resource\":1,\"speed\":0.5}\n# c\n{\"resource\":0,\"speed\":10}\n"), 4)
	f.Add([]byte(`{"resource":-1,"speed":1}`), 4)
	f.Add([]byte(`{"resource":0,"speed":-2}`), 4)
	f.Add([]byte(`{"resource":0,"speed":null}`), 4)
	f.Add([]byte(`{"resource":9,"speed":1}`), 4)
	f.Add([]byte(`{"resource":0,"pace":1}`), 4)
	f.Add([]byte("{"), 4)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<12 {
			n = 16
		}
		speeds, err := ReadSpeedsJSONL(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		checkFuzzedSpeeds(t, speeds, n)
	})
}
