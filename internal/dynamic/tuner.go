package dynamic

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/walk"
)

// Tuner re-estimates the threshold vector online as the in-flight
// population drifts — the self-learning knob of the open system. The
// engine calls Refresh after every round; a non-nil return value
// replaces the state's thresholds. Tuners are stateful (decaying
// averages, cached vectors): construct a fresh one per run, or
// back-to-back runs with the same seed will diverge.
type Tuner interface {
	// Refresh observes the post-round state and returns a fresh
	// threshold vector when an update is due, or nil to keep the
	// current one.
	Refresh(round int, s *core.State, up *UpSet) []float64
	// Name identifies the tuner in reports.
	Name() string
}

// PooledTuner is implemented by tuners whose per-resource sweeps
// (decaying averages, diffusion steps) can run on the engine's worker
// pool. RefreshPooled must return bit-identical vectors for every
// worker count, including the plain Refresh path — each output entry
// is computed by exactly one worker with a fixed-order inner loop.
type PooledTuner interface {
	Tuner
	RefreshPooled(round int, s *core.State, up *UpSet, pool *par.Pool) []float64
}

// SpeedAwareTuner is implemented by tuners that generalise their
// estimates to heterogeneous fleets. The engine calls SetSpeeds with
// the validated per-resource speed profile before the first round
// (only when Config.Speeds is set), and the tuner must thereafter
// target the speed-proportional thresholds
//
//	T_r = (1+ε)·(W/S_up)·s_r + wmax,  S_up = Σ_{up} s_r
//
// — the core.Proportional shape restricted to the live capacity —
// instead of the uniform (1+ε)·W/n_up + wmax.
type SpeedAwareTuner interface {
	Tuner
	SetSpeeds(speeds []float64)
}

// OracleTuner recomputes the thresholds every Every rounds from the
// exact in-flight weight — centralised knowledge, the upper baseline
// the decentralised tuner is measured against. Homogeneous fleets get
// the uniform T = (1+Eps)·W(t)/n_up + wmax; with a speed profile set
// the vector is core.Proportional restricted to the up capacity,
// T_r = (1+Eps)·W(t)·s_r/S_up + wmax.
type OracleTuner struct {
	Eps    float64 // threshold slack, > 0
	Every  int     // refresh period in rounds; 0 means every round
	speeds []float64
	thr    []float64
}

// SetSpeeds implements SpeedAwareTuner.
func (o *OracleTuner) SetSpeeds(speeds []float64) { o.speeds = speeds }

// Refresh implements Tuner.
func (o *OracleTuner) Refresh(round int, s *core.State, up *UpSet) []float64 {
	if o.Eps <= 0 {
		panic("dynamic: OracleTuner.Eps must be > 0")
	}
	every := o.Every
	if every <= 0 {
		every = 1
	}
	if round%every != 0 {
		return nil
	}
	n := s.N()
	if o.thr == nil {
		o.thr = make([]float64, n)
	}
	if o.speeds != nil {
		if len(o.speeds) != n {
			panic(fmt.Sprintf("dynamic: OracleTuner has %d speeds for %d resources", len(o.speeds), n))
		}
		sUp := 0.0
		for i := 0; i < up.N(); i++ {
			sUp += o.speeds[up.At(i)]
		}
		prop := core.Proportional{Speeds: o.speeds, Eps: o.Eps}
		prop.ShareInto(o.thr, s.InFlightWeight(), s.LiveWMax(), sUp)
		return o.thr
	}
	t := (1+o.Eps)*s.InFlightWeight()/float64(up.N()) + s.LiveWMax()
	for r := range o.thr {
		o.thr[r] = t
	}
	return o.thr
}

// Validate implements the optional config check.
func (o *OracleTuner) Validate() error {
	if o.Eps <= 0 {
		return fmt.Errorf("dynamic: OracleTuner.Eps %v must be > 0", o.Eps)
	}
	return nil
}

// Name identifies the tuner.
func (o *OracleTuner) Name() string { return fmt.Sprintf("oracle(eps=%g)", o.Eps) }

// SelfTuner is the decentralised threshold estimator: every resource
// keeps an exponentially decaying average of its own load,
//
//	est_r ← Decay·est_r + (1−Decay)·x_r(t),
//
// and every Every rounds the estimates run Steps rounds of continuous
// diffusion over the resource graph (the paper's footnote-1 substrate),
// concentrating them around the system-wide average load. Each
// resource then sets its own threshold T_r = (1+Eps)·est_r + wmax.
//
// Under resource churn the raw diffusion average is the wrong target:
// down resources hold zero load, so the estimates concentrate around
// W/n instead of the live capacity's W/n_up, and thresholds sag as
// churn deepens. The tuner therefore runs a push-sum style
// renormalisation: alongside est it maintains an identically decayed
// and diffused up-mass vector
//
//	upw_r ← Decay·upw_r + (1−Decay)·1{r up},
//
// and divides the diffused load estimate by the diffused up-mass, so
// each resource's ratio converges to (Σ est)/(Σ upw) ≈ W/n_up with no
// global knowledge. While no resource has ever been down, upw is
// exactly 1 everywhere and the division is skipped, keeping the
// churnless hot path at one diffusion per refresh. No resource ever
// reads global state — arrivals, departures and churn are absorbed by
// the decaying averages, and the slack Eps covers the estimation
// error, exactly as it covers the static estimation error in the
// paper.
//
// Heterogeneous fleets (SetSpeeds) generalise the companion vector
// from up-mass to SPEED-mass: each resource decays
//
//	upw_r ← Decay·upw_r + (1−Decay)·s_r·1{r up},
//
// so the diffused ratio converges to (Σ est)/(Σ s·1{up}) ≈ W/S_up —
// the per-unit-speed fair share — and resource r sets
// T_r = (1+Eps)·(W/S_up)·s_r + wmax, the core.Proportional target
// restricted to the live capacity (Adolphs–Berenbrink's
// speed-proportional thresholds, learned online). The speed-mass
// diffusion always runs in this mode (even churnless, since the load
// average alone diffuses to W/n, not W/S); with no speed profile the
// homogeneous code path is untouched bit for bit.
type SelfTuner struct {
	Eps    float64     // threshold slack, > 0
	Decay  float64     // EWMA decay in (0,1); 0 means the default 0.8
	Every  int         // rounds between diffusion refreshes; default 10
	Steps  int         // diffusion steps per refresh; default 8
	Kernel walk.Kernel // diffusion kernel; required

	speeds []float64 // per-resource speeds; nil = homogeneous

	est []float64
	upw []float64
	thr []float64
	// Diffusion ping-pong buffers, reused across refreshes.
	zEst, zEstNext []float64
	zUp, zUpNext   []float64
	// churned latches once any resource has been observed down; only
	// then is the up-mass diffusion and division paid for. A speed
	// profile latches it from the start — the speed-mass companion is
	// what turns the diffused load average into a per-unit-speed share.
	churned bool

	// Pooled-sweep wiring: the phase closures are bound once and read
	// the fields below, so dispatching a sweep allocates nothing.
	s          *core.State
	up         *UpSet
	pool       *par.Pool
	decayFn    func(int)
	diffuseFn  func(int)
	thrFn      func(int)
	src, dst   []float64
	srcU, dstU []float64
	diffuseUp  bool
}

// NewSelfTuner returns a SelfTuner with the package defaults
// (Decay 0.8, Every 10, Steps 8).
func NewSelfTuner(k walk.Kernel, eps float64) *SelfTuner {
	return &SelfTuner{Eps: eps, Decay: 0.8, Every: 10, Steps: 8, Kernel: k}
}

// SetSpeeds implements SpeedAwareTuner: thresholds thereafter converge
// to the speed-proportional (1+Eps)·(W/S_up)·s_r + wmax targets. Must
// be called before the first Refresh.
func (st *SelfTuner) SetSpeeds(speeds []float64) {
	if st.est != nil {
		panic("dynamic: SelfTuner.SetSpeeds after the first Refresh")
	}
	st.speeds = speeds
}

// Refresh implements Tuner (the single-worker sweep).
func (st *SelfTuner) Refresh(round int, s *core.State, up *UpSet) []float64 {
	return st.RefreshPooled(round, s, up, nil)
}

// RefreshPooled implements PooledTuner. A nil pool runs the sweeps
// inline; any pool produces bit-identical thresholds.
func (st *SelfTuner) RefreshPooled(round int, s *core.State, up *UpSet, pool *par.Pool) []float64 {
	if st.Eps <= 0 {
		panic("dynamic: SelfTuner.Eps must be > 0")
	}
	if st.Kernel == nil {
		panic("dynamic: SelfTuner.Kernel is required")
	}
	if st.Decay < 0 || st.Decay >= 1 {
		panic("dynamic: SelfTuner.Decay must be in [0,1)")
	}
	every := st.Every
	if every <= 0 {
		every = 10
	}
	steps := st.Steps
	if steps <= 0 {
		steps = 8
	}
	n := s.N()
	if st.est == nil {
		if st.speeds != nil && len(st.speeds) != n {
			panic(fmt.Sprintf("dynamic: SelfTuner has %d speeds for %d resources", len(st.speeds), n))
		}
		st.est = make([]float64, n)
		st.upw = make([]float64, n)
		for r := range st.upw {
			// The companion starts at its all-up steady value: up-mass 1
			// on homogeneous fleets, speed-mass s_r on heterogeneous ones.
			st.upw[r] = st.speedOf(r)
		}
		st.thr = make([]float64, n)
		st.zEst = make([]float64, n)
		st.zEstNext = make([]float64, n)
		st.decayFn = st.decayShard
		st.diffuseFn = st.diffuseShard
		st.thrFn = st.thresholdShard
		// Speed-mass must diffuse from round one: the load average alone
		// concentrates around W/n, not the per-unit-speed share W/S.
		st.churned = st.churned || st.speeds != nil
	}
	if up.DownN() > 0 {
		st.churned = true
	}
	if st.churned && st.zUp == nil {
		st.zUp = make([]float64, n)
		st.zUpNext = make([]float64, n)
	}

	st.s, st.up, st.pool = s, up, pool
	defer func() { st.s, st.up, st.pool = nil, nil, nil }()

	st.runShards(st.decayFn)
	if round%every != 0 {
		return nil
	}

	// Diffuse a copy of the estimates (est itself stays the raw EWMA,
	// as in the footnote-1 reading: resources keep their running
	// estimate and simulate diffusion on it at refresh time).
	copy(st.zEst, st.est)
	st.diffuseUp = st.churned
	if st.diffuseUp {
		copy(st.zUp, st.upw)
	}
	for i := 0; i < steps; i++ {
		st.src, st.dst = st.zEst, st.zEstNext
		st.srcU, st.dstU = st.zUp, st.zUpNext
		st.runShards(st.diffuseFn)
		st.zEst, st.zEstNext = st.zEstNext, st.zEst
		if st.diffuseUp {
			st.zUp, st.zUpNext = st.zUpNext, st.zUp
		}
	}
	st.runShards(st.thrFn)
	return st.thr
}

// runShards executes fn over the canonical resource partition — on the
// pool when one is attached, inline otherwise.
func (st *SelfTuner) runShards(fn func(int)) {
	if st.pool == nil {
		fn(0)
		return
	}
	st.pool.Run(st.pool.Workers(), fn)
}

// shardRange returns the resource range shard i covers.
func (st *SelfTuner) shardRange(i int) (int, int) {
	if st.pool == nil {
		return 0, len(st.est)
	}
	return st.pool.Shard(len(st.est), i)
}

// speedOf returns resource r's speed (1 on homogeneous fleets).
func (st *SelfTuner) speedOf(r int) float64 {
	if st.speeds == nil {
		return 1
	}
	return st.speeds[r]
}

func (st *SelfTuner) decayShard(i int) {
	lo, hi := st.shardRange(i)
	decay := st.Decay
	if decay == 0 {
		decay = 0.8
	}
	for r := lo; r < hi; r++ {
		st.est[r] = decay*st.est[r] + (1-decay)*st.s.Load(r)
	}
	if !st.churned {
		return
	}
	for r := lo; r < hi; r++ {
		m := 0.0
		if st.up.Contains(r) {
			m = st.speedOf(r)
		}
		st.upw[r] = decay*st.upw[r] + (1-decay)*m
	}
}

func (st *SelfTuner) diffuseShard(i int) {
	lo, hi := st.shardRange(i)
	walk.EvolveDistRange(st.Kernel, st.src, st.dst, lo, hi)
	if st.diffuseUp {
		walk.EvolveDistRange(st.Kernel, st.srcU, st.dstU, lo, hi)
	}
}

func (st *SelfTuner) thresholdShard(i int) {
	lo, hi := st.shardRange(i)
	wmax := st.s.LiveWMax()
	if !st.diffuseUp {
		for r := lo; r < hi; r++ {
			st.thr[r] = (1+st.Eps)*st.zEst[r] + wmax
		}
		return
	}
	if st.speeds != nil {
		// zEst/mass ≈ W/S_up, the per-unit-speed share; resource r's
		// threshold is its Proportional target (W/S_up)·s_r plus slack.
		for r := lo; r < hi; r++ {
			mass := st.zUp[r]
			if mass < 1e-12 {
				mass = 1e-12 // a resource diffusively isolated from all live mass
			}
			st.thr[r] = (1+st.Eps)*st.zEst[r]/mass*st.speeds[r] + wmax
		}
		return
	}
	for r := lo; r < hi; r++ {
		mass := st.zUp[r]
		if mass < 1e-12 {
			mass = 1e-12 // a resource diffusively isolated from all live mass
		}
		st.thr[r] = (1+st.Eps)*st.zEst[r]/mass + wmax
	}
}

// Validate implements the optional config check.
func (st *SelfTuner) Validate() error {
	switch {
	case st.Eps <= 0:
		return fmt.Errorf("dynamic: SelfTuner.Eps %v must be > 0", st.Eps)
	case st.Kernel == nil:
		return errors.New("dynamic: SelfTuner.Kernel is required")
	case st.Decay < 0 || st.Decay >= 1:
		return fmt.Errorf("dynamic: SelfTuner.Decay %v must be in [0,1) (0 selects the default 0.8)", st.Decay)
	}
	return nil
}

// Name identifies the tuner.
func (st *SelfTuner) Name() string {
	return fmt.Sprintf("self-tuned(eps=%g,decay=%g)", st.Eps, st.Decay)
}
