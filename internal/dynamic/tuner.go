package dynamic

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/walk"
)

// Tuner re-estimates the threshold vector online as the in-flight
// population drifts — the self-learning knob of the open system. The
// engine calls Refresh after every round; a non-nil return value
// replaces the state's thresholds. Tuners are stateful (decaying
// averages, cached vectors): construct a fresh one per run, or
// back-to-back runs with the same seed will diverge.
type Tuner interface {
	// Refresh observes the post-round state and returns a fresh
	// threshold vector when an update is due, or nil to keep the
	// current one.
	Refresh(round int, s *core.State, up *UpSet) []float64
	// Name identifies the tuner in reports.
	Name() string
}

// OracleTuner recomputes T = (1+Eps)·W(t)/n_up + wmax every Every
// rounds from the exact in-flight weight — centralised knowledge, the
// upper baseline the decentralised tuner is measured against.
type OracleTuner struct {
	Eps   float64 // threshold slack, > 0
	Every int     // refresh period in rounds; 0 means every round
	thr   []float64
}

// Refresh implements Tuner.
func (o *OracleTuner) Refresh(round int, s *core.State, up *UpSet) []float64 {
	if o.Eps <= 0 {
		panic("dynamic: OracleTuner.Eps must be > 0")
	}
	every := o.Every
	if every <= 0 {
		every = 1
	}
	if round%every != 0 {
		return nil
	}
	n := s.N()
	if o.thr == nil {
		o.thr = make([]float64, n)
	}
	t := (1+o.Eps)*s.InFlightWeight()/float64(up.N()) + s.LiveWMax()
	for r := range o.thr {
		o.thr[r] = t
	}
	return o.thr
}

// Validate implements the optional config check.
func (o *OracleTuner) Validate() error {
	if o.Eps <= 0 {
		return fmt.Errorf("dynamic: OracleTuner.Eps %v must be > 0", o.Eps)
	}
	return nil
}

// Name identifies the tuner.
func (o *OracleTuner) Name() string { return fmt.Sprintf("oracle(eps=%g)", o.Eps) }

// SelfTuner is the decentralised threshold estimator: every resource
// keeps an exponentially decaying average of its own load,
//
//	est_r ← Decay·est_r + (1−Decay)·x_r(t),
//
// and every Every rounds the estimates run Steps rounds of continuous
// diffusion over the resource graph (the paper's footnote-1 substrate,
// reused from internal/diffusion), concentrating them around the
// system-wide average load W(t)/n. Each resource then sets its own
// threshold T_r = (1+Eps)·est_r + wmax. No resource ever reads global
// state — arrivals, departures and churn are absorbed by the decaying
// average, and the slack Eps covers the estimation error, exactly as
// it covers the static estimation error in the paper.
type SelfTuner struct {
	Eps    float64     // threshold slack, > 0
	Decay  float64     // EWMA decay in (0,1); 0 means the default 0.8
	Every  int         // rounds between diffusion refreshes; default 10
	Steps  int         // diffusion steps per refresh; default 8
	Kernel walk.Kernel // diffusion kernel; required

	est []float64
	thr []float64
}

// NewSelfTuner returns a SelfTuner with the package defaults
// (Decay 0.8, Every 10, Steps 8).
func NewSelfTuner(k walk.Kernel, eps float64) *SelfTuner {
	return &SelfTuner{Eps: eps, Decay: 0.8, Every: 10, Steps: 8, Kernel: k}
}

// Refresh implements Tuner.
func (st *SelfTuner) Refresh(round int, s *core.State, up *UpSet) []float64 {
	if st.Eps <= 0 {
		panic("dynamic: SelfTuner.Eps must be > 0")
	}
	if st.Kernel == nil {
		panic("dynamic: SelfTuner.Kernel is required")
	}
	if st.Decay < 0 || st.Decay >= 1 {
		panic("dynamic: SelfTuner.Decay must be in [0,1)")
	}
	decay := st.Decay
	if decay == 0 {
		decay = 0.8
	}
	every := st.Every
	if every <= 0 {
		every = 10
	}
	steps := st.Steps
	if steps <= 0 {
		steps = 8
	}
	n := s.N()
	if st.est == nil {
		st.est = make([]float64, n)
		st.thr = make([]float64, n)
	}
	for r := 0; r < n; r++ {
		st.est[r] = decay*st.est[r] + (1-decay)*s.Load(r)
	}
	if round%every != 0 {
		return nil
	}
	z := diffusion.Run(st.Kernel, st.est, steps)
	wmax := s.LiveWMax()
	for r := range st.thr {
		st.thr[r] = (1+st.Eps)*z[r] + wmax
	}
	return st.thr
}

// Validate implements the optional config check.
func (st *SelfTuner) Validate() error {
	switch {
	case st.Eps <= 0:
		return fmt.Errorf("dynamic: SelfTuner.Eps %v must be > 0", st.Eps)
	case st.Kernel == nil:
		return errors.New("dynamic: SelfTuner.Kernel is required")
	case st.Decay < 0 || st.Decay >= 1:
		return fmt.Errorf("dynamic: SelfTuner.Decay %v must be in [0,1) (0 selects the default 0.8)", st.Decay)
	}
	return nil
}

// Name identifies the tuner.
func (st *SelfTuner) Name() string {
	return fmt.Sprintf("self-tuned(eps=%g,decay=%g)", st.Eps, st.Decay)
}
