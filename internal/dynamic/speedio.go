package dynamic

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Speed-profile ingestion: heterogeneous fleets are described by
// (resource, speed) records, mirroring the arrival-trace formats —
//
//	CSV:   resource,speed      (optional "resource,speed" header,
//	                            '#' comment lines allowed)
//	JSONL: {"resource":3,"speed":2.5}   one object per line
//
// The loader densifies the records into a length-n speed vector;
// resources the file does not mention default to speed 1, so a profile
// only has to list the machines that differ from the unit baseline.
// Speeds must be positive and finite, resource indices must lie in
// [0, n), and duplicates are an error — malformed profiles fail at
// load time with line numbers, never mid-run.

// ValidSpeed reports whether s is a usable resource speed: positive
// and finite. s > 0 is false for NaN, so NaN needs no separate test.
func ValidSpeed(s float64) bool { return s > 0 && !math.IsInf(s, 0) }

// speedVec densifies parsed (resource, speed) records, validating
// range, value and uniqueness. seen doubles as the duplicate tracker.
type speedVec struct {
	v    []float64
	seen []bool
}

func newSpeedVec(n int) *speedVec {
	sv := &speedVec{v: make([]float64, n), seen: make([]bool, n)}
	for i := range sv.v {
		sv.v[i] = 1
	}
	return sv
}

func (sv *speedVec) set(resource int, speed float64) error {
	if resource < 0 || resource >= len(sv.v) {
		return fmt.Errorf("resource %d out of range [0, %d)", resource, len(sv.v))
	}
	if !ValidSpeed(speed) {
		return fmt.Errorf("speed %v of resource %d must be positive and finite", speed, resource)
	}
	if sv.seen[resource] {
		return fmt.Errorf("duplicate record for resource %d", resource)
	}
	sv.seen[resource] = true
	sv.v[resource] = speed
	return nil
}

// ReadSpeedsCSV parses resource,speed records from r into a length-n
// speed vector (unlisted resources get speed 1).
func ReadSpeedsCSV(r io.Reader, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dynamic: speeds csv: need a positive resource count, got %d", n)
	}
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	sv := newSpeedVec(n)
	first := true
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dynamic: speeds csv: %w", err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(fields[0]), "resource") {
				continue // header row
			}
		}
		line, _ := cr.FieldPos(0)
		resource, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("dynamic: speeds csv line %d: bad resource %q", line, fields[0])
		}
		speed, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dynamic: speeds csv line %d: bad speed %q", line, fields[1])
		}
		if err := sv.set(resource, speed); err != nil {
			return nil, fmt.Errorf("dynamic: speeds csv line %d: %w", line, err)
		}
	}
	return sv.v, nil
}

// speedRecord is one parsed (resource, speed) entry. The fields are
// pointers so a record that omits a key fails loudly instead of
// silently re-speeding resource 0 (the int zero value).
type speedRecord struct {
	Resource *int     `json:"resource"`
	Speed    *float64 `json:"speed"`
}

// ReadSpeedsJSONL parses one {"resource":r,"speed":s} object per line
// into a length-n speed vector (unlisted resources get speed 1).
func ReadSpeedsJSONL(r io.Reader, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dynamic: speeds jsonl: need a positive resource count, got %d", n)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sv := newSpeedVec(n)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec speedRecord
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("dynamic: speeds jsonl line %d: %w", line, err)
		}
		if err := OneValuePerLine(dec); err != nil {
			return nil, fmt.Errorf("dynamic: speeds jsonl line %d: %w", line, err)
		}
		if rec.Resource == nil || rec.Speed == nil {
			return nil, fmt.Errorf("dynamic: speeds jsonl line %d: record must carry both \"resource\" and \"speed\"", line)
		}
		if err := sv.set(*rec.Resource, *rec.Speed); err != nil {
			return nil, fmt.Errorf("dynamic: speeds jsonl line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dynamic: speeds jsonl: %w", err)
	}
	return sv.v, nil
}

// OneValuePerLine errors when a decoded JSONL line carries trailing
// data after its first value (e.g. two concatenated objects): silently
// dropping the remainder would load a truncated file. Shared by every
// JSONL loader in this package and in internal/recovery.
func OneValuePerLine(dec *json.Decoder) error {
	tok, err := dec.Token()
	switch {
	case err == io.EOF:
		return nil
	case err != nil:
		return fmt.Errorf("trailing data after the record: %w", err)
	default:
		return fmt.Errorf("trailing data %v after the record", tok)
	}
}

// LoadSpeedsFile reads an n-resource speed profile from path, picking
// the format by extension: .csv → CSV, .jsonl/.ndjson/.json → JSONL.
func LoadSpeedsFile(path string, n int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dynamic: speeds: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadSpeedsCSV(f, n)
	case ".jsonl", ".ndjson", ".json":
		return ReadSpeedsJSONL(f, n)
	default:
		return nil, fmt.Errorf("dynamic: speeds %s: unknown extension %q (want .csv, .jsonl, .ndjson or .json)", path, ext)
	}
}
