package dynamic

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stack"
)

// Service decides which tasks complete on a resource each round.
type Service interface {
	// Departures appends to buf the strictly increasing stack positions
	// of the tasks on st that depart at the end of this round. rem maps
	// task ID → remaining service work and may be decremented; all
	// randomness comes from r.
	Departures(st *stack.Stack, rem []float64, r *rng.Rand, buf []int) []int
	// Name identifies the discipline in reports.
	Name() string
}

// WeightProportional models service time proportional to weight: every
// up resource works through Rate weight-units per round, serving its
// stack bottom-first (FIFO — the oldest, already-accepted tasks are at
// the bottom), and a task departs once its remaining work (initially
// its weight) is done. Offered utilisation is therefore
// ρ = λ·E[w] / (n·Rate) for Poisson(λ) arrivals, and the system is
// stable exactly when balancing keeps work spread so that ρ < 1.
type WeightProportional struct {
	Rate float64 // weight-units served per resource per round, > 0
}

// Departures implements Service.
func (s WeightProportional) Departures(st *stack.Stack, rem []float64, r *rng.Rand, buf []int) []int {
	if s.Rate <= 0 {
		panic("dynamic: WeightProportional.Rate must be > 0")
	}
	budget := s.Rate
	for i := 0; i < st.Len() && budget > 0; i++ {
		id := st.Task(i).ID
		if rem[id] <= budget {
			budget -= rem[id]
			rem[id] = 0
			buf = append(buf, i)
			continue
		}
		rem[id] -= budget
		budget = 0
	}
	return buf
}

// Validate implements the optional config check.
func (s WeightProportional) Validate() error {
	if s.Rate <= 0 {
		return fmt.Errorf("dynamic: WeightProportional.Rate %v must be > 0", s.Rate)
	}
	return nil
}

// Name identifies the discipline.
func (s WeightProportional) Name() string {
	return fmt.Sprintf("weight-proportional(rate=%g)", s.Rate)
}

// Geometric models memoryless holding times: each in-flight task
// departs independently with probability P per round (mean lifetime
// 1/P rounds), regardless of its position or weight — the
// infinite-server regime of Goldsztajn et al.'s self-learning
// threshold model.
type Geometric struct {
	P float64 // per-round departure probability, in (0, 1]
}

// Departures implements Service.
func (g Geometric) Departures(st *stack.Stack, rem []float64, r *rng.Rand, buf []int) []int {
	if g.P <= 0 || g.P > 1 {
		panic("dynamic: Geometric.P must be in (0, 1]")
	}
	for i := 0; i < st.Len(); i++ {
		if r.Bool(g.P) {
			buf = append(buf, i)
		}
	}
	return buf
}

// Validate implements the optional config check.
func (g Geometric) Validate() error {
	if g.P <= 0 || g.P > 1 {
		return fmt.Errorf("dynamic: Geometric.P %v must be in (0, 1]", g.P)
	}
	return nil
}

// Name identifies the discipline.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(p=%g)", g.P) }
