package dynamic

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stack"
)

// Service decides which tasks complete on a resource each round.
type Service interface {
	// Departures appends to buf the strictly increasing stack positions
	// of the tasks on st that depart at the end of this round. rem maps
	// task ID → remaining service work and may be decremented; speed is
	// the resource's service speed (1 on homogeneous fleets) and scales
	// the discipline's per-round capacity; all randomness comes from r.
	Departures(st *stack.Stack, rem []float64, speed float64, r *rng.Rand, buf []int) []int
	// Name identifies the discipline in reports.
	Name() string
}

// WeightProportional models service time proportional to weight: every
// up resource works through Rate·speed weight-units per round, serving
// its stack bottom-first (FIFO — the oldest, already-accepted tasks are
// at the bottom), and a task departs once its remaining work (initially
// its weight) is done. Offered utilisation is therefore
// ρ = λ·E[w] / (Rate·S) for Poisson(λ) arrivals on a fleet of total
// speed S = Σ s_r (S = n when homogeneous), and the system is stable
// exactly when balancing keeps work spread so that ρ < 1.
type WeightProportional struct {
	Rate float64 // weight-units served per unit speed per round, > 0
}

// Departures implements Service.
func (s WeightProportional) Departures(st *stack.Stack, rem []float64, speed float64, r *rng.Rand, buf []int) []int {
	if s.Rate <= 0 {
		panic("dynamic: WeightProportional.Rate must be > 0")
	}
	budget := s.Rate * speed
	for i := 0; i < st.Len() && budget > 0; i++ {
		id := st.Task(i).ID
		if rem[id] <= budget {
			budget -= rem[id]
			rem[id] = 0
			buf = append(buf, i)
			continue
		}
		rem[id] -= budget
		budget = 0
	}
	return buf
}

// Validate implements the optional config check.
func (s WeightProportional) Validate() error {
	if s.Rate <= 0 {
		return fmt.Errorf("dynamic: WeightProportional.Rate %v must be > 0", s.Rate)
	}
	return nil
}

// Name identifies the discipline.
func (s WeightProportional) Name() string {
	return fmt.Sprintf("weight-proportional(rate=%g)", s.Rate)
}

// Geometric models memoryless holding times: each in-flight task
// departs independently with probability P per round (mean lifetime
// 1/P rounds), regardless of its position or weight — the
// infinite-server regime of Goldsztajn et al.'s self-learning
// threshold model. On a heterogeneous fleet a resource of speed s
// makes s independent service attempts per round, so the effective
// per-round departure probability is 1 − (1−P)^s (exactly P at
// speed 1, and the speed-1 arithmetic is untouched so homogeneous
// runs replay bit for bit).
type Geometric struct {
	P float64 // per-round departure probability at unit speed, in (0, 1]
}

// Departures implements Service.
func (g Geometric) Departures(st *stack.Stack, rem []float64, speed float64, r *rng.Rand, buf []int) []int {
	if g.P <= 0 || g.P > 1 {
		panic("dynamic: Geometric.P must be in (0, 1]")
	}
	p := g.P
	if speed != 1 {
		p = 1 - powCompl(1-g.P, speed)
	}
	for i := 0; i < st.Len(); i++ {
		if r.Bool(p) {
			buf = append(buf, i)
		}
	}
	return buf
}

// powCompl computes base^exp, the survival probability of exp
// independent service attempts. The discipline is a stateless value
// (it cannot memoise per-speed results), and this runs once per up
// resource per round, so integer exponents — the common case for
// speed profiles like 1/2/4/10 — take the square-and-multiply path
// (a few multiplications) instead of math.Pow.
func powCompl(base, exp float64) float64 {
	if i := int(exp); exp == float64(i) && i >= 0 && i <= 64 {
		out := 1.0
		for b := base; i > 0; i >>= 1 {
			if i&1 == 1 {
				out *= b
			}
			b *= b
		}
		return out
	}
	return math.Pow(base, exp)
}

// Validate implements the optional config check.
func (g Geometric) Validate() error {
	if g.P <= 0 || g.P > 1 {
		return fmt.Errorf("dynamic: Geometric.P %v must be in (0, 1]", g.P)
	}
	return nil
}

// Name identifies the discipline.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(p=%g)", g.P) }
