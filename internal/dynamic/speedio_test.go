package dynamic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadSpeedsCSV(t *testing.T) {
	in := `resource,speed
# the fast half
0, 10
2,2.5
3,1
`
	got, err := ReadSpeedsCSV(strings.NewReader(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 1, 2.5, 1, 1} // unlisted resources default to 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("speeds = %v, want %v", got, want)
		}
	}
}

func TestReadSpeedsJSONL(t *testing.T) {
	in := `{"resource":1,"speed":4}
# comment

{"resource":3,"speed":0.5}
`
	got, err := ReadSpeedsJSONL(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 1, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("speeds = %v, want %v", got, want)
		}
	}
}

func TestReadSpeedsErrors(t *testing.T) {
	cases := []struct {
		name, in string
		jsonl    bool
		want     string
	}{
		{"bad resource", "x,2\n", false, "bad resource"},
		{"bad speed", "0,fast\n", false, "bad speed"},
		{"out of range", "9,2\n", false, "out of range"},
		{"negative resource", "-1,2\n", false, "out of range"},
		{"zero speed", "0,0\n", false, "must be positive"},
		{"negative speed", "0,-2\n", false, "must be positive"},
		{"nan speed", `{"resource":0,"speed":null}`, true, "must carry both"},
		{"inf speed", "0,+Inf\n", false, "must be positive"},
		{"duplicate", "0,2\n0,3\n", false, "duplicate"},
		{"wrong fields", "0,2,3\n", false, "wrong number of fields"},
		{"jsonl bad resource", `{"resource":4,"speed":1}`, true, "out of range"},
		{"jsonl duplicate", "{\"resource\":1,\"speed\":2}\n{\"resource\":1,\"speed\":2}", true, "duplicate"},
		{"jsonl unknown field", `{"resource":1,"pace":2}`, true, "unknown field"},
		{"jsonl garbage", "{", true, "unexpected EOF"},
		{"jsonl missing resource", `{"speed":2.5}`, true, "must carry both"},
		{"jsonl missing speed", `{"resource":1}`, true, "must carry both"},
		{"jsonl concatenated records", `{"resource":1,"speed":2}{"resource":3,"speed":9}`, true, "trailing data"},
	}
	for _, tc := range cases {
		var err error
		if tc.jsonl {
			_, err = ReadSpeedsJSONL(strings.NewReader(tc.in), 4)
		} else {
			_, err = ReadSpeedsCSV(strings.NewReader(tc.in), 4)
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
	if _, err := ReadSpeedsCSV(strings.NewReader("0,1\n"), 0); err == nil {
		t.Fatal("n = 0 accepted")
	}
	if _, err := ReadSpeedsJSONL(strings.NewReader(""), -3); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestLoadSpeedsFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "fleet.csv")
	if err := os.WriteFile(csvPath, []byte("0,3\n5,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpeedsFile(csvPath, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[5] != 10 || got[3] != 1 {
		t.Fatalf("csv speeds = %v", got)
	}
	jsonlPath := filepath.Join(dir, "fleet.jsonl")
	if err := os.WriteFile(jsonlPath, []byte(`{"resource":2,"speed":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadSpeedsFile(jsonlPath, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 7 || got[0] != 1 {
		t.Fatalf("jsonl speeds = %v", got)
	}
	if _, err := LoadSpeedsFile(filepath.Join(dir, "fleet.txt"), 3); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := LoadSpeedsFile(filepath.Join(dir, "missing.csv"), 3); err == nil {
		t.Fatal("missing file accepted")
	}
}
