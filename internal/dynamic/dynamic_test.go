package dynamic

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// paretoMean is E[min(Pareto(1,2), 20)] = 2 − 1/20, the mean arrival
// weight of the test workload below.
const paretoMean = 1.95

// rhoConfig builds the acceptance-criteria workload: CompleteGraph(n),
// Poisson arrivals at utilisation rho against unit service rate,
// Pareto(2) weights capped at 20, self-tuned thresholds.
func rhoConfig(n int, rho float64, proto core.Protocol, seed uint64) Config {
	g := graph.Complete(n)
	return Config{
		Graph:    g,
		Protocol: proto,
		Arrivals: Poisson{Rate: rho * float64(n) / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Tuner: &SelfTuner{
			Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g)),
		},
		Rounds: 600,
		Window: 100,
		Seed:   seed,
	}
}

// TestSteadyStateAtRho08 is the tentpole acceptance check: a 1000-
// resource complete graph under Poisson arrivals at ρ = 0.8 with
// Pareto weights and self-tuned thresholds reaches a steady state —
// the windowed overload fraction stays below 5% once the two warm-up
// windows are discarded — and the whole run is deterministic per seed.
func TestSteadyStateAtRho08(t *testing.T) {
	res, err := Run(rhoConfig(1000, 0.8, core.UserControlled{Alpha: 1}, 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Departed == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if frac := res.TailOverloadFrac(2); math.IsNaN(frac) || frac >= 0.05 {
		t.Fatalf("steady-state overload fraction %v, want < 0.05", frac)
	}
	// Steady state: the in-flight weight per resource stays bounded
	// (far below what 600 rounds of unserved arrivals would pile up).
	last := res.Windows[len(res.Windows)-1]
	if perRes := last.InFlightWeight / 1000; perRes > 10 {
		t.Fatalf("in-flight weight per resource %v, system not draining", perRes)
	}
	// A fresh config (tuners are stateful) with the same seed must
	// reproduce the run bit for bit.
	again, err := Run(rhoConfig(1000, 0.8, core.UserControlled{Alpha: 1}, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("nondeterministic run:\n%+v\nvs\n%+v", res, again)
	}
}

// TestChurnConservesWeight is the second acceptance check: with
// resource churn enabled, every join/leave re-homes tasks without
// creating or destroying weight — CheckInvariants validates the
// conservation balance W(t) = arrived − departed after every round.
func TestChurnConservesWeight(t *testing.T) {
	g := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	cfg := Config{
		Graph:    g,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: Poisson{Rate: 0.8 * 200 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Tuner:    &SelfTuner{Eps: 0.5, Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Churn:    Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 100},
		Rounds:   400,
		Window:   50,
		Seed:     9,

		CheckInvariants: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Downs == 0 || res.Ups == 0 || res.Rehomed == 0 {
		t.Fatalf("churn never fired: downs=%d ups=%d rehomed=%d", res.Downs, res.Ups, res.Rehomed)
	}
	if diff := math.Abs(res.FinalWeight - (res.ArrivedWeight - res.DepartedWeight)); diff > 1e-6*(1+res.ArrivedWeight) {
		t.Fatalf("weight not conserved: in flight %v, arrived−departed %v",
			res.FinalWeight, res.ArrivedWeight-res.DepartedWeight)
	}
}

// nullProtocol never migrates — the "no balancing" control.
type nullProtocol struct{}

func (nullProtocol) Step(s *core.State) core.StepStats { return core.StepStats{} }
func (nullProtocol) Name() string                      { return "null" }

// TestHotspotNeedsBalancing routes every arrival to one ingress
// resource and checks that the migration protocol is what spreads the
// work: with balancing the hotspot's window-end max load is a small
// multiple of the mean, without it the hotspot holds almost everything.
func TestHotspotNeedsBalancing(t *testing.T) {
	g := graph.Complete(100)
	base := Config{
		Graph:    g,
		Arrivals: Poisson{Rate: 0.7 * 100 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Dispatch: HotspotDispatch{Resource: 0},
		Tuner:    &SelfTuner{Eps: 0.5, Steps: 2, Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Rounds:   300,
		Window:   50,
		Seed:     3,
	}
	balanced := base
	balanced.Protocol = core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))}
	resBal, err := Run(balanced)
	if err != nil {
		t.Fatal(err)
	}
	unbalanced := base
	unbalanced.Protocol = nullProtocol{}
	resNull, err := Run(unbalanced)
	if err != nil {
		t.Fatal(err)
	}
	if resBal.Migrations == 0 {
		t.Fatal("hotspot run produced no migrations")
	}
	lastBal := resBal.Windows[len(resBal.Windows)-1]
	lastNull := resNull.Windows[len(resNull.Windows)-1]
	if lastBal.MaxLoad > lastNull.MaxLoad/4 {
		t.Fatalf("balancing barely helped: max load %v with protocol vs %v without",
			lastBal.MaxLoad, lastNull.MaxLoad)
	}
	if frac := resBal.TailOverloadFrac(2); frac >= 0.05 {
		t.Fatalf("hotspot overload fraction %v, want < 0.05", frac)
	}
}

// TestDrainScenario seeds the system and lets geometric departures
// empty it with no arrivals.
func TestDrainScenario(t *testing.T) {
	g := graph.Grid2D(8, 8, true)
	weights := task.Uniform{W: 2}.Weights(512, rng.NewSeeded(1))
	cfg := Config{
		Graph:          g,
		Protocol:       core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals:       None{},
		Service:        Geometric{P: 0.05},
		Tuner:          &OracleTuner{Eps: 0.3},
		Rounds:         500,
		Window:         100,
		Seed:           5,
		InitialWeights: weights,

		CheckInvariants: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 0 {
		t.Fatalf("drain scenario saw %d arrivals", res.Arrived)
	}
	if res.FinalInFlight > 5 {
		t.Fatalf("system did not drain: %d tasks left after %d rounds", res.FinalInFlight, res.Rounds)
	}
	if math.Abs(res.DepartedWeight-(1024-res.FinalWeight)) > 1e-6 {
		t.Fatalf("departed weight %v inconsistent with final %v", res.DepartedWeight, res.FinalWeight)
	}
}

// TestBurstAndTraceArrivals pins the deterministic arrival counts of
// the non-Poisson processes.
func TestBurstAndTraceArrivals(t *testing.T) {
	r := rng.NewSeeded(1)
	b := Burst{Every: 50, Size: 10, Weights: task.Uniform{W: 1}}
	total := 0
	for round := 0; round < 200; round++ {
		total += len(b.Next(round, r))
	}
	if total != 40 {
		t.Fatalf("burst emitted %d tasks over 200 rounds, want 40", total)
	}
	tr := Trace{Rounds: [][]float64{{1, 2}, nil, {3}}}
	if got := tr.Next(0, r); len(got) != 2 || got[1] != 2 {
		t.Fatalf("trace round 0 = %v", got)
	}
	if got := tr.Next(2, r); len(got) != 1 || got[0] != 3 {
		t.Fatalf("trace round 2 = %v", got)
	}
	if tr.Next(1, r) != nil || tr.Next(5, r) != nil || tr.Next(-1, r) != nil {
		t.Fatal("trace emitted tasks outside its rounds")
	}
	if (None{}).Next(0, r) != nil {
		t.Fatal("None emitted arrivals")
	}
}

// TestTraceDrivenRun replays an explicit trace end to end and checks
// the exact arrival accounting.
func TestTraceDrivenRun(t *testing.T) {
	g := graph.Complete(10)
	rounds := make([][]float64, 30)
	rounds[0] = []float64{5, 5, 5}
	rounds[10] = []float64{1, 1, 1, 1}
	cfg := Config{
		Graph:    g,
		Protocol: core.UserControlled{Alpha: 1},
		Arrivals: Trace{Rounds: rounds, Label: "unit"},
		Service:  Geometric{P: 0.2},
		Tuner:    &OracleTuner{Eps: 0.5},
		Rounds:   120,
		Window:   30,
		Seed:     2,

		CheckInvariants: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 7 || res.ArrivedWeight != 19 {
		t.Fatalf("trace accounting: arrived=%d weight=%v", res.Arrived, res.ArrivedWeight)
	}
	if res.FinalInFlight != 0 {
		t.Fatalf("geometric drain left %d tasks after 120 rounds", res.FinalInFlight)
	}
}

// TestPowerOfDDispatch checks the two-choice dispatcher prefers the
// less-loaded sample.
func TestPowerOfDDispatch(t *testing.T) {
	g := graph.Complete(4)
	ts := task.NewSet([]float64{10, 10, 10})
	s := core.NewState(g, ts, []int{0, 1, 2}, core.FixedVector{V: make([]float64, 4)}, 1)
	up := NewUpSet(4)
	r := rng.NewSeeded(0)
	// Resource 3 is empty; with D = 4 samples the minimum is found
	// almost surely over repeated picks.
	hits := 0
	for i := 0; i < 50; i++ {
		if (PowerOfD{D: 4}).Pick(s, up, nil, 1, r) == 3 {
			hits++
		}
	}
	if hits < 25 {
		t.Fatalf("power-of-4 picked the empty resource only %d/50 times", hits)
	}
	// Heterogeneous: resource 2 has load 10 but speed 100, so its
	// load-per-speed (0.1) undercuts the empty-but-slow resource 3 only
	// when 3 is sampled — both should dominate the loaded slow ones.
	speeds := []float64{1, 1, 100, 1}
	fast := 0
	for i := 0; i < 50; i++ {
		if c := (PowerOfD{D: 4}).Pick(s, up, speeds, 1, r); c == 2 || c == 3 {
			fast++
		}
	}
	if fast < 25 {
		t.Fatalf("load-per-speed sampling ignored the fast/empty resources: %d/50", fast)
	}
}

// TestSpeedWeightedDispatch checks the speed-proportional router: a
// 10× machine should take ≈ 10/13 of the arrivals, and the
// homogeneous (nil-speeds) path must degrade to the uniform pick.
func TestSpeedWeightedDispatch(t *testing.T) {
	g := graph.Complete(4)
	ts := task.NewSet([]float64{1})
	s := core.NewState(g, ts, []int{0}, core.FixedVector{V: make([]float64, 4)}, 1)
	up := NewUpSet(4)
	r := rng.NewSeeded(7)
	speeds := []float64{1, 1, 1, 10}
	sw := &SpeedWeighted{}
	hits := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if sw.Pick(s, up, speeds, 1, r) == 3 {
			hits++
		}
	}
	want := float64(draws) * 10 / 13
	if math.Abs(float64(hits)-want) > 0.15*want {
		t.Fatalf("speed-weighted picked the 10x resource %d/%d times, want ≈ %.0f", hits, draws, want)
	}
	for i := 0; i < 100; i++ {
		if c := (&SpeedWeighted{}).Pick(s, up, nil, 1, r); c < 0 || c > 3 {
			t.Fatalf("nil-speeds pick out of range: %d", c)
		}
	}
}

// TestUpSet exercises the churn bookkeeping.
func TestUpSet(t *testing.T) {
	u := NewUpSet(4)
	if u.N() != 4 || !u.Contains(2) {
		t.Fatal("fresh UpSet wrong")
	}
	u.Down(1)
	u.Down(3)
	if u.N() != 2 || u.Contains(1) || u.Contains(3) || !u.Contains(0) {
		t.Fatalf("after downs: n=%d", u.N())
	}
	u.Up(3)
	if u.N() != 3 || !u.Contains(3) {
		t.Fatal("rejoin failed")
	}
	r := rng.NewSeeded(1)
	for i := 0; i < 100; i++ {
		if pick := u.Random(r); pick == 1 {
			t.Fatal("sampled a down resource")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Down did not panic")
		}
	}()
	u.Down(1)
	u.Down(1)
}

// TestConfigValidation covers the error paths.
func TestConfigValidation(t *testing.T) {
	g := graph.Complete(4)
	good := func() Config {
		return Config{
			Graph:    g,
			Protocol: core.UserControlled{Alpha: 1},
			Arrivals: None{},
			Service:  Geometric{P: 0.5},
			Tuner:    &OracleTuner{Eps: 0.5},
			Rounds:   5,
		}
	}
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Graph = nil }, "Graph is required"},
		{func(c *Config) { c.Protocol = nil }, "Protocol is required"},
		{func(c *Config) { c.Arrivals = nil }, "Arrivals is required"},
		{func(c *Config) { c.Service = nil }, "Service is required"},
		{func(c *Config) { c.Tuner = nil }, "Tuner is required"},
		{func(c *Config) { c.Rounds = 0 }, "Rounds must be > 0"},
		{func(c *Config) { c.Churn.LeaveProb = 1.5 }, "churn probabilities"},
		{func(c *Config) { c.Churn.MinUp = 9 }, "MinUp exceeds"},
		{func(c *Config) {
			c.InitialWeights = []float64{1, 1}
			c.InitialPlacement = []int{0}
		}, "placement has"},
		{func(c *Config) {
			c.InitialWeights = []float64{1}
			c.InitialPlacement = []int{7}
		}, "invalid resource"},
		// Pluggable components reject bad parameters up front instead
		// of panicking mid-run.
		{func(c *Config) { c.Service = Geometric{P: 0} }, "Geometric.P"},
		{func(c *Config) { c.Service = Geometric{P: 1.5} }, "Geometric.P"},
		{func(c *Config) { c.Service = WeightProportional{Rate: 0} }, "WeightProportional.Rate"},
		{func(c *Config) { c.Arrivals = Poisson{Rate: -1, Weights: task.Uniform{W: 1}} }, "Poisson.Rate"},
		{func(c *Config) { c.Arrivals = Poisson{Rate: 1, Weights: task.Pareto{Alpha: 0}} }, "invalid weight distribution"},
		{func(c *Config) { c.Arrivals = Burst{Every: 5, Size: 2, Weights: task.UniformRange{Lo: 0.5, Hi: 2}} }, "invalid weight distribution"},
		{func(c *Config) { c.Arrivals = Trace{Rounds: [][]float64{{math.NaN()}}} }, "below 1"},
		{func(c *Config) { c.Arrivals = Burst{Every: 0, Size: 5, Weights: task.Uniform{W: 1}} }, "Burst.Every"},
		{func(c *Config) { c.Arrivals = Trace{Rounds: [][]float64{{0.5}}} }, "below 1"},
		{func(c *Config) { c.Dispatch = PowerOfD{D: 0} }, "PowerOfD.D"},
		{func(c *Config) { c.Speeds = []float64{1, 2} }, "Speeds has 2 entries"},
		{func(c *Config) { c.Speeds = []float64{1, 1, 0, 1} }, "must be positive"},
		{func(c *Config) { c.Speeds = []float64{1, 1, math.NaN(), 1} }, "must be positive"},
		{func(c *Config) { c.Speeds = []float64{1, 1, math.Inf(1), 1} }, "must be positive"},
		{func(c *Config) { c.Tuner = &SelfTuner{Eps: 0.5} }, "Kernel is required"},
		{func(c *Config) { c.Tuner = &OracleTuner{Eps: 0} }, "OracleTuner.Eps"},
	}
	for _, cse := range cases {
		cfg := good()
		cse.mutate(&cfg)
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), cse.want) {
			t.Fatalf("want error containing %q, got %v", cse.want, err)
		}
	}
}

// TestServiceDisciplines pins the two departure models against a hand
// stack.
func TestServiceDisciplines(t *testing.T) {
	ts := task.NewSet([]float64{2, 3, 4})
	g := graph.Complete(2)
	s := core.NewState(g, ts, []int{0, 0, 0}, core.FixedVector{V: []float64{100, 100}}, 1)
	rem := []float64{2, 3, 4}
	r := rng.NewSeeded(1)
	// Rate 4 finishes the weight-2 bottom task and eats 2 of the next.
	got := WeightProportional{Rate: 4}.Departures(s.Stack(0), rem, 1, r, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("departures %v, want [0]", got)
	}
	if rem[0] != 0 || rem[1] != 1 || rem[2] != 4 {
		t.Fatalf("remaining %v", rem)
	}
	// Next round at rate 4: finishes task 1 (1 left) and task 2 (3
	// left after consuming the remaining budget)? Budget 4: task 0
	// already gone in a real run, but the model only looks at rem —
	// remove it first like the engine would.
	s.RemoveTaskAt(0, 0)
	got = WeightProportional{Rate: 4}.Departures(s.Stack(0), rem, 1, r, got[:0])
	if len(got) != 1 || got[0] != 0 || rem[2] != 1 {
		t.Fatalf("second round: departures %v rem %v", got, rem)
	}
	// Geometric with P = 1 departs everything.
	got = Geometric{P: 1}.Departures(s.Stack(0), rem, 1, r, got[:0])
	if len(got) != s.Stack(0).Len() {
		t.Fatalf("geometric(1) kept tasks: %v", got)
	}
}

// TestServiceSpeedScaling pins the heterogeneous service arithmetic: a
// speed-s resource serves Rate·s weight-units per round, and the
// geometric discipline departs with probability 1 − (1−P)^s.
func TestServiceSpeedScaling(t *testing.T) {
	ts := task.NewSet([]float64{2, 3, 4})
	g := graph.Complete(2)
	s := core.NewState(g, ts, []int{0, 0, 0}, core.FixedVector{V: []float64{100, 100}}, 1)
	rem := []float64{2, 3, 4}
	r := rng.NewSeeded(1)
	// Speed 2 at rate 2 gives budget 4: task 0 departs, task 1 keeps 1.
	got := WeightProportional{Rate: 2}.Departures(s.Stack(0), rem, 2, r, nil)
	if len(got) != 1 || got[0] != 0 || rem[1] != 1 {
		t.Fatalf("speed-2 departures %v rem %v", got, rem)
	}
	// Speed 3 finishes everything left (1 + 4 ≤ 2·3).
	s.RemoveTaskAt(0, 0)
	got = WeightProportional{Rate: 2}.Departures(s.Stack(0), rem, 3, r, got[:0])
	if len(got) != 2 {
		t.Fatalf("speed-3 departures %v rem %v", got, rem)
	}
	// powCompl: exact on integer exponents, math.Pow otherwise.
	if v := powCompl(0.5, 2); v != 0.25 {
		t.Fatalf("powCompl(0.5,2) = %v", v)
	}
	if v := powCompl(0.9, 10); math.Abs(v-math.Pow(0.9, 10)) > 1e-15 {
		t.Fatalf("powCompl(0.9,10) = %v, want %v", v, math.Pow(0.9, 10))
	}
	if v := powCompl(0.5, 2.5); v != math.Pow(0.5, 2.5) {
		t.Fatalf("powCompl(0.5,2.5) = %v", v)
	}
	// Geometric: P = 0.5 at speed 2 → departure probability 0.75.
	const trials = 4000
	ts2 := task.NewSet([]float64{1})
	s2 := core.NewState(g, ts2, []int{0}, core.FixedVector{V: []float64{100, 100}}, 1)
	hits := 0
	for i := 0; i < trials; i++ {
		if len(Geometric{P: 0.5}.Departures(s2.Stack(0), rem, 2, r, nil)) == 1 {
			hits++
		}
	}
	if math.Abs(float64(hits)/trials-0.75) > 0.03 {
		t.Fatalf("geometric speed-2 departure rate %v, want ≈ 0.75", float64(hits)/trials)
	}
}
