package dynamic

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/task"
)

// Arrivals is a pluggable arrival process: every round it emits the
// weights of the tasks entering the system.
type Arrivals interface {
	// Next returns the weights (each ≥ 1) of the tasks arriving in
	// round t, drawing all randomness from r. May return nil.
	Next(t int, r *rng.Rand) []float64
	// Name identifies the process in reports.
	Name() string
}

// AppendArrivals is the allocation-free extension of Arrivals:
// AppendNext emits round t's weights into a caller-provided buffer and
// must consume the generator exactly like Next. The engine probes for
// it so the steady-state round loop allocates nothing; processes that
// only implement Next still work (the engine copies out of the
// returned slice).
type AppendArrivals interface {
	AppendNext(t int, r *rng.Rand, dst []float64) []float64
}

// appendNext dispatches to the allocation-free path when a has one.
func appendNext(a Arrivals, t int, r *rng.Rand, dst []float64) []float64 {
	if aa, ok := a.(AppendArrivals); ok {
		return aa.AppendNext(t, r, dst)
	}
	return append(dst, a.Next(t, r)...)
}

// Poisson emits a Poisson(Rate) number of tasks per round with weights
// drawn from Weights — the classical open-system arrival stream.
type Poisson struct {
	Rate    float64 // mean arrivals per round
	Weights task.Distribution
}

// Next implements Arrivals.
func (p Poisson) Next(t int, r *rng.Rand) []float64 {
	k := r.Poisson(p.Rate)
	if k == 0 {
		return nil
	}
	return p.Weights.Weights(k, r)
}

// AppendNext implements AppendArrivals.
func (p Poisson) AppendNext(t int, r *rng.Rand, dst []float64) []float64 {
	return task.AppendWeights(p.Weights, dst, r.Poisson(p.Rate), r)
}

// Validate implements the optional config check.
func (p Poisson) Validate() error {
	if p.Rate < 0 {
		return fmt.Errorf("dynamic: Poisson.Rate %v must be >= 0", p.Rate)
	}
	if p.Weights == nil {
		return errors.New("dynamic: Poisson.Weights is required")
	}
	return probeDistribution(p.Weights)
}

// probeDistribution draws one sample so that invalid distribution
// parameters (which the task package reports by panicking inside
// Weights) surface as a config error before the run starts.
func probeDistribution(d task.Distribution) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dynamic: invalid weight distribution %s: %v", d.Name(), r)
		}
	}()
	d.Weights(1, rng.NewSeeded(0))
	return nil
}

// Name identifies the process.
func (p Poisson) Name() string {
	return fmt.Sprintf("poisson(rate=%g,%s)", p.Rate, p.Weights.Name())
}

// Burst emits Size tasks every Every rounds and nothing in between —
// a periodic batch workload that stresses the protocols' transient
// response rather than their steady state.
type Burst struct {
	Every   int // burst period in rounds, ≥ 1
	Size    int // tasks per burst
	Weights task.Distribution
}

// Next implements Arrivals.
func (b Burst) Next(t int, r *rng.Rand) []float64 {
	if b.Every < 1 {
		panic("dynamic: Burst.Every must be >= 1")
	}
	if t%b.Every != 0 || b.Size <= 0 {
		return nil
	}
	return b.Weights.Weights(b.Size, r)
}

// AppendNext implements AppendArrivals.
func (b Burst) AppendNext(t int, r *rng.Rand, dst []float64) []float64 {
	if b.Every < 1 {
		panic("dynamic: Burst.Every must be >= 1")
	}
	if t%b.Every != 0 || b.Size <= 0 {
		return dst
	}
	return task.AppendWeights(b.Weights, dst, b.Size, r)
}

// Validate implements the optional config check.
func (b Burst) Validate() error {
	if b.Every < 1 {
		return fmt.Errorf("dynamic: Burst.Every %d must be >= 1", b.Every)
	}
	if b.Size < 0 {
		return fmt.Errorf("dynamic: Burst.Size %d must be >= 0", b.Size)
	}
	if b.Weights == nil {
		return errors.New("dynamic: Burst.Weights is required")
	}
	return probeDistribution(b.Weights)
}

// Name identifies the process.
func (b Burst) Name() string {
	return fmt.Sprintf("burst(every=%d,size=%d,%s)", b.Every, b.Size, b.Weights.Name())
}

// Trace replays a recorded arrival sequence: Rounds[t] holds the
// weights arriving in round t; rounds beyond the trace are silent.
// This is the hook for driving the engine from production logs.
type Trace struct {
	Rounds [][]float64
	Label  string
}

// Next implements Arrivals.
func (tr Trace) Next(t int, r *rng.Rand) []float64 {
	if t < 0 || t >= len(tr.Rounds) {
		return nil
	}
	return tr.Rounds[t]
}

// AppendNext implements AppendArrivals.
func (tr Trace) AppendNext(t int, r *rng.Rand, dst []float64) []float64 {
	return append(dst, tr.Next(t, r)...)
}

// Validate implements the optional config check: every replayed
// weight must satisfy the library's wmin >= 1 normalisation, or the
// insertion would panic mid-run.
func (tr Trace) Validate() error {
	for t, ws := range tr.Rounds {
		for _, w := range ws {
			if !task.ValidWeight(w) {
				return fmt.Errorf("dynamic: trace weight %v at round %d is below 1 (or not finite)", w, t)
			}
		}
	}
	return nil
}

// Name identifies the process.
func (tr Trace) Name() string {
	if tr.Label != "" {
		return "trace(" + tr.Label + ")"
	}
	return fmt.Sprintf("trace(%d rounds)", len(tr.Rounds))
}

// External marks a run whose arrivals are pushed in from outside via
// Engine.Step (the live runtime and its lockstep replay twin). The
// engine never consults it for weights — Step stages each round's
// admitted batch directly — so Next always emits nothing; it exists to
// satisfy validation and to name the mode in reports.
type External struct{}

// Next implements Arrivals; external-input rounds never draw from it.
func (External) Next(t int, r *rng.Rand) []float64 { return nil }

// Name identifies the process.
func (External) Name() string { return "external" }

// None emits no arrivals — a drain scenario: seed the system via
// Config.Initial* and watch departures and balancing empty it.
type None struct{}

// Next implements Arrivals.
func (None) Next(t int, r *rng.Rand) []float64 { return nil }

// Name identifies the process.
func (None) Name() string { return "none" }
