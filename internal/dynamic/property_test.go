package dynamic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// Property-based invariant suite: instead of pinning hand-picked
// scenarios, these tests draw whole random configurations — topology,
// speeds, arrivals, service, dispatch, churn, worker count — and
// assert the engine's structural invariants on every round of every
// run:
//
//  1. total weight conservation across migrate/deliver/evacuate
//     (Config.CheckInvariants re-validates the stack/location/set
//     triple and the W(t) = arrived − departed balance each round),
//  2. no task is ever resident on a down resource at a round boundary,
//  3. the incremental OverloadedCount always matches a from-scratch
//     recount, and
//  4. (in internal/task) the free list never double-issues an ID.
//
// The draws are table-driven from a fixed seed, so failures replay
// deterministically.

// randomPropertyConfig draws one full engine configuration.
func randomPropertyConfig(r *rng.Rand) Config {
	n := 24 + 2*r.Intn(37) // even, 24..96
	var g *graph.Graph
	complete := r.Bool(0.5)
	if complete {
		g = graph.Complete(n)
	} else {
		g = graph.RandomRegular(n, 6, rng.NewSeeded(r.Uint64()))
	}
	kernel := func() walk.Kernel { return walk.NewLazy(walk.NewMaxDegree(g)) }

	var speeds []float64
	meanSpeed := 1.0
	if r.Bool(0.6) {
		classes := [][]float64{{1, 10}, {1, 2, 4, 10}, {1, 1, 5}, {2, 3}}[r.Intn(4)]
		speeds = make([]float64, n)
		total := 0.0
		for i := range speeds {
			speeds[i] = classes[i%len(classes)]
			total += speeds[i]
		}
		meanSpeed = total / float64(n)
	}

	var proto core.Protocol
	switch {
	case complete && r.Bool(0.5):
		proto = core.UserControlled{Alpha: 0.5 + r.Float64()}
	case r.Bool(0.5):
		proto = core.ResourceControlled{Kernel: kernel()}
	default:
		proto = core.UserControlledGraph{Alpha: 0.5 + r.Float64()}
	}

	var svc Service = WeightProportional{Rate: 0.5 + r.Float64()}
	if r.Bool(0.3) {
		svc = Geometric{P: 0.05 + 0.4*r.Float64()}
	}

	var disp Dispatch
	switch r.Intn(4) {
	case 0:
		disp = UniformDispatch{}
	case 1:
		disp = HotspotDispatch{Resource: r.Intn(n)}
	case 2:
		disp = PowerOfD{D: 1 + r.Intn(3)}
	default:
		disp = &SpeedWeighted{}
	}

	var tuner Tuner
	if r.Bool(0.5) {
		tuner = &OracleTuner{Eps: 0.2 + r.Float64(), Every: 1 + r.Intn(5)}
	} else {
		tuner = &SelfTuner{Eps: 0.2 + r.Float64(), Decay: 0.5 + 0.4*r.Float64(),
			Every: 1 + r.Intn(10), Steps: 1 + r.Intn(4), Kernel: kernel()}
	}

	churn := Churn{}
	if r.Bool(0.7) {
		churn = Churn{
			LeaveProb: 0.3 * r.Float64(),
			JoinProb:  0.3 * r.Float64(),
			MinUp:     n / 4,
		}
		if r.Bool(0.5) {
			churn.Events = []ChurnEvent{
				{Round: 5 + r.Intn(20), Every: 20 + r.Intn(20), Down: n / 3},
				{Round: 15 + r.Intn(20), Every: 20 + r.Intn(20), Up: n / 3},
			}
		}
	}

	// Arrivals sized to the fleet's (possibly heterogeneous) capacity
	// so random draws stay in a stable-ish regime.
	rho := 0.5 + 0.4*r.Float64()
	var arr Arrivals = Poisson{Rate: rho * float64(n) * meanSpeed / paretoMean,
		Weights: task.Pareto{Alpha: 2, Cap: 20}}
	if r.Bool(0.2) {
		arr = Burst{Every: 1 + r.Intn(10), Size: n, Weights: task.UniformRange{Lo: 1, Hi: 4}}
	}

	return Config{
		Graph:           g,
		Speeds:          speeds,
		Protocol:        proto,
		Arrivals:        arr,
		Service:         svc,
		Dispatch:        disp,
		Tuner:           tuner,
		Churn:           churn,
		Rounds:          100 + r.Intn(60),
		Window:          25,
		Seed:            r.Uint64(),
		Workers:         1 + r.Intn(4),
		CheckInvariants: true,
	}
}

// TestPropertyEngineInvariants runs randomized open-system
// configurations and asserts, after every round, that no down resource
// holds a task and that the O(1) overloaded counter matches a
// from-scratch recount. Weight conservation and the
// stack/location/task-set consistency are re-validated every round by
// CheckInvariants.
func TestPropertyEngineInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised engine runs take a few seconds")
	}
	r := rng.NewSeeded(0x9095)
	for trial := 0; trial < 12; trial++ {
		cfg := randomPropertyConfig(r)
		failed := false
		checked := 0
		cfg.OnRound = func(round int, s *core.State) {
			checked++
			// Recount overload from scratch over ALL resources: down
			// resources are empty at a round boundary (load 0 ≤ thr), so
			// the full recount equals the up-only count the engine
			// maintains incrementally.
			over := 0
			for res := 0; res < s.N(); res++ {
				if s.Overloaded(res) {
					over++
				}
			}
			if got := s.OverloadedCount(); got != over && !failed {
				failed = true
				t.Errorf("trial %d round %d: OverloadedCount() = %d, recount = %d", trial, round, got, over)
			}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		if checked != cfg.Rounds {
			t.Fatalf("trial %d: OnRound fired %d times for %d rounds", trial, checked, cfg.Rounds)
		}
		if failed {
			t.Fatalf("trial %d: overloaded-counter invariant violated", trial)
		}
		// Conservation of counts, mirroring the weight balance that
		// CheckInvariants enforces every round.
		if res.FinalInFlight != int(res.Arrived)-int(res.Departed) {
			t.Fatalf("trial %d: in-flight %d != arrived %d − departed %d",
				trial, res.FinalInFlight, res.Arrived, res.Departed)
		}
	}
}

// TestPropertyNoTaskOnDownResource drives churn-heavy randomized runs
// through the engine's internal round loop (the public API does not
// expose the up set) and asserts after every round that every down
// resource is empty — evacuation plus the bounce step must never
// leave a task stranded on a machine that has left the system.
func TestPropertyNoTaskOnDownResource(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised engine runs take a few seconds")
	}
	r := rng.NewSeeded(77)
	for trial := 0; trial < 8; trial++ {
		cfg := randomPropertyConfig(r)
		// Force real churn so the property is exercised.
		cfg.Churn = Churn{LeaveProb: 0.4, JoinProb: 0.3, MinUp: cfg.Graph.N() / 4,
			Events: []ChurnEvent{{Round: 10, Every: 25, Down: cfg.Graph.N() / 2},
				{Round: 22, Every: 25, Up: cfg.Graph.N() / 2}}}
		if err := validate(cfg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e := newEngine(cfg)
		for round := 0; round < cfg.Rounds; round++ {
			if err := e.round(round); err != nil {
				e.close()
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			for i := 0; i < e.up.DownN(); i++ {
				if res := e.up.DownAt(i); e.s.Count(res) > 0 {
					e.close()
					t.Fatalf("trial %d round %d: down resource %d holds %d tasks",
						trial, round, res, e.s.Count(res))
				}
			}
		}
		if e.res.Downs == 0 || e.res.Rehomed == 0 {
			e.close()
			t.Fatalf("trial %d: churn never exercised evacuation (downs=%d rehomed=%d)",
				trial, e.res.Downs, e.res.Rehomed)
		}
		e.close()
	}
}

// TestPropertyExchangeMatchesSequential feeds identical random move
// sets through the parallel exchange (under a random shard partition)
// and the sequential DeliverMigrations, starting from identically
// constructed states: stacks, locations, loads and the folded stats
// must agree bit for bit — the delivery layer's partition-invariance
// property, randomised.
func TestPropertyExchangeMatchesSequential(t *testing.T) {
	r := rng.NewSeeded(4242)
	for trial := 0; trial < 20; trial++ {
		n := 8 + r.Intn(40)
		m := 1 + r.Intn(300)
		seed := r.Uint64()
		g := graph.Complete(n)
		build := func() *core.State {
			ws := make([]float64, m)
			wr := rng.NewSeeded(seed)
			for i := range ws {
				ws[i] = 1 + 9*wr.Float64()
			}
			placement := make([]int, m)
			for i := range placement {
				placement[i] = int(wr.Uint64() % uint64(n))
			}
			ts := task.NewSet(ws)
			return core.NewState(g, ts, placement, core.AboveAverage{Eps: 0.5}, seed)
		}
		sa, sb := build(), build()

		// Evacuate a random subset of resources on both states in the
		// same order, assigning each popped task the same random dest.
		nEvac := 1 + r.Intn(n/2+1)
		var movesA, movesB []core.Migration
		for k := 0; k < nEvac; k++ {
			res := (trial*7 + k*13) % n
			ta := sa.EvacuateAppend(res, nil)
			tb := sb.EvacuateAppend(res, nil)
			if len(ta) != len(tb) {
				t.Fatalf("trial %d: evac mismatch on resource %d", trial, res)
			}
			for i := range ta {
				dest := int32(r.Intn(n))
				movesA = append(movesA, core.Migration{Task: ta[i], Dest: dest})
				movesB = append(movesB, core.Migration{Task: tb[i], Dest: dest})
			}
		}

		// Random contiguous partition for the exchange.
		shards := 1 + r.Intn(4)
		bounds := make([]int, shards+1)
		bounds[shards] = n
		for j := 1; j < shards; j++ {
			bounds[j] = bounds[j-1] + r.Intn(n-bounds[j-1]+1) // empty shards allowed
		}
		x := core.NewExchange(bounds)
		// Split the moves arbitrarily across source shards (the split
		// must not matter).
		per := (len(movesA) + shards - 1) / shards
		for i := 0; i < shards; i++ {
			lo := i * per
			hi := lo + per
			if lo > len(movesA) {
				lo = len(movesA)
			}
			if hi > len(movesA) {
				hi = len(movesA)
			}
			x.Route(i, movesA[lo:hi])
		}
		for j := 0; j < shards; j++ {
			x.DeliverShard(sa, j)
		}
		stA := x.Finish(sa, true)
		stB := sb.DeliverMigrations(movesB)

		if stA != stB {
			t.Fatalf("trial %d: stats diverge: exchange %+v vs sequential %+v", trial, stA, stB)
		}
		for res := 0; res < n; res++ {
			if la, lb := sa.Load(res), sb.Load(res); la != lb {
				t.Fatalf("trial %d: resource %d load %v vs %v", trial, res, la, lb)
			}
			ta, tb := sa.Stack(res).Tasks(), sb.Stack(res).Tasks()
			if len(ta) != len(tb) {
				t.Fatalf("trial %d: resource %d stack sizes %d vs %d", trial, res, len(ta), len(tb))
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("trial %d: resource %d stack order diverges at %d: %+v vs %+v",
						trial, res, i, ta[i], tb[i])
				}
			}
		}
		for id := 0; id < m; id++ {
			if sa.Location(id) != sb.Location(id) {
				t.Fatalf("trial %d: task %d location %d vs %d", trial, id, sa.Location(id), sb.Location(id))
			}
		}
		if err := sa.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: exchange state invalid: %v", trial, err)
		}
		if math.IsNaN(stA.MovedWeight) {
			t.Fatalf("trial %d: NaN moved weight", trial)
		}
	}
}
