package dynamic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// Re-homing policies. When a resource leaves the system — one machine
// stochastically, or a whole rack through a scripted or compiled
// ChurnEvent — every task stranded on it is evacuated through the
// sharded exchange, and a RehomePolicy decides WHERE each evacuee
// lands. The ROADMAP's open question about post-failure overload
// transients is exactly this choice: uniform re-homing (the original
// engine behaviour) ignores both load and topology, while the policies
// below spread by sampled load (PowerOfDRehome), by machine speed
// (SpeedWeightedRehome), or by failure-domain proximity
// (recovery.Locality, which lives with the Topology it needs).
//
// The determinism contract is inherited from the evacuation path: Pick
// is called once per evacuated task, inside the failed resource's
// shard phase, and may draw randomness ONLY from rr — the failed
// resource's own per-resource stream — so the move set is independent
// of the shard partition and the golden cross-worker tests extend to
// every policy. Pick must return an UP resource; the engine treats a
// down destination as a policy bug and panics rather than stranding
// the task.
type RehomePolicy interface {
	// Pick returns the up resource that receives one task of weight w
	// evacuating from the (now down) resource `from`. speeds is the
	// per-resource speed profile (nil on homogeneous fleets). All
	// randomness must come from rr.
	Pick(s *core.State, up *UpSet, speeds []float64, from int, w float64, rr *rng.Rand) int
	// Name identifies the policy in reports.
	Name() string
}

// RehomeObserver is implemented by stateful policies that track the up
// set incrementally (recovery.Locality's per-domain membership lists).
// The engine calls ResetUp once at run start and ResourceDown/
// ResourceUp for every churn transition, all from the sequential churn
// phase — Pick only ever reads the state, so the sharded evacuation
// needs no synchronisation.
type RehomeObserver interface {
	// ResetUp marks all n resources up — the run-start state.
	ResetUp(n int)
	// ResourceDown records that resource r left the system.
	ResourceDown(r int)
	// ResourceUp records that resource r rejoined.
	ResourceUp(r int)
}

// UniformRehome sends each evacuated task to a uniformly random up
// resource — the engine's original evacuation rule, extracted. A nil
// Config.Rehome selects it, and its draw sequence is identical to the
// pre-policy engine, so existing seeds replay bit for bit.
type UniformRehome struct{}

// Pick implements RehomePolicy.
func (UniformRehome) Pick(s *core.State, up *UpSet, speeds []float64, from int, w float64, rr *rng.Rand) int {
	return up.Random(rr)
}

// Name identifies the policy.
func (UniformRehome) Name() string { return "uniform" }

// PowerOfDRehome samples D up resources per evacuated task and lands
// it on the least loaded — the power-of-d choice applied to failure
// recovery, so a mass evacuation avoids piling displaced work onto
// machines that are already near their thresholds. On heterogeneous
// fleets samples compare by load-per-speed, the quantity the
// speed-proportional thresholds equalise.
type PowerOfDRehome struct {
	D int // samples per task, ≥ 1
}

// Pick implements RehomePolicy.
func (p PowerOfDRehome) Pick(s *core.State, up *UpSet, speeds []float64, from int, w float64, rr *rng.Rand) int {
	best := up.Random(rr)
	if speeds == nil {
		for i := 1; i < p.D; i++ {
			c := up.Random(rr)
			if s.Load(c) < s.Load(best) {
				best = c
			}
		}
		return best
	}
	for i := 1; i < p.D; i++ {
		c := up.Random(rr)
		if s.Load(c)/speeds[c] < s.Load(best)/speeds[best] {
			best = c
		}
	}
	return best
}

// Validate implements the optional config check.
func (p PowerOfDRehome) Validate() error {
	if p.D < 1 {
		return fmt.Errorf("dynamic: PowerOfDRehome.D %d must be >= 1", p.D)
	}
	return nil
}

// Name identifies the policy.
func (p PowerOfDRehome) Name() string { return fmt.Sprintf("power-of-%d", p.D) }

// SpeedWeightedRehome lands each evacuated task on an up resource
// drawn with probability proportional to its speed — fast machines
// absorb proportionally more of a dead rack, matching the headroom the
// speed-proportional thresholds give them. On a homogeneous fleet
// (nil speeds) it degrades to the uniform pick.
//
// Like the SpeedWeighted dispatcher it rejection-samples exactly
// against the fleet max speed and caches that bound keyed by the
// profile's identity; use a fresh value per concurrent run.
type SpeedWeightedRehome struct {
	maxSpeed float64
	profile  *float64
	n        int
}

// Prime computes and caches the fleet max for the given profile. The
// engine calls it once at run start so the evacuation hot path never
// writes the cache; direct library use may skip it (Pick primes
// lazily).
func (sw *SpeedWeightedRehome) Prime(speeds []float64) {
	sw.maxSpeed = 0
	for _, sp := range speeds {
		if sp > sw.maxSpeed {
			sw.maxSpeed = sp
		}
	}
	if len(speeds) > 0 {
		sw.profile = &speeds[0]
	} else {
		sw.profile = nil
	}
	sw.n = len(speeds)
}

// Pick implements RehomePolicy.
func (sw *SpeedWeightedRehome) Pick(s *core.State, up *UpSet, speeds []float64, from int, w float64, rr *rng.Rand) int {
	if len(speeds) == 0 {
		return up.Random(rr)
	}
	if sw.profile != &speeds[0] || sw.n != len(speeds) {
		sw.Prime(speeds)
	}
	for {
		c := up.Random(rr)
		if speeds[c] == sw.maxSpeed || rr.Float64()*sw.maxSpeed < speeds[c] {
			return c
		}
	}
}

// Name identifies the policy.
func (*SpeedWeightedRehome) Name() string { return "speed-weighted" }
