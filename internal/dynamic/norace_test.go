//go:build !race

package dynamic

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
