package dynamic

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// tracedConfig mirrors TestTraceDrivenRun's setup for a loaded trace.
func tracedConfig(tr Trace) Config {
	return Config{
		Graph:    graph.Complete(10),
		Protocol: core.UserControlled{Alpha: 1},
		Arrivals: tr,
		Service:  Geometric{P: 0.2},
		Tuner:    &OracleTuner{Eps: 0.5},
		Rounds:   120,
		Window:   30,
		Seed:     2,

		CheckInvariants: true,
	}
}

func TestReadTraceCSV(t *testing.T) {
	in := `round,weight
# ingress log, scaled to wmin=1
0,5
0,2.5
2,3
1,1
2,4
`
	tr, err := ReadTraceCSV(strings.NewReader(in), "unit")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{5, 2.5}, {1}, {3, 4}}
	if !reflect.DeepEqual(tr.Rounds, want) {
		t.Fatalf("rounds %v, want %v", tr.Rounds, want)
	}
	if tr.Name() != "trace(unit)" {
		t.Fatalf("label lost: %s", tr.Name())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("loaded trace failed validation: %v", err)
	}
}

func TestReadTraceCSVNoHeader(t *testing.T) {
	tr, err := ReadTraceCSV(strings.NewReader("3,2\n0,1.5\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1.5}, nil, nil, {2}}
	if !reflect.DeepEqual(tr.Rounds, want) {
		t.Fatalf("rounds %v, want %v", tr.Rounds, want)
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"0,0.5\n", "below 1"},
		{"-1,2\n", "negative round"},
		{"x,2\n", "bad round"},
		{"0,heavy\n", "bad weight"},
		{"0,2,3\n", "wrong number of fields"},
	}
	for _, c := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(c.in), ""); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("input %q: want error containing %q, got %v", c.in, c.want, err)
		}
	}
}

func TestReadTraceJSONL(t *testing.T) {
	in := `{"round":1,"weight":2}
# comment

{"round":0,"weight":5.5}
{"round":1,"weight":3}
`
	tr, err := ReadTraceJSONL(strings.NewReader(in), "jl")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{5.5}, {2, 3}}
	if !reflect.DeepEqual(tr.Rounds, want) {
		t.Fatalf("rounds %v, want %v", tr.Rounds, want)
	}
	if _, err := ReadTraceJSONL(strings.NewReader(`{"round":0,"weight":0.2}`), ""); err == nil || !strings.Contains(err.Error(), "below 1") {
		t.Fatalf("want weight error, got %v", err)
	}
	if _, err := ReadTraceJSONL(strings.NewReader(`{"round":0,"w":2}`), ""); err == nil {
		t.Fatal("unknown field accepted")
	}
	// A record missing a key must error, not land in round 0 with the
	// zero value; so must trailing data after the line's first object.
	if _, err := ReadTraceJSONL(strings.NewReader(`{"weight":2}`), ""); err == nil || !strings.Contains(err.Error(), "must carry both") {
		t.Fatalf("missing round accepted: %v", err)
	}
	if _, err := ReadTraceJSONL(strings.NewReader(`{"round":1}`), ""); err == nil || !strings.Contains(err.Error(), "must carry both") {
		t.Fatalf("missing weight accepted: %v", err)
	}
	if _, err := ReadTraceJSONL(strings.NewReader(`{"round":1,"weight":2}{"round":2,"weight":3}`), ""); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("concatenated records accepted: %v", err)
	}
}

func TestLoadTraceFileAndReplay(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "arrivals.csv")
	if err := os.WriteFile(csvPath, []byte("round,weight\n0,5\n0,5\n0,5\n10,1\n10,1\n10,1\n10,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTraceFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "arrivals.csv" {
		t.Fatalf("label %q", tr.Label)
	}
	// Replay through the engine: identical accounting to the in-memory
	// trace used by TestTraceDrivenRun.
	cfg := tracedConfig(tr)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 7 || res.ArrivedWeight != 19 {
		t.Fatalf("replay accounting: arrived=%d weight=%v", res.Arrived, res.ArrivedWeight)
	}

	jlPath := filepath.Join(dir, "arrivals.jsonl")
	if err := os.WriteFile(jlPath, []byte(`{"round":0,"weight":5}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraceFile(jlPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraceFile(filepath.Join(dir, "arrivals.txt")); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := LoadTraceFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
