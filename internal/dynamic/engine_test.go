package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// goldenConfig is the determinism workload: Poisson/Pareto traffic,
// self-tuned thresholds, and (optionally) heavy resource churn so the
// cross-shard paths — evacuations, bounced deliveries, the up-mass
// renormalisation — are all exercised.
func goldenConfig(n int, proto core.Protocol, g *graph.Graph, churn Churn, seed uint64, workers int) Config {
	return Config{
		Graph:    g,
		Protocol: proto,
		Arrivals: Poisson{Rate: 0.8 * float64(n) / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Tuner: &SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Churn:   churn,
		Rounds:  250,
		Window:  50,
		Seed:    seed,
		Workers: workers,
	}
}

// TestShardedDeterminism is the golden cross-worker-count test: for
// seeds {1, 2, 3} and workers {1, 2, 4, 8}, the sharded engine must
// produce byte-identical Result values — WindowStats and float totals
// included — matching the sequential Workers = 1 run, with and without
// churn, for both protocol families and for geometric service (whose
// randomness rides the per-resource streams).
func TestShardedDeterminism(t *testing.T) {
	expander := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	complete := graph.Complete(120)
	cases := []struct {
		name  string
		build func(seed uint64, workers int) Config
	}{
		{"resource-churnless", func(seed uint64, workers int) Config {
			return goldenConfig(200, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(expander))},
				expander, Churn{}, seed, workers)
		}},
		{"resource-churn", func(seed uint64, workers int) Config {
			return goldenConfig(200, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(expander))},
				expander, Churn{LeaveProb: 0.3, JoinProb: 0.3, MinUp: 100}, seed, workers)
		}},
		{"user-churn", func(seed uint64, workers int) Config {
			return goldenConfig(120, core.UserControlled{Alpha: 1},
				complete, Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 60}, seed, workers)
		}},
		{"mixed-geometric-churn", func(seed uint64, workers int) Config {
			cfg := goldenConfig(200, core.Mixed{
				A:      core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(expander))},
				B:      core.UserControlledGraph{Alpha: 1},
				Period: 2,
			}, expander, Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 100}, seed, workers)
			cfg.Service = Geometric{P: 0.2}
			return cfg
		}},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 2, 3} {
			var ref Result
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := tc.build(seed, workers)
				cfg.CheckInvariants = workers == 1 // once per seed is plenty
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", tc.name, seed, workers, err)
				}
				if workers == 1 {
					ref = res
					if res.Arrived == 0 || res.Departed == 0 {
						t.Fatalf("%s seed %d: no traffic: %+v", tc.name, seed, res)
					}
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s seed %d: workers=%d diverges from sequential run\ngot  %+v\nwant %+v",
						tc.name, seed, workers, res, ref)
				}
			}
		}
	}
}

// TestWorkersExceedingResources pins the clamp: more workers than
// resources must neither crash nor change the outcome.
func TestWorkersExceedingResources(t *testing.T) {
	g := graph.Complete(5)
	build := func(workers int) Config {
		return Config{
			Graph:    g,
			Protocol: core.UserControlled{Alpha: 1},
			Arrivals: Poisson{Rate: 2, Weights: task.Uniform{W: 1}},
			Service:  Geometric{P: 0.3},
			Tuner:    &OracleTuner{Eps: 0.5},
			Rounds:   80,
			Window:   20,
			Seed:     11,
			Workers:  workers,
		}
	}
	ref, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("worker clamp changed the run:\ngot  %+v\nwant %+v", got, ref)
	}
}

// TestNonRangeProtocolFallback runs a protocol without ProposeRange
// through the sharded engine: it must fall back to sequential Step and
// still be worker-count-invariant.
func TestNonRangeProtocolFallback(t *testing.T) {
	g := graph.Complete(50)
	build := func(workers int) Config {
		return Config{
			Graph:    g,
			Protocol: nullProtocol{},
			Arrivals: Poisson{Rate: 10, Weights: task.Pareto{Alpha: 2, Cap: 20}},
			Service:  WeightProportional{Rate: 1},
			Tuner:    &OracleTuner{Eps: 0.5},
			Rounds:   60,
			Window:   20,
			Seed:     5,
			Workers:  workers,
		}
	}
	ref, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("fallback path diverged across workers:\ngot  %+v\nwant %+v", got, ref)
	}
	if got.Migrations != 0 {
		t.Fatalf("null protocol migrated: %+v", got)
	}
}

// TestSteadyStateZeroAllocs asserts the headline allocation budget:
// once warmed up, the churnless Poisson configuration must run whole
// rounds — arrivals, dispatch, service, tuner refresh, propose,
// deliver, metrics — without allocating, for both the sequential and
// the sharded engine. testing.Benchmark amortises the one-time engine
// construction and the logarithmically-rare buffer growth; anything
// per-round would show up as ≥ 1 alloc/op.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrating benchmark runs take ~1s each")
	}
	g := graph.RandomRegular(256, 8, rng.NewSeeded(3))
	for _, workers := range []int{1, 2} {
		res := testing.Benchmark(func(b *testing.B) {
			cfg := Config{
				Graph:    g,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: Poisson{Rate: 0.8 * 256 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service:  WeightProportional{Rate: 1},
				Tuner: &SelfTuner{Eps: 0.5, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Rounds:  b.N,
				Window:  1 << 30,
				Seed:    0x5eed,
				Workers: workers,
			}
			b.ReportAllocs()
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		})
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Fatalf("workers=%d: steady-state round allocates %d times/op (%d B/op), want 0",
				workers, allocs, res.AllocedBytesPerOp())
		}
	}
}
