package dynamic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// goldenConfig is the determinism workload: Poisson/Pareto traffic,
// self-tuned thresholds, and (optionally) heavy resource churn so the
// cross-shard paths — evacuations, bounced deliveries, the up-mass
// renormalisation — are all exercised.
func goldenConfig(n int, proto core.Protocol, g *graph.Graph, churn Churn, seed uint64, workers int) Config {
	return Config{
		Graph:    g,
		Protocol: proto,
		Arrivals: Poisson{Rate: 0.8 * float64(n) / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Tuner: &SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Churn:   churn,
		Rounds:  250,
		Window:  50,
		Seed:    seed,
		Workers: workers,
	}
}

// TestShardedDeterminism is the golden cross-worker-count test: for
// seeds {1, 2, 3} and workers {1, 2, 4, 8}, the sharded engine must
// produce byte-identical Result values — WindowStats and float totals
// included — matching the sequential Workers = 1 run, with and without
// churn, for both protocol families and for geometric service (whose
// randomness rides the per-resource streams).
func TestShardedDeterminism(t *testing.T) {
	expander := graph.RandomRegular(200, 8, rng.NewSeeded(7))
	complete := graph.Complete(120)
	cases := []struct {
		name  string
		build func(seed uint64, workers int) Config
	}{
		{"resource-churnless", func(seed uint64, workers int) Config {
			return goldenConfig(200, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(expander))},
				expander, Churn{}, seed, workers)
		}},
		{"resource-churn", func(seed uint64, workers int) Config {
			return goldenConfig(200, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(expander))},
				expander, Churn{LeaveProb: 0.3, JoinProb: 0.3, MinUp: 100}, seed, workers)
		}},
		{"user-churn", func(seed uint64, workers int) Config {
			return goldenConfig(120, core.UserControlled{Alpha: 1},
				complete, Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 60}, seed, workers)
		}},
		{"mixed-geometric-churn", func(seed uint64, workers int) Config {
			cfg := goldenConfig(200, core.Mixed{
				A:      core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(expander))},
				B:      core.UserControlledGraph{Alpha: 1},
				Period: 2,
			}, expander, Churn{LeaveProb: 0.2, JoinProb: 0.2, MinUp: 100}, seed, workers)
			cfg.Service = Geometric{P: 0.2}
			return cfg
		}},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 2, 3} {
			var ref Result
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := tc.build(seed, workers)
				cfg.CheckInvariants = workers == 1 // once per seed is plenty
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", tc.name, seed, workers, err)
				}
				if workers == 1 {
					ref = res
					if res.Arrived == 0 || res.Departed == 0 {
						t.Fatalf("%s seed %d: no traffic: %+v", tc.name, seed, res)
					}
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s seed %d: workers=%d diverges from sequential run\ngot  %+v\nwant %+v",
						tc.name, seed, workers, res, ref)
				}
			}
		}
	}
}

// TestWorkersExceedingResources pins the clamp: more workers than
// resources must neither crash nor change the outcome.
func TestWorkersExceedingResources(t *testing.T) {
	g := graph.Complete(5)
	build := func(workers int) Config {
		return Config{
			Graph:    g,
			Protocol: core.UserControlled{Alpha: 1},
			Arrivals: Poisson{Rate: 2, Weights: task.Uniform{W: 1}},
			Service:  Geometric{P: 0.3},
			Tuner:    &OracleTuner{Eps: 0.5},
			Rounds:   80,
			Window:   20,
			Seed:     11,
			Workers:  workers,
		}
	}
	ref, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("worker clamp changed the run:\ngot  %+v\nwant %+v", got, ref)
	}
}

// TestNonRangeProtocolFallback runs a protocol without ProposeRange
// through the sharded engine: it must fall back to sequential Step and
// still be worker-count-invariant.
func TestNonRangeProtocolFallback(t *testing.T) {
	g := graph.Complete(50)
	build := func(workers int) Config {
		return Config{
			Graph:    g,
			Protocol: nullProtocol{},
			Arrivals: Poisson{Rate: 10, Weights: task.Pareto{Alpha: 2, Cap: 20}},
			Service:  WeightProportional{Rate: 1},
			Tuner:    &OracleTuner{Eps: 0.5},
			Rounds:   60,
			Window:   20,
			Seed:     5,
			Workers:  workers,
		}
	}
	ref, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("fallback path diverged across workers:\ngot  %+v\nwant %+v", got, ref)
	}
	if got.Migrations != 0 {
		t.Fatalf("null protocol migrated: %+v", got)
	}
}

// TestSteadyStateZeroAllocs asserts the headline allocation budget:
// once warmed up, the churnless Poisson configuration must run whole
// rounds — arrivals, dispatch, service, tuner refresh, propose,
// deliver, metrics — without allocating, for both the sequential and
// the sharded engine. testing.Benchmark amortises the one-time engine
// construction and the logarithmically-rare buffer growth; anything
// per-round would show up as ≥ 1 alloc/op.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrating benchmark runs take ~1s each")
	}
	if raceEnabled {
		t.Skip("race instrumentation shrinks the calibrated iteration count, so one-time construction no longer amortises below 1 alloc/op")
	}
	g := graph.RandomRegular(256, 8, rng.NewSeeded(3))
	// The heterogeneous variant exercises every speed path — scaled
	// service, the speed-mass tuner companion, speed-weighted dispatch
	// — under the same zero-allocation budget.
	speeds := speedProfile(256)
	totalSpeed := 0.0
	for _, s := range speeds {
		totalSpeed += s
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"homogeneous", func(cfg *Config) {}},
		{"heterogeneous", func(cfg *Config) {
			cfg.Speeds = speeds
			cfg.Arrivals = Poisson{Rate: 0.8 * totalSpeed / paretoMean,
				Weights: task.Pareto{Alpha: 2, Cap: 20}}
			cfg.Dispatch = &SpeedWeighted{}
		}},
		// The observed variant attaches the full telemetry stack — a
		// broker with a registered Prometheus exporter, whose bounded
		// subscription absorbs (and, unscraped, eventually drops) the
		// window/lane/phase event stream — under the same exact-zero
		// budget: publishing is a struct copy into a preallocated ring.
		{"observed", func(cfg *Config) {
			br := obs.NewBroker()
			obs.NewExporter(br, 1024)
			cfg.Obs = br
		}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2} {
			res := testing.Benchmark(func(b *testing.B) {
				cfg := Config{
					Graph:    g,
					Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
					Arrivals: Poisson{Rate: 0.8 * 256 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
					Service:  WeightProportional{Rate: 1},
					Tuner: &SelfTuner{Eps: 0.5, Steps: 2,
						Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
					Rounds:  b.N,
					Window:  1 << 30,
					Seed:    0x5eed,
					Workers: workers,
				}
				tc.mutate(&cfg)
				b.ReportAllocs()
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			})
			if allocs := res.AllocsPerOp(); allocs != 0 {
				t.Fatalf("%s workers=%d: steady-state round allocates %d times/op (%d B/op), want 0",
					tc.name, workers, allocs, res.AllocedBytesPerOp())
			}
		}
	}
}

// TestMassFailureDeterminism is the mass-churn golden test: a scripted
// ChurnEvent kills 1000 of 2000 resources in a single round (and later
// rejoins them), so thousands of tasks evacuate through the parallel
// exchange at once. For seeds {1, 2, 3} and workers {1, 2, 4, 8} the
// Result must be byte-identical — the sharded evacuation path, like
// every other phase, may not leak the partition into the outcome.
func TestMassFailureDeterminism(t *testing.T) {
	g := graph.RandomRegular(2000, 8, rng.NewSeeded(21))
	build := func(seed uint64, workers int) Config {
		cfg := goldenConfig(2000, core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			g, Churn{
				MinUp: 500,
				Events: []ChurnEvent{
					{Round: 60, Down: 1000},
					{Round: 150, Up: 1000},
				},
			}, seed, workers)
		cfg.Arrivals = Poisson{Rate: 0.8 * 2000 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}}
		return cfg
	}
	for _, seed := range []uint64{1, 2, 3} {
		var ref Result
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := build(seed, workers)
			cfg.CheckInvariants = workers == 1
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				ref = res
				if res.Downs != 1000 || res.Ups != 1000 {
					t.Fatalf("seed %d: mass events did not fire: downs=%d ups=%d", seed, res.Downs, res.Ups)
				}
				if res.Rehomed < 1000 {
					t.Fatalf("seed %d: mass failure re-homed only %d tasks", seed, res.Rehomed)
				}
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("seed %d: workers=%d diverges from sequential mass-failure run\ngot  %+v\nwant %+v",
					seed, workers, res, ref)
			}
		}
	}
}

// speedProfile builds the heterogeneous test fleet: four speed classes
// {1, 2, 4, 10} interleaved across the resource range — a 10:1 spread
// with every shard holding a mix of classes.
func speedProfile(n int) []float64 {
	speeds := make([]float64, n)
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
	}
	return speeds
}

// TestHeterogeneousMassFailureDeterminism is the heterogeneous golden
// test: a 10:1 speed-spread fleet under speed-scaled service,
// speed-aware self-tuned thresholds and load-per-speed power-of-two
// dispatch, hit by a mass failure (half the fleet dies in one round,
// rejoins later). For seeds {1, 2, 3} and workers {1, 2, 4, 8} the
// Result must be byte-identical — the speed plumbing, like every other
// engine feature, may not leak the partition into the outcome.
func TestHeterogeneousMassFailureDeterminism(t *testing.T) {
	const n = 800
	g := graph.RandomRegular(n, 8, rng.NewSeeded(31))
	speeds := speedProfile(n)
	totalSpeed := 0.0
	for _, s := range speeds {
		totalSpeed += s
	}
	build := func(seed uint64, workers int) Config {
		return Config{
			Graph:  g,
			Speeds: speeds,
			Protocol: core.ResourceControlled{
				Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			Arrivals: Poisson{Rate: 0.8 * totalSpeed / paretoMean,
				Weights: task.Pareto{Alpha: 2, Cap: 20}},
			Service:  WeightProportional{Rate: 1},
			Dispatch: PowerOfD{D: 2},
			Tuner: &SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
				Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			Churn: Churn{
				MinUp: 200,
				Events: []ChurnEvent{
					{Round: 60, Down: 400},
					{Round: 150, Up: 400},
				},
			},
			Rounds:  250,
			Window:  50,
			Seed:    seed,
			Workers: workers,
		}
	}
	for _, seed := range []uint64{1, 2, 3} {
		var ref Result
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := build(seed, workers)
			cfg.CheckInvariants = workers == 1
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				ref = res
				if res.Downs != 400 || res.Ups != 400 {
					t.Fatalf("seed %d: mass events did not fire: downs=%d ups=%d", seed, res.Downs, res.Ups)
				}
				if res.Rehomed < 400 {
					t.Fatalf("seed %d: mass failure re-homed only %d tasks", seed, res.Rehomed)
				}
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("seed %d: workers=%d diverges from sequential heterogeneous run\ngot  %+v\nwant %+v",
					seed, workers, res, ref)
			}
		}
	}
}

// TestHeterogeneousSteadyState drives the speed-aware engine end to
// end and checks the physics. The fleet is 10:1 heterogeneous and the
// Poisson stream runs at ρ = 0.8 of its TOTAL capacity but is
// dispatched UNIFORMLY — every slow machine is offered ~4.25× what it
// can serve, so the system is stable only if migration keeps shedding
// the slow machines' excess to the fast ones. With speed-proportional
// thresholds the run must reach a steady state whose live thresholds
// track the analytic (1+ε)·(W/S)·s_r + wmax targets; with no
// balancing at all the same stream must visibly diverge — the control
// that proves the speed-aware balancer, not the dispatcher, carries
// the workload class.
func TestHeterogeneousSteadyState(t *testing.T) {
	const n, eps = 400, 0.5
	g := graph.Complete(n)
	speeds := speedProfile(n)
	totalSpeed := 0.0
	for _, s := range speeds {
		totalSpeed += s
	}
	var lastState *core.State
	// Light-tailed weights (mean 1.5, wmax 2) keep the +wmax threshold
	// floor small, so the standing queue level is governed by the
	// proportional W·s_r/S shares the test is about, not by the slack.
	// Tuners are stateful — each run gets a fresh one.
	base := func() Config {
		return Config{
			Graph:  g,
			Speeds: speeds,
			Arrivals: Poisson{Rate: 0.8 * totalSpeed / 1.5,
				Weights: task.UniformRange{Lo: 1, Hi: 2}},
			Service: WeightProportional{Rate: 1},
			Tuner: &SelfTuner{Eps: eps, Decay: 0.8, Every: 10, Steps: 4,
				Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			Rounds:          600,
			Window:          100,
			Seed:            17,
			Workers:         2,
			CheckInvariants: true,
		}
	}
	balanced := base()
	balanced.Protocol = core.UserControlled{Alpha: 1}
	balanced.OnRound = func(round int, s *core.State) {
		if round == 599 {
			lastState = s
		}
	}
	res, err := Run(balanced)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("heterogeneous run produced no migrations")
	}
	if lastState == nil {
		t.Fatal("OnRound never saw the final round")
	}
	// Stability: the in-flight weight stays a small multiple of the
	// fleet's per-round capacity instead of accumulating the slow
	// machines' structural deficit.
	last := res.Windows[len(res.Windows)-1]
	if last.InFlightWeight > 5*totalSpeed {
		t.Fatalf("in-flight weight %v not draining (capacity %v/round)", last.InFlightWeight, totalSpeed)
	}
	// Live thresholds vs the analytic proportional targets, using the
	// final in-flight weight. W fluctuates round to round while the
	// EWMA averages it, so the live band is wider than the static
	// 5% regression in TestSelfTunerProportionalTargets.
	w, wmax := res.FinalWeight, lastState.LiveWMax()
	for _, r := range []int{0, 1, 2, 3, n - 4, n - 3, n - 2, n - 1} {
		want := (1+eps)*(w/totalSpeed)*speeds[r] + wmax
		if got := lastState.Threshold(r); math.Abs(got-want) > 0.25*want {
			t.Fatalf("resource %d (speed %g): live threshold %v, want ≈ %v (±25%%)",
				r, speeds[r], got, want)
		}
	}
	// The control: no balancing. The 1× and 2× classes are each offered
	// 0.8·S/n = 3.4 weight-units per round against capacities 1 and 2,
	// so without migration their structural deficit (~380 weight/round
	// fleet-wide) accumulates and the unbalanced in-flight weight must
	// dwarf the balanced one.
	unbalanced := base()
	unbalanced.Protocol = nullProtocol{}
	resNull, err := Run(unbalanced)
	if err != nil {
		t.Fatal(err)
	}
	lastNull := resNull.Windows[len(resNull.Windows)-1]
	if lastNull.InFlightWeight < 10*last.InFlightWeight {
		t.Fatalf("no-balancing control did not diverge: %v vs balanced %v",
			lastNull.InFlightWeight, last.InFlightWeight)
	}
}

// TestChurnEventsRespectMinUp pins the event guard rails: a Down burst
// larger than the headroom stops at MinUp, repeating events fire on
// their period, and weight is conserved throughout (CheckInvariants).
func TestChurnEventsRespectMinUp(t *testing.T) {
	g := graph.Complete(100)
	cfg := Config{
		Graph:    g,
		Protocol: core.UserControlled{Alpha: 1},
		Arrivals: Poisson{Rate: 0.7 * 100 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  WeightProportional{Rate: 1},
		Tuner:    &OracleTuner{Eps: 0.5},
		Churn: Churn{
			MinUp: 80,
			Events: []ChurnEvent{
				{Round: 10, Every: 40, Down: 1000}, // wants far more than the headroom
				{Round: 30, Every: 40, Up: 1000},   // rejoins everything that is down
			},
		},
		Rounds:          120,
		Window:          30,
		Seed:            4,
		Workers:         4,
		CheckInvariants: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each Down burst can only take up to MinUp: 3 bursts × 20.
	if res.Downs != 60 || res.Ups != 60 {
		t.Fatalf("event bursts wrong: downs=%d ups=%d (want 60 each)", res.Downs, res.Ups)
	}
	if res.Rehomed == 0 {
		t.Fatal("mass failures re-homed nothing")
	}
}

// TestMeasuredCostRebalance drives the measured-cost shard sizing with
// a deliberately skewed workload (hotspot ingress) and checks the
// observability contract: OnRebalance fires on the configured period
// with a valid, cost-annotated partition — and the run still matches
// the equal-partition run bit for bit, because boundary placement can
// never leak into results.
func TestMeasuredCostRebalance(t *testing.T) {
	g := graph.Complete(200)
	build := func(every int, hook func(int, []ShardStat)) Config {
		return Config{
			Graph:          g,
			Protocol:       core.UserControlled{Alpha: 1},
			Arrivals:       Poisson{Rate: 0.8 * 200 / paretoMean, Weights: task.Pareto{Alpha: 2, Cap: 20}},
			Service:        WeightProportional{Rate: 1},
			Dispatch:       HotspotDispatch{Resource: 7},
			Tuner:          &OracleTuner{Eps: 0.5},
			Rounds:         200,
			Window:         50,
			Seed:           12,
			Workers:        4,
			RebalanceEvery: every,
			OnRebalance:    hook,
		}
	}
	calls := 0
	ref, err := Run(build(-1, nil)) // pinned equal partition
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(25, func(round int, sts []ShardStat) {
		calls++
		if round%25 != 0 {
			t.Fatalf("rebalance at round %d with period 25", round)
		}
		if len(sts) != 4 {
			t.Fatalf("rebalance saw %d shards", len(sts))
		}
		prev := 0
		for _, st := range sts {
			if st.Lo != prev || st.Hi <= st.Lo {
				t.Fatalf("invalid shard partition %+v", sts)
			}
			prev = st.Hi
		}
		if prev != 200 {
			t.Fatalf("partition does not cover the range: %+v", sts)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("OnRebalance fired %d times over 200 rounds at period 25", calls)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("measured-cost boundaries changed the run:\ngot  %+v\nwant %+v", got, ref)
	}
}
