// Package cli holds the flag-value parsing shared by the command-line
// tools (lbsim, lbgraph): graph-family construction from string
// parameters and protocol-name resolution.
package cli

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// GraphSpec describes a graph family selection from CLI flags.
type GraphSpec struct {
	Kind string  // complete|grid|torus|hypercube|expander|gnp|cliquependant
	N    int     // target size (rounded per family)
	K    int     // pendant links / expander degree
	P    float64 // G(n,p) edge probability
	Seed uint64
}

// Build constructs the requested graph. Sizes are rounded to the
// family's natural grid (square side, power of two, …); the returned
// graph's N() reports the actual size.
func (sp GraphSpec) Build() (*graph.Graph, error) {
	if sp.N < 1 {
		return nil, fmt.Errorf("cli: graph size %d out of range", sp.N)
	}
	switch sp.Kind {
	case "complete":
		return graph.Complete(sp.N), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(sp.N))))
		return graph.Grid2D(side, side, false), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(sp.N))))
		return graph.Grid2D(side, side, true), nil
	case "hypercube":
		dim := 0
		for 1<<uint(dim) < sp.N {
			dim++
		}
		return graph.Hypercube(dim), nil
	case "expander":
		if sp.K < 1 || sp.K >= sp.N {
			return nil, fmt.Errorf("cli: expander degree %d invalid for n=%d", sp.K, sp.N)
		}
		return graph.RandomRegular(sp.N, sp.K, rng.NewSeeded(sp.Seed)), nil
	case "gnp":
		if sp.P < 0 || sp.P > 1 {
			return nil, fmt.Errorf("cli: G(n,p) probability %v out of [0,1]", sp.P)
		}
		r := rng.NewSeeded(sp.Seed)
		return graph.GenerateConnected(1000, func() *graph.Graph {
			return graph.ErdosRenyi(sp.N, sp.P, r)
		}), nil
	case "cliquependant":
		if sp.K < 1 || sp.K > sp.N-1 {
			return nil, fmt.Errorf("cli: pendant links %d invalid for n=%d", sp.K, sp.N)
		}
		return graph.CliquePendant(sp.N, sp.K), nil
	default:
		return nil, fmt.Errorf("cli: unknown graph kind %q", sp.Kind)
	}
}

// Kinds lists the accepted graph kind strings (for usage messages).
func Kinds() []string {
	return []string{"complete", "grid", "torus", "hypercube", "expander", "gnp", "cliquependant"}
}
