package cli

import (
	"strings"
	"testing"
)

func TestBuildEveryKind(t *testing.T) {
	cases := []struct {
		spec  GraphSpec
		wantN int
	}{
		{GraphSpec{Kind: "complete", N: 10}, 10},
		{GraphSpec{Kind: "grid", N: 9}, 9},
		{GraphSpec{Kind: "grid", N: 10}, 9}, // rounds to 3x3
		{GraphSpec{Kind: "torus", N: 16}, 16},
		{GraphSpec{Kind: "hypercube", N: 8}, 8},
		{GraphSpec{Kind: "hypercube", N: 9}, 16}, // next power of two
		{GraphSpec{Kind: "expander", N: 12, K: 3, Seed: 1}, 12},
		{GraphSpec{Kind: "gnp", N: 20, P: 0.4, Seed: 1}, 20},
		{GraphSpec{Kind: "cliquependant", N: 10, K: 2}, 10},
	}
	for _, c := range cases {
		g, err := c.spec.Build()
		if err != nil {
			t.Fatalf("%+v: %v", c.spec, err)
		}
		if g.N() != c.wantN {
			t.Fatalf("%+v: n=%d want %d", c.spec, g.N(), c.wantN)
		}
		if !g.Connected() {
			t.Fatalf("%+v: disconnected", c.spec)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		spec GraphSpec
		want string
	}{
		{GraphSpec{Kind: "mobius", N: 8}, "unknown graph kind"},
		{GraphSpec{Kind: "complete", N: 0}, "out of range"},
		{GraphSpec{Kind: "expander", N: 8, K: 0}, "degree"},
		{GraphSpec{Kind: "expander", N: 8, K: 9}, "degree"},
		{GraphSpec{Kind: "gnp", N: 8, P: 1.5}, "probability"},
		{GraphSpec{Kind: "cliquependant", N: 8, K: 0}, "pendant"},
	}
	for _, c := range cases {
		if _, err := c.spec.Build(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%+v: want error containing %q, got %v", c.spec, c.want, err)
		}
	}
}

func TestKindsCoverBuild(t *testing.T) {
	for _, kind := range Kinds() {
		spec := GraphSpec{Kind: kind, N: 16, K: 3, P: 0.4, Seed: 2}
		if _, err := spec.Build(); err != nil {
			t.Fatalf("advertised kind %q fails: %v", kind, err)
		}
	}
}
