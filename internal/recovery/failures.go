package recovery

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dynamic"
	"repro/internal/rng"
)

// FailureModel describes correlated, topology-aware stochastic failure
// and repair processes. It does NOT run inside the engine: Compile
// turns it into a concrete one-shot ChurnEvent schedule for a fixed
// horizon, drawn from its own deterministic streams, so a correlated
// failure trace is an ordinary scripted input — replay stays
// bit-for-bit identical for any worker count, the schedule passes the
// engine's config-time validation by construction, and the same trace
// can be rerun against every RehomePolicy.
//
// Three alternating-renewal process families compose (all times are
// exponential, in rounds):
//
//   - rack loss: each rack independently fails as a unit (mean up time
//     RackMTBF), taking every currently-up member down in one round,
//     and is repaired after mean RackMTTR — the mass-failure burst;
//   - machine churn: each resource independently fails (ResourceMTBF)
//     and recovers (ResourceMTTR) — the uncorrelated background;
//   - flapping: FlapResources machines, picked uniformly at random,
//     cycle with short means FlapMTBF/FlapMTTR — the pathological
//     fast-churn clients that stress the evacuation path.
//
// Overlaps resolve by state: a transition that finds its resource
// already in the target state is dropped (a rack repair revives only
// the members still down, a machine-level failure inside an already
// dead rack is absorbed), which is exactly the drop rule
// dynamic.ValidateEvents enforces.
type FailureModel struct {
	Topo *Topology // required

	RackMTBF, RackMTTR         float64 // rack-loss process; 0,0 disables
	ResourceMTBF, ResourceMTTR float64 // machine-level process; 0,0 disables
	FlapResources              int     // number of flapping machines; 0 disables
	FlapMTBF, FlapMTTR         float64 // flapper up/down means
}

// Validate checks the model's parameters.
func (m FailureModel) Validate() error {
	if m.Topo == nil {
		return errors.New("recovery: FailureModel needs a Topology")
	}
	check := func(label string, mtbf, mttr float64, enabled bool) error {
		if !enabled {
			if mtbf != 0 || mttr != 0 {
				return fmt.Errorf("recovery: FailureModel %s MTBF/MTTR must both be set or both be zero (got %g/%g)", label, mtbf, mttr)
			}
			return nil
		}
		if mtbf <= 0 || mttr <= 0 {
			return fmt.Errorf("recovery: FailureModel %s MTBF/MTTR must be positive (got %g/%g)", label, mtbf, mttr)
		}
		return nil
	}
	if err := check("rack", m.RackMTBF, m.RackMTTR, m.RackMTBF > 0 && m.RackMTTR > 0); err != nil {
		return err
	}
	if err := check("resource", m.ResourceMTBF, m.ResourceMTTR, m.ResourceMTBF > 0 && m.ResourceMTTR > 0); err != nil {
		return err
	}
	if m.FlapResources < 0 || m.FlapResources > m.Topo.N() {
		return fmt.Errorf("recovery: FailureModel.FlapResources %d out of range [0, %d]", m.FlapResources, m.Topo.N())
	}
	if m.FlapResources > 0 {
		if m.FlapMTBF <= 0 || m.FlapMTTR <= 0 {
			return fmt.Errorf("recovery: FailureModel flap MTBF/MTTR must be positive (got %g/%g)", m.FlapMTBF, m.FlapMTTR)
		}
	}
	if m.RackMTBF == 0 && m.ResourceMTBF == 0 && m.FlapResources == 0 {
		return errors.New("recovery: FailureModel enables no failure process")
	}
	return nil
}

// Stream-id bases for Compile's deterministic draws, far above the
// engine's own 0..n+3 stream ids so compiled schedules and run-time
// randomness never share a stream.
const (
	rackStreamBase uint64 = 0x5241434b << 32 // "RACK"
	resStreamBase  uint64 = 0x4d414348 << 32 // "MACH"
	flapStreamBase uint64 = 0x464c4150 << 32 // "FLAP"
)

// transition is one raw compiled up/down edge before conflict
// resolution.
type transition struct {
	round int
	kill  bool
	seq   int // global emission order (deterministic tiebreak)
	rack  int // −1 for a single-resource transition
	res   int // the resource, when rack < 0
}

// Compile draws the model's processes over rounds [0, horizon) and
// returns the resulting one-shot ChurnEvent schedule, sorted by round.
// The schedule is a pure function of (model, horizon, seed).
func (m FailureModel) Compile(horizon int, seed uint64) ([]dynamic.ChurnEvent, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("recovery: Compile horizon must be > 0, got %d", horizon)
	}
	t := m.Topo
	var trans []transition
	seq := 0
	emit := func(rr *rng.Rand, mtbf, mttr float64, rack, res int) {
		// Alternating renewal: up for Exp(mtbf), down for Exp(mttr).
		// Rounds are integral, so transitions clamp to strictly
		// increasing rounds — a repair never lands in (or before) its
		// failure's round.
		now := 0.0
		last := -1
		for {
			now += rr.ExpFloat64() * mtbf
			down := int(now)
			if down <= last {
				down = last + 1
			}
			if down >= horizon {
				return
			}
			trans = append(trans, transition{round: down, kill: true, seq: seq, rack: rack, res: res})
			seq++
			if now < float64(down) {
				now = float64(down)
			}
			now += rr.ExpFloat64() * mttr
			up := int(now)
			if up <= down {
				up = down + 1
			}
			last = up
			if up >= horizon {
				return
			}
			trans = append(trans, transition{round: up, kill: false, seq: seq, rack: rack, res: res})
			seq++
			if now < float64(up) {
				now = float64(up)
			}
		}
	}
	if m.RackMTBF > 0 {
		for k := 0; k < t.Racks(); k++ {
			emit(rng.Stream(seed, rackStreamBase+uint64(k)), m.RackMTBF, m.RackMTTR, k, -1)
		}
	}
	if m.ResourceMTBF > 0 {
		for r := 0; r < t.N(); r++ {
			emit(rng.Stream(seed, resStreamBase+uint64(r)), m.ResourceMTBF, m.ResourceMTTR, -1, r)
		}
	}
	if m.FlapResources > 0 {
		// Pick the flappers by partial Fisher–Yates on a dedicated
		// stream, then run each on its own.
		pick := rng.Stream(seed, flapStreamBase)
		idx := make([]int, t.N())
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < m.FlapResources; i++ {
			j := i + pick.Intn(t.N()-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		for i := 0; i < m.FlapResources; i++ {
			f := idx[i]
			emit(rng.Stream(seed, flapStreamBase+1+uint64(f)), m.FlapMTBF, m.FlapMTTR, -1, f)
		}
	}

	// Global order: by round; within a round all kills before all
	// repairs (the engine's application order); ties broken by emission
	// sequence so the result is deterministic.
	sort.Slice(trans, func(i, j int) bool {
		a, b := trans[i], trans[j]
		if a.round != b.round {
			return a.round < b.round
		}
		if a.kill != b.kill {
			return a.kill
		}
		return a.seq < b.seq
	})

	// Conflict resolution: walk the schedule, tracking every resource's
	// compiled state, and keep only transitions that change it. A
	// kill+repair pair landing on the same resource in the same round
	// (two overlapping processes) cancels outright — the engine would
	// evacuate nothing for it anyway, and ValidateEvents rightly lints
	// a list that both kills and revives one resource in one event.
	down := make([]bool, t.N())
	downIdx := map[int]int{} // resource → index in the CURRENT event's DownList
	apply := func(res int, kill bool, ev *dynamic.ChurnEvent) {
		if down[res] == kill {
			return // already in the target state: dropped
		}
		down[res] = kill
		if kill {
			downIdx[res] = len(ev.DownList)
			ev.DownList = append(ev.DownList, res)
			return
		}
		if i, ok := downIdx[res]; ok { // killed earlier this round: cancel
			last := len(ev.DownList) - 1
			moved := ev.DownList[last]
			ev.DownList[i] = moved
			downIdx[moved] = i
			ev.DownList = ev.DownList[:last]
			delete(downIdx, res)
			return
		}
		ev.UpList = append(ev.UpList, res)
	}
	var events []dynamic.ChurnEvent
	for i := 0; i < len(trans); {
		ev := dynamic.ChurnEvent{Round: trans[i].round}
		clear(downIdx)
		for ; i < len(trans) && trans[i].round == ev.Round; i++ {
			tr := trans[i]
			if tr.rack >= 0 {
				for _, r := range t.RackMembers(tr.rack) {
					apply(int(r), tr.kill, &ev)
				}
			} else {
				apply(tr.res, tr.kill, &ev)
			}
		}
		if len(ev.DownList) > 0 || len(ev.UpList) > 0 {
			events = append(events, ev)
		}
	}
	return events, nil
}
