package recovery

import (
	"bytes"
	"testing"
)

// Fuzz harnesses for the topology loaders, riding the same CI smoke
// job as the trace/speed parsers (30s per target). The contract is the
// parser family's usual one — malformed input must error, never panic
// — plus the topology-specific acceptance guarantees: every resource
// in [0, n) assigned exactly once, every rack in exactly one zone, and
// the rack/zone namespaces disjoint (the cycle-free check), so a
// fuzzed inventory can never smuggle a broken failure-domain hierarchy
// into a run. Seed corpora live in testdata/fuzz/<FuzzName>/ alongside
// the f.Add seeds below; run with
//
//	go test -run '^$' -fuzz FuzzReadTopologyCSV -fuzztime 30s ./internal/recovery
//
// (one target per invocation; CI smoke-runs both).

// checkFuzzedTopology validates the acceptance guarantees shared by
// both parsers.
func checkFuzzedTopology(t *testing.T, topo *Topology, n int) {
	t.Helper()
	if topo.N() != n {
		t.Fatalf("accepted topology has %d resources for n=%d", topo.N(), n)
	}
	covered := 0
	for k := 0; k < topo.Racks(); k++ {
		z := topo.ZoneOfRack(k)
		if z < 0 || z >= topo.Zones() {
			t.Fatalf("rack %d in invalid zone %d", k, z)
		}
		if topo.RackName(k) == "" {
			t.Fatalf("rack %d has an empty name", k)
		}
		for _, r := range topo.RackMembers(k) {
			if topo.RackOf(int(r)) != k || topo.ZoneOf(int(r)) != z {
				t.Fatalf("resource %d's membership is inconsistent", r)
			}
			covered++
		}
	}
	if covered != n {
		t.Fatalf("rack members cover %d of %d resources", covered, n)
	}
	for k := 0; k < topo.Racks(); k++ {
		for z := 0; z < topo.Zones(); z++ {
			if topo.RackName(k) == topo.ZoneName(z) {
				t.Fatalf("name %q is both rack %d and zone %d", topo.RackName(k), k, z)
			}
		}
	}
}

func clampFuzzN(n int) int {
	if n <= 0 || n > 1<<12 {
		return 16 // keep the dense output small; size is not the target
	}
	return n
}

func FuzzReadTopologyCSV(f *testing.F) {
	f.Add([]byte("resource,rack,zone\n0,r0,za\n1,r1,zb\n"), 2)
	f.Add([]byte("# fleet\n0,r0,za\n1,r0,za\n"), 2)
	f.Add([]byte("0,r0,za\n0,r1,za\n"), 2) // duplicate resource
	f.Add([]byte("5,r0,za\n"), 2)          // out of range
	f.Add([]byte("0,r0,za\n1,r0,zb\n"), 2) // rack reassigned
	f.Add([]byte("0,a,b\n1,b,a\n"), 2)     // rack/zone cycle
	f.Add([]byte("0,a,a\n"), 1)            // self cycle
	f.Add([]byte("0,r0,za\n"), 2)          // unassigned resource
	f.Add([]byte("x,y\n"), 2)              // wrong arity
	f.Add([]byte("0,,za\n"), 1)            // empty name
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		n = clampFuzzN(n)
		topo, err := ReadTopologyCSV(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		checkFuzzedTopology(t, topo, n)
	})
}

func FuzzReadTopologyJSONL(f *testing.F) {
	f.Add([]byte(`{"rack":"r0","zone":"za"}`+"\n"+`{"resource":0,"rack":"r0"}`), 1)
	f.Add([]byte(`{"resource":0,"rack":"r0"}`+"\n"+`{"rack":"r0","zone":"za"}`), 1) // forward ref
	f.Add([]byte(`{"resource":0,"rack":"ghost"}`), 1)                               // unknown rack
	f.Add([]byte(`{"rack":"a","zone":"b"}`+"\n"+`{"rack":"b","zone":"a"}`), 1)      // cycle
	f.Add([]byte(`{"resource":0,"rack":"r0","zone":"za"}`), 1)                      // ambiguous
	f.Add([]byte(`{"rack":"r0","zone":"za"}`+"\n"+`{"resource":0,"rack":"r0"}`+"\n"+`{"resource":0,"rack":"r0"}`), 1)
	f.Add([]byte(`{"resource":-1,"rack":"r0"}`), 1)
	f.Add([]byte("{"), 1)
	f.Add([]byte("null"), 1)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		n = clampFuzzN(n)
		topo, err := ReadTopologyJSONL(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		checkFuzzedTopology(t, topo, n)
	})
}
