//go:build !race

package recovery

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
