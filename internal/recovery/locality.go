package recovery

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/rng"
)

// Locality is the topology-aware re-home policy: a task evacuated off
// a failed resource lands on a uniformly random UP resource in the
// same rack; if the whole rack is down (the rack-loss case), in the
// same zone; if the zone is gone, anywhere — the graph-neighbours-
// first recovery rule of the network threshold games, expressed over
// failure domains. Locality keeps displaced work close (cheap
// migrations, warm caches, intact zone-local state) at the cost of
// concentrating a rack's fallout inside one zone; the dynrecover
// experiment quantifies that trade against the load- and speed-aware
// policies.
//
// Implementation: per-rack and per-zone compact up-member lists,
// maintained incrementally through the engine's RehomeObserver
// callbacks (which run in the sequential churn phase), so Pick is an
// O(1), allocation-free read that the parallel evacuation shards can
// issue concurrently. Each pick draws only from the failed resource's
// own stream, preserving the engine's cross-worker determinism for
// this policy like any other.
//
// A Locality value is stateful: like tuners, use a fresh value (or at
// least a separate one) per concurrent run.
type Locality struct {
	Topo *Topology // required; its N must match the run's resource count

	rackUp  [][]int32 // per-rack up members, compact
	zoneUp  [][]int32 // per-zone up members, compact
	posRack []int32   // resource → index in its rack's up list (−1 when down)
	posZone []int32   // resource → index in its zone's up list (−1 when down)
}

// Validate implements the optional config check.
func (l *Locality) Validate() error {
	if l.Topo == nil {
		return errors.New("recovery: Locality needs a Topology")
	}
	return nil
}

// ValidateFor implements the engine's size-aware config check: the
// topology must cover exactly the run's resources, caught before the
// run starts rather than as a mid-run panic.
func (l *Locality) ValidateFor(n int) error {
	if l.Topo != nil && l.Topo.N() != n {
		return fmt.Errorf("recovery: Locality topology covers %d resources, run has %d", l.Topo.N(), n)
	}
	return nil
}

// ResetUp implements dynamic.RehomeObserver: all n resources start up.
func (l *Locality) ResetUp(n int) {
	if l.Topo == nil {
		panic("recovery: Locality needs a Topology")
	}
	if n != l.Topo.N() {
		panic(fmt.Sprintf("recovery: Locality topology covers %d resources, run has %d", l.Topo.N(), n))
	}
	t := l.Topo
	if l.rackUp == nil {
		l.rackUp = make([][]int32, t.Racks())
		l.zoneUp = make([][]int32, t.Zones())
		l.posRack = make([]int32, n)
		l.posZone = make([]int32, n)
	}
	for k := range l.rackUp {
		l.rackUp[k] = append(l.rackUp[k][:0], t.RackMembers(k)...)
		for i, r := range l.rackUp[k] {
			l.posRack[r] = int32(i)
		}
	}
	for z := range l.zoneUp {
		l.zoneUp[z] = append(l.zoneUp[z][:0], t.ZoneMembers(z)...)
		for i, r := range l.zoneUp[z] {
			l.posZone[r] = int32(i)
		}
	}
}

// ResourceDown implements dynamic.RehomeObserver (swap-remove from the
// rack and zone lists).
func (l *Locality) ResourceDown(r int) {
	k, z := l.Topo.RackOf(r), l.Topo.ZoneOf(r)
	l.rackUp[k] = swapRemove(l.rackUp[k], l.posRack, r)
	l.posRack[r] = -1
	l.zoneUp[z] = swapRemove(l.zoneUp[z], l.posZone, r)
	l.posZone[r] = -1
}

// ResourceUp implements dynamic.RehomeObserver.
func (l *Locality) ResourceUp(r int) {
	k, z := l.Topo.RackOf(r), l.Topo.ZoneOf(r)
	l.posRack[r] = int32(len(l.rackUp[k]))
	l.rackUp[k] = append(l.rackUp[k], int32(r))
	l.posZone[r] = int32(len(l.zoneUp[z]))
	l.zoneUp[z] = append(l.zoneUp[z], int32(r))
}

// swapRemove removes resource r from a compact membership list,
// keeping pos in sync for the element swapped into r's slot.
func swapRemove(list []int32, pos []int32, r int) []int32 {
	i := pos[r]
	last := len(list) - 1
	moved := list[last]
	list[i] = moved
	pos[moved] = i
	return list[:last]
}

// Pick implements dynamic.RehomePolicy: same rack, then same zone,
// then anywhere.
func (l *Locality) Pick(s *core.State, up *dynamic.UpSet, speeds []float64, from int, w float64, rr *rng.Rand) int {
	k := l.Topo.RackOf(from)
	if list := l.rackUp[k]; len(list) > 0 {
		return int(list[rr.Intn(len(list))])
	}
	if list := l.zoneUp[l.Topo.ZoneOfRack(k)]; len(list) > 0 {
		return int(list[rr.Intn(len(list))])
	}
	return up.Random(rr)
}

// Name identifies the policy.
func (*Locality) Name() string { return "locality" }

// Interface conformance, pinned at compile time.
var (
	_ dynamic.RehomePolicy   = (*Locality)(nil)
	_ dynamic.RehomeObserver = (*Locality)(nil)
)
