package recovery

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// paretoMean is E[min(Pareto(1,2), 20)] = 2 − 1/20, the mean arrival
// weight of the shared workloads.
const paretoMean = 1.95

// testSpeeds builds the 10:1 interleaved speed profile used across the
// recovery suite, so every rack mixes all four speed classes.
func testSpeeds(n int) ([]float64, float64) {
	speeds := make([]float64, n)
	total := 0.0
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
		total += speeds[r]
	}
	return speeds, total
}

// recoverConfig is the shared rack-loss workload: a cluster graph
// mirroring the topology, heterogeneous speeds, ρ = 0.8 Poisson
// traffic, self-tuned thresholds, and the given scripted events and
// re-home policy.
func recoverConfig(topo *Topology, events []dynamic.ChurnEvent, seed uint64, workers int, rehome dynamic.RehomePolicy) dynamic.Config {
	n := topo.N()
	g := topo.ClusterGraph(6, 2, 1234)
	speeds, totalSpeed := testSpeeds(n)
	return dynamic.Config{
		Graph:    g,
		Speeds:   speeds,
		Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Arrivals: dynamic.Poisson{Rate: 0.8 * totalSpeed / paretoMean,
			Weights: task.Pareto{Alpha: 2, Cap: 20}},
		Service:  dynamic.WeightProportional{Rate: 1},
		Dispatch: dynamic.PowerOfD{D: 2},
		Rehome:   rehome,
		Tuner: &dynamic.SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
			Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Churn:   dynamic.Churn{MinUp: n / 4, Events: events},
		Rounds:  200,
		Window:  50,
		Seed:    seed,
		Workers: workers,
	}
}

// rehomePolicies enumerates every policy under test with a fresh-value
// constructor (stateful policies must not be shared across runs).
func rehomePolicies(topo *Topology) []struct {
	name string
	mk   func() dynamic.RehomePolicy
} {
	return []struct {
		name string
		mk   func() dynamic.RehomePolicy
	}{
		{"uniform", func() dynamic.RehomePolicy { return dynamic.UniformRehome{} }},
		{"power2", func() dynamic.RehomePolicy { return dynamic.PowerOfDRehome{D: 2} }},
		{"locality", func() dynamic.RehomePolicy { return &Locality{Topo: topo} }},
		{"speed", func() dynamic.RehomePolicy { return &dynamic.SpeedWeightedRehome{} }},
	}
}

// TestPolicyGoldenDeterminism is the golden cross-worker test extended
// to every re-home policy: a whole rack dies at round 60 and rejoins
// at 150; for seeds {1, 2, 3} and workers {1, 2, 4, 8} each policy's
// Result — recovery episodes and float totals included — must be
// byte-identical to its sequential run.
func TestPolicyGoldenDeterminism(t *testing.T) {
	topo, err := Synth(400, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rack0 := topo.RackList(0, nil)
	events := []dynamic.ChurnEvent{
		{Round: 60, DownList: rack0},
		{Round: 150, UpList: rack0},
	}
	for _, pol := range rehomePolicies(topo) {
		for _, seed := range []uint64{1, 2, 3} {
			var ref dynamic.Result
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := recoverConfig(topo, events, seed, workers, pol.mk())
				cfg.CheckInvariants = workers == 1
				res, err := dynamic.Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", pol.name, seed, workers, err)
				}
				if workers == 1 {
					ref = res
					if res.Downs != len(rack0) || res.Ups != len(rack0) {
						t.Fatalf("%s seed %d: rack loss did not fire: downs=%d ups=%d",
							pol.name, seed, res.Downs, res.Ups)
					}
					if res.Rehomed == 0 || res.RehomedWeight <= 0 {
						t.Fatalf("%s seed %d: nothing evacuated", pol.name, seed)
					}
					if len(res.Recoveries) == 0 {
						t.Fatalf("%s seed %d: no recovery episode", pol.name, seed)
					}
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s seed %d: workers=%d diverges from sequential run\ngot  %+v\nwant %+v",
						pol.name, seed, workers, res, ref)
				}
			}
		}
	}
}

// TestLocalityKeepsEvacuationLocal pins the policy's semantics at the
// engine level: when a whole rack dies, Locality re-homes its load
// inside the same ZONE (tier 2), while uniform scatters it fleet-wide.
// Both runs share every draw up to the evacuation itself, so the
// zone-0 weight snapshot at the failure round isolates the policy.
func TestLocalityKeepsEvacuationLocal(t *testing.T) {
	topo, err := Synth(200, 4, 2) // zone 0 = racks {0, 1}, zone 1 = racks {2, 3}
	if err != nil {
		t.Fatal(err)
	}
	events := []dynamic.ChurnEvent{{Round: 100, DownList: topo.RackList(0, nil)}}
	zone0At100 := func(rehome dynamic.RehomePolicy) (float64, float64) {
		cfg := recoverConfig(topo, events, 5, 2, rehome)
		weight := 0.0
		cfg.OnRound = func(round int, s *core.State) {
			if round != 100 {
				return
			}
			for r := 0; r < s.N(); r++ {
				if topo.ZoneOf(r) == 0 {
					weight += s.Load(r)
				}
			}
		}
		res, err := dynamic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Recoveries) != 1 {
			t.Fatalf("want one episode, got %+v", res.Recoveries)
		}
		return weight, res.Recoveries[0].EvacWeight
	}
	local, evacW := zone0At100(&Locality{Topo: topo})
	if evacW <= 0 {
		t.Fatal("the dead rack held no weight — workload too thin for the test")
	}
	uniform, _ := zone0At100(dynamic.UniformRehome{})
	if local <= uniform {
		t.Fatalf("locality kept %v weight in the victim's zone, uniform kept %v — locality is not keeping work local",
			local, uniform)
	}
}

// TestPolicyPropertyNoDownTargets drives randomized churn-heavy
// configurations through every policy with invariant checking on. The
// engine enforces the two safety properties each round — a policy pick
// must be an up resource (panic otherwise) and no down resource may
// hold a task at a round boundary (CheckInvariants error) — so an
// error-free run IS the property.
func TestPolicyPropertyNoDownTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised engine runs take a few seconds")
	}
	r := rng.NewSeeded(0xD15A57E5)
	for trial := 0; trial < 6; trial++ {
		racks := 2 + r.Intn(6)
		n := racks * (8 + r.Intn(10))
		zones := 1 + r.Intn(racks)
		topo, err := Synth(n, racks, zones)
		if err != nil {
			t.Fatal(err)
		}
		// A repeating rack massacre plus heavy stochastic churn.
		rack := r.Intn(racks)
		events := []dynamic.ChurnEvent{
			{Round: 10 + r.Intn(10), Every: 40, DownList: topo.RackList(rack, nil)},
			{Round: 30 + r.Intn(10), Every: 40, UpList: topo.RackList(rack, nil)},
		}
		for _, pol := range rehomePolicies(topo) {
			cfg := recoverConfig(topo, events, r.Uint64(), 1+r.Intn(4), pol.mk())
			cfg.Churn.LeaveProb = 0.4 * r.Float64()
			cfg.Churn.JoinProb = 0.4 * r.Float64()
			cfg.Rounds = 120
			cfg.CheckInvariants = true
			res, err := dynamic.Run(cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.name, err)
			}
			if res.Downs == 0 || res.Rehomed == 0 {
				t.Fatalf("trial %d %s: churn never exercised evacuation", trial, pol.name)
			}
		}
	}
}

// TestTopologyAwareSteadyStateZeroAllocs extends the engine's headline
// allocation budget to the topology-aware recovery path: a fleet under
// periodic whole-rack losses with the Locality policy (per-domain list
// maintenance, observer callbacks, episode tracking) must still run
// steady-state rounds without allocating, sequentially and sharded.
func TestTopologyAwareSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrating benchmark runs take ~1s each")
	}
	if raceEnabled {
		t.Skip("race instrumentation shrinks the calibrated iteration count, so one-time construction no longer amortises below 1 alloc/op")
	}
	topo, err := Synth(256, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rack0 := topo.RackList(0, nil)
	events := []dynamic.ChurnEvent{
		{Round: 10, Every: 40, DownList: rack0},
		{Round: 30, Every: 40, UpList: rack0},
	}
	for _, workers := range []int{1, 2} {
		res := testing.Benchmark(func(b *testing.B) {
			cfg := recoverConfig(topo, events, 0x5eed, workers, &Locality{Topo: topo})
			cfg.Rounds = b.N
			cfg.Window = 1 << 30
			b.ReportAllocs()
			if _, err := dynamic.Run(cfg); err != nil {
				b.Fatal(err)
			}
		})
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Fatalf("workers=%d: topology-aware steady state allocates %d times/op (%d B/op), want 0",
				workers, allocs, res.AllocedBytesPerOp())
		}
	}
}
