package recovery

import (
	"os"
	"strings"
	"testing"
)

// TestSynth pins the synthetic topology: full coverage, contiguous
// equal-ish racks, rack→zone grouping, and member-list consistency.
func TestSynth(t *testing.T) {
	topo, err := Synth(100, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 100 || topo.Racks() != 8 || topo.Zones() != 2 {
		t.Fatalf("shape: n=%d racks=%d zones=%d", topo.N(), topo.Racks(), topo.Zones())
	}
	seen := 0
	for k := 0; k < topo.Racks(); k++ {
		members := topo.RackMembers(k)
		if len(members) < 100/8 || len(members) > 100/8+1 {
			t.Fatalf("rack %d has %d members", k, len(members))
		}
		for _, r := range members {
			if topo.RackOf(int(r)) != k {
				t.Fatalf("resource %d in rack %d's member list but RackOf = %d", r, k, topo.RackOf(int(r)))
			}
			if topo.ZoneOf(int(r)) != topo.ZoneOfRack(k) {
				t.Fatalf("resource %d zone mismatch", r)
			}
			seen++
		}
	}
	if seen != 100 {
		t.Fatalf("rack members cover %d of 100 resources", seen)
	}
	zoneTotal := 0
	for z := 0; z < topo.Zones(); z++ {
		zoneTotal += len(topo.ZoneMembers(z))
	}
	if zoneTotal != 100 {
		t.Fatalf("zone members cover %d of 100 resources", zoneTotal)
	}
	if list := topo.RackList(3, nil); len(list) != len(topo.RackMembers(3)) {
		t.Fatalf("RackList length %d != members %d", len(list), len(topo.RackMembers(3)))
	}
	for _, bad := range []struct{ n, racks, zones int }{
		{0, 1, 1}, {10, 0, 1}, {10, 11, 1}, {10, 4, 0}, {10, 4, 5},
	} {
		if _, err := Synth(bad.n, bad.racks, bad.zones); err == nil {
			t.Fatalf("Synth(%+v) accepted", bad)
		}
	}
}

// TestClusterGraph pins the topology-mirroring generator: connected,
// right order, deterministic per seed.
func TestClusterGraph(t *testing.T) {
	topo, err := Synth(120, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.ClusterGraph(4, 2, 7)
	if g.N() != 120 {
		t.Fatalf("cluster graph has %d vertices", g.N())
	}
	if !g.Connected() {
		t.Fatal("cluster graph disconnected")
	}
	h := topo.ClusterGraph(4, 2, 7)
	if g.M() != h.M() {
		t.Fatalf("same seed, different graphs: %d vs %d edges", g.M(), h.M())
	}
}

// TestReadTopologyCSV pins the CSV loader: happy path plus every
// validation family — duplicate resource, out-of-range index, rack
// reassigned across zones, rack/zone name collision (the cycle-free
// check), unassigned resources — with line numbers.
func TestReadTopologyCSV(t *testing.T) {
	topo, err := ReadTopologyCSV(strings.NewReader(
		"resource,rack,zone\n# inventory\n0,r0,za\n1,r0,za\n2,r1,za\n3,r2,zb\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Racks() != 3 || topo.Zones() != 2 {
		t.Fatalf("shape: racks=%d zones=%d", topo.Racks(), topo.Zones())
	}
	if topo.RackOf(1) != topo.RackOf(0) || topo.ZoneOf(3) == topo.ZoneOf(0) {
		t.Fatal("assignments wrong")
	}
	if topo.RackName(topo.RackOf(3)) != "r2" || topo.ZoneName(topo.ZoneOf(3)) != "zb" {
		t.Fatal("names wrong")
	}
	cases := []struct{ name, in, want string }{
		{"dup", "0,r0,za\n0,r1,za\n", "line 2: duplicate record for resource 0"},
		{"range", "9,r0,za\n", "out of range"},
		{"bad-int", "x,r0,za\n", "bad resource"},
		{"reassigned", "0,r0,za\n1,r0,zb\n", `rack "r0" reassigned from zone "za" to "zb"`},
		{"cycle", "0,a,b\n1,b,a\n", `name "b" used as both a rack and a zone`},
		{"self-cycle", "0,a,a\n", `name "a" used as both a rack and a zone`},
		{"unassigned", "0,r0,za\n", "resource 1 has no rack assignment"},
		{"empty-name", "0,,za\n", "non-empty"},
	}
	for _, tc := range cases {
		if _, err := ReadTopologyCSV(strings.NewReader(tc.in), 2); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestReadTopologyJSONL pins the JSONL loader's two record kinds,
// forward references, and its extra error family: unknown rack,
// ambiguous records, trailing data.
func TestReadTopologyJSONL(t *testing.T) {
	topo, err := ReadTopologyJSONL(strings.NewReader(
		"# fleet\n"+
			`{"resource":0,"rack":"r0"}`+"\n"+ // forward reference
			`{"rack":"r0","zone":"za"}`+"\n"+
			`{"rack":"r1","zone":"zb"}`+"\n"+
			`{"resource":1,"rack":"r1"}`+"\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Racks() != 2 || topo.Zones() != 2 || topo.RackOf(0) == topo.RackOf(1) {
		t.Fatal("jsonl topology wrong")
	}
	cases := []struct{ name, in, want string }{
		{"unknown-rack", `{"rack":"r0","zone":"za"}` + "\n" + `{"resource":0,"rack":"ghost"}` + "\n" + `{"resource":1,"rack":"r0"}`,
			`line 2: resource 0 assigned to unknown rack "ghost"`},
		{"ambiguous", `{"resource":0,"rack":"r0","zone":"za"}`, "both \"resource\" and \"zone\""},
		{"no-rack", `{"resource":0}`, "must carry \"rack\""},
		{"bare-rack", `{"rack":"r0"}`, "must carry \"zone\""},
		{"cycle", `{"rack":"a","zone":"b"}` + "\n" + `{"rack":"b","zone":"a"}`,
			"used as both a rack and a zone"},
		{"trailing", `{"rack":"a","zone":"b"}{"rack":"c","zone":"b"}`, "trailing data"},
		{"garbage", "{", "unexpected EOF"},
	}
	for _, tc := range cases {
		if _, err := ReadTopologyJSONL(strings.NewReader(tc.in), 2); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadTopologyFile pins extension routing.
func TestLoadTopologyFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := dir + "/fleet.csv"
	if err := os.WriteFile(csvPath, []byte("0,r0,za\n1,r0,za\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopologyFile(csvPath, 2)
	if err != nil || topo.Racks() != 1 {
		t.Fatalf("csv load: %v", err)
	}
	jsonPath := dir + "/fleet.jsonl"
	body := `{"rack":"r0","zone":"za"}` + "\n" + `{"resource":0,"rack":"r0"}` + "\n" + `{"resource":1,"rack":"r0"}` + "\n"
	if err := os.WriteFile(jsonPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopologyFile(jsonPath, 2); err != nil {
		t.Fatalf("jsonl load: %v", err)
	}
	if _, err := LoadTopologyFile(dir+"/fleet.txt", 2); err == nil {
		t.Fatal("unknown extension accepted")
	}
}
