package recovery

import (
	"reflect"
	"testing"

	"repro/internal/dynamic"
)

// TestFailureModelValidate pins the parameter checks.
func TestFailureModelValidate(t *testing.T) {
	topo, _ := Synth(40, 4, 2)
	cases := []struct {
		name string
		m    FailureModel
		ok   bool
	}{
		{"no-topo", FailureModel{RackMTBF: 100, RackMTTR: 10}, false},
		{"nothing-enabled", FailureModel{Topo: topo}, false},
		{"rack-half-set", FailureModel{Topo: topo, RackMTBF: 100}, false},
		{"rack", FailureModel{Topo: topo, RackMTBF: 100, RackMTTR: 10}, true},
		{"resource", FailureModel{Topo: topo, ResourceMTBF: 50, ResourceMTTR: 5}, true},
		{"flap-no-times", FailureModel{Topo: topo, FlapResources: 3}, false},
		{"flap-too-many", FailureModel{Topo: topo, FlapResources: 99, FlapMTBF: 2, FlapMTTR: 2}, false},
		{"flap", FailureModel{Topo: topo, FlapResources: 3, FlapMTBF: 4, FlapMTTR: 2}, true},
		{"all", FailureModel{Topo: topo, RackMTBF: 100, RackMTTR: 10,
			ResourceMTBF: 50, ResourceMTTR: 5, FlapResources: 2, FlapMTBF: 4, FlapMTTR: 2}, true},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestCompileDeterministicAndValid is the compiler's core contract:
// the schedule is a pure function of (model, horizon, seed), passes
// the engine's config-time validation by construction, fires within
// the horizon, and every compiled event is a one-shot.
func TestCompileDeterministicAndValid(t *testing.T) {
	topo, err := Synth(80, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := FailureModel{
		Topo:     topo,
		RackMTBF: 120, RackMTTR: 30,
		ResourceMTBF: 200, ResourceMTTR: 20,
		FlapResources: 4, FlapMTBF: 15, FlapMTTR: 5,
	}
	for _, seed := range []uint64{1, 2, 3} {
		a, err := m.Compile(600, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Compile(600, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Compile is not deterministic", seed)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: compiled schedule is empty", seed)
		}
		if err := dynamic.ValidateEvents(a, 80, 600); err != nil {
			t.Fatalf("seed %d: compiled schedule fails validation: %v", seed, err)
		}
		lastRound := -1
		kills := 0
		for _, ev := range a {
			if ev.Every != 0 || ev.Down != 0 || ev.Up != 0 {
				t.Fatalf("seed %d: compiled event is not a pure one-shot list event: %+v", seed, ev)
			}
			if ev.Round < 0 || ev.Round >= 600 {
				t.Fatalf("seed %d: event outside horizon: %+v", seed, ev)
			}
			if ev.Round <= lastRound {
				t.Fatalf("seed %d: events not strictly ascending by round", seed)
			}
			lastRound = ev.Round
			kills += len(ev.DownList)
		}
		if kills == 0 {
			t.Fatalf("seed %d: schedule never kills anything", seed)
		}
	}
	c, err := m.Compile(600, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.Compile(600, 1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestCompileRackLossIsCorrelated pins the point of the model: a
// rack-only process kills whole racks — every DownList is exactly the
// up members of one rack (the first failure of each rack is its full
// member list).
func TestCompileRackLossIsCorrelated(t *testing.T) {
	topo, err := Synth(60, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := FailureModel{Topo: topo, RackMTBF: 50, RackMTTR: 10}
	events, err := m.Compile(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	sawKill := false
	for _, ev := range events {
		if len(ev.DownList) == 0 {
			continue
		}
		sawKill = true
		// All killed resources of one event must group into whole racks:
		// count per rack and compare against the rack's member count
		// minus members already down — the first event is the clean case.
		perRack := map[int]int{}
		for _, r := range ev.DownList {
			perRack[topo.RackOf(r)]++
		}
		for k, c := range perRack {
			if c > len(topo.RackMembers(k)) {
				t.Fatalf("event %+v kills more than rack %d holds", ev, k)
			}
		}
		if len(perRack) == 0 {
			t.Fatal("unreachable")
		}
	}
	if !sawKill {
		t.Fatal("no rack was ever killed")
	}
	// The first kill event must be one or more FULL racks (nothing was
	// down before it).
	for _, ev := range events {
		if len(ev.DownList) == 0 {
			continue
		}
		perRack := map[int]int{}
		for _, r := range ev.DownList {
			perRack[topo.RackOf(r)]++
		}
		for k, c := range perRack {
			if c != len(topo.RackMembers(k)) {
				t.Fatalf("first failure of rack %d kills %d of %d members", k, c, len(topo.RackMembers(k)))
			}
		}
		break
	}
}

// TestCompileRates sanity-checks the renewal processes: over a long
// horizon the number of rack failures lands within a loose factor of
// horizon/(MTBF+MTTR) per rack.
func TestCompileRates(t *testing.T) {
	topo, err := Synth(40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20_000
	m := FailureModel{Topo: topo, RackMTBF: 400, RackMTTR: 100}
	events, err := m.Compile(horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	for _, ev := range events {
		if len(ev.DownList) > 0 {
			kills++
		}
	}
	// 4 racks × horizon/(MTBF+MTTR) = 4 × 40 = 160 expected failure
	// events (some coincide in a round; the bound stays loose).
	if kills < 60 || kills > 400 {
		t.Fatalf("rack-loss events = %d, want within [60, 400] of the ~160 expectation", kills)
	}
}

// TestCompileThroughEngine replays a compiled correlated schedule
// through the full engine with a Locality policy: the run must
// complete with invariants on, see every scripted loss, and stay
// worker-count invariant.
func TestCompileThroughEngine(t *testing.T) {
	topo, err := Synth(64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := FailureModel{Topo: topo, RackMTBF: 60, RackMTTR: 15, FlapResources: 2, FlapMTBF: 10, FlapMTTR: 3}
	events, err := m.Compile(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	var ref dynamic.Result
	for _, workers := range []int{1, 4} {
		cfg := recoverConfig(topo, events, 11, workers, &Locality{Topo: topo})
		cfg.CheckInvariants = true
		res, err := dynamic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref = res
			if res.Downs == 0 || res.Rehomed == 0 {
				t.Fatalf("compiled schedule produced no churn: %+v", res)
			}
			if len(res.Recoveries) == 0 {
				t.Fatal("no recovery episodes recorded")
			}
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatal("compiled schedule run diverges across workers")
		}
	}
}
