package recovery

import (
	"errors"
	"fmt"

	"repro/internal/dynamic"
	"repro/internal/snapshot"
)

// Locality checkpoint support. The per-rack and per-zone up-member
// lists are maintained by swap-remove, so their ORDER is a function of
// the whole churn history — and Pick draws uniform indexes into them.
// Replaying ResetUp + the down set would rebuild the same membership
// in a different order and silently divert every subsequent pick, so
// the lists (and the position indexes that keep swap-remove O(1)) are
// serialized verbatim.

// EncodeSnapshot implements dynamic.SnapshotStater.
func (l *Locality) EncodeSnapshot(enc *snapshot.Encoder) {
	enc.Bool(l.rackUp != nil)
	if l.rackUp == nil {
		return
	}
	enc.Uint32(uint32(len(l.rackUp)))
	for k := range l.rackUp {
		enc.Int32s(l.rackUp[k])
	}
	enc.Uint32(uint32(len(l.zoneUp)))
	for z := range l.zoneUp {
		enc.Int32s(l.zoneUp[z])
	}
	enc.Int32s(l.posRack)
	enc.Int32s(l.posZone)
}

// DecodeSnapshot implements dynamic.SnapshotStater. The receiver must
// carry the same Topology as the checkpointed run; membership counts
// are validated against it before anything is overwritten.
func (l *Locality) DecodeSnapshot(sec *snapshot.Section) error {
	if l.Topo == nil {
		return errors.New("recovery: Locality snapshot restore needs a Topology")
	}
	inited := sec.Bool()
	if err := sec.Err(); err != nil {
		return err
	}
	if !inited {
		return nil
	}
	t := l.Topo
	if l.rackUp == nil {
		l.ResetUp(t.N())
	}
	nRacks := int(sec.Uint32())
	if sec.Err() == nil && nRacks != t.Racks() {
		return fmt.Errorf("recovery: snapshot covers %d racks, topology has %d", nRacks, t.Racks())
	}
	for k := 0; k < t.Racks() && sec.Err() == nil; k++ {
		l.rackUp[k] = sec.Int32s(l.rackUp[k])
	}
	nZones := int(sec.Uint32())
	if sec.Err() == nil && nZones != t.Zones() {
		return fmt.Errorf("recovery: snapshot covers %d zones, topology has %d", nZones, t.Zones())
	}
	for z := 0; z < t.Zones() && sec.Err() == nil; z++ {
		l.zoneUp[z] = sec.Int32s(l.zoneUp[z])
	}
	l.posRack = sec.Int32s(l.posRack)
	l.posZone = sec.Int32s(l.posZone)
	if err := sec.Err(); err != nil {
		return err
	}
	if len(l.posRack) != t.N() || len(l.posZone) != t.N() {
		return fmt.Errorf("recovery: snapshot position vectors cover %d/%d resources, topology has %d",
			len(l.posRack), len(l.posZone), t.N())
	}
	return nil
}

// Interface conformance, pinned at compile time.
var _ dynamic.SnapshotStater = (*Locality)(nil)
