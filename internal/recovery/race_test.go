//go:build race

package recovery

// raceEnabled reports that this test binary runs under the race
// detector: allocation budgets are skipped there (see
// internal/dynamic/race_test.go for the rationale); the budgets are
// enforced by the regular CI test job and the benchrec allocs gate.
const raceEnabled = true
