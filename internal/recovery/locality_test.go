package recovery

import (
	"testing"

	"repro/internal/dynamic"
	"repro/internal/rng"
)

// TestLocalityBookkeeping drives a random churn sequence through the
// observer callbacks and checks the incremental per-rack/per-zone up
// lists against a from-scratch recount after every transition.
func TestLocalityBookkeeping(t *testing.T) {
	topo, err := Synth(60, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := &Locality{Topo: topo}
	l.ResetUp(60)
	up := make([]bool, 60)
	for i := range up {
		up[i] = true
	}
	check := func(step int) {
		for k := 0; k < topo.Racks(); k++ {
			want := 0
			for _, r := range topo.RackMembers(k) {
				if up[r] {
					want++
				}
			}
			if got := len(l.rackUp[k]); got != want {
				t.Fatalf("step %d: rack %d up list has %d entries, want %d", step, k, got, want)
			}
			for _, r := range l.rackUp[k] {
				if !up[r] {
					t.Fatalf("step %d: down resource %d in rack %d's up list", step, r, k)
				}
				if l.posRack[r] < 0 || l.rackUp[k][l.posRack[r]] != r {
					t.Fatalf("step %d: posRack inconsistent for %d", step, r)
				}
			}
		}
		for z := 0; z < topo.Zones(); z++ {
			want := 0
			for _, r := range topo.ZoneMembers(z) {
				if up[r] {
					want++
				}
			}
			if got := len(l.zoneUp[z]); got != want {
				t.Fatalf("step %d: zone %d up list has %d entries, want %d", step, z, got, want)
			}
		}
	}
	r := rng.NewSeeded(99)
	for step := 0; step < 2000; step++ {
		res := r.Intn(60)
		if up[res] {
			l.ResourceDown(res)
			up[res] = false
		} else {
			l.ResourceUp(res)
			up[res] = true
		}
		check(step)
	}
	// ResetUp restores the all-up state, including after heavy churn.
	l.ResetUp(60)
	for i := range up {
		up[i] = true
	}
	check(-1)
}

// TestLocalityPickTiers pins the three fallback tiers directly: with
// rack-mates up the pick stays in the rack; with the rack dead it
// stays in the zone; with the zone dead it goes anywhere up.
func TestLocalityPickTiers(t *testing.T) {
	topo, err := Synth(40, 4, 2) // racks of 10, zones of 2 racks
	if err != nil {
		t.Fatal(err)
	}
	l := &Locality{Topo: topo}
	l.ResetUp(40)
	up := dynamic.NewUpSet(40)
	r := rng.NewSeeded(5)

	down := func(res int) { up.Down(res); l.ResourceDown(res) }

	// Tier 1: resource 0 fails; picks for its evacuees stay in rack 0.
	down(0)
	for i := 0; i < 200; i++ {
		dest := l.Pick(nil, up, nil, 0, 1, r)
		if topo.RackOf(dest) != 0 || dest == 0 {
			t.Fatalf("rack-tier pick %d outside rack 0 (or the dead machine)", dest)
		}
	}
	// Tier 2: the whole rack 0 dies; picks fall to zone 0 = racks {0,1}.
	for res := 1; res < 10; res++ {
		down(res)
	}
	for i := 0; i < 200; i++ {
		dest := l.Pick(nil, up, nil, 0, 1, r)
		if topo.ZoneOf(dest) != 0 || topo.RackOf(dest) == 0 {
			t.Fatalf("zone-tier pick %d not in zone 0's surviving racks", dest)
		}
	}
	// Tier 3: the whole zone 0 (racks 0 and 1) dies; picks go anywhere
	// up, i.e. zone 1.
	for res := 10; res < 20; res++ {
		down(res)
	}
	for i := 0; i < 200; i++ {
		dest := l.Pick(nil, up, nil, 0, 1, r)
		if topo.ZoneOf(dest) != 1 {
			t.Fatalf("fallback pick %d not in the surviving zone", dest)
		}
		if !up.Contains(dest) {
			t.Fatalf("fallback pick %d is down", dest)
		}
	}
}

// TestLocalityResetMismatch pins the guard rails: a topology that does
// not cover the run's resources must fail loudly.
func TestLocalityResetMismatch(t *testing.T) {
	topo, err := Synth(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := &Locality{Topo: topo}
	defer func() {
		if recover() == nil {
			t.Fatal("ResetUp accepted a mismatched resource count")
		}
	}()
	l.ResetUp(12)
}

// TestLocalityValidate pins the config checks, including the
// size-aware one the engine runs at validate() time: a mismatched
// topology is a config error, not a mid-run panic.
func TestLocalityValidate(t *testing.T) {
	if err := (&Locality{}).Validate(); err == nil {
		t.Fatal("Locality without a topology validated")
	}
	topo, _ := Synth(4, 2, 1)
	if err := (&Locality{Topo: topo}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Locality{Topo: topo}).ValidateFor(4); err != nil {
		t.Fatal(err)
	}
	if err := (&Locality{Topo: topo}).ValidateFor(6); err == nil {
		t.Fatal("mismatched topology size validated")
	}
	// End to end: the engine rejects the mismatch before running.
	events := []dynamic.ChurnEvent{{Round: 5, DownList: []int{0}}}
	big, _ := Synth(8, 2, 1)
	cfg := recoverConfig(big, events, 1, 1, &Locality{Topo: topo})
	if _, err := dynamic.Run(cfg); err == nil {
		t.Fatal("engine ran with a mismatched Locality topology")
	}
}
