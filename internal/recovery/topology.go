// Package recovery is the failure-domain and recovery-policy subsystem
// of the open-system engine: it models WHERE failures happen and WHERE
// displaced work should go.
//
// The paper's protocols are analysed on static resource sets, and the
// engine's churn so far failed machines independently and re-homed
// their tasks uniformly at random. Real fleets fail in correlated
// units — a rack loses power, a zone loses network — and the recovery
// literature (Hoefer–Sauerwald's network threshold games, Adolphs–
// Berenbrink's speed-aware selfish balancing) says the post-failure
// transient depends on where the displaced users can go. This package
// supplies the three missing pieces:
//
//   - Topology: a resource → rack → zone hierarchy, synthesisable or
//     loaded from CSV/JSONL fleet inventories,
//   - FailureModel: stochastic per-domain failure/repair processes
//     (rack MTBF/MTTR, machine-level churn, flapping) that COMPILE to
//     the engine's scripted ChurnSpec.Events stream, so a correlated
//     failure trace replays bit-for-bit for any worker count,
//   - Locality: a topology-aware re-home policy (same rack, then same
//     zone, then anywhere) that plugs into the engine's sharded
//     evacuation path next to the load-aware and speed-aware policies
//     in internal/dynamic.
package recovery

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Topology is an immutable two-level failure-domain hierarchy over
// resources 0..N−1: every resource belongs to exactly one rack, every
// rack to exactly one zone. Build one with Synth or the CSV/JSONL
// loaders.
type Topology struct {
	rackOf      []int32   // resource → rack
	zoneOfRack  []int32   // rack → zone
	rackMembers [][]int32 // rack → member resources, ascending
	zoneMembers [][]int32 // zone → member resources, ascending
	rackNames   []string
	zoneNames   []string
}

// newTopology assembles the derived member lists from the primary
// assignments. rackOf must be fully assigned and in range.
func newTopology(rackOf, zoneOfRack []int32, rackNames, zoneNames []string) *Topology {
	t := &Topology{
		rackOf:      rackOf,
		zoneOfRack:  zoneOfRack,
		rackMembers: make([][]int32, len(zoneOfRack)),
		zoneMembers: make([][]int32, len(zoneNames)),
		rackNames:   rackNames,
		zoneNames:   zoneNames,
	}
	for r, k := range rackOf {
		t.rackMembers[k] = append(t.rackMembers[k], int32(r))
		t.zoneMembers[zoneOfRack[k]] = append(t.zoneMembers[zoneOfRack[k]], int32(r))
	}
	return t
}

// Synth builds a synthetic topology: n resources split into `racks`
// contiguous equal-ish blocks, and the racks split into `zones`
// contiguous groups — the standard test-bed fleet (rack k is resources
// [k·n/racks, (k+1)·n/racks)).
func Synth(n, racks, zones int) (*Topology, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("recovery: Synth needs n > 0, got %d", n)
	case racks < 1 || racks > n:
		return nil, fmt.Errorf("recovery: Synth needs 1 <= racks <= n, got racks=%d n=%d", racks, n)
	case zones < 1 || zones > racks:
		return nil, fmt.Errorf("recovery: Synth needs 1 <= zones <= racks, got zones=%d racks=%d", zones, racks)
	}
	rackOf := make([]int32, n)
	for r := 0; r < n; r++ {
		rackOf[r] = int32(r * racks / n)
	}
	zoneOfRack := make([]int32, racks)
	rackNames := make([]string, racks)
	for k := 0; k < racks; k++ {
		zoneOfRack[k] = int32(k * zones / racks)
		rackNames[k] = fmt.Sprintf("rack%d", k)
	}
	zoneNames := make([]string, zones)
	for z := 0; z < zones; z++ {
		zoneNames[z] = fmt.Sprintf("zone%d", z)
	}
	return newTopology(rackOf, zoneOfRack, rackNames, zoneNames), nil
}

// N returns the number of resources.
func (t *Topology) N() int { return len(t.rackOf) }

// Racks returns the number of racks.
func (t *Topology) Racks() int { return len(t.zoneOfRack) }

// Zones returns the number of zones.
func (t *Topology) Zones() int { return len(t.zoneNames) }

// RackOf returns the rack index of resource r.
func (t *Topology) RackOf(r int) int { return int(t.rackOf[r]) }

// ZoneOf returns the zone index of resource r.
func (t *Topology) ZoneOf(r int) int { return int(t.zoneOfRack[t.rackOf[r]]) }

// ZoneOfRack returns the zone index of rack k.
func (t *Topology) ZoneOfRack(k int) int { return int(t.zoneOfRack[k]) }

// RackMembers returns rack k's member resources in ascending order
// (read-only use expected).
func (t *Topology) RackMembers(k int) []int32 { return t.rackMembers[k] }

// ZoneMembers returns zone z's member resources in ascending order
// (read-only use expected).
func (t *Topology) ZoneMembers(z int) []int32 { return t.zoneMembers[z] }

// RackName returns rack k's human-readable name.
func (t *Topology) RackName(k int) string { return t.rackNames[k] }

// ZoneName returns zone z's human-readable name.
func (t *Topology) ZoneName(z int) string { return t.zoneNames[z] }

// ObsDomains converts the topology into the observability layer's
// per-level domain labellings — level "rack" first, then level "zone"
// — so a dynamic run streams one DomainWindowStats event per rack and
// per zone per metrics window (dynamic.Config.Domains). The label
// slices alias the topology's immutable internals.
func (t *Topology) ObsDomains() []obs.Domains {
	zoneOf := make([]int32, t.N())
	for r := range zoneOf {
		zoneOf[r] = t.zoneOfRack[t.rackOf[r]]
	}
	return []obs.Domains{
		{Level: "rack", Of: t.rackOf, Names: t.rackNames},
		{Level: "zone", Of: zoneOf, Names: t.zoneNames},
	}
}

// RackList returns rack k's members as ints, appended to dst — the
// form ChurnEvent.DownList wants, so "kill rack k at round T" is one
// call.
func (t *Topology) RackList(k int, dst []int) []int {
	for _, r := range t.rackMembers[k] {
		dst = append(dst, int(r))
	}
	return dst
}

// ZoneList returns zone z's members as ints, appended to dst — the
// zone-level sibling of RackList, so "partition zone z" or "kill zone
// z at round T" is one call.
func (t *Topology) ZoneList(z int, dst []int) []int {
	for _, r := range t.zoneMembers[z] {
		dst = append(dst, int(r))
	}
	return dst
}

// Resolve maps a rack or zone name to its member resources — the
// failure-domain name resolver the fault-plan loaders accept
// (faults.MemberResolver), so partition directives can say "rack3" or
// "zone1" instead of index ranges. Racks are checked before zones;
// the loaders reject topologies only if a queried name is unknown.
func (t *Topology) Resolve(name string) ([]int, bool) {
	for k, rn := range t.rackNames {
		if rn == name {
			return t.RackList(k, nil), true
		}
	}
	for z, zn := range t.zoneNames {
		if zn == name {
			return t.ZoneList(z, nil), true
		}
	}
	return nil, false
}

// ClusterGraph builds a communication graph that mirrors the failure
// domains, reusing the internal/graph generators' CSR machinery: every
// resource links to up to intraDeg random rack-mates (dense local
// connectivity) and interDeg random resources outside its rack (the
// cross-rack backbone diffusion and the graph-restricted protocols
// travel over). The construction retries until connected; it is a
// deterministic function of (topology, degrees, seed).
func (t *Topology) ClusterGraph(intraDeg, interDeg int, seed uint64) *graph.Graph {
	n := t.N()
	if intraDeg < 0 || interDeg < 0 {
		panic("recovery: ClusterGraph degrees must be non-negative")
	}
	r := rng.NewSeeded(seed)
	name := fmt.Sprintf("cluster(n=%d,racks=%d,intra=%d,inter=%d)", n, t.Racks(), intraDeg, interDeg)
	return graph.GenerateConnected(100, func() *graph.Graph {
		var edges [][2]int
		for v := 0; v < n; v++ {
			mates := t.rackMembers[t.rackOf[v]]
			for d := 0; d < intraDeg && len(mates) > 1; d++ {
				u := int(mates[r.Intn(len(mates))])
				if u != v {
					edges = append(edges, [2]int{v, u})
				}
			}
			for d := 0; d < interDeg && len(mates) < n; d++ {
				u := r.Intn(n)
				if t.rackOf[u] != t.rackOf[v] {
					edges = append(edges, [2]int{v, u})
				}
			}
		}
		return graph.Build(name, n, edges)
	})
}
