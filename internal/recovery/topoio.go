package recovery

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dynamic"
)

// Topology ingestion: fleet inventories are described by per-resource
// failure-domain records, mirroring the engine's trace and speed
// formats —
//
//	CSV:   resource,rack,zone    (optional "resource,rack,zone" header,
//	                              '#' comment lines allowed; each row
//	                              assigns one resource and implicitly
//	                              defines its rack's zone)
//	JSONL: {"rack":"r1","zone":"z1"}      defines rack r1 in zone z1
//	       {"resource":0,"rack":"r1"}     assigns resource 0 to rack r1
//	                                      (definitions may appear after
//	                                      the assignments that use them)
//
// The loaders validate the hierarchy up front, with line numbers in
// every error, so a broken inventory fails at load time instead of
// mid-run: every resource index must lie in [0, n) and appear exactly
// once, every rack an assignment names must be defined (JSONL),
// re-defining a rack into a different zone is an error, and the
// rack/zone namespaces must be disjoint — a name used both as a rack
// and as a zone would let resource → rack → zone chains cycle, so the
// builder rejects it (the cycle-free check). Unassigned resources are
// an error: a failure model must know every machine's blast radius.

// topoBuilder accumulates and validates loader records.
type topoBuilder struct {
	n          int
	rackIdx    map[string]int
	zoneIdx    map[string]int
	isZone     map[string]bool // names used as zones (cycle check)
	zoneOfRack []int32
	rackNames  []string
	zoneNames  []string
	assignRack []string // rack name per resource ("" = unassigned), resolved at finish
	assignLine []int    // line each resource was assigned on
}

func newTopoBuilder(n int) *topoBuilder {
	return &topoBuilder{
		n:          n,
		rackIdx:    map[string]int{},
		zoneIdx:    map[string]int{},
		isZone:     map[string]bool{},
		assignRack: make([]string, n),
		assignLine: make([]int, n),
	}
}

// defineRack records rack → zone. Re-definition into the same zone is
// idempotent (the CSV format repeats it on every row); a different
// zone, or a name crossing the rack/zone namespaces, is an error.
func (b *topoBuilder) defineRack(rack, zone string) error {
	if rack == "" || zone == "" {
		return fmt.Errorf("rack and zone names must be non-empty")
	}
	if rack == zone {
		return fmt.Errorf("name %q used as both a rack and a zone: the rack→zone hierarchy must be cycle-free", rack)
	}
	if b.isZone[rack] {
		return fmt.Errorf("name %q used as both a rack and a zone: the rack→zone hierarchy must be cycle-free", rack)
	}
	if _, clash := b.rackIdx[zone]; clash {
		return fmt.Errorf("name %q used as both a rack and a zone: the rack→zone hierarchy must be cycle-free", zone)
	}
	zi, ok := b.zoneIdx[zone]
	if !ok {
		zi = len(b.zoneNames)
		b.zoneIdx[zone] = zi
		b.zoneNames = append(b.zoneNames, zone)
		b.isZone[zone] = true
	}
	if ri, ok := b.rackIdx[rack]; ok {
		if b.zoneOfRack[ri] != int32(zi) {
			return fmt.Errorf("rack %q reassigned from zone %q to %q",
				rack, b.zoneNames[b.zoneOfRack[ri]], zone)
		}
		return nil
	}
	b.rackIdx[rack] = len(b.rackNames)
	b.rackNames = append(b.rackNames, rack)
	b.zoneOfRack = append(b.zoneOfRack, int32(zi))
	return nil
}

// assignResource records resource → rack by name; the rack may be
// defined later in the file (JSONL), so resolution happens in finish.
func (b *topoBuilder) assignResource(resource int, rack string, line int) error {
	if resource < 0 || resource >= b.n {
		return fmt.Errorf("resource %d out of range [0, %d)", resource, b.n)
	}
	if rack == "" {
		return fmt.Errorf("rack name must be non-empty")
	}
	if b.assignRack[resource] != "" {
		return fmt.Errorf("duplicate record for resource %d (first assigned on line %d)",
			resource, b.assignLine[resource])
	}
	b.assignRack[resource] = rack
	b.assignLine[resource] = line
	return nil
}

// finish resolves rack names and builds the Topology.
func (b *topoBuilder) finish() (*Topology, error) {
	rackOf := make([]int32, b.n)
	for r := 0; r < b.n; r++ {
		name := b.assignRack[r]
		if name == "" {
			return nil, fmt.Errorf("resource %d has no rack assignment", r)
		}
		ri, ok := b.rackIdx[name]
		if !ok {
			return nil, fmt.Errorf("line %d: resource %d assigned to unknown rack %q",
				b.assignLine[r], r, name)
		}
		rackOf[r] = int32(ri)
	}
	return newTopology(rackOf, b.zoneOfRack, b.rackNames, b.zoneNames), nil
}

// ReadTopologyCSV parses resource,rack,zone records from r into a
// Topology over n resources.
func ReadTopologyCSV(r io.Reader, n int) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("recovery: topology csv: need a positive resource count, got %d", n)
	}
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	b := newTopoBuilder(n)
	first := true
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("recovery: topology csv: %w", err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(fields[0]), "resource") {
				continue // header row
			}
		}
		line, _ := cr.FieldPos(0)
		resource, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("recovery: topology csv line %d: bad resource %q", line, fields[0])
		}
		rack := strings.TrimSpace(fields[1])
		zone := strings.TrimSpace(fields[2])
		if err := b.defineRack(rack, zone); err != nil {
			return nil, fmt.Errorf("recovery: topology csv line %d: %w", line, err)
		}
		if err := b.assignResource(resource, rack, line); err != nil {
			return nil, fmt.Errorf("recovery: topology csv line %d: %w", line, err)
		}
	}
	t, err := b.finish()
	if err != nil {
		return nil, fmt.Errorf("recovery: topology csv: %w", err)
	}
	return t, nil
}

// topoRecord is one parsed JSONL line: either a rack definition
// (rack+zone) or a resource assignment (resource+rack). Pointer fields
// make omitted keys detectable.
type topoRecord struct {
	Resource *int    `json:"resource"`
	Rack     *string `json:"rack"`
	Zone     *string `json:"zone"`
}

// ReadTopologyJSONL parses one rack-definition or resource-assignment
// object per line into a Topology over n resources.
func ReadTopologyJSONL(r io.Reader, n int) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("recovery: topology jsonl: need a positive resource count, got %d", n)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	b := newTopoBuilder(n)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec topoRecord
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("recovery: topology jsonl line %d: %w", line, err)
		}
		if err := dynamic.OneValuePerLine(dec); err != nil {
			return nil, fmt.Errorf("recovery: topology jsonl line %d: %w", line, err)
		}
		switch {
		case rec.Rack == nil:
			return nil, fmt.Errorf("recovery: topology jsonl line %d: record must carry \"rack\"", line)
		case rec.Resource != nil && rec.Zone != nil:
			return nil, fmt.Errorf("recovery: topology jsonl line %d: record carries both \"resource\" and \"zone\" — use one rack-definition line and one assignment line", line)
		case rec.Zone != nil:
			if err := b.defineRack(*rec.Rack, *rec.Zone); err != nil {
				return nil, fmt.Errorf("recovery: topology jsonl line %d: %w", line, err)
			}
		case rec.Resource != nil:
			if err := b.assignResource(*rec.Resource, *rec.Rack, line); err != nil {
				return nil, fmt.Errorf("recovery: topology jsonl line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("recovery: topology jsonl line %d: record must carry \"zone\" (rack definition) or \"resource\" (assignment)", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("recovery: topology jsonl: %w", err)
	}
	t, err := b.finish()
	if err != nil {
		return nil, fmt.Errorf("recovery: topology jsonl: %w", err)
	}
	return t, nil
}

// LoadTopologyFile reads an n-resource topology from path, picking the
// format by extension: .csv → CSV, .jsonl/.ndjson/.json → JSONL.
func LoadTopologyFile(path string, n int) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("recovery: topology: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadTopologyCSV(f, n)
	case ".jsonl", ".ndjson", ".json":
		return ReadTopologyJSONL(f, n)
	default:
		return nil, fmt.Errorf("recovery: topology %s: unknown extension %q (want .csv, .jsonl, .ndjson or .json)", path, ext)
	}
}
