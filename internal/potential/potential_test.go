package potential

import (
	"math"
	"testing"
)

func TestNonIncreasing(t *testing.T) {
	ok, v := NonIncreasing([]float64{5, 4, 4, 2, 0}, 0)
	if !ok || v != -1 {
		t.Fatalf("ok=%v v=%d", ok, v)
	}
	ok, v = NonIncreasing([]float64{5, 4, 4.5, 2}, 0)
	if ok || v != 2 {
		t.Fatalf("ok=%v v=%d want violation at 2", ok, v)
	}
	// Tolerance absorbs small increases.
	ok, _ = NonIncreasing([]float64{5, 5.0000001}, 1e-3)
	if !ok {
		t.Fatal("tolerance not applied")
	}
	ok, _ = NonIncreasing(nil, 0)
	if !ok {
		t.Fatal("empty trace is vacuously non-increasing")
	}
}

func TestTimeToZero(t *testing.T) {
	if got := TimeToZero([]float64{3, 1, 0, 0}); got != 2 {
		t.Fatalf("got %d", got)
	}
	if got := TimeToZero([]float64{3, 1}); got != -1 {
		t.Fatalf("got %d", got)
	}
	if got := TimeToZero([]float64{0}); got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestDropRatios(t *testing.T) {
	got := DropRatios([]float64{8, 4, 2, 0, 0})
	want := []float64{0.5, 0.5, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestPhaseDropRatios(t *testing.T) {
	// Trace halves every 2 steps: phase=2 ratios all 0.5.
	trace := []float64{16, 12, 8, 6, 4, 3, 2}
	got := PhaseDropRatios(trace, 2)
	for _, r := range got {
		if math.Abs(r-0.5) > 1e-12 {
			t.Fatalf("ratios %v", got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("%d ratios", len(got))
	}
}

func TestPhaseDropRatiosTruncatedTail(t *testing.T) {
	// Length 6 with phase 4: one full phase (0→4) plus truncated 4→5.
	trace := []float64{16, 8, 4, 2, 1, 0.5}
	got := PhaseDropRatios(trace, 4)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if math.Abs(got[0]-1.0/16) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestPhaseDropPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PhaseDropRatios([]float64{1}, 0)
}

func TestGeometricDecayRate(t *testing.T) {
	// Φ(t) = 100·(0.8)^t.
	trace := make([]float64, 30)
	for i := range trace {
		trace[i] = 100 * math.Pow(0.8, float64(i))
	}
	factor, r2 := GeometricDecayRate(trace)
	if math.Abs(factor-0.8) > 1e-9 || r2 < 0.999 {
		t.Fatalf("factor=%v r2=%v", factor, r2)
	}
}

func TestGeometricDecayDegenerate(t *testing.T) {
	if f, r2 := GeometricDecayRate([]float64{5}); f != 1 || r2 != 0 {
		t.Fatalf("single point: %v %v", f, r2)
	}
	if f, _ := GeometricDecayRate([]float64{0, 0}); f != 1 {
		t.Fatalf("zero trace: %v", f)
	}
}

func TestMeanDrop(t *testing.T) {
	traces := [][]float64{
		{10, 5, 0}, // drops 0.5, 1.0
		{4, 3},     // drop 0.25
		{0, 0},     // no valid transitions
	}
	got := MeanDrop(traces)
	want := (0.5 + 1.0 + 0.25) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean drop=%v want %v", got, want)
	}
}
