// Package potential analyses potential-function traces Φ(0), Φ(1), …
// produced by protocol runs.
//
// The paper's analysis rests on two facts about
// Φ(t) = Σ_{i ∈ Ia(t) ∪ Ic(t)} w_i:
//
//   - Observation 4: under the resource-controlled protocol the
//     potential never increases.
//   - Lemma 5 / Lemma 10: per phase (resp. per round) the potential
//     drops by a constant factor in expectation, which the drift
//     theorem turns into the O(log) balancing-time bounds.
//
// This package provides the checkers and estimators that validate both
// facts empirically (experiment E8).
package potential

import (
	"math"

	"repro/internal/stats"
)

// NonIncreasing reports whether trace is non-increasing up to tol, and
// if not, the first violating index i (trace[i] > trace[i-1] + tol).
func NonIncreasing(trace []float64, tol float64) (ok bool, violation int) {
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1]+tol {
			return false, i
		}
	}
	return true, -1
}

// TimeToZero returns the first index at which the trace reaches zero,
// or -1 if it never does.
func TimeToZero(trace []float64) int {
	for i, v := range trace {
		if v == 0 {
			return i
		}
	}
	return -1
}

// DropRatios returns the per-step ratios Φ(t+1)/Φ(t) for all t with
// Φ(t) > 0. A geometric decay with rate 1−δ shows up as ratios
// concentrated near 1−δ.
func DropRatios(trace []float64) []float64 {
	var out []float64
	for i := 1; i < len(trace); i++ {
		if trace[i-1] > 0 {
			out = append(out, trace[i]/trace[i-1])
		}
	}
	return out
}

// PhaseDropRatios returns Φ(t+phase)/Φ(t) sampled at phase boundaries
// t = 0, phase, 2·phase, …, for all boundaries with Φ(t) > 0. Lemma 5
// predicts a mean of at most 3/4 for phase = 2·H(G) under the
// resource-controlled tight-threshold protocol.
func PhaseDropRatios(trace []float64, phase int) []float64 {
	if phase <= 0 {
		panic("potential: phase must be positive")
	}
	var out []float64
	for t := 0; t+phase < len(trace); t += phase {
		if trace[t] > 0 {
			out = append(out, trace[t+phase]/trace[t])
		}
	}
	// A trace that ends inside the final phase still witnessed the
	// drop to its last value; count the truncated phase too.
	if last := (len(trace) - 1) / phase * phase; last < len(trace)-1 && trace[last] > 0 {
		out = append(out, trace[len(trace)-1]/trace[last])
	}
	return out
}

// GeometricDecayRate fits ln Φ(t) ≈ a·t + b over the positive prefix of
// the trace and returns the per-step decay factor e^a along with the
// fit's R². Returns (1, 0) when fewer than two positive points exist.
func GeometricDecayRate(trace []float64) (factor, r2 float64) {
	var xs, ys []float64
	for i, v := range trace {
		if v <= 0 {
			break
		}
		xs = append(xs, float64(i))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 2 {
		return 1, 0
	}
	f := stats.FitLinear(xs, ys)
	return math.Exp(f.Slope), f.R2
}

// MeanDrop pools traces and returns the average one-step relative drop
// E[(Φ(t)−Φ(t+1))/Φ(t)] over all transitions with Φ(t) > 0 — an
// estimate of the drift constant δ of Lemma 10.
func MeanDrop(traces [][]float64) float64 {
	var acc stats.Online
	for _, tr := range traces {
		for i := 1; i < len(tr); i++ {
			if tr[i-1] > 0 {
				acc.Add((tr[i-1] - tr[i]) / tr[i-1])
			}
		}
	}
	return acc.Mean()
}
