package drift

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBound(t *testing.T) {
	// s0 = smin: bound is 1/δ.
	if got := Bound(5, 5, 0.5); got != 2 {
		t.Fatalf("got %v", got)
	}
	want := (1 + math.Log(100)) / 0.25
	if got := Bound(100, 1, 0.25); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBoundPanics(t *testing.T) {
	for _, c := range [][3]float64{{1, 0, 0.5}, {1, 2, 0.5}, {2, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Bound%v should panic", c)
				}
			}()
			Bound(c[0], c[1], c[2])
		}()
	}
}

func TestTheoremBounds(t *testing.T) {
	// Theorem 7: 2·H·4·(1+ln W).
	want7 := 2 * 10.0 * 4 * (1 + math.Log(1000))
	if got := Theorem7Bound(10, 1000, 1); math.Abs(got-want7) > 1e-9 {
		t.Fatalf("Theorem7Bound=%v want %v", got, want7)
	}
	// Theorem 11: 2(1+ε)/(αε)·(wmax/wmin)·ln m.
	want11 := 2 * 1.2 / (1 * 0.2) * 50 * math.Log(5000)
	if got := Theorem11Bound(0.2, 1, 50, 1, 5000); math.Abs(got-want11) > 1e-9 {
		t.Fatalf("Theorem11Bound=%v want %v", got, want11)
	}
	// Theorem 12: 2n/α·(wmax/wmin)·ln m.
	want12 := 2 * 100 / 0.5 * 4 * math.Log(1000)
	if got := Theorem12Bound(100, 0.5, 4, 1, 1000); math.Abs(got-want12) > 1e-9 {
		t.Fatalf("Theorem12Bound=%v want %v", got, want12)
	}
}

func TestTheoremBoundPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"t11 eps":   func() { Theorem11Bound(0, 1, 1, 1, 10) },
		"t11 alpha": func() { Theorem11Bound(0.1, 0, 1, 1, 10) },
		"t12 alpha": func() { Theorem12Bound(5, 0, 1, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEstimateDeltaExactGeometric(t *testing.T) {
	// Deterministic 20% drop per step: δ should be exactly 0.2 pooled
	// and in every bin.
	trace := make([]float64, 50)
	trace[0] = 1 << 20
	for i := 1; i < len(trace); i++ {
		trace[i] = trace[i-1] * 0.8
	}
	est := EstimateDelta([][]float64{trace}, 1)
	if math.Abs(est.Delta-0.2) > 1e-12 || math.Abs(est.MinBinDelta-0.2) > 1e-12 {
		t.Fatalf("est=%+v", est)
	}
	if est.Transitions != 49 {
		t.Fatalf("transitions=%d", est.Transitions)
	}
}

func TestEstimateDeltaNoisy(t *testing.T) {
	// Random drops uniform on [0.1, 0.3]: pooled δ ≈ 0.2.
	r := rng.NewSeeded(5)
	var traces [][]float64
	for tr := 0; tr < 50; tr++ {
		v := 1e6
		trace := []float64{v}
		for v > 1 {
			v *= 1 - (0.1 + 0.2*r.Float64())
			trace = append(trace, v)
		}
		traces = append(traces, trace)
	}
	est := EstimateDelta(traces, 10)
	if math.Abs(est.Delta-0.2) > 0.01 {
		t.Fatalf("pooled delta=%v want ≈0.2", est.Delta)
	}
	if est.MinBinDelta < 0.1 || est.MinBinDelta > 0.3 {
		t.Fatalf("min-bin delta=%v out of the drop support", est.MinBinDelta)
	}
}

func TestEstimateDeltaEmpty(t *testing.T) {
	est := EstimateDelta(nil, 5)
	if est.Transitions != 0 || est.Delta != 0 {
		t.Fatalf("empty estimate=%+v", est)
	}
}

func TestDriftBoundConsistentWithSimulatedProcess(t *testing.T) {
	// Simulate V(t+1) = V(t)·(1−δ) exactly; hitting time of smin from
	// s0 is ln(s0/smin)/−ln(1−δ) ≤ Bound(s0,smin,δ) by the theorem.
	s0, smin, delta := 4096.0, 1.0, 0.3
	v := s0
	steps := 0
	for v > smin {
		v *= 1 - delta
		steps++
	}
	if b := Bound(s0, smin, delta); float64(steps) > b {
		t.Fatalf("deterministic process took %d > bound %v", steps, b)
	}
}
