// Package drift implements the multiplicative drift theorem the paper
// uses to convert potential drops into balancing-time bounds
// (Theorem 6, from Doerr & Pohl, GECCO 2012):
//
//	If E[V(t) − V(t+1) | V(t) = s] ≥ δ·s for all reachable s > 0,
//	then E[T | V(0) = s0] ≤ (1 + ln(s0/smin)) / δ.
//
// The paper instantiates it with δ = 1/4 over phases of length 2·H(G)
// (Theorem 7), with δ = α·ε/(2(1+ε))·wmin/wmax per round (Theorem 11),
// and with the ε/(1+ε) → 1/n substitution (Theorem 12). This package
// computes those bounds and estimates δ empirically from simulated
// potential traces (experiments E7/E8).
package drift

import (
	"math"

	"repro/internal/stats"
)

// Bound returns the Theorem 6 upper bound (1 + ln(s0/smin))/δ on the
// expected hitting time of 0. Panics unless s0 ≥ smin > 0 and δ > 0.
func Bound(s0, smin, delta float64) float64 {
	if smin <= 0 || s0 < smin || delta <= 0 {
		panic("drift: Bound requires s0 >= smin > 0 and delta > 0")
	}
	return (1 + math.Log(s0/smin)) / delta
}

// Theorem7Bound returns the paper's resource-controlled tight-threshold
// bound: phases of length 2·H(G) with δ = 1/4 and s0 ≤ W, smin = wmin,
// giving E[T] ≤ 2·H(G)·4·(1 + ln(W/wmin)) rounds.
func Theorem7Bound(hitting, w, wmin float64) float64 {
	return 2 * hitting * Bound(w, wmin, 0.25)
}

// Theorem11Bound returns the user-controlled above-average bound
// E[T] ≤ 2·(1+ε)/(α·ε)·(wmax/wmin)·ln m rounds.
func Theorem11Bound(eps, alpha, wmax, wmin float64, m int) float64 {
	if eps <= 0 || alpha <= 0 {
		panic("drift: Theorem11Bound requires positive eps and alpha")
	}
	return 2 * (1 + eps) / (alpha * eps) * (wmax / wmin) * math.Log(float64(m))
}

// Theorem12Bound returns the user-controlled tight-threshold bound
// E[T] ≤ 2·n/α·(wmax/wmin)·ln m rounds.
func Theorem12Bound(n int, alpha, wmax, wmin float64, m int) float64 {
	if alpha <= 0 {
		panic("drift: Theorem12Bound requires positive alpha")
	}
	return 2 * float64(n) / alpha * (wmax / wmin) * math.Log(float64(m))
}

// Estimate is an empirical drift estimate from potential traces.
type Estimate struct {
	// Delta is the pooled mean relative one-step drop
	// E[(V(t)−V(t+1))/V(t)].
	Delta float64
	// MinBinDelta is the smallest mean relative drop over value bins —
	// the empirical analogue of "for all s" in the drift condition.
	MinBinDelta float64
	// Transitions counts the (V(t) > 0) transitions pooled.
	Transitions int
}

// EstimateDelta pools all transitions of the traces, bins them by
// log₂ V(t) (so each magnitude decade is tested separately), and
// returns the pooled and worst-bin mean relative drops. Bins with
// fewer than minBin transitions are ignored for the minimum (too noisy
// to witness a violation).
func EstimateDelta(traces [][]float64, minBin int) Estimate {
	var all stats.Online
	bins := map[int]*stats.Online{}
	for _, tr := range traces {
		for i := 1; i < len(tr); i++ {
			v := tr[i-1]
			if v <= 0 {
				continue
			}
			drop := (v - tr[i]) / v
			all.Add(drop)
			b := int(math.Floor(math.Log2(v)))
			o := bins[b]
			if o == nil {
				o = &stats.Online{}
				bins[b] = o
			}
			o.Add(drop)
		}
	}
	est := Estimate{Delta: all.Mean(), Transitions: all.N()}
	minDelta := math.Inf(1)
	for _, o := range bins {
		if o.N() >= minBin && o.Mean() < minDelta {
			minDelta = o.Mean()
		}
	}
	if math.IsInf(minDelta, 1) {
		minDelta = est.Delta
	}
	est.MinBinDelta = minDelta
	return est
}
