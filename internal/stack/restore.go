package stack

import "repro/internal/task"

// Restore replaces the stack's entire contents for checkpoint
// recovery: tasks become the stack bottom-to-top and load is set to
// the exact recorded bit pattern rather than recomputed, because the
// engine's resume invariant requires the incrementally-accumulated
// load float to continue from precisely where the checkpointed run
// left it (a fresh summation could differ in the last ulp).
func (s *Stack) Restore(tasks []task.Task, load float64) {
	s.tasks = append(s.tasks[:0], tasks...)
	s.load = load
}
