// Package stack implements the per-resource task stack of Sections 4–6.
//
// Every resource stores its tasks in a stack; the height h of a task is
// the sum of the weights of the tasks below it. Relative to a threshold
// T, a task with height h and weight w is
//
//	completely below  if h + w ≤ T,
//	cutting           if h < T < h + w,
//	completely above  if h ≥ T.
//
// Because heights increase monotonically up the stack, the partition is
// always: a prefix of below tasks, at most one cutting task, then a
// suffix of above tasks. The resource-controlled protocol removes the
// cutting and above tasks (the sets Ic ∪ Ia); the potential functions
// of Section 5.2 and 6 count exactly the weight of those tasks.
package stack

import (
	"fmt"

	"repro/internal/task"
)

// Stack is one resource's task pile. The zero value is an empty stack
// ready for use. Index 0 is the bottom.
type Stack struct {
	tasks []task.Task
	load  float64
}

// Push adds t on top of the stack.
func (s *Stack) Push(t task.Task) {
	s.tasks = append(s.tasks, t)
	s.load += t.Weight
}

// Len returns the number of tasks b_r.
func (s *Stack) Len() int { return len(s.tasks) }

// Load returns the total weight x_r.
func (s *Stack) Load() float64 { return s.load }

// Task returns the i-th task from the bottom.
func (s *Stack) Task(i int) task.Task { return s.tasks[i] }

// Tasks returns the internal slice, bottom to top. Callers must not
// modify it.
func (s *Stack) Tasks() []task.Task { return s.tasks }

// HeightOf returns the height of the i-th task: the total weight
// strictly below it. O(i).
func (s *Stack) HeightOf(i int) float64 {
	h := 0.0
	for j := 0; j < i; j++ {
		h += s.tasks[j].Weight
	}
	return h
}

// Classification of one task relative to a threshold.
type Classification int

// The three Section 4 classes.
const (
	Below Classification = iota
	Cutting
	Above
)

// String renders the class name.
func (c Classification) String() string {
	switch c {
	case Below:
		return "below"
	case Cutting:
		return "cutting"
	case Above:
		return "above"
	default:
		return fmt.Sprintf("Classification(%d)", int(c))
	}
}

// Classify returns the class of the i-th task w.r.t. threshold t.
func (s *Stack) Classify(i int, t float64) Classification {
	h := s.HeightOf(i)
	w := s.tasks[i].Weight
	switch {
	case h+w <= t:
		return Below
	case h >= t:
		return Above
	default:
		return Cutting
	}
}

// Partition returns (belowCount, hasCutting): the first belowCount
// tasks are completely below t; if hasCutting, task belowCount is the
// cutting task and everything after it is above; otherwise every task
// from belowCount on is above. O(len).
func (s *Stack) Partition(t float64) (belowCount int, hasCutting bool) {
	h := 0.0
	for i, tk := range s.tasks {
		if h+tk.Weight <= t {
			h += tk.Weight
			continue
		}
		// First task not completely below. Heights only grow, so the
		// partition is decided here.
		return i, h < t
	}
	return len(s.tasks), false
}

// OverflowWeight returns φ_r(t): the weight of the cutting task (if
// any) plus the weights of all tasks above threshold t. Zero when the
// load is ≤ t.
func (s *Stack) OverflowWeight(t float64) float64 {
	below, _ := s.Partition(t)
	w := 0.0
	for i := below; i < len(s.tasks); i++ {
		w += s.tasks[i].Weight
	}
	return w
}

// OverflowCount returns |Ic ∪ Ia| w.r.t. threshold t.
func (s *Stack) OverflowCount(t float64) int {
	below, _ := s.Partition(t)
	return len(s.tasks) - below
}

// PopOverflow removes and returns (in bottom-to-top order) every task
// that is cutting or above threshold t — one step of the
// resource-controlled protocol from this resource's perspective. The
// remaining prefix is untouched, so previously accepted tasks keep
// their heights ("once a task is accepted by a resource, it will never
// leave that resource again").
func (s *Stack) PopOverflow(t float64) []task.Task {
	if below, _ := s.Partition(t); below == len(s.tasks) {
		return nil
	}
	return s.PopOverflowAppend(t, nil)
}

// PopOverflowAppend is PopOverflow into a caller-provided buffer: the
// removed tasks are appended to dst, which is returned. The hot-path
// variant for the open-system engine, where per-shard scratch buffers
// keep steady-state rounds allocation-free.
func (s *Stack) PopOverflowAppend(t float64, dst []task.Task) []task.Task {
	below, _ := s.Partition(t)
	for i := below; i < len(s.tasks); i++ {
		s.load -= s.tasks[i].Weight
		dst = append(dst, s.tasks[i])
	}
	s.tasks = s.tasks[:below]
	return dst
}

// Accepts reports whether a new task of weight w would be accepted: its
// height would be the current load, so acceptance means load + w ≤ t.
func (s *Stack) Accepts(w, t float64) bool { return s.load+w <= t }

// RemoveIndices removes the tasks at the given (strictly increasing)
// positions and returns them in stack order. Remaining tasks slide
// down, preserving relative order — this models user-controlled
// departures, where any task on an overloaded resource may leave
// regardless of position. Panics on out-of-range or non-increasing
// indices.
func (s *Stack) RemoveIndices(indices []int) []task.Task {
	if len(indices) == 0 {
		return nil
	}
	return s.RemoveIndicesAppend(indices, make([]task.Task, 0, len(indices)))
}

// RemoveIndicesAppend is RemoveIndices into a caller-provided buffer:
// removed tasks are appended to dst, which is returned (unchanged when
// indices is empty). The allocation-free variant for reusable
// per-shard departure and migration buffers.
func (s *Stack) RemoveIndicesAppend(indices []int, dst []task.Task) []task.Task {
	if len(indices) == 0 {
		return dst
	}
	prev := -1
	for _, i := range indices {
		if i <= prev || i >= len(s.tasks) {
			panic(fmt.Sprintf("stack: RemoveIndices bad index %d (prev %d, len %d)", i, prev, len(s.tasks)))
		}
		prev = i
		dst = append(dst, s.tasks[i])
		s.load -= s.tasks[i].Weight
	}
	// Compact in one pass.
	out := s.tasks[:0]
	k := 0
	for i, tk := range s.tasks {
		if k < len(indices) && i == indices[k] {
			k++
			continue
		}
		out = append(out, tk)
	}
	s.tasks = out
	return dst
}

// PopAt removes and returns the task at position i; the tasks above it
// slide down one slot, preserving relative order. O(len−i). This is the
// open-system departure primitive: service completions leave from the
// bottom (i = 0, FIFO) and geometric departures from arbitrary
// positions. Panics on an out-of-range index.
func (s *Stack) PopAt(i int) task.Task {
	if i < 0 || i >= len(s.tasks) {
		panic(fmt.Sprintf("stack: PopAt index %d out of range (len %d)", i, len(s.tasks)))
	}
	tk := s.tasks[i]
	s.load -= tk.Weight
	copy(s.tasks[i:], s.tasks[i+1:])
	s.tasks = s.tasks[:len(s.tasks)-1]
	return tk
}

// Clone returns a deep copy.
func (s *Stack) Clone() *Stack {
	return &Stack{tasks: append([]task.Task(nil), s.tasks...), load: s.load}
}

// Reset empties the stack, retaining capacity.
func (s *Stack) Reset() {
	s.tasks = s.tasks[:0]
	s.load = 0
}

// CheckInvariants verifies internal consistency (load equals the sum of
// weights, all weights ≥ 1). Used by tests and debug assertions.
func (s *Stack) CheckInvariants() error {
	sum := 0.0
	for i, tk := range s.tasks {
		if tk.Weight < 1 {
			return fmt.Errorf("stack: task %d at position %d has weight %v < 1", tk.ID, i, tk.Weight)
		}
		sum += tk.Weight
	}
	if diff := sum - s.load; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("stack: cached load %v != recomputed %v", s.load, sum)
	}
	return nil
}
