package stack

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/task"
)

func mk(weights ...float64) *Stack {
	s := &Stack{}
	for i, w := range weights {
		s.Push(task.Task{ID: i, Weight: w})
	}
	return s
}

func TestPushLoadLen(t *testing.T) {
	s := mk(2, 3, 5)
	if s.Len() != 3 || s.Load() != 10 {
		t.Fatalf("len=%d load=%v", s.Len(), s.Load())
	}
	if s.Task(0).Weight != 2 || s.Task(2).Weight != 5 {
		t.Fatal("stack order wrong")
	}
}

func TestHeights(t *testing.T) {
	s := mk(2, 3, 5)
	for i, want := range []float64{0, 2, 5} {
		if got := s.HeightOf(i); got != want {
			t.Fatalf("height(%d)=%v want %v", i, got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	// Stack: [2, 3, 5], threshold 4.
	// Task 0: h=0, h+w=2 ≤ 4 → below.
	// Task 1: h=2 < 4 < h+w=5 → cutting.
	// Task 2: h=5 ≥ 4 → above.
	s := mk(2, 3, 5)
	wants := []Classification{Below, Cutting, Above}
	for i, want := range wants {
		if got := s.Classify(i, 4); got != want {
			t.Fatalf("classify(%d)=%v want %v", i, got, want)
		}
	}
}

func TestClassifyBoundaryExactFit(t *testing.T) {
	// h + w == T counts as below (the paper accepts height+weight ≤ T).
	s := mk(2, 2)
	if got := s.Classify(1, 4); got != Below {
		t.Fatalf("exact-fit task classified %v want below", got)
	}
	// h == T counts as above.
	if got := s.Classify(1, 2); got != Above {
		t.Fatalf("h==T task classified %v want above", got)
	}
}

func TestPartition(t *testing.T) {
	s := mk(2, 3, 5)
	below, cutting := s.Partition(4)
	if below != 1 || !cutting {
		t.Fatalf("partition=%d,%v want 1,true", below, cutting)
	}
	// Threshold exactly at a task boundary: [2,3,5], T=5 →
	// task0 below (2≤5), task1 below (5≤5), task2 h=5 ≥ 5 above, no cutting.
	below, cutting = s.Partition(5)
	if below != 2 || cutting {
		t.Fatalf("partition(T=5)=%d,%v want 2,false", below, cutting)
	}
	// Everything below.
	below, cutting = s.Partition(100)
	if below != 3 || cutting {
		t.Fatalf("partition(T=100)=%d,%v", below, cutting)
	}
	// Empty stack.
	e := &Stack{}
	below, cutting = e.Partition(1)
	if below != 0 || cutting {
		t.Fatal("empty partition wrong")
	}
}

func TestOverflowWeightAndCount(t *testing.T) {
	s := mk(2, 3, 5)
	if got := s.OverflowWeight(4); got != 8 { // cutting(3) + above(5)
		t.Fatalf("overflow weight=%v want 8", got)
	}
	if got := s.OverflowCount(4); got != 2 {
		t.Fatalf("overflow count=%d want 2", got)
	}
	if got := s.OverflowWeight(100); got != 0 {
		t.Fatalf("no-overflow weight=%v", got)
	}
}

func TestPopOverflow(t *testing.T) {
	s := mk(2, 3, 5)
	removed := s.PopOverflow(4)
	if len(removed) != 2 || removed[0].Weight != 3 || removed[1].Weight != 5 {
		t.Fatalf("removed=%v", removed)
	}
	if s.Len() != 1 || s.Load() != 2 {
		t.Fatalf("after pop: len=%d load=%v", s.Len(), s.Load())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Second pop is a no-op.
	if got := s.PopOverflow(4); got != nil {
		t.Fatalf("second pop returned %v", got)
	}
}

func TestPopOverflowKeepsAcceptedPrefix(t *testing.T) {
	// Once accepted (fully below), tasks never move again even after
	// repeated pops at different loads.
	s := mk(1, 1, 1, 10)
	_ = s.PopOverflow(3.5)
	if s.Len() != 3 {
		t.Fatalf("len=%d want 3", s.Len())
	}
	for i := 0; i < 3; i++ {
		if s.Task(i).ID != i {
			t.Fatal("accepted prefix reordered")
		}
	}
}

func TestAccepts(t *testing.T) {
	s := mk(2, 2)
	if !s.Accepts(1, 5) {
		t.Fatal("should accept: 4+1 ≤ 5")
	}
	if !s.Accepts(1, 5.0) || s.Accepts(1.5, 5) {
		t.Fatal("acceptance boundary wrong")
	}
	e := &Stack{}
	if !e.Accepts(5, 5) {
		t.Fatal("empty stack should accept weight == threshold")
	}
}

func TestRemoveIndices(t *testing.T) {
	s := mk(1, 2, 3, 4, 5)
	removed := s.RemoveIndices([]int{1, 3})
	if len(removed) != 2 || removed[0].Weight != 2 || removed[1].Weight != 4 {
		t.Fatalf("removed=%v", removed)
	}
	if s.Len() != 3 || s.Load() != 9 {
		t.Fatalf("after remove: len=%d load=%v", s.Len(), s.Load())
	}
	// Remaining relative order preserved: 1, 3, 5.
	for i, w := range []float64{1, 3, 5} {
		if s.Task(i).Weight != w {
			t.Fatalf("task %d weight=%v want %v", i, s.Task(i).Weight, w)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveIndicesEmpty(t *testing.T) {
	s := mk(1, 2)
	if got := s.RemoveIndices(nil); got != nil {
		t.Fatalf("nil removal returned %v", got)
	}
	if s.Len() != 2 {
		t.Fatal("nil removal changed stack")
	}
}

func TestRemoveIndicesPanics(t *testing.T) {
	for _, idx := range [][]int{{2}, {-1}, {0, 0}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("indices %v should panic", idx)
				}
			}()
			mk(1, 2).RemoveIndices(idx)
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := mk(1, 2, 3)
	c := s.Clone()
	c.PopOverflow(0)
	if s.Len() != 3 || s.Load() != 6 {
		t.Fatal("clone mutation affected original")
	}
	if c.Len() != 0 || c.Load() != 0 {
		t.Fatal("clone pop failed")
	}
}

func TestReset(t *testing.T) {
	s := mk(1, 2)
	s.Reset()
	if s.Len() != 0 || s.Load() != 0 {
		t.Fatal("reset failed")
	}
	s.Push(task.Task{ID: 9, Weight: 4})
	if s.Load() != 4 {
		t.Fatal("push after reset failed")
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	s := mk(1, 2)
	s.load = 99 // corrupt deliberately
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("corrupted load not detected")
	}
	bad := &Stack{}
	bad.Push(task.Task{ID: 0, Weight: 0.5})
	if err := bad.CheckInvariants(); err == nil {
		t.Fatal("sub-unit weight not detected")
	}
}

// Property: for random stacks and thresholds, the three classes
// partition the stack contiguously (below*, cutting?, above*) and
// PopOverflow removes exactly the non-below classes.
func TestPropertyPartitionStructure(t *testing.T) {
	r := rng.NewSeeded(42)
	f := func(seed uint16) bool {
		n := 1 + int(seed%20)
		s := &Stack{}
		for i := 0; i < n; i++ {
			s.Push(task.Task{ID: i, Weight: 1 + 9*r.Float64()})
		}
		thr := s.Load() * r.Float64() * 1.2
		below, hasCutting := s.Partition(thr)
		// Verify against direct classification.
		for i := 0; i < s.Len(); i++ {
			c := s.Classify(i, thr)
			switch {
			case i < below:
				if c != Below {
					return false
				}
			case i == below && hasCutting:
				if c != Cutting {
					return false
				}
			default:
				if c != Above {
					return false
				}
			}
		}
		// Overflow weight equals sum of non-below weights.
		want := 0.0
		for i := below; i < s.Len(); i++ {
			want += s.Task(i).Weight
		}
		if diff := s.OverflowWeight(thr) - want; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		// Pop and check conservation.
		before := s.Load()
		removed := s.PopOverflow(thr)
		sum := 0.0
		for _, tk := range removed {
			sum += tk.Weight
		}
		if diff := before - (s.Load() + sum); diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return s.CheckInvariants() == nil && s.Load() <= thr+1e-9 || below == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveIndices conserves the multiset of tasks.
func TestPropertyRemoveConservation(t *testing.T) {
	r := rng.NewSeeded(43)
	f := func(seed uint16) bool {
		n := 2 + int(seed%30)
		s := &Stack{}
		totalBefore := 0.0
		for i := 0; i < n; i++ {
			w := 1 + 5*r.Float64()
			s.Push(task.Task{ID: i, Weight: w})
			totalBefore += w
		}
		// Random strictly increasing index subset.
		var idx []int
		for i := 0; i < n; i++ {
			if r.Bool(0.4) {
				idx = append(idx, i)
			}
		}
		removed := s.RemoveIndices(idx)
		if len(removed) != len(idx) {
			return false
		}
		sum := s.Load()
		for _, tk := range removed {
			sum += tk.Weight
		}
		if diff := sum - totalBefore; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPopOverflow(b *testing.B) {
	base := &Stack{}
	for i := 0; i < 1000; i++ {
		base.Push(task.Task{ID: i, Weight: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		s.PopOverflow(500)
	}
}

func TestPopAt(t *testing.T) {
	s := mk(2, 3, 4)
	if got := s.PopAt(0); got.Weight != 2 {
		t.Fatalf("PopAt(0) = %+v", got)
	}
	if s.Len() != 2 || s.Load() != 7 || s.Task(0).Weight != 3 {
		t.Fatalf("after bottom pop: len=%d load=%v", s.Len(), s.Load())
	}
	if got := s.PopAt(1); got.Weight != 4 {
		t.Fatalf("PopAt(1) = %+v", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range PopAt did not panic")
		}
	}()
	s.PopAt(5)
}
