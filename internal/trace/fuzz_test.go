package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadRecords drives the validating JSONL reader with arbitrary
// input: it must never panic, and any stream it accepts must survive a
// write/re-read round trip unchanged — the property that pins the
// reader and writer to one wire format.
func FuzzReadRecords(f *testing.F) {
	f.Add("{\"round\":1,\"task\":7,\"op\":\"arrive\",\"from\":-1,\"to\":3,\"weight\":2}\n")
	f.Add("# comment\n\n{\"round\":9,\"task\":7,\"op\":\"hop\",\"cause\":\"protocol\",\"from\":3,\"to\":5,\"hops\":1}\n")
	f.Add("{\"round\":30,\"task\":7,\"op\":\"depart\",\"from\":5,\"to\":-1,\"weight\":2,\"hops\":1,\"sojourn\":29}\n")
	f.Add("{\"round\":2,\"task\":1,\"op\":\"loss\",\"cause\":\"retry\",\"from\":0,\"to\":1}\nnot json\n")
	f.Add("{\"round\":2,\"task\":1,\"op\":\"retry\",\"cause\":\"retry\",\"from\":0,\"to\":1,\"attempt\":3,\"latency\":6}\n")
	f.Add("{\"round\":-1,\"task\":0,\"op\":\"hop\",\"from\":-2,\"to\":9999999}\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadRecords(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, recs); err != nil {
			t.Fatalf("accepted records failed to re-encode: %v", err)
		}
		back, err := ReadRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v\n%s", err, buf.String())
		}
		if len(recs) != 0 && !reflect.DeepEqual(back, recs) {
			t.Fatalf("round trip changed records\nfirst  %+v\nsecond %+v", recs, back)
		}
	})
}
