// Package trace implements deterministic per-task lifecycle tracing
// for the open-system engine: a stateless sampling rule, a compact
// fixed-size Record for every sampled lifecycle event, and the
// always-on fixed-bucket histograms (sojourn rounds, migration hops
// per task, ledger resolution latency) the engine maintains whether or
// not anything is sampled.
//
// The design constraint is the engine's determinism contract: whether
// a task is traced is a pure hash of (trace seed, task ID) — never the
// shard split, never a stateful draw — so the sampled set, the record
// stream and the histograms are bit-identical for every worker count,
// and a run with tracing disabled is bit-identical to one that never
// heard of this package. Records are fixed-size value types with no
// pointers, so they ride the obs event ring without allocating.
package trace

import (
	"fmt"

	"repro/internal/rng"
)

// Op identifies what happened to a task at one point of its lifecycle.
type Op uint8

const (
	// OpArrive is the task's admission: round, weight, first resource.
	OpArrive Op = iota + 1
	// OpHop is a placement change attempt entering a delivery batch —
	// protocol move, evacuation, re-home or late fault-layer delivery.
	// Cause says why; From == To marks a bounced or re-homed attempt
	// that left the task where it started.
	OpHop
	// OpDepart closes the timeline: Sojourn and Hops carry the task's
	// totals.
	OpDepart
	// OpLoss marks a migration message entering the in-flight ledger
	// (Cause CauseRetry) or the delay wheel (Cause CauseDelay).
	OpLoss
	// OpRetry is one ledger retry attempt (Attempt counts them); the
	// attempt that lands also produces an OpHop with CauseRetry.
	OpRetry

	numOps
)

var opNames = [numOps]string{
	OpArrive: "arrive",
	OpHop:    "hop",
	OpDepart: "depart",
	OpLoss:   "loss",
	OpRetry:  "retry",
}

// String returns the wire name ("arrive", "hop", ...).
func (o Op) String() string {
	if o >= 1 && o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromString parses a wire name back to its Op (false on unknown).
func OpFromString(s string) (Op, bool) {
	for o := Op(1); o < numOps; o++ {
		if opNames[o] == s {
			return o, true
		}
	}
	return 0, false
}

// MarshalJSON writes the op as its wire name.
func (o Op) MarshalJSON() ([]byte, error) {
	if o < 1 || o >= numOps {
		return nil, fmt.Errorf("trace: cannot marshal unknown op %d", uint8(o))
	}
	return []byte(`"` + opNames[o] + `"`), nil
}

// UnmarshalJSON parses a wire name, rejecting unknown ops.
func (o *Op) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("trace: op must be a string, got %s", data)
	}
	v, ok := OpFromString(string(data[1 : len(data)-1]))
	if !ok {
		return fmt.Errorf("trace: unknown op %s", data)
	}
	*o = v
	return nil
}

// Cause says why a hop (or loss) happened — the taxonomy the CLI
// filters on.
type Cause uint8

const (
	// CauseNone is the zero cause (arrive/depart records).
	CauseNone Cause = iota
	// CauseProtocol is a threshold-driven protocol migration.
	CauseProtocol
	// CauseEvac is a churn evacuation off a resource that went down.
	CauseEvac
	// CauseBounce re-homes a delivery that landed on a down resource.
	CauseBounce
	// CausePartition bounces a move at a partition cut (From == To).
	CausePartition
	// CauseDelay is a delay-wheel event: the park (OpLoss) or the late
	// delivery (OpHop, Latency = rounds parked).
	CauseDelay
	// CauseRetry is an in-flight-ledger event: the loss (OpLoss), an
	// attempt (OpRetry) or the successful redelivery (OpHop, Latency =
	// rounds since the loss).
	CauseRetry
	// CauseTimeout re-homes a ledgered task at its source after its
	// retry deadline passed (OpHop, Latency = the timeout).
	CauseTimeout

	numCauses
)

var causeNames = [numCauses]string{
	CauseNone:      "",
	CauseProtocol:  "protocol",
	CauseEvac:      "evac",
	CauseBounce:    "bounce",
	CausePartition: "partition",
	CauseDelay:     "delay",
	CauseRetry:     "retry",
	CauseTimeout:   "timeout",
}

// String returns the wire name ("" for CauseNone).
func (c Cause) String() string {
	if c < numCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// CauseFromString parses a wire name back to its Cause (false on
// unknown; "" parses to CauseNone).
func CauseFromString(s string) (Cause, bool) {
	for c := Cause(0); c < numCauses; c++ {
		if causeNames[c] == s {
			return c, true
		}
	}
	return 0, false
}

// MarshalJSON writes the cause as its wire name.
func (c Cause) MarshalJSON() ([]byte, error) {
	if c >= numCauses {
		return nil, fmt.Errorf("trace: cannot marshal unknown cause %d", uint8(c))
	}
	return []byte(`"` + causeNames[c] + `"`), nil
}

// UnmarshalJSON parses a wire name, rejecting unknown causes.
func (c *Cause) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("trace: cause must be a string, got %s", data)
	}
	v, ok := CauseFromString(string(data[1 : len(data)-1]))
	if !ok {
		return fmt.Errorf("trace: unknown cause %s", data)
	}
	*c = v
	return nil
}

// Record is one sampled lifecycle event. It is a fixed-size value type
// with no pointers or slices so it embeds in the obs event union and
// copies through subscription rings without allocating. From/To are
// resource indices; -1 marks "not applicable" (the From of an arrival,
// the To of a departure).
type Record struct {
	Round int   `json:"round"`
	Task  int   `json:"task"`
	Op    Op    `json:"op"`
	Cause Cause `json:"cause,omitempty"`
	From  int32 `json:"from"`
	To    int32 `json:"to"`
	// Weight rides arrivals and departures.
	Weight float64 `json:"weight,omitempty"`
	// Hops is the task's cumulative completed-hop count after this
	// event; Sojourn (departures) its rounds in system.
	Hops    int32 `json:"hops,omitempty"`
	Sojourn int32 `json:"sojourn,omitempty"`
	// Attempt numbers ledger retry attempts; Latency is the rounds a
	// late delivery spent lost, parked or retrying.
	Attempt int32 `json:"attempt,omitempty"`
	Latency int32 `json:"latency,omitempty"`
}

// Validate checks the record's structural invariants — the reader
// applies it to every parsed line.
func (r *Record) Validate() error {
	if r.Op < 1 || r.Op >= numOps {
		return fmt.Errorf("unknown op %d", uint8(r.Op))
	}
	if r.Cause >= numCauses {
		return fmt.Errorf("unknown cause %d", uint8(r.Cause))
	}
	if r.Task < 0 {
		return fmt.Errorf("negative task ID %d", r.Task)
	}
	if r.From < -1 || r.To < -1 {
		return fmt.Errorf("resource below -1 (from %d, to %d)", r.From, r.To)
	}
	if r.Hops < 0 || r.Sojourn < 0 || r.Attempt < 0 || r.Latency < 0 {
		return fmt.Errorf("negative counter (hops %d, sojourn %d, attempt %d, latency %d)",
			r.Hops, r.Sojourn, r.Attempt, r.Latency)
	}
	return nil
}

// sampleSalt keys the sampling hash so it is decorrelated from every
// other stateless draw of the run (fault draws, per-resource streams).
const sampleSalt = 0x7e1e5c09

// Sampled reports whether task id is traced at sampling probability p
// under the given trace seed. It is a pure function of (seed, id, p):
// no state, no dependence on round, shard or worker count — the whole
// determinism story of the tracing layer rests on this.
func Sampled(seed uint64, id int, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.HashFloat3(seed, uint64(id), sampleSalt, 0) < p
}
