package trace

// The always-on histograms. Buckets are fixed at compile time so a
// Hist is a flat value type — Observe is two integer increments with
// no allocation, merging is element-wise addition, and the engine can
// keep one per metric inside Result where checkpointing and the
// cross-worker golden comparisons pick it up for free. One shared
// power-of-two ladder serves all three lifecycle metrics (sojourn
// rounds, hops per task, ledger resolution latency): their ranges
// differ by orders of magnitude, and a ladder is accurate to a factor
// of two everywhere without per-metric tuning.

// NumBuckets is the number of counters per histogram: the finite
// Bounds plus one overflow bucket.
const NumBuckets = len(Bounds) + 1

// Bounds is the shared bucket ladder: bucket i counts observations v
// with v <= Bounds[i] (and above the previous bound); the last bucket
// counts everything larger.
var Bounds = [...]int32{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Hist is one fixed-bucket histogram of non-negative integer
// observations. The zero value is an empty histogram ready for use.
type Hist struct {
	Counts [NumBuckets]int64 `json:"counts"`
	Sum    int64             `json:"sum"`
}

// Observe adds one observation. Negative values clamp into the first
// bucket (they cannot occur from the engine; the clamp keeps a
// corrupted input from indexing out of range).
func (h *Hist) Observe(v int64) {
	h.Counts[bucketOf(v)]++
	h.Sum += v
}

// bucketOf returns the bucket index for observation v.
func bucketOf(v int64) int {
	for i, b := range Bounds {
		if v <= int64(b) {
			return i
		}
	}
	return NumBuckets - 1
}

// Count returns the total number of observations.
func (h *Hist) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mean returns the average observation (0 when empty).
func (h *Hist) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum) / float64(n)
}

// Merge adds o's counts into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the
// bucket holding the target rank and interpolating linearly inside it,
// the Prometheus histogram_quantile convention. A rank landing in the
// overflow bucket clamps to the largest finite bound (there is no
// upper edge to interpolate toward). Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		if i >= len(Bounds) {
			return float64(Bounds[len(Bounds)-1])
		}
		hi := float64(Bounds[i])
		lo := 0.0
		if i > 0 {
			lo = float64(Bounds[i-1])
		}
		return lo + (hi-lo)*(target-float64(prev))/float64(c)
	}
	return float64(Bounds[len(Bounds)-1])
}

// Snapshot groups the three always-on lifecycle histograms the engine
// maintains; it is the payload of obs trace-histogram events and the
// source of the Prometheus histogram exposition. A flat value type —
// safe to copy through event rings.
type Snapshot struct {
	// Sojourn is rounds-in-system, observed at each departure.
	Sojourn Hist `json:"sojourn"`
	// Hops is completed migration hops per task, observed at departure.
	Hops Hist `json:"hops"`
	// RetryLat is rounds from a message loss to its ledger resolution
	// (retry success or timeout re-home), observed at resolution.
	RetryLat Hist `json:"retry_latency"`
}
