package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSON Lines is the trace interchange format: one Record object per
// line, blank lines and #-comments skipped. The writer is what lbdyn's
// -trace-out sink and lbserve's trace log produce; the reader is the
// validating side cmd/lbtrace and the fuzz harness drive — every line
// is parsed with unknown fields rejected, checked by Record.Validate,
// and every error carries its 1-based line number.

// Writer streams records as JSON Lines through a buffered writer.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer on w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record as a JSON line.
func (w *Writer) Write(rec *Record) error { return w.enc.Encode(rec) }

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteRecords writes all of recs to w as JSON Lines.
func WriteRecords(w io.Writer, recs []Record) error {
	tw := NewWriter(w)
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// maxLine bounds one trace line (a record is a few hundred bytes; the
// headroom keeps hand-edited files working while bounding memory).
const maxLine = 1 << 20

// ReadRecords parses a JSON Lines trace stream. Blank lines and lines
// starting with '#' are skipped; every other line must be exactly one
// Record object with no unknown fields, and must pass Validate. Errors
// carry the 1-based line number.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace: line %d: trailing data after record", line)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	return recs, nil
}
