package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestOpCauseNames(t *testing.T) {
	for o := Op(1); o < numOps; o++ {
		back, ok := OpFromString(o.String())
		if !ok || back != o {
			t.Errorf("op %d: round-trip via %q gave (%d, %v)", o, o.String(), back, ok)
		}
	}
	for c := Cause(0); c < numCauses; c++ {
		back, ok := CauseFromString(c.String())
		if !ok || back != c {
			t.Errorf("cause %d: round-trip via %q gave (%d, %v)", c, c.String(), back, ok)
		}
	}
	if _, ok := OpFromString("bogus"); ok {
		t.Error("OpFromString accepted bogus")
	}
	if _, ok := CauseFromString("bogus"); ok {
		t.Error("CauseFromString accepted bogus")
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	recs := []Record{
		{Round: 3, Task: 42, Op: OpArrive, From: -1, To: 7, Weight: 2.5},
		{Round: 9, Task: 42, Op: OpHop, Cause: CauseProtocol, From: 7, To: 11, Hops: 1},
		{Round: 12, Task: 42, Op: OpLoss, Cause: CauseRetry, From: 11, To: 3},
		{Round: 14, Task: 42, Op: OpRetry, Cause: CauseRetry, From: 11, To: 3, Attempt: 1},
		{Round: 16, Task: 42, Op: OpHop, Cause: CauseRetry, From: 11, To: 3, Hops: 2, Attempt: 2, Latency: 4},
		{Round: 30, Task: 42, Op: OpDepart, From: 3, To: -1, Weight: 2.5, Hops: 2, Sojourn: 27},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round-trip mismatch\ngot  %+v\nwant %+v", got, recs)
	}
	// Ops and causes travel as their wire names, not numbers.
	if !strings.Contains(buf.String(), `"op":"hop"`) || !strings.Contains(buf.String(), `"cause":"protocol"`) {
		t.Fatalf("wire format lost the string enums:\n%s", buf.String())
	}
}

func TestReaderRejectsWithLineNumbers(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"unknown op", `{"round":1,"task":0,"op":"warp","from":0,"to":1}`, "line 1"},
		{"unknown cause", `{"round":1,"task":0,"op":"hop","cause":"gremlins","from":0,"to":1}`, "line 1"},
		{"unknown field", `{"round":1,"task":0,"op":"hop","from":0,"to":1,"extra":1}`, "unknown field"},
		{"negative task", `{"round":1,"task":-5,"op":"hop","from":0,"to":1}`, "negative task"},
		{"numeric op", `{"round":1,"task":0,"op":2,"from":0,"to":1}`, "must be a string"},
		{"trailing data", `{"round":1,"task":0,"op":"hop","from":0,"to":1} {"x":1}`, "trailing data"},
		{"second line", "{\"round\":1,\"task\":0,\"op\":\"hop\",\"from\":0,\"to\":1}\nnot json", "line 2"},
	}
	for _, tc := range cases {
		_, err := ReadRecords(strings.NewReader(tc.input))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// Comments and blank lines are not errors.
	recs, err := ReadRecords(strings.NewReader("# header\n\n{\"round\":1,\"task\":0,\"op\":\"arrive\",\"from\":-1,\"to\":0}\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("comment skip: recs=%d err=%v", len(recs), err)
	}
}

func TestSampledIsStatelessAndProportional(t *testing.T) {
	const seed, p, n = 0xabc, 0.25, 200000
	hits := 0
	for id := 0; id < n; id++ {
		a, b := Sampled(seed, id, p), Sampled(seed, id, p)
		if a != b {
			t.Fatalf("task %d: Sampled not deterministic", id)
		}
		if a {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-p) > 0.01 {
		t.Fatalf("sampling rate %.4f, want ~%.2f", frac, p)
	}
	if Sampled(seed, 1, 0) {
		t.Fatal("p=0 sampled something")
	}
	if !Sampled(seed, 1, 1) {
		t.Fatal("p=1 missed a task")
	}
	// Different seeds pick different sets.
	diff := 0
	for id := 0; id < 1000; id++ {
		if Sampled(1, id, 0.5) != Sampled(2, id, 0.5) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 sample identical sets")
	}
}

func TestHistObserveQuantile(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum != 5050 {
		t.Fatalf("count %d sum %d, want 100, 5050", h.Count(), h.Sum)
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean %v, want 50.5", m)
	}
	// The ladder is accurate to a factor of two: p50 of 1..100 is 50,
	// the estimate must land inside the (32, 64] bucket.
	if q := h.Quantile(0.5); q <= 32 || q > 64 {
		t.Fatalf("p50 = %v, want within (32, 64]", q)
	}
	if q := h.Quantile(1); q <= 64 || q > 128 {
		t.Fatalf("p100 = %v, want within (64, 128]", q)
	}
	// Overflow clamps to the largest finite bound.
	var o Hist
	o.Observe(1 << 30)
	if q := o.Quantile(0.99); q != float64(Bounds[len(Bounds)-1]) {
		t.Fatalf("overflow quantile %v, want %d", q, Bounds[len(Bounds)-1])
	}
	// Negative observations clamp into the first bucket.
	var neg Hist
	neg.Observe(-3)
	if neg.Counts[0] != 1 {
		t.Fatalf("negative observation landed in %v", neg.Counts)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, both Hist
	for v := int64(0); v < 50; v++ {
		a.Observe(v)
		both.Observe(v)
	}
	for v := int64(50); v < 90; v++ {
		b.Observe(v * 3)
		both.Observe(v * 3)
	}
	a.Merge(&b)
	if !reflect.DeepEqual(a, both) {
		t.Fatalf("merge mismatch\ngot  %+v\nwant %+v", a, both)
	}
}

func TestSnapshotJSON(t *testing.T) {
	var s Snapshot
	s.Sojourn.Observe(10)
	s.Hops.Observe(2)
	s.RetryLat.Observe(7)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("snapshot round-trip mismatch\ngot  %+v\nwant %+v", back, s)
	}
}
