// Package diffusion implements the paper's footnote-1 mechanism for
// obtaining the average load in a decentralised way: "Each resource
// keeps a value representing the current estimated average load and
// this value is initialized with the initial load of the resource. The
// resources then simulate continuous diffusion load balancing (always
// using their current estimate) for mixing time number of steps, at
// which point their estimates will be concentrated around the average
// load."
//
// One diffusion step replaces every estimate z_r with Σ_w P(r,w)·z_w,
// i.e. z ← P·z for the (symmetric, doubly stochastic) random-walk
// kernel. The vector average is invariant under P, and the deviation
// from it contracts by the kernel's second eigenvalue each step, so
// after O(τ(G)) steps every estimate is close to W/n. The estimates
// feed core.FromEstimates to build thresholds without global knowledge
// (experiment E9).
package diffusion

import (
	"math"

	"repro/internal/walk"
)

// Step performs one diffusion round: next[r] = Σ_w P(r,w)·z[w].
// next must have the same length as z; it is overwritten.
func Step(k walk.Kernel, z, next []float64) {
	// P is symmetric for every kernel in the walk package, so the
	// distribution evolution z·P equals the value diffusion P·z.
	walk.EvolveDist(k, z, next)
}

// Run performs steps diffusion rounds starting from initial and returns
// the final estimate vector (a fresh slice).
func Run(k walk.Kernel, initial []float64, steps int) []float64 {
	n := k.Graph().N()
	if len(initial) != n {
		panic("diffusion: initial vector has wrong length")
	}
	z := append([]float64(nil), initial...)
	next := make([]float64, n)
	for i := 0; i < steps; i++ {
		Step(k, z, next)
		z, next = next, z
	}
	return z
}

// RunUntil diffuses until every estimate is within tol of the true
// average (relative to 1+|avg|), returning the estimates and the number
// of steps taken. Stops at maxSteps regardless.
func RunUntil(k walk.Kernel, initial []float64, tol float64, maxSteps int) ([]float64, int) {
	n := k.Graph().N()
	if len(initial) != n {
		panic("diffusion: initial vector has wrong length")
	}
	avg := Average(initial)
	z := append([]float64(nil), initial...)
	next := make([]float64, n)
	steps := 0
	for ; steps < maxSteps; steps++ {
		if MaxDeviation(z, avg) <= tol*(1+math.Abs(avg)) {
			break
		}
		Step(k, z, next)
		z, next = next, z
	}
	return z, steps
}

// Average returns the mean of z.
func Average(z []float64) float64 {
	s := 0.0
	for _, v := range z {
		s += v
	}
	return s / float64(len(z))
}

// MaxDeviation returns max_r |z[r] − avg|.
func MaxDeviation(z []float64, avg float64) float64 {
	d := 0.0
	for _, v := range z {
		if dv := math.Abs(v - avg); dv > d {
			d = dv
		}
	}
	return d
}
