package diffusion

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/walk"
)

func TestAverageInvariant(t *testing.T) {
	g := graph.Grid2D(4, 4, true)
	k := walk.NewMaxDegree(g)
	initial := make([]float64, g.N())
	initial[0] = 160 // all load on one resource
	z := Run(k, initial, 25)
	if math.Abs(Average(z)-10) > 1e-9 {
		t.Fatalf("diffusion changed the average: %v", Average(z))
	}
}

func TestConvergesToAverage(t *testing.T) {
	g := graph.Complete(20)
	k := walk.NewMaxDegree(g)
	initial := make([]float64, g.N())
	initial[3] = 100
	z, steps := RunUntil(k, initial, 0.01, 10000)
	if steps == 10000 {
		t.Fatal("did not converge")
	}
	avg := 100.0 / 20
	for r, v := range z {
		if math.Abs(v-avg) > 0.01*(1+avg) {
			t.Fatalf("estimate[%d]=%v far from %v after %d steps", r, v, avg, steps)
		}
	}
}

func TestConvergenceSpeedTracksMixing(t *testing.T) {
	// Complete graph (τ = O(1)) must converge far faster than a cycle
	// (τ = Θ(n²)).
	mk := func(g *graph.Graph) int {
		k := walk.NewLazy(walk.NewMaxDegree(g))
		initial := make([]float64, g.N())
		initial[0] = float64(10 * g.N())
		_, steps := RunUntil(k, initial, 0.05, 1000000)
		return steps
	}
	fast := mk(graph.Complete(32))
	slow := mk(graph.Cycle(32))
	if fast >= slow {
		t.Fatalf("complete=%d cycle=%d: expected complete << cycle", fast, slow)
	}
	if slow < 10*fast {
		t.Fatalf("cycle (%d) should be at least 10x slower than complete (%d)", slow, fast)
	}
}

func TestRunZeroSteps(t *testing.T) {
	g := graph.Complete(4)
	k := walk.NewMaxDegree(g)
	initial := []float64{1, 2, 3, 4}
	z := Run(k, initial, 0)
	for i := range initial {
		if z[i] != initial[i] {
			t.Fatal("zero steps must be identity")
		}
	}
	// And must be a copy, not an alias.
	z[0] = 99
	if initial[0] == 99 {
		t.Fatal("Run aliased its input")
	}
}

func TestRunPanicsOnBadLength(t *testing.T) {
	g := graph.Complete(4)
	k := walk.NewMaxDegree(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(k, []float64{1, 2}, 3)
}

func TestMaxDeviation(t *testing.T) {
	if got := MaxDeviation([]float64{1, 5, 3}, 3); got != 2 {
		t.Fatalf("got %v", got)
	}
	if got := MaxDeviation([]float64{3, 3}, 3); got != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestAlreadyConverged(t *testing.T) {
	g := graph.Complete(5)
	k := walk.NewMaxDegree(g)
	z, steps := RunUntil(k, []float64{2, 2, 2, 2, 2}, 0.001, 100)
	if steps != 0 {
		t.Fatalf("flat vector took %d steps", steps)
	}
	for _, v := range z {
		if v != 2 {
			t.Fatal("flat vector changed")
		}
	}
}
