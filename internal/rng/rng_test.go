package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the public-domain splitmix64.c.
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4,
		0x06c45d188009454f, 0xf88bb8a8724c81ec,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("output %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	mk := map[string]func(uint64) Source{
		"splitmix": func(s uint64) Source { return NewSplitMix64(s) },
		"xoshiro":  func(s uint64) Source { return NewXoshiro256(s) },
		"pcg":      func(s uint64) Source { return NewPCG32(s) },
	}
	for name, f := range mk {
		a, b := f(42), f(42)
		for i := 0; i < 100; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("%s: same seed diverged at step %d: %#x vs %#x", name, i, x, y)
			}
		}
		c := f(43)
		same := true
		a2 := f(42)
		for i := 0; i < 10; i++ {
			if a2.Uint64() != c.Uint64() {
				same = false
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical prefix", name)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// A child stream must not replay the parent stream.
	parent := NewXoshiro256(7)
	child := parent.Split()
	collide := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			collide++
		}
	}
	if collide > 0 {
		t.Fatalf("parent/child collided %d times in 1000 draws", collide)
	}
}

func TestStreamPureFunction(t *testing.T) {
	a := Stream(99, 5)
	b := Stream(99, 5)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream is not a pure function of (seed, id)")
		}
	}
	c := Stream(99, 6)
	d := Stream(100, 5)
	if a.Uint64() == c.Uint64() && a.Uint64() == d.Uint64() {
		t.Fatal("distinct stream ids / seeds look identical")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewSeeded(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSeeded(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-squared goodness of fit over 10 buckets.
	r := NewSeeded(2024)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; critical value at p=0.001 is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("Intn not uniform: chi2=%.2f counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSeeded(3)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := NewSeeded(4)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewSeeded(5)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.4f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewSeeded(6)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewSeeded(7)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	orig := map[int]int{}
	for _, x := range xs {
		orig[x]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := map[int]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("multiset changed: key %d had %d now %d", k, v, got[k])
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewSeeded(8)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean %.4f far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewSeeded(9)
	const draws = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal moments off: mean=%.4f var=%.4f", mean, variance)
	}
}

func TestParetoSupportAndTail(t *testing.T) {
	r := NewSeeded(10)
	const xm, alpha = 2.0, 3.0
	over4 := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below xm: %v", v)
		}
		if v > 4 {
			over4++
		}
	}
	// P(X > 4) = (2/4)^3 = 0.125.
	p := float64(over4) / draws
	if math.Abs(p-0.125) > 0.01 {
		t.Fatalf("Pareto tail P(X>4)=%.4f want 0.125", p)
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0,1) did not panic")
		}
	}()
	NewSeeded(1).Pareto(0, 1)
}

func TestZipfDistribution(t *testing.T) {
	r := NewSeeded(11)
	z := NewZipf(4, 1) // P(k) ∝ 1/k over {1,2,3,4}; H4 = 25/12
	counts := make([]int, 5)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Sample(r)
		if k < 1 || k > 4 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	h4 := 1.0 + 0.5 + 1.0/3 + 0.25
	for k := 1; k <= 4; k++ {
		want := (1 / float64(k)) / h4
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Zipf P(%d)=%.4f want %.4f", k, got, want)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewSeeded(12)
	z := NewZipf(10, 0)
	counts := make([]int, 11)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	for k := 1; k <= 10; k++ {
		p := float64(counts[k]) / 100000
		if math.Abs(p-0.1) > 0.01 {
			t.Fatalf("Zipf(s=0) P(%d)=%.4f want 0.1", k, p)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewSeeded(13)
	cases := []struct {
		n int
		p float64
	}{{10, 0.5}, {64, 0.1}, {1000, 0.3}, {5000, 0.7}}
	for _, c := range cases {
		const draws = 20000
		sum := 0.0
		for i := 0; i < draws; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", c.n, c.p, k)
			}
			sum += float64(k)
		}
		mean := sum / draws
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(draws)+0.5 {
			t.Fatalf("Binomial(%d,%v) mean %.2f want %.2f", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewSeeded(14)
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100,0)=%d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100,1)=%d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0,.5)=%d", got)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewSeeded(15)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXoshiroJumpChangesState(t *testing.T) {
	a := NewXoshiro256(123)
	b := NewXoshiro256(123)
	b.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream overlaps original: %d/100 equal", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%#x,%#x) = (%#x,%#x) want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRandIntn(b *testing.B) {
	r := NewSeeded(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

func TestPoissonMoments(t *testing.T) {
	r := NewSeeded(11)
	// Both the exact (small-lambda) and approximate (large-lambda)
	// branches must match the Poisson mean and variance.
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		const n = 20000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(lambda))
			sum += k
			sumsq += k * k
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Fatalf("lambda=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.15*lambda+0.2 {
			t.Fatalf("lambda=%v: variance %v", lambda, variance)
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	r.Poisson(-1)
}
