package rng

import "fmt"

// Generator state export/import for checkpoint/restore. A Rand's
// position in its stream is 1–4 machine words plus a kind tag; the
// fixed-size [4]uint64 word block keeps the checkpoint layout uniform
// (and allocation-free) across generator kinds.

// Generator kind tags, stable across releases — they are written into
// snapshot files.
const (
	KindSplitMix64 uint8 = 1
	KindXoshiro256 uint8 = 2
	KindPCG32      uint8 = 3
)

// State exports the generator's kind tag and raw state words. Unused
// words are zero.
func (r *Rand) State() (kind uint8, words [4]uint64) {
	switch src := r.src.(type) {
	case *SplitMix64:
		return KindSplitMix64, [4]uint64{src.state}
	case *Xoshiro256:
		return KindXoshiro256, src.s
	case *PCG32:
		return KindPCG32, [4]uint64{src.state, src.inc}
	default:
		panic(fmt.Sprintf("rng: cannot export state of %T", r.src))
	}
}

// SetState replaces the generator's position with a previously
// exported (kind, words) pair. The kind must match the receiver's
// underlying generator — a checkpoint written with one generator
// family cannot silently resume on another.
func (r *Rand) SetState(kind uint8, words [4]uint64) error {
	switch src := r.src.(type) {
	case *SplitMix64:
		if kind != KindSplitMix64 {
			return fmt.Errorf("rng: state kind %d does not match SplitMix64 generator", kind)
		}
		src.state = words[0]
	case *Xoshiro256:
		if kind != KindXoshiro256 {
			return fmt.Errorf("rng: state kind %d does not match Xoshiro256 generator", kind)
		}
		src.s = words
	case *PCG32:
		if kind != KindPCG32 {
			return fmt.Errorf("rng: state kind %d does not match PCG32 generator", kind)
		}
		src.state, src.inc = words[0], words[1]
	default:
		return fmt.Errorf("rng: cannot restore state into %T", r.src)
	}
	return nil
}
