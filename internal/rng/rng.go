// Package rng provides fast, deterministic, splittable pseudo-random
// number generation for parallel simulations.
//
// The simulator runs thousands of independent trials concurrently and,
// inside each trial, makes randomised decisions for every resource or
// task in a round. Reproducibility requires that each logical actor
// (trial, resource, task) draw from its own stream whose seed is a pure
// function of the master seed and the actor identity, independent of
// goroutine scheduling. The standard library's math/rand global source
// is locked and non-splittable, so this package implements its own
// generators:
//
//   - SplitMix64: a tiny 64-bit generator used for seeding and stream
//     derivation (Steele, Lea, Flood 2014).
//   - Xoshiro256++: the workhorse generator (Blackman, Vigna 2019).
//   - PCG32: a compact alternative used in cross-validation tests
//     (O'Neill 2014).
//
// All generators implement the Source interface and are NOT safe for
// concurrent use; derive one per goroutine with Split or NewStream.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers. It mirrors
// the subset of math/rand.Rand the simulator needs, plus Split for
// deriving independent sub-streams.
type Source interface {
	// Uint64 returns the next 64 uniformly random bits.
	Uint64() uint64
	// Split returns a new Source whose stream is a deterministic
	// function of the receiver's current state but statistically
	// independent of the receiver's subsequent output.
	Split() Source
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is the canonical finaliser from the public-domain reference code.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMix64 is a 64-bit state generator. Its primary role is seeding
// other generators and deriving per-actor streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64 random bits.
func (s *SplitMix64) Uint64() uint64 { return splitmix64(&s.state) }

// Split derives an independent child stream.
func (s *SplitMix64) Split() Source { return &SplitMix64{state: s.Uint64()} }

// Xoshiro256 implements xoshiro256++ 1.0. It has 256 bits of state,
// passes BigCrush, and is the default simulator generator.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator seeded via SplitMix64 from seed, as
// recommended by the xoshiro authors (never seed with all zeros).
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	st := seed
	for i := range x.s {
		x.s[i] = splitmix64(&st)
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[0]+x.s[3], 23) + x.s[0]
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Split derives an independent child stream by drawing a fresh seed.
func (x *Xoshiro256) Split() Source { return NewXoshiro256(x.Uint64()) }

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls
// to Uint64. Jump can generate 2^128 non-overlapping subsequences for
// parallel use; kept for completeness alongside Split.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// PCG32 implements the PCG-XSH-RR 64/32 generator. It produces 32 bits
// per step; Uint64 concatenates two steps. Used to cross-check that
// simulation outcomes do not depend on generator family.
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 seeded with seed on the default stream.
func NewPCG32(seed uint64) *PCG32 {
	p := &PCG32{inc: 0xda3e39cb94b95bdb | 1}
	p.state = 0
	p.next()
	p.state += seed
	p.next()
	return p
}

func (p *PCG32) next() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31))
}

// Uint64 returns the next 64 random bits (two PCG steps).
func (p *PCG32) Uint64() uint64 { return uint64(p.next())<<32 | uint64(p.next()) }

// Split derives an independent child stream on a distinct PCG sequence.
func (p *PCG32) Split() Source {
	child := &PCG32{inc: (p.Uint64() << 1) | 1}
	child.state = 0
	child.next()
	child.state += p.Uint64()
	child.next()
	return child
}

// Rand wraps a Source with the distribution samplers the simulator
// needs. It is intentionally a small, allocation-free subset of
// math/rand.Rand. Not safe for concurrent use.
type Rand struct {
	src Source
}

// New returns a Rand drawing from src.
func New(src Source) *Rand { return &Rand{src: src} }

// NewSeeded returns a Rand backed by a fresh Xoshiro256 stream.
func NewSeeded(seed uint64) *Rand { return New(NewXoshiro256(seed)) }

// Stream derives the id-th deterministic sub-stream of a master seed.
// Stream(seed, id) is a pure function, so any actor can reconstruct its
// generator without coordination.
func Stream(seed, id uint64) *Rand {
	st := seed
	_ = splitmix64(&st) // decorrelate seed and id contributions
	st ^= id * 0x9e3779b97f4a7c15
	return NewSeeded(splitmix64(&st))
}

// Split derives an independent child Rand.
func (r *Rand) Split() *Rand { return &Rand{src: r.src.Split()} }

// Hash3 hashes (seed, a, b, c) through the SplitMix64 finaliser chain
// into one decorrelated 64-bit value — a stateless keyed draw. Unlike
// Stream it allocates nothing and advances no state, so a caller can
// make per-(task, round, attempt) randomised decisions whose outcome
// is a pure function of the key tuple, independent of evaluation
// order, shard partition or worker count. Each key is folded in with
// its own odd multiplier (the SplitMix64 mixing constants) before a
// finaliser step, so permuting the keys changes the output.
func Hash3(seed, a, b, c uint64) uint64 {
	st := seed
	_ = splitmix64(&st) // decorrelate seed and key contributions
	st ^= a * 0x9e3779b97f4a7c15
	_ = splitmix64(&st)
	st ^= b * 0xbf58476d1ce4e5b9
	_ = splitmix64(&st)
	st ^= c * 0x94d049bb133111eb
	return splitmix64(&st)
}

// HashFloat3 maps Hash3 onto [0,1) with 53 bits of precision — the
// keyed analogue of Rand.Float64 for probability draws.
func HashFloat3(seed, a, b, c uint64) float64 {
	return float64(Hash3(seed, a, b, c)>>11) / (1 << 53)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.src.Uint64() >> 1) }

// Intn returns an int uniform on [0,n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uint64 uniform on [0,n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire rejection sampling on the high 64 bits of the 128-bit
	// product keeps the result exactly uniform.
	for {
		v := r.src.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a float64 uniform on [0,1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Probabilities outside [0,1]
// clamp to certainty, which is the behaviour the protocols need when
// the analysis constant α would push a migration probability above 1.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inversion. Multiply by the desired mean.
func (r *Rand) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: support [xm, ∞),
// P(X > x) = (xm/x)^alpha. It panics if xm <= 0 or alpha <= 0.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires positive parameters")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Zipf samples an integer in [1,n] with P(k) ∝ k^(-s) using inversion
// over the precomputed CDF held in z.
type Zipf struct {
	cdf []float64 // cdf[k-1] = P(X <= k)
}

// NewZipf precomputes a Zipf(s) distribution on {1,…,n}.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf requires n > 0")
	}
	if s < 0 {
		panic("rng: Zipf requires s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // exact upper bound despite rounding
	return &Zipf{cdf: cdf}
}

// Sample draws one Zipf variate in [1, n].
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Poisson returns a Poisson(lambda) variate. Small rates use Knuth's
// uniform-product method (exact); large rates fall back to the normal
// approximation with continuity correction, which is accurate to well
// under a percent for lambda > 60 — plenty for the arrival processes
// that use it. It panics on a negative rate.
func (r *Rand) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: Poisson requires lambda >= 0")
	}
	if lambda == 0 {
		return 0
	}
	if lambda <= 60 {
		limit := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	k := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	return k
}

// Binomial returns a Binomial(n, p) variate. For small n it sums
// Bernoulli draws; for large n it uses the normal approximation with
// continuity correction clamped to [0,n], which is accurate enough for
// the workload generators that use it (np(1-p) large).
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial requires n >= 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
