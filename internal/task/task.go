// Package task models the weighted tasks (balls) of the paper and the
// workload generators the experiments need: weight distributions
// (constant, the two-point mixture of Figure 1, uniform ranges,
// exponential, Pareto, discretised Zipf) and initial placements
// (everything on one resource as in Section 7, uniform random,
// adversarial spreads).
//
// Weights are float64 with the paper's normalisation wmin ≥ 1 ("if this
// is not the case, then one can easily scale all parameters, such that
// wmin = 1"). Generators in this package enforce w ≥ 1.
package task

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Task is a weighted ball. ID is stable across migrations so traces can
// follow individual tasks.
type Task struct {
	ID     int
	Weight float64
}

// ValidWeight reports whether w satisfies the library's normalisation:
// finite and at least wmin = 1. Every entry point (static scenarios,
// open-system arrivals, Set construction) checks through this single
// predicate. w >= 1 is false for NaN, so NaN needs no separate test.
func ValidWeight(w float64) bool { return w >= 1 && !math.IsInf(w, 0) }

// Set is a collection of tasks plus its cached aggregate statistics
// (W, wmax, wmin) that the threshold formulas need. Static scenarios
// build a Set once and never mutate it; the open-system engine grows
// and shrinks a Set via Add and Remove. A removed task's ID is
// recycled: it goes on a free list and the next Add reuses it, so the
// ID space — and every array indexed by task ID — stays proportional
// to the in-flight population instead of growing with every arrival
// ever. An ID therefore identifies a task only while it is live.
type Set struct {
	tasks   []Task
	removed []bool // lazily allocated; nil in static runs
	free    []int  // recycled IDs, LIFO
	live    int
	liveTop int     // 1 + highest live ID (0 when no task is live)
	total   float64 // live weight only
	wmax    float64 // high-watermark over every task ever added
	wmin    float64 // low-watermark likewise
}

// NewSet builds a Set from weights, assigning IDs 0..len-1.
// It panics if weights is empty or any weight is below 1 or non-finite.
func NewSet(weights []float64) *Set {
	if len(weights) == 0 {
		panic("task: empty task set")
	}
	s := &Set{
		tasks: make([]Task, len(weights)),
		wmax:  weights[0],
		wmin:  weights[0],
	}
	for i, w := range weights {
		if !ValidWeight(w) {
			panic(fmt.Sprintf("task: weight %v at index %d violates wmin >= 1", w, i))
		}
		s.tasks[i] = Task{ID: i, Weight: w}
		s.total += w
		if w > s.wmax {
			s.wmax = w
		}
		if w < s.wmin {
			s.wmin = w
		}
	}
	s.live = len(weights)
	s.liveTop = len(weights)
	return s
}

// NewEmptySet returns a Set with no tasks, ready to grow via Add — the
// starting state of an open system before the first arrival.
func NewEmptySet() *Set { return &Set{} }

// Add registers a new task and returns it, reusing the most recently
// freed ID when one exists and extending the ID space otherwise. The
// watermarks wmax/wmin only ever widen, so thresholds computed from
// them stay valid for every task seen so far.
// It panics if w is below 1 or non-finite.
func (s *Set) Add(w float64) Task {
	if !ValidWeight(w) {
		panic(fmt.Sprintf("task: weight %v violates wmin >= 1", w))
	}
	var t Task
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		t = Task{ID: id, Weight: w}
		s.tasks[id] = t
		s.removed[id] = false
	} else {
		t = Task{ID: len(s.tasks), Weight: w}
		s.tasks = append(s.tasks, t)
		if s.removed != nil {
			s.removed = append(s.removed, false)
		}
	}
	s.live++
	if t.ID >= s.liveTop {
		s.liveTop = t.ID + 1
	}
	s.total += w
	if s.wmax == 0 || w > s.wmax {
		s.wmax = w
	}
	if s.wmin == 0 || w < s.wmin {
		s.wmin = w
	}
	return t
}

// Remove retires task id (a departure): its weight leaves W and the
// live count, and the ID joins the free list for the next Add to
// reuse. Callers that follow individual tasks across time must
// therefore treat (ID, liveness interval) as the identity, not the ID
// alone. It panics on an unknown or already-removed id.
//
// When a drain leaves the live population far below the ID-space
// high-watermark (a burst peak long past), Remove compacts the set —
// see shrink — so bursty traces release capacity instead of holding
// peak-sized arrays forever.
func (s *Set) Remove(id int) {
	if id < 0 || id >= len(s.tasks) {
		panic(fmt.Sprintf("task: Remove of unknown task %d", id))
	}
	if s.removed == nil {
		s.removed = make([]bool, len(s.tasks))
	}
	if s.removed[id] {
		panic(fmt.Sprintf("task: task %d removed twice", id))
	}
	s.removed[id] = true
	s.free = append(s.free, id)
	s.live--
	s.total -= s.tasks[id].Weight
	// Keep the live-top watermark tight. The scan is amortised O(1):
	// each step permanently lowers the watermark, and it only rises
	// again when an Add claims an ID at or above it.
	if id == s.liveTop-1 {
		for s.liveTop > 0 && s.removed[s.liveTop-1] {
			s.liveTop--
		}
	}
	if len(s.tasks) >= shrinkMinLen && s.live*4 <= len(s.tasks) && 2*s.liveTop <= len(s.tasks) {
		s.shrink()
	}
}

// shrinkMinLen is the ID-space size below which compaction is never
// attempted: small sets cost nothing to keep and shrinking them would
// only churn allocations.
const shrinkMinLen = 1024

// shrink is the long-trace compaction: it truncates the all-removed
// tail of the ID space above the live-top watermark, drops the
// truncated IDs from the free list (preserving the LIFO order of the
// survivors, so ID assignment stays a pure function of the operation
// sequence), and re-allocates the backing arrays so the burst-peak
// capacity is actually released to the collector. Only the tail can
// go — live IDs are pinned by every ID-indexed structure in the
// callers (stacks, location maps, service state) — so a live task near
// the top of the ID space blocks compaction (the watermark check in
// Remove, which also gives hysteresis: shrink only fires when it at
// least halves the arrays, so there is no shrink/grow thrash at the
// trigger boundary and no repeated scanning while blocked).
func (s *Set) shrink() {
	k := s.liveTop
	free := make([]int, 0, k)
	for _, id := range s.free {
		if id < k {
			free = append(free, id)
		}
	}
	s.free = free
	s.tasks = append(make([]Task, 0, k), s.tasks[:k]...)
	s.removed = append(make([]bool, 0, k), s.removed[:k]...)
}

// Removed reports whether task id has departed.
func (s *Set) Removed(id int) bool {
	return s.removed != nil && id >= 0 && id < len(s.removed) && s.removed[id]
}

// Live returns the number of in-flight (non-removed) tasks.
func (s *Set) Live() int { return s.live }

// M returns the size of the ID space: the high-watermark of
// simultaneously allocated IDs (equal to Live for static sets; with ID
// recycling this tracks the peak in-flight population, not the number
// of arrivals ever).
func (s *Set) M() int { return len(s.tasks) }

// W returns the total in-flight weight Σ w_i over live tasks.
func (s *Set) W() float64 { return s.total }

// WMax returns the maximum task weight ever seen (0 for an empty set).
func (s *Set) WMax() float64 { return s.wmax }

// WMin returns the minimum task weight ever seen (0 for an empty set).
func (s *Set) WMin() float64 { return s.wmin }

// WAvg returns the average live task weight W/Live (0 when empty).
func (s *Set) WAvg() float64 {
	if s.live == 0 {
		return 0
	}
	return s.total / float64(s.live)
}

// Task returns the i-th task.
func (s *Set) Task(i int) Task { return s.tasks[i] }

// Tasks returns the underlying slice; callers must not modify it.
func (s *Set) Tasks() []Task { return s.tasks }

// Weight returns the weight of task id.
func (s *Set) Weight(id int) float64 { return s.tasks[id].Weight }

// Distribution generates task weights.
type Distribution interface {
	// Weights returns m weights, each ≥ 1.
	Weights(m int, r *rng.Rand) []float64
	// Name identifies the distribution in reports.
	Name() string
}

// Appender is implemented by distributions that can emit weights into
// a caller-provided buffer. AppendWeights must consume the generator
// exactly like Weights, so the two are interchangeable in a
// deterministic run; the open-system engine uses it to keep
// steady-state arrival rounds allocation-free.
type Appender interface {
	AppendWeights(dst []float64, m int, r *rng.Rand) []float64
}

// AppendWeights appends m weights drawn from d to dst, using d's
// allocation-free path when it has one and falling back to Weights
// otherwise.
func AppendWeights(d Distribution, dst []float64, m int, r *rng.Rand) []float64 {
	if m <= 0 {
		return dst
	}
	if a, ok := d.(Appender); ok {
		return a.AppendWeights(dst, m, r)
	}
	return append(dst, d.Weights(m, r)...)
}

// Uniform gives every task the same weight w ≥ 1 (the classical
// unit-ball setting when w = 1, i.e. the Ackermann et al. baseline).
type Uniform struct{ W float64 }

// Weights implements Distribution.
func (u Uniform) Weights(m int, r *rng.Rand) []float64 {
	return u.AppendWeights(make([]float64, 0, m), m, r)
}

// AppendWeights implements Appender.
func (u Uniform) AppendWeights(dst []float64, m int, r *rng.Rand) []float64 {
	if u.W < 1 {
		panic("task: Uniform weight must be >= 1")
	}
	for i := 0; i < m; i++ {
		dst = append(dst, u.W)
	}
	return dst
}

// Name identifies the distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(w=%g)", u.W) }

// TwoPoint is the Figure 1 workload: K tasks of weight Heavy, the rest
// weight 1. If K exceeds m, all tasks are heavy.
type TwoPoint struct {
	Heavy float64 // weight of the heavy tasks (wmax), ≥ 1
	K     int     // number of heavy tasks
}

// Weights implements Distribution. The heavy tasks take the lowest IDs,
// matching the paper's "k tasks with weight wmax" description; placement
// strategies randomise positions independently of IDs.
func (t TwoPoint) Weights(m int, r *rng.Rand) []float64 {
	return t.AppendWeights(make([]float64, 0, m), m, r)
}

// AppendWeights implements Appender; the heavy tasks lead each batch.
func (t TwoPoint) AppendWeights(dst []float64, m int, r *rng.Rand) []float64 {
	if t.Heavy < 1 {
		panic("task: TwoPoint heavy weight must be >= 1")
	}
	if t.K < 0 {
		panic("task: TwoPoint K must be >= 0")
	}
	for i := 0; i < m; i++ {
		if i < t.K {
			dst = append(dst, t.Heavy)
		} else {
			dst = append(dst, 1)
		}
	}
	return dst
}

// Name identifies the distribution.
func (t TwoPoint) Name() string { return fmt.Sprintf("twopoint(heavy=%g,k=%d)", t.Heavy, t.K) }

// UniformRange draws weights uniformly from [Lo, Hi], Lo ≥ 1.
type UniformRange struct{ Lo, Hi float64 }

// Weights implements Distribution.
func (u UniformRange) Weights(m int, r *rng.Rand) []float64 {
	return u.AppendWeights(make([]float64, 0, m), m, r)
}

// AppendWeights implements Appender.
func (u UniformRange) AppendWeights(dst []float64, m int, r *rng.Rand) []float64 {
	if u.Lo < 1 || u.Hi < u.Lo {
		panic("task: UniformRange requires 1 <= Lo <= Hi")
	}
	for i := 0; i < m; i++ {
		dst = append(dst, u.Lo+(u.Hi-u.Lo)*r.Float64())
	}
	return dst
}

// Name identifies the distribution.
func (u UniformRange) Name() string { return fmt.Sprintf("range[%g,%g]", u.Lo, u.Hi) }

// Exponential draws 1 + Exp(mean = Mean−1), so the support starts at 1
// and the mean is Mean. Models service times with light tails.
type Exponential struct{ Mean float64 }

// Weights implements Distribution.
func (e Exponential) Weights(m int, r *rng.Rand) []float64 {
	return e.AppendWeights(make([]float64, 0, m), m, r)
}

// AppendWeights implements Appender.
func (e Exponential) AppendWeights(dst []float64, m int, r *rng.Rand) []float64 {
	if e.Mean < 1 {
		panic("task: Exponential mean must be >= 1")
	}
	for i := 0; i < m; i++ {
		dst = append(dst, 1+(e.Mean-1)*r.ExpFloat64())
	}
	return dst
}

// Name identifies the distribution.
func (e Exponential) Name() string { return fmt.Sprintf("exp(mean=%g)", e.Mean) }

// Pareto draws Pareto(1, Alpha) weights capped at Cap (0 = no cap).
// Heavy-tailed workloads; Talwar–Wieder study this regime for
// two-choice processes. Alpha > 1 gives a finite mean.
type Pareto struct {
	Alpha float64
	Cap   float64
}

// Weights implements Distribution.
func (p Pareto) Weights(m int, r *rng.Rand) []float64 {
	return p.AppendWeights(make([]float64, 0, m), m, r)
}

// AppendWeights implements Appender.
func (p Pareto) AppendWeights(dst []float64, m int, r *rng.Rand) []float64 {
	if p.Alpha <= 0 {
		panic("task: Pareto alpha must be positive")
	}
	for i := 0; i < m; i++ {
		w := r.Pareto(1, p.Alpha)
		if p.Cap > 0 && w > p.Cap {
			w = p.Cap
		}
		dst = append(dst, w)
	}
	return dst
}

// Name identifies the distribution.
func (p Pareto) Name() string { return fmt.Sprintf("pareto(a=%g,cap=%g)", p.Alpha, p.Cap) }

// ZipfWeights draws integer weights in {1..MaxW} with P(w) ∝ w^(-S).
type ZipfWeights struct {
	MaxW int
	S    float64
}

// Weights implements Distribution.
func (z ZipfWeights) Weights(m int, r *rng.Rand) []float64 {
	zipf := rng.NewZipf(z.MaxW, z.S)
	ws := make([]float64, m)
	for i := range ws {
		ws[i] = float64(zipf.Sample(r))
	}
	return ws
}

// Name identifies the distribution.
func (z ZipfWeights) Name() string { return fmt.Sprintf("zipf(maxw=%d,s=%g)", z.MaxW, z.S) }

// Placement assigns each task an initial resource.
type Placement interface {
	// Assign returns a slice of resource indices, one per task in s.
	Assign(s *Set, n int, r *rng.Rand) []int
	// Name identifies the placement in reports.
	Name() string
}

// SingleSource puts every task on one resource — the paper's Section 7
// setup ("all tasks are initially held by the same resource") and the
// worst case for user-controlled balancing.
type SingleSource struct{ Resource int }

// Assign implements Placement.
func (p SingleSource) Assign(s *Set, n int, r *rng.Rand) []int {
	if p.Resource < 0 || p.Resource >= n {
		panic("task: SingleSource resource out of range")
	}
	out := make([]int, s.M())
	for i := range out {
		out[i] = p.Resource
	}
	return out
}

// Name identifies the placement.
func (p SingleSource) Name() string { return fmt.Sprintf("single(r=%d)", p.Resource) }

// RandomPlacement scatters tasks independently and uniformly.
type RandomPlacement struct{}

// Assign implements Placement.
func (RandomPlacement) Assign(s *Set, n int, r *rng.Rand) []int {
	out := make([]int, s.M())
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

// Name identifies the placement.
func (RandomPlacement) Name() string { return "random" }

// BlockPlacement piles all tasks onto the first K resources
// round-robin — the Observation 8 adversarial setup generalised
// (tasks concentrated on a small part of the graph).
type BlockPlacement struct{ K int }

// Assign implements Placement.
func (p BlockPlacement) Assign(s *Set, n int, r *rng.Rand) []int {
	k := p.K
	if k <= 0 || k > n {
		panic("task: BlockPlacement K out of range")
	}
	out := make([]int, s.M())
	for i := range out {
		out[i] = i % k
	}
	return out
}

// Name identifies the placement.
func (p BlockPlacement) Name() string { return fmt.Sprintf("block(k=%d)", p.K) }

// ProperPlacement computes a first-fit proper assignment: no resource
// receives more than W/n + wmax total weight (the paper notes "it is
// trivial to calculate a proper assignment in a centralized manner.
// The simple first fit rule will work"). Used as the balanced reference
// state and as the target assignment in the Lemma 5 analysis harness.
type ProperPlacement struct{}

// Assign implements Placement. Tasks are placed largest-first to make
// first fit robust; the bound W/n + wmax holds regardless.
func (ProperPlacement) Assign(s *Set, n int, r *rng.Rand) []int {
	cap := s.W()/float64(n) + s.WMax()
	load := make([]float64, n)
	// Sort task indices by descending weight without mutating s.
	order := make([]int, s.M())
	for i := range order {
		order[i] = i
	}
	// Insertion-free counting sort is overkill; simple sort suffices.
	sortByWeightDesc(order, s)
	out := make([]int, s.M())
	next := 0
	for _, id := range order {
		w := s.Weight(id)
		placed := false
		for tries := 0; tries < n; tries++ {
			res := (next + tries) % n
			if load[res]+w <= cap {
				out[id] = res
				load[res] += w
				next = res
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen: first-fit with cap W/n + wmax always
			// succeeds (pigeonhole), but fail loudly if it ever does.
			panic("task: ProperPlacement failed; first-fit invariant broken")
		}
	}
	return out
}

// Name identifies the placement.
func (ProperPlacement) Name() string { return "proper(first-fit)" }

func sortByWeightDesc(order []int, s *Set) {
	// Simple in-place heapsort to avoid importing sort with closures in
	// a hot path; m is at most a few hundred thousand.
	n := len(order)
	less := func(a, b int) bool { // max-heap on ascending => pop biggest last
		return s.Weight(order[a]) < s.Weight(order[b])
	}
	swap := func(a, b int) { order[a], order[b] = order[b], order[a] }
	var down func(i, n int)
	down = func(i, n int) {
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			big := l
			if r := l + 1; r < n && less(l, r) {
				big = r
			}
			if !less(i, big) {
				return
			}
			swap(i, big)
			i = big
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i, n)
	}
	for end := n - 1; end > 0; end-- {
		swap(0, end)
		down(0, end)
	}
	// Heapsort leaves ascending order; reverse for descending.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		swap(i, j)
	}
}
