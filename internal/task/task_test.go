package task

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewSetAggregates(t *testing.T) {
	s := NewSet([]float64{1, 50, 2, 1})
	if s.M() != 4 || s.W() != 54 || s.WMax() != 50 || s.WMin() != 1 {
		t.Fatalf("aggregates wrong: m=%d W=%v max=%v min=%v", s.M(), s.W(), s.WMax(), s.WMin())
	}
	if s.WAvg() != 13.5 {
		t.Fatalf("avg=%v", s.WAvg())
	}
	if s.Task(1).ID != 1 || s.Task(1).Weight != 50 {
		t.Fatalf("task(1)=%+v", s.Task(1))
	}
	if s.Weight(2) != 2 {
		t.Fatalf("Weight(2)=%v", s.Weight(2))
	}
}

func TestNewSetRejectsBadWeights(t *testing.T) {
	for _, ws := range [][]float64{
		nil,
		{},
		{0.5},
		{1, math.NaN()},
		{1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weights %v should panic", ws)
				}
			}()
			NewSet(ws)
		}()
	}
}

func TestUniformDistribution(t *testing.T) {
	r := rng.NewSeeded(1)
	ws := Uniform{W: 3}.Weights(5, r)
	for _, w := range ws {
		if w != 3 {
			t.Fatalf("weights=%v", ws)
		}
	}
}

func TestTwoPoint(t *testing.T) {
	r := rng.NewSeeded(2)
	ws := TwoPoint{Heavy: 50, K: 3}.Weights(10, r)
	heavy, unit := 0, 0
	for _, w := range ws {
		switch w {
		case 50:
			heavy++
		case 1:
			unit++
		default:
			t.Fatalf("unexpected weight %v", w)
		}
	}
	if heavy != 3 || unit != 7 {
		t.Fatalf("heavy=%d unit=%d", heavy, unit)
	}
	// Figure 1 bookkeeping: W = m(W,k) + k·wmax.
	s := NewSet(ws)
	if s.W() != 7+3*50 {
		t.Fatalf("W=%v", s.W())
	}
}

func TestTwoPointAllHeavy(t *testing.T) {
	r := rng.NewSeeded(3)
	ws := TwoPoint{Heavy: 8, K: 99}.Weights(4, r)
	for _, w := range ws {
		if w != 8 {
			t.Fatalf("weights=%v", ws)
		}
	}
}

func TestUniformRangeBounds(t *testing.T) {
	r := rng.NewSeeded(4)
	ws := UniformRange{Lo: 2, Hi: 7}.Weights(10000, r)
	for _, w := range ws {
		if w < 2 || w > 7 {
			t.Fatalf("weight %v outside [2,7]", w)
		}
	}
	s := NewSet(ws)
	if math.Abs(s.WAvg()-4.5) > 0.1 {
		t.Fatalf("mean=%v want 4.5", s.WAvg())
	}
}

func TestExponentialMeanAndSupport(t *testing.T) {
	r := rng.NewSeeded(5)
	ws := Exponential{Mean: 5}.Weights(100000, r)
	sum := 0.0
	for _, w := range ws {
		if w < 1 {
			t.Fatalf("weight %v below 1", w)
		}
		sum += w
	}
	if mean := sum / float64(len(ws)); math.Abs(mean-5) > 0.1 {
		t.Fatalf("mean=%v want 5", mean)
	}
}

func TestParetoSupportAndCap(t *testing.T) {
	r := rng.NewSeeded(6)
	ws := Pareto{Alpha: 1.5, Cap: 100}.Weights(50000, r)
	for _, w := range ws {
		if w < 1 || w > 100 {
			t.Fatalf("weight %v outside [1,100]", w)
		}
	}
}

func TestZipfWeightsSupport(t *testing.T) {
	r := rng.NewSeeded(7)
	ws := ZipfWeights{MaxW: 16, S: 1.1}.Weights(20000, r)
	counts := map[float64]int{}
	for _, w := range ws {
		if w < 1 || w > 16 || w != math.Trunc(w) {
			t.Fatalf("weight %v not an integer in [1,16]", w)
		}
		counts[w]++
	}
	if counts[1] <= counts[2] {
		t.Fatal("Zipf should favour weight 1")
	}
}

func TestSingleSourcePlacement(t *testing.T) {
	r := rng.NewSeeded(8)
	s := NewSet([]float64{1, 1, 1})
	p := SingleSource{Resource: 2}.Assign(s, 5, r)
	for _, res := range p {
		if res != 2 {
			t.Fatalf("placement=%v", p)
		}
	}
}

func TestSingleSourceOutOfRange(t *testing.T) {
	r := rng.NewSeeded(9)
	s := NewSet([]float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SingleSource{Resource: 5}.Assign(s, 3, r)
}

func TestRandomPlacementCoverage(t *testing.T) {
	r := rng.NewSeeded(10)
	s := NewSet(Uniform{W: 1}.Weights(10000, r))
	p := RandomPlacement{}.Assign(s, 10, r)
	counts := make([]int, 10)
	for _, res := range p {
		if res < 0 || res >= 10 {
			t.Fatalf("resource %d out of range", res)
		}
		counts[res]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("resource %d got %d/10000 tasks (not uniform)", i, c)
		}
	}
}

func TestBlockPlacement(t *testing.T) {
	r := rng.NewSeeded(11)
	s := NewSet([]float64{1, 1, 1, 1, 1})
	p := BlockPlacement{K: 2}.Assign(s, 10, r)
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("block placement=%v want %v", p, want)
		}
	}
}

// Property: ProperPlacement never exceeds W/n + wmax on any resource.
func TestProperPlacementInvariant(t *testing.T) {
	r := rng.NewSeeded(12)
	f := func(seed uint16) bool {
		m := 20 + int(seed%200)
		n := 2 + int(seed%17)
		ws := Pareto{Alpha: 1.2, Cap: 40}.Weights(m, r)
		s := NewSet(ws)
		assign := ProperPlacement{}.Assign(s, n, r)
		load := make([]float64, n)
		for id, res := range assign {
			if res < 0 || res >= n {
				return false
			}
			load[res] += s.Weight(id)
		}
		bound := s.W()/float64(n) + s.WMax() + 1e-9
		for _, l := range load {
			if l > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProperPlacementTight(t *testing.T) {
	// m = n unit tasks: proper placement must not stack everything on
	// one resource even though the per-resource cap (1 + 1·n/n = 2)
	// would allow pairs.
	r := rng.NewSeeded(13)
	s := NewSet(Uniform{W: 1}.Weights(8, r))
	assign := ProperPlacement{}.Assign(s, 4, r)
	load := make([]float64, 4)
	for id, res := range assign {
		load[res] += s.Weight(id)
	}
	for _, l := range load {
		if l > 1+8.0/4.0+1e-9 {
			t.Fatalf("load %v exceeds W/n + wmax", l)
		}
	}
}

func TestDistributionNames(t *testing.T) {
	// Names feed report tables; just pin they are non-empty and distinct.
	names := map[string]bool{}
	for _, d := range []Distribution{
		Uniform{W: 1}, TwoPoint{Heavy: 50, K: 3}, UniformRange{Lo: 1, Hi: 2},
		Exponential{Mean: 4}, Pareto{Alpha: 2, Cap: 0}, ZipfWeights{MaxW: 8, S: 1},
	} {
		n := d.Name()
		if n == "" || names[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		names[n] = true
	}
}

func TestSortByWeightDesc(t *testing.T) {
	r := rng.NewSeeded(14)
	ws := UniformRange{Lo: 1, Hi: 100}.Weights(500, r)
	s := NewSet(ws)
	order := make([]int, s.M())
	for i := range order {
		order[i] = i
	}
	sortByWeightDesc(order, s)
	for i := 1; i < len(order); i++ {
		if s.Weight(order[i-1]) < s.Weight(order[i]) {
			t.Fatalf("order not descending at %d: %v < %v", i, s.Weight(order[i-1]), s.Weight(order[i]))
		}
	}
	// Must still be a permutation.
	seen := make([]bool, len(order))
	for _, id := range order {
		if seen[id] {
			t.Fatal("duplicate in order")
		}
		seen[id] = true
	}
}

func TestDynamicSetAddRemove(t *testing.T) {
	s := NewEmptySet()
	if s.M() != 0 || s.Live() != 0 || s.W() != 0 || s.WMax() != 0 || s.WAvg() != 0 {
		t.Fatalf("empty set aggregates: m=%d live=%d W=%v", s.M(), s.Live(), s.W())
	}
	a := s.Add(3)
	b := s.Add(7)
	if a.ID != 0 || b.ID != 1 || s.Live() != 2 || s.W() != 10 || s.WMax() != 7 || s.WMin() != 3 {
		t.Fatalf("after adds: %+v %+v live=%d W=%v max=%v min=%v", a, b, s.Live(), s.W(), s.WMax(), s.WMin())
	}
	s.Remove(a.ID)
	if s.Live() != 1 || s.W() != 7 || !s.Removed(a.ID) || s.Removed(b.ID) {
		t.Fatalf("after remove: live=%d W=%v", s.Live(), s.W())
	}
	// Watermarks never shrink: thresholds computed from them stay valid.
	if s.WMax() != 7 || s.WMin() != 3 {
		t.Fatalf("watermarks moved: max=%v min=%v", s.WMax(), s.WMin())
	}
	// Tombstoned IDs are recycled LIFO, so ID-indexed arrays stay
	// proportional to the in-flight population.
	c := s.Add(2)
	if c.ID != a.ID || s.M() != 2 || s.Live() != 2 || s.W() != 9 || s.Removed(c.ID) {
		t.Fatalf("post-tombstone add: %+v m=%d live=%d W=%v", c, s.M(), s.Live(), s.W())
	}
	if s.WAvg() != 4.5 {
		t.Fatalf("live average %v want 4.5", s.WAvg())
	}
	// The ID space only extends once the free list is drained.
	d := s.Add(5)
	if d.ID != 2 || s.M() != 3 || s.Live() != 3 || s.W() != 14 {
		t.Fatalf("free-list drained add: %+v m=%d live=%d W=%v", d, s.M(), s.Live(), s.W())
	}
	// Interleaved churn: removals feed later adds in LIFO order.
	s.Remove(b.ID)
	s.Remove(d.ID)
	e := s.Add(1)
	f := s.Add(1)
	if e.ID != d.ID || f.ID != b.ID || s.M() != 3 || s.Live() != 3 {
		t.Fatalf("LIFO recycling: e=%+v f=%+v m=%d live=%d", e, f, s.M(), s.Live())
	}
}

func TestDynamicSetPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	s := NewEmptySet()
	expectPanic("Add(0.5)", func() { s.Add(0.5) })
	id := s.Add(2).ID
	s.Remove(id)
	expectPanic("double Remove", func() { s.Remove(id) })
	expectPanic("Remove unknown", func() { s.Remove(99) })
}

func TestStaticSetUnaffectedByDynamicAPI(t *testing.T) {
	s := NewSet([]float64{1, 2, 3})
	if s.Live() != 3 || s.Removed(1) {
		t.Fatalf("static set dynamic view: live=%d", s.Live())
	}
}

// TestSetShrinkOnDrain pins the long-trace compaction: after a burst
// whose peak in-flight population dwarfs the survivors, draining the
// set must shrink the ID space and actually release the backing
// capacity, while keeping the live tasks, the watermarks, and the
// accounting intact.
func TestSetShrinkOnDrain(t *testing.T) {
	s := NewEmptySet()
	const burst = 8192
	for i := 0; i < burst; i++ {
		s.Add(1 + float64(i%7))
	}
	peakCap := cap(s.Tasks())
	// Drain the burst top-down, keeping the bottom 100 IDs live.
	for id := burst - 1; id >= 100; id-- {
		s.Remove(id)
	}
	if s.Live() != 100 {
		t.Fatalf("live %d after drain", s.Live())
	}
	if s.M() >= burst/4 {
		t.Fatalf("ID space %d did not shrink (peak %d)", s.M(), burst)
	}
	if got := cap(s.Tasks()); got >= peakCap {
		t.Fatalf("capacity %d not released (peak %d)", got, peakCap)
	}
	// Survivors and accounting intact.
	want := 0.0
	for id := 0; id < 100; id++ {
		if s.Removed(id) {
			t.Fatalf("live task %d marked removed", id)
		}
		want += 1 + float64(id%7)
	}
	if s.W() != want {
		t.Fatalf("W %v after shrink, want %v", s.W(), want)
	}
	// The shrunk set keeps working: Adds extend the compact ID space.
	tk := s.Add(3)
	if tk.ID < 0 || tk.ID > s.M() {
		t.Fatalf("post-shrink Add gave ID %d with M %d", tk.ID, s.M())
	}
}

// TestSetShrinkPinnedByLiveTail checks the safety property: a live
// task at the top of the ID space pins everything below it — shrink
// must never renumber or drop live IDs, only truncate an all-removed
// tail.
func TestSetShrinkPinnedByLiveTail(t *testing.T) {
	s := NewEmptySet()
	const n = 4096
	for i := 0; i < n; i++ {
		s.Add(2)
	}
	// Remove everything except the topmost ID: the tail is live, so the
	// ID space must stay at n even though live*4 <= M.
	for id := 0; id < n-1; id++ {
		s.Remove(id)
	}
	if s.M() != n || s.Live() != 1 || s.Removed(n-1) {
		t.Fatalf("pinned set: m=%d live=%d", s.M(), s.Live())
	}
	// Removing the pin clears the whole tail in one compaction.
	s.Remove(n - 1)
	if s.M() != 0 || s.Live() != 0 {
		t.Fatalf("fully drained set: m=%d live=%d", s.M(), s.Live())
	}
	if tk := s.Add(5); tk.ID != 0 {
		t.Fatalf("post-drain Add gave ID %d, want 0", tk.ID)
	}
}

// TestSetShrinkDeterministicIDs pins that compaction keeps ID
// assignment a pure function of the operation sequence: two sets fed
// the same Adds/Removes hand out identical IDs through a shrink.
func TestSetShrinkDeterministicIDs(t *testing.T) {
	runOps := func() []int {
		s := NewEmptySet()
		var ids []int
		for i := 0; i < 3000; i++ {
			s.Add(1)
		}
		for id := 2999; id >= 50; id-- {
			s.Remove(id)
		}
		for i := 0; i < 200; i++ {
			ids = append(ids, s.Add(1).ID)
		}
		return ids
	}
	a, b := runOps(), runOps()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ID assignment diverged across identical op sequences:\n%v\nvs\n%v", a, b)
	}
}

// TestPropertyFreeListNeverDoubleIssues drives long random Add/Remove
// sequences — including drain phases that trigger shrink compaction —
// against an oracle model, asserting the free-list contract: Add never
// returns an ID that is currently live, Remove retires exactly the
// requested live ID, and the Live/W aggregates always match the model.
// A double-issued ID would corrupt every ID-indexed structure in the
// open-system engine (locations, remaining-work, stacks), so this is
// the task layer's load-bearing property.
func TestPropertyFreeListNeverDoubleIssues(t *testing.T) {
	r := rng.NewSeeded(0xf4ee)
	for trial := 0; trial < 6; trial++ {
		s := NewEmptySet()
		live := map[int]float64{} // oracle: ID → weight
		var liveIDs []int         // for uniform removal picks
		wantW := 0.0
		ops := 4000 + r.Intn(4000)
		for op := 0; op < ops; op++ {
			// Phase-dependent add probability: grow, then drain hard so
			// shrink fires, then churn around the boundary.
			pAdd := 0.7
			switch {
			case op > ops/2 && op < 3*ops/4:
				pAdd = 0.05 // drain phase
			case op >= 3*ops/4:
				pAdd = 0.5
			}
			if len(liveIDs) == 0 || r.Bool(pAdd) {
				w := 1 + 9*r.Float64()
				tk := s.Add(w)
				if _, ok := live[tk.ID]; ok {
					t.Fatalf("trial %d op %d: Add double-issued live ID %d", trial, op, tk.ID)
				}
				if tk.Weight != w {
					t.Fatalf("trial %d op %d: Add returned weight %v, want %v", trial, op, tk.Weight, w)
				}
				live[tk.ID] = w
				liveIDs = append(liveIDs, tk.ID)
				wantW += w
			} else {
				i := r.Intn(len(liveIDs))
				id := liveIDs[i]
				liveIDs[i] = liveIDs[len(liveIDs)-1]
				liveIDs = liveIDs[:len(liveIDs)-1]
				if s.Removed(id) {
					t.Fatalf("trial %d op %d: model thinks %d is live, set says removed", trial, op, id)
				}
				wantW -= live[id]
				delete(live, id)
				s.Remove(id)
				// Retired means flagged removed — or gone entirely when
				// the removal triggered shrink and the ID sat in the
				// truncated all-removed tail.
				if !s.Removed(id) && id < s.M() {
					t.Fatalf("trial %d op %d: Remove(%d) did not retire the ID", trial, op, id)
				}
			}
			if s.Live() != len(live) {
				t.Fatalf("trial %d op %d: Live() = %d, model has %d", trial, op, s.Live(), len(live))
			}
			if math.Abs(s.W()-wantW) > 1e-6*(1+wantW) {
				t.Fatalf("trial %d op %d: W() = %v, model %v", trial, op, s.W(), wantW)
			}
		}
		// Every live ID must still resolve to its model weight, and no
		// removed ID may report live — across every compaction that
		// happened along the way.
		for id, w := range live {
			if s.Removed(id) || s.Weight(id) != w {
				t.Fatalf("trial %d: live task %d lost or mutated (removed=%v w=%v want %v)",
					trial, id, s.Removed(id), s.Weight(id), w)
			}
		}
		for id := 0; id < s.M(); id++ {
			if _, ok := live[id]; !ok && !s.Removed(id) {
				t.Fatalf("trial %d: ID %d reports live but the model removed it", trial, id)
			}
		}
	}
}
