package task

// Checkpoint export/restore for Set. The free list and the removed
// flags serialize verbatim — task-ID assignment is a pure function of
// the LIFO free-list order, so a resumed run hands out exactly the
// IDs the uninterrupted run would have. The weight aggregates (total,
// wmax, wmin) restore as recorded bit patterns, never recomputed:
// total is accumulated incrementally round by round and a fresh
// summation could land on a different last ulp, breaking the
// byte-identical resume invariant.

// SnapshotState exposes the set's complete internal state for
// serialization. The returned slices alias the set's internals; the
// caller must not modify them.
func (s *Set) SnapshotState() (tasks []Task, removed []bool, free []int, live, liveTop int, total, wmax, wmin float64) {
	return s.tasks, s.removed, s.free, s.live, s.liveTop, s.total, s.wmax, s.wmin
}

// RestoreState replaces the set's complete internal state with a
// previously exported snapshot. The set takes ownership of the
// slices.
func (s *Set) RestoreState(tasks []Task, removed []bool, free []int, live, liveTop int, total, wmax, wmin float64) {
	s.tasks = tasks
	s.removed = removed
	s.free = free
	s.live = live
	s.liveTop = liveTop
	s.total = total
	s.wmax = wmax
	s.wmin = wmin
}
