package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path through a temp file in the same
// directory followed by a rename, so a crash mid-write can never leave
// a torn snapshot under the final name — readers see either the old
// complete file or the new complete file. The temp file is fsynced
// before the rename; the directory sync after the rename is
// best-effort (some filesystems reject directory fsync).
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
