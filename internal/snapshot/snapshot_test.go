package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildSample encodes the canonical three-section test snapshot used
// across the round-trip, corruption and fuzz suites. It exercises
// every primitive, the exact-bit float contract (NaN payloads, ±Inf,
// negative zero) and empty slices.
func buildSample(enc *Encoder) []byte {
	enc.Reset()
	enc.Begin("alpha")
	enc.Uint8(0xAB)
	enc.Bool(true)
	enc.Bool(false)
	enc.Uint32(0xDEADBEEF)
	enc.Uint64(0x0123456789ABCDEF)
	enc.Int(-42)
	enc.Int32(-7)
	enc.Int64(math.MinInt64)
	enc.Float64(math.Pi)
	enc.End()
	enc.Begin("beta")
	enc.Bytes([]byte{1, 2, 3})
	enc.String("thresholds")
	enc.Ints([]int{3, -1, 1 << 40})
	enc.Int32s([]int32{-2, 9})
	enc.Int64s([]int64{1, -1})
	enc.Uint64s([]uint64{0, math.MaxUint64})
	enc.Float64s(nil)
	enc.End()
	enc.Begin("gamma")
	enc.Float64(math.Inf(1))
	enc.Float64(math.Inf(-1))
	enc.Float64(math.Copysign(0, -1))
	enc.Float64(math.Float64frombits(0x7FF8000000000001)) // NaN with a payload
	enc.Bools([]bool{true, false, true})
	enc.End()
	return enc.Finish()
}

// readSample decodes buildSample's snapshot, failing the test on any
// value drift.
func readSample(t *testing.T, data []byte) {
	t.Helper()
	d, err := NewDecoder(data)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	sec, err := d.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := sec.Uint8(); got != 0xAB {
		t.Fatalf("Uint8 = %#x", got)
	}
	if !sec.Bool() || sec.Bool() {
		t.Fatal("Bool round-trip drifted")
	}
	if got := sec.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %#x", got)
	}
	if got := sec.Uint64(); got != 0x0123456789ABCDEF {
		t.Fatalf("Uint64 = %#x", got)
	}
	if got := sec.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if got := sec.Int32(); got != -7 {
		t.Fatalf("Int32 = %d", got)
	}
	if got := sec.Int64(); got != math.MinInt64 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := sec.Float64(); got != math.Pi {
		t.Fatalf("Float64 = %v", got)
	}
	if err := sec.Done(); err != nil {
		t.Fatal(err)
	}
	sec, err = d.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := sec.Bytes(); string(got) != "\x01\x02\x03" {
		t.Fatalf("Bytes = %v", got)
	}
	if got := sec.String(); got != "thresholds" {
		t.Fatalf("String = %q", got)
	}
	ints := sec.Ints(nil)
	if len(ints) != 3 || ints[0] != 3 || ints[1] != -1 || ints[2] != 1<<40 {
		t.Fatalf("Ints = %v", ints)
	}
	i32 := sec.Int32s(nil)
	if len(i32) != 2 || i32[0] != -2 || i32[1] != 9 {
		t.Fatalf("Int32s = %v", i32)
	}
	i64 := sec.Int64s(nil)
	if len(i64) != 2 || i64[0] != 1 || i64[1] != -1 {
		t.Fatalf("Int64s = %v", i64)
	}
	u64 := sec.Uint64s(nil)
	if len(u64) != 2 || u64[0] != 0 || u64[1] != math.MaxUint64 {
		t.Fatalf("Uint64s = %v", u64)
	}
	if fs := sec.Float64s(nil); len(fs) != 0 {
		t.Fatalf("empty Float64s = %v", fs)
	}
	if err := sec.Done(); err != nil {
		t.Fatal(err)
	}
	sec, err = d.Section("gamma")
	if err != nil {
		t.Fatal(err)
	}
	if got := sec.Float64(); !math.IsInf(got, 1) {
		t.Fatalf("+Inf drifted to %v", got)
	}
	if got := sec.Float64(); !math.IsInf(got, -1) {
		t.Fatalf("-Inf drifted to %v", got)
	}
	if got := sec.Float64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0 drifted to %v (bits %#x)", got, math.Float64bits(got))
	}
	if got := sec.Float64(); math.Float64bits(got) != 0x7FF8000000000001 {
		t.Fatalf("NaN payload drifted to bits %#x", math.Float64bits(got))
	}
	bs := sec.Bools(nil)
	if len(bs) != 3 || !bs[0] || bs[1] || !bs[2] {
		t.Fatalf("Bools = %v", bs)
	}
	if err := sec.Done(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTrip pins exact-value round-tripping of every primitive.
func TestRoundTrip(t *testing.T) {
	readSample(t, buildSample(NewEncoder()))
}

// TestEncoderReuse pins the reusable-buffer contract: Reset cycles
// produce identical bytes and, once the buffer reached its high-water
// mark, encoding allocates nothing.
func TestEncoderReuse(t *testing.T) {
	enc := NewEncoder()
	first := append([]byte(nil), buildSample(enc)...)
	second := buildSample(enc)
	if string(first) != string(second) {
		t.Fatal("re-encoding after Reset changed the bytes")
	}
	if allocs := testing.AllocsPerRun(50, func() { buildSample(enc) }); allocs != 0 {
		t.Fatalf("warm encoder allocates %v times per snapshot, want 0", allocs)
	}
}

// TestTruncationMatrix cuts the file at EVERY length shorter than the
// original: each prefix must fail — at construction or while reading —
// and never panic or decode cleanly.
func TestTruncationMatrix(t *testing.T) {
	data := buildSample(NewEncoder())
	for cut := 0; cut < len(data); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation to %d bytes panicked: %v", cut, r)
				}
			}()
			if _, err := NewDecoder(data[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes passed NewDecoder (file checksum should fail)", cut, len(data))
			}
		}()
	}
}

// TestBitFlipMatrix flips one bit at every byte offset: the file-level
// checksum must reject every mutation before any state is parsed.
func TestBitFlipMatrix(t *testing.T) {
	data := buildSample(NewEncoder())
	mut := make([]byte, len(data))
	for off := 0; off < len(data); off++ {
		copy(mut, data)
		mut[off] ^= 0x04
		if _, err := NewDecoder(mut); err == nil {
			t.Fatalf("bit flip at offset %d passed NewDecoder", off)
		}
	}
}

// TestSectionOrderViolation pins that consuming sections out of order
// is a structured error naming both sections, not a misassembled
// restore.
func TestSectionOrderViolation(t *testing.T) {
	data := buildSample(NewEncoder())
	d, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Section("beta")
	if err == nil {
		t.Fatal("out-of-order Section succeeded")
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *snapshot.Error", err)
	}
	if se.Section != "alpha" || !strings.Contains(se.Msg, "order violation") {
		t.Fatalf("unexpected structured error: %+v", se)
	}
}

// TestStructuredReadErrors drives the cursor's failure modes: reads
// past the payload end, bad bool bytes, giant declared lengths and
// unconsumed bytes must each latch an *Error carrying the section name
// and offset.
func TestStructuredReadErrors(t *testing.T) {
	enc := NewEncoder()
	enc.Reset()
	enc.Begin("s")
	enc.Uint32(7)
	enc.End()
	data := enc.Finish()

	d, _ := NewDecoder(data)
	sec, err := d.Section("s")
	if err != nil {
		t.Fatal(err)
	}
	sec.Uint64() // 8 bytes from a 4-byte payload
	var se *Error
	if !errors.As(sec.Err(), &se) || se.Section != "s" || !strings.Contains(se.Msg, "truncated") {
		t.Fatalf("overread error = %v", sec.Err())
	}
	if got := sec.Uint64(); got != 0 {
		t.Fatalf("read after latched error returned %d, want 0", got)
	}

	enc.Reset()
	enc.Begin("s")
	enc.Uint8(2) // not a valid bool byte
	enc.Uint32(math.MaxUint32)
	enc.End()
	data = enc.Finish()
	d, _ = NewDecoder(data)
	sec, _ = d.Section("s")
	sec.Bool()
	if err := sec.Err(); err == nil || !strings.Contains(err.Error(), "bad bool") {
		t.Fatalf("bad bool byte error = %v", err)
	}

	d, _ = NewDecoder(data)
	sec, _ = d.Section("s")
	sec.Uint8()
	sec.Float64s(nil) // declared length 2^32-1 with no bytes behind it
	if err := sec.Err(); err == nil || !strings.Contains(err.Error(), "exceeds remaining") {
		t.Fatalf("giant length error = %v", err)
	}

	d, _ = NewDecoder(data)
	sec, _ = d.Section("s")
	sec.Uint8()
	if err := sec.Done(); err == nil || !strings.Contains(err.Error(), "left unread") {
		t.Fatalf("leftover-bytes error = %v", err)
	}
}

// TestDecoderClose pins the trailing checks: unconsumed sections and
// trailing garbage both fail Close.
func TestDecoderClose(t *testing.T) {
	data := buildSample(NewEncoder())
	d, _ := NewDecoder(data)
	if _, err := d.Section("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err == nil || !strings.Contains(err.Error(), "sections consumed") {
		t.Fatalf("early Close error = %v", err)
	}

	// A file whose header declares fewer sections than the body holds:
	// re-seal with a valid CRC so only Close's trailing-bytes check can
	// catch it.
	enc := NewEncoder()
	enc.Begin("only")
	enc.Uint8(1)
	enc.End()
	sealed := enc.Finish()
	body := append([]byte(nil), sealed[:len(sealed)-4]...)
	binary.LittleEndian.PutUint32(body[len(magic)+4:], 0) // declare zero sections
	body = binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
	d, err := NewDecoder(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err == nil || !strings.Contains(err.Error(), "trailing garbage") {
		t.Fatalf("trailing-garbage Close error = %v", err)
	}
}

// TestEncoderMisusePanics pins that API misuse (not input corruption)
// panics loudly.
func TestEncoderMisusePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nested Begin", func() {
		enc := NewEncoder()
		enc.Begin("a")
		enc.Begin("b")
	})
	mustPanic("End without Begin", func() { NewEncoder().End() })
	mustPanic("Finish inside section", func() {
		enc := NewEncoder()
		enc.Begin("a")
		enc.Finish()
	})
	mustPanic("Begin after Finish", func() {
		enc := NewEncoder()
		enc.Finish()
		enc.Begin("a")
	})
	mustPanic("empty section name", func() { NewEncoder().Begin("") })
}

// TestVersionRejected pins the format-revision gate.
func TestVersionRejected(t *testing.T) {
	data := append([]byte(nil), buildSample(NewEncoder())...)
	data[len(magic)] = 99 // version field
	if _, err := NewDecoder(data); err == nil {
		t.Fatal("future format version passed NewDecoder")
	}
}

// TestWriteFileAtomic pins the durable-write helper: the final file
// holds exactly the bytes, replaces an existing file, and leaves no
// temporary droppings behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.snap")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("file holds %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after atomic writes, want 1", len(entries))
	}
}
