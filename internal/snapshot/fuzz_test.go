package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeeds returns the seed inputs committed under
// testdata/fuzz/FuzzDecoder: a pristine snapshot plus the three
// corruption families the decoder must reject without panicking —
// truncated, bit-flipped, and section-reordered files.
func fuzzSeeds() map[string][]byte {
	enc := NewEncoder()
	valid := append([]byte(nil), buildSample(enc)...)

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40

	// Same sections, written in a different order: framing and
	// checksums are all valid, only the order contract is violated.
	enc.Reset()
	enc.Begin("beta")
	enc.Uint8(1)
	enc.End()
	enc.Begin("alpha")
	enc.Uint8(2)
	enc.End()
	enc.Begin("gamma")
	enc.Uint8(3)
	enc.End()
	reordered := append([]byte(nil), enc.Finish()...)

	return map[string][]byte{
		"valid":             valid,
		"truncated":         valid[:len(valid)*2/3],
		"bit-flipped":       flipped,
		"section-reordered": reordered,
		"empty":             {},
		"magic-only":        []byte(magic),
	}
}

// FuzzDecoder feeds arbitrary bytes through the full decode path —
// construction, in-order section walk, every read primitive, Done and
// Close. The contract under fuzzing is purely "never panic, never
// allocate absurdly": corrupt input must surface as an error.
func FuzzDecoder(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			return
		}
		for _, name := range []string{"alpha", "beta", "gamma"} {
			sec, err := d.Section(name)
			if err != nil {
				return
			}
			sec.Uint8()
			sec.Bool()
			sec.Uint32()
			sec.Uint64()
			sec.Int()
			sec.Int32()
			sec.Int64()
			sec.Float64()
			sec.Bytes()
			_ = sec.String()
			sec.Ints(nil)
			sec.Int32s(nil)
			sec.Int64s(nil)
			sec.Uint64s(nil)
			sec.Float64s(nil)
			sec.Bools(nil)
			sec.Len(8)
			_ = sec.Done()
			_ = sec.Err()
		}
		_ = d.Close()
	})
}

// TestGenerateFuzzCorpus regenerates the committed seed corpus. It is
// a no-op unless SNAPSHOT_GEN_CORPUS=1 is set, so routine test runs
// never rewrite testdata.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("SNAPSHOT_GEN_CORPUS") != "1" {
		t.Skip("set SNAPSHOT_GEN_CORPUS=1 to regenerate testdata/fuzz/FuzzDecoder")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecoder")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
