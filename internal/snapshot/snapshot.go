// Package snapshot is the checkpoint container format of the dynamic
// engine: a versioned, sectioned, checksummed binary layout with an
// allocation-conscious encoder and a hardened decoder.
//
// A snapshot file is
//
//	magic "LBSNAP\r\n" (8 bytes)       — the \r\n catches text-mode mangling
//	version uint32                      — format revision, currently 1
//	section count uint32
//	section*:
//	    name length uint8, name bytes   — short ASCII identifier
//	    payload length uint32
//	    payload bytes
//	    payload CRC32-Castagnoli uint32
//	file CRC32-Castagnoli uint32        — over everything before it
//
// All integers are little-endian. Floats travel as IEEE-754 bit
// patterns (math.Float64bits), never as decimal text, because the
// engine's headline invariant — a resumed run finishes byte-identical
// to the uninterrupted one — requires every incrementally-accumulated
// float to round-trip exactly.
//
// The decoder is paranoid by construction: the file checksum is
// verified before any section is parsed, every section payload carries
// its own CRC, sections must be consumed in the exact order the
// restorer asks for them (a reordered file is a structured error, not
// a silently misassembled state), and every primitive read is
// bounds-checked. Corruption never panics and never loads silently; it
// surfaces as an *Error naming the section and byte offset.
//
// The encoder reuses one growing buffer across Reset cycles, so an
// engine checkpointing on a cadence allocates only until the buffer
// reaches its high-water mark — steady-state rounds stay at zero
// allocations even with checkpointing enabled.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the current snapshot format revision. Decoders reject
// files written by a different revision.
const Version = 1

const (
	magic      = "LBSNAP\r\n"
	headerSize = len(magic) + 4 + 4 // magic + version + section count
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Error is a structured decode failure: the section being parsed (""
// for file-level framing), the byte offset the problem was detected
// at, and what went wrong.
type Error struct {
	Section string // section name, "" for file-level framing errors
	Offset  int    // byte offset into the file (or section payload)
	Msg     string
}

func (e *Error) Error() string {
	if e.Section == "" {
		return fmt.Sprintf("snapshot: offset %d: %s", e.Offset, e.Msg)
	}
	return fmt.Sprintf("snapshot: section %q offset %d: %s", e.Section, e.Offset, e.Msg)
}

// Encoder builds a snapshot into one reusable buffer. The zero value
// is not ready; call NewEncoder (or Reset) first. Usage:
//
//	enc.Reset()
//	enc.Begin("meta"); enc.Uint64(...); enc.End()
//	...
//	data := enc.Finish()
//
// Begin/End pairs may not nest; misuse panics (it is a programming
// error, not an input error).
type Encoder struct {
	buf          []byte
	payloadStart int // index where the open section's payload begins
	lenAt        int // index of the open section's length field
	sections     int
	inSection    bool
	finished     bool
}

// NewEncoder returns an encoder ready for Begin.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.Reset()
	return e
}

// Reset discards any partial or finished snapshot and starts a new
// one, reusing the internal buffer.
func (e *Encoder) Reset() {
	e.buf = append(e.buf[:0], magic...)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, Version)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, 0) // section count, patched in Finish
	e.sections = 0
	e.inSection = false
	e.finished = false
}

// Begin opens a named section. Names must be 1..255 bytes.
func (e *Encoder) Begin(name string) {
	switch {
	case e.finished:
		panic("snapshot: Begin after Finish (Reset first)")
	case e.inSection:
		panic("snapshot: Begin inside an open section")
	case len(name) == 0 || len(name) > 255:
		panic("snapshot: section name must be 1..255 bytes")
	}
	e.inSection = true
	e.buf = append(e.buf, byte(len(name)))
	e.buf = append(e.buf, name...)
	e.lenAt = len(e.buf)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, 0) // payload length, patched in End
	e.payloadStart = len(e.buf)
}

// End closes the open section, patching its length and appending the
// payload checksum.
func (e *Encoder) End() {
	if !e.inSection {
		panic("snapshot: End without Begin")
	}
	payload := e.buf[e.payloadStart:]
	if len(payload) > math.MaxUint32 {
		panic("snapshot: section payload exceeds 4 GiB")
	}
	binary.LittleEndian.PutUint32(e.buf[e.lenAt:], uint32(len(payload)))
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.Checksum(payload, castagnoli))
	e.sections++
	e.inSection = false
}

// Finish patches the section count, appends the file checksum and
// returns the complete snapshot. The returned slice aliases the
// encoder's internal buffer — it is valid until the next Reset.
func (e *Encoder) Finish() []byte {
	if e.inSection {
		panic("snapshot: Finish inside an open section")
	}
	if !e.finished {
		binary.LittleEndian.PutUint32(e.buf[len(magic)+4:], uint32(e.sections))
		e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.Checksum(e.buf, castagnoli))
		e.finished = true
	}
	return e.buf
}

// Uint8 appends one byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Uint32 appends a little-endian uint32.
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// Uint64 appends a little-endian uint64.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Int appends an int as its two's-complement 64-bit pattern.
func (e *Encoder) Int(v int) { e.Uint64(uint64(int64(v))) }

// Int64 appends an int64 as its two's-complement pattern.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Int32 appends an int32 as its two's-complement 32-bit pattern.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Float64 appends the exact IEEE-754 bit pattern of v.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Ints appends a length-prefixed []int.
func (e *Encoder) Ints(s []int) {
	e.Uint32(uint32(len(s)))
	for _, v := range s {
		e.Int(v)
	}
}

// Int32s appends a length-prefixed []int32.
func (e *Encoder) Int32s(s []int32) {
	e.Uint32(uint32(len(s)))
	for _, v := range s {
		e.Int32(v)
	}
}

// Int64s appends a length-prefixed []int64.
func (e *Encoder) Int64s(s []int64) {
	e.Uint32(uint32(len(s)))
	for _, v := range s {
		e.Int64(v)
	}
}

// Uint64s appends a length-prefixed []uint64.
func (e *Encoder) Uint64s(s []uint64) {
	e.Uint32(uint32(len(s)))
	for _, v := range s {
		e.Uint64(v)
	}
}

// Float64s appends a length-prefixed []float64, bit patterns only.
func (e *Encoder) Float64s(s []float64) {
	e.Uint32(uint32(len(s)))
	for _, v := range s {
		e.Float64(v)
	}
}

// Bools appends a length-prefixed []bool.
func (e *Encoder) Bools(s []bool) {
	e.Uint32(uint32(len(s)))
	for _, v := range s {
		e.Bool(v)
	}
}

// Decoder parses a snapshot produced by Encoder. Construction
// verifies the framing and the file checksum; Section then yields the
// sections strictly in file order.
type Decoder struct {
	data []byte
	off  int
	nsec int // declared section count
	read int // sections handed out so far
}

// NewDecoder validates the header, the trailer checksum and the
// declared section count of data. It never panics on malformed input.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < headerSize+4 {
		return nil, &Error{Offset: len(data), Msg: fmt.Sprintf("file truncated: %d bytes, need at least %d", len(data), headerSize+4)}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &Error{Offset: 0, Msg: "bad magic (not a snapshot file)"}
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):])
	if ver != Version {
		return nil, &Error{Offset: len(magic), Msg: fmt.Sprintf("unsupported format version %d (want %d)", ver, Version)}
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, &Error{Offset: len(body), Msg: fmt.Sprintf("file checksum mismatch: computed %08x, stored %08x", got, want)}
	}
	d := &Decoder{data: body, off: headerSize}
	d.nsec = int(binary.LittleEndian.Uint32(data[len(magic)+4:]))
	return d, nil
}

// Section parses the next section and verifies it is the one the
// caller expects — a reordered or mislabelled file fails here with a
// structured error instead of restoring the wrong state.
func (d *Decoder) Section(name string) (*Section, error) {
	if d.read == d.nsec {
		return nil, &Error{Section: name, Offset: d.off, Msg: fmt.Sprintf("expected section %q but all %d sections are consumed", name, d.nsec)}
	}
	if d.off >= len(d.data) {
		return nil, &Error{Section: name, Offset: d.off, Msg: "file truncated before section header"}
	}
	nameLen := int(d.data[d.off])
	hdr := d.off + 1
	if nameLen == 0 || hdr+nameLen+4 > len(d.data) {
		return nil, &Error{Section: name, Offset: d.off, Msg: "file truncated inside section header"}
	}
	got := string(d.data[hdr : hdr+nameLen])
	plen := int(binary.LittleEndian.Uint32(d.data[hdr+nameLen:]))
	payloadAt := hdr + nameLen + 4
	if payloadAt+plen+4 > len(d.data) {
		return nil, &Error{Section: got, Offset: d.off, Msg: fmt.Sprintf("file truncated inside section payload (%d bytes declared, %d available)", plen, len(d.data)-payloadAt-4)}
	}
	payload := d.data[payloadAt : payloadAt+plen]
	crc := binary.LittleEndian.Uint32(d.data[payloadAt+plen:])
	if got != name {
		return nil, &Error{Section: got, Offset: d.off, Msg: fmt.Sprintf("section order violation: expected %q, found %q", name, got)}
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != crc {
		return nil, &Error{Section: got, Offset: payloadAt, Msg: fmt.Sprintf("section checksum mismatch: computed %08x, stored %08x", sum, crc)}
	}
	d.off = payloadAt + plen + 4
	d.read++
	return &Section{name: got, data: payload}, nil
}

// Close verifies every declared section was consumed and nothing
// trails the last one.
func (d *Decoder) Close() error {
	if d.read != d.nsec {
		return &Error{Offset: d.off, Msg: fmt.Sprintf("%d of %d sections consumed at close", d.read, d.nsec)}
	}
	if d.off != len(d.data) {
		return &Error{Offset: d.off, Msg: fmt.Sprintf("%d bytes of trailing garbage after the last section", len(d.data)-d.off)}
	}
	return nil
}

// Section is a cursor over one verified section payload. Reads past
// the end latch an error and return zero values; check Done (or Err)
// once after the reads.
type Section struct {
	name string
	data []byte
	off  int
	err  error
}

// Name returns the section's name.
func (s *Section) Name() string { return s.name }

// Err returns the first read error, if any.
func (s *Section) Err() error { return s.err }

// Done returns the first read error, or an error if the payload was
// not fully consumed (a length drift between writer and reader).
func (s *Section) Done() error {
	if s.err != nil {
		return s.err
	}
	if s.off != len(s.data) {
		return &Error{Section: s.name, Offset: s.off, Msg: fmt.Sprintf("%d bytes left unread in section", len(s.data)-s.off)}
	}
	return nil
}

func (s *Section) fail(format string, a ...any) {
	if s.err == nil {
		s.err = &Error{Section: s.name, Offset: s.off, Msg: fmt.Sprintf(format, a...)}
	}
}

func (s *Section) take(n int) []byte {
	if s.err != nil {
		return nil
	}
	if s.off+n > len(s.data) {
		s.fail("section truncated: need %d bytes, %d left", n, len(s.data)-s.off)
		return nil
	}
	b := s.data[s.off : s.off+n]
	s.off += n
	return b
}

// Uint8 reads one byte.
func (s *Section) Uint8() uint8 {
	b := s.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool; any value other than 0 or 1 is a
// decode error (corruption shows up instead of folding to true).
func (s *Section) Bool() bool {
	b := s.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		s.fail("bad bool byte %#x", b[0])
		return false
	}
	return b[0] == 1
}

// Uint32 reads a little-endian uint32.
func (s *Section) Uint32() uint32 {
	b := s.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a little-endian uint64.
func (s *Section) Uint64() uint64 {
	b := s.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a two's-complement 64-bit int.
func (s *Section) Int() int { return int(int64(s.Uint64())) }

// Int64 reads a two's-complement 64-bit int.
func (s *Section) Int64() int64 { return int64(s.Uint64()) }

// Int32 reads a two's-complement 32-bit int.
func (s *Section) Int32() int32 { return int32(s.Uint32()) }

// Float64 reads an IEEE-754 bit pattern.
func (s *Section) Float64() float64 { return math.Float64frombits(s.Uint64()) }

// count reads a length prefix and bounds it against the bytes
// actually remaining (elemSize bytes per element), so a corrupted
// length cannot drive a giant allocation.
func (s *Section) count(elemSize int) int {
	n := int(s.Uint32())
	if s.err != nil {
		return 0
	}
	if n*elemSize > len(s.data)-s.off {
		s.fail("declared length %d exceeds remaining payload (%d bytes)", n, len(s.data)-s.off)
		return 0
	}
	return n
}

// Bytes reads a length-prefixed byte string (aliasing the payload).
func (s *Section) Bytes() []byte {
	n := s.count(1)
	if s.err != nil {
		return nil
	}
	return s.take(n)
}

// String reads a length-prefixed string.
func (s *Section) String() string { return string(s.Bytes()) }

// Ints reads a length-prefixed []int into dst[:0].
func (s *Section) Ints(dst []int) []int {
	n := s.count(8)
	dst = dst[:0]
	for i := 0; i < n && s.err == nil; i++ {
		dst = append(dst, s.Int())
	}
	return dst
}

// Int32s reads a length-prefixed []int32 into dst[:0].
func (s *Section) Int32s(dst []int32) []int32 {
	n := s.count(4)
	dst = dst[:0]
	for i := 0; i < n && s.err == nil; i++ {
		dst = append(dst, s.Int32())
	}
	return dst
}

// Int64s reads a length-prefixed []int64 into dst[:0].
func (s *Section) Int64s(dst []int64) []int64 {
	n := s.count(8)
	dst = dst[:0]
	for i := 0; i < n && s.err == nil; i++ {
		dst = append(dst, s.Int64())
	}
	return dst
}

// Uint64s reads a length-prefixed []uint64 into dst[:0].
func (s *Section) Uint64s(dst []uint64) []uint64 {
	n := s.count(8)
	dst = dst[:0]
	for i := 0; i < n && s.err == nil; i++ {
		dst = append(dst, s.Uint64())
	}
	return dst
}

// Float64s reads a length-prefixed []float64 into dst[:0].
func (s *Section) Float64s(dst []float64) []float64 {
	n := s.count(8)
	dst = dst[:0]
	for i := 0; i < n && s.err == nil; i++ {
		dst = append(dst, s.Float64())
	}
	return dst
}

// Bools reads a length-prefixed []bool into dst[:0].
func (s *Section) Bools(dst []bool) []bool {
	n := s.count(1)
	dst = dst[:0]
	for i := 0; i < n && s.err == nil; i++ {
		dst = append(dst, s.Bool())
	}
	return dst
}

// Len reads a bare length prefix for caller-managed element loops,
// bounded by the remaining payload at elemSize bytes per element.
func (s *Section) Len(elemSize int) int { return s.count(elemSize) }
