package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"path(n=3)\"", "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Each undirected edge appears once.
	if strings.Count(out, "--") != 2 {
		t.Fatalf("edge count wrong:\n%s", out)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.NewSeeded(1)
	orig := GenerateConnected(50, func() *Graph { return ErdosRenyi(25, 0.25, r) })
	var buf bytes.Buffer
	if err := orig.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.M() != orig.M() {
		t.Fatalf("size changed: %d/%d -> %d/%d", orig.N(), orig.M(), back.N(), back.M())
	}
	for v := 0; v < orig.N(); v++ {
		for _, u := range orig.Neighbors(v) {
			if !back.HasEdge(v, int(u)) {
				t.Fatalf("edge (%d,%d) lost", v, u)
			}
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"no header":    "0 1\n",
		"bad header":   "vertices 3\n",
		"neg count":    "n -2\n",
		"bad edge":     "n 3\nzero one\n",
		"out of range": "n 2\n0 5\n",
		"empty":        "",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList("x", strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadEdgeListIsolatedVertices(t *testing.T) {
	g, err := ReadEdgeList("iso", strings.NewReader("n 5\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.Degree(4) != 0 {
		t.Fatalf("isolated vertices lost: n=%d", g.N())
	}
}
