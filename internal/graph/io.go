package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visual
// inspection of small instances (lbgraph -dot).
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", g.name)
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "  %d;\n", v)
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				fmt.Fprintf(bw, "  %d -- %d;\n", v, u)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList writes the graph as a plain text header line
// "n <vertices>" followed by one "u v" pair per undirected edge —
// the interchange format ReadEdgeList parses.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored.
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	n := -1
	var edges [][2]int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if n < 0 {
			var parsed int
			if _, err := fmt.Sscanf(line, "n %d", &parsed); err != nil {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <count>\", got %q", lineNo, line)
			}
			if parsed < 0 {
				return nil, fmt.Errorf("graph: line %d: negative vertex count", lineNo)
			}
			n = parsed
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", lineNo, line)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range [0,%d)", lineNo, u, v, n)
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: missing \"n <count>\" header")
	}
	return Build(name, n, edges), nil
}
