// Package graph implements the immutable undirected graphs on which the
// load-balancing protocols run, in compressed sparse row (CSR) form.
//
// The paper's results are parameterised by an arbitrary undirected,
// connected graph G = (V, E): Theorem 3 by the mixing time τ(G),
// Theorem 7 by the maximum hitting time H(G). Table 1 compares five
// standard families (complete graph, regular expander, Erdős–Rényi,
// hypercube, grid), and Observation 8 uses a clique with a pendant node
// attached by k edges. This package provides generators for all of
// them plus structural queries (degrees, connectivity, diameter) used
// by the walk package and the experiment harness.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Graph is an immutable undirected graph over vertices 0..N-1 in CSR
// form. Parallel edges and self-loops are not represented; generators
// deduplicate. The zero value is an empty graph with no vertices.
type Graph struct {
	name string
	off  []int32 // len N+1; neighbours of v are adj[off[v]:off[v+1]]
	adj  []int32
}

// Build constructs a Graph from an edge list over n vertices. Edges are
// deduplicated, self-loops dropped, and endpoints validated.
func Build(name string, n int, edges [][2]int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	type edge struct{ u, v int32 }
	set := make(map[edge]struct{}, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		set[edge{int32(u), int32(v)}] = struct{}{}
	}
	deg := make([]int32, n)
	for e := range set {
		deg[e.u]++
		deg[e.v]++
	}
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	adj := make([]int32, off[n])
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for e := range set {
		adj[cursor[e.u]] = e.v
		cursor[e.u]++
		adj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	// Sort each adjacency run so neighbour order is deterministic.
	g := &Graph{name: name, off: off, adj: adj}
	for v := 0; v < n; v++ {
		nb := g.adj[g.off[v]:g.off[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// Name returns the generator-assigned human-readable name.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.N(); v++ {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// MinDegree returns the minimum vertex degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	d := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if dv := g.Degree(v); dv < d {
			d = dv
		}
	}
	return d
}

// Neighbors returns the (sorted, read-only) neighbour slice of v.
// Callers must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// Neighbor returns the i-th neighbour of v.
func (g *Graph) Neighbor(v, i int) int { return int(g.adj[int(g.off[v])+i]) }

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// BFS returns the vector of hop distances from src (-1 = unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for N ≤ 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the largest hop distance between any pair, or -1 if
// the graph is disconnected or empty. O(N·(N+M)): intended for the
// moderate sizes the experiments use.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		for _, d := range g.BFS(v) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// IsBipartite reports whether the graph is 2-colourable. Bipartite
// graphs make the simple random walk periodic, which matters when
// choosing a walk kernel.
func (g *Graph) IsBipartite() bool {
	color := make([]int8, g.N())
	for start := 0; start < g.N(); start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		queue := []int32{int32(start)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if color[w] == 0 {
					color[w] = -color[v]
					queue = append(queue, w)
				} else if color[w] == color[v] {
					return false
				}
			}
		}
	}
	return true
}

// DegreeSum returns Σ_v deg(v) = 2·M.
func (g *Graph) DegreeSum() int { return len(g.adj) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	edges := make([][2]int, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return Build(fmt.Sprintf("complete(n=%d)", n), n, edges)
}

// Cycle returns the n-cycle C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	edges := make([][2]int, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	return Build(fmt.Sprintf("cycle(n=%d)", n), n, edges)
}

// Path returns the path P_n on n vertices.
func Path(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	return Build(fmt.Sprintf("path(n=%d)", n), n, edges)
}

// Star returns the star K_{1,n-1} with centre 0.
func Star(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return Build(fmt.Sprintf("star(n=%d)", n), n, edges)
}

// Grid2D returns the rows×cols grid; if torus is true, rows and columns
// wrap around (each vertex has degree 4 when rows,cols ≥ 3). Vertex
// (r,c) has index r*cols+c. This is the "Grid" family of Table 1.
func Grid2D(rows, cols int, torus bool) *Graph {
	if rows <= 0 || cols <= 0 {
		panic("graph: grid needs positive dimensions")
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			} else if torus && cols > 2 {
				edges = append(edges, [2]int{id(r, c), id(r, 0)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			} else if torus && rows > 2 {
				edges = append(edges, [2]int{id(r, c), id(0, c)})
			}
		}
	}
	kind := "grid"
	if torus {
		kind = "torus"
	}
	return Build(fmt.Sprintf("%s(%dx%d)", kind, rows, cols), rows*cols, edges)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *Graph {
	if dim < 0 || dim > 30 {
		panic("graph: hypercube dimension out of range")
	}
	n := 1 << uint(dim)
	var edges [][2]int
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				edges = append(edges, [2]int{v, w})
			}
		}
	}
	return Build(fmt.Sprintf("hypercube(dim=%d)", dim), n, edges)
}

// ErdosRenyi returns a G(n,p) sample. Table 1 assumes
// p > (1+ε)·ln n / n, well above the connectivity threshold; callers
// should verify Connected() and resample if needed (see Connected
// helper GenerateConnected).
func ErdosRenyi(n int, p float64, r *rng.Rand) *Graph {
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyi needs p in [0,1]")
	}
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(p) {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return Build(fmt.Sprintf("gnp(n=%d,p=%.3g)", n, p), n, edges)
}

// RandomRegular returns a random d-regular graph on n vertices.
// It starts from a deterministic circulant d-regular graph and applies
// Θ(n·d) random double-edge swaps, each preserving all degrees and
// simplicity. This always terminates (unlike configuration-model
// restarts, whose success probability decays like e^{-d²/4}) and mixes
// to a near-uniform random regular graph. Requires n·d even and
// d < n; for d ≥ 3 the result is an expander with high probability —
// the "Reg. Expander" family of Table 1.
func RandomRegular(n, d int, r *rng.Rand) *Graph {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		panic("graph: RandomRegular requires 0 <= d < n and n*d even")
	}
	// Circulant seed: connect v to v±1, v±2, …, v±(d/2); if d is odd,
	// n is even (n·d even), so also connect v to its antipode v+n/2.
	seen := make(map[[2]int]bool, n*d/2)
	edges := make([][2]int, 0, n*d/2)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if u != v && !seen[key] {
			seen[key] = true
			edges = append(edges, key)
		}
	}
	for v := 0; v < n; v++ {
		for off := 1; off <= d/2; off++ {
			addEdge(v, (v+off)%n)
		}
		if d%2 == 1 {
			addEdge(v, (v+n/2)%n)
		}
	}
	if len(edges) != n*d/2 {
		// Happens only when offsets collide (e.g. d/2 ≥ n/2); such tiny
		// cases (d ≥ n-1) are excluded by the d < n guard above except
		// d = n-1, which is the complete graph.
		if d == n-1 {
			return Complete(n)
		}
		panic(fmt.Sprintf("graph: circulant seed produced %d edges, want %d", len(edges), n*d/2))
	}
	// Double-edge swaps: pick edges (a,b),(c,d'), rewire to (a,c),(b,d')
	// or (a,d'),(b,c) when the result stays simple.
	swaps := 20 * len(edges)
	for s := 0; s < swaps; s++ {
		i := r.Intn(len(edges))
		j := r.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := edges[i][0], edges[i][1]
		c, e := edges[j][0], edges[j][1]
		if r.Bool(0.5) {
			b, a = a, b
		}
		// Proposed new edges: (a,c) and (b,e).
		if a == c || b == e {
			continue
		}
		n1 := [2]int{min(a, c), max(a, c)}
		n2 := [2]int{min(b, e), max(b, e)}
		if n1 == n2 || seen[n1] || seen[n2] {
			continue
		}
		delete(seen, edges[i])
		delete(seen, edges[j])
		seen[n1] = true
		seen[n2] = true
		edges[i] = n1
		edges[j] = n2
	}
	return Build(fmt.Sprintf("regular(n=%d,d=%d)", n, d), n, edges)
}

// CliquePendant returns the Observation 8 lower-bound family: a clique
// on n-1 vertices {0..n-2} plus a single pendant vertex n-1 connected
// to exactly k clique vertices (0..k-1). Its maximum hitting time is
// Θ(n²/k).
func CliquePendant(n, k int) *Graph {
	if n < 3 || k < 1 || k > n-1 {
		panic("graph: CliquePendant requires n >= 3, 1 <= k <= n-1")
	}
	var edges [][2]int
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n-1; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{i, n - 1})
	}
	return Build(fmt.Sprintf("cliquePendant(n=%d,k=%d)", n, k), n, edges)
}

// GluedCliques returns two cliques of size n/2 joined by k parallel
// "bridge" pairs (vertex i of clique A to vertex i of clique B for
// i < k) — the family used in Hoefer–Sauerwald's lower bound that
// Observation 8 adapts. Requires even n ≥ 4 and 1 ≤ k ≤ n/2.
func GluedCliques(n, k int) *Graph {
	if n < 4 || n%2 != 0 || k < 1 || k > n/2 {
		panic("graph: GluedCliques requires even n >= 4 and 1 <= k <= n/2")
	}
	half := n / 2
	var edges [][2]int
	for base := 0; base < n; base += half {
		for u := 0; u < half; u++ {
			for v := u + 1; v < half; v++ {
				edges = append(edges, [2]int{base + u, base + v})
			}
		}
	}
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{i, half + i})
	}
	return Build(fmt.Sprintf("gluedCliques(n=%d,k=%d)", n, k), n, edges)
}

// Lollipop returns the lollipop graph: a clique on cliqueN vertices
// with a path of pathN additional vertices hanging off vertex 0. A
// classical worst case for hitting times (Θ(n³) on the simple walk).
func Lollipop(cliqueN, pathN int) *Graph {
	if cliqueN < 2 || pathN < 0 {
		panic("graph: Lollipop requires cliqueN >= 2, pathN >= 0")
	}
	n := cliqueN + pathN
	var edges [][2]int
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	prev := 0
	for i := 0; i < pathN; i++ {
		edges = append(edges, [2]int{prev, cliqueN + i})
		prev = cliqueN + i
	}
	return Build(fmt.Sprintf("lollipop(clique=%d,path=%d)", cliqueN, pathN), n, edges)
}

// GenerateConnected resamples gen until it produces a connected graph,
// up to maxTries attempts. Useful for G(n,p) near the threshold.
func GenerateConnected(maxTries int, gen func() *Graph) *Graph {
	for i := 0; i < maxTries; i++ {
		if g := gen(); g.Connected() {
			return g
		}
	}
	panic("graph: GenerateConnected exhausted attempts")
}
