package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuildDedupAndLoops(t *testing.T) {
	g := Build("t", 4, [][2]int{{0, 1}, {1, 0}, {2, 2}, {1, 2}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("M=%d want 2 (dedup + drop loop)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(2, 2) || g.HasEdge(0, 3) {
		t.Fatal("edge set wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestBuildPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build("t", 2, [][2]int{{0, 2}})
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	r := rng.NewSeeded(1)
	g := ErdosRenyi(40, 0.2, r)
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("neighbours of %d not strictly sorted: %v", v, nb)
			}
		}
		for _, w := range nb {
			if !g.HasEdge(int(w), v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, w)
			}
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.N() != 6 || g.M() != 15 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 5 || g.MinDegree() != 5 {
		t.Fatal("K6 should be 5-regular")
	}
	if g.Diameter() != 1 {
		t.Fatalf("diameter=%d", g.Diameter())
	}
	if g.IsBipartite() {
		t.Fatal("K6 is not bipartite")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(8)
	if g.M() != 8 || g.MaxDegree() != 2 || g.MinDegree() != 2 {
		t.Fatal("C8 structure wrong")
	}
	if g.Diameter() != 4 {
		t.Fatalf("C8 diameter=%d want 4", g.Diameter())
	}
	if !g.IsBipartite() {
		t.Fatal("even cycle is bipartite")
	}
	if Cycle(5).IsBipartite() {
		t.Fatal("odd cycle is not bipartite")
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || p.Diameter() != 4 {
		t.Fatal("P5 wrong")
	}
	s := Star(10)
	if s.M() != 9 || s.Degree(0) != 9 || s.Degree(3) != 1 || s.Diameter() != 2 {
		t.Fatal("star wrong")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4, false)
	if g.N() != 12 {
		t.Fatalf("N=%d", g.N())
	}
	// 3 rows × 3 horizontal edges + 2×4 vertical = 9+8 = 17.
	if g.M() != 17 {
		t.Fatalf("M=%d want 17", g.M())
	}
	if g.Degree(0) != 2 { // corner
		t.Fatalf("corner degree=%d", g.Degree(0))
	}
	if g.Degree(5) != 4 { // interior (1,1)
		t.Fatalf("interior degree=%d", g.Degree(5))
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
}

func TestTorus(t *testing.T) {
	g := Grid2D(4, 5, true)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree=%d want 4", v, g.Degree(v))
		}
	}
	if g.M() != 40 {
		t.Fatalf("M=%d want 40", g.M())
	}
}

func TestTorusSmallDimensionNoDoubleEdge(t *testing.T) {
	// With 2 columns wraparound would duplicate edges; generator must
	// skip the wrap instead of creating parallel edges.
	g := Grid2D(2, 2, true)
	if g.M() != 4 {
		t.Fatalf("2x2 torus M=%d want 4", g.M())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: N=%d M=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatal("Q4 must be 4-regular")
		}
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q4 diameter=%d", g.Diameter())
	}
	if !g.IsBipartite() {
		t.Fatal("hypercube is bipartite")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	r := rng.NewSeeded(7)
	const n, p = 200, 0.1
	g := ErdosRenyi(n, p, r)
	want := p * float64(n*(n-1)/2)
	got := float64(g.M())
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("G(n,p) edges=%v want ≈%v", got, want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	r := rng.NewSeeded(8)
	if g := ErdosRenyi(10, 0, r); g.M() != 0 {
		t.Fatal("p=0 should give empty graph")
	}
	if g := ErdosRenyi(10, 1, r); g.M() != 45 {
		t.Fatal("p=1 should give complete graph")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.NewSeeded(9)
	for _, tc := range []struct{ n, d int }{{10, 3}, {50, 4}, {64, 3}, {100, 6}} {
		g := RandomRegular(tc.n, tc.d, r)
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("regular(%d,%d): vertex %d has degree %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if !g.Connected() {
			// d>=3 random regular graphs are connected whp; a failure
			// here is overwhelmingly a generator bug.
			t.Fatalf("regular(%d,%d) disconnected", tc.n, tc.d)
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	r := rng.NewSeeded(10)
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d should panic")
		}
	}()
	RandomRegular(5, 3, r)
}

func TestCliquePendant(t *testing.T) {
	g := CliquePendant(10, 3)
	if g.N() != 10 {
		t.Fatalf("N=%d", g.N())
	}
	// Clique on 9 vertices = 36 edges, plus 3 pendant links.
	if g.M() != 39 {
		t.Fatalf("M=%d want 39", g.M())
	}
	if g.Degree(9) != 3 {
		t.Fatalf("pendant degree=%d want 3", g.Degree(9))
	}
	if g.Degree(0) != 9 { // clique vertex 0 also touches the pendant
		t.Fatalf("degree(0)=%d want 9", g.Degree(0))
	}
	if g.Degree(5) != 8 {
		t.Fatalf("degree(5)=%d want 8", g.Degree(5))
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
}

func TestGluedCliques(t *testing.T) {
	g := GluedCliques(12, 2)
	// Two K6 = 2·15 edges + 2 bridges.
	if g.M() != 32 {
		t.Fatalf("M=%d want 32", g.M())
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
	if !g.HasEdge(0, 6) || !g.HasEdge(1, 7) || g.HasEdge(2, 8) {
		t.Fatal("bridge edges wrong")
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 4)
	if g.N() != 9 {
		t.Fatalf("N=%d", g.N())
	}
	if g.M() != 10+4 {
		t.Fatalf("M=%d", g.M())
	}
	if g.Degree(8) != 1 {
		t.Fatal("path end should have degree 1")
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d]=%d want %d", i, d[i], want)
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := Build("two-islands", 4, [][2]int{{0, 1}, {2, 3}})
	if g.Connected() {
		t.Fatal("should be disconnected")
	}
	if g.Diameter() != -1 {
		t.Fatalf("diameter of disconnected graph = %d want -1", g.Diameter())
	}
	if d := g.BFS(0); d[2] != -1 {
		t.Fatal("unreachable vertex must have distance -1")
	}
}

func TestGenerateConnected(t *testing.T) {
	r := rng.NewSeeded(11)
	g := GenerateConnected(100, func() *Graph { return ErdosRenyi(50, 0.15, r) })
	if !g.Connected() {
		t.Fatal("GenerateConnected returned disconnected graph")
	}
}

func TestGenerateConnectedExhausts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateConnected(3, func() *Graph { return Build("x", 4, [][2]int{{0, 1}}) })
}

// Property: for arbitrary random graphs, handshake lemma and symmetry.
func TestPropertyHandshake(t *testing.T) {
	r := rng.NewSeeded(12)
	f := func(seed uint16) bool {
		n := 5 + int(seed%60)
		g := ErdosRenyi(n, 0.3, r)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M() && sum == g.DegreeSum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: diameters of known families.
func TestKnownDiameters(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Complete(10), 1},
		{Star(10), 2},
		{Cycle(10), 5},
		{Hypercube(5), 5},
		{Grid2D(4, 4, false), 6},
	}
	for _, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Fatalf("%s diameter=%d want %d", c.g.Name(), got, c.want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build("empty", 0, nil)
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.MinDegree() != 0 {
		t.Fatal("empty graph stats wrong")
	}
	if !g.Connected() {
		t.Fatal("empty graph is vacuously connected")
	}
}

func BenchmarkBuildComplete512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Complete(512)
	}
}

func BenchmarkBFSTorus(b *testing.B) {
	g := Grid2D(64, 64, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}
