package walk

import (
	"math"

	"repro/internal/rng"
)

// HittingTimesTo returns the vector h where h[v] = E[time for the walk
// started at v to first reach target]. It solves the linear system
//
//	h[target] = 0,   h[v] = 1 + Σ_w P(v,w)·h(w)   (v ≠ target)
//
// by Gauss–Seidel iteration, which converges for any connected graph
// because the restricted matrix is substochastic and irreducible.
// tol is the maximum absolute update at convergence; maxIters caps the
// sweeps (returns the current iterate if exceeded).
func HittingTimesTo(k Kernel, target int, tol float64, maxIters int) []float64 {
	g := k.Graph()
	n := g.N()
	h := make([]float64, n)
	for it := 0; it < maxIters; it++ {
		delta := 0.0
		for v := 0; v < n; v++ {
			if v == target {
				continue
			}
			sum := 1.0 + k.SelfProb(v)*h[v]
			for _, w := range g.Neighbors(v) {
				if int(w) == target {
					continue
				}
				sum += k.NeighborProb(v, int(w)) * h[w]
			}
			// Solve the diagonal term implicitly:
			// h[v] = 1 + p_vv·h[v] + Σ… ⇒ h[v]·(1−p_vv) = 1 + Σ…
			pvv := k.SelfProb(v)
			var nv float64
			if pvv < 1 {
				nv = (sum - pvv*h[v]) / (1 - pvv)
			} else {
				nv = math.Inf(1) // absorbing non-target state: disconnected
			}
			if d := math.Abs(nv - h[v]); d > delta {
				delta = d
			}
			h[v] = nv
		}
		if delta < tol {
			break
		}
	}
	return h
}

// HittingTimesToExact solves the same system by dense Gaussian
// elimination with partial pivoting — O(n³), for cross-validation at
// small n.
func HittingTimesToExact(k Kernel, target int) []float64 {
	g := k.Graph()
	n := g.N()
	// Build (I − Q) x = 1 over the n−1 non-target states.
	idx := make([]int, 0, n-1) // state index -> vertex
	pos := make([]int, n)      // vertex -> state index (or -1)
	for v := range pos {
		pos[v] = -1
	}
	for v := 0; v < n; v++ {
		if v != target {
			pos[v] = len(idx)
			idx = append(idx, v)
		}
	}
	m := len(idx)
	a := make([][]float64, m) // augmented [A | b]
	for i, v := range idx {
		row := make([]float64, m+1)
		row[i] = 1 - k.SelfProb(v)
		for _, w := range g.Neighbors(v) {
			if int(w) == target {
				continue
			}
			row[pos[w]] -= k.NeighborProb(v, int(w))
		}
		row[m] = 1
		a[i] = row
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		p := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		if piv == 0 {
			// Disconnected from target: hitting time infinite.
			continue
		}
		for r := 0; r < m; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] / piv
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	h := make([]float64, n)
	for i, v := range idx {
		if a[i][i] != 0 {
			h[v] = a[i][m] / a[i][i]
		} else {
			h[v] = math.Inf(1)
		}
	}
	return h
}

// MaxHittingTime returns H(G) = max_{u,v} H_{u,v} computed by solving
// the hitting system for every target. O(n · cost(solve)); fine for the
// experiment sizes (n ≤ ~2000 with Gauss–Seidel).
func MaxHittingTime(k Kernel, tol float64, maxIters int) float64 {
	n := k.Graph().N()
	best := 0.0
	for target := 0; target < n; target++ {
		for _, h := range HittingTimesTo(k, target, tol, maxIters) {
			if h > best {
				best = h
			}
		}
	}
	return best
}

// MaxHittingTimeSampled estimates H(G) from a subset of targets chosen
// uniformly at random — used for large n where all-targets is too slow.
// It is a lower bound on H(G) that concentrates quickly on the vertex-
// transitive graphs in Table 1.
func MaxHittingTimeSampled(k Kernel, targets int, tol float64, maxIters int, r *rng.Rand) float64 {
	n := k.Graph().N()
	if targets >= n {
		return MaxHittingTime(k, tol, maxIters)
	}
	best := 0.0
	for i := 0; i < targets; i++ {
		t := r.Intn(n)
		for _, h := range HittingTimesTo(k, t, tol, maxIters) {
			if h > best {
				best = h
			}
		}
	}
	return best
}

// MonteCarloHitting estimates H_{u,v} by simulating walks from u until
// they reach v, averaged over trials. cap bounds each walk's length;
// capped walks contribute cap (biasing the estimate low), so choose cap
// well above the expected hitting time.
func MonteCarloHitting(k Kernel, u, v, trials, cap int, r *rng.Rand) float64 {
	total := 0.0
	for i := 0; i < trials; i++ {
		pos := u
		t := 0
		for pos != v && t < cap {
			pos = k.Step(pos, r)
			t++
		}
		total += float64(t)
	}
	return total / float64(trials)
}
