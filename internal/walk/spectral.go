package walk

import (
	"math"

	"repro/internal/rng"
)

// SpectralGap estimates µ = 1 − max_{2≤i≤n} |λ_i| of the kernel's
// transition matrix by deflated power iteration: a random start vector
// is repeatedly multiplied by P (transposed multiplication equals
// forward multiplication for the symmetric kernels in this package),
// with the component along the principal eigenvector (the all-ones
// vector, since P is doubly stochastic) projected out each step. The
// Rayleigh-quotient magnitude converges to max|λ_i|, i ≥ 2.
//
// iters bounds the work; the estimate is returned along with the final
// |λ₂|. For disconnected or bipartite non-lazy walks the gap is ~0.
func SpectralGap(k Kernel, iters int, r *rng.Rand) float64 {
	n := k.Graph().N()
	if n == 1 {
		return 1 // trivial chain mixes instantly
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	deflate(x)
	normalize(x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		EvolveDist(k, x, y)
		deflate(y)
		num, den := 0.0, 0.0
		for i := range x {
			num += y[i] * x[i] // Rayleigh quotient numerator x·Px
			den += x[i] * x[i]
		}
		next := math.Abs(num / den)
		norm := normalize(y)
		x, y = y, x
		if norm == 0 {
			// The vector collapsed into the principal eigenspace: all
			// other eigenvalues are (numerically) zero.
			return 1
		}
		if it > 16 && math.Abs(next-lambda) < 1e-12 {
			lambda = next
			break
		}
		lambda = next
	}
	gap := 1 - lambda
	if gap < 0 {
		gap = 0
	}
	return gap
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

// normalize scales x to unit Euclidean norm and returns the old norm.
func normalize(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	norm := math.Sqrt(s)
	if norm > 0 {
		for i := range x {
			x[i] /= norm
		}
	}
	return norm
}

// MixingBound returns the paper's analytic mixing time τ(G) = 4·ln n/µ
// (Lemma 2: for t ≥ 4·ln n/µ, |P^t_{ij} − 1/n| ≤ n⁻³).
func MixingBound(n int, gap float64) float64 {
	if gap <= 0 {
		return math.Inf(1)
	}
	return 4 * math.Log(float64(n)) / gap
}

// TVFromUniform returns the total-variation distance between dist and
// the uniform distribution on n points.
func TVFromUniform(dist []float64) float64 {
	u := 1 / float64(len(dist))
	s := 0.0
	for _, p := range dist {
		s += math.Abs(p - u)
	}
	return s / 2
}

// MixingTimeTV computes the exact ε-total-variation mixing time
// max over the given start vertices of min{t : TV(P^t(v,·), π) ≤ ε},
// by evolving the full distribution (O(t·(n+m)) per start). maxT caps
// the search; returns maxT if the walk has not mixed by then (e.g.
// periodic chains).
func MixingTimeTV(k Kernel, starts []int, eps float64, maxT int) int {
	n := k.Graph().N()
	worst := 0
	dist := make([]float64, n)
	next := make([]float64, n)
	for _, s := range starts {
		for i := range dist {
			dist[i] = 0
		}
		dist[s] = 1
		t := 0
		for ; t < maxT; t++ {
			if TVFromUniform(dist) <= eps {
				break
			}
			EvolveDist(k, dist, next)
			dist, next = next, dist
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// DefaultMixingEps is the conventional 1/4 threshold for TV mixing.
const DefaultMixingEps = 0.25

// DefaultStarts returns a small set of representative start vertices
// for worst-case mixing measurements: vertex 0, a minimum-degree
// vertex, a maximum-degree vertex and the last vertex. On
// vertex-transitive graphs all choices are equivalent; on irregular
// graphs (e.g. the clique+pendant family) the minimum-degree vertex is
// typically the slowest-mixing start.
func DefaultStarts(k Kernel) []int {
	g := k.Graph()
	n := g.N()
	if n == 0 {
		return nil
	}
	minV, maxV := 0, 0
	for v := 1; v < n; v++ {
		if g.Degree(v) < g.Degree(minV) {
			minV = v
		}
		if g.Degree(v) > g.Degree(maxV) {
			maxV = v
		}
	}
	seen := map[int]bool{}
	var out []int
	for _, v := range []int{0, minV, maxV, n - 1} {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
