// Package walk implements the random-walk machinery the paper's bounds
// are expressed in: transition kernels with uniform stationary
// distribution (Section 4.1), the spectral gap µ and mixing time
// τ(G) = 4·ln n/µ (Lemma 2), total-variation mixing measured exactly by
// evolving distributions, and hitting times H(G) computed exactly
// (linear solves), iteratively (Gauss–Seidel) and by Monte-Carlo
// simulation. These quantities drive Theorem 3 (O(τ·log m)) and
// Theorem 7 (O(H·ln W)) and the Table 1 reproduction.
package walk

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Kernel is a random-walk transition kernel P on an undirected graph.
// All kernels in this package keep the uniform distribution stationary,
// as the paper requires ("the results hold for all random walks where
// the stationary distribution equals the uniform distribution").
type Kernel interface {
	// Graph returns the underlying graph.
	Graph() *graph.Graph
	// Step samples the successor of v (possibly v itself).
	Step(v int, r *rng.Rand) int
	// NeighborProb returns P(v→w) for an edge {v,w}. Callers must
	// only pass actual neighbours; the self-loop mass is
	// 1 − Σ_w NeighborProb(v,w).
	NeighborProb(v, w int) float64
	// SelfProb returns P(v→v).
	SelfProb(v int) float64
	// Name identifies the kernel in reports.
	Name() string
}

// MaxDegree is the paper's standard walk for non-regular graphs:
// P_{ij} = 1/d for {i,j} ∈ E and P_{ii} = (d − d_i)/d, with d the
// maximum degree. P is symmetric, hence doubly stochastic, hence
// uniform-stationary.
type MaxDegree struct {
	g *graph.Graph
	d int
}

// NewMaxDegree returns the max-degree kernel for g.
// It panics on an empty or edgeless graph.
func NewMaxDegree(g *graph.Graph) *MaxDegree {
	if g.N() == 0 || g.MaxDegree() == 0 {
		panic("walk: MaxDegree kernel needs a graph with at least one edge")
	}
	return &MaxDegree{g: g, d: g.MaxDegree()}
}

// Graph returns the underlying graph.
func (k *MaxDegree) Graph() *graph.Graph { return k.g }

// Step samples the next vertex: each of the d "slots" is taken with
// probability 1/d; slots beyond deg(v) stay put.
func (k *MaxDegree) Step(v int, r *rng.Rand) int {
	i := r.Intn(k.d)
	if i < k.g.Degree(v) {
		return k.g.Neighbor(v, i)
	}
	return v
}

// NeighborProb returns 1/d.
func (k *MaxDegree) NeighborProb(v, w int) float64 { return 1 / float64(k.d) }

// SelfProb returns (d − deg(v))/d.
func (k *MaxDegree) SelfProb(v int) float64 {
	return float64(k.d-k.g.Degree(v)) / float64(k.d)
}

// Name identifies the kernel.
func (k *MaxDegree) Name() string { return "maxdeg" }

// Lazy wraps another kernel, staying put with probability 1/2. A lazy
// walk is aperiodic on every graph (including bipartite ones, where the
// non-lazy walk can oscillate forever) and has non-negative spectrum.
type Lazy struct {
	base Kernel
}

// NewLazy returns the 1/2-lazy version of base.
func NewLazy(base Kernel) *Lazy { return &Lazy{base: base} }

// Graph returns the underlying graph.
func (k *Lazy) Graph() *graph.Graph { return k.base.Graph() }

// Step stays with probability 1/2, else delegates.
func (k *Lazy) Step(v int, r *rng.Rand) int {
	if r.Bool(0.5) {
		return v
	}
	return k.base.Step(v, r)
}

// NeighborProb halves the base probability.
func (k *Lazy) NeighborProb(v, w int) float64 { return k.base.NeighborProb(v, w) / 2 }

// SelfProb returns 1/2 + base self-probability/2.
func (k *Lazy) SelfProb(v int) float64 { return 0.5 + k.base.SelfProb(v)/2 }

// Name identifies the kernel.
func (k *Lazy) Name() string { return "lazy(" + k.base.Name() + ")" }

// Metropolis is the Metropolis–Hastings symmetrisation of the simple
// walk: P_{ij} = 1/max(d_i, d_j) for {i,j} ∈ E, remainder on the
// diagonal. Also symmetric and uniform-stationary, but typically with a
// larger spectral gap than the max-degree walk on irregular graphs.
type Metropolis struct {
	g *graph.Graph
}

// NewMetropolis returns the Metropolis kernel for g.
func NewMetropolis(g *graph.Graph) *Metropolis {
	if g.N() == 0 || g.MaxDegree() == 0 {
		panic("walk: Metropolis kernel needs a graph with at least one edge")
	}
	return &Metropolis{g: g}
}

// Graph returns the underlying graph.
func (k *Metropolis) Graph() *graph.Graph { return k.g }

// Step proposes a uniform neighbour and accepts with d_v/max(d_v,d_w).
func (k *Metropolis) Step(v int, r *rng.Rand) int {
	dv := k.g.Degree(v)
	w := k.g.Neighbor(v, r.Intn(dv))
	dw := k.g.Degree(w)
	if dw <= dv || r.Bool(float64(dv)/float64(dw)) {
		return w
	}
	return v
}

// NeighborProb returns 1/max(d_v, d_w).
func (k *Metropolis) NeighborProb(v, w int) float64 {
	dv, dw := k.g.Degree(v), k.g.Degree(w)
	return 1 / float64(max(dv, dw))
}

// SelfProb returns the diagonal remainder.
func (k *Metropolis) SelfProb(v int) float64 {
	p := 1.0
	for _, w := range k.g.Neighbors(v) {
		p -= k.NeighborProb(v, int(w))
	}
	if p < 0 {
		p = 0 // guard against rounding
	}
	return p
}

// Name identifies the kernel.
func (k *Metropolis) Name() string { return "metropolis" }

// EdgeUniform is implemented by kernels whose off-diagonal transition
// probability is one constant p for every edge (MaxDegree and its lazy
// wrapper). EvolveDistRange uses it to replace two interface calls per
// edge with a fused constant-coefficient gather — the diffusion hot
// path of the open-system self-tuner.
type EdgeUniform interface {
	// EdgeProb returns (p, true) when P(v→w) = p for every edge {v,w},
	// or (0, false) when the edge probabilities vary.
	EdgeProb() (float64, bool)
}

// EdgeProb implements EdgeUniform: every edge carries 1/d.
func (k *MaxDegree) EdgeProb() (float64, bool) { return 1 / float64(k.d), true }

// EdgeProb implements EdgeUniform when the base kernel does.
func (k *Lazy) EdgeProb() (float64, bool) {
	if eu, ok := k.base.(EdgeUniform); ok {
		if p, ok := eu.EdgeProb(); ok {
			return p / 2, true
		}
	}
	return 0, false
}

// EvolveDistRange computes entries [lo, hi) of next = dist · P by
// gathering over each vertex's neighbourhood: next[v] = dist[v]·P(v,v)
// + Σ_{w ∈ N(v)} dist[w]·P(w,v). It requires a symmetric kernel
// (P(w,v) = P(v,w)), which every kernel in this package satisfies —
// the package-wide uniform-stationarity contract. Because each output
// entry is produced by exactly one call with a fixed-order inner loop,
// disjoint ranges can run on concurrent workers and the result is
// bit-identical for every range partition, which is what the sharded
// self-tuner needs for deterministic replay.
func EvolveDistRange(k Kernel, dist, next []float64, lo, hi int) {
	g := k.Graph()
	n := g.N()
	if len(dist) != n || len(next) != n {
		panic("walk: EvolveDistRange dimension mismatch")
	}
	if p, ok := edgeProb(k); ok {
		// Uniform edge probability: row sums are 1, so
		// P(v,v) = 1 − p·deg(v) and the whole update collapses to one
		// constant-coefficient pass over the CSR row.
		for v := lo; v < hi; v++ {
			sum := 0.0
			nb := g.Neighbors(v)
			for _, w := range nb {
				sum += dist[w]
			}
			next[v] = dist[v] + p*(sum-float64(len(nb))*dist[v])
		}
		return
	}
	for v := lo; v < hi; v++ {
		acc := dist[v] * k.SelfProb(v)
		for _, w := range g.Neighbors(v) {
			acc += dist[w] * k.NeighborProb(v, int(w))
		}
		next[v] = acc
	}
}

func edgeProb(k Kernel) (float64, bool) {
	if eu, ok := k.(EdgeUniform); ok {
		return eu.EdgeProb()
	}
	return 0, false
}

// EvolveDist advances a probability distribution one step:
// next = dist · P. next must have length n; it is overwritten.
// O(n + m) using the CSR adjacency.
func EvolveDist(k Kernel, dist, next []float64) {
	g := k.Graph()
	n := g.N()
	if len(dist) != n || len(next) != n {
		panic("walk: EvolveDist dimension mismatch")
	}
	for i := range next {
		next[i] = 0
	}
	for v := 0; v < n; v++ {
		p := dist[v]
		if p == 0 {
			continue
		}
		next[v] += p * k.SelfProb(v)
		for _, w := range g.Neighbors(v) {
			next[w] += p * k.NeighborProb(v, int(w))
		}
	}
}

// TransitionMatrix materialises P as a dense n×n row-stochastic matrix.
// Intended for validation at small n (O(n²) memory).
func TransitionMatrix(k Kernel) [][]float64 {
	g := k.Graph()
	n := g.N()
	P := make([][]float64, n)
	for v := 0; v < n; v++ {
		P[v] = make([]float64, n)
		P[v][v] = k.SelfProb(v)
		for _, w := range g.Neighbors(v) {
			P[v][w] = k.NeighborProb(v, int(w))
		}
	}
	return P
}

// CheckDoublyStochastic verifies that every row and column of P sums to
// 1 within tol, which certifies the uniform stationary distribution.
func CheckDoublyStochastic(k Kernel, tol float64) error {
	g := k.Graph()
	n := g.N()
	colSum := make([]float64, n)
	for v := 0; v < n; v++ {
		row := k.SelfProb(v)
		colSum[v] += k.SelfProb(v)
		for _, w := range g.Neighbors(v) {
			p := k.NeighborProb(v, int(w))
			if p < 0 {
				return fmt.Errorf("walk: negative transition P(%d,%d)=%v", v, w, p)
			}
			row += p
			colSum[w] += p
		}
		if diff := row - 1; diff > tol || diff < -tol {
			return fmt.Errorf("walk: row %d sums to %v", v, row)
		}
	}
	for v, s := range colSum {
		if diff := s - 1; diff > tol || diff < -tol {
			return fmt.Errorf("walk: column %d sums to %v (stationary not uniform)", v, s)
		}
	}
	return nil
}
