package walk

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func kernelsFor(g *graph.Graph) []Kernel {
	return []Kernel{
		NewMaxDegree(g),
		NewLazy(NewMaxDegree(g)),
		NewMetropolis(g),
		NewLazy(NewMetropolis(g)),
	}
}

func TestDoublyStochasticAcrossKernelsAndGraphs(t *testing.T) {
	r := rng.NewSeeded(1)
	gs := []*graph.Graph{
		graph.Complete(12),
		graph.Cycle(9),
		graph.Path(7),
		graph.Star(8),
		graph.Grid2D(4, 5, false),
		graph.Grid2D(4, 4, true),
		graph.Hypercube(4),
		graph.CliquePendant(10, 2),
		graph.GenerateConnected(50, func() *graph.Graph { return graph.ErdosRenyi(30, 0.2, r) }),
	}
	for _, g := range gs {
		for _, k := range kernelsFor(g) {
			if err := CheckDoublyStochastic(k, 1e-9); err != nil {
				t.Fatalf("%s on %s: %v", k.Name(), g.Name(), err)
			}
		}
	}
}

func TestMaxDegreeKnownProbabilities(t *testing.T) {
	g := graph.Star(5) // centre degree 4, leaves degree 1, d = 4
	k := NewMaxDegree(g)
	if got := k.NeighborProb(0, 1); !almostEq(got, 0.25, 1e-15) {
		t.Fatalf("P(centre→leaf)=%v", got)
	}
	if got := k.SelfProb(0); !almostEq(got, 0, 1e-15) {
		t.Fatalf("P(centre stays)=%v", got)
	}
	if got := k.SelfProb(1); !almostEq(got, 0.75, 1e-15) {
		t.Fatalf("P(leaf stays)=%v", got)
	}
}

func TestMetropolisKnownProbabilities(t *testing.T) {
	g := graph.Star(5)
	k := NewMetropolis(g)
	// Edge {centre(deg 4), leaf(deg 1)}: P = 1/max(4,1) = 1/4 both ways.
	if got := k.NeighborProb(0, 1); !almostEq(got, 0.25, 1e-15) {
		t.Fatalf("metropolis centre→leaf = %v", got)
	}
	if got := k.NeighborProb(1, 0); !almostEq(got, 0.25, 1e-15) {
		t.Fatalf("metropolis leaf→centre = %v", got)
	}
	if got := k.SelfProb(1); !almostEq(got, 0.75, 1e-15) {
		t.Fatalf("metropolis leaf self = %v", got)
	}
}

func TestStepMatchesProbabilities(t *testing.T) {
	g := graph.CliquePendant(8, 2)
	r := rng.NewSeeded(3)
	const draws = 400000
	for _, k := range kernelsFor(g) {
		v := 7 // the pendant vertex, degree 2
		counts := map[int]int{}
		for i := 0; i < draws; i++ {
			counts[k.Step(v, r)]++
		}
		wantSelf := k.SelfProb(v)
		if got := float64(counts[v]) / draws; !almostEq(got, wantSelf, 0.005) {
			t.Fatalf("%s: empirical self prob %v want %v", k.Name(), got, wantSelf)
		}
		for _, w := range g.Neighbors(v) {
			want := k.NeighborProb(v, int(w))
			if got := float64(counts[int(w)]) / draws; !almostEq(got, want, 0.005) {
				t.Fatalf("%s: empirical P(%d→%d)=%v want %v", k.Name(), v, w, got, want)
			}
		}
	}
}

func TestEvolveDistMatchesMatrix(t *testing.T) {
	r := rng.NewSeeded(4)
	g := graph.GenerateConnected(50, func() *graph.Graph { return graph.ErdosRenyi(15, 0.3, r) })
	for _, k := range kernelsFor(g) {
		P := TransitionMatrix(k)
		n := g.N()
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = r.Float64()
		}
		// Normalise.
		s := 0.0
		for _, p := range dist {
			s += p
		}
		for i := range dist {
			dist[i] /= s
		}
		want := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want[j] += dist[i] * P[i][j]
			}
		}
		got := make([]float64, n)
		EvolveDist(k, dist, got)
		for i := range want {
			if !almostEq(got[i], want[i], 1e-12) {
				t.Fatalf("%s: EvolveDist[%d]=%v want %v", k.Name(), i, got[i], want[i])
			}
		}
	}
}

func TestEvolveDistPreservesMass(t *testing.T) {
	g := graph.Grid2D(5, 5, false)
	k := NewMaxDegree(g)
	dist := make([]float64, g.N())
	dist[0] = 1
	next := make([]float64, g.N())
	for step := 0; step < 50; step++ {
		EvolveDist(k, dist, next)
		dist, next = next, dist
		s := 0.0
		for _, p := range dist {
			s += p
		}
		if !almostEq(s, 1, 1e-12) {
			t.Fatalf("mass %v after step %d", s, step)
		}
	}
}

func TestSpectralGapCompleteGraph(t *testing.T) {
	// K_n max-degree walk: eigenvalues 1 and −1/(n−1) ⇒ gap = 1 − 1/(n−1).
	r := rng.NewSeeded(5)
	for _, n := range []int{5, 10, 25} {
		k := NewMaxDegree(graph.Complete(n))
		got := SpectralGap(k, 3000, r)
		want := 1 - 1/float64(n-1)
		if !almostEq(got, want, 1e-6) {
			t.Fatalf("K%d gap=%v want %v", n, got, want)
		}
	}
}

func TestSpectralGapCycle(t *testing.T) {
	r := rng.NewSeeded(6)
	// Odd cycle, non-lazy: max|λ| = cos(π/n) ⇒ gap = 1 − cos(π/n).
	n := 9
	k := NewMaxDegree(graph.Cycle(n))
	got := SpectralGap(k, 20000, r)
	want := 1 - math.Cos(math.Pi/float64(n))
	if !almostEq(got, want, 1e-4) {
		t.Fatalf("C9 gap=%v want %v", got, want)
	}
	// Even cycle is periodic: λ = −1 present ⇒ gap ≈ 0.
	keven := NewMaxDegree(graph.Cycle(8))
	if g := SpectralGap(keven, 5000, r); g > 1e-3 {
		t.Fatalf("even cycle non-lazy gap=%v want ~0", g)
	}
	// Lazy even cycle: eigenvalues (1+cos(2πk/n))/2 ⇒ gap = (1−cos(2π/n))/2.
	klazy := NewLazy(NewMaxDegree(graph.Cycle(8)))
	wantLazy := (1 - math.Cos(2*math.Pi/8)) / 2
	if g := SpectralGap(klazy, 20000, r); !almostEq(g, wantLazy, 1e-4) {
		t.Fatalf("lazy C8 gap=%v want %v", g, wantLazy)
	}
}

func TestMixingBound(t *testing.T) {
	if got := MixingBound(100, 0.5); !almostEq(got, 8*math.Log(100), 1e-9) {
		t.Fatalf("MixingBound=%v", got)
	}
	if !math.IsInf(MixingBound(10, 0), 1) {
		t.Fatal("zero gap should give infinite bound")
	}
}

func TestTVFromUniform(t *testing.T) {
	if got := TVFromUniform([]float64{1, 0, 0, 0}); !almostEq(got, 0.75, 1e-12) {
		t.Fatalf("TV=%v want 0.75", got)
	}
	if got := TVFromUniform([]float64{0.25, 0.25, 0.25, 0.25}); got != 0 {
		t.Fatalf("TV=%v want 0", got)
	}
}

func TestMixingTimeTVCompleteGraph(t *testing.T) {
	// From any start on K_n, one step reaches TV = 1/n ≤ 0.25 for n ≥ 4.
	k := NewMaxDegree(graph.Complete(20))
	if got := MixingTimeTV(k, []int{0, 7}, DefaultMixingEps, 100); got != 1 {
		t.Fatalf("K20 TV mixing time = %d want 1", got)
	}
}

func TestMixingTimeTVGrowsWithCycle(t *testing.T) {
	small := MixingTimeTV(NewLazy(NewMaxDegree(graph.Cycle(8))), []int{0}, DefaultMixingEps, 100000)
	large := MixingTimeTV(NewLazy(NewMaxDegree(graph.Cycle(32))), []int{0}, DefaultMixingEps, 100000)
	if small <= 0 || large <= small {
		t.Fatalf("cycle mixing times: n=8→%d, n=32→%d (want increasing)", small, large)
	}
	// Θ(n²) diffusive scaling: ratio should be near 16, certainly > 8.
	if float64(large)/float64(small) < 8 {
		t.Fatalf("cycle mixing should scale ~quadratically: %d vs %d", small, large)
	}
}

func TestMixingTimeTVPeriodicCaps(t *testing.T) {
	// Non-lazy walk on an even cycle never mixes; must hit the cap.
	k := NewMaxDegree(graph.Cycle(8))
	if got := MixingTimeTV(k, []int{0}, DefaultMixingEps, 500); got != 500 {
		t.Fatalf("periodic chain mixing=%d want cap 500", got)
	}
}

func TestHittingTimePath3(t *testing.T) {
	// P3 with max-degree walk (d=2): h(1→2)=4, h(0→2)=6 (hand-solved).
	k := NewMaxDegree(graph.Path(3))
	h := HittingTimesTo(k, 2, 1e-12, 100000)
	if !almostEq(h[1], 4, 1e-6) || !almostEq(h[0], 6, 1e-6) || h[2] != 0 {
		t.Fatalf("P3 hitting = %v want [6 4 0]", h)
	}
}

func TestHittingTimeCompleteGraph(t *testing.T) {
	// K_n: from u≠v, success probability 1/(n−1) per step ⇒ H = n−1.
	for _, n := range []int{4, 9, 16} {
		k := NewMaxDegree(graph.Complete(n))
		h := HittingTimesTo(k, 0, 1e-12, 100000)
		for v := 1; v < n; v++ {
			if !almostEq(h[v], float64(n-1), 1e-6) {
				t.Fatalf("K%d: h[%d]=%v want %d", n, v, h[v], n-1)
			}
		}
	}
}

func TestHittingExactMatchesGaussSeidel(t *testing.T) {
	r := rng.NewSeeded(8)
	g := graph.GenerateConnected(50, func() *graph.Graph { return graph.ErdosRenyi(20, 0.25, r) })
	for _, k := range []Kernel{NewMaxDegree(g), NewMetropolis(g)} {
		for _, target := range []int{0, 5, 19} {
			hs := HittingTimesTo(k, target, 1e-11, 200000)
			ex := HittingTimesToExact(k, target)
			for v := range hs {
				if !almostEq(hs[v], ex[v], 1e-5*(1+ex[v])) {
					t.Fatalf("%s target %d: GS h[%d]=%v exact %v", k.Name(), target, v, hs[v], ex[v])
				}
			}
		}
	}
}

func TestMonteCarloHittingAgreesWithExact(t *testing.T) {
	g := graph.Cycle(9)
	k := NewMaxDegree(g)
	exact := HittingTimesToExact(k, 0)
	r := rng.NewSeeded(9)
	got := MonteCarloHitting(k, 4, 0, 4000, 100000, r)
	if math.Abs(got-exact[4]) > 0.1*exact[4] {
		t.Fatalf("MC hitting %v vs exact %v", got, exact[4])
	}
}

func TestMaxHittingTimeCompleteGraph(t *testing.T) {
	k := NewMaxDegree(graph.Complete(10))
	if got := MaxHittingTime(k, 1e-10, 100000); !almostEq(got, 9, 1e-4) {
		t.Fatalf("H(K10)=%v want 9", got)
	}
}

func TestMaxHittingTimeSampledLowerBound(t *testing.T) {
	r := rng.NewSeeded(10)
	k := NewMaxDegree(graph.Grid2D(5, 5, true))
	full := MaxHittingTime(k, 1e-9, 100000)
	sampled := MaxHittingTimeSampled(k, 5, 1e-9, 100000, r)
	if sampled > full+1e-6 {
		t.Fatalf("sampled H %v exceeds full %v", sampled, full)
	}
	// Torus is vertex-transitive: any target gives the same profile.
	if !almostEq(sampled, full, 1e-6) {
		t.Fatalf("vertex-transitive: sampled %v should equal full %v", sampled, full)
	}
}

func TestCliquePendantHittingScaling(t *testing.T) {
	// Observation 8: H(G) = Θ(n²/k) for the clique+pendant family.
	// Check that halving k roughly doubles H at fixed n.
	n := 40
	k1 := NewMaxDegree(graph.CliquePendant(n, 2))
	k2 := NewMaxDegree(graph.CliquePendant(n, 8))
	h1 := MaxHittingTime(k1, 1e-9, 200000)
	h2 := MaxHittingTime(k2, 1e-9, 200000)
	ratio := h1 / h2
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("H(k=2)/H(k=8) = %v want ≈4", ratio)
	}
}

func TestKernelPanicsOnEdgeless(t *testing.T) {
	g := graph.Build("edgeless", 3, nil)
	for name, f := range map[string]func(){
		"maxdeg":     func() { NewMaxDegree(g) },
		"metropolis": func() { NewMetropolis(g) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpectralGapSingleVertex(t *testing.T) {
	// A single vertex with a self-loop-only chain mixes instantly.
	g := graph.Complete(2)
	k := NewLazy(NewMaxDegree(g))
	r := rng.NewSeeded(11)
	// Lazy K2: P = [[1/2,1/2],[1/2,1/2]], second eigenvalue 0 ⇒ gap 1.
	if got := SpectralGap(k, 2000, r); !almostEq(got, 1, 1e-6) {
		t.Fatalf("lazy K2 gap=%v want 1", got)
	}
}

func BenchmarkEvolveDistTorus32(b *testing.B) {
	g := graph.Grid2D(32, 32, true)
	k := NewMaxDegree(g)
	dist := make([]float64, g.N())
	dist[0] = 1
	next := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvolveDist(k, dist, next)
		dist, next = next, dist
	}
}

func BenchmarkHittingGaussSeidelGrid(b *testing.B) {
	k := NewMaxDegree(graph.Grid2D(16, 16, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HittingTimesTo(k, 0, 1e-8, 100000)
	}
}

func TestDefaultStarts(t *testing.T) {
	g := graph.CliquePendant(10, 2)
	k := NewLazy(NewMaxDegree(g))
	starts := DefaultStarts(k)
	if len(starts) == 0 {
		t.Fatal("no starts")
	}
	hasPendant := false
	seen := map[int]bool{}
	for _, s := range starts {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("bad starts %v", starts)
		}
		seen[s] = true
		if s == 9 { // the pendant (minimum-degree) vertex
			hasPendant = true
		}
	}
	if !hasPendant {
		t.Fatalf("starts %v must include the min-degree pendant vertex", starts)
	}
	// Worst-of-starts mixing must dominate the clique-vertex-only one.
	only0 := MixingTimeTV(k, []int{0}, DefaultMixingEps, 1000000)
	worst := MixingTimeTV(k, starts, DefaultMixingEps, 1000000)
	if worst < only0 {
		t.Fatalf("worst-start mixing %d < single-start %d", worst, only0)
	}
}

func TestLongRunVisitFrequenciesUniform(t *testing.T) {
	// The paper requires walks whose stationary distribution is
	// uniform; verify empirically by ergodic averages on an irregular
	// graph where the simple walk would NOT be uniform.
	g := graph.CliquePendant(8, 2)
	r := rng.NewSeeded(21)
	for _, k := range []Kernel{NewMaxDegree(g), NewMetropolis(g), NewLazy(NewMaxDegree(g))} {
		visits := make([]int, g.N())
		pos := 0
		const steps = 400000
		for i := 0; i < steps; i++ {
			pos = k.Step(pos, r)
			visits[pos]++
		}
		want := float64(steps) / float64(g.N())
		for v, c := range visits {
			if math.Abs(float64(c)-want) > 0.05*want {
				t.Fatalf("%s: vertex %d visited %d times, want ≈%.0f (not uniform)",
					k.Name(), v, c, want)
			}
		}
	}
}

func TestSimpleWalkWouldNotBeUniform(t *testing.T) {
	// Sanity contrast for the test above: proportional-to-degree
	// visiting under a naive neighbour-uniform walk. This guards the
	// test's power — if the graph were regular the uniformity check
	// would be vacuous.
	g := graph.CliquePendant(8, 2)
	if g.MinDegree() == g.MaxDegree() {
		t.Fatal("test graph must be irregular")
	}
}

func TestEvolveDistRangeMatchesEvolveDist(t *testing.T) {
	g := graph.CliquePendant(8, 3)
	r := rng.NewSeeded(31)
	dist := make([]float64, g.N())
	total := 0.0
	for i := range dist {
		dist[i] = r.Float64()
		total += dist[i]
	}
	for i := range dist {
		dist[i] /= total
	}
	for _, k := range []Kernel{NewMaxDegree(g), NewLazy(NewMaxDegree(g)), NewMetropolis(g)} {
		scatter := make([]float64, g.N())
		EvolveDist(k, dist, scatter)
		gather := make([]float64, g.N())
		EvolveDistRange(k, dist, gather, 0, g.N())
		for v := range scatter {
			if math.Abs(scatter[v]-gather[v]) > 1e-12 {
				t.Fatalf("%s: vertex %d: scatter %v vs gather %v", k.Name(), v, scatter[v], gather[v])
			}
		}
	}
}

// TestEvolveDistRangePartitionInvariant pins the sharded-tuner
// determinism contract: any partition of [0, n) into ranges must give
// bit-identical output to the full-range call, for both the
// constant-edge fast path and the general gather.
func TestEvolveDistRangePartitionInvariant(t *testing.T) {
	g := graph.CliquePendant(9, 4)
	r := rng.NewSeeded(33)
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = 10 * r.Float64()
	}
	for _, k := range []Kernel{NewLazy(NewMaxDegree(g)), NewMetropolis(g)} {
		whole := make([]float64, g.N())
		EvolveDistRange(k, dist, whole, 0, g.N())
		for _, cuts := range [][]int{{1}, {g.N() - 1}, {3, 7}, {2, 5, 9}} {
			parts := make([]float64, g.N())
			prev := 0
			for _, c := range append(cuts, g.N()) {
				EvolveDistRange(k, dist, parts, prev, c)
				prev = c
			}
			for v := range whole {
				if whole[v] != parts[v] {
					t.Fatalf("%s cuts %v: vertex %d differs: %v vs %v", k.Name(), cuts, v, whole[v], parts[v])
				}
			}
		}
	}
}

// TestEdgeProb pins the fast-path coefficients the sharded diffusion
// relies on.
func TestEdgeProb(t *testing.T) {
	g := graph.CliquePendant(8, 2)
	md := NewMaxDegree(g)
	if p, ok := md.EdgeProb(); !ok || p != 1/float64(g.MaxDegree()) {
		t.Fatalf("maxdeg EdgeProb = %v,%v", p, ok)
	}
	lz := NewLazy(md)
	if p, ok := lz.EdgeProb(); !ok || p != 1/(2*float64(g.MaxDegree())) {
		t.Fatalf("lazy EdgeProb = %v,%v", p, ok)
	}
	if p, ok := NewLazy(NewMetropolis(g)).EdgeProb(); ok {
		t.Fatalf("lazy(metropolis) claims uniform edges: %v", p)
	}
}
