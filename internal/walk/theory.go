package walk

import "math"

// Closed-form reference values for the max-degree walk on canonical
// graph families. These are exact (not asymptotic) and cross-validate
// the numeric solvers in this package; the Table 1 experiment reports
// measured values against the paper's asymptotic forms.

// CompleteHitting returns H_{u,v} for u ≠ v on K_n under the
// max-degree walk: each step hits the target with probability
// 1/(n−1), so the hitting time is geometric with mean n−1.
func CompleteHitting(n int) float64 {
	if n < 2 {
		panic("walk: CompleteHitting requires n >= 2")
	}
	return float64(n - 1)
}

// CompleteGap returns the spectral gap of the non-lazy max-degree walk
// on K_n: P = (J−I)/(n−1) has eigenvalues 1 and −1/(n−1), so
// µ = 1 − 1/(n−1).
func CompleteGap(n int) float64 {
	if n < 3 {
		panic("walk: CompleteGap requires n >= 3")
	}
	return 1 - 1/float64(n-1)
}

// CycleHitting returns H_{u,v} on the n-cycle under the max-degree
// (= simple) walk, where k is the clockwise distance from u to v:
// the classical gambler's-ruin result H = k·(n−k).
func CycleHitting(n, k int) float64 {
	if n < 3 || k < 0 || k >= n {
		panic("walk: CycleHitting requires n >= 3, 0 <= k < n")
	}
	return float64(k * (n - k))
}

// CycleMaxHitting returns H(C_n) = max_k k(n−k) = ⌊n/2⌋·⌈n/2⌉.
func CycleMaxHitting(n int) float64 {
	return CycleHitting(n, n/2)
}

// CycleGap returns the spectral gap of the non-lazy walk on C_n for
// odd n: eigenvalues are cos(2πj/n), and the largest non-principal
// magnitude is cos(π/n) (attained near j = (n±1)/2), so
// µ = 1 − cos(π/n). Even cycles are periodic (gap 0).
func CycleGap(n int) float64 {
	if n < 3 {
		panic("walk: CycleGap requires n >= 3")
	}
	if n%2 == 0 {
		return 0
	}
	return 1 - math.Cos(math.Pi/float64(n))
}

// LazyCycleGap returns the spectral gap of the 1/2-lazy walk on C_n:
// eigenvalues (1+cos(2πj/n))/2, all non-negative, so
// µ = (1 − cos(2π/n))/2 for every n ≥ 3.
func LazyCycleGap(n int) float64 {
	if n < 3 {
		panic("walk: LazyCycleGap requires n >= 3")
	}
	return (1 - math.Cos(2*math.Pi/float64(n))) / 2
}

// PathHitting returns H_{u→v} on the path P_n (vertices 0..n−1) under
// the max-degree walk (d = 2) for u ≤ v. Interior vertices move ±1
// w.p. 1/2 each; endpoints move inward w.p. 1/2 and stay otherwise
// (the max-degree self-loop), which is a lazy reflecting boundary.
//
// Derivation: let E_i be the expected time from i to i+1. The endpoint
// gives E_0 = 2 (geometric with success 1/2); interior vertices give
// E_i = 1 + ½(E_{i−1} + E_i) ⇒ E_i = 2 + E_{i−1} ⇒ E_i = 2i + 2.
// Summing, H(u→v) = Σ_{i=u}^{v−1} (2i+2) = (v−u)(v+u+1). By the
// left–right symmetry of the reflecting chain the same expression (in
// mirrored coordinates) covers leftward targets.
func PathHitting(n, u, v int) float64 {
	if n < 2 || u < 0 || v < u || v >= n {
		panic("walk: PathHitting requires 0 <= u <= v < n")
	}
	return float64((v - u) * (v + u + 1))
}

// HypercubeHittingAntipodal returns H_{u,ū} between antipodal vertices
// of the d-dimensional hypercube under the simple (= max-degree) walk:
// H = Σ_{k=1}^{d} (2^d − 1) / binom(d−1, k−1) · … — we use the
// classical formula H(u,ū) = 2^d · Σ_{k=0}^{d−1} binom(d−1,k)⁻¹ ·
// (d / (k+1))… Simplified exact computation via the standard
// birth–death reduction on Hamming distance.
func HypercubeHittingAntipodal(d int) float64 {
	if d < 1 {
		panic("walk: HypercubeHittingAntipodal requires d >= 1")
	}
	// Birth–death chain on distance i ∈ {0..d} from the target:
	// from distance i the walk moves to i−1 w.p. i/d, to i+1 w.p.
	// (d−i)/d. Expected time E_i from i to i−1 satisfies
	// E_i = 1 + (d−i)/d · (E_{i+1} + E_i) ⇒ standard solution:
	// E_i = (Σ_{j=i}^{d} π_j) / (π_i · p_{i,i-1}) with π the binomial
	// stationary distribution π_i = binom(d,i)/2^d.
	binom := make([]float64, d+1)
	binom[0] = 1
	for i := 1; i <= d; i++ {
		binom[i] = binom[i-1] * float64(d-i+1) / float64(i)
	}
	total := math.Pow(2, float64(d))
	E := make([]float64, d+1)
	for i := d; i >= 1; i-- {
		tail := 0.0
		for j := i; j <= d; j++ {
			tail += binom[j] / total
		}
		E[i] = tail / ((binom[i] / total) * (float64(i) / float64(d)))
	}
	h := 0.0
	for i := 1; i <= d; i++ {
		h += E[i]
	}
	return h
}

// StarHitting returns hitting times on the star K_{1,n−1} with centre
// 0 under the max-degree walk (d = n−1): a leaf moves to the centre
// w.p. 1/(n−1) (else stays); the centre moves to a uniform leaf.
//
//	leaf → centre: the leaf leaves w.p. 1/(n−1) per step (max-degree
//	  self-loop), so H = n−1 (geometric).
//	centre → leaf v: C = 1 + (n−2)/(n−1)·(L + C) with L = n−1 (a wrong
//	  leaf must first return to the centre), solving to C = (n−1)².
//	leaf u → leaf v: L + C by the strong Markov property.
func StarHitting(n int, fromLeaf, toLeaf bool) float64 {
	if n < 3 {
		panic("walk: StarHitting requires n >= 3")
	}
	nn := float64(n)
	leafToCentre := nn - 1
	centreToLeaf := (nn - 1) * (nn - 1)
	switch {
	case fromLeaf && !toLeaf:
		return leafToCentre
	case !fromLeaf && toLeaf:
		return centreToLeaf
	case fromLeaf && toLeaf:
		return leafToCentre + centreToLeaf
	default:
		return 0
	}
}
