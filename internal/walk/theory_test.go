package walk

import (
	"testing"

	"repro/internal/graph"
)

// Every closed form in theory.go is cross-validated against the exact
// linear solver (Gaussian elimination) on concrete instances.

func TestCompleteHittingMatchesSolver(t *testing.T) {
	for _, n := range []int{3, 7, 12} {
		k := NewMaxDegree(graph.Complete(n))
		h := HittingTimesToExact(k, 0)
		want := CompleteHitting(n)
		for v := 1; v < n; v++ {
			if !almostEq(h[v], want, 1e-9) {
				t.Fatalf("K%d: solver %v formula %v", n, h[v], want)
			}
		}
	}
}

func TestCompleteGapMatchesPowerIteration(t *testing.T) {
	// Covered numerically in TestSpectralGapCompleteGraph; here we pin
	// the formula itself.
	if got := CompleteGap(10); !almostEq(got, 8.0/9.0, 1e-15) {
		t.Fatalf("gap=%v", got)
	}
}

func TestCycleHittingMatchesSolver(t *testing.T) {
	for _, n := range []int{5, 8, 11} {
		k := NewMaxDegree(graph.Cycle(n))
		h := HittingTimesToExact(k, 0)
		for v := 1; v < n; v++ {
			dist := v // clockwise distance from v to 0 is min(v, n-v) either way by symmetry
			want := CycleHitting(n, dist)
			if !almostEq(h[v], want, 1e-7) {
				t.Fatalf("C%d: h[%d]=%v formula %v", n, v, h[v], want)
			}
		}
	}
}

func TestCycleMaxHitting(t *testing.T) {
	if got := CycleMaxHitting(8); got != 16 {
		t.Fatalf("H(C8)=%v", got)
	}
	if got := CycleMaxHitting(9); got != 20 {
		t.Fatalf("H(C9)=%v", got)
	}
}

func TestCycleGapFormulas(t *testing.T) {
	if got := CycleGap(8); got != 0 {
		t.Fatalf("even cycle gap=%v", got)
	}
	// Odd and lazy variants are validated against power iteration in
	// TestSpectralGapCycle; pin one value each here.
	if got := CycleGap(9); !almostEq(got, 0.06030737921409157, 1e-12) {
		t.Fatalf("C9 gap=%v", got)
	}
	if got := LazyCycleGap(8); !almostEq(got, (1-0.7071067811865476)/2, 1e-12) {
		t.Fatalf("lazy C8 gap=%v", got)
	}
}

func TestPathHittingMatchesSolver(t *testing.T) {
	for _, n := range []int{3, 6, 10} {
		k := NewMaxDegree(graph.Path(n))
		for _, target := range []int{n - 1, n / 2} {
			h := HittingTimesToExact(k, target)
			for u := 0; u <= target; u++ {
				want := PathHitting(n, u, target)
				if !almostEq(h[u], want, 1e-7) {
					t.Fatalf("P%d target %d: h[%d]=%v formula %v", n, target, u, h[u], want)
				}
			}
		}
	}
}

func TestPathHittingKnownValues(t *testing.T) {
	// P3: H(1→2)=4, H(0→2)=6 (hand-solved in walk_test.go).
	if got := PathHitting(3, 1, 2); got != 4 {
		t.Fatalf("got %v", got)
	}
	if got := PathHitting(3, 0, 2); got != 6 {
		t.Fatalf("got %v", got)
	}
	if got := PathHitting(5, 2, 2); got != 0 {
		t.Fatalf("u==v should be 0, got %v", got)
	}
}

func TestHypercubeAntipodalMatchesSolver(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 6} {
		g := graph.Hypercube(d)
		k := NewMaxDegree(g)
		n := g.N()
		h := HittingTimesToExact(k, 0)
		antipode := n - 1 // all bits flipped
		want := HypercubeHittingAntipodal(d)
		if !almostEq(h[antipode], want, 1e-6*(1+want)) {
			t.Fatalf("Q%d: solver %v formula %v", d, h[antipode], want)
		}
	}
}

func TestHypercubeAntipodalSmall(t *testing.T) {
	if got := HypercubeHittingAntipodal(1); got != 1 {
		t.Fatalf("Q1: %v", got)
	}
	if got := HypercubeHittingAntipodal(2); got != 4 { // C4 antipodal = 2·2
		t.Fatalf("Q2: %v", got)
	}
}

func TestStarHittingMatchesSolver(t *testing.T) {
	for _, n := range []int{4, 7, 15} {
		g := graph.Star(n)
		k := NewMaxDegree(g)
		// Target a leaf (vertex 1).
		h := HittingTimesToExact(k, 1)
		if want := StarHitting(n, false, true); !almostEq(h[0], want, 1e-7) {
			t.Fatalf("star%d centre→leaf: solver %v formula %v", n, h[0], want)
		}
		if want := StarHitting(n, true, true); !almostEq(h[2], want, 1e-7) {
			t.Fatalf("star%d leaf→leaf: solver %v formula %v", n, h[2], want)
		}
		// Target the centre.
		hc := HittingTimesToExact(k, 0)
		if want := StarHitting(n, true, false); !almostEq(hc[1], want, 1e-9) {
			t.Fatalf("star%d leaf→centre: solver %v formula %v", n, hc[1], want)
		}
	}
}

func TestTheoryPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"complete":  func() { CompleteHitting(1) },
		"gap":       func() { CompleteGap(2) },
		"cycle":     func() { CycleHitting(2, 0) },
		"cycle-k":   func() { CycleHitting(5, 5) },
		"path":      func() { PathHitting(3, 2, 1) },
		"hypercube": func() { HypercubeHittingAntipodal(0) },
		"star":      func() { StarHitting(2, true, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
