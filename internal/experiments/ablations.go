package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// PotentialValidation (E8) empirically validates the three analysis
// devices the proofs rest on:
//
//   - Lemma 1: with T = (1+ε)W/n + wmax, at every step at least an
//     ε/(1+ε) fraction of resources can accept a wmax-weight task.
//   - Observation 4: the resource-controlled potential never increases.
//   - Lemma 10: the user-controlled potential drops by a constant
//     factor per round in expectation.
//   - Lemma 5: the resource-controlled tight potential halves per
//     2·H(G) phase in expectation (we check the ≤ 3/4 mean ratio).
func PotentialValidation(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, m := 100, 1000
	if cfg.Quick {
		n, m = 50, 400
	}
	const eps = 0.2
	t := &Table{
		ID:     "potential",
		Title:  "empirical validation of Lemma 1, Observation 4, Lemma 5, Lemma 10",
		Header: []string{"check", "quantity", "measured", "theory"},
	}

	// Lemma 1: minimum accept fraction along user-controlled runs.
	gK := graph.Complete(n)
	minFracs := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) float64 {
		ts := buildWeighted(m, task.TwoPoint{Heavy: 20, K: m / 50}, seed)
		s := core.NewState(gK, ts, singleSourcePlacement(ts, n, seed), core.AboveAverage{Eps: eps}, seed)
		p := core.UserControlled{Alpha: 1}
		minFrac := 1.0
		for i := 0; i < 100000 && !s.Balanced(); i++ {
			if fr := s.AcceptFraction(); fr < minFrac {
				minFrac = fr
			}
			p.Step(s)
		}
		return minFrac
	}, cfg.Seed+10)
	worst := 1.0
	for _, v := range minFracs {
		worst = math.Min(worst, v)
	}
	t.AddRow("Lemma 1", "min accept fraction", f("%.4f", worst), f(">= eps/(1+eps) = %.4f", eps/(1+eps)))

	// Observation 4 + Lemma 5: resource-controlled tight potential.
	// The workload is sized so runs span several 2·H(G) phases —
	// otherwise every trace ends inside its first phase and the phase
	// ratio degenerates to Φ(end)/Φ(0) = 0.
	gT := graph.Grid2D(6, 6, true)
	kernel := walk.NewLazy(walk.NewMaxDegree(gT))
	h := walk.MaxHittingTime(kernel, 1e-8, 2_000_000)
	phase := int(math.Round(2 * h))
	mono := true
	var phaseRatios stats.Online
	traces := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) []float64 {
		ts := buildWeighted(16*gT.N(), task.UniformRange{Lo: 1, Hi: 8}, seed)
		s := core.NewState(gT, ts, singleSourcePlacement(ts, gT.N(), seed), core.TightResource{}, seed)
		res := core.Run(s, core.ResourceControlled{Kernel: kernel},
			core.RunOptions{MaxRounds: 5_000_000, RecordPotential: true})
		return res.PotentialTrace
	}, cfg.Seed+11)
	var phasesToDrain stats.Online
	var w0 float64
	for _, tr := range traces {
		if ok, _ := potential.NonIncreasing(tr, 1e-9); !ok {
			mono = false
		}
		for _, ratio := range potential.PhaseDropRatios(tr, phase) {
			phaseRatios.Add(ratio)
		}
		if tz := potential.TimeToZero(tr); tz >= 0 {
			phasesToDrain.Add(float64(tz) / float64(phase))
		}
		if len(tr) > 0 && tr[0] > w0 {
			w0 = tr[0]
		}
	}
	t.AddRow("Observation 4", "potential monotone (all trials)", f("%v", mono), "true")
	t.AddRow("Lemma 5", f("mean phi(t+2H)/phi(t), 2H=%d", phase),
		f("%.3f", phaseRatios.Mean()), "<= 0.75")
	t.AddRow("Lemma 5+Thm 6", "phases of 2H to drain potential",
		f("%.2f", phasesToDrain.Mean()),
		f("<= 4(1+ln s0) = %.0f", 4*(1+math.Log(math.Max(w0, 1)))))

	// Lemma 10: user-controlled above-average drift.
	userTraces := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) []float64 {
		ts := buildWeighted(m, task.TwoPoint{Heavy: 8, K: m / 20}, seed)
		s := core.NewState(gK, ts, singleSourcePlacement(ts, n, seed), core.AboveAverage{Eps: eps}, seed)
		res := core.Run(s, core.UserControlled{Alpha: 1},
			core.RunOptions{MaxRounds: 1_000_000, RecordPotential: true})
		return res.PotentialTrace
	}, cfg.Seed+12)
	var monoUser int
	for _, tr := range userTraces {
		if ok, _ := potential.NonIncreasing(tr, 1e-9); !ok {
			monoUser++
		}
	}
	est := estimateFromTraces(userTraces)
	t.AddRow("Lemma 10", "pooled per-round potential drop delta", f("%.4f", est),
		"> 0 (const); analysis needs alpha*eps/(2(1+eps))*wmin/wmax")
	t.AddRow("(contrast)", "user traces with an increase", f("%d/%d", monoUser, len(userTraces)),
		"> 0 expected: user potential may rise transiently")
	t.AddNote("trials: %d; user workload two-point (wmax=8)", cfg.Trials)
	return t
}

func estimateFromTraces(traces [][]float64) float64 {
	return potential.MeanDrop(traces)
}

// DiffusionThresholds (E9) closes the loop on footnote 1: thresholds
// are not handed to the protocol by an oracle but estimated by
// continuous diffusion of the initial loads, then the
// resource-controlled protocol runs against the estimated thresholds.
func DiffusionThresholds(cfg Config) *Table {
	cfg = cfg.Defaults()
	side := 16
	if cfg.Quick {
		side = 8
	}
	g := graph.Grid2D(side, side, true)
	n := g.N()
	m := 4 * n
	kernel := walk.NewLazy(walk.NewMaxDegree(g))
	const eps = 0.5
	t := &Table{
		ID:     "diffusion",
		Title:  "diffusion-estimated thresholds vs oracle thresholds (torus)",
		Header: []string{"thresholds", "diff steps", "max dev of estimate", "rounds"},
	}
	type outcome struct {
		steps  int
		dev    float64
		rounds float64
	}
	run := func(oracle bool) outcome {
		res := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) outcome {
			ts := buildWeighted(m, task.UniformRange{Lo: 1, Hi: 4}, seed)
			placement := singleSourcePlacement(ts, n, seed)
			var policy core.Thresholds = core.AboveAverage{Eps: eps}
			var steps int
			var dev float64
			if !oracle {
				loads := make([]float64, n)
				for id, r := range placement {
					loads[r] += ts.Weight(id)
				}
				est, st := diffusion.RunUntil(kernel, loads, 0.05, 1_000_000)
				steps = st
				dev = diffusion.MaxDeviation(est, ts.W()/float64(n))
				policy = core.FromEstimates(est, eps, ts.WMax())
			}
			s := core.NewState(g, ts, placement, policy, seed)
			r := core.Run(s, core.ResourceControlled{Kernel: kernel}, core.RunOptions{MaxRounds: 2_000_000})
			rounds := float64(r.Rounds)
			if !r.Balanced {
				rounds = 2_000_000
			}
			return outcome{steps: steps, dev: dev, rounds: rounds}
		}, cfg.Seed+13)
		var agg outcome
		for _, o := range res {
			agg.steps += o.steps
			agg.dev = math.Max(agg.dev, o.dev)
			agg.rounds += o.rounds
		}
		agg.steps /= len(res)
		agg.rounds /= float64(len(res))
		return agg
	}
	or := run(true)
	t.AddRow("oracle (1+eps)W/n+wmax", "-", "-", f("%.1f", or.rounds))
	es := run(false)
	t.AddRow("diffusion estimate", f("%d", es.steps), f("%.3f", es.dev), f("%.1f", es.rounds))
	t.AddNote("diffusion stops when every estimate is within 5%% of the true average (footnote 1: mixing-time many steps)")
	return t
}

// Ablation (E10) compares design choices the paper raises: the mixed
// resource+user protocol from the conclusion, the walk kernel, the
// user-controlled variant on sparse graphs, and non-uniform thresholds.
func Ablation(cfg Config) *Table {
	cfg = cfg.Defaults()
	side := 12
	if cfg.Quick {
		side = 6
	}
	g := graph.Grid2D(side, side, true)
	n := g.N()
	m := 4 * n
	const eps = 0.5
	t := &Table{
		ID:     "ablation",
		Title:  "ablations on the torus: protocol, kernel, thresholds",
		Header: []string{"variant", "rounds", "migrations"},
	}
	type variant struct {
		name string
		make func() (core.Thresholds, func() core.Protocol)
	}
	kernels := map[string]walk.Kernel{
		"maxdeg":      walk.NewMaxDegree(g),
		"lazy-maxdeg": walk.NewLazy(walk.NewMaxDegree(g)),
		"metropolis":  walk.NewMetropolis(g),
	}
	slack := make([]float64, n)
	for i := range slack {
		if i%2 == 1 {
			slack[i] = 4 // half the resources advertise extra headroom
		}
	}
	variants := []variant{
		{"resource(maxdeg)", func() (core.Thresholds, func() core.Protocol) {
			return core.AboveAverage{Eps: eps}, func() core.Protocol {
				return core.ResourceControlled{Kernel: kernels["maxdeg"]}
			}
		}},
		{"resource(lazy-maxdeg)", func() (core.Thresholds, func() core.Protocol) {
			return core.AboveAverage{Eps: eps}, func() core.Protocol {
				return core.ResourceControlled{Kernel: kernels["lazy-maxdeg"]}
			}
		}},
		{"resource(metropolis)", func() (core.Thresholds, func() core.Protocol) {
			return core.AboveAverage{Eps: eps}, func() core.Protocol {
				return core.ResourceControlled{Kernel: kernels["metropolis"]}
			}
		}},
		{"resource-single-task", func() (core.Thresholds, func() core.Protocol) {
			return core.AboveAverage{Eps: eps}, func() core.Protocol {
				return core.ResourceControlledSingle{Kernel: kernels["lazy-maxdeg"]}
			}
		}},
		{"user-graph(alpha=1)", func() (core.Thresholds, func() core.Protocol) {
			return core.AboveAverage{Eps: eps}, func() core.Protocol {
				return core.UserControlledGraph{Alpha: 1}
			}
		}},
		{"mixed(resource|user,period=2)", func() (core.Thresholds, func() core.Protocol) {
			return core.AboveAverage{Eps: eps}, func() core.Protocol {
				return core.Mixed{
					A:      core.ResourceControlled{Kernel: kernels["lazy-maxdeg"]},
					B:      core.UserControlledGraph{Alpha: 1},
					Period: 2,
				}
			}
		}},
		{"resource, non-uniform T", func() (core.Thresholds, func() core.Protocol) {
			return core.NonUniform{Base: core.AboveAverage{Eps: eps}, Slack: slack}, func() core.Protocol {
				return core.ResourceControlled{Kernel: kernels["lazy-maxdeg"]}
			}
		}},
	}
	for _, v := range variants {
		policy, mkProto := v.make()
		type met struct{ rounds, migs float64 }
		res := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) met {
			ts := buildWeighted(m, task.UniformRange{Lo: 1, Hi: 4}, seed)
			s := core.NewState(g, ts, singleSourcePlacement(ts, n, seed), policy, seed)
			r := core.Run(s, mkProto(), core.RunOptions{MaxRounds: 2_000_000})
			rounds := float64(r.Rounds)
			if !r.Balanced {
				rounds = 2_000_000
			}
			return met{rounds: rounds, migs: float64(r.Migrations)}
		}, cfg.Seed+14)
		var ro, mi stats.Online
		for _, x := range res {
			ro.Add(x.rounds)
			mi.Add(x.migs)
		}
		t.AddRow(v.name, meanCell(ro), f("%.0f", mi.Mean()))
	}
	t.AddNote("same torus, workload (uniform weights in [1,4], single source) and trial seeds for all variants")
	t.AddNote("on a regular graph the Metropolis kernel coincides with the max-degree kernel, so those rows must match exactly")
	return t
}
