package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickCfg keeps test runtime manageable while still executing every
// driver end to end.
func quickCfg() Config {
	return Config{Trials: 3, Workers: 2, Seed: 0xfeed, Quick: true}
}

func TestEveryDriverRuns(t *testing.T) {
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Driver(quickCfg())
			if tbl == nil || tbl.ID != e.ID {
				t.Fatalf("driver %s returned %+v", e.ID, tbl)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("driver %s produced no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("driver %s: row %v does not match header %v", e.ID, row, tbl.Header)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if Lookup("figure1") == nil {
		t.Fatal("figure1 missing")
	}
	if Lookup("nonsense") != nil {
		t.Fatal("unknown id should return nil")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("n=%d", 7)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a    bb", "333", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tbl.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" || lines[1] != "1,2" {
		t.Fatalf("csv output %q", buf.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Trials != 50 || c.Seed == 0 {
		t.Fatalf("defaults %+v", c)
	}
	c2 := Config{Trials: 7, Seed: 9}.Defaults()
	if c2.Trials != 7 || c2.Seed != 9 {
		t.Fatalf("defaults overwrote explicit values: %+v", c2)
	}
}

func TestFigure1Deterministic(t *testing.T) {
	a := FigureOne(quickCfg())
	b := FigureOne(quickCfg())
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestFigure1RoundsGrowWithW(t *testing.T) {
	tbl := FigureOne(quickCfg())
	// For fixed k (first Quick k-block), rounds should increase with W.
	var prev float64 = -1
	count := 0
	for _, row := range tbl.Rows {
		if row[1] != "1" { // k column
			continue
		}
		mean := parseMean(t, row[3])
		if prev >= 0 && mean < prev*0.5 {
			t.Fatalf("rounds dropped sharply with W: %v -> %v", prev, mean)
		}
		prev = mean
		count++
	}
	if count < 2 {
		t.Fatalf("expected multiple k=1 rows, got %d", count)
	}
}

func TestFigure2NormalisedGrowsWithWmax(t *testing.T) {
	tbl := FigureTwo(quickCfg())
	// Average normalised time per wmax must increase from wmax=1 to
	// wmax=256 (Theorem 11 has the wmax/wmin factor).
	norm := map[string][]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		norm[row[0]] = append(norm[row[0]], v)
	}
	avg := func(vs []float64) float64 {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	small, large := avg(norm["1"]), avg(norm["256"])
	if large < 4*small {
		t.Fatalf("normalised time should grow strongly with wmax: wmax=1→%.2f wmax=256→%.2f", small, large)
	}
}

func parseMean(t *testing.T, cell string) float64 {
	t.Helper()
	i := strings.IndexRune(cell, '±')
	if i < 0 {
		t.Fatalf("cell %q has no ± part", cell)
	}
	v, err := strconv.ParseFloat(cell[:i], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTableCellsAreNumericWhereExpected(t *testing.T) {
	// The CSV output feeds plotting scripts; numeric columns must parse.
	tbl := FigureTwo(quickCfg())
	for _, row := range tbl.Rows {
		if _, err := strconv.ParseFloat(row[0], 64); err != nil {
			t.Fatalf("wmax cell %q not numeric", row[0])
		}
		if _, err := strconv.Atoi(row[1]); err != nil {
			t.Fatalf("m cell %q not an int", row[1])
		}
		if _, err := strconv.ParseFloat(row[3], 64); err != nil {
			t.Fatalf("normalised cell %q not numeric", row[3])
		}
	}
}

func TestDriversHonourTrialCount(t *testing.T) {
	// The trials knob must reach the notes so reports are self-describing.
	cfg := quickCfg()
	cfg.Trials = 4
	tbl := FigureOne(cfg)
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "trials per point: 4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes missing trial count: %v", tbl.Notes)
	}
}

func TestAblationMetropolisEqualsMaxdegOnTorus(t *testing.T) {
	// On a regular graph Metropolis degenerates to the max-degree
	// kernel; the ablation rows must agree exactly (same seeds).
	tbl := Ablation(quickCfg())
	byName := map[string]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row[1]
	}
	if byName["resource(maxdeg)"] == "" || byName["resource(maxdeg)"] != byName["resource(metropolis)"] {
		t.Fatalf("kernel-equivalence violated: %q vs %q",
			byName["resource(maxdeg)"], byName["resource(metropolis)"])
	}
}
