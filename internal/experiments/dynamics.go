package experiments

import (
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// dynParetoMean is E[min(Pareto(1,2), 20)] = 2 − 1/20, the mean weight
// of the open-system workload used by the dynamic drivers.
const dynParetoMean = 1.95

// dynTrial runs one open-system trial and returns the steady-state
// summary (warm-up windows discarded).
type dynSummary struct {
	overload  float64 // tail time-averaged overload fraction
	p99       float64 // last-window p99 load
	inflight  float64 // last-window in-flight weight per up resource
	migRate   float64 // tail migrations per round
	rehomed   float64 // total re-homed tasks
	arrived   float64
	departed  float64
	conserved bool // weight balance held at the end
}

func dynTrial(cfg dynamic.Config, warmWindows int) dynSummary {
	res, err := dynamic.Run(cfg)
	if err != nil {
		// Conservation or invariant failure: surface as a broken row
		// instead of aborting the whole sweep.
		return dynSummary{conserved: false}
	}
	var mig float64
	tail := res.Windows[warmWindows:]
	for _, w := range tail {
		mig += w.MigrationRate
	}
	last := res.Windows[len(res.Windows)-1]
	return dynSummary{
		overload:  res.TailOverloadFrac(warmWindows),
		p99:       last.P99Load,
		inflight:  last.InFlightWeight / float64(last.UpResources),
		migRate:   mig / float64(len(tail)),
		rehomed:   float64(res.Rehomed),
		arrived:   float64(res.Arrived),
		departed:  float64(res.Departed),
		conserved: true,
	}
}

// DynamicRho sweeps the offered utilisation ρ → 1 on the open system:
// Poisson arrivals of Pareto-weighted tasks at rate ρ·n/E[w] against
// unit per-resource service, user-controlled migration on the complete
// graph, thresholds self-tuned online from diffused decaying load
// averages. The table shows where threshold balancing keeps the system
// in steady state (low overload fraction, bounded in-flight weight)
// and how the margin erodes as ρ approaches the capacity limit.
func DynamicRho(cfg Config) *Table {
	cfg = cfg.Defaults()
	n := 1000
	rounds, window, warm := 600, 100, 2
	rhos := []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	if cfg.Quick {
		n = 200
		rounds, window, warm = 300, 50, 2
		rhos = []float64{0.5, 0.8, 0.95}
	}
	g := graph.Complete(n)
	t := &Table{
		ID:     "dynrho",
		Title:  f("open system: utilisation sweep (n=%d, Poisson/Pareto(2,cap20), self-tuned thresholds)", n),
		Header: []string{"rho", "overload%", "p99 load", "W/n in flight", "migrations/round"},
	}
	for _, rho := range rhos {
		out := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) dynSummary {
			return dynTrial(dynamic.Config{
				Graph:    g,
				Protocol: core.UserControlled{Alpha: 1},
				Arrivals: dynamic.Poisson{Rate: rho * float64(n) / dynParetoMean,
					Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service: dynamic.WeightProportional{Rate: 1},
				Tuner: &dynamic.SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Rounds: rounds,
				Window: window,
				Seed:   seed,
			}, warm)
		}, cfg.Seed)
		var over, p99, infl, mig stats.Online
		broken := 0
		for _, s := range out {
			if !s.conserved {
				broken++ // excluded: an all-zero row would fake perfect balance
				continue
			}
			over.Add(s.overload * 100)
			p99.Add(s.p99)
			infl.Add(s.inflight)
			mig.Add(s.migRate)
		}
		t.AddRow(f("%.2f", rho), meanCell(over), meanCell(p99), meanCell(infl), meanCell(mig))
		if broken > 0 {
			t.AddNote("rho=%.2f: %d/%d trials failed conservation and were excluded", rho, broken, len(out))
		}
	}
	t.AddNote("rho = arrivalRate*E[w]/(n*serviceRate); overload%% is the tail time-averaged fraction of resources above threshold")
	return t
}

// DynamicScale measures the sharded engine: one fixed open-system
// workload run at worker counts 1, 2, 4, 8, reporting wall-clock
// rounds/second per worker count and — the engine's headline guarantee
// — verifying that every run's Result is bit-identical to the
// sequential one (windowed metrics and float totals included). On a
// single-core host the speedup column reads ≈ 1; the determinism
// column must read true everywhere regardless.
func DynamicScale(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, deg := 5000, 16
	rounds := 400
	if cfg.Quick {
		n, rounds = 1000, 150
	}
	g := graph.RandomRegular(n, deg, rng.NewSeeded(cfg.Seed))
	build := func(workers int) dynamic.Config {
		return dynamic.Config{
			Graph:    g,
			Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / dynParetoMean,
				Weights: task.Pareto{Alpha: 2, Cap: 20}},
			Service: dynamic.WeightProportional{Rate: 1},
			Tuner: &dynamic.SelfTuner{Eps: 0.5, Steps: 2,
				Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
			Rounds:  rounds,
			Window:  rounds,
			Seed:    cfg.Seed,
			Workers: workers,
		}
	}
	t := &Table{
		ID:     "dynscale",
		Title:  f("open system: sharded-engine scaling (n=%d expander, rho=0.8, %d rounds)", n, rounds),
		Header: []string{"workers", "rounds/sec", "speedup", "identical to sequential"},
	}
	var ref dynamic.Result
	var seqRate float64
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := dynamic.Run(build(workers))
		elapsed := time.Since(start)
		if err != nil {
			t.AddRow(f("%d", workers), "error", "-", f("%v", err))
			if workers == 1 {
				// Without the sequential reference the speedup and
				// determinism columns are meaningless; stop here.
				t.AddNote("sequential reference run failed; sweep aborted")
				return t
			}
			continue
		}
		rate := float64(rounds) / elapsed.Seconds()
		identical := true
		if workers == 1 {
			ref = res
			seqRate = rate
		} else {
			identical = reflect.DeepEqual(res, ref)
		}
		t.AddRow(f("%d", workers), f("%.0f", rate), f("%.2fx", rate/seqRate), f("%v", identical))
	}
	t.AddNote("identical: reflect.DeepEqual of the full Result (windows, float totals) against workers=1")
	t.AddNote("GOMAXPROCS=%d during this run; speedup is wall-clock and saturates at the core count", runtime.GOMAXPROCS(0))
	return t
}

// DynamicChurn holds ρ = 0.8 fixed and sweeps the resource churn rate,
// checking that re-homing conserves in-flight weight while measuring
// what machine turnover costs in overload and forced moves. Runs the
// resource-controlled protocol on an expander (churn on the complete
// graph is the easy case; an expander keeps re-homed work local).
func DynamicChurn(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, deg := 500, 8
	rounds, window, warm := 500, 100, 2
	churns := []float64{0, 0.05, 0.1, 0.2, 0.5}
	if cfg.Quick {
		n = 200
		rounds, window, warm = 250, 50, 2
		churns = []float64{0, 0.1, 0.5}
	}
	g := graph.RandomRegular(n, deg, rng.NewSeeded(cfg.Seed))
	t := &Table{
		ID:     "dynchurn",
		Title:  f("open system: resource churn sweep (n=%d expander, rho=0.8, resource-controlled)", n),
		Header: []string{"leave/join prob", "overload%", "rehomed/trial", "W/n in flight", "conserved"},
	}
	for _, p := range churns {
		out := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) dynSummary {
			return dynTrial(dynamic.Config{
				Graph:    g,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / dynParetoMean,
					Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service: dynamic.WeightProportional{Rate: 1},
				Tuner: &dynamic.SelfTuner{Eps: 0.5,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Churn:  dynamic.Churn{LeaveProb: p, JoinProb: p, MinUp: n / 2},
				Rounds: rounds,
				Window: window,
				Seed:   seed,

				CheckInvariants: true,
			}, warm)
		}, cfg.Seed)
		var over, rehomed, infl stats.Online
		conserved := true
		for _, s := range out {
			if !s.conserved {
				conserved = false // flagged in the row; excluded from means
				continue
			}
			over.Add(s.overload * 100)
			rehomed.Add(s.rehomed)
			infl.Add(s.inflight)
		}
		t.AddRow(f("%.2f", p), meanCell(over), meanCell(rehomed), meanCell(infl), f("%v", conserved))
	}
	t.AddNote("conserved: every trial's in-flight weight matched arrived-departed after per-round invariant checks")
	return t
}
