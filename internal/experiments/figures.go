package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/task"
)

// figureParams are the paper's Section 7 constants: n = 1000 resources,
// ε = 0.2, α = 1, wmin = 1, all tasks initially on one resource.
const (
	figureN     = 1000
	figureEps   = 0.2
	figureAlpha = 1.0
	figureWMax  = 50.0
)

// FigureOne reproduces Figure 1: user-controlled balancing time as a
// function of the total weight W, for k ∈ {1,5,10,20,50} tasks of
// weight wmax = 50 (the rest weight 1), on the complete graph with
// n = 1000, ε = 0.2, α = 1. The paper's observations to match:
// the balancing time grows with log(m(W,k)+k) and is nearly
// independent of k.
func FigureOne(cfg Config) *Table {
	cfg = cfg.Defaults()
	n := figureN
	ws := []float64{2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
	ks := []int{1, 5, 10, 20, 50}
	if cfg.Quick {
		n = 200
		ws = []float64{2000, 4000, 6000}
		ks = []int{1, 10, 50}
	}
	g := graph.Complete(n)
	t := &Table{
		ID:     "figure1",
		Title:  "user-controlled balancing time vs W (n=1000, eps=0.2, alpha=1, wmax=50)",
		Header: []string{"W", "k", "m", "rounds", "rounds/log(m)"},
	}
	// For the paper's headline claim we also fit rounds against log m
	// pooled over all k.
	var fitX, fitY []float64
	for _, k := range ks {
		for _, W := range ws {
			units := int(W) - k*int(figureWMax)
			if units < 0 {
				continue // W too small to host k heavy tasks
			}
			m := units + k
			dist := task.TwoPoint{Heavy: figureWMax, K: k}
			o := trialRounds(cfg, 100000, func(seed uint64) (*core.State, core.Protocol) {
				ts := buildWeighted(m, dist, seed)
				placement := singleSourcePlacement(ts, n, seed)
				s := core.NewState(g, ts, placement, core.AboveAverage{Eps: figureEps}, seed)
				return s, core.UserControlled{Alpha: figureAlpha}
			})
			logm := math.Log(float64(m))
			t.AddRow(f("%.0f", W), f("%d", k), f("%d", m), meanCell(o), f("%.2f", o.Mean()/logm))
			fitX = append(fitX, float64(m))
			fitY = append(fitY, o.Mean())
		}
	}
	if len(fitX) >= 2 {
		fit := stats.FitLog(fitX, fitY)
		t.AddNote("pooled fit rounds ≈ %.2f·ln(m) + %.2f (R²=%.3f) — paper: time ∝ log(m(W,k)+k)",
			fit.Slope, fit.Intercept, fit.R2)
	}
	t.AddNote("trials per point: %d (paper: 1000); protocol: Algorithm 6.1 on the complete graph", cfg.Trials)
	return t
}

// FigureTwo reproduces Figure 2: normalised balancing time
// rounds/log(m) versus the number of tasks m, for maximum weights
// wmax ∈ {1,2,4,…,256} with exactly one heavy task, n = 1000. The
// paper's observations to match: the normalised time is flat in m
// (so time = Θ(log m)) and grows almost linearly with wmax,
// witnessing that Theorem 11's O(wmax/wmin·log m) is tight up to a
// constant.
func FigureTwo(cfg Config) *Table {
	cfg = cfg.Defaults()
	n := figureN
	wmaxes := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	ms := []int{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}
	if cfg.Quick {
		n = 200
		wmaxes = []float64{1, 16, 256}
		ms = []int{500, 2000, 5000}
	}
	g := graph.Complete(n)
	t := &Table{
		ID:     "figure2",
		Title:  "normalised balancing time vs m for one heavy task (n=1000, eps=0.2, alpha=1)",
		Header: []string{"wmax", "m", "rounds", "rounds/log(m)"},
	}
	// Per-wmax mean of the normalised time, for the linear-in-wmax fit.
	var wx, wy []float64
	for _, wmax := range wmaxes {
		var norm stats.Online
		for _, m := range ms {
			k := 1
			if wmax == 1 {
				k = 0 // all-unit workload: wmax degenerates to wmin
			}
			dist := task.TwoPoint{Heavy: math.Max(wmax, 1), K: k}
			o := trialRounds(cfg, 100000, func(seed uint64) (*core.State, core.Protocol) {
				ts := buildWeighted(m, dist, seed)
				placement := singleSourcePlacement(ts, n, seed)
				s := core.NewState(g, ts, placement, core.AboveAverage{Eps: figureEps}, seed)
				return s, core.UserControlled{Alpha: figureAlpha}
			})
			nt := o.Mean() / math.Log(float64(m))
			norm.Add(nt)
			t.AddRow(f("%.0f", wmax), f("%d", m), meanCell(o), f("%.2f", nt))
		}
		wx = append(wx, wmax)
		wy = append(wy, norm.Mean())
	}
	if len(wx) >= 2 {
		fit := stats.FitPower(wx, wy)
		t.AddNote("fit rounds/log(m) ≈ %.2f·wmax^%.2f (R²=%.3f) — paper: almost linear in wmax/wmin",
			fit.C, fit.Exponent, fit.R2)
	}
	t.AddNote("trials per point: %d (paper: 1000)", cfg.Trials)
	return t
}
