package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// Baselines (E11) positions the paper's protocols against the
// related-work algorithms on the same workload:
//
//   - rounds-to-threshold on a torus: resource-controlled threshold
//     protocol vs ideal (fluid) diffusion vs integral (whole-task)
//     diffusion. Integral diffusion stalls at a discretisation floor of
//     avg + Θ(d) and cannot reach the paper's tight threshold when
//     tasks are indivisible — the motivating gap for threshold
//     protocols.
//   - allocation quality on the complete graph: the final max-load gap
//     of the threshold protocol vs Greedy[2], the (1+β) process, purely
//     random allocation and the centralised least-loaded oracle.
func Baselines(cfg Config) *Table {
	cfg = cfg.Defaults()
	side := 10
	if cfg.Quick {
		side = 6
	}
	g := graph.Grid2D(side, side, true)
	n := g.N()
	m := 8 * n
	t := &Table{
		ID:     "baselines",
		Title:  "threshold protocol vs related-work baselines",
		Header: []string{"algorithm", "metric", "value", "comment"},
	}

	// --- Part 1: rounds to reach the tight threshold on the torus.
	kernel := walk.NewLazy(walk.NewMaxDegree(g))
	thrOf := func(ts *task.Set) float64 { return ts.W()/float64(n) + 2*ts.WMax() }

	resRounds := trialRounds(cfg, 5_000_000, func(seed uint64) (*core.State, core.Protocol) {
		ts := buildWeighted(m, task.UniformRange{Lo: 1, Hi: 4}, seed)
		s := core.NewState(g, ts, singleSourcePlacement(ts, n, seed), core.TightResource{}, seed)
		return s, core.ResourceControlled{Kernel: kernel}
	})
	t.AddRow("resource-controlled (Alg 5.1)", "rounds to W/n+2wmax", meanCell(resRounds), "the paper's protocol")

	type diffOut struct {
		rounds   float64
		balanced bool
		stalled  bool
		maxLoad  float64
	}
	integral := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) diffOut {
		ts := buildWeighted(m, task.UniformRange{Lo: 1, Hi: 4}, seed)
		placement := singleSourcePlacement(ts, n, seed)
		st := baseline.NewIntegralState(g, ts, placement)
		rounds, balanced, stalled := st.BalanceToThreshold(baseline.DiffusionBalancer{}, thrOf(ts), 1_000_000)
		return diffOut{rounds: float64(rounds), balanced: balanced, stalled: stalled, maxLoad: st.MaxLoad()}
	}, cfg.Seed+20)
	var stalls int
	var excess stats.Online
	for _, o := range integral {
		if !o.balanced {
			stalls++
		}
		excess.Add(o.maxLoad)
	}
	t.AddRow("integral diffusion (FOS)", "trials stalled above threshold",
		f("%d/%d", stalls, len(integral)),
		f("stall floor avg+Θ(d); mean final max load %.1f", excess.Mean()))

	var idealRounds stats.Online
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := sim.TrialSeed(cfg.Seed+21, trial)
		ts := buildWeighted(m, task.UniformRange{Lo: 1, Hi: 4}, seed)
		loads := make([]float64, n)
		for id, r := range singleSourcePlacement(ts, n, seed) {
			loads[r] += ts.Weight(id)
		}
		// Fluid diffusion runs to the same slack the tight threshold allows.
		_, rounds := baseline.DiffusionBalancer{}.IdealBalance(g, loads, 2*ts.WMax(), 1_000_000)
		idealRounds.Add(float64(rounds))
	}
	t.AddRow("ideal (fluid) diffusion", "rounds to avg+2wmax", meanCell(idealRounds), "splittable-load lower-bound reference")

	// --- Part 2: allocation quality (max-load gap) on the complete graph.
	nK := 100
	mK := 50 * nK
	gK := graph.Complete(nK)
	dist := task.TwoPoint{Heavy: 20, K: mK / 50}
	gapThreshold := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) float64 {
		ts := buildWeighted(mK, dist, seed)
		s := core.NewState(gK, ts, singleSourcePlacement(ts, nK, seed), core.TightUser{}, seed)
		res := core.Run(s, core.UserControlled{Alpha: 1}, core.RunOptions{MaxRounds: 1_000_000})
		_ = res
		max := 0.0
		for r := 0; r < nK; r++ {
			max = math.Max(max, s.Load(r))
		}
		return max - ts.W()/float64(nK)
	}, cfg.Seed+22)
	addGapRow := func(name string, gap []float64, comment string) {
		var o stats.Online
		for _, v := range gap {
			o.Add(v)
		}
		t.AddRow(name, "max load - average", f("%.2f±%.2f", o.Mean(), o.CI95()), comment)
	}
	addGapRow("user-controlled to W/n+wmax", gapThreshold, "paper's tight threshold caps the gap at wmax")
	for _, c := range []struct {
		name    string
		beta    float64
		comment string
	}{
		{"greedy[2] sequential", 0, "Talwar–Wieder two-choice"},
		{"(1+beta), beta=0.5", 0.5, "Peres–Talwar–Wieder"},
		{"random (beta=1)", 1, "single-choice; gap grows with m/n"},
	} {
		gaps := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) float64 {
			ts := buildWeighted(mK, dist, seed)
			return baseline.Gap(baseline.TwoChoice{Beta: c.beta}.Allocate(ts, nK, rng.NewSeeded(seed)))
		}, cfg.Seed+23)
		addGapRow(c.name, gaps, c.comment)
	}
	oracleGaps := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) float64 {
		ts := buildWeighted(mK, dist, seed)
		return baseline.Gap(baseline.LeastLoaded(ts, nK))
	}, cfg.Seed+24)
	addGapRow("least-loaded oracle (LPT)", oracleGaps, "centralised reference")
	t.AddNote("part 1: torus %dx%d, %d tasks, weights U[1,4], single source; part 2: K_%d, %d tasks, two-point weights", side, side, m, nK, mK)
	return t
}
