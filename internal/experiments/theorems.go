package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// TheoremThree validates the resource-controlled above-average bound
// O(τ(G)·log m) (E4): across graph families and two weight
// distributions, the measured balancing time divided by τ(G)·ln m
// should be a constant of moderate size, and the weighted and unit
// rows for the same graph should be close (the bound is
// weight-independent).
func TheoremThree(cfg Config) *Table {
	cfg = cfg.Defaults()
	n := 128
	if cfg.Quick {
		n = 64
	}
	r := rng.NewSeeded(cfg.Seed + 1)
	side := int(math.Round(math.Sqrt(float64(n))))
	graphs := []*graph.Graph{
		graph.Complete(n),
		graph.RandomRegular(n, 4, r),
		graph.Hypercube(bitsFor(n)),
		graph.Grid2D(side, side, true),
	}
	dists := []task.Distribution{
		task.Uniform{W: 1},
		task.Pareto{Alpha: 1.5, Cap: 30},
	}
	t := &Table{
		ID:    "theorem3",
		Title: "resource-controlled, T=(1+eps)W/n+wmax: rounds vs tau(G)·ln m",
		Header: []string{"graph", "weights", "m", "tmix", "rounds",
			"tau·ln(m)", "rounds/(tau·ln m)"},
	}
	const eps = 0.5
	for _, g := range graphs {
		kernel := walk.NewLazy(walk.NewMaxDegree(g))
		tmix := walk.MixingTimeTV(kernel, []int{0}, walk.DefaultMixingEps, 10_000_000)
		m := 4 * g.N()
		for _, dist := range dists {
			o := trialRounds(cfg, 1_000_000, func(seed uint64) (*core.State, core.Protocol) {
				ts := buildWeighted(m, dist, seed)
				placement := singleSourcePlacement(ts, g.N(), seed)
				s := core.NewState(g, ts, placement, core.AboveAverage{Eps: eps}, seed)
				return s, core.ResourceControlled{Kernel: kernel}
			})
			bound := math.Max(float64(tmix), 1) * math.Log(float64(m))
			t.AddRow(g.Name(), dist.Name(), f("%d", m), f("%d", tmix),
				meanCell(o), f("%.0f", bound), f("%.3f", o.Mean()/bound))
		}
	}
	t.AddNote("kernel: lazy max-degree walk (constant-factor laziness keeps bipartite families aperiodic)")
	t.AddNote("expect the last column to be O(1) across rows, and unit vs pareto rows to agree (weight-independence)")
	return t
}

// TheoremSeven validates the resource-controlled tight-threshold bound
// O(H(G)·ln W) (E5): measured rounds divided by H(G)·ln W should be
// bounded across graph families.
func TheoremSeven(cfg Config) *Table {
	cfg = cfg.Defaults()
	n := 64
	if cfg.Quick {
		n = 36
	}
	r := rng.NewSeeded(cfg.Seed + 2)
	side := int(math.Round(math.Sqrt(float64(n))))
	graphs := []*graph.Graph{
		graph.Complete(n),
		graph.RandomRegular(n, 4, r),
		graph.Grid2D(side, side, true),
		graph.CliquePendant(n, 2),
	}
	t := &Table{
		ID:    "theorem7",
		Title: "resource-controlled, T=W/n+2wmax: rounds vs H(G)·ln W",
		Header: []string{"graph", "m", "H(G)", "rounds", "H·ln(W)",
			"rounds/(H·ln W)", "thm7 bound"},
	}
	for _, g := range graphs {
		kernel := walk.NewLazy(walk.NewMaxDegree(g))
		h := walk.MaxHittingTime(kernel, 1e-8, 2_000_000)
		m := 8 * g.N()
		o := trialRounds(cfg, 5_000_000, func(seed uint64) (*core.State, core.Protocol) {
			ts := buildWeighted(m, task.Uniform{W: 1}, seed)
			placement := singleSourcePlacement(ts, g.N(), seed)
			s := core.NewState(g, ts, placement, core.TightResource{}, seed)
			return s, core.ResourceControlled{Kernel: kernel}
		})
		w := float64(m)
		denom := h * math.Log(w)
		t.AddRow(g.Name(), f("%d", m), f("%.0f", h), meanCell(o),
			f("%.0f", denom), f("%.4f", o.Mean()/denom),
			f("%.0f", drift.Theorem7Bound(h, w, 1)))
	}
	t.AddNote("thm7 bound = 2H·4·(1+ln(W/wmin)); measurements should sit well below it with constant ratio")
	return t
}

// ObservationEight validates the lower-bound family (E6): on the
// clique+pendant graph the maximum hitting time is Θ(n²/k), and the
// tight-threshold resource-controlled protocol needs Θ(H(G)·log m)
// rounds. We sweep k and fit rounds against H(G).
func ObservationEight(cfg Config) *Table {
	cfg = cfg.Defaults()
	n := 48
	ks := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		n = 24
		ks = []int{1, 4, 16}
	}
	t := &Table{
		ID:     "obs8",
		Title:  "Observation 8: clique(n-1)+pendant with k links, tight threshold",
		Header: []string{"k", "H(G)", "n^2/k", "rounds", "rounds/(H·ln m)"},
	}
	// Adversarial initial distribution per the Observation 8 proof:
	// every clique node starts at W/n, and the excess W/n sits on
	// clique node 0; the pendant node starts empty, so the excess can
	// only drain through the k bridge edges.
	perNode := 3 * n // W/n = 3n ⇒ clique slack 2(n−2) < excess 3n−2 ⇒ pendant must be used
	m := perNode * n
	var hs, rounds []float64
	for _, k := range ks {
		g := graph.CliquePendant(n, k)
		kernel := walk.NewLazy(walk.NewMaxDegree(g))
		h := walk.MaxHittingTime(kernel, 1e-8, 2_000_000)
		o := trialRounds(cfg, 20_000_000, func(seed uint64) (*core.State, core.Protocol) {
			ts := buildWeighted(m, task.Uniform{W: 1}, seed)
			placement := make([]int, m)
			id := 0
			for node := 0; node < n-1; node++ { // clique nodes get W/n each
				for j := 0; j < perNode; j++ {
					placement[id] = node
					id++
				}
			}
			for ; id < m; id++ { // the excess W/n lands on clique node 0
				placement[id] = 0
			}
			s := core.NewState(g, ts, placement, core.TightResource{}, seed)
			return s, core.ResourceControlled{Kernel: kernel}
		})
		t.AddRow(f("%d", k), f("%.0f", h), f("%.0f", float64(n*n)/float64(k)),
			meanCell(o), f("%.4f", o.Mean()/(h*math.Log(float64(m)))))
		hs = append(hs, h)
		rounds = append(rounds, o.Mean())
	}
	if len(hs) >= 2 {
		fit := stats.FitPower(hs, rounds)
		t.AddNote("fit rounds ~ H(G)^%.2f (R²=%.3f) — Observation 8 predicts exponent ≈ 1", fit.Exponent, fit.R2)
		fk := stats.FitPower(invert(ks), rounds)
		t.AddNote("fit rounds ~ (1/k)^%.2f — H(G)=Θ(n²/k) predicts exponent ≈ 1", fk.Exponent)
	}
	return t
}

func invert(ks []int) []float64 {
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = 1 / float64(k)
	}
	return out
}

func bitsFor(n int) int {
	d := 0
	for 1<<uint(d) < n {
		d++
	}
	return d
}

// AlphaSweep (E7) examines the user-controlled analysis constants:
// Theorem 11's α = ε/(120(1+ε)) is very conservative — the paper's
// simulations use α = 1 and §7 leaves closing the gap as an open
// question. We sweep α for both threshold regimes and report measured
// rounds against the theorem bounds.
func AlphaSweep(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, m := 200, 2000
	if cfg.Quick {
		n, m = 100, 600
	}
	const eps = 0.2
	g := graph.Complete(n)
	t := &Table{
		ID:     "alpha",
		Title:  "user-controlled alpha sweep (complete graph)",
		Header: []string{"threshold", "alpha", "rounds", "theorem bound", "measured/bound"},
	}
	alphaTheory := core.TheoryAlphaAboveAverage(eps)
	above := []float64{alphaTheory, 0.01, 0.05, 0.2, 1}
	for _, alpha := range above {
		c := cfg
		if alpha < 0.01 {
			c.Trials = minInt(cfg.Trials, 5) // theory α runs are long; keep them affordable
		}
		o := trialRounds(c, 10_000_000, func(seed uint64) (*core.State, core.Protocol) {
			ts := buildWeighted(m, task.Uniform{W: 1}, seed)
			s := core.NewState(g, ts, singleSourcePlacement(ts, n, seed), core.AboveAverage{Eps: eps}, seed)
			return s, core.UserControlled{Alpha: alpha}
		})
		bound := drift.Theorem11Bound(eps, alpha, 1, 1, m)
		t.AddRow("above-average", f("%.4g", alpha), meanCell(o), f("%.0f", bound), f("%.4f", o.Mean()/bound))
	}
	for _, alpha := range []float64{1 / float64(n), 0.1, 1} {
		o := trialRounds(cfg, 10_000_000, func(seed uint64) (*core.State, core.Protocol) {
			ts := buildWeighted(m, task.Uniform{W: 1}, seed)
			s := core.NewState(g, ts, singleSourcePlacement(ts, n, seed), core.TightUser{}, seed)
			return s, core.UserControlled{Alpha: alpha}
		})
		bound := drift.Theorem12Bound(n, alpha, 1, 1, m)
		t.AddRow("tight", f("%.4g", alpha), meanCell(o), f("%.0f", bound), f("%.4f", o.Mean()/bound))
	}
	t.AddNote("theorem-11 analysis alpha = eps/(120(1+eps)) = %.4g; simulations confirm alpha=1 works (paper §7)", alphaTheory)
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
