package experiments

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/walk"
)

// family is one row group of Table 1.
type family struct {
	name   string
	theory string // the asymptotic forms from the paper's Table 1
	build  func(n int, r *rng.Rand) *graph.Graph
	sizes  []int
}

func tableFamilies(quick bool) []family {
	sizes := []int{64, 256, 1024}
	if quick {
		sizes = []int{64, 256}
	}
	return []family{
		{
			name:   "complete",
			theory: "tau=O(1) H=O(n)",
			build:  func(n int, r *rng.Rand) *graph.Graph { return graph.Complete(n) },
			sizes:  sizes,
		},
		{
			name:   "regular-expander(d=3)",
			theory: "tau=O(log n) H=O(n)",
			build:  func(n int, r *rng.Rand) *graph.Graph { return graph.RandomRegular(n, 3, r) },
			sizes:  sizes,
		},
		{
			name:   "erdos-renyi(p=2ln n/n)",
			theory: "tau=O(log n) H=O(n)",
			build: func(n int, r *rng.Rand) *graph.Graph {
				p := 2 * math.Log(float64(n)) / float64(n)
				return graph.GenerateConnected(200, func() *graph.Graph {
					return graph.ErdosRenyi(n, p, r)
				})
			},
			sizes: sizes,
		},
		{
			name:   "hypercube",
			theory: "tau=O(log n loglog n) H=O(n)",
			build: func(n int, r *rng.Rand) *graph.Graph {
				dim := 0
				for 1<<uint(dim) < n {
					dim++
				}
				return graph.Hypercube(dim)
			},
			sizes: sizes,
		},
		{
			name:   "grid(torus)",
			theory: "tau=O(n) H=O(n log n)",
			build: func(n int, r *rng.Rand) *graph.Graph {
				side := int(math.Round(math.Sqrt(float64(n))))
				return graph.Grid2D(side, side, true)
			},
			sizes: sizes,
		},
	}
}

// TableOne reproduces Table 1/2: measured mixing and hitting times for
// the five graph families, against the asymptotic forms the paper
// lists. Mixing is measured two ways — the Lemma 2 analytic bound
// 4·ln n/µ from the measured spectral gap, and the exact 1/4-TV mixing
// time of the lazy max-degree walk (laziness avoids the periodicity of
// bipartite families; it costs only a constant factor). Hitting times
// use the paper's non-lazy max-degree walk.
func TableOne(cfg Config) *Table {
	cfg = cfg.Defaults()
	t := &Table{
		ID:    "table1",
		Title: "mixing & hitting times of common graphs (cf. paper Table 1)",
		Header: []string{"family", "n", "gap", "tau=4ln(n)/gap",
			"tmix(TV,lazy)", "H(G)", "theory"},
	}
	r := rng.NewSeeded(cfg.Seed)
	for _, fam := range tableFamilies(cfg.Quick) {
		var ns, tms, hs []float64
		for _, n := range fam.sizes {
			g := fam.build(n, r)
			lazy := walk.NewLazy(walk.NewMaxDegree(g))
			gap := walk.SpectralGap(lazy, 20000, r)
			tau := walk.MixingBound(g.N(), gap)
			tmix := walk.MixingTimeTV(lazy, walk.DefaultStarts(lazy), walk.DefaultMixingEps, 10_000_000)
			plain := walk.NewMaxDegree(g)
			h := walk.MaxHittingTimeSampled(plain, 3, 1e-8, 2_000_000, r)
			t.AddRow(fam.name, f("%d", g.N()), f("%.4g", gap), f("%.0f", tau),
				f("%d", tmix), f("%.0f", h), fam.theory)
			ns = append(ns, float64(g.N()))
			tms = append(tms, math.Max(float64(tmix), 1))
			hs = append(hs, h)
		}
		if len(ns) >= 2 {
			ft := stats.FitPower(ns, tms)
			fh := stats.FitPower(ns, hs)
			t.AddNote("%s: tmix ~ n^%.2f, H ~ n^%.2f (log factors fold into the exponent)",
				fam.name, ft.Exponent, fh.Exponent)
		}
	}
	t.AddNote("H(G) sampled over 3 targets — exact on vertex-transitive families")
	return t
}
