package experiments

import (
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// DynamicFaults measures graceful degradation under an unreliable
// network: the open system serves ρ = 0.8 Poisson traffic while the
// fault layer drops each migration message with probability p ∈
// {0, 0.1%, 1%, 5%}, crossed with two retry policies — fast
// (base 1, cap 4, give up after 20 rounds) and patient (base 2,
// cap 16, give up after 60). Lost moves sit in the in-flight ledger
// until a retry lands or the timeout re-homes them at their source,
// so the questions the table answers are: how much does steady-state
// overload rise with loss, how much retry traffic does each policy
// add, and does any weight leak (the conservation column re-validates
// placed + in-flight weight every round).
type faultSummary struct {
	steady    float64 // tail overload fraction after warm-up
	mig       float64 // migrations per round (late deliveries included)
	retries   float64 // retry attempts per round
	timeouts  float64 // tasks that gave up and re-homed at source
	ledgerW   float64 // weight still in flight at the end of the run
	conserved bool
}

// DynamicFaults is the dynfaults experiment driver.
func DynamicFaults(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, rounds, window, warm := 1000, 600, 100, 2
	if cfg.Quick {
		n, rounds, window, warm = 200, 300, 50, 2
	}
	g := graph.RandomRegular(n, 8, rng.NewSeeded(cfg.Seed))
	losses := []float64{0, 0.001, 0.01, 0.05}
	policies := []struct {
		name                string
		base, cap, deadline int
	}{
		{"fast 1:4:20", 1, 4, 20},
		{"patient 2:16:60", 2, 16, 60},
	}

	t := &Table{
		ID: "dynfaults",
		Title: f("unreliable network: message-loss sweep x retry policies (n=%d, rho=0.8, %d rounds; lost moves ledgered, retried with backoff, re-homed on timeout)",
			n, rounds),
		Header: []string{"loss%", "retry policy", "steady overload%", "mig/round", "retries/round", "timeouts", "ledger residue W", "conserved"},
	}
	for _, loss := range losses {
		pols := policies
		if loss == 0 {
			pols = policies[:1] // no losses, nothing to retry: one baseline row
		}
		for _, pol := range pols {
			var fplan *faults.Plan
			if loss > 0 {
				fplan = &faults.Plan{Loss: loss, RetryBase: pol.base, RetryCap: pol.cap, Timeout: pol.deadline}
			}
			out := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) faultSummary {
				res, err := dynamic.Run(dynamic.Config{
					Graph:    g,
					Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
					Arrivals: dynamic.Poisson{Rate: 0.8 * float64(n) / dynParetoMean,
						Weights: task.Pareto{Alpha: 2, Cap: 20}},
					Service: dynamic.WeightProportional{Rate: 1},
					Tuner: &dynamic.SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
						Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
					Faults:          fplan,
					Rounds:          rounds,
					Window:          window,
					Seed:            seed,
					CheckInvariants: true,
				})
				if err != nil {
					return faultSummary{conserved: false}
				}
				return faultSummary{
					steady:    res.TailOverloadFrac(warm),
					mig:       float64(res.Migrations) / float64(rounds),
					retries:   float64(res.Retries) / float64(rounds),
					timeouts:  float64(res.Timeouts),
					ledgerW:   res.FinalLedgerWeight,
					conserved: true,
				}
			}, cfg.Seed)
			var steady, mig, retries, timeouts, ledgerW stats.Online
			broken := 0
			for _, s := range out {
				if !s.conserved {
					broken++
					continue
				}
				steady.Add(100 * s.steady)
				mig.Add(s.mig)
				retries.Add(s.retries)
				timeouts.Add(s.timeouts)
				ledgerW.Add(s.ledgerW)
			}
			t.AddRow(f("%g", 100*loss), pol.name, meanCell(steady), meanCell(mig),
				meanCell(retries), meanCell(timeouts), meanCell(ledgerW), f("%v", broken == 0))
			if broken > 0 {
				t.AddNote("loss %g %s: %d/%d trials failed conservation and were excluded",
					loss, pol.name, broken, len(out))
			}
		}
	}
	t.AddNote("every trial runs with CheckInvariants: placed + in-flight weight is re-validated against arrived − departed each round")
	t.AddNote("timeouts: lost tasks whose retries never landed before the deadline; they re-home at their source resource")
	t.AddNote("ledger residue: weight still awaiting redelivery when the run ends (small and bounded = the ledger drains)")
	return t
}
