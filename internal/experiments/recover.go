package experiments

import (
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// DynamicRecover compares the four evacuation re-home policies on the
// ROADMAP's open question — post-failure overload transients after a
// rack loss. One scenario, four policies, identical seeds: a
// heterogeneous fleet (speed classes 1/2/4/10 interleaved, so every
// rack mixes fast and slow machines) on a cluster graph that mirrors
// an 8-rack/2-zone topology serves ρ = 0.8 Poisson traffic; at round
// 150 rack 0 dies whole (1/8 of the fleet in one round) and rejoins at
// 300. Per policy the table reports the recovery transient — peak
// post-failure overload fraction, time to drain back to the
// pre-failure baseline, and the evacuation migration load — plus the
// steady overload once recovered.
//
// Uniform is the engine's original behaviour and the baseline the
// non-uniform policies must beat: power-of-2 re-homing steers
// evacuees away from already-loaded machines (lower peak / faster
// drain), speed-weighted hands a dead rack's work to the machines
// with proportionally more headroom, and locality trades transient
// height for domain proximity (evacuees stay in the dead rack's
// zone).
type recoverSummary struct {
	peak      float64 // peak post-failure overload fraction (the rack-loss episode)
	drain     float64 // rounds to drain back to the pre-failure baseline
	censored  bool    // the episode never drained within the run
	evacW     float64 // evacuation migration load of the episode (weight)
	steady    float64 // tail overload after recovery
	conserved bool
}

// DynamicRecover is the dynrecover experiment driver.
func DynamicRecover(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, racks, zones := 2000, 8, 2
	rounds, window, warm := 600, 100, 4
	lossRound, repairRound := 150, 300
	if cfg.Quick {
		n = 400
		rounds, window, warm = 300, 50, 4
		lossRound, repairRound = 80, 160
	}
	topo, err := recovery.Synth(n, racks, zones)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	g := topo.ClusterGraph(6, 2, cfg.Seed)
	speeds := make([]float64, n)
	totalSpeed := 0.0
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
		totalSpeed += speeds[r]
	}
	rack0 := topo.RackList(0, nil)
	events := []dynamic.ChurnEvent{
		{Round: lossRound, DownList: rack0},
		{Round: repairRound, UpList: rack0},
	}
	policies := []struct {
		name string
		mk   func() dynamic.RehomePolicy
	}{
		{"uniform", func() dynamic.RehomePolicy { return dynamic.UniformRehome{} }},
		{"power-of-2", func() dynamic.RehomePolicy { return dynamic.PowerOfDRehome{D: 2} }},
		{"locality", func() dynamic.RehomePolicy { return &recovery.Locality{Topo: topo} }},
		{"speed-weighted", func() dynamic.RehomePolicy { return &dynamic.SpeedWeightedRehome{} }},
	}

	t := &Table{
		ID: "dynrecover",
		Title: f("failure recovery: re-home policies on a rack loss (n=%d, %d racks/%d zones, 10:1 speeds, rho=0.8; rack 0 dies at %d, rejoins at %d)",
			n, racks, zones, lossRound, repairRound),
		Header: []string{"rehome", "peak overload%", "drain rounds", "evac weight", "steady overload%", "conserved"},
	}
	for _, pol := range policies {
		out := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) recoverSummary {
			res, err := dynamic.Run(dynamic.Config{
				Graph:    g,
				Speeds:   speeds,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: dynamic.Poisson{Rate: 0.8 * totalSpeed / dynParetoMean,
					Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service:  dynamic.WeightProportional{Rate: 1},
				Dispatch: dynamic.PowerOfD{D: 2},
				Rehome:   pol.mk(),
				Tuner: &dynamic.SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Churn:  dynamic.Churn{MinUp: n / 4, Events: events},
				Rounds: rounds,
				Window: window,
				Seed:   seed,
			})
			if err != nil {
				return recoverSummary{conserved: false}
			}
			s := recoverSummary{steady: res.TailOverloadFrac(warm), conserved: true}
			for _, rs := range res.Recoveries {
				if rs.Round != lossRound {
					continue // the repair round can open a trivial episode; skip it
				}
				s.peak = rs.PeakOverload
				s.evacW = rs.EvacWeight
				if rs.Drained() {
					s.drain = float64(rs.DrainRounds)
				} else {
					s.censored = true
				}
			}
			return s
		}, cfg.Seed)
		var peak, drain, evacW, steady stats.Online
		censored, broken := 0, 0
		for _, s := range out {
			if !s.conserved {
				broken++
				continue
			}
			peak.Add(100 * s.peak)
			evacW.Add(s.evacW)
			steady.Add(100 * s.steady)
			if s.censored {
				censored++
			} else {
				drain.Add(s.drain)
			}
		}
		drainCell := meanCell(drain)
		if censored > 0 {
			drainCell = f("%s (+%d censored)", drainCell, censored)
		}
		t.AddRow(pol.name, meanCell(peak), drainCell, meanCell(evacW), meanCell(steady), f("%v", broken == 0))
		if broken > 0 {
			t.AddNote("%s: %d/%d trials failed conservation and were excluded", pol.name, broken, len(out))
		}
	}
	t.AddNote("peak/drain: the rack-loss episode's max overload fraction and rounds back to the pre-failure baseline (mean over %d trials)", cfg.Trials)
	t.AddNote("evac weight: task weight re-homed in the failure round; locality keeps it inside the dead rack's zone")
	t.AddNote("golden determinism per policy (workers 1/2/4/8 x seeds 1/2/3) is pinned by internal/recovery tests")
	return t
}
