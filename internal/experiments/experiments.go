// Package experiments regenerates every table and figure of the
// paper's evaluation plus the shape checks for the theorems and the
// ablations listed in DESIGN.md (E1–E10). Each driver returns a Table
// that renders as aligned text or CSV; cmd/lbbench exposes them all.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
)

// Config controls an experiment run.
type Config struct {
	// Trials per data point. The paper averages 1000; CLI default is
	// lower for quick runs (see cmd/lbbench -trials).
	Trials int
	// Workers for the trial pool (≤ 0 = GOMAXPROCS).
	Workers int
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Quick shrinks parameter sweeps (used by `go test` smoke tests
	// and the benchmark harness so each bench iteration stays small).
	Quick bool
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Trials <= 0 {
		c.Trials = 50
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values (no quoting needed:
// cells never contain commas).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Driver is an experiment entry point.
type Driver func(Config) *Table

// Registry maps experiment IDs (the -exp flag of cmd/lbbench) to
// drivers, in DESIGN.md order.
var Registry = []struct {
	ID     string
	Desc   string
	Driver Driver
}{
	{"table1", "Table 1/2: mixing & hitting times of common graphs", TableOne},
	{"figure1", "Figure 1: user-controlled balancing time vs W for k heavy tasks", FigureOne},
	{"figure2", "Figure 2: normalised balancing time vs m for growing wmax", FigureTwo},
	{"theorem3", "Theorem 3 shape: resource-controlled, above-average thresholds", TheoremThree},
	{"theorem7", "Theorem 7 shape: resource-controlled, tight thresholds", TheoremSeven},
	{"obs8", "Observation 8: clique+pendant lower-bound family", ObservationEight},
	{"alpha", "Theorem 11/12 constants and the alpha sweep", AlphaSweep},
	{"potential", "Lemma 1 / Observation 4 / Lemma 10 empirical validation", PotentialValidation},
	{"diffusion", "Footnote 1: diffusion-estimated thresholds end to end", DiffusionThresholds},
	{"ablation", "Design ablations: mixed protocol, kernels, non-uniform thresholds", Ablation},
	{"baselines", "Related-work baselines: diffusion, Greedy[2], (1+beta), oracle", Baselines},
	{"dynrho", "Open system: arrival-rate sweep rho -> 1 with self-tuned thresholds", DynamicRho},
	{"dynchurn", "Open system: resource churn sweep at rho=0.8 (weight conservation)", DynamicChurn},
	{"dynscale", "Open system: sharded-engine worker scaling + determinism check", DynamicScale},
	{"dynrecover", "Failure recovery: rack-loss re-home policies (uniform/power2/locality/speed)", DynamicRecover},
	{"dynfaults", "Unreliable network: message-loss sweep x retry policies (graceful degradation)", DynamicFaults},
	{"dynsojourn", "Task lifecycles: sojourn and hop percentiles vs load and loss (always-on histograms)", DynamicSojourn},
}

// Lookup returns the driver for id, or nil.
func Lookup(id string) Driver {
	for _, e := range Registry {
		if e.ID == id {
			return e.Driver
		}
	}
	return nil
}

// trialRounds runs cfg.Trials independent trials of the scenario built
// by setup (which must construct a fresh state per trial from the given
// seed) under protocol proto, and aggregates balancing rounds.
func trialRounds(cfg Config, maxRounds int,
	setup func(seed uint64) (*core.State, core.Protocol)) stats.Online {
	return sim.Mean(cfg.Trials, cfg.Workers, func(trial int, seed uint64) float64 {
		s, p := setup(seed)
		res := core.Run(s, p, core.RunOptions{MaxRounds: maxRounds})
		if !res.Balanced {
			// Surface as an extreme value instead of hiding: shapes
			// computed from capped runs would otherwise silently flatten.
			return float64(maxRounds)
		}
		return float64(res.Rounds)
	}, cfg.Seed)
}

// buildWeighted constructs a task set from dist with a fresh stream.
func buildWeighted(m int, dist task.Distribution, seed uint64) *task.Set {
	r := rng.NewSeeded(seed)
	return task.NewSet(dist.Weights(m, r))
}

// singleSourcePlacement puts every task on resource 0 — the paper's
// Section 7 initial condition.
func singleSourcePlacement(ts *task.Set, n int, seed uint64) []int {
	r := rng.NewSeeded(seed)
	return task.SingleSource{Resource: 0}.Assign(ts, n, r)
}

func f(format string, v ...any) string { return fmt.Sprintf(format, v...) }

// meanCell formats a mean ± CI95 pair compactly.
func meanCell(o stats.Online) string {
	return f("%.1f±%.1f", o.Mean(), o.CI95())
}
