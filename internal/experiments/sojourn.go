package experiments

import (
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/walk"
)

// DynamicSojourn measures the per-task experience of the open system:
// how long a task stays in the system (sojourn rounds) and how often
// the protocol moves it (migration hops) as the offered load ρ climbs
// toward saturation, on a homogeneous fleet and on a heterogeneous
// 1/2/4/10-speed mix — then again under message loss at ρ = 0.8. The
// percentiles come from the engine's always-on lifecycle histograms
// (power-of-two buckets), so every departed task of every trial is
// counted, not just a sampled subset. The table answers: does the
// balancer keep the task-level tail flat until deep saturation, how
// many hops does tail latency cost, and how much sojourn does an
// unreliable network add (a lost move parks its task in the retry
// ledger until redelivery or timeout).
type sojournSummary struct {
	p50, p95, p99 float64 // sojourn percentiles, rounds
	hops99        float64 // hops/task p99
	retry99       float64 // ledger resolution latency p99 (rounds)
	departed      float64
	ok            bool
}

// DynamicSojourn is the dynsojourn experiment driver.
func DynamicSojourn(cfg Config) *Table {
	cfg = cfg.Defaults()
	n, rounds, window := 1000, 600, 100
	rhos := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	losses := []float64{0.001, 0.01, 0.05}
	if cfg.Quick {
		n, rounds, window = 200, 300, 50
		rhos = []float64{0.5, 0.8, 0.95}
		losses = []float64{0.01}
	}
	g := graph.RandomRegular(n, 8, rng.NewSeeded(cfg.Seed))
	speeds := make([]float64, n)
	totalSpeed := 0.0
	for r := range speeds {
		speeds[r] = []float64{1, 2, 4, 10}[r%4]
		totalSpeed += speeds[r]
	}

	t := &Table{
		ID: "dynsojourn",
		Title: f("task lifecycles: sojourn and hop percentiles vs load and loss (n=%d, %d rounds; always-on lifecycle histograms, power-of-two buckets)",
			n, rounds),
		Header: []string{"fleet", "rho", "loss%", "sojourn p50", "sojourn p95", "sojourn p99", "hops p99", "retry-lat p99", "dep/round"},
	}

	row := func(fleet string, rho, loss float64) {
		fleetSpeeds, cap := []float64(nil), float64(n)
		if fleet == "hetero" {
			fleetSpeeds, cap = speeds, totalSpeed
		}
		var fplan *faults.Plan
		if loss > 0 {
			fplan = &faults.Plan{Loss: loss, RetryBase: 1, RetryCap: 8, Timeout: 30}
		}
		out := sim.Run(cfg.Trials, cfg.Workers, func(trial int, seed uint64) sojournSummary {
			res, err := dynamic.Run(dynamic.Config{
				Graph:    g,
				Speeds:   fleetSpeeds,
				Protocol: core.ResourceControlled{Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Arrivals: dynamic.Poisson{Rate: rho * cap / dynParetoMean,
					Weights: task.Pareto{Alpha: 2, Cap: 20}},
				Service: dynamic.WeightProportional{Rate: 1},
				Tuner: &dynamic.SelfTuner{Eps: 0.5, Decay: 0.8, Every: 10, Steps: 2,
					Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
				Faults:          fplan,
				Rounds:          rounds,
				Window:          window,
				Seed:            seed,
				CheckInvariants: true,
			})
			if err != nil {
				return sojournSummary{}
			}
			return sojournSummary{
				p50:      res.Sojourn.Quantile(0.50),
				p95:      res.Sojourn.Quantile(0.95),
				p99:      res.Sojourn.Quantile(0.99),
				hops99:   res.Hops.Quantile(0.99),
				retry99:  res.RetryLat.Quantile(0.99),
				departed: float64(res.Departed) / float64(rounds),
				ok:       true,
			}
		}, cfg.Seed)
		var p50, p95, p99, hops99, retry99, dep stats.Online
		broken := 0
		for _, s := range out {
			if !s.ok {
				broken++
				continue
			}
			p50.Add(s.p50)
			p95.Add(s.p95)
			p99.Add(s.p99)
			hops99.Add(s.hops99)
			retry99.Add(s.retry99)
			dep.Add(s.departed)
		}
		retryCell := "-"
		if loss > 0 {
			retryCell = meanCell(retry99)
		}
		t.AddRow(fleet, f("%g", rho), f("%g", 100*loss), meanCell(p50), meanCell(p95),
			meanCell(p99), meanCell(hops99), retryCell, meanCell(dep))
		if broken > 0 {
			t.AddNote("fleet %s rho %g loss %g: %d/%d trials failed and were excluded",
				fleet, rho, loss, broken, len(out))
		}
	}

	for _, fleet := range []string{"homog", "hetero"} {
		for _, rho := range rhos {
			row(fleet, rho, 0)
		}
	}
	for _, loss := range losses {
		row("homog", 0.8, loss)
	}

	t.AddNote("sojourn: rounds from admission to departure; hops: completed migrations per departed task")
	t.AddNote("percentiles are bucket-resolution (power-of-two ladder 0,1,2,4,...,4096), averaged across trials")
	t.AddNote("retry-lat p99: rounds a lost move spent in the in-flight ledger before redelivery or timeout re-home")
	return t
}
