// Package serve is the live serving runtime: it wraps the
// deterministic open-system engine (internal/dynamic) in a wall-clock
// loop so arrivals can be pushed in from a network front door while
// rounds tick on a timer or adaptively on backlog, and resources can
// be drained/added and the dispatch policy swapped without stopping
// the world.
//
// The runtime's contract is the lockstep twin: every admitted arrival
// batch, reconfiguration op and dispatch swap is recorded into a
// deterministic round log (one JSONL record per stepped round), and
// replaying that log through a fresh engine with the same scenario
// configuration reproduces the live run's Result bit-for-bit. The
// engine keeps all randomness in its own seeded streams — wall-clock
// timing only decides WHERE the batch boundaries fall, and the log
// captures exactly that — so the twin property holds through churn,
// faults, partitions and online reconfiguration. The twin-equivalence
// test suite pins it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/task"
)

// Ingest/step errors, mapped onto HTTP statuses by the front door.
var (
	// ErrBackpressure rejects an ingest that would overflow MaxPending.
	ErrBackpressure = errors.New("serve: ingest backlog full")
	// ErrDraining rejects ingest after shutdown has begun.
	ErrDraining = errors.New("serve: runtime is draining")
	// ErrHorizon rejects work past the engine's configured round horizon.
	ErrHorizon = errors.New("serve: round horizon exhausted")
)

// Options tune the runtime's pacing and persistence.
type Options struct {
	// Interval > 0 ticks a round every Interval, arrivals or not (the
	// wall-clock mode). Interval == 0 selects adaptive pacing: a round
	// steps as soon as the backlog reaches BatchTarget, or after
	// MaxInterval without one.
	Interval time.Duration
	// BatchTarget is the adaptive-mode backlog that triggers a round.
	// Defaults to 256.
	BatchTarget int
	// MaxInterval bounds the adaptive-mode wait so service, churn and
	// balancing keep running through quiet spells. Defaults to 50ms.
	MaxInterval time.Duration
	// MaxPending bounds the ingest backlog; past it Ingest returns
	// ErrBackpressure. Defaults to 1<<20 tasks.
	MaxPending int
	// LogWriter receives the round log, one JSONL record per stepped
	// round, written ahead of the step. Nil keeps the log in memory
	// only (Records).
	LogWriter io.Writer
	// OnShutdown, when non-nil, receives the engine's checkpoint bytes
	// after the shutdown drain — the SIGTERM persistence hook. The
	// callback owns making the write atomic.
	OnShutdown func(snapshot []byte) error
}

func (o *Options) withDefaults() {
	if o.BatchTarget <= 0 {
		o.BatchTarget = 256
	}
	if o.MaxInterval <= 0 {
		o.MaxInterval = 50 * time.Millisecond
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1 << 20
	}
}

// Stats is a point-in-time view for the status endpoint.
type Stats struct {
	NextRound      int     `json:"next_round"`
	Horizon        int     `json:"horizon"`
	InFlight       int     `json:"in_flight"`
	InFlightWeight float64 `json:"in_flight_weight"`
	UpResources    int     `json:"up_resources"`
	Pending        int     `json:"pending"`
	Accepted       int64   `json:"accepted"`
	Rejected       int64   `json:"rejected"`
	Dispatch       string  `json:"dispatch"`
	Draining       bool    `json:"draining"`
	// Lifecycle percentiles from the engine's always-on histograms
	// (bucket-resolution estimates; 0 until the first departure).
	SojournP50 float64 `json:"sojourn_p50"`
	SojournP95 float64 `json:"sojourn_p95"`
	SojournP99 float64 `json:"sojourn_p99"`
	HopsP99    float64 `json:"hops_p99"`
}

// Runtime drives one engine with live inputs. Ingest and Reconfigure
// are safe from any goroutine; StepRound (and therefore Run) must have
// a single caller, and Finish/Checkpoint/Records only run once
// stepping has stopped.
type Runtime struct {
	eng  *dynamic.Engine
	opts Options

	mu       sync.Mutex
	pending  []float64 // admitted weights awaiting their round
	pendDown []int     // staged drains
	pendUp   []int     // staged adds
	pendDisp string    // staged dispatch swap ("" = none)
	draining bool
	accepted int64
	rejected int64
	dispatch string // policy in force (for status/resume bookkeeping)
	records  []RoundRecord
	stats    dynamic.LiveStats // cached after each step

	kick chan struct{} // adaptive-mode backlog signal, capacity 1
}

// New wraps eng (fresh or resumed) in a runtime. dispatch names the
// policy currently in force — the scenario's configured one, or on
// resume the last swap recovered from the round log.
func New(eng *dynamic.Engine, dispatch string, opts Options) *Runtime {
	opts.withDefaults()
	return &Runtime{
		eng:      eng,
		opts:     opts,
		dispatch: dispatch,
		stats:    eng.Stats(),
		kick:     make(chan struct{}, 1),
	}
}

// SetLogWriter attaches (or replaces) the round-log sink. Call before
// stepping starts.
func (rt *Runtime) SetLogWriter(w io.Writer) { rt.opts.LogWriter = w }

// Ingest admits a batch of task weights into the next round. It
// returns how many were admitted: all of them, or none (invalid
// weight, backlog full, draining, horizon exhausted).
func (rt *Runtime) Ingest(weights []float64) (int, error) {
	for i, w := range weights {
		if !task.ValidWeight(w) {
			return 0, fmt.Errorf("serve: arrival %d weight %v violates wmin >= 1", i, w)
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		rt.rejected += int64(len(weights))
		return 0, ErrDraining
	}
	if rt.stats.NextRound >= rt.eng.Rounds() {
		rt.rejected += int64(len(weights))
		return 0, ErrHorizon
	}
	if len(rt.pending)+len(weights) > rt.opts.MaxPending {
		rt.rejected += int64(len(weights))
		return 0, ErrBackpressure
	}
	rt.pending = append(rt.pending, weights...)
	rt.accepted += int64(len(weights))
	if len(rt.pending) >= rt.opts.BatchTarget {
		select {
		case rt.kick <- struct{}{}:
		default:
		}
	}
	return len(weights), nil
}

// Reconfigure stages reconfiguration for the next round: drain the
// resources in down, add the ones in up, and (when dispatch != "")
// swap the dispatch policy. Ops accumulate until the round steps.
func (rt *Runtime) Reconfigure(down, up []int, dispatch string) error {
	if dispatch != "" {
		if _, err := ParseDispatch(dispatch); err != nil {
			return err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		return ErrDraining
	}
	rt.pendDown = append(rt.pendDown, down...)
	rt.pendUp = append(rt.pendUp, up...)
	if dispatch != "" {
		rt.pendDisp = dispatch
	}
	return nil
}

// StepRound admits the staged batch and ops as one engine round,
// write-ahead-logging the record first. Single caller only (Run, or a
// test driving rounds manually).
func (rt *Runtime) StepRound() error {
	rt.mu.Lock()
	rec := RoundRecord{
		Round:    rt.stats.NextRound,
		Weights:  rt.pending,
		Down:     rt.pendDown,
		Up:       rt.pendUp,
		Dispatch: rt.pendDisp,
	}
	rt.pending, rt.pendDown, rt.pendUp, rt.pendDisp = nil, nil, nil, ""
	rt.mu.Unlock()

	if rec.Dispatch != "" {
		d, err := ParseDispatch(rec.Dispatch)
		if err != nil {
			return err
		}
		if err := rt.eng.SetDispatch(d); err != nil {
			return err
		}
	}
	// The record is durable before the round runs, so a crash mid-round
	// can at worst replay a round that never completed — never lose one
	// that did.
	if rt.opts.LogWriter != nil {
		if err := AppendRecord(rt.opts.LogWriter, &rec); err != nil {
			return fmt.Errorf("serve: round log: %w", err)
		}
	}
	_, err := rt.eng.Step(dynamic.StepInput{
		Weights: rec.Weights, Down: rec.Down, Up: rec.Up,
	})
	st := rt.eng.Stats()

	rt.mu.Lock()
	rt.records = append(rt.records, rec)
	rt.stats = st
	if rec.Dispatch != "" {
		rt.dispatch = rec.Dispatch
	}
	rt.mu.Unlock()
	return err
}

// pendingLen reports the staged backlog (weights plus ops).
func (rt *Runtime) pendingLen() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.pending) + len(rt.pendDown) + len(rt.pendUp) + len(rt.pendDisp)
}

// Run ticks rounds until the context is cancelled or the horizon is
// exhausted, then drains: ingest shuts, the staged backlog steps
// through, and the engine's checkpoint goes to OnShutdown. Single
// caller; Ingest/Reconfigure stay live concurrently.
func (rt *Runtime) Run(ctx context.Context) error {
	timer := time.NewTimer(rt.tickWait())
	defer timer.Stop()
loop:
	for rt.eng.NextRound() < rt.eng.Rounds() {
		if rt.opts.Interval > 0 {
			select {
			case <-ctx.Done():
				break loop
			case <-timer.C:
			}
		} else {
			select {
			case <-ctx.Done():
				break loop
			case <-rt.kick:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
		}
		if err := rt.StepRound(); err != nil {
			return err
		}
		timer.Reset(rt.tickWait())
	}
	return rt.shutdown()
}

func (rt *Runtime) tickWait() time.Duration {
	if rt.opts.Interval > 0 {
		return rt.opts.Interval
	}
	return rt.opts.MaxInterval
}

// shutdown closes ingest, steps the leftover backlog and persists the
// checkpoint.
func (rt *Runtime) shutdown() error {
	rt.mu.Lock()
	rt.draining = true
	rt.mu.Unlock()
	for rt.pendingLen() > 0 && rt.eng.NextRound() < rt.eng.Rounds() {
		if err := rt.StepRound(); err != nil {
			return err
		}
	}
	if rt.opts.OnShutdown != nil {
		var buf checkpointBuf
		if err := rt.eng.Checkpoint(&buf); err != nil {
			return err
		}
		if err := rt.opts.OnShutdown(buf.data); err != nil {
			return fmt.Errorf("serve: shutdown checkpoint: %w", err)
		}
	}
	return nil
}

type checkpointBuf struct{ data []byte }

func (b *checkpointBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// Finish closes the run and returns the engine's Result. Call once,
// after stepping has stopped.
func (rt *Runtime) Finish() (dynamic.Result, error) { return rt.eng.Finish() }

// Close releases the engine's worker pool. Idempotent.
func (rt *Runtime) Close() { rt.eng.Close() }

// Checkpoint writes the engine's current snapshot to w. Not safe while
// stepping.
func (rt *Runtime) Checkpoint(w io.Writer) error { return rt.eng.Checkpoint(w) }

// Records returns the rounds stepped so far (the in-memory round log).
// The slice is a snapshot; its records alias the logged ones.
func (rt *Runtime) Records() []RoundRecord {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]RoundRecord(nil), rt.records...)
}

// Stats snapshots the runtime for the status endpoint.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return Stats{
		NextRound:      rt.stats.NextRound,
		Horizon:        rt.eng.Rounds(),
		InFlight:       rt.stats.InFlight,
		InFlightWeight: rt.stats.InFlightWeight,
		UpResources:    rt.stats.UpResources,
		Pending:        len(rt.pending),
		Accepted:       rt.accepted,
		Rejected:       rt.rejected,
		Dispatch:       rt.dispatch,
		Draining:       rt.draining,
		SojournP50:     rt.stats.SojournP50,
		SojournP95:     rt.stats.SojournP95,
		SojournP99:     rt.stats.SojournP99,
		HopsP99:        rt.stats.HopsP99,
	}
}
