package serve

import (
	"fmt"

	"repro/internal/dynamic"
)

// Replay drives eng — a fresh (or resumed) engine built from the SAME
// scenario configuration as the live run — through the recorded
// rounds in lockstep and returns the finished Result. If the records
// faithfully describe a live run, the returned Result is bit-identical
// to the live one: all engine randomness lives in seeded streams, the
// log pins the admission boundaries, and live and replay share one
// step function.
//
// Replay starts at the engine's next round, so a resumed engine can
// replay the tail of a log (skip the records before its snapshot
// round).
func Replay(eng *dynamic.Engine, recs []RoundRecord) (dynamic.Result, error) {
	for i := range recs {
		rec := &recs[i]
		if rec.Round < eng.NextRound() {
			continue
		}
		if rec.Round != eng.NextRound() {
			return dynamic.Result{}, fmt.Errorf(
				"serve: replay gap: record for round %d, engine at round %d", rec.Round, eng.NextRound())
		}
		if rec.Dispatch != "" {
			d, err := ParseDispatch(rec.Dispatch)
			if err != nil {
				return dynamic.Result{}, err
			}
			if err := eng.SetDispatch(d); err != nil {
				return dynamic.Result{}, err
			}
		}
		if _, err := eng.Step(dynamic.StepInput{
			Weights: rec.Weights, Down: rec.Down, Up: rec.Up,
		}); err != nil {
			return dynamic.Result{}, fmt.Errorf("serve: replay round %d: %w", rec.Round, err)
		}
	}
	return eng.Finish()
}
