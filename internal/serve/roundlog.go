package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dynamic"
	"repro/internal/task"
)

// The round log is the twin contract's ground truth: one JSONL record
// per stepped round, written ahead of the step, capturing everything
// the wall clock decided — which arrivals were admitted into which
// round, in what order, and which reconfiguration ops rode along.
// Replaying the records through a fresh engine with the same scenario
// configuration reproduces the live Result bit-for-bit (weights
// round-trip exactly: encoding/json emits the shortest decimal that
// parses back to the same float64).

// RoundRecord is one stepped round's external input.
type RoundRecord struct {
	// Round is the engine round the batch was admitted into. Records
	// are consecutive: empty rounds (ticks with no arrivals) are logged
	// too, because service, churn and balancing ran in them.
	Round int `json:"t"`
	// Weights are the admitted arrival weights in admission order.
	Weights []float64 `json:"w,omitempty"`
	// Down/Up are the reconfiguration ops applied ahead of the round.
	Down []int `json:"down,omitempty"`
	Up   []int `json:"up,omitempty"`
	// Dispatch is a policy swap applied at this round boundary (see
	// ParseDispatch for the grammar); "" = no swap.
	Dispatch string `json:"dispatch,omitempty"`
}

// AppendRecord writes rec as one JSONL line.
func AppendRecord(w io.Writer, rec *RoundRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadRoundLog parses and validates a JSONL round log: records must be
// consecutive ascending rounds, weights valid task weights, op indices
// non-negative and any dispatch string parseable. Malformed input
// errors with the offending line number; it never panics (fuzzed by
// FuzzRoundLog).
func ReadRoundLog(r io.Reader) ([]RoundRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []RoundRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec RoundRecord
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("serve: round log line %d: %w", line, err)
		}
		if err := validateRecord(&rec, len(recs), line); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: round log: %w", err)
	}
	return recs, nil
}

func validateRecord(rec *RoundRecord, idx, line int) error {
	if rec.Round != idx {
		return fmt.Errorf("serve: round log line %d: round %d, want consecutive round %d", line, rec.Round, idx)
	}
	for i, w := range rec.Weights {
		if !task.ValidWeight(w) {
			return fmt.Errorf("serve: round log line %d: weight %d is %v, violates wmin >= 1", line, i, w)
		}
	}
	for _, r := range rec.Down {
		if r < 0 {
			return fmt.Errorf("serve: round log line %d: negative drain target %d", line, r)
		}
	}
	for _, r := range rec.Up {
		if r < 0 {
			return fmt.Errorf("serve: round log line %d: negative add target %d", line, r)
		}
	}
	if rec.Dispatch != "" {
		if _, err := ParseDispatch(rec.Dispatch); err != nil {
			return fmt.Errorf("serve: round log line %d: %w", line, err)
		}
	}
	return nil
}

// ParseDispatch resolves a dispatch-policy name from the reconfigure
// API / round log. Grammar:
//
//	uniform | hotspot:<resource> | power-of-<d> | speed-weighted
func ParseDispatch(name string) (dynamic.Dispatch, error) {
	switch {
	case name == "uniform":
		return dynamic.UniformDispatch{}, nil
	case name == "speed-weighted":
		return &dynamic.SpeedWeighted{}, nil
	case strings.HasPrefix(name, "hotspot:"):
		r, err := strconv.Atoi(name[len("hotspot:"):])
		if err != nil || r < 0 {
			return nil, fmt.Errorf("serve: bad hotspot resource in dispatch %q", name)
		}
		return dynamic.HotspotDispatch{Resource: r}, nil
	case strings.HasPrefix(name, "power-of-"):
		d, err := strconv.Atoi(name[len("power-of-"):])
		if err != nil || d < 1 {
			return nil, fmt.Errorf("serve: bad choice count in dispatch %q", name)
		}
		return dynamic.PowerOfD{D: d}, nil
	default:
		return nil, fmt.Errorf("serve: unknown dispatch policy %q (want uniform, hotspot:<r>, power-of-<d> or speed-weighted)", name)
	}
}

// RecoverDispatch scans a round log for the dispatch policy in force
// entering `round`: the last swap recorded strictly before it, or ""
// when the scenario's configured policy still applies. Resume-on-boot
// uses it to restore the live policy before stepping resumes.
func RecoverDispatch(recs []RoundRecord, round int) string {
	name := ""
	for i := range recs {
		if recs[i].Round >= round {
			break
		}
		if recs[i].Dispatch != "" {
			name = recs[i].Dispatch
		}
	}
	return name
}
