package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func frontDoor(t *testing.T, rt *Runtime) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	Routes(mux, rt)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func TestHTTPIngest(t *testing.T) {
	rt := testRuntime(t, Options{})
	srv := frontDoor(t, rt)

	code, body := post(t, srv.URL+"/ingest", "[1, 2.5, 3]")
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	var resp struct {
		Accepted int `json:"accepted"`
		Round    int `json:"round"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 || resp.Round != 0 {
		t.Fatalf("ingest response %+v, want accepted=3 round=0", resp)
	}
	if st := rt.Stats(); st.Pending != 3 {
		t.Fatalf("pending %d after ingest, want 3", st.Pending)
	}

	if code, body := post(t, srv.URL+"/ingest", "[0.5]"); code != http.StatusBadRequest ||
		!strings.Contains(body, "violates wmin >= 1") {
		t.Fatalf("invalid weight: %d %s, want 400 with the weight message", code, body)
	}
	if code, _ := post(t, srv.URL+"/ingest", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", code)
	}
	// GET on a POST-only route is rejected by the method-aware mux.
	if code, _ := get(t, srv.URL+"/ingest"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d, want 405", code)
	}
}

func TestHTTPIngestOverloadIs503(t *testing.T) {
	rt := testRuntime(t, Options{MaxPending: 2})
	srv := frontDoor(t, rt)
	if code, _ := post(t, srv.URL+"/ingest", "[1,1]"); code != http.StatusOK {
		t.Fatalf("fill: %d, want 200", code)
	}
	code, body := post(t, srv.URL+"/ingest", "[1]")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "backlog full") {
		t.Fatalf("overflow: %d %s, want 503 backlog full", code, body)
	}
}

func TestHTTPReconfigAndStatus(t *testing.T) {
	rt := testRuntime(t, Options{})
	srv := frontDoor(t, rt)

	code, body := post(t, srv.URL+"/reconfig", `{"down":[2],"dispatch":"power-of-2"}`)
	if code != http.StatusOK || !strings.Contains(body, `"staged":true`) {
		t.Fatalf("reconfig: %d %s", code, body)
	}
	if code, body := post(t, srv.URL+"/reconfig", `{"dispatch":"bogus"}`); code != http.StatusBadRequest ||
		!strings.Contains(body, "unknown dispatch policy") {
		t.Fatalf("bad reconfig: %d %s, want 400", code, body)
	}
	if err := rt.StepRound(); err != nil {
		t.Fatal(err)
	}

	code, body = get(t, srv.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d %s", code, body)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.NextRound != 1 || st.UpResources != twinN-1 || st.Dispatch != "power-of-2" {
		t.Fatalf("statusz %+v: want next_round=1, one drained resource, the swapped dispatch", st)
	}
}

func TestHTTPHealthz(t *testing.T) {
	rt := testRuntime(t, Options{})
	srv := frontDoor(t, rt)
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
	if code, body := post(t, srv.URL+"/ingest", "[1]"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "draining") {
		t.Fatalf("ingest while draining: %d %s, want 503 draining", code, body)
	}
}

func TestHTTPBodyLimit(t *testing.T) {
	rt := testRuntime(t, Options{})
	srv := frontDoor(t, rt)
	// A body past maxBody truncates mid-array and fails to parse.
	big := bytes.Repeat([]byte("1,"), maxBody)
	code, _ := post(t, srv.URL+"/ingest", "["+string(big)+"1]")
	if code != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400", code)
	}
}

// TestHTTPStatusSojournPercentiles: /statusz carries the engine's
// always-on lifecycle percentiles once tasks have departed.
func TestHTTPStatusSojournPercentiles(t *testing.T) {
	rt := testRuntime(t, Options{})
	srv := frontDoor(t, rt)
	if code, _ := post(t, srv.URL+"/ingest", "[1,2,3,1,2]"); code != http.StatusOK {
		t.Fatalf("ingest: %d, want 200", code)
	}
	// Weight-proportional service at rate 1 drains the heaviest ingested
	// task in 3 rounds; step past that so every task has departed.
	for i := 0; i < 6; i++ {
		if err := rt.StepRound(); err != nil {
			t.Fatal(err)
		}
	}
	code, body := get(t, srv.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d %s", code, body)
	}
	for _, key := range []string{`"sojourn_p50"`, `"sojourn_p95"`, `"sojourn_p99"`, `"hops_p99"`} {
		if !strings.Contains(body, key) {
			t.Errorf("statusz body missing %s:\n%s", key, body)
		}
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.SojournP50 <= 0 || st.SojournP99 < st.SojournP50 {
		t.Errorf("statusz sojourn percentiles %+v: want p50 > 0 and p99 >= p50", st)
	}
}
