package serve

import (
	"bytes"
	"testing"
)

// FuzzRoundLog hammers the round-log parser with arbitrary bytes: it
// must never panic, and any log it accepts must round-trip — re-encode
// the parsed records and the parser must accept THAT byte-for-byte on a
// second pass (encode∘decode is the identity on canonical logs).
func FuzzRoundLog(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{"t":0}` + "\n"))
	f.Add([]byte(`{"t":0,"w":[1,2.5,3.0009765625]}` + "\n" + `{"t":1,"down":[3],"up":[7],"dispatch":"power-of-2"}` + "\n"))
	f.Add([]byte(`{"t":0,"dispatch":"hotspot:4"}` + "\n\n" + `{"t":1,"dispatch":"speed-weighted"}` + "\n"))
	f.Add([]byte(`{"t":5}` + "\n"))
	f.Add([]byte(`{"t":0,"w":[0.25]}` + "\n"))
	f.Add([]byte(`{"t":0,"bogus":1}` + "\n"))
	f.Add([]byte(`{not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadRoundLog(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var canon bytes.Buffer
		for i := range recs {
			if err := AppendRecord(&canon, &recs[i]); err != nil {
				t.Fatalf("re-encoding accepted records: %v", err)
			}
		}
		recs2, err := ReadRoundLog(bytes.NewReader(canon.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v\nlog:\n%s", err, canon.Bytes())
		}
		var canon2 bytes.Buffer
		for i := range recs2 {
			if err := AppendRecord(&canon2, &recs2[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
			t.Fatalf("round log is not canonical after one encode pass:\nfirst:\n%s\nsecond:\n%s",
				canon.Bytes(), canon2.Bytes())
		}
	})
}
