package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/snapshot"
)

// TestLiveStress exercises the runtime's concurrency contract under
// the race detector (the CI -race job runs this package): many
// goroutines ingesting, one reconfiguring, while Run ticks rounds
// adaptively — then a cancel (the SIGTERM path) drains the backlog and
// checkpoints. Conservation closes the loop: every admitted task is
// either arrived-and-counted or still pending, never lost.
func TestLiveStress(t *testing.T) {
	cfg := twinCfg("churn", 3, 4)
	cfg.Rounds = 1 << 20 // effectively unbounded; the cancel stops the run
	eng, err := dynamic.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	rt := New(eng, "", Options{
		BatchTarget: 64,
		MaxInterval: time.Millisecond,
		OnShutdown: func(data []byte) error {
			snap = append([]byte(nil), data...)
			return nil
		},
	})
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- rt.Run(ctx) }()

	const (
		ingesters  = 8
		perBatch   = 16
		iterations = 200
	)
	var sent atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]float64, perBatch)
			for i := range batch {
				batch[i] = 1 + float64(g%5)
			}
			for i := 0; i < iterations; i++ {
				n, err := rt.Ingest(batch)
				if err != nil && !errors.Is(err, ErrBackpressure) {
					t.Errorf("ingester %d: %v", g, err)
					return
				}
				sent.Add(int64(n))
				if i%25 == 24 {
					// Yield so round stepping interleaves with live ingest
					// instead of the backlog arriving in one burst.
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []string{"power-of-2", "uniform", "hotspot:5", "speed-weighted"}
		for i := 0; i < 40; i++ {
			if err := rt.Reconfigure([]int{10 + i%8}, []int{10 + (i+1)%8}, policies[i%len(policies)]); err != nil {
				t.Errorf("reconfigure %d: %v", i, err)
				return
			}
			_ = rt.Stats() // status endpoint races against everything else
		}
	}()
	wg.Wait()
	cancel() // SIGTERM: drain, checkpoint, stop
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	if _, err := snapshot.NewDecoder(snap); err != nil {
		t.Fatalf("stress-run shutdown snapshot invalid: %v", err)
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Accepted != sent.Load() {
		t.Fatalf("runtime accepted %d, ingesters recorded %d", st.Accepted, sent.Load())
	}
	// Zero task loss: everything admitted made it into the engine (the
	// shutdown drain steps the leftover backlog through).
	if got := int64(res.Arrived); got != sent.Load() {
		t.Fatalf("engine arrived %d tasks, runtime admitted %d — tasks lost", got, sent.Load())
	}
	// And the engine's own books must balance.
	if res.Arrived != res.Departed+int64(res.FinalInFlight) {
		t.Fatalf("conservation: arrived %d != departed %d + in flight %d",
			res.Arrived, res.Departed, res.FinalInFlight)
	}
	t.Logf("stress: %d rounds, %d tasks admitted", res.Rounds, st.Accepted)
}
