package serve

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/snapshot"
)

// testRuntime builds a small steady-scenario runtime for unit tests.
func testRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	eng, err := dynamic.NewEngine(twinCfg("steady", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rt := New(eng, "uniform", opts)
	t.Cleanup(rt.Close)
	return rt
}

func TestParseDispatch(t *testing.T) {
	valid := []struct{ in, engineName string }{
		{"uniform", "uniform"},
		{"hotspot:7", "hotspot(r=7)"},
		{"power-of-2", "power-of-2"},
		{"speed-weighted", "speed-weighted"},
	}
	for _, tc := range valid {
		d, err := ParseDispatch(tc.in)
		if err != nil {
			t.Errorf("ParseDispatch(%q): %v", tc.in, err)
			continue
		}
		if got := d.Name(); got != tc.engineName {
			t.Errorf("ParseDispatch(%q).Name() = %q, want %q", tc.in, got, tc.engineName)
		}
	}
	invalid := []struct{ in, wantErr string }{
		{"hotspot:x", `bad hotspot resource in dispatch "hotspot:x"`},
		{"hotspot:-1", `bad hotspot resource in dispatch "hotspot:-1"`},
		{"power-of-0", `bad choice count in dispatch "power-of-0"`},
		{"power-of-two", `bad choice count in dispatch "power-of-two"`},
		{"round-robin", `unknown dispatch policy "round-robin" (want uniform, hotspot:<r>, power-of-<d> or speed-weighted)`},
		{"", `unknown dispatch policy ""`},
	}
	for _, tc := range invalid {
		_, err := ParseDispatch(tc.in)
		if err == nil {
			t.Errorf("ParseDispatch(%q): expected an error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseDispatch(%q) error = %q, want it to contain %q", tc.in, err, tc.wantErr)
		}
	}
}

func TestReadRoundLogErrors(t *testing.T) {
	cases := []struct{ name, input, wantErr string }{
		{"malformed JSON", "{not json\n", "round log line 1:"},
		{"unknown field", `{"t":0,"bogus":1}` + "\n", `unknown field "bogus"`},
		{"non-consecutive", `{"t":0}` + "\n" + `{"t":2}` + "\n", "line 2: round 2, want consecutive round 1"},
		{"starts past zero", `{"t":5}` + "\n", "line 1: round 5, want consecutive round 0"},
		{"invalid weight", `{"t":0,"w":[1.5,0.25]}` + "\n", "line 1: weight 1 is 0.25, violates wmin >= 1"},
		{"NaN weight", `{"t":0,"w":[null]}` + "\n", "line 1:"},
		{"negative drain", `{"t":0,"down":[-3]}` + "\n", "line 1: negative drain target -3"},
		{"negative add", `{"t":0,"up":[-1]}` + "\n", "line 1: negative add target -1"},
		{"bad dispatch", `{"t":0,"dispatch":"nope"}` + "\n", `line 1: serve: unknown dispatch policy "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRoundLog(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("expected an error for %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadRoundLogValid(t *testing.T) {
	input := "\n" + `{"t":0,"w":[1,2.5]}` + "\n\n" + `{"t":1,"down":[3],"dispatch":"power-of-2"}` + "\n" + `{"t":2}` + "\n"
	recs, err := ReadRoundLog(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []RoundRecord{
		{Round: 0, Weights: []float64{1, 2.5}},
		{Round: 1, Down: []int{3}, Dispatch: "power-of-2"},
		{Round: 2},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("parsed %+v, want %+v", recs, want)
	}
}

func TestRecoverDispatch(t *testing.T) {
	recs := []RoundRecord{
		{Round: 0},
		{Round: 1, Dispatch: "power-of-2"},
		{Round: 2},
		{Round: 3, Dispatch: "hotspot:4"},
		{Round: 4},
	}
	cases := []struct {
		round int
		want  string
	}{
		{0, ""}, {1, ""}, {2, "power-of-2"}, {3, "power-of-2"},
		{4, "hotspot:4"}, {100, "hotspot:4"},
	}
	for _, tc := range cases {
		if got := RecoverDispatch(recs, tc.round); got != tc.want {
			t.Errorf("RecoverDispatch(round=%d) = %q, want %q", tc.round, got, tc.want)
		}
	}
}

func TestIngestRejections(t *testing.T) {
	t.Run("invalid weight is all-or-nothing", func(t *testing.T) {
		rt := testRuntime(t, Options{})
		n, err := rt.Ingest([]float64{2, 0.5, 3})
		if err == nil || n != 0 {
			t.Fatalf("Ingest = (%d, %v), want (0, weight error)", n, err)
		}
		if st := rt.Stats(); st.Pending != 0 || st.Accepted != 0 {
			t.Fatalf("invalid batch leaked into the backlog: %+v", st)
		}
	})
	t.Run("backpressure", func(t *testing.T) {
		rt := testRuntime(t, Options{MaxPending: 3})
		if _, err := rt.Ingest([]float64{1, 1}); err != nil {
			t.Fatal(err)
		}
		n, err := rt.Ingest([]float64{1, 1})
		if !errors.Is(err, ErrBackpressure) || n != 0 {
			t.Fatalf("Ingest over MaxPending = (%d, %v), want ErrBackpressure", n, err)
		}
		st := rt.Stats()
		if st.Accepted != 2 || st.Rejected != 2 || st.Pending != 2 {
			t.Fatalf("counters after backpressure: %+v", st)
		}
	})
	t.Run("draining", func(t *testing.T) {
		rt := testRuntime(t, Options{})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := rt.Run(ctx); err != nil { // immediate shutdown, empty drain
			t.Fatal(err)
		}
		if _, err := rt.Ingest([]float64{1}); !errors.Is(err, ErrDraining) {
			t.Fatalf("Ingest while draining = %v, want ErrDraining", err)
		}
		if err := rt.Reconfigure(nil, nil, "uniform"); !errors.Is(err, ErrDraining) {
			t.Fatalf("Reconfigure while draining = %v, want ErrDraining", err)
		}
	})
	t.Run("horizon", func(t *testing.T) {
		cfg := twinCfg("steady", 1, 1)
		cfg.Rounds = 1
		eng, err := dynamic.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := New(eng, "", Options{})
		defer rt.Close()
		if err := rt.StepRound(); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Ingest([]float64{1}); !errors.Is(err, ErrHorizon) {
			t.Fatalf("Ingest past the horizon = %v, want ErrHorizon", err)
		}
	})
}

func TestReconfigureValidatesDispatch(t *testing.T) {
	rt := testRuntime(t, Options{})
	if err := rt.Reconfigure(nil, nil, "bogus"); err == nil {
		t.Fatal("Reconfigure accepted an unknown dispatch policy")
	}
	// Ops accumulate across calls; the last dispatch wins.
	if err := rt.Reconfigure([]int{1}, nil, "power-of-2"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Reconfigure([]int{2}, []int{1}, "hotspot:3"); err != nil {
		t.Fatal(err)
	}
	if err := rt.StepRound(); err != nil {
		t.Fatal(err)
	}
	recs := rt.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	want := RoundRecord{Round: 0, Down: []int{1, 2}, Up: []int{1}, Dispatch: "hotspot:3"}
	if !reflect.DeepEqual(recs[0], want) {
		t.Fatalf("record %+v, want %+v", recs[0], want)
	}
	if st := rt.Stats(); st.Dispatch != "hotspot:3" {
		t.Fatalf("stats dispatch %q, want the swapped policy", st.Dispatch)
	}
}

func TestReplayGapError(t *testing.T) {
	eng, err := dynamic.NewEngine(twinCfg("steady", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, err = Replay(eng, []RoundRecord{{Round: 3}})
	if err == nil || !strings.Contains(err.Error(), "replay gap: record for round 3, engine at round 0") {
		t.Fatalf("Replay over a gap = %v, want a gap error", err)
	}
}

// TestShutdownCheckpointResume is satellite coverage for graceful
// shutdown: interrupting a live run mid-burst yields (a) a snapshot the
// existing container decoder validates and (b) a resumed run whose
// drained final Result is bit-identical to the uninterrupted run's.
func TestShutdownCheckpointResume(t *testing.T) {
	const cut = 25 // rounds stepped before the interrupt
	seed, workers := uint64(5), 2

	// Uninterrupted reference run.
	full, logBytes := driveLive(t, "churn", seed, workers)
	recs, err := ReadRoundLog(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: same inputs for the first `cut` rounds, then a
	// cancelled Run drains the (empty) backlog and checkpoints.
	eng, err := dynamic.NewEngine(twinCfg("churn", seed, workers))
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	rt := New(eng, "", Options{OnShutdown: func(data []byte) error {
		snap = append([]byte(nil), data...)
		return nil
	}})
	for r := 0; r < cut; r++ {
		if ws := twinBatch(seed, r); len(ws) > 0 {
			if _, err := rt.Ingest(ws); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.StepRound(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.Run(ctx); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if snap == nil {
		t.Fatal("shutdown did not checkpoint")
	}

	// The snapshot must be a valid container for the existing decoder.
	dec, err := snapshot.NewDecoder(snap)
	if err != nil {
		t.Fatalf("shutdown snapshot rejected by the container decoder: %v", err)
	}
	_ = dec

	// Resume-on-boot and drain the remaining recorded rounds.
	eng2, err := dynamic.Resume(bytes.NewReader(snap), twinCfg("churn", seed, workers))
	if err != nil {
		t.Fatalf("resuming from the shutdown snapshot: %v", err)
	}
	defer eng2.Close()
	if got := eng2.NextRound(); got != cut {
		t.Fatalf("resumed engine at round %d, want %d", got, cut)
	}
	resumed, err := Replay(eng2, recs) // skips the pre-snapshot records
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed run diverges from the uninterrupted one:\nfull:    %+v\nresumed: %+v", full, resumed)
	}
}
