package serve

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/walk"
)

// The twin-equivalence suite: a live run — arrivals ingested batch by
// batch, resources drained and added online, the dispatch policy
// swapped mid-run, churn and message faults active — leaves a round
// log, and replaying that log through a fresh lockstep engine
// reproduces the live Result BIT-IDENTICALLY (reflect.DeepEqual over
// every counter and float), at any worker count. This is the contract
// that makes the live runtime checkable: anything it serves can be
// re-derived offline.

const (
	twinN      = 64 // fleet size
	twinRounds = 60 // live rounds stepped
)

// twinCfg builds a FRESH engine config for one scenario — fresh
// stateful components per call, as engine construction requires.
func twinCfg(scen string, seed uint64, workers int) dynamic.Config {
	g := graph.Complete(twinN)
	cfg := dynamic.Config{
		Graph:           g,
		Protocol:        core.UserControlled{Alpha: 1},
		Arrivals:        dynamic.External{},
		Service:         dynamic.WeightProportional{Rate: 1},
		Tuner:           &dynamic.SelfTuner{Eps: 0.5, Steps: 2, Kernel: walk.NewLazy(walk.NewMaxDegree(g))},
		Rounds:          twinRounds + 20, // headroom past the stepped rounds
		Window:          25,
		Seed:            seed,
		Workers:         workers,
		CheckInvariants: true,
	}
	switch scen {
	case "steady":
	case "churn":
		cfg.Churn = dynamic.Churn{LeaveProb: 0.15, JoinProb: 0.15, MinUp: 16}
	case "reconfigure":
		cfg.Churn = dynamic.Churn{MinUp: 8}
	case "fault-plan":
		cfg.Faults = &faults.Plan{
			Loss: 0.05, DelayProb: 0.05, DelayMax: 3, DupProb: 0.02,
			Partitions: []faults.Partition{
				{Start: 20, End: 35, Members: []int{0, 1, 2, 3, 4, 5, 6, 7}},
			},
		}
	default:
		panic("unknown twin scenario " + scen)
	}
	return cfg
}

// twinBatch derives round r's arrival weights deterministically from
// (scen, seed, r): 0–6 tasks with weights in [1, 5). The live runtime
// treats them as opaque external traffic.
func twinBatch(seed uint64, r int) []float64 {
	h := (uint64(r)*2654435761 + seed*0x9e3779b97f4a7c15) | 1
	cnt := int((h >> 7) % 7)
	ws := make([]float64, 0, cnt)
	for i := 0; i < cnt; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		ws = append(ws, 1+float64(h%4096)/1024)
	}
	return ws
}

// twinReconfigure scripts the reconfigure scenario's online ops.
func twinReconfigure(t *testing.T, rt *Runtime, r int) {
	t.Helper()
	var err error
	switch r {
	case 10:
		err = rt.Reconfigure([]int{3, 4, 5}, nil, "")
	case 20:
		err = rt.Reconfigure(nil, nil, "power-of-2")
	case 30:
		err = rt.Reconfigure(nil, []int{4}, "hotspot:7")
	case 45:
		err = rt.Reconfigure([]int{60, 61}, []int{3, 5}, "uniform")
	}
	if err != nil {
		t.Fatalf("reconfigure at round %d: %v", r, err)
	}
}

// driveLive runs one live scenario via the runtime (manual round
// stepping — timing-free, so the test is deterministic) and returns
// its Result plus the JSONL round log it wrote.
func driveLive(t *testing.T, scen string, seed uint64, workers int) (dynamic.Result, []byte) {
	t.Helper()
	eng, err := dynamic.NewEngine(twinCfg(scen, seed, workers))
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	rt := New(eng, "", Options{LogWriter: &log})
	defer rt.Close()
	for r := 0; r < twinRounds; r++ {
		if ws := twinBatch(seed, r); len(ws) > 0 {
			if _, err := rt.Ingest(ws); err != nil {
				t.Fatalf("ingest round %d: %v", r, err)
			}
		}
		if scen == "reconfigure" {
			twinReconfigure(t, rt, r)
		}
		if err := rt.StepRound(); err != nil {
			t.Fatalf("step round %d: %v", r, err)
		}
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res, log.Bytes()
}

// replayLog replays a recorded log at the given worker count.
func replayLog(t *testing.T, scen string, seed uint64, workers int, recs []RoundRecord) dynamic.Result {
	t.Helper()
	eng, err := dynamic.NewEngine(twinCfg(scen, seed, workers))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := Replay(eng, recs)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return res
}

func TestTwinEquivalence(t *testing.T) {
	for _, scen := range []string{"steady", "churn", "reconfigure", "fault-plan"} {
		for _, seed := range []uint64{1, 2, 3} {
			for _, workers := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/seed=%d/workers=%d", scen, seed, workers), func(t *testing.T) {
					live, logBytes := driveLive(t, scen, seed, workers)
					recs, err := ReadRoundLog(bytes.NewReader(logBytes))
					if err != nil {
						t.Fatalf("reading the recorded log back: %v", err)
					}
					if len(recs) != twinRounds {
						t.Fatalf("round log has %d records, want %d", len(recs), twinRounds)
					}
					// The replay twin must agree at the live run's worker
					// count AND sequentially — the log, not the partition,
					// defines the run.
					for _, rw := range []int{1, workers} {
						replayed := replayLog(t, scen, seed, rw, recs)
						if !reflect.DeepEqual(live, replayed) {
							t.Errorf("replay at workers=%d diverges from the live Result:\nlive:   %+v\nreplay: %+v",
								rw, live, replayed)
						}
					}
				})
			}
		}
	}
}

// TestTwinEquivalenceAfterJSONRoundTrip pins that the twin property
// survives the full persistence path: records → JSONL → parsed records
// (float weights must round-trip bit-exactly through their decimal
// encoding).
func TestTwinEquivalenceAfterJSONRoundTrip(t *testing.T) {
	live, logBytes := driveLive(t, "churn", 7, 2)
	recs, err := ReadRoundLog(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode and re-parse once more to prove encode∘decode is the
	// identity on the parsed form.
	var buf bytes.Buffer
	for i := range recs {
		if err := AppendRecord(&buf, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), logBytes) {
		t.Fatal("round log is not byte-stable across a decode/encode cycle")
	}
	if got := replayLog(t, "churn", 7, 4, recs); !reflect.DeepEqual(live, got) {
		t.Fatal("replay of the JSON-round-tripped log diverges from the live Result")
	}
}
