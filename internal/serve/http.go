package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Routes mounts the runtime's front door on mux (typically the obs
// exporter's mux, so ingest, reconfiguration, status, metrics and
// pprof share one listener):
//
//	POST /ingest   — JSON array of task weights; admits the batch into
//	                 the next round. 200 {"accepted":n,"round":t},
//	                 400 invalid weights, 503 backlog full / draining /
//	                 horizon exhausted.
//	POST /reconfig — {"down":[...],"up":[...],"dispatch":"..."}; stages
//	                 drains/adds and an optional dispatch swap for the
//	                 next round boundary.
//	GET  /statusz  — runtime stats JSON.
//	GET  /healthz  — liveness ("ok", or 503 once draining).
func Routes(mux *http.ServeMux, rt *Runtime) {
	mux.HandleFunc("POST /ingest", rt.handleIngest)
	mux.HandleFunc("POST /reconfig", rt.handleReconfig)
	mux.HandleFunc("GET /statusz", rt.handleStatus)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
}

// maxBody bounds request bodies (16 MiB ≈ a two-hundred-thousand-task
// batch) so a runaway client cannot balloon the front door.
const maxBody = 16 << 20

func (rt *Runtime) handleIngest(w http.ResponseWriter, r *http.Request) {
	var weights []float64
	if !decodeBody(w, r, &weights) {
		return
	}
	n, err := rt.Ingest(weights)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted": n,
		"round":    rt.Stats().NextRound,
	})
}

// reconfigRequest is the /reconfig body.
type reconfigRequest struct {
	Down     []int  `json:"down,omitempty"`
	Up       []int  `json:"up,omitempty"`
	Dispatch string `json:"dispatch,omitempty"`
}

func (rt *Runtime) handleReconfig(w http.ResponseWriter, r *http.Request) {
	var req reconfigRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := rt.Reconfigure(req.Down, req.Up, req.Dispatch); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"staged": true})
}

func (rt *Runtime) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

func (rt *Runtime) handleHealth(w http.ResponseWriter, r *http.Request) {
	if rt.Stats().Draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// decodeBody parses a JSON request body into dst, answering 400 itself
// on malformed input.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBody))
	if err := dec.Decode(dst); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeErr maps runtime errors onto statuses: overload and lifecycle
// rejections are 503 (retryable), validation failures 400.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, ErrBackpressure) || errors.Is(err, ErrDraining) || errors.Is(err, ErrHorizon) {
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
